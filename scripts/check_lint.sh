#!/usr/bin/env bash
# Static-analysis gate (DESIGN.md §11):
#
#   1. Build dbx_lint and run it over src/ bench/ tests/ — any finding fails.
#   2. Self-test: seed one violation per rule class (R1-R4, R6) into a
#      scratch tree and assert dbx_lint catches each. A linter that silently
#      stopped matching would otherwise pass stage 1 forever.
#   3. clang-tidy over compile_commands.json when the tool exists — findings
#      FAIL the stage (WarningsAsErrors in .clang-tidy). The CI image is
#      gcc-only, so absence is an announced skip, not a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

fail() { echo "LINT CHECK FAILED: $*" >&2; exit 1; }

cmake -B build -G Ninja >/dev/null || fail "configure"
cmake --build build --target dbx_lint >/dev/null || fail "build dbx_lint"
LINT=build/tools/dbx_lint/dbx_lint

echo "== dbx_lint over the tree"
"$LINT" --root . src bench tests || fail "dbx_lint findings in the tree"

echo "== dbx_lint self-test (seeded violations)"
SEED_DIR=$(mktemp -d)
trap 'rm -rf "$SEED_DIR"' EXIT
mkdir -p "$SEED_DIR/src/core" "$SEED_DIR/src/util"

# One violation per rule class; each file must produce the named rule.
cat > "$SEED_DIR/src/core/seed_r1.cc" <<'EOF'
int Roll() { return rand(); }
EOF
cat > "$SEED_DIR/src/core/seed_r2.h" <<'EOF'
#include "src/util/status.h"
namespace dbx {
Status DoThing();
}  // namespace dbx
EOF
cat > "$SEED_DIR/src/core/seed_r3.cc" <<'EOF'
#include <mutex>
class Counter {
 public:
  void Bump() { mu_.lock(); ++n_; mu_.unlock(); }
 private:
  std::mutex mu_;
  int n_ = 0;
};
EOF
cat > "$SEED_DIR/src/util/seed_r4.cc" <<'EOF'
#include "src/obs/trace.h"
EOF
# R4's reverse direction: a library layer reaching up into the server.
mkdir -p "$SEED_DIR/src/query"
cat > "$SEED_DIR/src/query/seed_r4_server.cc" <<'EOF'
#include "src/server/dispatcher.h"
EOF
# R4's storage back-edge: only engine/session/server glue may see storage.
cat > "$SEED_DIR/src/core/seed_r4_storage.cc" <<'EOF'
#include "src/storage/storage.h"
EOF
# R6: a mutex member that guards nothing — no DBX_GUARDED_BY(mu_) sibling.
cat > "$SEED_DIR/src/core/seed_r6.h" <<'EOF'
#include <mutex>
class Registry {
 private:
  mutable std::mutex mu_;
  int entries_ = 0;
};
EOF

expect_rule() {  # expect_rule <rule> <relpath>
  local rule="$1" file="$2" out
  out=$("$LINT" --root "$SEED_DIR" "${file%%/*}" 2>/dev/null) && \
    fail "self-test: seeded $rule violation in $file not caught"
  echo "$out" | grep -q "\[$rule\]" || \
    fail "self-test: expected [$rule] finding for $file, got: $out"
  echo "   caught [$rule] in $file"
}

expect_rule determinism      src/core/seed_r1.cc
expect_rule nodiscard        src/core/seed_r2.h
expect_rule lock-discipline  src/core/seed_r3.cc
expect_rule layering         src/util/seed_r4.cc
expect_rule layering         src/query/seed_r4_server.cc
expect_rule layering         src/core/seed_r4_storage.cc
expect_rule guarded-by       src/core/seed_r6.h
rm -rf "$SEED_DIR"/src/core/* "$SEED_DIR"/src/util/* "$SEED_DIR"/src/query/*

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy"
  [ -f build/compile_commands.json ] || fail "missing compile_commands.json"
  git ls-files 'src/*.cc' | xargs clang-tidy -p build --quiet \
    || fail "clang-tidy findings"
else
  echo "== clang-tidy not installed; skipping (gcc-only image)"
fi

echo "LINT CHECKS PASSED"
