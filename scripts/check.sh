#!/usr/bin/env bash
# Full verification: configure, build, test, run every bench and example.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
# Re-run with the threaded paths forced on: the parallel tests read
# DBX_TEST_THREADS and add that thread count to their sweep.
DBX_TEST_THREADS=4 ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "== $b"
  "$b"
done

for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  case "$e" in
    */cadview_sql_repl) printf '\\quit\n' | "$e" ;;  # interactive: smoke only
    *) "$e" ;;
  esac
done
echo "ALL CHECKS PASSED"
