#!/usr/bin/env bash
# Full verification: configure, build, run the labeled test tiers, then every
# bench and example. Every stage must fail the whole script — none is
# advisory — so each command is checked explicitly rather than trusting
# `set -e` semantics inside loops, pipelines, and compound commands.
#
# Test tiers (ctest labels, assigned in tests/CMakeLists.txt):
#   unit        — fast, hermetic suites (also the TSAN pass, scripts/check_tsan.sh)
#   integration — cross-module / end-to-end suites
#   bench-smoke — benchmark binaries in --smoke mode (verification live,
#                 timing thresholds not enforced)
#   obs         — observability suites (metrics/tracing/EXPLAIN; subset of
#                 unit, also run standalone so failures are easy to spot)
#   lint        — dbx_lint over the tree + its unit suite (scripts/check_lint.sh
#                 adds the seeded-violation self-test and optional clang-tidy)
#   fuzz        — deterministic dialect + protocol-frame fuzz smoke: corpus
#                 replay + fixed mutation budget (scripts/check_fuzz.sh)
#   server      — multi-session exploration server suites over the loopback
#                 transport (subset of unit, also run standalone)
#   storage     — storage-backend suites: DBXC round-trip/durability contract
#                 plus cross-backend server-path byte-identity (subset of
#                 unit+integration, also run standalone)
#   analyze     — compile-time thread-safety analysis under clang++
#                 (scripts/check_analyze.sh; auto-skips with a notice when
#                 no Clang front end is installed — GCC compiles the
#                 capability annotations as no-ops)
set -euo pipefail
cd "$(dirname "$0")/.."

fail() { echo "CHECK FAILED: $*" >&2; exit 1; }

cmake -B build -G Ninja || fail "configure"
cmake --build build || fail "build"

scripts/check_lint.sh || fail "lint (dbx_lint + self-test)"
scripts/check_analyze.sh || fail "thread-safety analysis (clang -Wthread-safety)"
ctest --test-dir build -L fuzz --output-on-failure || fail "fuzz smoke"

ctest --test-dir build -L unit --output-on-failure || fail "unit tests"
ctest --test-dir build -L integration --output-on-failure \
  || fail "integration tests"
ctest --test-dir build -L bench-smoke --output-on-failure \
  || fail "bench smoke runs"
ctest --test-dir build -L obs --output-on-failure || fail "obs tests"
ctest --test-dir build -L server --output-on-failure || fail "server tests"
ctest --test-dir build -L storage --output-on-failure || fail "storage tests"

# Bench-trend gate (DESIGN.md §14): the bench-smoke tier above refreshed
# build/BENCH_*.json; compare them against the committed baselines. First the
# harness proves its own sensitivity — the self-test must pass and a seeded
# +30% p95 regression must flip the exit code — then the live compare runs
# with generous smoke-mode thresholds (override via DBX_BENCH_THRESHOLD /
# DBX_BENCH_MIN_ABS_MS). DBX_UPDATE_BASELINES=1 refreshes the baselines
# instead of gating on them.
BENCHDIFF=build/tools/dbx_benchdiff/dbx_benchdiff
"$BENCHDIFF" --self-test || fail "benchdiff self-test"
if "$BENCHDIFF" --baseline bench/baselines/BENCH_server.json \
    --current bench/baselines/BENCH_server.json \
    --seed-regression p95_ms:1.3 >/dev/null; then
  fail "benchdiff missed a seeded p95 regression"
fi
if [ "${DBX_UPDATE_BASELINES:-0}" = "1" ]; then
  cp build/BENCH_server.json build/BENCH_scale.json \
     build/BENCH_storage.json bench/baselines/ \
    || fail "baseline refresh"
  echo "bench baselines refreshed from build/"
else
  "$BENCHDIFF" --baseline bench/baselines --current build \
    --threshold "${DBX_BENCH_THRESHOLD:-0.5}" \
    --min-abs-ms "${DBX_BENCH_MIN_ABS_MS:-3}" \
    || fail "bench trend regression (rerun with DBX_UPDATE_BASELINES=1 after an intended change)"
fi

# Re-run the test tiers with the threaded and sharded paths forced on: the
# parallel tests read DBX_TEST_THREADS / DBX_TEST_SHARDS and add those counts
# to their sweeps (thread count never changes output; shard count must not
# either — the byte-identity suites fail loudly if it does).
DBX_TEST_THREADS=4 DBX_TEST_SHARDS=8 ctest --test-dir build \
  -L 'unit|integration' --output-on-failure || fail "threaded/sharded re-run"

# UBSan tier: rebuild with -fsanitize=undefined (no-recover) and run the
# full unit tier. Catches signed overflow, bad shifts, misaligned access.
cmake -B build-ubsan -S . -G Ninja -DDBX_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo || fail "ubsan configure"
cmake --build build-ubsan || fail "ubsan build"
ctest --test-dir build-ubsan -L unit --output-on-failure \
  || fail "unit tier under UBSan"

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "== $b"
  "$b" || fail "bench $b"
done

for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "== $e"
  case "$e" in
    */cadview_sql_repl)  # interactive: smoke only
      printf '\\quit\n' | "$e" || fail "example $e" ;;
    *)
      "$e" || fail "example $e" ;;
  esac
done
echo "ALL CHECKS PASSED"
