#!/usr/bin/env bash
# Static thread-safety analysis tier (DESIGN.md §16): builds the tree under
# clang++ with DBX_THREAD_SAFETY=ON, which turns the capability annotations
# (src/util/thread_annotations.h) into -Wthread-safety errors and runs the
# compile-fail fixture at configure time (tests/compile_fail/ — the guarded
# control must compile, the unguarded write must not).
#
# The analysis is a Clang front-end feature. When no clang++ is installed the
# stage SKIPS with a notice and exits 0 — the annotations still compiled as
# no-ops in the main GCC build, and the compiler-independent dbx_lint R6 rule
# (scripts/check_lint.sh) still enforces that every mutex member guards
# annotated state. Override the compiler with DBX_CLANGXX=/path/to/clang++.
set -euo pipefail
cd "$(dirname "$0")/.."

fail() { echo "ANALYZE CHECK FAILED: $*" >&2; exit 1; }

CLANGXX="${DBX_CLANGXX:-}"
if [ -z "$CLANGXX" ]; then
  for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16 \
           clang++-15 clang++-14; do
    if command -v "$c" >/dev/null 2>&1; then
      CLANGXX="$c"
      break
    fi
  done
fi
if [ -z "$CLANGXX" ]; then
  echo "== check_analyze: SKIPPED - no clang++ on PATH (compiler is" \
       "$(c++ --version 2>/dev/null | head -n1 || echo unknown));" \
       "-Wthread-safety needs the Clang front end. dbx_lint R6 still" \
       "enforces guarded-state coverage."
  exit 0
fi

BUILD_DIR=${BUILD_DIR:-build-analyze}
echo "== check_analyze: clang++ found ($("$CLANGXX" --version | head -n1))"
cmake -B "$BUILD_DIR" -S . -G Ninja \
  -DCMAKE_CXX_COMPILER="$CLANGXX" \
  -DDBX_THREAD_SAFETY=ON \
  || fail "configure (includes the compile-fail fixture: an unguarded write must NOT compile)"
cmake --build "$BUILD_DIR" || fail "tree build under -Wthread-safety -Werror"
echo "ANALYZE CHECKS PASSED"
