#!/usr/bin/env bash
# Deterministic fuzz smoke (DESIGN.md §11): replay the checked-in corpus for
# each dialect harness, then a fixed mutation budget from a fixed seed. The
# standalone driver derives every mutation from dbx::Rng, so two runs on any
# machine execute byte-identical inputs — a failure here is reproducible by
# rerunning the printed command.
#
# Open-ended coverage-guided runs need Clang: configure a separate build with
# -DDBX_FUZZER=ON and run the binaries as libFuzzer targets instead.
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS=${DBX_FUZZ_ITERS:-10000}
SEED=${DBX_FUZZ_SEED:-1}

fail() { echo "FUZZ CHECK FAILED: $*" >&2; exit 1; }

cmake -B build -G Ninja >/dev/null || fail "configure"
cmake --build build --target lexer_fuzz parser_fuzz server_frame_fuzz \
  dbxc_fuzz >/dev/null || fail "build"

for harness in lexer parser server_frame dbxc; do
  echo "== ${harness}_fuzz: corpus + $ITERS mutations (seed $SEED)"
  build/tests/fuzz/${harness}_fuzz \
    --corpus "tests/fuzz/corpus/${harness}" \
    --iters "$ITERS" --seed "$SEED" || fail "${harness}_fuzz"
done

echo "FUZZ CHECKS PASSED"
