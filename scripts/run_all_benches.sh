#!/usr/bin/env bash
# Runs every bench binary, the way EXPERIMENTS.md numbers are produced.
set -uo pipefail
cd "$(dirname "$0")/.."
rc=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo
  echo "################ $(basename "$b") ################"
  "$b" || { echo "BENCH FAILED: $b"; rc=1; }
done
exit $rc
