#!/usr/bin/env bash
# Runs every bench binary, the way EXPERIMENTS.md numbers are produced, then
# renders an advisory trend summary (build/BENCH_TREND.md) comparing any
# BENCH_*.json the benches wrote against the committed baselines. The summary
# never fails this script — full runs and smoke baselines are different modes,
# so benchdiff reports them as informational; the gating compare lives in
# scripts/check.sh.
set -uo pipefail
cd "$(dirname "$0")/.."
rc=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo
  echo "################ $(basename "$b") ################"
  "$b" || { echo "BENCH FAILED: $b"; rc=1; }
done

BENCHDIFF=build/tools/dbx_benchdiff/dbx_benchdiff
if [ -x "$BENCHDIFF" ] && [ -d bench/baselines ] \
    && ls build/BENCH_*.json >/dev/null 2>&1; then
  echo
  echo "################ bench trend (advisory) ################"
  "$BENCHDIFF" --baseline bench/baselines --current build \
    --out build/BENCH_TREND.md \
    || echo "trend summary reported regressions (advisory only here)"
  echo "trend summary -> build/BENCH_TREND.md"
fi
exit $rc
