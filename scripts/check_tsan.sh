#!/usr/bin/env bash
# Builds the concurrency-touching tests under ThreadSanitizer and runs the
# `unit` ctest tier with the threaded paths forced on (DBX_TEST_THREADS). A
# data race anywhere in the thread-pool execution layer — including the shared
# view cache — fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
THREADS=${DBX_TEST_THREADS:-4}

fail() { echo "TSAN CHECK FAILED: $*" >&2; exit 1; }

cmake -B "$BUILD_DIR" -S . -DDBX_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo || fail "configure"
cmake --build "$BUILD_DIR" -j --target \
  thread_pool_test cad_view_test cluster_test feature_selection_test \
  facet_index_test facet_test view_cache_test obs_test query_log_test \
  server_test server_replay_test shard_merge_test storage_test \
  storage_identity_test \
  lexer_fuzz parser_fuzz server_frame_fuzz dbxc_fuzz || fail "build"

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
export DBX_TEST_THREADS="$THREADS"
# Force the sharded fan-out on under TSAN too: the per-shard scans write
# disjoint sketch slots concurrently, which is exactly the pattern a race
# detector should vet.
export DBX_TEST_SHARDS="${DBX_TEST_SHARDS:-4}"
# Unbuilt targets' _NOT_BUILT placeholders carry no label, so the label
# filter runs exactly the suites built above (storage_identity_test is the
# one `integration`-labelled suite in the list: it drives real client/server
# threads across every backend, exactly the cross-thread traffic a race
# detector should vet). The fuzz smoke rides along: the harnesses are
# single-threaded but exercise lexer/parser allocation paths, and a tier
# that exists must propagate its failures here like everywhere else.
ctest --test-dir "$BUILD_DIR" -L 'unit|integration|fuzz' --output-on-failure \
  || fail "unit+integration+fuzz tiers under TSAN"
echo "TSAN CHECKS PASSED"
