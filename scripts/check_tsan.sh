#!/usr/bin/env bash
# Builds the concurrency-touching tests under ThreadSanitizer and runs them
# with the threaded paths forced on (DBX_TEST_THREADS). A data race anywhere
# in the thread-pool execution layer fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
THREADS=${DBX_TEST_THREADS:-4}

cmake -B "$BUILD_DIR" -S . -DDBX_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target \
  thread_pool_test cad_view_test cluster_test feature_selection_test \
  facet_index_test facet_test

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
export DBX_TEST_THREADS="$THREADS"
for t in thread_pool_test cad_view_test cluster_test feature_selection_test \
         facet_index_test facet_test; do
  echo "== TSAN $t (DBX_TEST_THREADS=$THREADS)"
  "$BUILD_DIR/tests/$t"
done
echo "TSAN CHECKS PASSED"
