// Scenario: Mary's full interactive session (paper Example 1) through the
// TPFacet two-phase interface — query panel selections, phase toggling, pivot
// choice, IUnit highlighting, row reordering, and drill-down — exactly the
// §5 interaction model, driven programmatically.

#include <cstdio>

#include "src/core/cad_view_renderer.h"
#include "src/facet/panel_renderer.h"
#include "src/data/dataset.h"
#include "src/explorer/tpfacet_session.h"

namespace {

int Fail(const dbx::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // Mary opens the used-car site.
  auto dataset = dbx::LoadDataset("UsedCars");
  if (!dataset.ok()) return Fail(dataset.status());

  dbx::CadViewOptions cad;
  cad.max_compare_attrs = 5;
  cad.iunits_per_value = 3;
  cad.seed = 42;
  // Interactive setting: enable the paper's §6.3 optimizations.
  cad.feature_selection_sample = 5000;
  cad.adaptive_l = true;

  auto session = dbx::TpFacetSession::Create(dataset->table.get(),
                                             dbx::DiscretizerOptions{}, cad);
  if (!session.ok()) return Fail(session.status());
  dbx::TpFacetSession& s = *session;

  // Phase 1 (results phase): she narrows with the query panel.
  // Numeric attributes are selected by bin label, like a price-slider UI.
  dbx::Status st = s.SelectValue("BodyType", "SUV");
  if (st.ok()) st = s.SelectValue("Transmission", "Automatic");
  if (!st.ok()) return Fail(st);
  std::printf("Selected BodyType=SUV, Transmission=Automatic -> %zu cars\n",
              s.result_rows().size());

  // Mileage facet: pick the bins covering roughly 10K-30K miles.
  const dbx::DiscretizedTable& dt = s.facets().discretized();
  auto mileage_idx = dt.IndexOf("Mileage");
  size_t selected_bins = 0;
  if (mileage_idx) {
    const dbx::DiscreteAttr& mileage = dt.attr(*mileage_idx);
    for (size_t b = 0; b < mileage.bins.num_bins(); ++b) {
      double lo = mileage.bins.edges[b];
      double hi = mileage.bins.edges[b + 1];
      if (lo >= 8000 && hi <= 35000) {
        if (s.SelectValue("Mileage", mileage.labels[b]).ok()) ++selected_bins;
      }
    }
  }
  std::printf("Selected %zu low-mileage bins -> %zu cars\n", selected_bins,
              s.result_rows().size());

  // The query panel (Figure 1's sidebar) after her selections.
  dbx::PanelRenderOptions panel_opt;
  panel_opt.max_values_per_attr = 4;
  std::printf("\n== query panel ==\n%s",
              dbx::RenderQueryPanel(s.facets(), panel_opt).c_str());

  // Phase 2 (query revision): toggle to the CAD View, pivot on Make.
  s.TogglePhase();
  if (!s.SetPivot("Make").ok()) return 1;
  s.SetPivotValues({"Ford", "Chevrolet", "Toyota", "Honda", "Jeep"});
  auto view = s.View();
  if (!view.ok()) return Fail(view.status());
  std::printf("\n== CAD View (pivot = Make) ==\n%s\n",
              dbx::RenderCadView(**view).c_str());
  if (auto t = s.last_build_timings()) {
    std::printf("interactive build: %s\n", dbx::RenderTimings(*t).c_str());
  }

  // She likes Chevrolet's first IUnit — which other IUnits are similar?
  auto similar = s.ClickIUnit("Chevrolet", 0);
  if (!similar.ok()) return Fail(similar.status());
  std::printf("\nClick on Chevrolet IUnit 1 -> %zu similar IUnit(s):\n",
              similar->size());
  for (const dbx::IUnitRef& ref : *similar) {
    std::printf("  %s IUnit %zu (similarity %.2f of %zu)\n",
                (*view)->rows[ref.row].pivot_value.c_str(), ref.iunit + 1,
                ref.similarity, (*view)->compare_attrs.size());
  }

  // Which Makes are most like Chevrolet overall?
  auto ranked = s.ClickPivotValue("Chevrolet");
  if (!ranked.ok()) return Fail(ranked.status());
  std::printf("\nClick on pivot value Chevrolet -> rows reordered:\n");
  for (const auto& [value, distance] : *ranked) {
    std::printf("  %-12s (Algorithm-2 distance %.1f)\n", value.c_str(),
                distance);
  }

  // She settles on the most similar alternative make and drills down.
  std::string alt = (*ranked)[1].first;
  s.TogglePhase();  // back to results
  s.SetPivotValues({});
  if (!s.SelectValue("Make", "Chevrolet").ok()) return 1;
  if (!s.SelectValue("Make", alt).ok()) return 1;
  std::printf("\nPhase toggled back to results; Make in {Chevrolet, %s} -> "
              "%zu cars to browse\n",
              alt.c_str(), s.result_rows().size());
  std::printf("total interface operations this session: %zu\n",
              s.operation_count());
  return 0;
}
