// Scenario: a data analyst works the three §6.2 exploratory tasks on the
// Mushroom dataset directly against the library API — building a 2-value
// classifier from a CAD View, finding the most similar gill colors, and
// finding an alternative selection condition.

#include <cstdio>

#include "src/core/cad_view_builder.h"
#include "src/core/cad_view_renderer.h"
#include "src/data/dataset.h"
#include "src/sim/agent_util.h"
#include "src/sim/tasks.h"

namespace {

int Fail(const dbx::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace dbx;
  auto dataset = LoadDataset("Mushroom");
  if (!dataset.ok()) return Fail(dataset.status());
  const Table& mush = *dataset->table;
  std::printf("Mushroom: %zu tuples x %zu attributes\n", mush.num_rows(),
              mush.num_cols());

  auto engine = FacetEngine::Create(&mush, DiscretizerOptions{});
  if (!engine.ok()) return Fail(engine.status());

  // --- Task 1 (§6.2.1): a <=2-value classifier for Bruises = true ----------
  std::printf("\n== Task 1: simple classifier for Bruises = true ==\n");
  CadViewOptions options;
  options.pivot_attr = "Bruises";
  options.max_compare_attrs = 6;
  options.iunits_per_value = 3;
  options.seed = 9;
  auto view = BuildCadView(TableSlice::All(mush), options);
  if (!view.ok()) return Fail(view.status());
  std::printf("CAD View pivoted on Bruises (compare attributes are the most "
              "class-discriminative):\n%s\n",
              RenderCadView(*view).c_str());

  // Read the best single-value classifier off the view and verify it.
  ClassifierTask task{"demo", "Bruises", "true", {"Class"}};
  auto positives = RowsMatching(*engine, {{"Bruises", "true"}});
  if (!positives.ok()) return Fail(positives.status());
  double best_f1 = 0.0;
  ValueCondition best_cond;
  for (const CompareAttribute& ca : view->compare_attrs) {
    if (ca.name == "Class") continue;
    auto idx = engine->discretized().IndexOf(ca.name);
    if (!idx) continue;
    const DiscreteAttr& attr = engine->discretized().attr(*idx);
    for (const std::string& label : attr.labels) {
      auto rows = RowsMatching(*engine, {{ca.name, label}});
      if (!rows.ok()) continue;
      double f1 = F1OfRows(*rows, *positives);
      if (f1 > best_f1) {
        best_f1 = f1;
        best_cond = {ca.name, label};
      }
    }
  }
  std::printf("best single-value classifier from the view's attributes: "
              "%s=%s (F1 %.3f)\n",
              best_cond.attr.c_str(), best_cond.value.c_str(), best_f1);

  // --- Task 2 (§6.2.2): most similar pair among four gill colors -----------
  std::printf("\n== Task 2: most similar GillColor pair ==\n");
  SimilarPairTask pair_task{"demo", "GillColor",
                            {"buff", "white", "brown", "green"}};
  CadViewOptions sp;
  sp.pivot_attr = "GillColor";
  sp.pivot_values = pair_task.values;
  sp.max_compare_attrs = 5;
  sp.iunits_per_value = 3;
  sp.seed = 9;
  auto color_view = BuildCadView(TableSlice::All(mush), sp);
  if (!color_view.ok()) return Fail(color_view.status());
  auto ranked = color_view->RankRowsBySimilarity("brown");
  if (!ranked.ok()) return Fail(ranked.status());
  std::printf("Algorithm-2 neighbors of 'brown':\n");
  for (const auto& [value, d] : *ranked) {
    std::printf("  %-8s distance %.1f\n", value.c_str(), d);
  }
  std::string neighbor;
  for (const auto& [value, d] : *ranked) {
    if (value != "brown") {
      neighbor = value;
      break;
    }
  }
  auto rank = SimilarPairRank(*engine, pair_task, {"brown", neighbor});
  if (!rank.ok()) return Fail(rank.status());
  std::printf("pair (brown, %s) ranks #%d of 6 under the task's digest-cosine "
              "metric\n",
              neighbor.c_str(), *rank);

  // --- Task 3 (§6.2.3): alternative search condition -----------------------
  std::printf("\n== Task 3: alternative for StalkShape=enlarged AND "
              "RingType=large ==\n");
  AlternativeTask alt_task{"demo",
                           {{"StalkShape", "enlarged"}, {"RingType", "large"}}};
  auto target = RowsMatching(*engine, alt_task.given);
  if (!target.ok()) return Fail(target.status());
  std::printf("target result set: %zu tuples\n", target->size());

  // Methodical CAD workflow: pivot on StalkShape with RingType=large applied;
  // the 'enlarged' row's IUnits reveal what characterizes the target.
  auto slice_rows = RowsMatching(*engine, {{"RingType", "large"}});
  if (!slice_rows.ok()) return Fail(slice_rows.status());
  CadViewOptions ao;
  ao.pivot_attr = "StalkShape";
  ao.max_compare_attrs = 6;
  ao.iunits_per_value = 3;
  ao.seed = 9;
  TableSlice slice{&mush, *slice_rows};
  auto alt_view = BuildCadView(slice, ao);
  if (!alt_view.ok()) return Fail(alt_view.status());
  std::printf("%s\n", RenderCadView(*alt_view).c_str());

  // Try the dominant values of the 'enlarged' row as alternative conditions.
  auto row_idx = alt_view->RowIndexOf("enlarged");
  if (!row_idx.ok()) return Fail(row_idx.status());
  double best_err = 1e9;
  std::string best_alt;
  for (size_t ci = 0; ci < alt_view->compare_attrs.size(); ++ci) {
    const std::string& attr = alt_view->compare_attrs[ci].name;
    for (const IUnit& u : alt_view->rows[*row_idx].iunits) {
      for (const std::string& label : u.cells[ci].labels) {
        if (IsGivenCondition(alt_task.given, attr, label)) continue;
        auto err = AlternativeRetrievalError(*engine, alt_task,
                                             {{attr, label}});
        if (err.ok() && *err < best_err) {
          best_err = *err;
          best_alt = attr + "=" + label;
        }
      }
    }
  }
  std::printf("best single-value alternative read off the view: %s "
              "(retrieval error %.3f)\n",
              best_alt.c_str(), best_err);
  return 0;
}
