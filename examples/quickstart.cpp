// Quickstart: Mary's exploration from the paper's Example 1 / Table 1.
//
// Loads the used-car dataset, runs her exact CADVIEW query through the SQL
// dialect, prints the resulting CAD View, then demonstrates the two in-view
// search operations (HIGHLIGHT SIMILAR IUNITS, REORDER ROWS).

#include <cstdio>

#include "src/core/cad_view_renderer.h"
#include "src/data/dataset.h"
#include "src/query/engine.h"
#include "src/util/string_util.h"

namespace {

constexpr const char* kCreate = R"sql(
  CREATE CADVIEW CompareMakes AS
  SET pivot = Make
  SELECT Price
  FROM UsedCars
  WHERE Mileage BETWEEN 10K AND 30K AND
        Transmission = Automatic AND BodyType = SUV AND
        (Make = Jeep OR Make = Toyota OR Make = Honda OR
         Make = Ford OR Make = Chevrolet)
  LIMIT COLUMNS 5 IUNITS 3
)sql";

constexpr const char* kHighlight = R"sql(
  HIGHLIGHT SIMILAR IUNITS
  IN CompareMakes
  WHERE SIMILARITY(Chevrolet, 3) > 3.0
)sql";

constexpr const char* kReorder = R"sql(
  REORDER ROWS
  IN CompareMakes
  ORDER BY SIMILARITY(Chevrolet) DESC
)sql";

int Fail(const dbx::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. Load the dataset (synthetic stand-in for the paper's 40K-row scrape).
  auto dataset = dbx::LoadDataset("UsedCars");
  if (!dataset.ok()) return Fail(dataset.status());
  std::printf("Loaded %s: %zu tuples x %zu attributes\n",
              dataset->name.c_str(), dataset->table->num_rows(),
              dataset->table->num_cols());

  // 2. Register it with the engine and run Mary's CADVIEW query.
  dbx::Engine engine;
  engine.RegisterTable("UsedCars", dataset->table.get());

  auto created = engine.ExecuteSql(kCreate);
  if (!created.ok()) return Fail(created.status());
  std::printf("\n== CAD View: CompareMakes (paper Table 1) ==\n%s\n",
              created->rendered.c_str());
  std::printf("build: %s\n",
              dbx::RenderTimings(created->view->timings).c_str());

  // 3. Mary likes an IUnit of Chevrolet: highlight similar IUnits anywhere.
  auto highlighted = engine.ExecuteSql(kHighlight);
  if (!highlighted.ok()) return Fail(highlighted.status());
  std::printf("\n== HIGHLIGHT SIMILAR IUNITS (similarity > 3.0 of 5) ==\n");
  std::printf("%zu similar IUnit(s) found (marked *):\n%s\n",
              highlighted->highlights.size(), highlighted->rendered.c_str());

  // 4. Which Makes are most like Chevrolet overall? Reorder the rows.
  auto reordered = engine.ExecuteSql(kReorder);
  if (!reordered.ok()) return Fail(reordered.status());
  std::printf("\n== REORDER ROWS BY SIMILARITY(Chevrolet) ==\n%s\n",
              reordered->rendered.c_str());
  return 0;
}
