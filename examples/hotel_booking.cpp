// Scenario: the paper's *introduction* — a visitor unfamiliar with a big
// city books a hotel. Without data familiarity she cannot know that "all the
// 5-star hotels are clustered in the financial district or how there is a
// tradeoff between location and price". One CAD View answers both.

#include <cstdio>

#include "src/core/cad_view_renderer.h"
#include "src/data/dataset.h"
#include "src/query/engine.h"

namespace {

int Fail(const dbx::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  auto dataset = dbx::LoadDataset("Hotels");
  if (!dataset.ok()) return Fail(dataset.status());
  std::printf("Loaded %s: %zu listings\n", dataset->name.c_str(),
              dataset->table->num_rows());

  dbx::Engine engine;
  engine.RegisterTable("Hotels", dataset->table.get());

  // Question 1: how do the star classes differ? Pivot on Stars.
  auto by_stars = engine.ExecuteSql(
      "CREATE CADVIEW ByStars AS SET pivot = Stars SELECT Price "
      "FROM Hotels WHERE PropertyType != Hostel "
      "LIMIT COLUMNS 4 IUNITS 2");
  if (!by_stars.ok()) return Fail(by_stars.status());
  std::printf("\n== CAD View: pivot on Stars (hotels only) ==\n%s\n",
              by_stars->rendered.c_str());
  std::printf("Reading the view: the 5-star row's District cell shows the "
              "financial-district clustering;\nthe Price column shows each "
              "class's band — the summary the intro's visitor lacked.\n");

  // Question 2: which districts are alike for a mid-range stay? Condition on
  // an affordable price band and pivot on District.
  auto by_district = engine.ExecuteSql(
      "CREATE CADVIEW ByDistrict AS SET pivot = District SELECT Price "
      "FROM Hotels WHERE Price BETWEEN 60 AND 220 AND "
      "PropertyType != Hostel LIMIT COLUMNS 4 IUNITS 2");
  if (!by_district.ok()) return Fail(by_district.status());
  std::printf("\n== CAD View: pivot on District (60-220 price band) ==\n%s\n",
              by_district->rendered.c_str());

  // Which district is most similar to OldTown at this budget?
  auto reorder = engine.ExecuteSql(
      "REORDER ROWS IN ByDistrict ORDER BY SIMILARITY(OldTown) DESC");
  if (!reorder.ok()) return Fail(reorder.status());
  std::printf("\nDistricts reordered by similarity to OldTown (conditional "
              "on the budget):\n");
  for (const dbx::CadViewRow& row : reorder->view->rows) {
    std::printf("  %s (%zu listings)\n", row.pivot_value.c_str(),
                row.partition_size);
  }

  // Question 3: the backpacker's view — for hostels, price decouples from
  // location, so the interesting compare attributes change.
  auto hostels = engine.ExecuteSql(
      "CREATE CADVIEW Hostels AS SET pivot = District SELECT * "
      "FROM Hotels WHERE PropertyType = Hostel LIMIT COLUMNS 3 IUNITS 2");
  if (!hostels.ok()) return Fail(hostels.status());
  std::printf("\n== CAD View: hostels by District ==\n%s\n",
              hostels->rendered.c_str());
  std::printf("Note the compare attributes: for hostels the system picks "
              "capacity/review-style attributes\nrather than Price — the "
              "intro's observation that hostel prices are poorly correlated "
              "with\nthe rest of the market.\n");
  return 0;
}
