// An interactive REPL for the CADVIEW SQL dialect (paper §2.1.2). Built-in
// datasets load on demand; custom tables load from CSV with an inline schema.
//
//   $ ./cadview_sql_repl
//   dbx> \load UsedCars
//   dbx> CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM UsedCars
//        WHERE BodyType = SUV LIMIT COLUMNS 5 IUNITS 3
//   dbx> HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(Ford, 1) > 3.0
//   dbx> REORDER ROWS IN v ORDER BY SIMILARITY(Ford) DESC
//   dbx> \quit
//
// Also scriptable: echo '...' | ./cadview_sql_repl

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "src/data/dataset.h"
#include "src/core/cad_view_html.h"
#include "src/core/cad_view_io.h"
#include "src/core/surrogate.h"
#include "src/query/engine.h"
#include "src/relation/csv.h"
#include "src/stats/chow_liu.h"
#include "src/stats/soft_fd.h"
#include "src/util/string_util.h"

namespace {

using namespace dbx;

void PrintHelp() {
  std::printf(
      "statements:\n"
      "  CREATE CADVIEW v AS SET pivot = Attr SELECT a, b FROM t\n"
      "      [WHERE ...] [LIMIT COLUMNS m] [IUNITS k] [ORDER BY a ASC|DESC]\n"
      "  HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(value, rank) > x\n"
      "  REORDER ROWS IN v ORDER BY SIMILARITY(value) [DESC]\n"
      "  DROP CADVIEW v | SHOW TABLES | SHOW CADVIEWS\n"
      "  SELECT */cols FROM t [WHERE ...] [ORDER BY ...] [LIMIT n]\n"
      "  SELECT g, COUNT(*), AVG(a), ... FROM t [WHERE ...] GROUP BY g\n"
      "  DESCRIBE t\n"
      "commands:\n"
      "  \\load <UsedCars|Mushroom> [rows]   load a built-in dataset\n"
      "  \\csv <name> <path> <a:cat|num,...> load a CSV file as table <name>\n"
      "  \\deps <table>                      Chow-Liu dependency tree\n"
      "  \\surrogate <table> <attr> <value>  queriable surrogate queries\n"
      "  \\json <view>                       print a CAD View as JSON\n"
      "  \\html <view> <path>                export a CAD View as HTML\n"
      "  \\fds <table>                       strong soft functional deps\n"
      "  \\tables                            list registered tables\n"
      "  \\help                              this text\n"
      "  \\quit                              exit\n");
}

// Parses "Make:cat,Price:num,..." into a Schema.
Result<Schema> ParseInlineSchema(const std::string& spec) {
  std::vector<AttributeDef> attrs;
  for (const std::string& part : Split(spec, ',')) {
    auto bits = Split(part, ':');
    if (bits.size() != 2) {
      return Status::InvalidArgument("bad schema entry: " + part);
    }
    AttributeDef def;
    def.name = std::string(Trim(bits[0]));
    if (EqualsIgnoreCase(Trim(bits[1]), "num")) {
      def.type = AttrType::kNumeric;
    } else if (EqualsIgnoreCase(Trim(bits[1]), "cat")) {
      def.type = AttrType::kCategorical;
    } else {
      return Status::InvalidArgument("type must be cat or num: " + part);
    }
    attrs.push_back(std::move(def));
  }
  return Schema::Make(std::move(attrs));
}

class Repl {
 public:
  int Run() {
    std::printf("DBExplorer CADVIEW SQL shell — \\help for help\n");
    std::string line;
    std::string pending;
    while (true) {
      std::printf(pending.empty() ? "dbx> " : "...> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      std::string trimmed(Trim(line));
      if (trimmed.empty()) continue;

      if (pending.empty() && trimmed[0] == '\\') {
        if (!Command(trimmed)) break;
        continue;
      }
      // A trailing backslash continues the statement on the next line.
      bool continues = trimmed.back() == '\\';
      if (continues) trimmed.pop_back();
      pending += (pending.empty() ? "" : " ") + trimmed;
      if (continues) continue;
      Execute(pending);
      pending.clear();
    }
    return 0;
  }

 private:
  bool Command(const std::string& cmd) {
    auto parts = Split(cmd, ' ');
    const std::string& op = parts[0];
    if (op == "\\quit" || op == "\\q") return false;
    if (op == "\\help") {
      PrintHelp();
      return true;
    }
    if (op == "\\tables") {
      for (const auto& [name, table] : tables_) {
        std::printf("  %-12s %zu rows x %zu attrs\n", name.c_str(),
                    table->num_rows(), table->num_cols());
      }
      return true;
    }
    if (op == "\\load") {
      if (parts.size() < 2) {
        std::printf("usage: \\load <UsedCars|Mushroom> [rows]\n");
        return true;
      }
      size_t rows = 0;
      if (parts.size() >= 3) {
        int64_t n = 0;
        if (ParseInt64(parts[2], &n) && n > 0) rows = static_cast<size_t>(n);
      }
      auto d = LoadDataset(parts[1], rows);
      if (!d.ok()) {
        std::printf("error: %s\n", d.status().ToString().c_str());
        return true;
      }
      tables_[d->name] = d->table;
      engine_.RegisterTable(d->name, d->table.get());
      std::printf("loaded %s: %zu rows\n", d->name.c_str(),
                  d->table->num_rows());
      return true;
    }
    if (op == "\\csv") {
      if (parts.size() < 4) {
        std::printf("usage: \\csv <name> <path> <attr:cat|num,...>\n");
        return true;
      }
      auto schema = ParseInlineSchema(parts[3]);
      if (!schema.ok()) {
        std::printf("error: %s\n", schema.status().ToString().c_str());
        return true;
      }
      auto table = ReadCsv(parts[2], *schema);
      if (!table.ok()) {
        std::printf("error: %s\n", table.status().ToString().c_str());
        return true;
      }
      auto shared = std::make_shared<Table>(std::move(*table));
      tables_[parts[1]] = shared;
      engine_.RegisterTable(parts[1], shared.get());
      std::printf("loaded %s: %zu rows\n", parts[1].c_str(),
                  shared->num_rows());
      return true;
    }
    if (op == "\\json" || op == "\\html") {
      if (parts.size() < 2) {
        std::printf("usage: %s <view> [path]\n", op.c_str());
        return true;
      }
      auto view = engine_.GetView(parts[1]);
      if (!view.ok()) {
        std::printf("error: %s\n", view.status().ToString().c_str());
        return true;
      }
      if (op == "\\json") {
        std::printf("%s\n", CadViewToJson(**view).c_str());
        return true;
      }
      if (parts.size() < 3) {
        std::printf("usage: \\html <view> <path>\n");
        return true;
      }
      HtmlRenderOptions hro;
      hro.title = parts[1];
      std::FILE* f = std::fopen(parts[2].c_str(), "w");
      if (!f) {
        std::printf("error: cannot open %s\n", parts[2].c_str());
        return true;
      }
      std::string html = RenderCadViewHtml(**view, hro);
      std::fwrite(html.data(), 1, html.size(), f);
      std::fclose(f);
      std::printf("wrote %zu bytes to %s\n", html.size(), parts[2].c_str());
      return true;
    }
    if (op == "\\surrogate") {
      if (parts.size() < 4 || !tables_.count(parts[1])) {
        std::printf("usage: \\surrogate <table> <attr> <value>\n");
        return true;
      }
      auto dt = DiscretizedTable::Build(TableSlice::All(*tables_[parts[1]]),
                                        DiscretizerOptions{});
      if (!dt.ok()) {
        std::printf("error: %s\n", dt.status().ToString().c_str());
        return true;
      }
      auto surrogates = FindSurrogates(*dt, parts[2], parts[3],
                                       SurrogateOptions{});
      if (!surrogates.ok()) {
        std::printf("error: %s\n", surrogates.status().ToString().c_str());
        return true;
      }
      for (const Surrogate& su : *surrogates) {
        std::string cond;
        for (const auto& [attr, value] : su.conditions) {
          if (!cond.empty()) cond += " AND ";
          cond += attr + "=" + value;
        }
        std::printf("  F1 %.3f (P %.3f R %.3f)  %s\n", su.f1, su.precision,
                    su.recall, cond.c_str());
      }
      return true;
    }
    if (op == "\\deps" || op == "\\fds") {
      if (parts.size() < 2 || !tables_.count(parts[1])) {
        std::printf("usage: %s <registered table>\n", op.c_str());
        return true;
      }
      const Table& t = *tables_[parts[1]];
      auto dt = DiscretizedTable::Build(TableSlice::All(t),
                                        DiscretizerOptions{});
      if (!dt.ok()) {
        std::printf("error: %s\n", dt.status().ToString().c_str());
        return true;
      }
      if (op == "\\deps") {
        auto tree = BuildChowLiuTree(*dt);
        if (!tree.ok()) {
          std::printf("error: %s\n", tree.status().ToString().c_str());
        } else {
          std::printf("%s", tree->ToString().c_str());
        }
      } else {
        auto fds = DiscoverSoftFds(*dt, SoftFdOptions{});
        if (!fds.ok()) {
          std::printf("error: %s\n", fds.status().ToString().c_str());
        } else if (fds->empty()) {
          std::printf("no strong soft FDs found\n");
        } else {
          for (const SoftFd& fd : *fds) {
            std::printf("  %s -> %s  (strength %.3f, lift %.2f)\n",
                        fd.determinant_name.c_str(),
                        fd.dependent_name.c_str(), fd.strength, fd.Lift());
          }
        }
      }
      return true;
    }
    std::printf("unknown command %s (\\help for help)\n", op.c_str());
    return true;
  }

  void Execute(const std::string& sql) {
    auto outcome = engine_.ExecuteSql(sql);
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
      return;
    }
    switch (outcome->kind) {
      case ExecOutcome::Kind::kSelection: {
        std::printf("%s\n", outcome->rendered.c_str());
        if (outcome->derived) break;  // aggregates render their own table
        // Print the first rows as a quick preview.
        size_t shown = std::min<size_t>(outcome->rows.size(), 5);
        for (size_t i = 0; i < shown; ++i) {
          std::string row;
          for (const std::string& col : outcome->projected_columns) {
            auto idx = outcome->table->schema().IndexOf(col);
            if (!idx) continue;
            if (!row.empty()) row += " | ";
            row += outcome->table->At(outcome->rows[i], *idx).ToDisplay();
          }
          std::printf("  %s\n", row.c_str());
        }
        if (outcome->rows.size() > shown) std::printf("  ...\n");
        break;
      }
      default:
        std::printf("%s\n", outcome->rendered.c_str());
        break;
    }
  }

  Engine engine_;
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace

int main() {
  Repl repl;
  return repl.Run();
}
