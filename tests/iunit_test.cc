// Tests for IUnit labeling (paper §3.1.2), Algorithm 1 (IUnit similarity),
// and Algorithm 2 (ranked-list distance).

#include <gtest/gtest.h>

#include "src/core/iunit_labeler.h"
#include "src/core/iunit_similarity.h"
#include "src/core/ranked_list_distance.h"

namespace dbx {
namespace {

// A table whose first attribute is dominated by one value and whose second
// splits evenly between two values.
Table LabelTable() {
  Schema s = std::move(Schema::Make({
                           {"Dominant", AttrType::kCategorical, true},
                           {"Split", AttrType::kCategorical, true},
                       }))
                 .value();
  Table t(s);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(t.AppendRow({Value(i < 7 ? "big" : "small"),
                             Value(i % 2 == 0 ? "x" : "y")})
                    .ok());
  }
  return t;
}

DiscretizedTable Discretize(const Table& t) {
  return std::move(
             DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{}))
      .value();
}

std::vector<size_t> AllPositions(const DiscretizedTable& dt) {
  std::vector<size_t> p(dt.num_rows());
  for (size_t i = 0; i < p.size(); ++i) p[i] = i;
  return p;
}

// --- Labeler -------------------------------------------------------------------

TEST(LabelerTest, DominantValueShownAlone) {
  Table t = LabelTable();
  DiscretizedTable dt = Discretize(t);
  LabelerOptions opt;
  opt.max_display_count = 2;
  opt.frequency_ratio = 0.5;
  auto u = LabelCluster(dt, {0, 1}, AllPositions(dt), opt);
  ASSERT_TRUE(u.ok());
  // "big" has 7/8; "small" at 1/7 < 0.5 ratio is suppressed.
  ASSERT_EQ(u->cells[0].labels.size(), 1u);
  EXPECT_EQ(u->cells[0].labels[0], "big");
  EXPECT_EQ(u->cells[0].counts[0], 7u);
}

TEST(LabelerTest, SimilarFrequenciesGrouped) {
  Table t = LabelTable();
  DiscretizedTable dt = Discretize(t);
  LabelerOptions opt;
  auto u = LabelCluster(dt, {0, 1}, AllPositions(dt), opt);
  ASSERT_TRUE(u.ok());
  // "x" and "y" split 4/4 -> both representatives: "[x, y]".
  ASSERT_EQ(u->cells[1].labels.size(), 2u);
  EXPECT_EQ(u->cells[1].ToDisplay(), "[x, y]");
}

TEST(LabelerTest, MaxDisplayCountRespected) {
  Table t = LabelTable();
  DiscretizedTable dt = Discretize(t);
  LabelerOptions opt;
  opt.max_display_count = 1;
  auto u = LabelCluster(dt, {0, 1}, AllPositions(dt), opt);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->cells[1].labels.size(), 1u);
}

TEST(LabelerTest, ScoreDefaultsToClusterSize) {
  Table t = LabelTable();
  DiscretizedTable dt = Discretize(t);
  auto u = LabelCluster(dt, {0}, {0, 1, 2}, LabelerOptions{});
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(u->score, 3.0);
  EXPECT_EQ(u->size(), 3u);
}

TEST(LabelerTest, FrequencyVectorsCoverFullDomain) {
  Table t = LabelTable();
  DiscretizedTable dt = Discretize(t);
  auto u = LabelCluster(dt, {0, 1}, AllPositions(dt), LabelerOptions{});
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->attr_freqs.size(), 2u);
  EXPECT_EQ(u->attr_freqs[0].size(), dt.attr(0).cardinality());
  double total = 0;
  for (double f : u->attr_freqs[0]) total += f;
  EXPECT_DOUBLE_EQ(total, 8.0);
}

TEST(LabelerTest, Errors) {
  Table t = LabelTable();
  DiscretizedTable dt = Discretize(t);
  LabelerOptions opt;
  opt.max_display_count = 0;
  EXPECT_TRUE(LabelCluster(dt, {0}, {0}, opt).status().IsInvalidArgument());
  EXPECT_TRUE(LabelCluster(dt, {42}, {0}, LabelerOptions{})
                  .status()
                  .IsOutOfRange());
}

// --- Algorithm 1 ------------------------------------------------------------------

IUnit MakeIUnit(std::vector<std::vector<double>> freqs, double score = 1.0) {
  IUnit u;
  u.attr_freqs = std::move(freqs);
  u.score = score;
  u.cells.resize(u.attr_freqs.size());
  return u;
}

TEST(IUnitSimilarityTest, IdenticalReachesAttrCount) {
  IUnit a = MakeIUnit({{3, 0, 1}, {2, 2}});
  EXPECT_NEAR(IUnitSimilarity(a, a), 2.0, 1e-12);
}

TEST(IUnitSimilarityTest, DisjointIsZero) {
  IUnit a = MakeIUnit({{1, 0}, {1, 0}});
  IUnit b = MakeIUnit({{0, 1}, {0, 1}});
  EXPECT_NEAR(IUnitSimilarity(a, b), 0.0, 1e-12);
}

TEST(IUnitSimilarityTest, SymmetricAndBounded) {
  IUnit a = MakeIUnit({{3, 1}, {0, 2}});
  IUnit b = MakeIUnit({{1, 2}, {2, 2}});
  double ab = IUnitSimilarity(a, b);
  EXPECT_DOUBLE_EQ(ab, IUnitSimilarity(b, a));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 2.0);
}

TEST(IUnitSimilarityTest, ThresholdAndTau) {
  IUnit a = MakeIUnit({{1, 0}});
  IUnit b = MakeIUnit({{1, 1}});
  double sim = IUnitSimilarity(a, b);  // cos 45deg ~ 0.707
  EXPECT_TRUE(IUnitsSimilar(a, b, sim - 1e-9));
  EXPECT_FALSE(IUnitsSimilar(a, b, sim + 1e-9));
  EXPECT_DOUBLE_EQ(DefaultTau(5, 0.7), 3.5);
}

// --- Algorithm 2 ------------------------------------------------------------------

TEST(RankedListDistanceTest, IdenticalListsZero) {
  std::vector<IUnit> tx = {MakeIUnit({{1, 0}}), MakeIUnit({{0, 1}})};
  EXPECT_DOUBLE_EQ(RankedListDistance(tx, tx, 0.9), 0.0);
}

TEST(RankedListDistanceTest, Symmetric) {
  std::vector<IUnit> tx = {MakeIUnit({{1, 0, 0}}), MakeIUnit({{0, 1, 0}})};
  std::vector<IUnit> ty = {MakeIUnit({{0, 1, 0}}), MakeIUnit({{0, 0, 1}})};
  EXPECT_DOUBLE_EQ(RankedListDistance(tx, ty, 0.9),
                   RankedListDistance(ty, tx, 0.9));
}

TEST(RankedListDistanceTest, SwappedRanksCostTwoEach) {
  // Same items, ranks swapped: each direction pays |1-2| + |2-1| = 2.
  std::vector<IUnit> tx = {MakeIUnit({{1, 0}}), MakeIUnit({{0, 1}})};
  std::vector<IUnit> ty = {MakeIUnit({{0, 1}}), MakeIUnit({{1, 0}})};
  EXPECT_DOUBLE_EQ(RankedListDistance(tx, ty, 0.9), 4.0);
}

TEST(RankedListDistanceTest, NoMatchesHitUpperBound) {
  std::vector<IUnit> tx = {MakeIUnit({{1, 0, 0, 0}}),
                           MakeIUnit({{0, 1, 0, 0}})};
  std::vector<IUnit> ty = {MakeIUnit({{0, 0, 1, 0}}),
                           MakeIUnit({{0, 0, 0, 1}})};
  double d = RankedListDistance(tx, ty, 0.9);
  EXPECT_DOUBLE_EQ(d, RankedListDistanceUpperBound(2, 2));
  // |T_y|+1 = 3: ranks 1,2 -> |1-3|+|2-3| = 3 per direction.
  EXPECT_DOUBLE_EQ(d, 6.0);
}

TEST(RankedListDistanceTest, ClosestRankPreferredWhenMultipleMatch) {
  // tx[1] matches both ty[0] and ty[2]; the rank-closest (index 0 vs 2 for
  // 1-based rank 2) is ty[2]... ranks: |2-1|=1 vs |2-3|=1 — tie keeps first.
  // Use an asymmetric case instead: tx has one item of rank 1 matching ty
  // ranks 2 and 3 -> pays |1-2| = 1, not |1-3|.
  IUnit common = MakeIUnit({{1, 0}});
  IUnit other = MakeIUnit({{0, 1}});
  std::vector<IUnit> tx = {common};
  std::vector<IUnit> ty = {other, common, common};
  double d = RankedListDistance(tx, ty, 0.9);
  // Forward: |1-2| = 1. Backward: other pays |1-2|=1 (no match -> |Tx|+1=2),
  // common at rank 2 pays |2-1| = 1, common at rank 3 pays |3-1| = 2.
  EXPECT_DOUBLE_EQ(d, 1.0 + 1.0 + 1.0 + 2.0);
}

TEST(RankedListDistanceTest, EmptyLists) {
  std::vector<IUnit> tx = {MakeIUnit({{1.0}})};
  std::vector<IUnit> empty;
  EXPECT_DOUBLE_EQ(RankedListDistance(empty, empty, 0.5), 0.0);
  // One unmatched item: |1 - (0+1)| = 0 ... rank vs |T_y|+1 = 1 -> 0.
  EXPECT_DOUBLE_EQ(RankedListDistance(tx, empty, 0.5), 0.0);
}

TEST(RankedListDistanceTest, UpperBoundFormula) {
  EXPECT_DOUBLE_EQ(RankedListDistanceUpperBound(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(RankedListDistanceUpperBound(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(RankedListDistanceUpperBound(3, 3),
                   (3 + 2 + 1) * 2.0);
}

// Parameterized: distance to self is 0 for all list lengths; distance is
// always within the upper bound.
class RankedListPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RankedListPropertyTest, SelfZeroAndBounded) {
  size_t n = GetParam();
  std::vector<IUnit> tx, ty;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> fa(n + 1, 0.0), fb(n + 1, 0.0);
    fa[i] = 1.0;
    fb[n - i] = 1.0;
    tx.push_back(MakeIUnit({fa}));
    ty.push_back(MakeIUnit({fb}));
  }
  EXPECT_DOUBLE_EQ(RankedListDistance(tx, tx, 0.9), 0.0);
  double d = RankedListDistance(tx, ty, 0.9);
  EXPECT_LE(d, RankedListDistanceUpperBound(n, n) + 1e-9);
  EXPECT_GE(d, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Lengths, RankedListPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace dbx
