// Tests for the faceted-navigation baseline: selection semantics, digests,
// digest similarity, and retrieval error.

#include <gtest/gtest.h>

#include "src/data/mushroom.h"
#include "src/data/used_cars.h"
#include "src/facet/facet_engine.h"

namespace dbx {
namespace {

class FacetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { table_ = new Table(GenerateUsedCars(2000, 3)); }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  FacetEngine MakeEngine() {
    auto e = FacetEngine::Create(table_, DiscretizerOptions{});
    EXPECT_TRUE(e.ok());
    return std::move(*e);
  }
  static Table* table_;
};

Table* FacetTest::table_ = nullptr;

TEST_F(FacetTest, StartsWithAllRows) {
  FacetEngine e = MakeEngine();
  EXPECT_EQ(e.result_rows().size(), table_->num_rows());
  EXPECT_TRUE(e.selections().empty());
}

TEST_F(FacetTest, SingleSelectionFilters) {
  FacetEngine e = MakeEngine();
  ASSERT_TRUE(e.SelectValue("BodyType", "SUV").ok());
  EXPECT_GT(e.result_rows().size(), 0u);
  EXPECT_LT(e.result_rows().size(), table_->num_rows());
  auto suv_col = table_->ColByName("BodyType");
  for (uint32_t r : e.result_rows()) {
    EXPECT_EQ((*suv_col)->ValueAt(r).AsString(), "SUV");
  }
}

TEST_F(FacetTest, OrWithinAttributeAndAcrossAttributes) {
  FacetEngine e = MakeEngine();
  ASSERT_TRUE(e.SelectValue("Make", "Ford").ok());
  size_t ford = e.result_rows().size();
  ASSERT_TRUE(e.SelectValue("Make", "Jeep").ok());
  size_t ford_or_jeep = e.result_rows().size();
  EXPECT_GT(ford_or_jeep, ford);  // OR within attribute widens

  ASSERT_TRUE(e.SelectValue("BodyType", "SUV").ok());
  EXPECT_LT(e.result_rows().size(), ford_or_jeep);  // AND across narrows
}

TEST_F(FacetTest, DeselectAndClearRestore) {
  FacetEngine e = MakeEngine();
  ASSERT_TRUE(e.SelectValue("Make", "Ford").ok());
  ASSERT_TRUE(e.SelectValue("BodyType", "SUV").ok());
  ASSERT_TRUE(e.DeselectValue("BodyType", "SUV").ok());
  EXPECT_EQ(e.selections().size(), 1u);
  ASSERT_TRUE(e.ClearAttribute("Make").ok());
  EXPECT_EQ(e.result_rows().size(), table_->num_rows());
  ASSERT_TRUE(e.SelectValue("Make", "Ford").ok());
  e.Reset();
  EXPECT_TRUE(e.selections().empty());
}

TEST_F(FacetTest, NumericAttributesSelectableByBinLabel) {
  FacetEngine e = MakeEngine();
  const DiscretizedTable& dt = e.discretized();
  auto idx = dt.IndexOf("Price");
  ASSERT_TRUE(idx.has_value());
  ASSERT_GT(dt.attr(*idx).cardinality(), 1u);
  std::string first_bin = dt.attr(*idx).labels[0];
  ASSERT_TRUE(e.SelectValue("Price", first_bin).ok());
  EXPECT_GT(e.result_rows().size(), 0u);
  EXPECT_LT(e.result_rows().size(), table_->num_rows());
}

TEST_F(FacetTest, NonQueriableAttributeRejected) {
  FacetEngine e = MakeEngine();
  // Engine is non-queriable in the used-car schema (Limitation 2).
  Status s = e.SelectValue("Engine", "V6");
  EXPECT_TRUE(s.IsFailedPrecondition());
  // But its digest is still visible.
  auto d = e.DigestForValue("Engine", "V6");
  EXPECT_TRUE(d.ok());
}

TEST_F(FacetTest, UnknownAttributeOrValue) {
  FacetEngine e = MakeEngine();
  EXPECT_TRUE(e.SelectValue("Nope", "x").IsNotFound());
  EXPECT_TRUE(e.SelectValue("Make", "NotAMake").IsNotFound());
}

TEST_F(FacetTest, DigestCountsSumToResultSize) {
  FacetEngine e = MakeEngine();
  ASSERT_TRUE(e.SelectValue("BodyType", "SUV").ok());
  SummaryDigest d = e.Digest();
  EXPECT_EQ(d.result_size, e.result_rows().size());
  auto make_idx = d.IndexOf("Make");
  ASSERT_TRUE(make_idx.has_value());
  uint64_t total = 0;
  for (uint64_t c : d.attrs[*make_idx].counts) total += c;
  EXPECT_EQ(total, d.result_size);  // Make never null in this data
}

TEST_F(FacetTest, DigestForValueConditionsWithinResult) {
  FacetEngine e = MakeEngine();
  ASSERT_TRUE(e.SelectValue("BodyType", "SUV").ok());
  auto d = e.DigestForValue("Make", "Jeep");
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d->result_size, 0u);
  EXPECT_LT(d->result_size, e.result_rows().size());
  // All mass on Make=Jeep.
  auto make_idx = d->IndexOf("Make");
  const AttributeDigest& make = d->attrs[*make_idx];
  for (size_t i = 0; i < make.labels.size(); ++i) {
    if (make.labels[i] != "Jeep") {
      EXPECT_EQ(make.counts[i], 0u);
    }
  }
}

TEST_F(FacetTest, OperationCountTracksInteractions) {
  FacetEngine e = MakeEngine();
  size_t before = e.operation_count();
  ASSERT_TRUE(e.SelectValue("Make", "Ford").ok());
  ASSERT_TRUE(e.DeselectValue("Make", "Ford").ok());
  EXPECT_EQ(e.operation_count(), before + 2);
}

// --- Digest similarity / retrieval error ------------------------------------------

TEST_F(FacetTest, DigestSelfSimilarityIsOne) {
  FacetEngine e = MakeEngine();
  SummaryDigest d = e.Digest();
  EXPECT_NEAR(DigestCosineSimilarity(d, d), 1.0, 1e-12);
}

TEST_F(FacetTest, SimilarValuesScoreHigherThanDissimilar) {
  // In the mushroom data GillColor brown ~ white is the designed similar
  // pair; buff is poisonous-leaning and must be farther from brown.
  Table mush = GenerateMushrooms(4000, 11);
  auto e = FacetEngine::Create(&mush, DiscretizerOptions{});
  ASSERT_TRUE(e.ok());
  auto brown = e->DigestForValue("GillColor", "brown");
  auto white = e->DigestForValue("GillColor", "white");
  auto buff = e->DigestForValue("GillColor", "buff");
  ASSERT_TRUE(brown.ok());
  ASSERT_TRUE(white.ok());
  ASSERT_TRUE(buff.ok());
  EXPECT_GT(DigestCosineSimilarity(*brown, *white),
            DigestCosineSimilarity(*brown, *buff));
}

TEST(RetrievalErrorTest, IdenticalIsZero) {
  RowSet a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(RetrievalError(a, a), 0.0);
}

TEST(RetrievalErrorTest, MissesAndSpuriousBothCount) {
  RowSet target = {1, 2, 3, 4};
  RowSet obtained = {3, 4, 5};
  // Missing {1,2}, spurious {5}: 3/4.
  EXPECT_DOUBLE_EQ(RetrievalError(target, obtained), 0.75);
}

TEST(RetrievalErrorTest, EmptyTargetConventions) {
  EXPECT_DOUBLE_EQ(RetrievalError({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(RetrievalError({}, {1}), 1.0);
}

TEST(RetrievalErrorTest, DisjointExceedsOne) {
  RowSet target = {1, 2};
  RowSet obtained = {3, 4, 5};
  EXPECT_DOUBLE_EQ(RetrievalError(target, obtained), 2.5);
}

}  // namespace
}  // namespace dbx
