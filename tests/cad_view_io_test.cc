// Tests for CAD View JSON/CSV export.

#include <gtest/gtest.h>

#include "src/core/cad_view_builder.h"
#include "src/core/cad_view_io.h"
#include "src/data/used_cars.h"

namespace dbx {
namespace {

// Minimal structural JSON validator: balanced braces/brackets outside
// strings, proper string termination.
bool JsonBalanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        --depth;
        if (depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

class CadViewIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(GenerateUsedCars(2000, 3));
    CadViewOptions o;
    o.pivot_attr = "Make";
    o.pivot_values = {"Ford", "Jeep"};
    o.max_compare_attrs = 4;
    o.iunits_per_value = 2;
    o.seed = 5;
    view_ = new CadView(
        std::move(BuildCadView(TableSlice::All(*table_), o)).value());
  }
  static void TearDownTestSuite() {
    delete view_;
    delete table_;
    view_ = nullptr;
    table_ = nullptr;
  }
  static Table* table_;
  static CadView* view_;
};

Table* CadViewIoTest::table_ = nullptr;
CadView* CadViewIoTest::view_ = nullptr;

TEST_F(CadViewIoTest, JsonIsStructurallyValid) {
  std::string json = CadViewToJson(*view_);
  EXPECT_TRUE(JsonBalanced(json)) << json.substr(0, 200);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"pivot_attr\":\"Make\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":["), std::string::npos);
  EXPECT_NE(json.find("\"Ford\""), std::string::npos);
  EXPECT_NE(json.find("\"timings_ms\""), std::string::npos);
}

TEST_F(CadViewIoTest, JsonDeterministic) {
  EXPECT_EQ(CadViewToJson(*view_), CadViewToJson(*view_));
}

TEST_F(CadViewIoTest, CsvHasOneLinePerCell) {
  std::string csv = CadViewToCsv(*view_);
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  size_t expected = 1;  // header
  for (const CadViewRow& row : view_->rows) {
    expected += row.iunits.size() * view_->compare_attrs.size();
  }
  EXPECT_EQ(lines, expected);
  EXPECT_EQ(csv.substr(0, 11), "pivot_value");
}

TEST(JsonEscapeTest, EscapesControlAndSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace dbx
