// Tests for the observability layer (src/obs/): metrics registry semantics
// and concurrency, histogram quantiles against a sorted-vector oracle,
// span collection and parent/child nesting across pool workers, Chrome-trace
// JSON well-formedness, Prometheus exposition, and the EXPLAIN span-tree
// renderer.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/explain.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace dbx {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (values only, no semantics): enough to prove a
// Chrome trace export is well-formed without pulling in a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("dbx_test_events_total");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  // Same name -> same instrument.
  EXPECT_EQ(registry.GetCounter("dbx_test_events_total"), c);

  Gauge* g = registry.GetGauge("dbx_test_entries");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
  EXPECT_EQ(registry.GetGauge("dbx_test_entries"), g);
}

TEST(MetricsTest, HistogramCountsAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(500.0);  // overflow bucket
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 555.5);
  std::vector<uint64_t> cum = h.CumulativeCounts();
  ASSERT_EQ(cum.size(), 4u);
  EXPECT_EQ(cum[0], 1u);
  EXPECT_EQ(cum[1], 2u);
  EXPECT_EQ(cum[2], 3u);
  EXPECT_EQ(cum[3], 4u);  // total including overflow
}

TEST(MetricsTest, HistogramQuantileMatchesSortedVectorOracle) {
  // Deterministic pseudo-random samples over [0, 200); the histogram estimate
  // must land in the same bucket as the exact order statistic.
  std::vector<double> bounds = {1, 2, 5, 10, 20, 50, 100, 200};
  Histogram h(bounds);
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.NextDouble() * 200.0;
    samples.push_back(v);
    h.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.95, 0.99}) {
    double exact = samples[static_cast<size_t>(q * (samples.size() - 1))];
    double est = h.Quantile(q);
    // The estimate interpolates within the containing bucket: it must lie
    // within one bucket of the exact value.
    auto bucket_of = [&](double v) {
      return std::lower_bound(bounds.begin(), bounds.end(), v) -
             bounds.begin();
    };
    EXPECT_LE(std::abs(static_cast<long>(bucket_of(est)) -
                       static_cast<long>(bucket_of(exact))),
              1)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(MetricsTest, HistogramQuantileEdgeCases) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty
  h.Observe(100.0);                        // overflow only
  // Overflow observations clamp to the highest finite bound.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 4.0);
}

TEST(MetricsTest, RegistryConcurrentHammer) {
  // Concurrent Get* + update across threads: TSAN-clean and no lost counts.
  MetricsRegistry registry;
  const size_t kThreads = std::max<size_t>(4, TestThreads(4));
  const int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, kPerThread] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("dbx_test_hammer_total")->Increment();
        registry.GetGauge("dbx_test_hammer_gauge")->Add(1);
        registry.GetHistogram("dbx_test_hammer_ms")->Observe(i % 7);
      }
    });
  }
  for (auto& th : threads) th.join();
  const uint64_t expect = kThreads * static_cast<uint64_t>(kPerThread);
  EXPECT_EQ(registry.GetCounter("dbx_test_hammer_total")->Value(), expect);
  EXPECT_EQ(registry.GetGauge("dbx_test_hammer_gauge")->Value(),
            static_cast<int64_t>(expect));
  EXPECT_EQ(registry.GetHistogram("dbx_test_hammer_ms")->Count(), expect);
}

TEST(MetricsTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.GetCounter("dbx_test_hits_total")->Increment(3);
  registry.GetGauge("dbx_test_bytes")->Set(1024);
  Histogram* h = registry.GetHistogram("dbx_test_lat_ms", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(20.0);
  EXPECT_EQ(registry.PrometheusText(),
            "# TYPE dbx_test_hits_total counter\n"
            "dbx_test_hits_total 3\n"
            "# TYPE dbx_test_bytes gauge\n"
            "dbx_test_bytes 1024\n"
            "# TYPE dbx_test_lat_ms histogram\n"
            "dbx_test_lat_ms_bucket{le=\"1\"} 1\n"
            "dbx_test_lat_ms_bucket{le=\"10\"} 2\n"
            "dbx_test_lat_ms_bucket{le=\"+Inf\"} 3\n"
            "dbx_test_lat_ms_sum 25.5\n"
            "dbx_test_lat_ms_count 3\n");
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceTest, DisabledTracerIsInert) {
  Tracer* off = Tracer::Disabled();
  EXPECT_FALSE(off->enabled());
  {
    ScopedSpan span(off, "nothing");
    EXPECT_EQ(span.id(), 0u);
    EXPECT_FALSE(span.active());
    span.AddArg("k", "v");
  }
  ScopedSpan null_span(nullptr, "also nothing");
  EXPECT_EQ(null_span.id(), 0u);
  EXPECT_TRUE(off->Events().empty());
  EXPECT_EQ(off->Emit("x", 0, 0, 1), 0u);
}

TEST(TraceTest, RecordsNestedSpans) {
  Tracer tracer;
  {
    ScopedSpan root(&tracer, "root");
    ASSERT_NE(root.id(), 0u);
    {
      ScopedSpan child(&tracer, "child", root.id());
      child.AddArg("rows", static_cast<uint64_t>(42));
      child.AddArg("mode", "fast");
    }
  }
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Chronological: root started first.
  EXPECT_EQ(events[0].name, "root");
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].name, "child");
  EXPECT_EQ(events[1].parent, events[0].id);
  EXPECT_EQ(events[1].args, "rows=42, mode=fast");
  // The child closed before the root: its extent nests inside the root's.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST(TraceTest, ExplicitEndStopsTheClockEarly) {
  Tracer tracer;
  ScopedSpan span(&tracer, "early");
  span.End();
  span.End();  // idempotent
  EXPECT_EQ(tracer.Events().size(), 1u);
}

TEST(TraceTest, SpanNestingAcrossPoolWorkers) {
  // Spans opened inside ParallelFor chunks must attach to the parent passed
  // by id — nesting is explicit, never inferred from thread-local state.
  Tracer tracer;
  const size_t kItems = 64;
  uint64_t parent_id = 0;
  {
    ScopedSpan parent(&tracer, "fanout");
    parent_id = parent.id();
    Status st = ParallelFor(TestThreads(4), 0, kItems, 4,
                            [&tracer, parent_id](size_t i) {
                              ScopedSpan leaf(&tracer, "leaf", parent_id);
                              leaf.AddArg("index", static_cast<uint64_t>(i));
                              return Status::OK();
                            });
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), kItems + 1);
  size_t leaves = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "leaf") {
      ++leaves;
      EXPECT_EQ(e.parent, parent_id);
    }
  }
  EXPECT_EQ(leaves, kItems);
}

TEST(TraceTest, RingOverflowDropsOldestAndCounts) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.Emit("span" + std::to_string(i), 0, static_cast<uint64_t>(i), 1);
  }
  EXPECT_EQ(tracer.dropped(), 6u);
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // The newest four survive.
  EXPECT_EQ(events.front().name, "span6");
  EXPECT_EQ(events.back().name, "span9");
}

TEST(TraceTest, ClearResetsEpochAndSpans) {
  Tracer tracer;
  tracer.Emit("before", 0, 0, 1);
  tracer.Clear();
  EXPECT_TRUE(tracer.Events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TraceTest, ClearConcurrentWithSpansIsRaceFree) {
  // Regression for the epoch_ns_ data race the capability-annotation sweep
  // flushed out: NowNs() reads the epoch lock-free on every span open/close
  // while Clear() re-stamps it under mu_. The member is atomic now; this
  // test drives both sides concurrently so a reintroduced plain int64 shows
  // up under -fsanitize=thread (scripts/check_tsan.sh).
  Tracer tracer(/*capacity=*/256);
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([&tracer, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        ScopedSpan span(&tracer, "work");
        span.AddArg("k", uint64_t{1});
      }
    });
  }
  for (int i = 0; i < 200; ++i) tracer.Clear();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : emitters) th.join();
  // Post-conditions are loose by design (spans from the last Clear onward
  // survive); the point is that the schedule above ran clean.
  tracer.Clear();
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  Tracer tracer;
  {
    ScopedSpan root(&tracer, "root \"quoted\"\npath\\seg");
    root.AddArg("detail", "a=b\tc");
    ScopedSpan child(&tracer, "child", root.id());
  }
  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceTest, WriteChromeJsonRoundTripsThroughDisk) {
  Tracer tracer;
  tracer.Emit("stage", 0, 1000, 2000, "rows=5");
  std::string path = ::testing::TempDir() + "/dbx_obs_trace.json";
  Status st = tracer.WriteChromeJson(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  fclose(f);
  EXPECT_EQ(content, tracer.ToChromeJson());
  EXPECT_TRUE(JsonChecker(content).Valid());
}

TEST(TraceTest, ConcurrentEmitIsSafe) {
  Tracer tracer;
  const size_t kThreads = std::max<size_t>(4, TestThreads(4));
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < 500; ++i) {
        ScopedSpan span(&tracer, "worker" + std::to_string(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.Events().size(), kThreads * 500u);
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering + pool bridge

TEST(ExplainTest, RendersSpanTreeWithSharesAndArgs) {
  std::vector<TraceEvent> events;
  events.push_back({1, 0, "build", "", 0, 1000000, 0});
  events.push_back({2, 1, "partition", "partitions=4", 0, 400000, 0});
  events.push_back({3, 1, "kmeans", "k=3", 400000, 600000, 1});
  std::string tree = RenderSpanTree(events);
  EXPECT_NE(tree.find("build"), std::string::npos);
  EXPECT_NE(tree.find("partition"), std::string::npos);
  EXPECT_NE(tree.find("partitions=4"), std::string::npos);
  EXPECT_NE(tree.find("100.0%"), std::string::npos);  // root share
  // Children are indented beneath the root.
  EXPECT_LT(tree.find("build"), tree.find("partition"));
}

TEST(ExplainTest, CollapsesWideFanout) {
  std::vector<TraceEvent> events;
  events.push_back({1, 0, "parent", "", 0, 1000, 0});
  for (uint64_t i = 0; i < 20; ++i) {
    events.push_back({2 + i, 1, "kmeans", "", i * 10, 10, 0});
  }
  std::string tree = RenderSpanTree(events, /*collapse_threshold=*/8);
  EXPECT_NE(tree.find("kmeans x20"), std::string::npos);
}

TEST(ExplainTest, EmptyTreeAndOrphanSpans) {
  EXPECT_EQ(RenderSpanTree({}), "(no spans recorded)\n");
  // A span whose parent is missing renders as a root, not lost.
  std::vector<TraceEvent> events;
  events.push_back({5, 99, "orphan", "", 0, 10, 0});
  EXPECT_NE(RenderSpanTree(events).find("orphan"), std::string::npos);
}

TEST(ExplainTest, ThreadPoolMetricsBridge) {
  ThreadPool::Stats stats;
  stats.tasks_submitted = 11;
  stats.parallel_for_calls = 3;
  stats.queue_depth = 2;
  stats.num_threads = 4;
  stats.worker_busy_ns = {1000000, 2000000, 0, 500000};
  MetricsRegistry registry;
  ExportThreadPoolMetrics(stats, &registry);
  EXPECT_EQ(registry.GetGauge("dbx_pool_tasks_submitted")->Value(), 11);
  EXPECT_EQ(registry.GetGauge("dbx_pool_parallel_for_calls")->Value(), 3);
  EXPECT_EQ(registry.GetGauge("dbx_pool_queue_depth")->Value(), 2);
  EXPECT_EQ(registry.GetGauge("dbx_pool_threads")->Value(), 4);
  std::string line = ThreadPoolStatsLine(stats);
  EXPECT_NE(line.find("threads=4"), std::string::npos);
  EXPECT_NE(line.find("parallel_for=3"), std::string::npos);
}

}  // namespace
}  // namespace dbx
