// Property tests for the sharded-build merge layer (DESIGN.md §13): shard
// ranges, contingency/frequency count merges, coreset sketches, and the
// sharded partition seed must all be associative, order-insensitive, and
// byte-identical to their single-pass equivalents — the invariant the
// sharded CAD View builder's determinism contract rests on.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/coreset.h"
#include "src/core/cad_view_builder.h"
#include "src/core/cad_view_io.h"
#include "src/core/sharded.h"
#include "src/data/mushroom.h"
#include "src/data/used_cars.h"
#include "src/stats/contingency.h"
#include "src/stats/discretizer.h"
#include "src/stats/frequency.h"
#include "src/util/rng.h"
#include "src/util/shard.h"
#include "src/util/thread_pool.h"

namespace dbx {
namespace {

// ---------------------------------------------------------------------------
// Shard range primitives.

TEST(ShardRangeTest, RangesCoverRowsDisjointAscending) {
  for (size_t rows : {size_t{1}, size_t{7}, size_t{100}, size_t{1001}}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
      auto ranges = MakeShardRanges(rows, shards);
      ASSERT_FALSE(ranges.empty());
      EXPECT_EQ(ranges.front().begin, 0u);
      EXPECT_EQ(ranges.back().end, rows);
      for (size_t s = 1; s < ranges.size(); ++s) {
        EXPECT_EQ(ranges[s].begin, ranges[s - 1].end);
        EXPECT_LE(ranges[s - 1].size(), ranges[s].size() + 1);
      }
    }
  }
}

TEST(ShardRangeTest, EffectiveCountClamps) {
  EXPECT_EQ(EffectiveShardCount(100, 8, 50), 2u);
  EXPECT_EQ(EffectiveShardCount(100, 8, 1), 8u);
  EXPECT_EQ(EffectiveShardCount(100, 0, 1), 1u);
  EXPECT_EQ(EffectiveShardCount(0, 8, 1), 1u);
  EXPECT_EQ(EffectiveShardCount(3, 8, 1), 3u);
  EXPECT_EQ(EffectiveShardCount(8124, 4, 1024), 4u);
}

// ---------------------------------------------------------------------------
// Count-table merges: random codes, random shard boundaries, every merge
// order. Boundaries come from the repo's seeded Rng so failures replay.

std::vector<size_t> RandomBoundaries(size_t n, size_t shards, Rng* rng) {
  std::vector<size_t> cuts{0, n};
  while (cuts.size() < shards + 1) {
    cuts.push_back(rng->NextBounded(n + 1));
  }
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

std::vector<int32_t> RandomCodes(size_t n, size_t card, double null_p,
                                 Rng* rng) {
  std::vector<int32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    codes[i] = rng->NextBool(null_p)
                   ? -1
                   : static_cast<int32_t>(rng->NextBounded(card));
  }
  return codes;
}

void ExpectSameContingency(const ContingencyTable& a,
                           const ContingencyTable& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(a.grand_total(), b.grand_total());
  for (size_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(a.row_total(r), b.row_total(r));
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a.at(r, c), b.at(r, c)) << "cell " << r << "," << c;
    }
  }
  for (size_t c = 0; c < a.cols(); ++c) {
    EXPECT_EQ(a.col_total(c), b.col_total(c));
  }
}

TEST(ContingencyMergeTest, RandomShardsMatchSinglePassAnyOrder) {
  Rng rng(2024);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const size_t n = 4096;
    std::vector<int32_t> a = RandomCodes(n, 5, 0.05, &rng);
    std::vector<int32_t> b = RandomCodes(n, 9, 0.05, &rng);
    ContingencyTable full = ContingencyTable::FromCodes(a, 5, b, 9);

    std::vector<size_t> cuts = RandomBoundaries(n, shards, &rng);
    std::vector<ContingencyTable> parts;
    for (size_t s = 0; s + 1 < cuts.size(); ++s) {
      parts.push_back(
          ContingencyTable::FromCodesRange(a, 5, b, 9, cuts[s], cuts[s + 1]));
    }
    // Forward merge order.
    ContingencyTable fwd = parts[0];
    for (size_t s = 1; s < parts.size(); ++s) {
      ASSERT_TRUE(fwd.MergeFrom(parts[s]).ok());
    }
    ExpectSameContingency(fwd, full);
    // Shuffled merge order — the merge must be order-insensitive.
    std::vector<size_t> order(parts.size());
    for (size_t s = 0; s < order.size(); ++s) order[s] = s;
    rng.Shuffle(&order);
    ContingencyTable shuffled(full.rows(), full.cols());
    for (size_t s : order) {
      ASSERT_TRUE(shuffled.MergeFrom(parts[s]).ok());
    }
    ExpectSameContingency(shuffled, full);
  }
}

TEST(ContingencyMergeTest, DimensionMismatchRejected) {
  ContingencyTable a(2, 3);
  ContingencyTable b(3, 2);
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

TEST(FrequencyMergeTest, RandomShardsMatchSinglePassAnyOrder) {
  Rng rng(515);
  std::vector<std::string> labels{"a", "b", "c", "d", "e", "f"};
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const size_t n = 2048;
    std::vector<int32_t> codes = RandomCodes(n, labels.size(), 0.1, &rng);
    FrequencyTable full = FrequencyTable::FromCodes(codes, labels.size(),
                                                    labels);
    std::vector<size_t> cuts = RandomBoundaries(n, shards, &rng);
    std::vector<size_t> order(cuts.size() - 1);
    for (size_t s = 0; s < order.size(); ++s) order[s] = s;
    rng.Shuffle(&order);
    std::unique_ptr<FrequencyTable> merged;
    for (size_t s : order) {
      FrequencyTable part = FrequencyTable::FromCodesRange(
          codes, labels.size(), labels, cuts[s], cuts[s + 1]);
      if (!merged) {
        merged = std::make_unique<FrequencyTable>(std::move(part));
      } else {
        ASSERT_TRUE(merged->MergeFrom(part).ok());
      }
    }
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->counts(), full.counts());
    EXPECT_EQ(merged->total(), full.total());
    EXPECT_EQ(merged->null_count(), full.null_count());
    ASSERT_EQ(merged->sorted().size(), full.sorted().size());
    for (size_t i = 0; i < full.sorted().size(); ++i) {
      EXPECT_EQ(merged->sorted()[i].code, full.sorted()[i].code);
      EXPECT_EQ(merged->sorted()[i].label, full.sorted()[i].label);
      EXPECT_EQ(merged->sorted()[i].count, full.sorted()[i].count);
    }
  }
}

// ---------------------------------------------------------------------------
// Coreset sketches: the bottom-k sample must not care where shard cuts fall.

TEST(CoresetTest, ShardedMergeMatchesSinglePass) {
  Rng rng(99);
  std::vector<size_t> rows(3000);
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i * 3 + 1;
  const uint64_t salt = 0xABCDEF12345678ULL;
  const size_t budget = 256;
  CoresetSketch full = BuildCoresetSketch(rows, 0, rows.size(), salt, budget);
  ASSERT_EQ(full.entries.size(), budget);
  for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    std::vector<size_t> cuts = RandomBoundaries(rows.size(), shards, &rng);
    std::vector<size_t> order(cuts.size() - 1);
    for (size_t s = 0; s < order.size(); ++s) order[s] = s;
    rng.Shuffle(&order);
    std::unique_ptr<CoresetSketch> merged;
    for (size_t s : order) {
      CoresetSketch part =
          BuildCoresetSketch(rows, cuts[s], cuts[s + 1], salt, budget);
      if (!merged) {
        merged = std::make_unique<CoresetSketch>(std::move(part));
      } else {
        ASSERT_TRUE(MergeCoresetSketch(merged.get(), part).ok());
      }
    }
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->entries, full.entries)
        << "shards=" << shards << " diverged from the single-pass sketch";
    EXPECT_EQ(CoresetMembers(*merged), CoresetMembers(full));
  }
}

TEST(CoresetTest, SmallInputKeepsEveryRowAscending) {
  std::vector<size_t> rows{42, 7, 19, 3};
  CoresetSketch s = BuildCoresetSketch(rows, 0, rows.size(), 1, 64);
  EXPECT_EQ(CoresetMembers(s), (std::vector<size_t>{3, 7, 19, 42}));
}

TEST(CoresetTest, SelectsBottomKByHash) {
  std::vector<size_t> rows(100);
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const uint64_t salt = 7;
  CoresetSketch s = BuildCoresetSketch(rows, 0, rows.size(), salt, 10);
  ASSERT_EQ(s.entries.size(), 10u);
  uint64_t kept_max = s.entries.back().first;
  size_t below = 0;
  for (size_t r : rows) {
    if (CoresetRowHash(salt, r) <= kept_max) ++below;
  }
  EXPECT_EQ(below, 10u);
}

TEST(CoresetTest, BudgetMismatchRejected) {
  CoresetSketch a, b;
  a.budget = 8;
  b.budget = 16;
  EXPECT_FALSE(MergeCoresetSketch(&a, b).ok());
}

// ---------------------------------------------------------------------------
// Sharded partition seeds and whole-view byte identity.

Result<DiscretizedTable> DiscretizeAll(const Table& table) {
  return DiscretizedTable::Build(TableSlice::All(table), DiscretizerOptions{});
}

TEST(ShardedSeedTest, MatchesUnshardedPartitions) {
  Table table = GenerateMushrooms(2000);
  auto dt = DiscretizeAll(table);
  ASSERT_TRUE(dt.ok());

  CadViewOptions o;
  o.pivot_attr = "Class";
  o.max_compare_attrs = 4;
  CadViewBuildExtras extras;
  auto baseline = BuildCadViewFromDiscretized(*dt, o, nullptr, &extras);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto idx = dt->IndexOf("Class");
  ASSERT_TRUE(idx.has_value());
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ShardOptions sharding;
    sharding.num_shards = shards;
    sharding.min_rows_per_shard = 1;
    auto seed = BuildShardedPartitionSeed(*dt, *idx, sharding, TestThreads(2));
    ASSERT_TRUE(seed.ok()) << seed.status().ToString();
    ASSERT_EQ(seed->members_by_code.size(),
              extras.partitions.members_by_code.size());
    for (size_t p = 0; p < seed->members_by_code.size(); ++p) {
      EXPECT_EQ(seed->members_by_code[p].first,
                extras.partitions.members_by_code[p].first);
      EXPECT_EQ(seed->members_by_code[p].second,
                extras.partitions.members_by_code[p].second)
          << "shards=" << shards << " partition code "
          << seed->members_by_code[p].first;
    }
  }
}

std::string SerializeStable(CadView view) {
  view.timings = CadViewTimings{};
  return CadViewToJson(view) + "\n---\n" + CadViewToCsv(view);
}

void ExpectShardedBuildsIdentical(const Table& table, CadViewOptions options) {
  options.sharding.num_shards = 1;
  auto baseline = BuildCadView(TableSlice::All(table), options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string expected = SerializeStable(*baseline);
  for (size_t shards :
       {size_t{2}, size_t{4}, size_t{8}, TestShards(2)}) {
    options.sharding.num_shards = shards;
    options.sharding.min_rows_per_shard = 1;
    auto view = BuildCadView(TableSlice::All(table), options);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(SerializeStable(*view), expected)
        << "num_shards=" << shards << " diverged from the unsharded build";
  }
}

TEST(ShardedBuildTest, MushroomByteIdenticalAcrossShardCounts) {
  Table table = GenerateMushrooms(2000);
  CadViewOptions o;
  o.pivot_attr = "Class";
  o.max_compare_attrs = 4;
  o.seed = 7;
  o.num_threads = TestThreads(2);
  ExpectShardedBuildsIdentical(table, o);
}

TEST(ShardedBuildTest, UsedCarsByteIdenticalAcrossShardCounts) {
  Table table = GenerateUsedCars(4000, 11);
  CadViewOptions o;
  o.pivot_attr = "Make";
  o.pivot_values = {"Chevrolet", "Ford", "Toyota"};
  o.max_compare_attrs = 5;
  o.seed = 3;
  o.num_threads = TestThreads(2);
  ExpectShardedBuildsIdentical(table, o);
}

TEST(ShardedBuildTest, CoresetModeByteIdenticalAcrossShardCounts) {
  // Coreset clustering changes the view vs. exact mode (it is fingerprinted
  // in the cache key for exactly that reason), but must itself be invariant
  // to shard and thread counts: membership depends only on (seed, row).
  Table table = GenerateUsedCars(4000, 11);
  CadViewOptions o;
  o.pivot_attr = "Make";
  o.pivot_values = {"Chevrolet", "Ford", "Toyota"};
  o.max_compare_attrs = 5;
  o.seed = 3;
  o.sharding.coreset_clustering = true;
  o.sharding.coreset_budget = 300;
  ExpectShardedBuildsIdentical(table, o);

  o.sharding.num_shards = 1;
  auto exact = BuildCadView(TableSlice::All(table), CadViewOptions{o});
  CadViewOptions plain = o;
  plain.sharding.coreset_clustering = false;
  auto full = BuildCadView(TableSlice::All(table), plain);
  ASSERT_TRUE(exact.ok() && full.ok());
  EXPECT_NE(SerializeStable(*exact), SerializeStable(*full))
      << "coreset mode unexpectedly produced the exact-mode view; the "
         "cache-key fingerprint test relies on them differing";
}

}  // namespace
}  // namespace dbx
