// Property-based suites spanning modules: predicate algebra laws, CSV
// round-trips over randomized tables, materialization, and a CAD View
// invariant sweep over the full (k, l, c) option grid.

#include <gtest/gtest.h>

#include "src/core/cad_view_builder.h"
#include "src/core/iunit_similarity.h"
#include "src/data/used_cars.h"
#include "src/relation/csv.h"
#include "src/relation/materialize.h"
#include "src/query/canonical.h"
#include "src/query/parser.h"
#include "src/relation/predicate.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

// Random table with mixed types and occasional nulls.
Table RandomTable(size_t rows, uint64_t seed) {
  Schema s = std::move(Schema::Make({
                           {"C1", AttrType::kCategorical, true},
                           {"C2", AttrType::kCategorical, true},
                           {"N1", AttrType::kNumeric, true},
                           {"N2", AttrType::kNumeric, true},
                       }))
                 .value();
  Table t(s);
  Rng rng(seed);
  const char* words[] = {"alpha", "beta", "gamma", "delta,comma",
                         "quote\"inside", "", "multi word"};
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row(4);
    row[0] = rng.NextBool(0.05)
                 ? Value::Null()
                 : Value(words[rng.NextBounded(std::size(words))]);
    row[1] = Value(std::string(1, static_cast<char>('a' + rng.NextBounded(4))));
    row[2] = rng.NextBool(0.05) ? Value::Null()
                                : Value(rng.NextUniform(-100, 100));
    row[3] = Value(static_cast<double>(rng.NextInt(0, 9)));
    EXPECT_TRUE(t.AppendRow(row).ok());
  }
  return t;
}

// --- Predicate algebra ----------------------------------------------------------

class PredicateLawTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicateLawTest, DeMorganAndComplement) {
  Table t = RandomTable(300, GetParam());
  TableSlice all = TableSlice::All(t);

  auto p = [] { return MakeCmp("C2", CmpOp::kEq, Value("a")); };
  auto q = [] { return MakeCmp("N2", CmpOp::kGe, Value(5.0)); };

  // NOT (p AND q) == (NOT p) OR (NOT q).
  std::vector<PredicatePtr> both;
  both.push_back(p());
  both.push_back(q());
  auto lhs = MakeNot(MakeAnd(std::move(both)));

  std::vector<PredicatePtr> either;
  either.push_back(MakeNot(p()));
  either.push_back(MakeNot(q()));
  auto rhs = MakeOr(std::move(either));

  auto l = Predicate::Evaluate(lhs.get(), all);
  auto r = Predicate::Evaluate(rhs.get(), all);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*l, *r);

  // p OR NOT p covers every row (C2 is never null here).
  std::vector<PredicatePtr> cover;
  cover.push_back(p());
  cover.push_back(MakeNot(p()));
  auto total = MakeOr(std::move(cover));
  auto tr = Predicate::Evaluate(total.get(), all);
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr->size(), t.num_rows());

  // p AND NOT p covers nothing.
  std::vector<PredicatePtr> none;
  none.push_back(p());
  none.push_back(MakeNot(p()));
  auto empty = MakeAnd(std::move(none));
  auto er = Predicate::Evaluate(empty.get(), all);
  ASSERT_TRUE(er.ok());
  EXPECT_TRUE(er->empty());
}

TEST_P(PredicateLawTest, DoubleNegationIdentity) {
  Table t = RandomTable(200, GetParam() + 99);
  TableSlice all = TableSlice::All(t);
  auto once = MakeCmp("N1", CmpOp::kLt, Value(0.0));
  auto twice = MakeNot(MakeNot(MakeCmp("N1", CmpOp::kLt, Value(0.0))));
  auto a = Predicate::Evaluate(once.get(), all);
  auto b = Predicate::Evaluate(twice.get(), all);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateLawTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- CSV round-trip ----------------------------------------------------------------

class CsvRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, RandomTablesSurvive) {
  Table t = RandomTable(150, GetParam() * 31);
  std::string csv = ToCsvString(t);
  auto back = ParseCsvString(csv, t.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_cols(); ++c) {
      // Note: the empty string round-trips to null (CSV cannot distinguish
      // them); both display as "".
      EXPECT_EQ(back->At(r, c).ToDisplay(), t.At(r, c).ToDisplay())
          << "cell " << r << "," << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Materialization -----------------------------------------------------------------

TEST(MaterializeTest, CopiesRowsAndProjection) {
  Table t = RandomTable(50, 77);
  TableSlice slice{&t, {3, 7, 11}};
  auto m = MaterializeSlice(slice, {"C2", "N2"});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_rows(), 3u);
  EXPECT_EQ(m->num_cols(), 2u);
  EXPECT_EQ(m->schema().attr(0).name, "C2");
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(m->At(i, 0).ToDisplay(), t.At(slice.rows[i], 1).ToDisplay());
    EXPECT_EQ(m->At(i, 1).ToDisplay(), t.At(slice.rows[i], 3).ToDisplay());
  }
}

TEST(MaterializeTest, AllColumnsByDefault) {
  Table t = RandomTable(20, 5);
  auto m = MaterializeSlice(TableSlice::All(t));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_cols(), t.num_cols());
  EXPECT_EQ(m->num_rows(), t.num_rows());
}

TEST(MaterializeTest, Errors) {
  Table t = RandomTable(5, 5);
  EXPECT_TRUE(MaterializeSlice({nullptr, {}}).status().IsInvalidArgument());
  EXPECT_TRUE(
      MaterializeSlice(TableSlice::All(t), {"Nope"}).status().IsNotFound());
  TableSlice bad{&t, {99}};
  EXPECT_TRUE(MaterializeSlice(bad).status().IsOutOfRange());
}

// --- Canonical unparser fixed point ---------------------------------------------------
//
// For any statement built from the parser-expressible AST subset, the law
//   sql1 = StatementToSql(S); parse(sql1) = S2; StatementToSql(S2) == sql1
// must hold. The canonical text is part of the view-cache key, so a drift
// here silently corrupts cache identity (see regression below: embedded
// quotes were once re-emitted unescaped and failed to reparse at all).

/// Random WHERE predicate from the grammar the parser can express. And/Or
/// always get >= 2 children: the parser never produces 1-child conjunctions,
/// and their parenthesized unparse would not round-trip.
PredicatePtr RandomPredicate(Rng& rng, int depth) {
  static const char* kAttrs[] = {"Make", "Model", "Price", "Year", "Mileage",
                                 "Body_Type"};
  static const char* kStrings[] = {"Jeep",  "it's",     "two  words", "",
                                   "O'Br", "trailing'", "'lead",      "42"};
  auto attr = [&] { return std::string(kAttrs[rng.NextBounded(6)]); };
  auto str = [&] { return std::string(kStrings[rng.NextBounded(8)]); };
  // Nonnegative quarter-steps: ToDisplay prints them exactly ("7" / "7.250")
  // and the lexer reads both forms back to the same double.
  auto num = [&] { return static_cast<double>(rng.NextInt(0, 40)) * 0.25; };

  int pick = static_cast<int>(rng.NextBounded(depth > 0 ? 7 : 4));
  switch (pick) {
    case 0:
      return MakeCmp(attr(), static_cast<CmpOp>(rng.NextBounded(6)),
                     rng.NextBool() ? Value(str()) : Value(num()));
    case 1: {
      double lo = static_cast<double>(rng.NextInt(0, 50));
      return MakeBetween(attr(), lo,
                         lo + static_cast<double>(rng.NextInt(0, 50)));
    }
    case 2: {
      std::vector<std::string> values;
      for (int i = static_cast<int>(rng.NextInt(1, 3)); i > 0; --i) {
        values.push_back(str());
      }
      return MakeIn(attr(), std::move(values));
    }
    case 3:
      return MakeNot(RandomPredicate(rng, depth - 1));
    default: {  // AND / OR with 2-3 children
      std::vector<PredicatePtr> children;
      for (int i = static_cast<int>(rng.NextInt(2, 3)); i > 0; --i) {
        children.push_back(RandomPredicate(rng, depth - 1));
      }
      return pick <= 5 ? MakeAnd(std::move(children))
                       : MakeOr(std::move(children));
    }
  }
}

void ExpectFixedPoint(const Statement& stmt) {
  std::string sql1 = StatementToSql(stmt);
  auto reparsed = ParseStatement(sql1);
  ASSERT_TRUE(reparsed.ok()) << sql1 << "\n" << reparsed.status().ToString();
  EXPECT_EQ(StatementToSql(*reparsed), sql1);
}

class CanonicalFixedPointTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CanonicalFixedPointTest, RandomSelects) {
  Rng rng(GetParam() * 1031);
  for (int iter = 0; iter < 50; ++iter) {
    SelectStmt s;
    s.table = "Cars";
    if (rng.NextBool()) {
      s.star = true;
    } else {
      for (int i = static_cast<int>(rng.NextInt(1, 3)); i > 0; --i) {
        s.columns.push_back(rng.NextBool() ? "Make" : "Price");
      }
    }
    if (rng.NextBool(0.8)) s.where = RandomPredicate(rng, 3);
    if (rng.NextBool()) s.order_by.emplace_back("Price", rng.NextBool());
    if (rng.NextBool()) s.limit = rng.NextBounded(100);
    ExpectFixedPoint(Statement{std::move(s)});
  }
}

TEST_P(CanonicalFixedPointTest, RandomCadViews) {
  Rng rng(GetParam() * 7919);
  for (int iter = 0; iter < 50; ++iter) {
    CreateCadViewStmt s;
    s.view_name = "V1";
    s.pivot_attr = "Make";
    s.table = "Cars";
    if (rng.NextBool()) {
      s.compare_attrs = {"Price", "Year"};
    }
    if (rng.NextBool(0.8)) s.where = RandomPredicate(rng, 3);
    if (rng.NextBool()) s.limit_columns = 1 + rng.NextBounded(8);
    if (rng.NextBool()) s.iunits = 1 + rng.NextBounded(5);
    if (rng.NextBool()) s.order_by.emplace_back("Year", rng.NextBool());
    ExpectFixedPoint(Statement{std::move(s)});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalFixedPointTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(CanonicalFixedPointTest, QuoteEscapeRegression) {
  // An embedded quote must be re-escaped by the unparser ('' form). Before
  // QuoteSqlString, this emitted  s = 'it's quoted'  which fails to reparse.
  auto stmt = ParseStatement("SELECT * FROM T WHERE s = 'it''s quoted'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::string sql = StatementToSql(*stmt);
  EXPECT_NE(sql.find("'it''s quoted'"), std::string::npos) << sql;
  ExpectFixedPoint(*stmt);
}

// --- CAD View invariants over the option grid ----------------------------------------

struct GridCase {
  size_t k;
  size_t l;
  size_t c;
};

class CadViewGridTest : public ::testing::TestWithParam<GridCase> {
 protected:
  static void SetUpTestSuite() { table_ = new Table(GenerateUsedCars(3000, 3)); }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static Table* table_;
};

Table* CadViewGridTest::table_ = nullptr;

TEST_P(CadViewGridTest, InvariantsHold) {
  const GridCase& g = GetParam();
  CadViewOptions o;
  o.pivot_attr = "BodyType";
  o.max_compare_attrs = g.c;
  o.iunits_per_value = g.k;
  o.generated_iunits = g.l;
  o.seed = 11;
  auto view = BuildCadView(TableSlice::All(*table_), o);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  EXPECT_GE(view->compare_attrs.size(), 1u);
  EXPECT_LE(view->compare_attrs.size(), g.c);
  EXPECT_DOUBLE_EQ(view->tau,
                   0.7 * static_cast<double>(view->compare_attrs.size()));

  size_t total_rows = 0;
  for (const CadViewRow& row : view->rows) {
    total_rows += row.partition_size;
    EXPECT_LE(row.iunits.size(), g.k);
    if (row.partition_size > 0) {
      EXPECT_GE(row.iunits.size(), 1u);
    }

    size_t members = 0;
    for (size_t i = 0; i < row.iunits.size(); ++i) {
      const IUnit& u = row.iunits[i];
      members += u.size();
      // Uniform labeling: one cell + one frequency vector per compare attr.
      ASSERT_EQ(u.cells.size(), view->compare_attrs.size());
      ASSERT_EQ(u.attr_freqs.size(), view->compare_attrs.size());
      // Frequencies over a cell's attribute sum to the cluster size at most
      // (nulls may reduce it).
      for (const auto& freqs : u.attr_freqs) {
        double sum = 0;
        for (double f : freqs) sum += f;
        EXPECT_LE(sum, static_cast<double>(u.size()) + 1e-9);
      }
      // Ranked by score; diverse under tau.
      if (i > 0) {
        EXPECT_GE(row.iunits[i - 1].score, u.score);
      }
      for (size_t j = i + 1; j < row.iunits.size(); ++j) {
        EXPECT_LT(IUnitSimilarity(u, row.iunits[j]), view->tau);
      }
    }
    // Top-k IUnits cover at most the partition.
    EXPECT_LE(members, row.partition_size);
  }
  // Every row of the fragment carries some pivot value (BodyType non-null).
  EXPECT_EQ(total_rows, table_->num_rows());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CadViewGridTest,
    ::testing::Values(GridCase{1, 1, 1}, GridCase{1, 4, 3}, GridCase{2, 3, 2},
                      GridCase{3, 5, 4}, GridCase{3, 10, 6}, GridCase{6, 9, 5},
                      GridCase{4, 15, 8}, GridCase{2, 2, 10}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return "k" + std::to_string(info.param.k) + "_l" +
             std::to_string(info.param.l) + "_c" +
             std::to_string(info.param.c);
    });

}  // namespace
}  // namespace dbx
