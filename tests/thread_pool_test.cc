// Unit tests for the shared thread-pool execution layer: lifecycle,
// ParallelFor index coverage, Status/exception propagation, nested
// submission, and a many-small-tasks stress case. Run under
// -DDBX_SANITIZE=thread via scripts/check_tsan.sh to prove race-freedom.

#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace dbx {
namespace {

TEST(ThreadPoolTest, ConstructionAndShutdownAcrossSizes) {
  for (size_t n : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, SubmitFromInsideAWorkerRuns) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    pool.Submit([&] {
      count.fetch_add(1);
      pool.Submit([&count] { count.fetch_add(1); });
    });
  }
  // The destructor drains tasks submitted during the drain as well.
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t grain : {1u, 3u, 16u, 1000u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    Status st = pool.ParallelFor(0, hits.size(), grain, [&](size_t i) {
      hits[i].fetch_add(1);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHonorsBeginOffsetAndEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  std::atomic<size_t> min_seen{1000};
  Status st = pool.ParallelFor(10, 20, 4, [&](size_t i) {
    calls.fetch_add(1);
    size_t cur = min_seen.load();
    while (i < cur && !min_seen.compare_exchange_weak(cur, i)) {
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(calls.load(), 10);
  EXPECT_EQ(min_seen.load(), 10u);

  calls.store(0);
  EXPECT_TRUE(pool.ParallelFor(5, 5, 1, [&](size_t) {
                    calls.fetch_add(1);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, StatusPropagationLowestIndexWins) {
  ThreadPool pool(4);
  Status st = pool.ParallelFor(0, 100, 1, [](size_t i) -> Status {
    if (i % 10 == 7) {
      return Status::InvalidArgument("bad " + std::to_string(i));
    }
    return Status::OK();
  });
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_EQ(st.message(), "bad 7");
}

TEST(ThreadPoolTest, ExceptionBecomesInternalStatus) {
  ThreadPool pool(2);
  Status st = pool.ParallelFor(0, 8, 1, [](size_t i) -> Status {
    if (i == 3) throw std::runtime_error("kaboom");
    return Status::OK();
  });
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
  EXPECT_NE(st.message().find("kaboom"), std::string::npos) << st.ToString();
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // More outer tasks than workers, each issuing its own inner ParallelFor on
  // the SAME pool: the caller-participates design must keep making progress
  // even when every worker is itself blocked inside an outer task.
  ThreadPool pool(2);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  Status st = pool.ParallelFor(0, kOuter, 1, [&](size_t outer) {
    return pool.ParallelFor(0, kInner, 8, [&, outer](size_t inner) {
      hits[outer * kInner + inner].fetch_add(1);
      return Status::OK();
    });
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, MaxParallelismCapRespected) {
  ThreadPool pool(8);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  Status st = pool.ParallelFor(
      0, 64, 1,
      [&](size_t) {
        int now = active.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        active.fetch_sub(1);
        return Status::OK();
      },
      /*max_parallelism=*/2);
  ASSERT_TRUE(st.ok());
  EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPoolTest, ManySmallTasksStress) {
  ThreadPool pool(TestThreads(4));
  std::atomic<long> sum{0};
  for (int round = 0; round < 4; ++round) {
    Status st = pool.ParallelFor(0, 50000, 1, [&](size_t) {
      sum.fetch_add(1);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
  }
  EXPECT_EQ(sum.load(), 200000);
}

TEST(ParallelForTest, SerialPathMatchesParallelSemantics) {
  // num_threads <= 1 must not touch the pool but keep the same contract:
  // every index runs, lowest-index error returned, exceptions converted.
  std::vector<int> hits(100, 0);
  Status st = ParallelFor(1, 0, hits.size(), 7, [&](size_t i) -> Status {
    ++hits[i];
    if (i == 90) return Status::NotFound("ninety");
    if (i == 12) return Status::NotFound("twelve");
    return Status::OK();
  });
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "twelve");
  int total = 0;
  for (int h : hits) total += h;
  // Chunks containing an error stop at it; all other chunks run fully.
  EXPECT_GT(total, 90);

  st = ParallelFor(1, 0, 4, 1, [](size_t i) -> Status {
    if (i == 2) throw std::runtime_error("serial throw");
    return Status::OK();
  });
  EXPECT_TRUE(st.IsInternal());
}

TEST(ParallelForTest, SharedPoolPathCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  Status st = ParallelFor(TestThreads(4), 0, hits.size(), 16, [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TestThreadsTest, EnvOverrideParsedAndValidated) {
  const char* saved = std::getenv("DBX_TEST_THREADS");
  std::string saved_value = saved ? saved : "";

  unsetenv("DBX_TEST_THREADS");
  EXPECT_EQ(TestThreads(3), 3u);
  setenv("DBX_TEST_THREADS", "6", 1);
  EXPECT_EQ(TestThreads(3), 6u);
  setenv("DBX_TEST_THREADS", "not-a-number", 1);
  EXPECT_EQ(TestThreads(3), 3u);
  setenv("DBX_TEST_THREADS", "0", 1);
  EXPECT_EQ(TestThreads(3), 3u);

  if (saved_value.empty()) {
    unsetenv("DBX_TEST_THREADS");
  } else {
    setenv("DBX_TEST_THREADS", saved_value.c_str(), 1);
  }
}

}  // namespace
}  // namespace dbx
