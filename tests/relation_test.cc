// Unit tests for src/relation: schema, columns, tables, predicates, CSV.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/relation/csv.h"
#include "src/relation/predicate.h"
#include "src/relation/table.h"

namespace dbx {
namespace {

Schema CarSchema() {
  return std::move(Schema::Make({
                       {"Make", AttrType::kCategorical, true},
                       {"Price", AttrType::kNumeric, true},
                       {"Engine", AttrType::kCategorical, false},
                   }))
      .value();
}

Table SmallCars() {
  Table t(CarSchema());
  EXPECT_TRUE(t.AppendRow({Value("Ford"), Value(20000.0), Value("V6")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("Jeep"), Value(25000.0), Value("V8")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("Ford"), Value(15000.0), Value("V4")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("Honda"), Value::Null(), Value("V4")}).ok());
  return t;
}

// --- Schema ------------------------------------------------------------------

TEST(SchemaTest, LookupByName) {
  Schema s = CarSchema();
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(*s.IndexOf("Price"), 1u);
  EXPECT_FALSE(s.IndexOf("Nope").has_value());
  EXPECT_TRUE(s.Contains("Engine"));
  EXPECT_FALSE(s.attr(2).queriable);
}

TEST(SchemaTest, RejectsDuplicates) {
  auto r = Schema::Make({{"A", AttrType::kCategorical, true},
                         {"A", AttrType::kNumeric, true}});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsEmptyName) {
  auto r = Schema::Make({{"", AttrType::kCategorical, true}});
  EXPECT_FALSE(r.ok());
}

// --- Column ------------------------------------------------------------------

TEST(ColumnTest, DictionaryInternsOnce) {
  Column c(AttrType::kCategorical);
  c.AppendString("x");
  c.AppendString("y");
  c.AppendString("x");
  EXPECT_EQ(c.DictSize(), 2u);
  EXPECT_EQ(c.CodeAt(0), c.CodeAt(2));
  EXPECT_EQ(c.DictString(c.CodeAt(1)), "y");
  EXPECT_EQ(c.CodeOf("x"), c.CodeAt(0));
  EXPECT_EQ(c.CodeOf("zzz"), kNullCode);
}

TEST(ColumnTest, NullHandlingBothTypes) {
  Column c(AttrType::kCategorical);
  c.AppendNull();
  EXPECT_TRUE(c.IsNullAt(0));
  EXPECT_TRUE(c.ValueAt(0).is_null());

  Column n(AttrType::kNumeric);
  n.AppendNull();
  n.AppendNumber(1.5);
  EXPECT_TRUE(n.IsNullAt(0));
  EXPECT_FALSE(n.IsNullAt(1));
  EXPECT_DOUBLE_EQ(n.ValueAt(1).AsNumber(), 1.5);
}

TEST(ColumnTest, AppendValueTypeChecked) {
  Column c(AttrType::kNumeric);
  EXPECT_FALSE(c.AppendValue(Value("not a number")));
  EXPECT_TRUE(c.AppendValue(Value(2.0)));
  EXPECT_TRUE(c.AppendValue(Value::Null()));
  EXPECT_EQ(c.size(), 2u);
}

// --- Table -------------------------------------------------------------------

TEST(TableTest, AppendAndAccess) {
  Table t = SmallCars();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.At(1, 0).AsString(), "Jeep");
  EXPECT_DOUBLE_EQ(t.At(0, 1).AsNumber(), 20000.0);
  EXPECT_TRUE(t.At(3, 1).is_null());
}

TEST(TableTest, ArityMismatchRejected) {
  Table t(CarSchema());
  EXPECT_TRUE(t.AppendRow({Value("x")}).IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, TypeMismatchLeavesTableUnchanged) {
  Table t(CarSchema());
  // Price is numeric; giving a string must not partially append.
  Status s = t.AppendRow({Value("Ford"), Value("oops"), Value("V6")});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.col(0).size(), 0u);
  EXPECT_EQ(t.col(1).size(), 0u);
}

TEST(TableTest, ColByName) {
  Table t = SmallCars();
  auto c = t.ColByName("Price");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->type(), AttrType::kNumeric);
  EXPECT_TRUE(t.ColByName("Nope").status().IsNotFound());
}

TEST(TableTest, AllRowsAscending) {
  Table t = SmallCars();
  RowSet rows = t.AllRows();
  ASSERT_EQ(rows.size(), 4u);
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i], i);
}

// --- Predicate ---------------------------------------------------------------

RowSet Eval(PredicatePtr p, const Table& t) {
  auto r = Predicate::Evaluate(p.get(), TableSlice::All(t));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : RowSet{};
}

TEST(PredicateTest, CategoricalEquality) {
  Table t = SmallCars();
  EXPECT_EQ(Eval(MakeCmp("Make", CmpOp::kEq, Value("Ford")), t),
            (RowSet{0, 2}));
  EXPECT_EQ(Eval(MakeCmp("Make", CmpOp::kNe, Value("Ford")), t),
            (RowSet{1, 3}));
}

TEST(PredicateTest, NumericComparisons) {
  Table t = SmallCars();
  EXPECT_EQ(Eval(MakeCmp("Price", CmpOp::kGt, Value(18000.0)), t),
            (RowSet{0, 1}));
  EXPECT_EQ(Eval(MakeCmp("Price", CmpOp::kLe, Value(20000.0)), t),
            (RowSet{0, 2}));
  EXPECT_EQ(Eval(MakeCmp("Price", CmpOp::kEq, Value(25000.0)), t),
            (RowSet{1}));
}

TEST(PredicateTest, NullNeverMatchesComparison) {
  Table t = SmallCars();
  // Honda's price is null; no comparison admits it.
  EXPECT_EQ(Eval(MakeCmp("Price", CmpOp::kGe, Value(0.0)), t).size(), 3u);
  EXPECT_EQ(Eval(MakeCmp("Price", CmpOp::kLt, Value(1e9)), t).size(), 3u);
}

TEST(PredicateTest, Between) {
  Table t = SmallCars();
  EXPECT_EQ(Eval(MakeBetween("Price", 15000, 20000), t), (RowSet{0, 2}));
}

TEST(PredicateTest, InSet) {
  Table t = SmallCars();
  EXPECT_EQ(Eval(MakeIn("Make", {"Jeep", "Honda"}), t), (RowSet{1, 3}));
  EXPECT_TRUE(Eval(MakeIn("Make", {"Nothing"}), t).empty());
}

TEST(PredicateTest, BooleanCombinators) {
  Table t = SmallCars();
  std::vector<PredicatePtr> both;
  both.push_back(MakeCmp("Make", CmpOp::kEq, Value("Ford")));
  both.push_back(MakeCmp("Price", CmpOp::kLt, Value(18000.0)));
  EXPECT_EQ(Eval(MakeAnd(std::move(both)), t), (RowSet{2}));

  std::vector<PredicatePtr> either;
  either.push_back(MakeCmp("Make", CmpOp::kEq, Value("Jeep")));
  either.push_back(MakeCmp("Make", CmpOp::kEq, Value("Honda")));
  EXPECT_EQ(Eval(MakeOr(std::move(either)), t), (RowSet{1, 3}));

  EXPECT_EQ(Eval(MakeNot(MakeCmp("Make", CmpOp::kEq, Value("Ford"))), t),
            (RowSet{1, 3}));
  EXPECT_EQ(Eval(MakeTrue(), t).size(), 4u);
}

TEST(PredicateTest, BindErrors) {
  Table t = SmallCars();
  auto bad_attr = MakeCmp("Nope", CmpOp::kEq, Value("x"));
  EXPECT_TRUE(Predicate::Evaluate(bad_attr.get(), TableSlice::All(t))
                  .status()
                  .IsNotFound());

  auto bad_type = MakeCmp("Make", CmpOp::kLt, Value("x"));
  EXPECT_TRUE(Predicate::Evaluate(bad_type.get(), TableSlice::All(t))
                  .status()
                  .IsNotSupported());

  auto bad_value = MakeCmp("Price", CmpOp::kEq, Value("str"));
  EXPECT_TRUE(Predicate::Evaluate(bad_value.get(), TableSlice::All(t))
                  .status()
                  .IsInvalidArgument());

  auto bad_between = MakeBetween("Make", 0, 1);
  EXPECT_TRUE(Predicate::Evaluate(bad_between.get(), TableSlice::All(t))
                  .status()
                  .IsInvalidArgument());
}

TEST(PredicateTest, EvaluatesOnSliceOnly) {
  Table t = SmallCars();
  TableSlice slice{&t, {1, 2}};
  auto p = MakeCmp("Make", CmpOp::kEq, Value("Ford"));
  auto r = Predicate::Evaluate(p.get(), slice);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (RowSet{2}));
}

TEST(PredicateTest, ToStringRendersSqlish) {
  auto p = MakeAnd([] {
    std::vector<PredicatePtr> v;
    v.push_back(MakeCmp("Make", CmpOp::kEq, Value("Ford")));
    v.push_back(MakeBetween("Price", 1000, 2000));
    return v;
  }());
  EXPECT_EQ(p->ToString(), "(Make = 'Ford' AND Price BETWEEN 1000 AND 2000)");
}

// --- CSV ---------------------------------------------------------------------

TEST(CsvTest, RoundTrip) {
  Table t = SmallCars();
  std::string csv = ToCsvString(t);
  auto back = ParseCsvString(csv, t.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_cols(); ++c) {
      EXPECT_EQ(back->At(r, c).ToDisplay(), t.At(r, c).ToDisplay())
          << "cell " << r << "," << c;
    }
  }
}

TEST(CsvTest, QuotingHandlesCommasAndQuotes) {
  Schema s = std::move(Schema::Make({{"A", AttrType::kCategorical, true}}))
                 .value();
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value("a,b \"c\"")}).ok());
  std::string csv = ToCsvString(t);
  auto back = ParseCsvString(csv, s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->At(0, 0).AsString(), "a,b \"c\"");
}

TEST(CsvTest, EmptyCellsBecomeNulls) {
  Schema s = CarSchema();
  auto t = ParseCsvString("Make,Price,Engine\nFord,,V6\n", s);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->At(0, 1).is_null());
}

TEST(CsvTest, HeaderMismatchRejected) {
  Schema s = CarSchema();
  EXPECT_TRUE(ParseCsvString("Wrong,Price,Engine\n", s).status().IsCorruption());
  EXPECT_TRUE(ParseCsvString("", s).status().IsCorruption());
  EXPECT_TRUE(ParseCsvString("Make,Price\n", s).status().IsCorruption());
}

TEST(CsvTest, ArityMismatchRejected) {
  Schema s = CarSchema();
  auto r = ParseCsvString("Make,Price,Engine\nFord,1\n", s);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(CsvTest, UnparsableNumberBecomesNull) {
  Schema s = CarSchema();
  auto t = ParseCsvString("Make,Price,Engine\nFord,abc,V6\n", s);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->At(0, 1).is_null());
}

TEST(CsvTest, FileRoundTrip) {
  Table t = SmallCars();
  std::string path = ::testing::TempDir() + "/dbx_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path, t.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), t.num_rows());
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsv("/no/such/file.csv", t.schema()).status().IsNotFound());
  EXPECT_TRUE(WriteCsv(t, "/no/such/dir/file.csv").IsNotFound());
}

TEST(CsvTest, CrlfAccepted) {
  Schema s = CarSchema();
  auto t = ParseCsvString("Make,Price,Engine\r\nFord,1,V6\r\n", s);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
}

}  // namespace
}  // namespace dbx
