// Tests for discretizer, contingency/chi-square, frequency tables, cosine
// similarity, and sampling.

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/contingency.h"
#include "src/stats/cosine.h"
#include "src/stats/discretizer.h"
#include "src/stats/frequency.h"
#include "src/stats/rank_correlation.h"
#include "src/stats/sampling.h"

namespace dbx {
namespace {

Table MixedTable() {
  Schema s = std::move(Schema::Make({
                           {"Cat", AttrType::kCategorical, true},
                           {"Num", AttrType::kNumeric, true},
                       }))
                 .value();
  Table t(s);
  const char* cats[] = {"a", "b", "a", "c", "b", "a"};
  double nums[] = {1, 2, 3, 10, 20, 30};
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(
        t.AppendRow({Value(cats[i]), Value(nums[i])}).ok());
  }
  return t;
}

// --- DiscretizedTable ----------------------------------------------------------

TEST(DiscretizerTest, CategoricalPassThroughCompacted) {
  Table t = MixedTable();
  DiscretizerOptions opt;
  auto dt = DiscretizedTable::Build(TableSlice::All(t), opt);
  ASSERT_TRUE(dt.ok());
  const DiscreteAttr& cat = dt->attr(0);
  EXPECT_EQ(cat.cardinality(), 3u);
  EXPECT_EQ(cat.labels[cat.codes[0]], "a");
  EXPECT_EQ(cat.labels[cat.codes[3]], "c");
}

TEST(DiscretizerTest, NumericBinnedWithLabels) {
  Table t = MixedTable();
  DiscretizerOptions opt;
  opt.max_numeric_bins = 3;
  auto dt = DiscretizedTable::Build(TableSlice::All(t), opt);
  ASSERT_TRUE(dt.ok());
  const DiscreteAttr& num = dt->attr(1);
  EXPECT_GE(num.cardinality(), 1u);
  EXPECT_LE(num.cardinality(), 3u);
  for (int32_t c : num.codes) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, static_cast<int32_t>(num.cardinality()));
  }
  for (const std::string& l : num.labels) EXPECT_FALSE(l.empty());
}

TEST(DiscretizerTest, SliceOnlyCoversRequestedRows) {
  Table t = MixedTable();
  TableSlice slice{&t, {0, 2, 4}};
  auto dt = DiscretizedTable::Build(slice, DiscretizerOptions{});
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->num_rows(), 3u);
  // Value "c" (row 3) is outside the slice, so the compacted domain drops it.
  EXPECT_EQ(dt->attr(0).cardinality(), 2u);
}

TEST(DiscretizerTest, NullsKeepCodeMinusOne) {
  Schema s = std::move(Schema::Make({{"N", AttrType::kNumeric, true}})).value();
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value(1.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  auto dt = DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{});
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->attr(0).codes[1], -1);
}

TEST(DiscretizerTest, AllNullAttributeHasZeroCardinality) {
  Schema s = std::move(Schema::Make({{"N", AttrType::kNumeric, true}})).value();
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  auto dt = DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{});
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->attr(0).cardinality(), 0u);
  EXPECT_EQ(dt->attr(0).codes[0], -1);
}

TEST(DiscretizerTest, IndexOfFindsAttrs) {
  Table t = MixedTable();
  auto dt = DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{});
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(*dt->IndexOf("Num"), 1u);
  EXPECT_FALSE(dt->IndexOf("Nope").has_value());
}

// --- ContingencyTable / chi-square ---------------------------------------------

TEST(ContingencyTest, FromCodesSkipsNulls) {
  std::vector<int32_t> a = {0, 0, 1, -1, 1};
  std::vector<int32_t> b = {0, 1, 1, 0, -1};
  ContingencyTable t = ContingencyTable::FromCodes(a, 2, b, 2);
  EXPECT_EQ(t.grand_total(), 3u);
  EXPECT_EQ(t.at(0, 0), 1u);
  EXPECT_EQ(t.at(0, 1), 1u);
  EXPECT_EQ(t.at(1, 1), 1u);
  EXPECT_EQ(t.row_total(0), 2u);
  EXPECT_EQ(t.col_total(1), 2u);
}

TEST(ChiSquareTest, PerfectAssociationKnownValue) {
  // 2x2 table [[50,0],[0,50]]: chi2 = n = 100.
  ContingencyTable t(2, 2);
  t.Add(0, 0, 50);
  t.Add(1, 1, 50);
  ChiSquareResult r = ChiSquareTest(t);
  EXPECT_NEAR(r.statistic, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.df, 1.0);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_NEAR(CramersV(t), 1.0, 1e-9);
}

TEST(ChiSquareTest, IndependenceGivesZero) {
  // Exactly proportional rows: chi2 = 0.
  ContingencyTable t(2, 2);
  t.Add(0, 0, 20);
  t.Add(0, 1, 30);
  t.Add(1, 0, 40);
  t.Add(1, 1, 60);
  ChiSquareResult r = ChiSquareTest(t);
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
  EXPECT_NEAR(CramersV(t), 0.0, 1e-9);
}

TEST(ChiSquareTest, DegenerateTablesSafe) {
  ContingencyTable empty(3, 3);
  ChiSquareResult r = ChiSquareTest(empty);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_EQ(r.p_value, 1.0);

  // Single effective row -> df 0 -> no signal.
  ContingencyTable one_row(2, 3);
  one_row.Add(0, 0, 5);
  one_row.Add(0, 1, 5);
  r = ChiSquareTest(one_row);
  EXPECT_EQ(r.statistic, 0.0);
}

TEST(ChiSquareTest, EmptyRowsColumnsIgnoredInDf) {
  // 3x3 but only a 2x2 core is populated: df must be 1, not 4.
  ContingencyTable t(3, 3);
  t.Add(0, 0, 10);
  t.Add(0, 2, 5);
  t.Add(2, 0, 5);
  t.Add(2, 2, 10);
  ChiSquareResult r = ChiSquareTest(t);
  EXPECT_DOUBLE_EQ(r.df, 1.0);
}

TEST(ChiSquareTest, TextbookExample) {
  // Classic 2x2: [[10,20],[30,40]] -> chi2 = 100*(10*40-20*30)^2/(30*70*40*60).
  ContingencyTable t(2, 2);
  t.Add(0, 0, 10);
  t.Add(0, 1, 20);
  t.Add(1, 0, 30);
  t.Add(1, 1, 40);
  double expected = 100.0 * std::pow(10.0 * 40 - 20.0 * 30, 2) /
                    (30.0 * 70.0 * 40.0 * 60.0);
  EXPECT_NEAR(ChiSquareTest(t).statistic, expected, 1e-9);
}

// --- FrequencyTable -------------------------------------------------------------

TEST(FrequencyTest, CountsAndSortedOrder) {
  std::vector<int32_t> codes = {0, 1, 1, 2, 1, -1, 0};
  FrequencyTable f =
      FrequencyTable::FromCodes(codes, 3, {"x", "y", "z"});
  EXPECT_EQ(f.total(), 6u);
  EXPECT_EQ(f.null_count(), 1u);
  EXPECT_EQ(f.counts()[1], 3u);
  ASSERT_EQ(f.sorted().size(), 3u);
  EXPECT_EQ(f.sorted()[0].label, "y");
  EXPECT_EQ(f.sorted()[0].count, 3u);
  EXPECT_EQ(f.sorted()[1].label, "x");
  auto v = f.AsVector();
  EXPECT_EQ(v, (std::vector<double>{2, 3, 1}));
}

TEST(FrequencyTest, ZeroCountCodesIncluded) {
  FrequencyTable f = FrequencyTable::FromCodes({0}, 3, {"a", "b", "c"});
  EXPECT_EQ(f.sorted().size(), 3u);
  EXPECT_EQ(f.counts()[2], 0u);
}

// --- Cosine ----------------------------------------------------------------------

TEST(CosineTest, IdenticalDirectionIsOne) {
  EXPECT_NEAR(CosineSimilarity({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(CosineTest, OrthogonalIsZero) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 5}), 0.0, 1e-12);
}

TEST(CosineTest, ZeroVectorConventions) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

TEST(CosineTest, SymmetricAndBounded) {
  std::vector<double> a = {3, 1, 0, 2}, b = {1, 0, 4, 2};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), CosineSimilarity(b, a));
  EXPECT_GE(CosineSimilarity(a, b), 0.0);
  EXPECT_LE(CosineSimilarity(a, b), 1.0);
  EXPECT_DOUBLE_EQ(CosineDistance(a, b), 1.0 - CosineSimilarity(a, b));
}

// --- Sampling ----------------------------------------------------------------------

TEST(SamplingTest, SampleSizeAndSubset) {
  RowSet rows;
  for (uint32_t i = 0; i < 1000; ++i) rows.push_back(i * 2);
  Rng rng(3);
  RowSet s = SampleRows(rows, 100, &rng);
  EXPECT_EQ(s.size(), 100u);
  for (size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
  for (uint32_t r : s) EXPECT_EQ(r % 2, 0u);  // subset of input
}

TEST(SamplingTest, SampleAllWhenKTooLarge) {
  RowSet rows = {1, 2, 3};
  Rng rng(3);
  EXPECT_EQ(SampleRows(rows, 10, &rng), rows);
}

TEST(SamplingTest, DeterministicForSeed) {
  RowSet rows;
  for (uint32_t i = 0; i < 500; ++i) rows.push_back(i);
  Rng a(9), b(9);
  EXPECT_EQ(SampleRows(rows, 50, &a), SampleRows(rows, 50, &b));
}

TEST(SamplingTest, BernoulliEdgeCases) {
  RowSet rows = {1, 2, 3, 4};
  Rng rng(3);
  EXPECT_TRUE(BernoulliSample(rows, 0.0, &rng).empty());
  EXPECT_EQ(BernoulliSample(rows, 1.0, &rng), rows);
}

TEST(SamplingTest, BernoulliApproximatesP) {
  RowSet rows;
  for (uint32_t i = 0; i < 20000; ++i) rows.push_back(i);
  Rng rng(3);
  RowSet s = BernoulliSample(rows, 0.3, &rng);
  EXPECT_NEAR(static_cast<double>(s.size()) / rows.size(), 0.3, 0.02);
}

// --- Kendall tau -------------------------------------------------------------------

TEST(KendallTauTest, PerfectAgreementAndReversal) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {10, 20, 30, 40, 50};
  auto same = KendallTauB(a, b);
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(*same, 1.0);

  std::vector<double> rev = {50, 40, 30, 20, 10};
  auto opposite = KendallTauB(a, rev);
  ASSERT_TRUE(opposite.ok());
  EXPECT_DOUBLE_EQ(*opposite, -1.0);
}

TEST(KendallTauTest, IndependentNearZero) {
  Rng rng(7);
  std::vector<double> a(500), b(500);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  auto tau = KendallTauB(a, b);
  ASSERT_TRUE(tau.ok());
  EXPECT_NEAR(*tau, 0.0, 0.08);
}

TEST(KendallTauTest, TiesHandledByTauB) {
  std::vector<double> a = {1, 1, 2, 3};
  std::vector<double> b = {2, 2, 3, 4};
  auto tau = KendallTauB(a, b);
  ASSERT_TRUE(tau.ok());
  EXPECT_DOUBLE_EQ(*tau, 1.0);  // fully concordant modulo shared ties
}

TEST(KendallTauTest, Errors) {
  EXPECT_TRUE(KendallTauB({1, 2}, {1}).status().IsInvalidArgument());
  EXPECT_TRUE(KendallTauB({1}, {1}).status().IsInvalidArgument());
  EXPECT_TRUE(KendallTauB({5, 5, 5}, {1, 2, 3}).status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace dbx
