// Tests for diversified top-k: exactness of div-astar against brute force,
// the greedy-can-be-bad case the paper cites, and selection invariants.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/core/div_topk.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

// Brute-force optimum by enumerating all subsets (n <= 20).
double BruteForceBest(const std::vector<double>& scores,
                      const SimilarityGraph& g, size_t k) {
  size_t n = scores.size();
  double best = 0.0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) > k) continue;
    bool ok = true;
    double total = 0.0;
    for (size_t i = 0; i < n && ok; ++i) {
      if (!((mask >> i) & 1)) continue;
      total += scores[i];
      for (size_t j = i + 1; j < n; ++j) {
        if (((mask >> j) & 1) && g.Similar(i, j)) {
          ok = false;
          break;
        }
      }
    }
    if (ok && total > best) best = total;
  }
  return best;
}

TEST(DivTopKTest, SimpleChainGraph) {
  // 0-1 similar, 1-2 similar; scores 5,4,3; k=2 -> {0,2} = 8.
  SimilarityGraph g(3);
  g.SetSimilar(0, 1);
  g.SetSimilar(1, 2);
  std::vector<double> scores = {5, 4, 3};
  auto r = DiversifiedTopK(scores, g, 2, DivTopKAlgorithm::kDivAstar);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<size_t>{0, 2}));
}

TEST(DivTopKTest, GreedyCanBeSuboptimal) {
  // Greedy takes the hub (10) and blocks both leaves (7+7=14 > 10).
  SimilarityGraph g(3);
  g.SetSimilar(0, 1);
  g.SetSimilar(0, 2);
  std::vector<double> scores = {10, 7, 7};
  auto greedy = DiversifiedTopK(scores, g, 2, DivTopKAlgorithm::kGreedy);
  auto exact = DiversifiedTopK(scores, g, 2, DivTopKAlgorithm::kDivAstar);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(SelectionScore(scores, *greedy), 10.0);
  EXPECT_EQ(SelectionScore(scores, *exact), 14.0);
}

TEST(DivTopKTest, NoDiversityIgnoresGraph) {
  SimilarityGraph g(3);
  g.SetSimilar(0, 1);
  std::vector<double> scores = {5, 4, 3};
  auto r = DiversifiedTopK(scores, g, 2, DivTopKAlgorithm::kNoDiversity);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<size_t>{0, 1}));
  EXPECT_FALSE(SelectionIsDiverse(g, *r));
}

TEST(DivTopKTest, KLargerThanNTakesAllCompatible) {
  SimilarityGraph g(4);
  std::vector<double> scores = {1, 2, 3, 4};
  auto r = DiversifiedTopK(scores, g, 10, DivTopKAlgorithm::kDivAstar);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
}

TEST(DivTopKTest, ResultsSortedByScoreDescending) {
  SimilarityGraph g(5);
  std::vector<double> scores = {2, 9, 4, 7, 1};
  auto r = DiversifiedTopK(scores, g, 3, DivTopKAlgorithm::kDivAstar);
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->size(); ++i) {
    EXPECT_GE(scores[(*r)[i - 1]], scores[(*r)[i]]);
  }
}

TEST(DivTopKTest, Errors) {
  SimilarityGraph g(2);
  std::vector<double> wrong_size = {1.0};
  EXPECT_TRUE(DiversifiedTopK(wrong_size, g, 1, DivTopKAlgorithm::kGreedy)
                  .status()
                  .IsInvalidArgument());
  std::vector<double> scores = {1.0, 2.0};
  EXPECT_TRUE(DiversifiedTopK(scores, g, 0, DivTopKAlgorithm::kGreedy)
                  .status()
                  .IsInvalidArgument());
}

TEST(DivTopKTest, EmptyInput) {
  SimilarityGraph g(0);
  auto r = DiversifiedTopK({}, g, 3, DivTopKAlgorithm::kDivAstar);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(DivTopKTest, AlgorithmNames) {
  EXPECT_STREQ(DivTopKAlgorithmName(DivTopKAlgorithm::kDivAstar), "div-astar");
  EXPECT_STREQ(DivTopKAlgorithmName(DivTopKAlgorithm::kGreedy), "greedy");
  EXPECT_STREQ(DivTopKAlgorithmName(DivTopKAlgorithm::kNoDiversity),
               "no-diversity");
}

// Property sweep: div-astar matches brute force on random instances and
// always returns a diverse selection; greedy never beats it.
class DivTopKRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, int>> {};

TEST_P(DivTopKRandomTest, ExactAndDiverse) {
  auto [n, k, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 1000 + n * 10 + k);
  std::vector<double> scores(n);
  for (double& s : scores) s = 1.0 + rng.NextDouble() * 9.0;
  SimilarityGraph g(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.NextBool(0.3)) g.SetSimilar(i, j);
    }
  }
  auto exact = DiversifiedTopK(scores, g, k, DivTopKAlgorithm::kDivAstar);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(SelectionIsDiverse(g, *exact));
  EXPECT_LE(exact->size(), k);
  double brute = BruteForceBest(scores, g, k);
  EXPECT_NEAR(SelectionScore(scores, *exact), brute, 1e-9)
      << "n=" << n << " k=" << k;

  auto greedy = DiversifiedTopK(scores, g, k, DivTopKAlgorithm::kGreedy);
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(SelectionIsDiverse(g, *greedy));
  EXPECT_LE(SelectionScore(scores, *greedy),
            SelectionScore(scores, *exact) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, DivTopKRandomTest,
    ::testing::Combine(::testing::Values(4u, 8u, 12u, 16u),
                       ::testing::Values(2u, 3u, 6u),
                       ::testing::Values(1, 2, 3, 4)));

}  // namespace
}  // namespace dbx
