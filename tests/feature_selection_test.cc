// Tests for Compare-Attribute selection: chi-square ranking must surface
// class-associated attributes above independent noise, honor significance
// thresholds, and agree across rankers on clear-cut inputs.

#include <gtest/gtest.h>

#include "src/stats/feature_selection.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

// Builds a table where "Signal" tracks the class, "Weak" tracks it noisily,
// and "Noise" is independent of it.
Table SignalTable(size_t n, uint64_t seed) {
  Schema s = std::move(Schema::Make({
                           {"ClassAttr", AttrType::kCategorical, true},
                           {"Signal", AttrType::kCategorical, true},
                           {"Weak", AttrType::kCategorical, true},
                           {"Noise", AttrType::kCategorical, true},
                       }))
                 .value();
  Table t(s);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    bool cls = rng.NextBool(0.5);
    std::string signal = cls ? "s1" : "s0";
    std::string weak =
        rng.NextBool(0.75) ? (cls ? "w1" : "w0") : (cls ? "w0" : "w1");
    std::string noise = rng.NextBool(0.5) ? "n0" : "n1";
    EXPECT_TRUE(t.AppendRow({Value(cls ? "pos" : "neg"), Value(signal),
                             Value(weak), Value(noise)})
                    .ok());
  }
  return t;
}

struct Fixture {
  Table table;
  DiscretizedTable dt;
  std::vector<int32_t> cls;

  explicit Fixture(uint64_t seed = 42) : table(SignalTable(2000, seed)) {
    dt = std::move(
        DiscretizedTable::Build(TableSlice::All(table), DiscretizerOptions{}))
             .value();
    cls = dt.attr(0).codes;
  }
};

TEST(FeatureSelectionTest, SignalOutranksNoise) {
  Fixture f;
  FeatureSelectionOptions opt;
  auto ranked = RankFeatures(f.dt, f.cls, 2, {1, 2, 3}, opt);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 3u);
  EXPECT_EQ((*ranked)[0].name, "Signal");
  EXPECT_EQ((*ranked)[1].name, "Weak");
  EXPECT_EQ((*ranked)[2].name, "Noise");
  EXPECT_GT((*ranked)[0].score, (*ranked)[1].score);
  EXPECT_GT((*ranked)[1].score, (*ranked)[2].score);
}

TEST(FeatureSelectionTest, SignificanceFlags) {
  Fixture f;
  FeatureSelectionOptions opt;
  opt.significance = 0.01;
  auto ranked = RankFeatures(f.dt, f.cls, 2, {1, 2, 3}, opt);
  ASSERT_TRUE(ranked.ok());
  EXPECT_TRUE((*ranked)[0].significant);
  EXPECT_TRUE((*ranked)[1].significant);
  EXPECT_FALSE((*ranked)[2].significant);  // independent noise
  EXPECT_LT((*ranked)[0].p_value, 0.01);
  EXPECT_GT((*ranked)[2].p_value, 0.01);
}

TEST(FeatureSelectionTest, AllRankersAgreeOnClearCase) {
  Fixture f;
  for (FeatureRanker ranker :
       {FeatureRanker::kChiSquare, FeatureRanker::kMutualInformation,
        FeatureRanker::kCramersV}) {
    FeatureSelectionOptions opt;
    opt.ranker = ranker;
    auto ranked = RankFeatures(f.dt, f.cls, 2, {1, 2, 3}, opt);
    ASSERT_TRUE(ranked.ok()) << FeatureRankerName(ranker);
    EXPECT_EQ((*ranked)[0].name, "Signal") << FeatureRankerName(ranker);
    EXPECT_EQ((*ranked)[2].name, "Noise") << FeatureRankerName(ranker);
  }
}

TEST(FeatureSelectionTest, ExcludedRowsIgnored) {
  Fixture f;
  // Mask every row: no observations -> zero scores, insignificant.
  std::vector<int32_t> masked(f.cls.size(), -1);
  auto ranked = RankFeatures(f.dt, masked, 2, {1, 2, 3},
                             FeatureSelectionOptions{});
  ASSERT_TRUE(ranked.ok());
  for (const FeatureScore& fs : *ranked) {
    EXPECT_EQ(fs.score, 0.0);
    EXPECT_FALSE(fs.significant);
  }
}

TEST(FeatureSelectionTest, DimensionErrors) {
  Fixture f;
  std::vector<int32_t> short_cls(5, 0);
  EXPECT_TRUE(RankFeatures(f.dt, short_cls, 2, {1}, FeatureSelectionOptions{})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RankFeatures(f.dt, f.cls, 2, {99}, FeatureSelectionOptions{})
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(RankFeatures(f.dt, f.cls, 0, {1}, FeatureSelectionOptions{})
                  .status()
                  .IsInvalidArgument());
}

TEST(FeatureSelectionTest, EmptyCandidateListOk) {
  Fixture f;
  auto ranked = RankFeatures(f.dt, f.cls, 2, {}, FeatureSelectionOptions{});
  ASSERT_TRUE(ranked.ok());
  EXPECT_TRUE(ranked->empty());
}

// Determinism across repeated runs (stable sort, no hidden randomness).
TEST(FeatureSelectionTest, Deterministic) {
  Fixture f;
  auto a = RankFeatures(f.dt, f.cls, 2, {1, 2, 3}, FeatureSelectionOptions{});
  auto b = RankFeatures(f.dt, f.cls, 2, {1, 2, 3}, FeatureSelectionOptions{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].name, (*b)[i].name);
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
}

// Parameterized: the Signal > Noise ordering must hold across seeds.
class FeatureSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FeatureSeedTest, OrderingStableAcrossSeeds) {
  Fixture f(GetParam());
  auto ranked =
      RankFeatures(f.dt, f.cls, 2, {1, 2, 3}, FeatureSelectionOptions{});
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ((*ranked)[0].name, "Signal");
  EXPECT_EQ((*ranked)[2].name, "Noise");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureSeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace dbx
