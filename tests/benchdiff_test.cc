// Copyright (c) DBExplorer reproduction authors.
// dbx-benchdiff (DESIGN.md §14): the flattening JSON parser, metric
// direction classification, regression thresholds (relative + absolute
// floor), smoke-mode mismatch handling, seeded regressions, the built-in
// self-test, and the markdown verdict rendering.

#include "tools/dbx_benchdiff/benchdiff.h"

#include <gtest/gtest.h>

#include <string>

namespace dbx::benchdiff {
namespace {

// A miniature BENCH_server.json-shaped document.
constexpr char kServerDoc[] = R"({
  "bench": "server_load",
  "smoke": true,
  "sessions": 4,
  "requests": 400,
  "errors": 0,
  "wall_ms": 120.5,
  "qps": 3319.5,
  "p50_ms": 1.2,
  "p95_ms": 2.5,
  "p99_ms": 4.0
})";

// A miniature BENCH_scale.json-shaped document with a nested configs array.
constexpr char kScaleDoc[] = R"({
  "bench": "scale_shards",
  "smoke": false,
  "rows": 40000,
  "configs": [
    {"shards": 1, "best_ms": 100.0, "rows_per_sec": 400000.0},
    {"shards": 8, "best_ms": 25.0, "rows_per_sec": 1600000.0}
  ],
  "speedup_max_shards_vs_1": 4.0
})";

TEST(ParseFlatJsonTest, FlattensScalarsAndStrings) {
  auto doc = ParseFlatJson(kServerDoc);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->strings.at("bench"), "server_load");
  EXPECT_EQ(doc->numbers.at("smoke"), 1.0);  // bools land as 0/1
  EXPECT_EQ(doc->numbers.at("requests"), 400.0);
  EXPECT_DOUBLE_EQ(doc->numbers.at("p95_ms"), 2.5);
}

TEST(ParseFlatJsonTest, FlattensNestedArraysToIndexedPaths) {
  auto doc = ParseFlatJson(kScaleDoc);
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc->numbers.at("configs.0.best_ms"), 100.0);
  EXPECT_DOUBLE_EQ(doc->numbers.at("configs.1.rows_per_sec"), 1600000.0);
  EXPECT_DOUBLE_EQ(doc->numbers.at("configs.1.shards"), 8.0);
  EXPECT_DOUBLE_EQ(doc->numbers.at("speedup_max_shards_vs_1"), 4.0);
  EXPECT_EQ(doc->numbers.at("smoke"), 0.0);
}

TEST(ParseFlatJsonTest, HandlesEscapesNullsAndNegatives) {
  auto doc = ParseFlatJson(
      R"({"name": "a\"b", "gone": null, "delta": -2.5e1, "deep": {"x": 1}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->strings.at("name"), "a\"b");
  EXPECT_EQ(doc->strings.count("gone"), 0u);     // nulls dropped
  EXPECT_EQ(doc->numbers.count("gone"), 0u);
  EXPECT_DOUBLE_EQ(doc->numbers.at("delta"), -25.0);
  EXPECT_DOUBLE_EQ(doc->numbers.at("deep.x"), 1.0);
}

TEST(ParseFlatJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseFlatJson("").ok());
  EXPECT_FALSE(ParseFlatJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseFlatJson("{\"a\": 1").ok());
  EXPECT_FALSE(ParseFlatJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseFlatJson("{\"a\": nope}").ok());
  EXPECT_TRUE(ParseFlatJson("").status().IsInvalidArgument());
}

TEST(ClassifyMetricTest, DirectionByLastSegment) {
  EXPECT_EQ(ClassifyMetric("p95_ms"), Direction::kLowerBetter);
  EXPECT_EQ(ClassifyMetric("configs.0.best_ms"), Direction::kLowerBetter);
  EXPECT_EQ(ClassifyMetric("errors"), Direction::kLowerBetter);
  EXPECT_EQ(ClassifyMetric("qps"), Direction::kHigherBetter);
  EXPECT_EQ(ClassifyMetric("configs.1.rows_per_sec"),
            Direction::kHigherBetter);
  EXPECT_EQ(ClassifyMetric("speedup_max_shards_vs_1"),
            Direction::kHigherBetter);
  EXPECT_EQ(ClassifyMetric("smoke"), Direction::kInfo);
  EXPECT_EQ(ClassifyMetric("requests"), Direction::kInfo);
  EXPECT_EQ(ClassifyMetric("rows"), Direction::kInfo);
}

FlatJson MustParse(const std::string& text) {
  auto doc = ParseFlatJson(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return *doc;
}

TEST(DiffBenchJsonTest, IdenticalDocumentsPass) {
  FlatJson doc = MustParse(kServerDoc);
  DiffReport report = DiffBenchJson(doc, doc, DiffOptions{});
  EXPECT_FALSE(report.has_regression());
  EXPECT_FALSE(report.mode_mismatch);
  EXPECT_FALSE(report.rows.empty());
  for (const auto& row : report.rows) EXPECT_FALSE(row.regression);
}

TEST(DiffBenchJsonTest, LowerBetterRegressionPastThreshold) {
  FlatJson baseline = MustParse(kServerDoc);
  FlatJson current = baseline;
  current.numbers["p95_ms"] = 2.5 * 1.4;  // +40% > default 20%
  DiffReport report = DiffBenchJson(baseline, current, DiffOptions{});
  EXPECT_TRUE(report.has_regression());
  bool flagged = false;
  for (const auto& row : report.rows) {
    if (row.key == "p95_ms") flagged = row.regression;
  }
  EXPECT_TRUE(flagged);
}

TEST(DiffBenchJsonTest, MinAbsMsFloorSuppressesTinyDeltas) {
  FlatJson baseline = MustParse(kServerDoc);
  FlatJson current = baseline;
  current.numbers["p95_ms"] = 2.5 * 2.0;  // +100% but only +2.5ms absolute
  DiffOptions options;
  options.min_abs_ms = 3.0;
  EXPECT_FALSE(DiffBenchJson(baseline, current, options).has_regression());
  options.min_abs_ms = 2.0;  // under the delta: gates again
  EXPECT_TRUE(DiffBenchJson(baseline, current, options).has_regression());
  // The floor is ms-specific: a non-ms lower-better metric still gates.
  current = baseline;
  current.numbers["errors"] = 1.0;
  options.min_abs_ms = 3.0;
  // errors baseline is 0 -> skipped (no ratio); bump baseline to check.
  baseline.numbers["errors"] = 2.0;
  current.numbers["errors"] = 3.0;  // +50%
  EXPECT_TRUE(DiffBenchJson(baseline, current, options).has_regression());
}

TEST(DiffBenchJsonTest, HigherBetterRegressionOnDrop) {
  FlatJson baseline = MustParse(kServerDoc);
  FlatJson current = baseline;
  current.numbers["qps"] = baseline.numbers["qps"] * 0.7;  // -30%
  DiffReport report = DiffBenchJson(baseline, current, DiffOptions{});
  EXPECT_TRUE(report.has_regression());
  // An improvement never gates.
  current.numbers["qps"] = baseline.numbers["qps"] * 1.5;
  EXPECT_FALSE(DiffBenchJson(baseline, current, DiffOptions{})
                   .has_regression());
}

TEST(DiffBenchJsonTest, ZeroBaselineSkippedWithNote) {
  FlatJson baseline = MustParse(kServerDoc);  // errors: 0
  FlatJson current = baseline;
  current.numbers["errors"] = 5.0;
  DiffReport report = DiffBenchJson(baseline, current, DiffOptions{});
  EXPECT_FALSE(report.has_regression());
  for (const auto& row : report.rows) {
    if (row.key == "errors") {
      EXPECT_FALSE(row.regression);
      EXPECT_FALSE(row.note.empty());
    }
  }
}

TEST(DiffBenchJsonTest, SmokeFlagMismatchDegradesToInformational) {
  FlatJson baseline = MustParse(kServerDoc);  // smoke: true
  FlatJson current = baseline;
  current.numbers["smoke"] = 0.0;             // a full run: not comparable
  current.numbers["p95_ms"] = 250.0;          // would be a huge regression
  DiffReport report = DiffBenchJson(baseline, current, DiffOptions{});
  EXPECT_TRUE(report.mode_mismatch);
  EXPECT_FALSE(report.has_regression());
  std::string md = report.Markdown();
  EXPECT_NE(md.find("smoke"), std::string::npos);
}

TEST(SeedRegressionTest, MultipliesMatchingMetrics) {
  FlatJson doc = MustParse(kScaleDoc);
  EXPECT_EQ(SeedRegression(&doc, "best_ms", 2.0), 2u);  // both configs
  EXPECT_DOUBLE_EQ(doc.numbers.at("configs.0.best_ms"), 200.0);
  EXPECT_DOUBLE_EQ(doc.numbers.at("configs.1.best_ms"), 50.0);
  // Full-path match works too; unknown keys match nothing.
  EXPECT_EQ(SeedRegression(&doc, "configs.0.best_ms", 2.0), 1u);
  EXPECT_DOUBLE_EQ(doc.numbers.at("configs.0.best_ms"), 400.0);
  EXPECT_EQ(SeedRegression(&doc, "no_such_metric", 2.0), 0u);
}

TEST(SeedRegressionTest, SeededRegressionGatesTheDiff) {
  FlatJson baseline = MustParse(kServerDoc);
  FlatJson current = baseline;
  ASSERT_GT(SeedRegression(&current, "p95_ms", 1.3), 0u);
  EXPECT_TRUE(DiffBenchJson(baseline, current, DiffOptions{})
                  .has_regression());
}

TEST(SelfTest, Passes) { EXPECT_TRUE(RunSelfTest().ok()); }

TEST(MarkdownTest, RendersVerdictTable) {
  FlatJson baseline = MustParse(kServerDoc);
  FlatJson current = baseline;
  current.numbers["p95_ms"] = 10.0;
  DiffReport report = DiffBenchJson(baseline, current, DiffOptions{});
  std::string md = report.Markdown();
  EXPECT_NE(md.find("| metric |"), std::string::npos);
  EXPECT_NE(md.find("p95_ms"), std::string::npos);
  EXPECT_NE(md.find("**REGRESSION**"), std::string::npos);
  EXPECT_NE(md.find("verdict: **REGRESSION**"), std::string::npos);

  DiffReport clean = DiffBenchJson(baseline, baseline, DiffOptions{});
  std::string clean_md = clean.Markdown();
  EXPECT_EQ(clean_md.find("REGRESSION"), std::string::npos);
  EXPECT_NE(clean_md.find("verdict: ok"), std::string::npos);
}

}  // namespace
}  // namespace dbx::benchdiff
