// Tests for histogram binning: per-strategy behaviour plus parameterized
// invariants shared by all strategies.

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/histogram.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

std::vector<double> UniformValues(size_t n, double lo, double hi,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.NextUniform(lo, hi);
  return v;
}

TEST(CompactNumberTest, Formats) {
  EXPECT_EQ(CompactNumber(20000), "20K");
  EXPECT_EQ(CompactNumber(25500), "25.5K");
  EXPECT_EQ(CompactNumber(1500000), "1.5M");
  EXPECT_EQ(CompactNumber(2000000), "2M");
  EXPECT_EQ(CompactNumber(37.5), "37.5");
  EXPECT_EQ(CompactNumber(12), "12");
}

TEST(BinsTest, BinOfClampsAndHandlesNan) {
  Bins b;
  b.edges = {0.0, 10.0, 20.0};
  EXPECT_EQ(b.BinOf(-5.0), 0);
  EXPECT_EQ(b.BinOf(0.0), 0);
  EXPECT_EQ(b.BinOf(9.99), 0);
  EXPECT_EQ(b.BinOf(10.0), 1);
  EXPECT_EQ(b.BinOf(20.0), 1);
  EXPECT_EQ(b.BinOf(25.0), 1);
  EXPECT_EQ(b.BinOf(std::nan("")), -1);
}

TEST(BinsTest, LabelUsesCompactForm) {
  Bins b;
  b.edges = {10000.0, 20000.0, 30000.0};
  EXPECT_EQ(b.LabelOf(0), "10K-20K");
  EXPECT_EQ(b.LabelOf(1), "20K-30K");
}

TEST(BuildBinsTest, EquiWidthEdgesAreUniform) {
  auto bins = BuildBins({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5,
                        BinStrategy::kEquiWidth);
  ASSERT_TRUE(bins.ok());
  ASSERT_EQ(bins->num_bins(), 5u);
  for (size_t i = 0; i + 1 < bins->edges.size(); ++i) {
    EXPECT_NEAR(bins->edges[i + 1] - bins->edges[i], 2.0, 1e-12);
  }
}

TEST(BuildBinsTest, EquiDepthBalancesCounts) {
  std::vector<double> v = UniformValues(10000, 0, 100, 3);
  auto bins = BuildBins(v, 4, BinStrategy::kEquiDepth);
  ASSERT_TRUE(bins.ok());
  ASSERT_EQ(bins->num_bins(), 4u);
  std::vector<size_t> counts(4, 0);
  for (double x : v) ++counts[bins->BinOf(x)];
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 2500.0, 250.0);
  }
}

TEST(BuildBinsTest, VOptimalSeparatesClusters) {
  // Three well-separated value clusters: V-optimal with 3 bins must cut
  // exactly between them (SSE ~ within-cluster only).
  std::vector<double> v;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) v.push_back(rng.NextGaussian(0.0, 0.5));
  for (int i = 0; i < 200; ++i) v.push_back(rng.NextGaussian(50.0, 0.5));
  for (int i = 0; i < 200; ++i) v.push_back(rng.NextGaussian(100.0, 0.5));
  auto bins = BuildBins(v, 3, BinStrategy::kVOptimal);
  ASSERT_TRUE(bins.ok());
  ASSERT_EQ(bins->num_bins(), 3u);
  // Cluster centers land in distinct bins.
  EXPECT_EQ(bins->BinOf(0.0), 0);
  EXPECT_EQ(bins->BinOf(50.0), 1);
  EXPECT_EQ(bins->BinOf(100.0), 2);
}

TEST(BuildBinsTest, VOptimalBeatsEquiWidthOnSkewedData) {
  // Heavy skew: V-optimal should achieve lower SSE than equi-width.
  std::vector<double> v;
  Rng rng(17);
  for (int i = 0; i < 900; ++i) v.push_back(rng.NextUniform(0, 1));
  for (int i = 0; i < 100; ++i) v.push_back(rng.NextUniform(900, 1000));
  auto sse_of = [&](const Bins& b) {
    std::vector<double> sum(b.num_bins(), 0), cnt(b.num_bins(), 0);
    for (double x : v) {
      int32_t bin = b.BinOf(x);
      sum[bin] += x;
      cnt[bin] += 1;
    }
    double sse = 0;
    for (double x : v) {
      int32_t bin = b.BinOf(x);
      double mean = sum[bin] / cnt[bin];
      sse += (x - mean) * (x - mean);
    }
    return sse;
  };
  auto vo = BuildBins(v, 4, BinStrategy::kVOptimal);
  auto ew = BuildBins(v, 4, BinStrategy::kEquiWidth);
  ASSERT_TRUE(vo.ok());
  ASSERT_TRUE(ew.ok());
  EXPECT_LE(sse_of(*vo), sse_of(*ew) + 1e-9);
}

TEST(BuildBinsTest, ErrorsAndDegenerateInputs) {
  EXPECT_TRUE(BuildBins({}, 4, BinStrategy::kEquiWidth).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(BuildBins({1.0}, 0, BinStrategy::kEquiWidth).status()
                  .IsInvalidArgument());
  auto all_nan = BuildBins({std::nan(""), std::nan("")}, 4,
                           BinStrategy::kEquiDepth);
  EXPECT_FALSE(all_nan.ok());

  auto constant = BuildBins({5, 5, 5, 5}, 4, BinStrategy::kEquiDepth);
  ASSERT_TRUE(constant.ok());
  EXPECT_EQ(constant->num_bins(), 1u);
  EXPECT_EQ(constant->BinOf(5.0), 0);
}

// Shared invariants, parameterized over (strategy, max_bins).
class BinInvariantTest
    : public ::testing::TestWithParam<std::tuple<BinStrategy, size_t>> {};

TEST_P(BinInvariantTest, EdgesSortedAndCoverEveryValue) {
  auto [strategy, max_bins] = GetParam();
  std::vector<double> v = UniformValues(3000, -50, 200, 11);
  v.push_back(std::nan(""));  // NaNs must be ignored
  auto bins = BuildBins(v, max_bins, strategy);
  ASSERT_TRUE(bins.ok()) << BinStrategyName(strategy);
  EXPECT_GE(bins->num_bins(), 1u);
  EXPECT_LE(bins->num_bins(), max_bins);
  for (size_t i = 0; i + 1 < bins->edges.size(); ++i) {
    EXPECT_LT(bins->edges[i], bins->edges[i + 1]);
  }
  for (double x : v) {
    if (std::isnan(x)) continue;
    int32_t b = bins->BinOf(x);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, static_cast<int32_t>(bins->num_bins()));
  }
  // Every bin has a printable label.
  for (size_t b = 0; b < bins->num_bins(); ++b) {
    EXPECT_FALSE(bins->LabelOf(b).empty());
    EXPECT_NE(bins->LabelOf(b), "?");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, BinInvariantTest,
    ::testing::Combine(::testing::Values(BinStrategy::kEquiWidth,
                                         BinStrategy::kEquiDepth,
                                         BinStrategy::kVOptimal),
                       ::testing::Values(1u, 2u, 5u, 8u, 16u)));

}  // namespace
}  // namespace dbx
