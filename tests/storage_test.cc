// Tests for the pluggable storage subsystem (DESIGN.md §15): URI parsing and
// the scheme factory, the mem: backend, the DBXC on-disk columnar format
// (byte-identical round trips, the mmap no-materialization Discretize path,
// and clean Status for every durability edge — truncation, bad magic,
// checksum mismatches, versions from the future), the dbxc: directory
// backend, and the sqlite: ingest adapter (auto-skipped when the build has
// no SQLite3).

#include "src/storage/storage.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/stats/discretizer.h"
#include "src/storage/dbxc_backend.h"
#include "src/storage/dbxc_format.h"
#include "src/storage/mem_backend.h"
#include "src/storage/mmap_file.h"
#include "src/storage/sqlite_backend.h"

#if defined(DBX_HAVE_SQLITE)
#include <sqlite3.h>
#endif

namespace dbx::storage {
namespace {

/// A fresh per-test scratch directory under the system temp dir.
std::string FreshDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("dbx_storage_test_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Mixed-type table with nulls in both kinds of column and a repeated
/// categorical value (exercises dictionary interning and the null symbol).
Table MakeSample() {
  auto schema = Schema::Make({{"Make", AttrType::kCategorical, true},
                              {"Price", AttrType::kNumeric, true},
                              {"Notes", AttrType::kCategorical, false}});
  Table t(std::move(*schema));
  auto row = [&](Value a, Value b, Value c) {
    ASSERT_TRUE(t.AppendRow({std::move(a), std::move(b), std::move(c)}).ok());
  };
  row(Value("Ford"), Value(21000.0), Value("clean"));
  row(Value("Toyota"), Value(18500.5), Value::Null());
  row(Value("Ford"), Value::Null(), Value("dealer"));
  row(Value::Null(), Value(9999.0), Value("clean"));
  row(Value("Jeep"), Value(30125.25), Value("salvage"));
  row(Value("Toyota"), Value(18500.5), Value("clean"));
  return t;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_cols(), b.num_cols());
  for (size_t c = 0; c < a.num_cols(); ++c) {
    EXPECT_EQ(a.schema().attr(c).name, b.schema().attr(c).name);
    EXPECT_EQ(a.schema().attr(c).type, b.schema().attr(c).type);
    EXPECT_EQ(a.schema().attr(c).queriable, b.schema().attr(c).queriable);
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_cols(); ++c) {
      EXPECT_EQ(a.At(r, c), b.At(r, c)) << "cell (" << r << ", " << c << ")";
    }
  }
  EXPECT_EQ(TableContentHash(a), TableContentHash(b));
}

// --- URIs and the factory ----------------------------------------------------

TEST(StorageUriTest, ParsesAndLowercasesScheme) {
  auto p = ParseStorageUri("DBXC:/some/dir");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->first, "dbxc");
  EXPECT_EQ(p->second, "/some/dir");

  auto empty_loc = ParseStorageUri("mem:");
  ASSERT_TRUE(empty_loc.ok());
  EXPECT_EQ(empty_loc->first, "mem");
  EXPECT_EQ(empty_loc->second, "");
}

TEST(StorageUriTest, RejectsMalformedUris) {
  EXPECT_TRUE(ParseStorageUri("no-colon").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStorageUri(":/leading").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStorageUri("bad scheme:x").status().IsInvalidArgument());
}

TEST(StorageFactoryTest, BuiltinSchemesRegistered) {
  auto schemes = StorageBackendFactory::Global().Schemes();
  auto has = [&](const std::string& s) {
    return std::find(schemes.begin(), schemes.end(), s) != schemes.end();
  };
  EXPECT_TRUE(has("mem"));
  EXPECT_TRUE(has("dbxc"));
  EXPECT_TRUE(has("sqlite"));
}

TEST(StorageFactoryTest, UnknownSchemeIsNotFound) {
  EXPECT_TRUE(StorageBackendFactory::Global()
                  .Create("warehouse:/x")
                  .status()
                  .IsNotFound());
}

TEST(StorageFactoryTest, RegisteredCreatorWins) {
  StorageBackendFactory factory;
  RegisterMemBackend(&factory);
  auto backend = factory.Create("MEM:ignored");
  ASSERT_TRUE(backend.ok());
  EXPECT_EQ((*backend)->scheme(), "mem");
  EXPECT_EQ((*backend)->location(), "ignored");
}

TEST(StorageTest, TableNameValidation) {
  EXPECT_TRUE(IsValidTableName("UsedCars"));
  EXPECT_TRUE(IsValidTableName("a-b_c9"));
  EXPECT_FALSE(IsValidTableName(""));
  EXPECT_FALSE(IsValidTableName("has space"));
  EXPECT_FALSE(IsValidTableName("../escape"));
  EXPECT_FALSE(IsValidTableName(std::string(129, 'x')));
}

TEST(StorageTest, SnapshotIdFormat) {
  EXPECT_EQ(SnapshotIdFor("T", 0), "T@0000000000000000");
  EXPECT_EQ(SnapshotIdFor("T", 0xDEADBEEFULL), "T@00000000deadbeef");
}

TEST(StorageTest, ContentHashSeesSchemaAndCells) {
  Table a = MakeSample();
  Table b = MakeSample();
  EXPECT_EQ(TableContentHash(a), TableContentHash(b));

  // One more row: different content, different hash.
  ASSERT_TRUE(b.AppendRow({Value("Ford"), Value(1.0), Value("x")}).ok());
  EXPECT_NE(TableContentHash(a), TableContentHash(b));

  // Same cells, different queriability: different hash (the CAD View would
  // differ, so the snapshots must not share cache entries).
  auto schema = Schema::Make({{"Make", AttrType::kCategorical, true},
                              {"Price", AttrType::kNumeric, true},
                              {"Notes", AttrType::kCategorical, true}});
  Table c(std::move(*schema));
  for (size_t r = 0; r < a.num_rows(); ++r) {
    ASSERT_TRUE(c.AppendRow({a.At(r, 0), a.At(r, 1), a.At(r, 2)}).ok());
  }
  EXPECT_NE(TableContentHash(a), TableContentHash(c));
}

TEST(StorageTest, CopyTablePreservesContent) {
  Table t = MakeSample();
  auto copy = CopyTable(t);
  ASSERT_TRUE(copy.ok());
  ExpectTablesEqual(t, **copy);
}

// --- mem: --------------------------------------------------------------------

TEST(MemBackendTest, LifecycleAndSnapshotIdentity) {
  auto backend = OpenStorageBackend("mem:");
  ASSERT_TRUE(backend.ok());
  Table t = MakeSample();
  ASSERT_TRUE((*backend)->StoreTable("cars", t).ok());

  auto listed = (*backend)->ListTables();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, std::vector<std::string>{"cars"});

  auto snap = (*backend)->LoadTable("cars");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->name, "cars");
  EXPECT_EQ(snap->snapshot_id, SnapshotIdFor("cars", TableContentHash(t)));
  ExpectTablesEqual(t, *snap->table);

  auto id = (*backend)->SnapshotId("cars");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, snap->snapshot_id);

  EXPECT_TRUE((*backend)->LoadTable("nope").status().IsNotFound());
  EXPECT_TRUE((*backend)->SnapshotId("nope").status().IsNotFound());
  EXPECT_TRUE((*backend)->StoreTable("../bad", t).IsInvalidArgument());

  // The snapshot is a deep copy: growing the source later must not change
  // what was stored.
  ASSERT_TRUE(t.AppendRow({Value("New"), Value(2.0), Value::Null()}).ok());
  auto again = (*backend)->LoadTable("cars");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->table->num_rows(), 6u);
  EXPECT_EQ(again->snapshot_id, snap->snapshot_id);

  ASSERT_TRUE((*backend)->Close().ok());
  EXPECT_TRUE((*backend)->ListTables().status().IsFailedPrecondition());
}

TEST(MemBackendTest, OperationsRequireOpen) {
  MemBackend backend("");
  EXPECT_TRUE(backend.ListTables().status().IsFailedPrecondition());
  EXPECT_TRUE(backend.LoadTable("x").status().IsFailedPrecondition());
}

// --- DBXC format -------------------------------------------------------------

TEST(DbxcFormatTest, RoundTripIsByteIdentical) {
  Table t = MakeSample();
  const std::string bytes = DbxcSerialize(t);
  ASSERT_TRUE(ValidateDbxc(bytes).ok());

  auto file = DbxcTableFile::FromBytes(bytes);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->num_rows(), t.num_rows());
  EXPECT_EQ(file->num_cols(), t.num_cols());
  EXPECT_EQ(file->content_hash(), TableContentHash(t));

  auto back = file->Materialize();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectTablesEqual(t, **back);

  // write(load(write(T))) == write(T): the format is canonical.
  EXPECT_EQ(DbxcSerialize(**back), bytes);
}

TEST(DbxcFormatTest, EmptyAndAllNullTablesRoundTrip) {
  auto schema = Schema::Make({{"A", AttrType::kCategorical, true},
                              {"B", AttrType::kNumeric, true}});
  Table empty(std::move(*schema));
  auto efile = DbxcTableFile::FromBytes(DbxcSerialize(empty));
  ASSERT_TRUE(efile.ok()) << efile.status().ToString();
  auto eback = efile->Materialize();
  ASSERT_TRUE(eback.ok());
  ExpectTablesEqual(empty, **eback);

  auto schema2 = Schema::Make({{"A", AttrType::kCategorical, true},
                               {"B", AttrType::kNumeric, true}});
  Table nulls(std::move(*schema2));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(nulls.AppendRow({Value::Null(), Value::Null()}).ok());
  }
  auto nfile = DbxcTableFile::FromBytes(DbxcSerialize(nulls));
  ASSERT_TRUE(nfile.ok()) << nfile.status().ToString();
  auto nback = nfile->Materialize();
  ASSERT_TRUE(nback.ok());
  ExpectTablesEqual(nulls, **nback);
}

TEST(DbxcFormatTest, WideDictionaryCrossesWordBoundaries) {
  // 300 distinct values force a 9-bit width, so packed symbols straddle u64
  // word boundaries; a second column keeps width 1 (the all-null case).
  auto schema = Schema::Make({{"Id", AttrType::kCategorical, true},
                              {"Empty", AttrType::kCategorical, true}});
  Table t(std::move(*schema));
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value("v" + std::to_string(i)), Value::Null()}).ok());
  }
  auto file = DbxcTableFile::FromBytes(DbxcSerialize(t));
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->header().cols[0].bit_width, 9);
  EXPECT_EQ(file->header().cols[1].bit_width, 1);
  auto back = file->Materialize();
  ASSERT_TRUE(back.ok());
  ExpectTablesEqual(t, **back);
}

TEST(DbxcFormatTest, MmapDiscretizeMatchesMaterializedBuild) {
  Table t = MakeSample();
  auto file = DbxcTableFile::FromBytes(DbxcSerialize(t));
  ASSERT_TRUE(file.ok());

  DiscretizerOptions options;
  options.max_numeric_bins = 4;
  auto from_mmap = file->Discretize(options);
  ASSERT_TRUE(from_mmap.ok()) << from_mmap.status().ToString();
  auto from_table = DiscretizedTable::Build(TableSlice::All(t), options);
  ASSERT_TRUE(from_table.ok());

  ASSERT_EQ(from_mmap->num_attrs(), from_table->num_attrs());
  ASSERT_EQ(from_mmap->num_rows(), from_table->num_rows());
  EXPECT_EQ(from_mmap->rows(), from_table->rows());
  for (size_t a = 0; a < from_table->num_attrs(); ++a) {
    const DiscreteAttr& x = from_mmap->attr(a);
    const DiscreteAttr& y = from_table->attr(a);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.original_type, y.original_type);
    EXPECT_EQ(x.queriable, y.queriable);
    EXPECT_EQ(x.labels, y.labels);
    EXPECT_EQ(x.codes, y.codes);
    EXPECT_EQ(x.bins.edges, y.bins.edges);
  }
}

// --- DBXC durability edges ---------------------------------------------------

TEST(DbxcDurabilityTest, TruncationAtEveryBoundaryIsClean) {
  const std::string bytes = DbxcSerialize(MakeSample());
  // Preamble cut, header cut, data cut — every prefix must fail cleanly.
  for (size_t len : {size_t{0}, size_t{3}, size_t{10}, size_t{19}, size_t{40},
                     bytes.size() - 1}) {
    ASSERT_LT(len, bytes.size());
    auto st = ValidateDbxc(bytes.substr(0, len));
    EXPECT_TRUE(st.IsCorruption()) << "prefix length " << len << ": "
                                   << st.ToString();
  }
  // Trailing garbage is just as corrupt as missing bytes.
  EXPECT_TRUE(ValidateDbxc(bytes + "x").IsCorruption());
}

TEST(DbxcDurabilityTest, BadMagicIsCorruption) {
  std::string bytes = DbxcSerialize(MakeSample());
  bytes[0] = 'X';
  EXPECT_TRUE(ValidateDbxc(bytes).IsCorruption());
  EXPECT_TRUE(DbxcTableFile::FromBytes(bytes).status().IsCorruption());
}

TEST(DbxcDurabilityTest, HeaderCorruptionIsDetected) {
  std::string bytes = DbxcSerialize(MakeSample());
  bytes[kDbxcPreambleBytes + 2] ^= 0x40;  // inside the header section
  auto st = ValidateDbxc(bytes);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("header checksum"), std::string::npos);
}

TEST(DbxcDurabilityTest, DataCorruptionIsDetected) {
  std::string bytes = DbxcSerialize(MakeSample());
  bytes[bytes.size() - 1] ^= 0x01;  // inside the data section
  auto st = ValidateDbxc(bytes);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("data checksum"), std::string::npos);
  // The default open verifies data too.
  EXPECT_TRUE(DbxcTableFile::FromBytes(bytes).status().IsCorruption());
}

TEST(DbxcDurabilityTest, VersionFromTheFutureIsNotSupported) {
  std::string bytes = DbxcSerialize(MakeSample());
  bytes[4] = static_cast<char>(kDbxcVersion + 1);  // u32 LE version field
  auto st = ValidateDbxc(bytes);
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
  EXPECT_NE(st.message().find("newer"), std::string::npos);
}

// --- dbxc: backend -----------------------------------------------------------

TEST(DbxcBackendTest, StoreLoadListSnapshot) {
  const std::string dir = FreshDir("dbxc_backend");
  auto backend = OpenStorageBackend("dbxc:" + dir);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();

  Table t = MakeSample();
  ASSERT_TRUE((*backend)->StoreTable("cars", t).ok());
  ASSERT_TRUE((*backend)->StoreTable("cars2", t).ok());

  auto listed = (*backend)->ListTables();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, (std::vector<std::string>{"cars", "cars2"}));

  auto snap = (*backend)->LoadTable("cars");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ExpectTablesEqual(t, *snap->table);
  EXPECT_EQ(snap->snapshot_id, SnapshotIdFor("cars", TableContentHash(t)));

  // Header-only probe agrees with the full load.
  auto id = (*backend)->SnapshotId("cars");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, snap->snapshot_id);

  EXPECT_TRUE((*backend)->LoadTable("missing").status().IsNotFound());

  // Reopening the directory sees the same tables with the same ids.
  ASSERT_TRUE((*backend)->Close().ok());
  auto reopened = OpenStorageBackend("dbxc:" + dir);
  ASSERT_TRUE(reopened.ok());
  auto id2 = (*reopened)->SnapshotId("cars");
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, snap->snapshot_id);
  std::filesystem::remove_all(dir);
}

TEST(DbxcBackendTest, StoreReplacesAtomically) {
  const std::string dir = FreshDir("dbxc_replace");
  auto backend = OpenStorageBackend("dbxc:" + dir);
  ASSERT_TRUE(backend.ok());
  Table t = MakeSample();
  ASSERT_TRUE((*backend)->StoreTable("cars", t).ok());
  auto id1 = (*backend)->SnapshotId("cars");
  ASSERT_TRUE(id1.ok());

  ASSERT_TRUE(t.AppendRow({Value("New"), Value(5.0), Value::Null()}).ok());
  ASSERT_TRUE((*backend)->StoreTable("cars", t).ok());
  auto id2 = (*backend)->SnapshotId("cars");
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id1, *id2);
  // No leftover temp files from the atomic write.
  size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  std::filesystem::remove_all(dir);
}

TEST(DbxcBackendTest, CorruptFileSurfacesAsStatusNotCrash) {
  const std::string dir = FreshDir("dbxc_corrupt");
  auto backend = OpenStorageBackend("dbxc:" + dir);
  ASSERT_TRUE(backend.ok());
  ASSERT_TRUE((*backend)->StoreTable("cars", MakeSample()).ok());

  // Truncate the stored file mid-data.
  DbxcBackend* dbxc = static_cast<DbxcBackend*>(backend->get());
  const std::string path = dbxc->PathFor("cars");
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_TRUE((*backend)->LoadTable("cars").status().IsCorruption());
  EXPECT_TRUE((*backend)->SnapshotId("cars").status().IsCorruption());
  std::filesystem::remove_all(dir);
}

TEST(MmapFileTest, MissingAndEmptyFiles) {
  EXPECT_TRUE(MmapFile::Open("/nonexistent/definitely/missing")
                  .status()
                  .IsNotFound());
  const std::string dir = FreshDir("mmap");
  const std::string path = dir + "/empty";
  { std::ofstream f(path); }
  auto file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->bytes().empty());
  std::filesystem::remove_all(dir);
}

// --- sqlite: -----------------------------------------------------------------

TEST(SqliteBackendTest, UnavailableSchemeFailsCleanly) {
  if (SqliteBackendAvailable()) {
    GTEST_SKIP() << "SQLite compiled in; the stub path is not reachable";
  }
  auto backend = StorageBackendFactory::Global().Create("sqlite:/tmp/x.db");
  EXPECT_TRUE(backend.status().IsNotSupported());
}

#if defined(DBX_HAVE_SQLITE)

TEST(SqliteBackendTest, RoundTripPreservesSchemaAndContent) {
  const std::string dir = FreshDir("sqlite_rt");
  auto backend = OpenStorageBackend("sqlite:" + dir + "/t.db");
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();

  Table t = MakeSample();
  ASSERT_TRUE((*backend)->StoreTable("cars", t).ok());
  auto listed = (*backend)->ListTables();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, std::vector<std::string>{"cars"});

  auto snap = (*backend)->LoadTable("cars");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  // Full fidelity through SQL types: cells, attribute types, and the
  // non-queriable Notes flag (via the dbx_storage_meta sidecar) — so the
  // snapshot id equals the mem:/dbxc: id of the same logical table.
  ExpectTablesEqual(t, *snap->table);
  EXPECT_EQ(snap->snapshot_id, SnapshotIdFor("cars", TableContentHash(t)));
  ASSERT_TRUE((*backend)->Close().ok());
  std::filesystem::remove_all(dir);
}

TEST(SqliteBackendTest, SniffsExternalTableTypes) {
  const std::string dir = FreshDir("sqlite_sniff");
  const std::string db_path = dir + "/ext.db";
  {
    // An "external" table no dbx tool wrote: no sidecar metadata.
    sqlite3* db = nullptr;
    ASSERT_EQ(sqlite3_open(db_path.c_str(), &db), SQLITE_OK);
    ASSERT_EQ(sqlite3_exec(db,
                           "CREATE TABLE listings (city TEXT, price REAL, "
                           "stars INTEGER, mixed TEXT);"
                           "INSERT INTO listings VALUES "
                           "('Rome', 120.5, 4, '12'),"
                           "('Oslo', NULL, 5, 'abc'),"
                           "(NULL, 99.0, NULL, NULL);",
                           nullptr, nullptr, nullptr),
              SQLITE_OK);
    sqlite3_close(db);
  }
  auto backend = OpenStorageBackend("sqlite:" + db_path);
  ASSERT_TRUE(backend.ok());
  auto snap = (*backend)->LoadTable("listings");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const Schema& schema = snap->table->schema();
  ASSERT_EQ(schema.size(), 4u);
  EXPECT_EQ(schema.attr(0).type, AttrType::kCategorical);  // TEXT
  EXPECT_EQ(schema.attr(1).type, AttrType::kNumeric);      // REAL + NULL
  EXPECT_EQ(schema.attr(2).type, AttrType::kNumeric);      // INTEGER + NULL
  EXPECT_EQ(schema.attr(3).type, AttrType::kCategorical);  // mixed digits/text
  EXPECT_TRUE(schema.attr(0).queriable);                   // no sidecar: default
  EXPECT_EQ(snap->table->num_rows(), 3u);
  EXPECT_EQ(snap->table->At(0, 0), Value("Rome"));
  EXPECT_EQ(snap->table->At(1, 2), Value(5.0));
  EXPECT_TRUE(snap->table->At(2, 3).is_null());
  std::filesystem::remove_all(dir);
}

TEST(SqliteBackendTest, MissingTableIsNotFound) {
  const std::string dir = FreshDir("sqlite_missing");
  auto backend = OpenStorageBackend("sqlite:" + dir + "/t.db");
  ASSERT_TRUE(backend.ok());
  EXPECT_TRUE((*backend)->LoadTable("nope").status().IsNotFound());
  std::filesystem::remove_all(dir);
}

#endif  // DBX_HAVE_SQLITE

}  // namespace
}  // namespace dbx::storage
