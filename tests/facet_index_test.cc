// Tests for the bitmap facet index and multi-select faceting semantics.

#include <gtest/gtest.h>

#include "src/data/used_cars.h"
#include "src/facet/facet_engine.h"
#include "src/facet/facet_index.h"
#include "src/facet/panel_renderer.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

// --- RowBitmap -------------------------------------------------------------------

TEST(RowBitmapTest, SetTestCount) {
  RowBitmap b(130);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  EXPECT_EQ(b.ToRowSet(), (RowSet{0, 64, 129}));
}

TEST(RowBitmapTest, SetAllRespectsTail) {
  RowBitmap b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  RowSet rows = b.ToRowSet();
  EXPECT_EQ(rows.size(), 70u);
  EXPECT_EQ(rows.back(), 69u);
}

TEST(RowBitmapTest, IntersectAndUnion) {
  RowBitmap a(100), b(100);
  for (size_t i = 0; i < 100; i += 2) a.Set(i);   // evens
  for (size_t i = 0; i < 100; i += 3) b.Set(i);   // multiples of 3
  EXPECT_EQ(a.IntersectCount(b), 17u);  // multiples of 6 in [0,100): 0..96

  RowBitmap c = a;
  c.IntersectWith(b);
  EXPECT_EQ(c.Count(), 17u);

  RowBitmap d = a;
  d.UnionWith(b);
  EXPECT_EQ(d.Count(), 50u + 34u - 17u);
}

// --- FacetIndex -------------------------------------------------------------------

Table SmallTable() {
  Schema s = std::move(Schema::Make({
                           {"A", AttrType::kCategorical, true},
                           {"B", AttrType::kCategorical, true},
                       }))
                 .value();
  Table t(s);
  // Rows: (a1,b1) (a1,b2) (a2,b1) (a2,b2) (a1,b1)
  const char* data[][2] = {
      {"a1", "b1"}, {"a1", "b2"}, {"a2", "b1"}, {"a2", "b2"}, {"a1", "b1"}};
  for (const auto& row : data) {
    EXPECT_TRUE(t.AppendRow({Value(row[0]), Value(row[1])}).ok());
  }
  return t;
}

TEST(FacetIndexTest, ValueBitmapsMatchData) {
  Table t = SmallTable();
  auto dt = DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{});
  ASSERT_TRUE(dt.ok());
  FacetIndex idx = FacetIndex::Build(*dt);
  EXPECT_EQ(idx.num_rows(), 5u);
  EXPECT_EQ(idx.Cardinality(0), 2u);
  // a1 rows: 0,1,4.
  EXPECT_EQ(idx.ValueBitmap(0, 0).ToRowSet(), (RowSet{0, 1, 4}));
}

TEST(FacetIndexTest, EvaluateSelectionsOrWithinAndAcross) {
  Table t = SmallTable();
  auto dt = DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{});
  FacetIndex idx = FacetIndex::Build(*dt);

  // No selections: all rows.
  std::vector<std::vector<int32_t>> none(2);
  EXPECT_EQ(idx.EvaluateSelections(none).Count(), 5u);

  // A in {a1}: rows 0,1,4.
  std::vector<std::vector<int32_t>> a1(2);
  a1[0] = {0};
  EXPECT_EQ(idx.EvaluateSelections(a1).ToRowSet(), (RowSet{0, 1, 4}));

  // A in {a1, a2}: everything (OR within attribute).
  std::vector<std::vector<int32_t>> both(2);
  both[0] = {0, 1};
  EXPECT_EQ(idx.EvaluateSelections(both).Count(), 5u);

  // A=a1 AND B=b1: rows 0,4.
  std::vector<std::vector<int32_t>> conj(2);
  conj[0] = {0};
  conj[1] = {0};
  EXPECT_EQ(idx.EvaluateSelections(conj).ToRowSet(), (RowSet{0, 4}));
}

TEST(FacetIndexTest, MultiSelectCountsExcludeOwnAttr) {
  Table t = SmallTable();
  auto dt = DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{});
  FacetIndex idx = FacetIndex::Build(*dt);

  // With A=a1 selected, A's own panel counts must ignore that selection
  // (showing what selecting a2 *instead/additionally* would match)...
  std::vector<std::vector<int32_t>> sel(2);
  sel[0] = {0};
  auto a_counts = idx.MultiSelectCounts(sel, 0);
  EXPECT_EQ(a_counts, (std::vector<uint64_t>{3, 2}));
  // ...while B's counts ARE conditioned on A=a1.
  auto b_counts = idx.MultiSelectCounts(sel, 1);
  EXPECT_EQ(b_counts, (std::vector<uint64_t>{2, 1}));
}

TEST(FacetIndexTest, AgreesWithRowScanOnRealData) {
  Table cars = GenerateUsedCars(3000, 3);
  auto dt = DiscretizedTable::Build(TableSlice::All(cars),
                                    DiscretizerOptions{});
  FacetIndex idx = FacetIndex::Build(*dt);
  auto body = dt->IndexOf("BodyType");
  auto make = dt->IndexOf("Make");
  ASSERT_TRUE(body && make);

  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<int32_t>> sel(dt->num_attrs());
    sel[*body] = {static_cast<int32_t>(
        rng.NextBounded(dt->attr(*body).cardinality()))};
    sel[*make] = {
        static_cast<int32_t>(rng.NextBounded(dt->attr(*make).cardinality())),
        static_cast<int32_t>(rng.NextBounded(dt->attr(*make).cardinality()))};

    RowSet via_index = idx.EvaluateSelections(sel).ToRowSet();
    RowSet via_scan;
    for (size_t i = 0; i < dt->num_rows(); ++i) {
      int32_t b = dt->attr(*body).codes[i];
      int32_t m = dt->attr(*make).codes[i];
      bool keep = b == sel[*body][0] &&
                  (m == sel[*make][0] || m == sel[*make][1]);
      if (keep) via_scan.push_back(static_cast<uint32_t>(i));
    }
    EXPECT_EQ(via_index, via_scan) << "trial " << trial;
  }
}

// --- FacetEngine::PanelCounts --------------------------------------------------

TEST(FacetIndexTest, EnginePanelCounts) {
  Table cars = GenerateUsedCars(2000, 3);
  auto engine = FacetEngine::Create(&cars, DiscretizerOptions{});
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->SelectValue("Make", "Ford").ok());

  // Make's panel still shows every make's count (own selections excluded).
  auto make_counts = engine->PanelCounts("Make");
  ASSERT_TRUE(make_counts.ok());
  uint64_t total = 0;
  for (uint64_t c : make_counts->counts) total += c;
  EXPECT_EQ(total, cars.num_rows());

  // BodyType's panel is conditioned on Make=Ford.
  auto body_counts = engine->PanelCounts("BodyType");
  ASSERT_TRUE(body_counts.ok());
  total = 0;
  for (uint64_t c : body_counts->counts) total += c;
  EXPECT_EQ(total, engine->result_rows().size());

  EXPECT_TRUE(engine->PanelCounts("Nope").status().IsNotFound());
}

TEST(PanelRendererTest, ShowsSelectionsAndCounts) {
  Table cars = GenerateUsedCars(1500, 3);
  auto engine = FacetEngine::Create(&cars, DiscretizerOptions{});
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->SelectValue("BodyType", "SUV").ok());

  PanelRenderOptions opt;
  opt.max_values_per_attr = 4;
  std::string panel = RenderQueryPanel(*engine, opt);
  EXPECT_NE(panel.find("[x] SUV"), std::string::npos);
  EXPECT_NE(panel.find("BodyType"), std::string::npos);
  // Hidden attribute absent by default...
  EXPECT_EQ(panel.find("Engine"), std::string::npos);
  // ...and labeled when requested.
  opt.show_hidden_attrs = true;
  std::string with_hidden = RenderQueryPanel(*engine, opt);
  EXPECT_NE(with_hidden.find("Engine (hidden)"), std::string::npos);
  // Long attribute tails are summarized.
  EXPECT_NE(panel.find("more"), std::string::npos);
}

TEST(PanelRendererTest, HeaderCountsTrackSelection) {
  Table cars = GenerateUsedCars(800, 3);
  auto engine = FacetEngine::Create(&cars, DiscretizerOptions{});
  ASSERT_TRUE(engine.ok());
  std::string before = RenderQueryPanel(*engine, PanelRenderOptions{});
  EXPECT_NE(before.find("800 of 800"), std::string::npos);
  ASSERT_TRUE(engine->SelectValue("BodyType", "SUV").ok());
  std::string after = RenderQueryPanel(*engine, PanelRenderOptions{});
  EXPECT_EQ(after.find("800 of 800"), std::string::npos);
}

}  // namespace
}  // namespace dbx
