// Golden-output tests: the exact ASCII rendering of a small hand-built CAD
// View. Guards against accidental layout drift (the rendering *is* the
// product for a terminal front end).

#include <gtest/gtest.h>

#include "src/core/cad_view_renderer.h"

namespace dbx {
namespace {

CadView TinyView() {
  CadView v;
  v.pivot_attr = "Make";
  v.tau = 1.4;
  CompareAttribute a1;
  a1.name = "Price";
  a1.user_selected = true;
  CompareAttribute a2;
  a2.name = "Engine";
  v.compare_attrs = {a1, a2};

  auto iunit = [](std::vector<std::string> price_labels,
                  std::vector<std::string> engine_labels, double score) {
    IUnit u;
    IUnitCell c1;
    c1.labels = std::move(price_labels);
    c1.counts.assign(c1.labels.size(), 1);
    c1.codes.assign(c1.labels.size(), 0);
    IUnitCell c2;
    c2.labels = std::move(engine_labels);
    c2.counts.assign(c2.labels.size(), 1);
    c2.codes.assign(c2.labels.size(), 0);
    u.cells = {c1, c2};
    u.attr_freqs = {{1, 0}, {0, 1}};
    u.score = score;
    u.member_positions = {0};
    return u;
  };

  CadViewRow ford;
  ford.pivot_value = "Ford";
  ford.partition_size = 10;
  ford.iunits = {iunit({"10K-20K", "20K-30K"}, {"V6"}, 6),
                 iunit({"30K-40K"}, {"V8"}, 4)};
  CadViewRow jeep;
  jeep.pivot_value = "Jeep";
  jeep.partition_size = 5;
  jeep.iunits = {iunit({"15K-25K"}, {"V4", "V6"}, 5)};
  v.rows = {ford, jeep};
  return v;
}

TEST(RendererGoldenTest, ExactTableLayout) {
  CadView v = TinyView();
  const char* expected =
      "+------+----------------+--------------------+-----------+\n"
      "| Make | Compare Attrs. | IUnit 1            | IUnit 2   |\n"
      "+------+----------------+--------------------+-----------+\n"
      "| Ford | Price          | [10K-20K, 20K-30K] | [30K-40K] |\n"
      "|      | Engine         | [V6]               | [V8]      |\n"
      "| Jeep | Price          | [15K-25K]          |           |\n"
      "|      | Engine         | [V4, V6]           |           |\n"
      "+------+----------------+--------------------+-----------+\n";
  EXPECT_EQ(RenderCadView(v), expected);
}

TEST(RendererGoldenTest, PartitionSizesShown) {
  CadView v = TinyView();
  RenderOptions opt;
  opt.show_partition_sizes = true;
  std::string out = RenderCadView(v, opt);
  EXPECT_NE(out.find("Ford (10)"), std::string::npos);
  EXPECT_NE(out.find("Jeep (5)"), std::string::npos);
}

TEST(RendererGoldenTest, HighlightMarker) {
  CadView v = TinyView();
  RenderOptions opt;
  opt.highlights = {{1, 0, 0.0}};
  std::string out = RenderCadView(v, opt);
  EXPECT_NE(out.find("* [15K-25K]"), std::string::npos);
  EXPECT_EQ(out.find("* [10K-20K"), std::string::npos);
}

TEST(RendererGoldenTest, EmptyCellPlaceholder) {
  CadView v = TinyView();
  v.rows[0].iunits[0].cells[1].labels.clear();
  std::string out = RenderCadView(v);
  EXPECT_NE(out.find("[-]"), std::string::npos);
}

TEST(RendererGoldenTest, TimingsLine) {
  CadViewTimings t;
  t.discretize_ms = 1.0;
  t.compare_attrs_ms = 2.0;
  t.iunit_gen_ms = 3.0;
  t.topk_ms = 0.5;
  t.total_ms = 8.0;
  EXPECT_EQ(RenderTimings(t),
            "discretize: 1.00 ms | compare-attrs: 2.00 ms | iunit-gen: 3.00 "
            "ms | top-k: 0.50 ms | others: 3.00 ms | total: 8.00 ms");
}

}  // namespace
}  // namespace dbx
