// Storage-path byte-identity (DESIGN.md §15): the same logical table served
// through mem:, dbxc: (write -> reopen -> mmap -> materialize), and sqlite:
// (write -> reopen -> ingest) must produce byte-identical CAD View responses
// through the server path, across a shard x thread grid — the storage layer
// joins the determinism contract the shard/thread layers already honor. Also
// pins the warm-reopen contract: re-registering a snapshot with an unchanged
// content-addressed id keeps the shared ViewCache warm, while changed
// content invalidates.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/data/used_cars.h"
#include "src/obs/metrics.h"
#include "src/server/dispatcher.h"
#include "src/server/protocol.h"
#include "src/server/transport.h"
#include "src/storage/sqlite_backend.h"
#include "src/storage/storage.h"
#include "src/util/thread_pool.h"

namespace dbx::server {
namespace {

using dbx::storage::OpenStorageBackend;
using dbx::storage::TableSnapshot;

/// Scripted loopback exchange (same shape as server_test.cc).
std::vector<std::string> RunScript(Dispatcher* dispatcher,
                                   const std::vector<std::string>& requests) {
  auto [client, server] = LoopbackPair();
  for (const auto& r : requests) {
    auto frame = EncodeFrame(r);
    EXPECT_TRUE(frame.ok());
    EXPECT_TRUE(client->Write(*frame).ok());
  }
  client->CloseWrite();
  dispatcher->ServeConnection(server.get());
  FrameDecoder dec;
  for (;;) {
    auto chunk = client->Read(64u << 10);
    EXPECT_TRUE(chunk.ok());
    if (!chunk.ok() || chunk->empty()) break;
    EXPECT_TRUE(dec.Feed(*chunk).ok());
  }
  std::vector<std::string> payloads;
  while (auto p = dec.Next()) payloads.push_back(*p);
  EXPECT_FALSE(dec.mid_frame());
  return payloads;
}

std::string FreshDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("dbx_storage_id_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Session ids increment per dispatcher, so a reused dispatcher needs the
/// script re-targeted at the id its OPEN will hand out.
std::vector<std::string> MakeScript(const std::string& sid) {
  return {
      "OPEN",
      "EXEC " + sid +
          " CREATE CADVIEW v AS SET pivot = Make SELECT Price, Mileage "
          "FROM UsedCars WHERE BodyType = SUV LIMIT COLUMNS 2 IUNITS 2",
      "EXEC " + sid +
          " SELECT Make, COUNT(*) FROM UsedCars GROUP BY Make "
          "ORDER BY count DESC LIMIT 5",
      "CLOSE " + sid,
  };
}

const std::vector<std::string> kScript = MakeScript("s1");

class StorageIdentityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(GenerateUsedCars(1200, 3));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  /// Runs kScript over a dispatcher seeded with `snap` at one grid point.
  std::vector<std::string> RunAt(const TableSnapshot& snap, size_t shards,
                                 size_t threads) {
    ServerOptions options;
    options.metrics = &metrics_;
    options.cad_defaults.num_threads = threads;
    options.cad_defaults.sharding.num_shards = shards;
    options.cad_defaults.sharding.min_rows_per_shard = 1;
    Dispatcher d(std::move(options));
    d.RegisterTableSnapshot(snap.name, snap.table, snap.snapshot_id);
    return RunScript(&d, kScript);
  }

  MetricsRegistry metrics_;
  static Table* table_;
};

Table* StorageIdentityTest::table_ = nullptr;

TEST_F(StorageIdentityTest, BackendsByteIdenticalAcrossShardThreadGrid) {
  // One snapshot per storage path, all of the same logical table.
  std::vector<std::pair<std::string, TableSnapshot>> snapshots;

  auto mem = OpenStorageBackend("mem:");
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE((*mem)->StoreTable("UsedCars", *table_).ok());
  auto mem_snap = (*mem)->LoadTable("UsedCars");
  ASSERT_TRUE(mem_snap.ok());
  snapshots.emplace_back("mem:", std::move(*mem_snap));

  // dbxc: full write -> close -> reopen -> load cycle, so the bytes really
  // went through the on-disk columnar format.
  const std::string dir = FreshDir("dbxc");
  {
    auto writer = OpenStorageBackend("dbxc:" + dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->StoreTable("UsedCars", *table_).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto dbxc = OpenStorageBackend("dbxc:" + dir);
  ASSERT_TRUE(dbxc.ok());
  auto dbxc_snap = (*dbxc)->LoadTable("UsedCars");
  ASSERT_TRUE(dbxc_snap.ok()) << dbxc_snap.status().ToString();
  snapshots.emplace_back("dbxc:", std::move(*dbxc_snap));

  if (dbx::storage::SqliteBackendAvailable()) {
    const std::string sdir = FreshDir("sqlite");
    {
      auto writer = OpenStorageBackend("sqlite:" + sdir + "/t.db");
      ASSERT_TRUE(writer.ok());
      ASSERT_TRUE((*writer)->StoreTable("UsedCars", *table_).ok());
      ASSERT_TRUE((*writer)->Close().ok());
    }
    auto sqlite = OpenStorageBackend("sqlite:" + sdir + "/t.db");
    ASSERT_TRUE(sqlite.ok());
    auto sqlite_snap = (*sqlite)->LoadTable("UsedCars");
    ASSERT_TRUE(sqlite_snap.ok()) << sqlite_snap.status().ToString();
    snapshots.emplace_back("sqlite:", std::move(*sqlite_snap));
  }

  // Content addressing: every path derives the identical snapshot id.
  for (const auto& [scheme, snap] : snapshots) {
    EXPECT_EQ(snap.snapshot_id, snapshots[0].second.snapshot_id)
        << scheme << " produced a different snapshot id";
  }

  // The whole grid, every backend: one reference response vector.
  std::vector<std::string> reference;
  for (size_t shards : {size_t{1}, size_t{4}}) {
    for (size_t threads : {size_t{1}, TestThreads(4)}) {
      for (const auto& [scheme, snap] : snapshots) {
        auto responses = RunAt(snap, shards, threads);
        ASSERT_EQ(responses.size(), kScript.size()) << scheme;
        if (reference.empty()) {
          reference = responses;
          continue;
        }
        EXPECT_EQ(responses, reference)
            << scheme << " diverged at shards=" << shards
            << " threads=" << threads;
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST_F(StorageIdentityTest, ReopenWithUnchangedSnapshotKeepsCacheWarm) {
  const std::string dir = FreshDir("warm");
  {
    auto writer = OpenStorageBackend("dbxc:" + dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->StoreTable("UsedCars", *table_).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }

  auto load = [&] {
    auto backend = OpenStorageBackend("dbxc:" + dir);
    EXPECT_TRUE(backend.ok());
    auto snap = (*backend)->LoadTable("UsedCars");
    EXPECT_TRUE(snap.ok());
    return std::move(*snap);
  };

  ServerOptions options;
  options.metrics = &metrics_;
  options.cad_defaults.num_threads = TestThreads(2);
  Dispatcher d(std::move(options));

  TableSnapshot first = load();
  d.RegisterTableSnapshot(first.name, first.table, first.snapshot_id);
  auto r1 = RunScript(&d, kScript);
  ASSERT_EQ(r1.size(), kScript.size());
  ASSERT_TRUE(DecodeResponse(r1[1])->status.ok())
      << DecodeResponse(r1[1])->status.ToString();
  const auto cold = d.cache()->stats();
  EXPECT_EQ(cold.inserts, 1u);

  // "Server restart" against unchanged data: a fresh load produces the same
  // content hash, so re-registering must NOT invalidate — the second build
  // is a cache hit even though the Table object is a different materialization.
  TableSnapshot second = load();
  EXPECT_EQ(second.snapshot_id, first.snapshot_id);
  EXPECT_NE(second.table.get(), first.table.get());
  d.RegisterTableSnapshot(second.name, second.table, second.snapshot_id);
  auto r2 = RunScript(&d, MakeScript("s2"));
  ASSERT_EQ(r2.size(), kScript.size());
  const auto warm = d.cache()->stats();
  EXPECT_EQ(warm.hits, cold.hits + 1) << "reopen lost the warm cache";
  EXPECT_EQ(warm.inserts, cold.inserts);
  EXPECT_EQ(warm.invalidations, cold.invalidations);
  // Payloads past OPEN (which names the session) must be byte-identical.
  EXPECT_EQ(r2[1], r1[1]);
  EXPECT_EQ(r2[2], r1[2]);

  // Changed content: new hash, old entries invalidated, fresh build.
  {
    auto writer = OpenStorageBackend("dbxc:" + dir);
    ASSERT_TRUE(writer.ok());
    Table grown(GenerateUsedCars(1300, 3));
    ASSERT_TRUE((*writer)->StoreTable("UsedCars", grown).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  TableSnapshot changed = load();
  EXPECT_NE(changed.snapshot_id, first.snapshot_id);
  d.RegisterTableSnapshot(changed.name, changed.table, changed.snapshot_id);
  auto r3 = RunScript(&d, MakeScript("s3"));
  ASSERT_EQ(r3.size(), kScript.size());
  const auto after = d.cache()->stats();
  EXPECT_GT(after.invalidations, warm.invalidations);
  EXPECT_EQ(after.inserts, warm.inserts + 1) << "changed data must rebuild";
  EXPECT_NE(r3[1], r1[1]) << "changed data must change the view";
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dbx::server
