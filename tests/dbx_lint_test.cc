// Unit tests for dbx-lint (tools/dbx_lint): one positive (violation caught)
// and one negative (clean code passes) case per rule class R1–R6, plus the
// suppression meta-rule, the machine-readable JSON emitter, and the
// comment/string stripper the rules rely on.

#include "tools/dbx_lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace dbx::lint {
namespace {

/// Runs the linter over one in-memory file and returns the rule ids hit.
std::vector<std::string> RulesHit(const std::string& path,
                                  const std::string& content) {
  Linter linter;
  linter.AddFile(path, content);
  std::vector<std::string> rules;
  for (const Finding& f : linter.Run()) rules.push_back(f.rule);
  return rules;
}

bool Contains(const std::vector<std::string>& rules, const std::string& rule) {
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// --- stripper ---------------------------------------------------------------

TEST(StripTest, CommentsAndStringsAreBlanked) {
  std::string code =
      "int x = 1; // rand() in comment\n"
      "const char* s = \"rand()\";\n"
      "/* rand()\n   rand() */ int y;\n"
      "auto r = R\"(rand())\";\n";
  std::string stripped = StripCommentsAndStrings(code);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  // Line structure is preserved so findings keep their line numbers.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(code.begin(), code.end(), '\n'));
  EXPECT_NE(stripped.find("int x = 1;"), std::string::npos);
  EXPECT_NE(stripped.find("int y;"), std::string::npos);
}

TEST(StripTest, EscapesAndDigitSeparators) {
  std::string code =
      "const char* s = \"a\\\"b rand() c\";\n"
      "size_t n = 1'000'000;\n";
  std::string stripped = StripCommentsAndStrings(code);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("1'000'000"), std::string::npos);
}

// --- R1: determinism --------------------------------------------------------

TEST(DeterminismRule, FlagsBannedSources) {
  EXPECT_TRUE(Contains(
      RulesHit("src/core/foo.cc", "int x = rand();\n"), "determinism"));
  EXPECT_TRUE(Contains(
      RulesHit("src/core/foo.cc", "std::random_device rd;\n"), "determinism"));
  EXPECT_TRUE(Contains(
      RulesHit("src/core/foo.cc", "auto t = time(nullptr);\n"), "determinism"));
  EXPECT_TRUE(Contains(
      RulesHit("src/core/foo.cc",
               "auto n = std::chrono::system_clock::now();\n"),
      "determinism"));
}

TEST(DeterminismRule, CleanCodeAndExemptDirsPass) {
  // Rng with an explicit seed is the sanctioned source.
  EXPECT_TRUE(RulesHit("src/core/foo.cc",
                       "Rng rng(7);\nuint64_t v = rng.NextU64();\n")
                  .empty());
  // Identifiers containing the banned substrings are not calls.
  EXPECT_TRUE(
      RulesHit("src/core/foo.cc", "int my_rand(int x);\nint runtime(int);\n")
          .empty());
  // src/obs and bench are outside the rule's scope (wall-clock is their job).
  EXPECT_TRUE(RulesHit("src/obs/clock.cc",
                       "auto t = std::chrono::system_clock::now();\n")
                  .empty());
  EXPECT_TRUE(RulesHit("bench/b.cpp", "auto t = time(nullptr);\n").empty());
}

TEST(UnorderedIterRule, FlagsRangeForOverUnorderedMember) {
  std::string code =
      "std::unordered_map<std::string, int> counts_;\n"
      "void Render() {\n"
      "  for (const auto& [k, v] : counts_) {\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(Contains(RulesHit("src/core/render.cc", code),
                       "unordered-iter"));
}

TEST(UnorderedIterRule, OrderedIterationAndLookupsPass) {
  std::string code =
      "std::unordered_map<std::string, int> counts_;\n"
      "std::map<std::string, int> sorted_;\n"
      "void Render() {\n"
      "  for (const auto& [k, v] : sorted_) {\n"
      "  }\n"
      "  auto it = counts_.find(\"x\");\n"
      "}\n";
  EXPECT_TRUE(RulesHit("src/core/render.cc", code).empty());
}

// --- R2: Status discipline --------------------------------------------------

TEST(NodiscardRule, FlagsUnannotatedHeaderDecl) {
  EXPECT_TRUE(Contains(
      RulesHit("src/core/api.h", "Status DoThing(int x);\n"), "nodiscard"));
  EXPECT_TRUE(Contains(
      RulesHit("src/core/api.h", "Result<Table> Load(const std::string&);\n"),
      "nodiscard"));
  EXPECT_TRUE(Contains(
      RulesHit("src/core/api.h", "  static Status Check();\n"), "nodiscard"));
}

TEST(NodiscardRule, AnnotatedAndNonFunctionLinesPass) {
  EXPECT_TRUE(
      RulesHit("src/core/api.h", "[[nodiscard]] Status DoThing(int x);\n")
          .empty());
  // Attribute on its own line above the declaration also counts.
  EXPECT_TRUE(RulesHit("src/core/api.h",
                       "[[nodiscard]]\nResult<Table> Load(const T& t);\n")
                  .empty());
  // Members, constructors, returns, and reference accessors are not
  // value-producing declarations.
  EXPECT_TRUE(RulesHit("src/core/api.h",
                       "Status status_;\n"
                       "Status() : code_(Code::kOk) {}\n"
                       "const Status& status() const;\n"
                       "  return Status::OK();\n")
                  .empty());
  // .cc files are out of scope (the contract is on the public surface).
  EXPECT_TRUE(RulesHit("src/core/api.cc", "Status DoThing(int x);\n").empty());
}

TEST(DiscardedStatusRule, FlagsBareCallStatement) {
  Linter linter;
  linter.AddFile("src/core/api.h", "[[nodiscard]] Status DoThing(int x);\n");
  linter.AddFile("src/core/use.cc",
                 "void F() {\n"
                 "  DoThing(1);\n"
                 "}\n");
  std::vector<Finding> findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "discarded-status");
  EXPECT_EQ(findings[0].file, "src/core/use.cc");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(DiscardedStatusRule, CheckedBoundAndContinuationCallsPass) {
  Linter linter;
  linter.AddFile("src/core/api.h", "[[nodiscard]] Status DoThing(int x);\n");
  linter.AddFile("src/core/use.cc",
                 "Status G() {\n"
                 "  Status st = DoThing(1);\n"
                 "  if (!st.ok()) return st;\n"
                 "  auto chained =\n"
                 "      DoThing(2);\n"
                 "  (void)DoThing(3);\n"
                 "  return DoThing(4);\n"
                 "}\n");
  EXPECT_TRUE(linter.Run().empty());
}

// --- R3: lock discipline ----------------------------------------------------

TEST(LockDisciplineRule, FlagsRawLockOnMutexMember) {
  std::string code =
      "std::mutex mu_;\n"
      "void F() {\n"
      "  mu_.lock();\n"
      "  mu_.unlock();\n"
      "}\n";
  std::vector<std::string> rules = RulesHit("src/core/locky.cc", code);
  EXPECT_EQ(std::count(rules.begin(), rules.end(),
                       std::string("lock-discipline")),
            2);
}

TEST(LockDisciplineRule, GuardsAndNonMutexLockPass) {
  // lock_guard/unique_lock/scoped_lock are the sanctioned forms, and
  // .lock() on a non-mutex (weak_ptr) stays out of scope. The mutex guards
  // annotated state so R6 stays quiet too.
  std::string code =
      "std::mutex mu_;\n"
      "int n_ DBX_GUARDED_BY(mu_) = 0;\n"
      "std::weak_ptr<int> weak_;\n"
      "void F() {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  std::unique_lock<std::mutex> ul(mu_);\n"
      "  auto strong = weak_.lock();\n"
      "}\n";
  EXPECT_TRUE(RulesHit("src/core/locky.cc", code).empty());
}

TEST(LockDisciplineRule, DbxMutexMembersJoinTheRegistry) {
  // The capability wrapper (src/util/mutex.h) is subject to the same
  // discipline as std::mutex: raw lock()/unlock() on a dbx::Mutex member is
  // a finding, MutexLock is the sanctioned form.
  std::string code =
      "dbx::Mutex mu_;\n"
      "int n_ DBX_GUARDED_BY(mu_) = 0;\n"
      "void F() {\n"
      "  mu_.lock();\n"
      "  ++n_;\n"
      "  mu_.unlock();\n"
      "}\n";
  std::vector<std::string> rules = RulesHit("src/core/locky.cc", code);
  EXPECT_EQ(std::count(rules.begin(), rules.end(),
                       std::string("lock-discipline")),
            2);

  std::string clean =
      "dbx::Mutex mu_;\n"
      "int n_ DBX_GUARDED_BY(mu_) = 0;\n"
      "void F() {\n"
      "  MutexLock lock(mu_);\n"
      "  ++n_;\n"
      "}\n";
  EXPECT_TRUE(RulesHit("src/core/locky.cc", clean).empty());
}

// --- R4: layering -----------------------------------------------------------

TEST(LayeringRule, FlagsUpwardIncludes) {
  EXPECT_TRUE(Contains(RulesHit("src/util/helper.cc",
                                "#include \"src/obs/metrics.h\"\n"),
                       "layering"));
  EXPECT_TRUE(Contains(RulesHit("src/util/helper.cc",
                                "#include \"src/core/cad_view.h\"\n"),
                       "layering"));
  EXPECT_TRUE(Contains(RulesHit("src/obs/trace.cc",
                                "#include \"src/query/engine.h\"\n"),
                       "layering"));
}

TEST(LayeringRule, AllowedIncludesPass) {
  EXPECT_TRUE(RulesHit("src/util/helper.cc",
                       "#include <vector>\n"
                       "#include \"src/util/status.h\"\n")
                  .empty());
  EXPECT_TRUE(RulesHit("src/obs/trace.cc",
                       "#include \"src/util/string_util.h\"\n"
                       "#include \"src/obs/trace.h\"\n")
                  .empty());
  // Layers above obs may include anything.
  EXPECT_TRUE(RulesHit("src/core/cad_view.cc",
                       "#include \"src/obs/metrics.h\"\n")
                  .empty());
}

TEST(LayeringRule, ServerIncludesItsWhitelistedLayers) {
  EXPECT_TRUE(RulesHit("src/server/dispatcher.cc",
                       "#include \"src/server/protocol.h\"\n"
                       "#include \"src/explorer/tpfacet_session.h\"\n"
                       "#include \"src/query/engine.h\"\n"
                       "#include \"src/obs/metrics.h\"\n"
                       "#include \"src/util/result.h\"\n")
                  .empty());
  // The server must consume tables through the query/explorer layers, not
  // reach into core or data directly.
  EXPECT_TRUE(Contains(RulesHit("src/server/dispatcher.cc",
                                "#include \"src/core/cad_view.h\"\n"),
                       "layering"));
  EXPECT_TRUE(Contains(RulesHit("src/server/dispatcher.cc",
                                "#include \"src/data/used_cars.h\"\n"),
                       "layering"));
}

TEST(LayeringRule, NothingBelowMayDependOnTheServer) {
  EXPECT_TRUE(Contains(RulesHit("src/query/engine.cc",
                                "#include \"src/server/protocol.h\"\n"),
                       "layering"));
  EXPECT_TRUE(Contains(RulesHit("src/explorer/tpfacet_session.cc",
                                "#include \"src/server/dispatcher.h\"\n"),
                       "layering"));
  EXPECT_TRUE(Contains(RulesHit("src/util/status.cc",
                                "#include \"src/server/transport.h\"\n"),
                       "layering"));
  // Outside src/ the rule does not bite: tests, tools, and benches are the
  // server's intended consumers.
  EXPECT_TRUE(RulesHit("tests/server_test.cc",
                       "#include \"src/server/dispatcher.h\"\n")
                  .empty());
  EXPECT_TRUE(RulesHit("bench/server_load.cpp",
                       "#include \"src/server/client.h\"\n")
                  .empty());
}

TEST(LayeringRule, StorageIncludesItsWhitelistedLayers) {
  EXPECT_TRUE(RulesHit("src/storage/dbxc_backend.cc",
                       "#include \"src/storage/dbxc_format.h\"\n"
                       "#include \"src/relation/table.h\"\n"
                       "#include \"src/stats/discretizer.h\"\n"
                       "#include \"src/obs/metrics.h\"\n"
                       "#include \"src/util/result.h\"\n")
                  .empty());
  // Storage is a leaf: it may not reach up into query/session/server.
  EXPECT_TRUE(Contains(RulesHit("src/storage/mem_backend.cc",
                                "#include \"src/query/engine.h\"\n"),
                       "layering"));
  EXPECT_TRUE(Contains(RulesHit("src/storage/storage.cc",
                                "#include \"src/server/dispatcher.h\"\n"),
                       "layering"));
}

TEST(LayeringRule, OnlyGlueLayersMayIncludeStorage) {
  // The library layers below the engine stay backend-agnostic.
  EXPECT_TRUE(Contains(RulesHit("src/core/cad_view.cc",
                                "#include \"src/storage/storage.h\"\n"),
                       "layering"));
  EXPECT_TRUE(Contains(RulesHit("src/relation/table.cc",
                                "#include \"src/storage/dbxc_format.h\"\n"),
                       "layering"));
  EXPECT_TRUE(Contains(RulesHit("src/data/used_cars.cc",
                                "#include \"src/storage/mem_backend.h\"\n"),
                       "layering"));
  // Engine/session/server glue and everything outside src/ may.
  EXPECT_TRUE(RulesHit("src/query/engine.cc",
                       "#include \"src/storage/storage.h\"\n")
                  .empty());
  EXPECT_TRUE(RulesHit("tools/dbx_serve/main.cc",
                       "#include \"src/storage/storage.h\"\n")
                  .empty());
  EXPECT_TRUE(RulesHit("tests/storage_test.cc",
                       "#include \"src/storage/dbxc_format.h\"\n")
                  .empty());
}

// --- R6: guarded-by coverage ------------------------------------------------

TEST(GuardedByRule, FlagsMutexMemberThatGuardsNothing) {
  for (const char* decl :
       {"std::mutex mu_;", "mutable std::mutex mu_;",
        "std::shared_mutex mu_;", "std::recursive_mutex mu_;",
        "dbx::Mutex mu_;", "mutable Mutex mu_;", "static std::mutex mu_;"}) {
    std::string code = std::string(decl) + "\nint n_ = 0;\n";
    EXPECT_TRUE(Contains(RulesHit("src/core/reg.h", code), "guarded-by"))
        << decl;
  }
}

TEST(GuardedByRule, GuardedMembersAndNonMembersPass) {
  // A single DBX_GUARDED_BY(mu_) sibling satisfies the rule for mu_.
  EXPECT_TRUE(RulesHit("src/core/reg.h",
                       "mutable std::mutex mu_;\n"
                       "int entries_ DBX_GUARDED_BY(mu_) = 0;\n")
                  .empty());
  // PT_GUARDED_BY counts too: the mutex guards the pointee.
  EXPECT_TRUE(RulesHit("src/core/reg.h",
                       "dbx::Mutex mu_;\n"
                       "int* slot_ DBX_PT_GUARDED_BY(mu_) = nullptr;\n")
                  .empty());
  // References, pointers, and lock-holder locals are not mutex members.
  EXPECT_TRUE(RulesHit("src/core/reg.h",
                       "std::mutex& ref_;\n"
                       "std::mutex* ptr_ = nullptr;\n"
                       "MutexLock lock(mu);\n")
                  .empty());
}

TEST(GuardedByRule, ScopeIsSrcOnlyAndPerFile) {
  // tests/, tools/, bench/ declare scratch mutexes freely.
  const std::string code = "std::mutex mu_;\nint n_ = 0;\n";
  EXPECT_TRUE(RulesHit("tests/foo_test.cc", code).empty());
  EXPECT_TRUE(RulesHit("tools/dbx_serve/main.cc", code).empty());
  EXPECT_TRUE(RulesHit("bench/b.cpp", code).empty());
  // The annotation must live in the same file as the declaration: a
  // GUARDED_BY in another file does not cover this one.
  Linter linter;
  linter.AddFile("src/core/a.h", "std::mutex mu_;\n");
  linter.AddFile("src/core/b.h",
                 "std::mutex mu_;\nint n_ DBX_GUARDED_BY(mu_) = 0;\n");
  std::vector<std::string> rules;
  for (const Finding& f : linter.Run()) {
    if (f.rule == "guarded-by") rules.push_back(f.file);
  }
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0], "src/core/a.h");
}

TEST(GuardedByRule, ReasonedAllowByNameOrRuleClassSilencesIt) {
  EXPECT_TRUE(RulesHit("src/core/reg.h",
                       "std::mutex mu_;  // dbx-lint: allow(guarded-by): "
                       "guards the whole struct, annotated at use sites\n")
                  .empty());
  // ISSUE syntax: the rule-class id works as the suppression key too.
  EXPECT_TRUE(RulesHit("src/core/reg.h",
                       "// dbx-lint: allow(R6): capability wrapper\n"
                       "std::mutex mu_;\n")
                  .empty());
}

// --- R5: raw streams --------------------------------------------------------

TEST(RawStreamRule, FlagsRawStreamsInLibraryCode) {
  EXPECT_TRUE(Contains(
      RulesHit("src/query/engine.cc",
               "void F() { std::cerr << \"parse failed\\n\"; }\n"),
      "raw-stream"));
  EXPECT_TRUE(Contains(
      RulesHit("src/server/dispatcher.cc", "std::cout << stats;\n"),
      "raw-stream"));
}

TEST(RawStreamRule, ObsToolsBenchAndTestsOwnTheirStdio) {
  const std::string code = "std::cerr << \"diagnostic\\n\";\n";
  // src/obs is the observability layer itself — exporters write streams.
  EXPECT_FALSE(Contains(RulesHit("src/obs/explain.cc", code), "raw-stream"));
  EXPECT_FALSE(Contains(RulesHit("tools/dbx_serve/main.cc", code),
                        "raw-stream"));
  EXPECT_FALSE(Contains(RulesHit("bench/server_load.cpp", code),
                        "raw-stream"));
  EXPECT_FALSE(Contains(RulesHit("tests/server_test.cc", code),
                        "raw-stream"));
}

TEST(RawStreamRule, IdentifierBoundaryAndCommentsDoNotTrip) {
  // Longer identifiers that merely start with the stream names must pass, as
  // must mentions inside comments and string literals.
  EXPECT_TRUE(RulesHit("src/core/foo.cc",
                       "int std_cerr_count = my::std::cerrx(1);\n")
                  .empty());
  EXPECT_TRUE(RulesHit("src/core/foo.cc",
                       "// std::cerr is banned here\n"
                       "const char* kDoc = \"std::cout << x\";\n")
                  .empty());
}

TEST(RawStreamRule, ReasonedAllowSilencesIt) {
  EXPECT_TRUE(RulesHit("src/query/engine.cc",
                       "std::cerr << \"x\";  // dbx-lint: allow(raw-stream): "
                       "startup diagnostics before the log exists\n")
                  .empty());
}

// --- suppressions -----------------------------------------------------------

TEST(SuppressionTest, ReasonedAllowSilencesFinding) {
  EXPECT_TRUE(RulesHit("src/core/foo.cc",
                       "int x = rand();  // dbx-lint: allow(determinism): "
                       "seed study replays libc stream\n")
                  .empty());
  // Marker alone on the line above covers the next line.
  EXPECT_TRUE(RulesHit("src/core/foo.cc",
                       "// dbx-lint: allow(determinism): replays libc\n"
                       "int x = rand();\n")
                  .empty());
}

TEST(SuppressionTest, UnreasonedOrUnknownSuppressionIsAFinding) {
  std::vector<std::string> rules =
      RulesHit("src/core/foo.cc",
               "int x = rand();  // dbx-lint: allow(determinism)\n");
  EXPECT_TRUE(Contains(rules, "suppression"));
  EXPECT_FALSE(Contains(rules, "determinism"));  // allow still applies

  EXPECT_TRUE(Contains(RulesHit("src/core/foo.cc",
                                "// dbx-lint: allow(not-a-rule): whatever\n"),
                       "suppression"));
  // A suppression for rule A does not silence rule B.
  EXPECT_TRUE(Contains(
      RulesHit("src/core/foo.cc",
               "int x = rand();  // dbx-lint: allow(layering): wrong rule\n"),
      "determinism"));
}

TEST(SuppressionTest, MarkerInsideStringLiteralIsIgnored) {
  // The marker text inside a string literal neither suppresses anything nor
  // is itself a finding — only markers in real comments count. (This linter's
  // own test suite is the motivating case.)
  std::vector<std::string> rules = RulesHit(
      "src/core/foo.cc",
      "const char* kDoc = \"// dbx-lint: allow(determinism)\";\n"
      "int x = rand();\n");
  EXPECT_FALSE(Contains(rules, "suppression"));
  EXPECT_TRUE(Contains(rules, "determinism"));
}

TEST(RegistryTest, EveryRuleClassIsPresent) {
  std::vector<std::string> classes;
  for (const RuleInfo& r : Rules()) classes.push_back(r.rule_class);
  for (const char* want : {"R1", "R2", "R3", "R4", "R5", "R6", "meta"}) {
    EXPECT_TRUE(Contains(classes, want)) << want;
  }
  EXPECT_TRUE(IsKnownRule("determinism"));
  EXPECT_TRUE(IsKnownRule("raw-stream"));
  EXPECT_TRUE(IsKnownRule("guarded-by"));
  // Rule-class ids are accepted wherever rule names are (allow(R6) etc.).
  EXPECT_TRUE(IsKnownRule("R6"));
  EXPECT_FALSE(IsKnownRule("bogus"));
}

// --- JSON output ------------------------------------------------------------

TEST(JsonOutputTest, GoldenArrayMatchesFindings) {
  Linter linter;
  linter.AddFile("src/core/a.cc", "int x = rand();\n");
  std::vector<Finding> findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u);
  const std::string json = FindingsToJson(findings);
  const std::string want =
      "[\n"
      "  {\"file\": \"src/core/a.cc\", \"line\": 1, \"rule\": "
      "\"determinism\", \"message\": \"" +
      findings[0].message + "\"}\n]\n";
  EXPECT_EQ(json, want);
}

TEST(JsonOutputTest, EscapesAndEmptyArray) {
  EXPECT_EQ(FindingsToJson({}), "[]\n");
  Finding f;
  f.file = "src/a\"b.cc";
  f.line = 7;
  f.rule = "determinism";
  f.message = "tab\there\nand \\ quote \"x\"";
  const std::string json = FindingsToJson({f});
  EXPECT_NE(json.find("\"src/a\\\"b.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("tab\\there\\nand \\\\ quote \\\"x\\\""),
            std::string::npos);
  // Exactly one object, well-formed brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 1);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 1);
}

}  // namespace
}  // namespace dbx::lint
