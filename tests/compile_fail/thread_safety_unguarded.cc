// Copyright (c) DBExplorer reproduction authors.
// Compile-FAIL fixture for the thread-safety analysis (root CMakeLists.txt,
// DBX_THREAD_SAFETY=ON under Clang): Deposit writes a DBX_GUARDED_BY member
// without holding the capability. Under -Wthread-safety -Werror this file
// MUST NOT compile; the configure step aborts if it does, because that means
// the analysis is not actually firing and a "clean" tree build is
// meaningless. Never add this file to a build target.

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // unguarded write: -Wthread-safety error
  }

  int balance() {
    dbx::MutexLock lock(mu_);
    return balance_;
  }

 private:
  dbx::Mutex mu_;
  int balance_ DBX_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
