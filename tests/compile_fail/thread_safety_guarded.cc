// Copyright (c) DBExplorer reproduction authors.
// Positive control for the thread-safety compile-fail fixture (root
// CMakeLists.txt, DBX_THREAD_SAFETY=ON under Clang): identical to
// thread_safety_unguarded.cc except every access to the guarded member holds
// the capability — so this file MUST compile under
// -Wthread-safety -Werror. If it does not, the annotation macros themselves
// are broken and a "clean" tree build would prove nothing.

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    dbx::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() {
    dbx::MutexLock lock(mu_);
    return balance_;
  }

 private:
  dbx::Mutex mu_;
  int balance_ DBX_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
