// Tests for the multi-session exploration server: the frame protocol, the
// loopback transport, session lifecycle and reaping, per-session cache
// budgets, admission control under saturation, and malformed/oversized/
// truncated frame handling. Everything runs over the in-process loopback
// transport, so the suite is deterministic (byte-identical responses at any
// DBX_TEST_THREADS) and TSAN-clean without binding a single port.

#include "src/server/dispatcher.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/data/used_cars.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/obs/trace.h"
#include "src/server/client.h"
#include "src/server/metrics_http.h"
#include "src/server/protocol.h"
#include "src/server/transport.h"
#include "src/util/thread_pool.h"

namespace dbx::server {
namespace {

// --- Frame protocol ----------------------------------------------------------

TEST(ProtocolTest, FrameRoundTrip) {
  auto frame = EncodeFrame("hello");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->size(), kFrameHeaderBytes + 5);
  FrameDecoder dec;
  ASSERT_TRUE(dec.Feed(*frame).ok());
  auto payload = dec.Next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello");
  EXPECT_FALSE(dec.Next().has_value());
  EXPECT_FALSE(dec.mid_frame());
}

TEST(ProtocolTest, DecoderReassemblesSplitFrames) {
  auto a = EncodeFrame("first");
  auto b = EncodeFrame("second");
  ASSERT_TRUE(a.ok() && b.ok());
  const std::string stream = *a + *b;
  FrameDecoder dec;
  // Byte-at-a-time delivery must produce exactly the two payloads in order.
  std::vector<std::string> got;
  for (char c : stream) {
    ASSERT_TRUE(dec.Feed(std::string_view(&c, 1)).ok());
    while (auto p = dec.Next()) got.push_back(*p);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "second");
}

TEST(ProtocolTest, EmptyPayloadFrameIsValid) {
  auto frame = EncodeFrame("");
  ASSERT_TRUE(frame.ok());
  FrameDecoder dec;
  ASSERT_TRUE(dec.Feed(*frame).ok());
  auto payload = dec.Next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
}

TEST(ProtocolTest, OversizedPayloadRefusedOnEncode) {
  EXPECT_TRUE(EncodeFrame(std::string(kMaxFramePayload + 1, 'x'))
                  .status()
                  .IsInvalidArgument());
}

TEST(ProtocolTest, OversizedDeclaredLengthPoisonsDecoder) {
  // Header declaring 2 MiB: over kMaxFramePayload, so the stream is garbage.
  const std::string header{'\x00', '\x20', '\x00', '\x00'};
  FrameDecoder dec;
  EXPECT_TRUE(dec.Feed(header).IsCorruption());
  EXPECT_TRUE(dec.status().IsCorruption());
  EXPECT_FALSE(dec.Next().has_value());
  EXPECT_TRUE(dec.mid_frame());
  // Once poisoned, further feeding keeps failing.
  EXPECT_TRUE(dec.Feed("more").IsCorruption());
}

TEST(ProtocolTest, ResponseRoundTrip) {
  auto ok = DecodeResponse(EncodeResponse(Status::OK(), "body\nlines"));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->status.ok());
  EXPECT_EQ(ok->body, "body\nlines");

  auto err = DecodeResponse(
      EncodeResponse(Status::Unavailable("try later"), "ignored"));
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->status.IsUnavailable());
  EXPECT_EQ(err->status.message(), "try later");
  EXPECT_TRUE(err->body.empty());
}

TEST(ProtocolTest, MalformedResponsesRejected) {
  EXPECT_TRUE(DecodeResponse("").status().IsInvalidArgument());
  EXPECT_TRUE(DecodeResponse("BOGUS\nx").status().IsInvalidArgument());
  EXPECT_TRUE(DecodeResponse("ERR NoSuchCode\nm").status().IsInvalidArgument());
}

// --- Loopback transport ------------------------------------------------------

TEST(LoopbackTest, BytesFlowBothWaysAndEofPropagates) {
  auto [a, b] = LoopbackPair();
  ASSERT_TRUE(a->Write("ping").ok());
  auto got = b->Read(16);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "ping");
  ASSERT_TRUE(b->Write("pong").ok());
  got = a->Read(16);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "pong");
  a->CloseWrite();
  got = b->Read(16);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());  // EOF
}

// --- Server fixture ----------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { table_ = new Table(GenerateUsedCars(1500, 3)); }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  /// A dispatcher over UsedCars with a test-local metrics registry; builds
  /// run at the suite's thread count so the whole file exercises the
  /// determinism contract under DBX_TEST_THREADS.
  std::unique_ptr<Dispatcher> MakeDispatcher(ServerOptions options = {}) {
    options.metrics = &metrics_;
    options.cad_defaults.num_threads = TestThreads(2);
    auto d = std::make_unique<Dispatcher>(std::move(options));
    d->RegisterTable("UsedCars", table_);
    return d;
  }

  /// Scripted exchange: frames every request, half-closes, runs the serve
  /// loop synchronously (loopback buffers are unbounded), then decodes every
  /// response payload the server produced.
  static std::vector<std::string> RunScript(
      Dispatcher* dispatcher, const std::vector<std::string>& requests) {
    auto [client, server] = LoopbackPair();
    for (const auto& r : requests) {
      auto frame = EncodeFrame(r);
      EXPECT_TRUE(frame.ok());
      EXPECT_TRUE(client->Write(*frame).ok());
    }
    client->CloseWrite();
    dispatcher->ServeConnection(server.get());
    return DrainResponses(client.get());
  }

  /// Reads to EOF and splits the byte stream back into response payloads.
  static std::vector<std::string> DrainResponses(Connection* conn) {
    FrameDecoder dec;
    for (;;) {
      auto chunk = conn->Read(64u << 10);
      EXPECT_TRUE(chunk.ok());
      if (!chunk.ok() || chunk->empty()) break;
      EXPECT_TRUE(dec.Feed(*chunk).ok());
    }
    std::vector<std::string> payloads;
    while (auto p = dec.Next()) payloads.push_back(*p);
    EXPECT_FALSE(dec.mid_frame()) << "server emitted a truncated frame";
    return payloads;
  }

  MetricsRegistry metrics_;
  static Table* table_;
};

Table* ServerTest::table_ = nullptr;

constexpr char kCadView[] =
    "EXEC %s CREATE CADVIEW v AS SET pivot = Make SELECT Price, Mileage "
    "FROM UsedCars WHERE BodyType = SUV LIMIT COLUMNS 2 IUNITS 2";

std::string ExecCadView(const std::string& sid) {
  std::string out = kCadView;
  out.replace(out.find("%s"), 2, sid);
  return out;
}

// --- Session lifecycle -------------------------------------------------------

TEST_F(ServerTest, OpenExecCloseLifecycle) {
  auto d = MakeDispatcher();
  auto responses = RunScript(
      d.get(), {"OPEN", "EXEC s1 SELECT COUNT(*) FROM UsedCars", "STATS",
                "CLOSE s1", "EXEC s1 SELECT * FROM UsedCars LIMIT 1"});
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(responses[0], "OK\ns1");
  auto exec = DecodeResponse(responses[1]);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->status.ok()) << exec->status.ToString();
  EXPECT_NE(exec->body.find("group(s)"), std::string::npos);
  auto stats = DecodeResponse(responses[2]);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("sessions=1"), std::string::npos);
  EXPECT_EQ(responses[3], "OK\nclosed s1");
  auto after_close = DecodeResponse(responses[4]);
  ASSERT_TRUE(after_close.ok());
  EXPECT_TRUE(after_close->status.IsNotFound());
  EXPECT_EQ(d->session_count(), 0u);
}

TEST_F(ServerTest, SessionIdsAreDistinct) {
  auto d = MakeDispatcher();
  auto responses = RunScript(d.get(), {"OPEN", "OPEN", "OPEN"});
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0], "OK\ns1");
  EXPECT_EQ(responses[1], "OK\ns2");
  EXPECT_EQ(responses[2], "OK\ns3");
}

TEST_F(ServerTest, DroppedConnectionReapsItsSessions) {
  auto d = MakeDispatcher();
  // Two sessions opened, none closed: the client "vanished".
  auto responses = RunScript(d.get(), {"OPEN", "OPEN"});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(d->session_count(), 0u);
  // An explicitly closed session must not double-close at reap time.
  responses = RunScript(d.get(), {"OPEN", "CLOSE s3"});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[1], "OK\nclosed s3");
  EXPECT_EQ(d->session_count(), 0u);
}

TEST_F(ServerTest, RequestGrammarErrors) {
  auto d = MakeDispatcher();
  auto responses = RunScript(
      d.get(), {"", "FROB", "OPEN extra", "EXEC", "EXEC s1", "CLOSE",
                "CLOSE s1 extra", "STATS now", "EXEC nosuch STATS"});
  ASSERT_EQ(responses.size(), 9u);
  for (size_t i = 0; i < responses.size(); ++i) {
    auto r = DecodeResponse(responses[i]);
    ASSERT_TRUE(r.ok()) << "response " << i << " not well-formed";
    EXPECT_FALSE(r->status.ok()) << "response " << i;
  }
  // The malformed EXECs name no real session, hence NotFound/InvalidArgument.
  EXPECT_TRUE(DecodeResponse(responses[8])->status.IsNotFound());
  EXPECT_EQ(d->session_count(), 0u);
}

TEST_F(ServerTest, MaxSessionsRejectsWithUnavailable) {
  ServerOptions options;
  options.max_sessions = 2;
  auto d = MakeDispatcher(std::move(options));
  auto responses = RunScript(d.get(), {"OPEN", "OPEN", "OPEN", "CLOSE s1",
                                       "OPEN"});
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(responses[0], "OK\ns1");
  EXPECT_EQ(responses[1], "OK\ns2");
  auto third = DecodeResponse(responses[2]);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->status.IsUnavailable());
  // Closing frees a slot; the next OPEN succeeds with a fresh id.
  EXPECT_EQ(responses[4], "OK\ns3");
}

// --- Frame-level failures ----------------------------------------------------

TEST_F(ServerTest, OversizedFrameAnsweredWithErrorThenClosed) {
  auto d = MakeDispatcher();
  auto [client, server] = LoopbackPair();
  // Valid OPEN first, then a header declaring 2 MiB.
  auto open = EncodeFrame("OPEN");
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(client->Write(*open).ok());
  ASSERT_TRUE(client->Write(std::string{'\x00', '\x20', '\x00', '\x00'}).ok());
  client->CloseWrite();
  d->ServeConnection(server.get());
  auto responses = DrainResponses(client.get());
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0], "OK\ns1");
  auto err = DecodeResponse(responses[1]);
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->status.IsCorruption());
  EXPECT_EQ(d->session_count(), 0u) << "session leaked past a framing error";
}

TEST_F(ServerTest, TruncatedFrameAnsweredWithError) {
  auto d = MakeDispatcher();
  auto [client, server] = LoopbackPair();
  auto open = EncodeFrame("OPEN");
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(client->Write(*open).ok());
  // A frame promising 100 payload bytes, then EOF after 3.
  ASSERT_TRUE(client->Write(std::string{'\x00', '\x00', '\x00', '\x64'}).ok());
  ASSERT_TRUE(client->Write("abc").ok());
  client->CloseWrite();
  d->ServeConnection(server.get());
  auto responses = DrainResponses(client.get());
  ASSERT_EQ(responses.size(), 2u);
  auto err = DecodeResponse(responses[1]);
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->status.IsCorruption());
  EXPECT_EQ(d->session_count(), 0u);
}

TEST_F(ServerTest, TruncatedHeaderAnsweredWithError) {
  auto d = MakeDispatcher();
  auto [client, server] = LoopbackPair();
  // Half a header, then EOF.
  ASSERT_TRUE(client->Write(std::string{'\x00', '\x00'}).ok());
  client->CloseWrite();
  d->ServeConnection(server.get());
  auto responses = DrainResponses(client.get());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(DecodeResponse(responses[0])->status.IsCorruption());
}

// --- Admission control -------------------------------------------------------

TEST_F(ServerTest, SaturationRejectsWithUnavailable) {
  // One in-flight statement allowed. Connection A's statement blocks inside
  // the exec hook; connection B's statement must bounce immediately.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;

  ServerOptions options;
  options.max_inflight = 1;
  options.exec_hook_for_test = [&](const std::string&) {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  auto d = MakeDispatcher(std::move(options));

  auto [client_a, server_a] = LoopbackPair();
  auto open_a = EncodeFrame("OPEN");
  auto exec_a = EncodeFrame("EXEC s1 SELECT COUNT(*) FROM UsedCars");
  ASSERT_TRUE(open_a.ok() && exec_a.ok());
  ASSERT_TRUE(client_a->Write(*open_a).ok());
  ASSERT_TRUE(client_a->Write(*exec_a).ok());
  client_a->CloseWrite();
  std::thread serve_a([&] { d->ServeConnection(server_a.get()); });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  // A's statement holds the only slot: B is rejected, not queued.
  auto d_raw = d.get();
  auto [client_b, server_b] = LoopbackPair();
  auto open_b = EncodeFrame("OPEN");
  auto exec_b = EncodeFrame("EXEC s2 SELECT COUNT(*) FROM UsedCars");
  ASSERT_TRUE(open_b.ok() && exec_b.ok());
  ASSERT_TRUE(client_b->Write(*open_b).ok());
  ASSERT_TRUE(client_b->Write(*exec_b).ok());
  client_b->CloseWrite();
  // B's EXEC would re-enter the hook and deadlock — but admission rejects it
  // *before* the hook, which is exactly what this asserts (a hang here is
  // the failure mode).
  bool b_entered_hook = false;
  {
    std::unique_lock<std::mutex> lock(mu);
    entered = false;
  }
  std::thread serve_b([&] { d_raw->ServeConnection(server_b.get()); });
  auto responses_b = DrainResponses(client_b.get());
  serve_b.join();
  {
    std::unique_lock<std::mutex> lock(mu);
    b_entered_hook = entered;
  }
  EXPECT_FALSE(b_entered_hook);
  ASSERT_EQ(responses_b.size(), 2u);
  auto rejected = DecodeResponse(responses_b[1]);
  ASSERT_TRUE(rejected.ok());
  EXPECT_TRUE(rejected->status.IsUnavailable());

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  auto responses_a = DrainResponses(client_a.get());
  serve_a.join();
  ASSERT_EQ(responses_a.size(), 2u);
  EXPECT_TRUE(DecodeResponse(responses_a[1])->status.ok());
  EXPECT_EQ(metrics_.GetCounter("dbx_server_admission_rejects_total")->Value(),
            1u);
}

// --- Shared cache across sessions -------------------------------------------

TEST_F(ServerTest, SessionsShareCachedViews) {
  auto d = MakeDispatcher();
  auto r1 = RunScript(d.get(), {"OPEN", ExecCadView("s1")});
  ASSERT_EQ(r1.size(), 2u);
  ASSERT_TRUE(DecodeResponse(r1[1])->status.ok())
      << DecodeResponse(r1[1])->status.ToString();
  const auto before = d->cache()->stats();
  EXPECT_EQ(before.inserts, 1u);

  // A different connection, a different session — same snapshot, so the
  // second build must be served from cache.
  auto r2 = RunScript(d.get(), {"OPEN", ExecCadView("s2")});
  ASSERT_EQ(r2.size(), 2u);
  auto second = DecodeResponse(r2[1]);
  ASSERT_TRUE(second->status.ok()) << second->status.ToString();
  const auto after = d->cache()->stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.inserts, before.inserts);
  // Identical statement, identical rendering — cache hit or not.
  EXPECT_EQ(DecodeResponse(r1[1])->body, second->body);
}

TEST_F(ServerTest, PerSessionBudgetRejectsInsertsNotStatements) {
  ServerOptions options;
  options.session_cache_budget_bytes = 1;  // any insert exceeds it
  auto d = MakeDispatcher(std::move(options));
  auto responses = RunScript(d.get(), {"OPEN", ExecCadView("s1")});
  ASSERT_EQ(responses.size(), 2u);
  // The statement itself succeeds — only the cache insert is refused.
  EXPECT_TRUE(DecodeResponse(responses[1])->status.ok());
  const auto stats = d->cache()->stats();
  EXPECT_EQ(stats.owner_budget_rejects, 1u);
  EXPECT_EQ(stats.inserts, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(d->cache()->OwnerBytes("s1"), 0u);
}

// --- Determinism across thread counts ---------------------------------------

TEST_F(ServerTest, ResponsesByteIdenticalAcrossThreadCounts) {
  const std::vector<std::string> script = {
      "OPEN",
      ExecCadView("s1"),
      "EXEC s1 SELECT Make, COUNT(*) FROM UsedCars GROUP BY Make "
      "ORDER BY count DESC LIMIT 5",
      "EXEC s1 SELECT * FROM UsedCars WHERE Make = Ford LIMIT 7",
      "CLOSE s1",
  };
  std::vector<std::vector<std::string>> runs;
  for (size_t threads : {size_t{1}, TestThreads(4)}) {
    ServerOptions options;
    options.metrics = &metrics_;
    options.cad_defaults.num_threads = threads;
    Dispatcher d(std::move(options));
    d.RegisterTable("UsedCars", table_);
    runs.push_back(RunScript(&d, script));
  }
  ASSERT_EQ(runs[0].size(), script.size());
  EXPECT_EQ(runs[0], runs[1]) << "thread count leaked into response bytes";
}

TEST_F(ServerTest, ResponsesByteIdenticalAcrossShardCounts) {
  // Same contract as the thread-count test, one layer up the stack: shard
  // policy arrives via ServerOptions::cad_defaults and must never leak into
  // response bytes.
  const std::vector<std::string> script = {
      "OPEN",
      ExecCadView("s1"),
      "EXEC s1 SELECT * FROM UsedCars WHERE Make = Ford LIMIT 7",
      "CLOSE s1",
  };
  std::vector<std::vector<std::string>> runs;
  for (size_t shards : {size_t{1}, size_t{4}, size_t{8}}) {
    ServerOptions options;
    options.metrics = &metrics_;
    options.cad_defaults.num_threads = TestThreads(2);
    options.cad_defaults.sharding.num_shards = shards;
    options.cad_defaults.sharding.min_rows_per_shard = 1;
    Dispatcher d(std::move(options));
    d.RegisterTable("UsedCars", table_);
    runs.push_back(RunScript(&d, script));
  }
  ASSERT_EQ(runs[0].size(), script.size());
  EXPECT_EQ(runs[0], runs[1]) << "shard count 4 leaked into response bytes";
  EXPECT_EQ(runs[0], runs[2]) << "shard count 8 leaked into response bytes";
}

// --- Client helper over a live server ---------------------------------------

TEST_F(ServerTest, ClientAgainstLoopbackServer) {
  auto d = MakeDispatcher();
  LoopbackListener listener;
  Server server(d.get(), &listener);
  server.Start();

  Client c1(listener.Connect());
  Client c2(listener.Connect());
  auto s1 = c1.Open();
  auto s2 = c2.Open();
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(*s1, *s2);
  auto out1 = c1.Exec(*s1, "SELECT COUNT(*) FROM UsedCars");
  auto out2 = c2.Exec(*s2, "SELECT COUNT(*) FROM UsedCars");
  ASSERT_TRUE(out1.ok()) << out1.status().ToString();
  ASSERT_TRUE(out2.ok()) << out2.status().ToString();
  EXPECT_EQ(*out1, *out2);
  // Cross-session misuse: closing a session the other connection owns is
  // allowed by the protocol (sessions are dispatcher-scoped, not secrets).
  EXPECT_TRUE(c1.CloseSession(*s2).ok());
  EXPECT_TRUE(c1.Exec(*s2, "STATS").status().IsNotFound());
  // Hang up before Stop(): the serve loops block in Read until their peers
  // close, and Stop() joins them.
  c1.connection()->Close();
  c2.connection()->Close();
  server.Stop();
  EXPECT_EQ(d->session_count(), 0u);
}

// --- Metrics endpoint --------------------------------------------------------

TEST_F(ServerTest, MetricsCommandAndScrapeEndpoint) {
  auto d = MakeDispatcher();
  auto responses = RunScript(d.get(), {"OPEN", "METRICS"});
  ASSERT_EQ(responses.size(), 2u);
  auto m = DecodeResponse(responses[1]);
  ASSERT_TRUE(m->status.ok());
  EXPECT_NE(m->body.find("dbx_server_requests_total"), std::string::npos);
  EXPECT_NE(m->body.find("dbx_server_sessions_opened_total"),
            std::string::npos);

  // The HTTP surface, over loopback: request parsing + exposition.
  auto [client, server] = LoopbackPair();
  ASSERT_TRUE(client->Write("GET /metrics HTTP/1.1\r\n\r\n").ok());
  client->CloseWrite();
  ServeMetricsExchange(server.get(), &metrics_);
  std::string http;
  for (;;) {
    auto chunk = client->Read(64u << 10);
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    http += *chunk;
  }
  EXPECT_EQ(http.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(http.find("dbx_server_requests_total"), std::string::npos);
}

TEST(MetricsHttpTest, RequestParsing) {
  auto path = ParseHttpGetPath("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/metrics");
  EXPECT_TRUE(ParseHttpGetPath("POST /metrics HTTP/1.1\r\n\r\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseHttpGetPath("garbage").status().IsInvalidArgument());
  EXPECT_TRUE(ParseHttpGetPath("").status().IsInvalidArgument());
}

TEST(MetricsHttpTest, NotFoundForOtherPaths) {
  MetricsRegistry metrics;
  auto [client, server] = LoopbackPair();
  ASSERT_TRUE(client->Write("GET /nope HTTP/1.1\r\n\r\n").ok());
  client->CloseWrite();
  ServeMetricsExchange(server.get(), &metrics);
  auto chunk = client->Read(64u << 10);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->rfind("HTTP/1.1 404", 0), 0u);
}

// --- Request-scoped observability (DESIGN.md §14) ---------------------------

// The trace option is purely additive: a trace-free request encodes to
// exactly the pre-trace bytes, and carrying a trace id never changes the
// response bytes (only the span tree).
TEST_F(ServerTest, TraceFreeFramesAndResponsesBitIdentical) {
  const std::string request = "EXEC s1 SELECT COUNT(*) FROM UsedCars";
  auto frame = EncodeFrame(request);
  ASSERT_TRUE(frame.ok());
  std::string expected{'\x00', '\x00', '\x00',
                       static_cast<char>(request.size())};
  expected += request;
  EXPECT_EQ(*frame, expected) << "trace-free wire encoding changed";

  auto plain = MakeDispatcher();
  auto plain_responses =
      RunScript(plain.get(), {"OPEN", request, ExecCadView("s1")});

  Tracer tracer;
  ServerOptions options;
  options.tracer = &tracer;
  auto traced = MakeDispatcher(std::move(options));
  auto traced_responses = RunScript(
      traced.get(),
      {"OPEN", "EXEC @trace=t-1 s1 SELECT COUNT(*) FROM UsedCars",
       "EXEC @trace=t-2 s1 CREATE CADVIEW v AS SET pivot = Make SELECT "
       "Price, Mileage FROM UsedCars WHERE BodyType = SUV LIMIT COLUMNS 2 "
       "IUNITS 2"});
  EXPECT_EQ(plain_responses, traced_responses)
      << "trace id leaked into response bytes";
}

TEST_F(ServerTest, TraceIdTagsServerRootSpan) {
  Tracer tracer;
  ServerOptions options;
  options.tracer = &tracer;
  auto d = MakeDispatcher(std::move(options));
  std::string exec = ExecCadView("s1");
  exec.insert(std::strlen("EXEC "), "@trace=t-42 ");
  auto responses = RunScript(d.get(), {"OPEN", exec});
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_TRUE(DecodeResponse(responses[1])->status.ok());

  const std::vector<TraceEvent> events = tracer.Events();
  const TraceEvent* root = nullptr;
  for (const TraceEvent& e : events) {
    if (e.name == "exec" && e.parent == 0) root = &e;
  }
  ASSERT_NE(root, nullptr) << "no root exec span recorded";
  EXPECT_NE(root->args.find("session=s1"), std::string::npos) << root->args;
  EXPECT_NE(root->args.find("trace=t-42"), std::string::npos) << root->args;
  // The engine's pipeline spans hang beneath the request's root span.
  bool probe_under_root = false;
  for (const TraceEvent& e : events) {
    if (e.name == "cache_probe" && e.parent == root->id)
      probe_under_root = true;
  }
  EXPECT_TRUE(probe_under_root)
      << "engine spans not parented to the request root";
}

TEST_F(ServerTest, UnknownExecOptionRejected) {
  auto d = MakeDispatcher();
  auto responses = RunScript(
      d.get(), {"OPEN", "EXEC @frob=1 s1 SELECT COUNT(*) FROM UsedCars",
                "EXEC s1 SELECT COUNT(*) FROM UsedCars"});
  ASSERT_EQ(responses.size(), 3u);
  auto bad = DecodeResponse(responses[1]);
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->status.IsInvalidArgument());
  EXPECT_NE(bad->status.message().find("@frob=1"), std::string::npos);
  // The bad option poisons nothing: the next statement runs normally.
  EXPECT_TRUE(DecodeResponse(responses[2])->status.ok());
}

TEST_F(ServerTest, QueryLogCrossChecksCacheStatsAndMetrics) {
  Tracer tracer;
  QueryLog log;
  ServerOptions options;
  options.tracer = &tracer;
  options.query_log = &log;
  auto d = MakeDispatcher(std::move(options));

  // Two connections: the second session's identical build must hit the
  // shared cache; then a plain selection, a parse error, and a bad session.
  auto r1 = RunScript(d.get(), {"OPEN", ExecCadView("s1")});
  ASSERT_EQ(r1.size(), 2u);
  ASSERT_TRUE(DecodeResponse(r1[1])->status.ok());
  auto r2 = RunScript(
      d.get(), {"OPEN", ExecCadView("s2"),
                "EXEC @trace=t-7 s2 SELECT COUNT(*) FROM UsedCars",
                "EXEC s2 BOGUS STATEMENT", "EXEC nosuch STATS"});
  ASSERT_EQ(r2.size(), 5u);

  auto records = log.Records();
  ASSERT_EQ(records.size(), 5u);  // one per EXEC; OPENs are not statements

  // Cache outcomes in the log must agree with the cache's own counters.
  size_t hits = 0, misses = 0;
  for (const auto& rec : records) {
    if (rec.cache == "hit") ++hits;
    if (rec.cache == "miss") ++misses;
  }
  EXPECT_EQ(records[0].cache, "miss");
  EXPECT_EQ(records[1].cache, "hit");
  const auto stats = d->cache()->stats();
  EXPECT_EQ(hits, stats.hits);
  EXPECT_EQ(misses, stats.misses);

  // Sessions, trace ids, statuses, and exact response payload sizes.
  EXPECT_EQ(records[0].session, "s1");
  EXPECT_EQ(records[1].session, "s2");
  EXPECT_EQ(records[2].trace, "t-7");
  EXPECT_TRUE(records[0].trace.empty());
  EXPECT_EQ(records[2].status, "OK");
  EXPECT_EQ(records[3].status, "InvalidArgument");
  EXPECT_EQ(records[4].status, "NotFound");
  EXPECT_EQ(records[0].response_bytes, r1[1].size());
  EXPECT_EQ(records[1].response_bytes, r2[1].size());
  EXPECT_EQ(records[2].response_bytes, r2[2].size());
  EXPECT_EQ(records[4].response_bytes, r2[4].size());

  // The build's stage latencies were lifted from the span tree.
  bool probed = false;
  for (const auto& [name, ms] : records[0].stages) {
    if (name == "cache_probe") probed = true;
    EXPECT_GE(ms, 0.0);
  }
  EXPECT_TRUE(probed) << "cache_probe stage missing from the build record";

  // And the request counter saw every frame (OPENs included).
  EXPECT_EQ(metrics_.GetCounter("dbx_server_requests_total")->Value(), 7u);
}

TEST_F(ServerTest, MergedTraceCarriesClientTraceIdsAcrossTheWire) {
  Tracer server_tracer;
  ServerOptions options;
  options.tracer = &server_tracer;
  auto d = MakeDispatcher(std::move(options));
  LoopbackListener listener;
  Server server(d.get(), &listener);
  server.Start();

  Tracer trace_a, trace_b;
  Client c1(listener.Connect());
  Client c2(listener.Connect());
  c1.SetTracer(&trace_a);
  c2.SetTracer(&trace_b);
  auto s1 = c1.Open();
  auto s2 = c2.Open();
  ASSERT_TRUE(s1.ok() && s2.ok());
  auto out1 = c1.Exec(*s1, "SELECT COUNT(*) FROM UsedCars", "a-1");
  auto out2 = c2.Exec(*s2, "SELECT COUNT(*) FROM UsedCars", "b-1");
  ASSERT_TRUE(out1.ok() && out2.ok());
  EXPECT_EQ(*out1, *out2);
  c1.connection()->Close();
  c2.connection()->Close();
  server.Stop();

  // Server root spans carry the ids the clients sent over the wire.
  size_t tagged = 0;
  for (const TraceEvent& e : server_tracer.Events()) {
    if (e.name != "exec") continue;
    if (e.args.find("trace=a-1") != std::string::npos) ++tagged;
    if (e.args.find("trace=b-1") != std::string::npos) ++tagged;
  }
  EXPECT_EQ(tagged, 2u);

  // The merged export lines the three tracers up as labelled process lanes.
  const std::string merged = MergedChromeJson({{"client-a", &trace_a},
                                               {"client-b", &trace_b},
                                               {"server", &server_tracer}});
  EXPECT_NE(merged.find("\"process_name\""), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"client-a\""), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"client-b\""), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"server\""), std::string::npos);
  EXPECT_NE(merged.find("rpc:EXEC"), std::string::npos);
  EXPECT_NE(merged.find("trace=a-1"), std::string::npos);
  EXPECT_NE(merged.find("trace=b-1"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":3"), std::string::npos);
}

// --- Debug endpoints ---------------------------------------------------------

namespace {
std::string DebugGet(const DebugEndpoints& endpoints,
                     const std::string& path) {
  auto [client, server] = LoopbackPair();
  EXPECT_TRUE(client->Write("GET " + path + " HTTP/1.1\r\n\r\n").ok());
  client->CloseWrite();
  ServeDebugExchange(server.get(), endpoints);
  std::string http;
  for (;;) {
    auto chunk = client->Read(64u << 10);
    EXPECT_TRUE(chunk.ok());
    if (!chunk.ok() || chunk->empty()) break;
    http += *chunk;
  }
  return http;
}
}  // namespace

TEST_F(ServerTest, DebugEndpointsServeHealthStatusAndTraces) {
  Tracer tracer;
  ServerOptions options;
  options.tracer = &tracer;
  auto d = MakeDispatcher(std::move(options));
  auto responses = RunScript(d.get(), {"OPEN", ExecCadView("s1")});
  ASSERT_EQ(responses.size(), 2u);

  DebugEndpoints endpoints;
  endpoints.metrics = &metrics_;
  endpoints.statusz = [&d] { return d->RenderStatusz(); };
  endpoints.uptime_seconds = [] { return 1.5; };
  endpoints.tracer = &tracer;

  const std::string healthz = DebugGet(endpoints, "/healthz");
  EXPECT_EQ(healthz.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(healthz.find("ok\n"), std::string::npos);

  const std::string statusz = DebugGet(endpoints, "/statusz");
  EXPECT_EQ(statusz.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(statusz.find("uptime_s: 1.500"), std::string::npos);
  EXPECT_NE(statusz.find("sessions_active: 0"), std::string::npos);
  EXPECT_NE(statusz.find("cache: hits="), std::string::npos);
  EXPECT_NE(statusz.find("cache_entries: 1 (MRU first)"), std::string::npos);
  EXPECT_NE(statusz.find("pivot"), std::string::npos);  // entry's cache key
  EXPECT_NE(statusz.find("threads="), std::string::npos);  // pool stats line

  const std::string tracez = DebugGet(endpoints, "/tracez");
  EXPECT_EQ(tracez.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(tracez.find("root span(s)"), std::string::npos);
  EXPECT_NE(tracez.find("exec [session=s1"), std::string::npos);

  const std::string metrics = DebugGet(endpoints, "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(metrics.find("dbx_server_requests_total"), std::string::npos);

  const std::string missing = DebugGet(endpoints, "/nope");
  EXPECT_EQ(missing.rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_NE(missing.find("/statusz"), std::string::npos);  // hint lists paths

  // Without a tracer the endpoint still answers, explaining itself.
  endpoints.tracer = nullptr;
  EXPECT_NE(DebugGet(endpoints, "/tracez").find("tracing disabled"),
            std::string::npos);
}

TEST(MetricsHttpTest, RenderTracezOrdersSlowestFirst) {
  Tracer tracer;
  tracer.Emit("fast", 0, 0, 1'000'000);
  uint64_t slow_id = tracer.Emit("slowest", 0, 0, 9'000'000);
  tracer.Emit("child", slow_id, 0, 8'000'000);  // not a root: never listed
  tracer.Emit("middle", 0, 0, 5'000'000);
  const std::string out = RenderTracez(tracer.Events(), 2);
  EXPECT_NE(out.find("tracez: 3 recent root span(s), slowest 2"),
            std::string::npos);
  const size_t slowest = out.find("slowest");  // header mention
  const size_t first = out.find("slowest", slowest + 1);
  const size_t second = out.find("middle");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_EQ(out.find("fast"), std::string::npos);   // over the limit
  EXPECT_EQ(out.find("child"), std::string::npos);  // not a root
}

TEST(MetricsHttpTest, SlowPeerHeadReadTimesOutWith408) {
  // A peer that opens the connection, sends half a request line, and stalls
  // (no CloseWrite): the head-read deadline must bound the exchange instead
  // of wedging the accept loop.
  DebugEndpoints endpoints;
  endpoints.head_read_timeout_ms = 50;
  auto [client, server] = LoopbackPair();
  ASSERT_TRUE(client->Write("GET /hea").ok());
  ServeDebugExchange(server.get(), endpoints);
  auto chunk = client->Read(64u << 10);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->rfind("HTTP/1.1 408", 0), 0u);
  EXPECT_NE(chunk->find("timed out reading request head"),
            std::string::npos);
}

TEST(LoopbackTest, ReadTimeoutExpiresAndRestores) {
  auto [a, b] = LoopbackPair();
  ASSERT_TRUE(a->SetReadTimeout(30));
  auto got = a->Read(16);
  EXPECT_TRUE(got.status().IsUnavailable()) << got.status().ToString();
  // Data already buffered is returned immediately, deadline or not.
  ASSERT_TRUE(b->Write("late").ok());
  got = a->Read(16);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "late");
  // 0 restores fully blocking reads.
  ASSERT_TRUE(a->SetReadTimeout(0));
  b->CloseWrite();
  got = a->Read(16);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

}  // namespace
}  // namespace dbx::server
