// Golden end-to-end replay of a multi-client drill-down trace against the
// exploration server (renderer_golden_test.cc style): two clients open
// sessions, build the same overview CAD View, drill into SUVs, and close.
// The committed golden pins every response payload byte-for-byte — the wire
// grammar, the session-id sequence, and the rendered CAD Views — and the
// final shared-cache counters pin the cross-session reuse (client B's builds
// must be served from client A's cached views). The trace is deterministic
// at any DBX_TEST_THREADS, so this suite runs unmodified under the
// thread-count sweep and TSAN.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/data/used_cars.h"
#include "src/obs/metrics.h"
#include "src/server/dispatcher.h"
#include "src/server/protocol.h"
#include "src/server/transport.h"
#include "src/util/thread_pool.h"

namespace dbx::server {
namespace {

constexpr char kOverview[] =
    "CREATE CADVIEW overview AS SET pivot = BodyType "
    "SELECT Price, Mileage FROM UsedCars LIMIT COLUMNS 2 IUNITS 2";
constexpr char kDrillSuv[] =
    "CREATE CADVIEW suv AS SET pivot = Make "
    "SELECT Price, Mileage FROM UsedCars WHERE BodyType = SUV AND "
    "(Make = Ford OR Make = Jeep OR Make = Toyota) "
    "LIMIT COLUMNS 2 IUNITS 2";

/// The committed transcript: every response payload of both clients, in
/// order, each prefixed with "--- <client><n> ---". On mismatch the test
/// prints the actual transcript to stderr for regeneration.
constexpr char kGolden[] =
    "--- A1 ---\n"
    "OK\n"
    "s1\n"
    "--- A2 ---\n"
    "OK\n"
    "+-----------+----------------+----------------------------+----------------------------+\n"
    "| BodyType  | Compare Attrs. | IUnit 1                    | IUnit 2                    |\n"
    "+-----------+----------------+----------------------------+----------------------------+\n"
    "| SUV       | Price          | [21.7K-24.5K, 29.3K-56.4K] | [16.7K-18.9K]              |\n"
    "|           | Mileage        | [500-10.1K, 62.4K-90.6K]   | [37.1K-43.6K]              |\n"
    "| Sedan     | Price          | [7.0K-11.6K, 14.3K-16.7K]  | [11.6K-14.3K]              |\n"
    "|           | Mileage        | [62.4K-90.6K, 20.4K-29.5K] | [51.6K-62.4K]              |\n"
    "| Truck     | Price          | [29.3K-56.4K, 24.5K-29.3K] | [18.9K-21.7K, 24.5K-29.3K] |\n"
    "|           | Mileage        | [10.1K-20.4K, 29.5K-37.1K] | [43.6K-51.6K]              |\n"
    "| Minivan   | Price          | [14.3K-16.7K, 16.7K-18.9K] | [18.9K-21.7K]              |\n"
    "|           | Mileage        | [20.4K-29.5K]              | [10.1K-20.4K, 500-10.1K]   |\n"
    "| Hatchback | Price          | [7.0K-11.6K]               | [7.0K-11.6K]               |\n"
    "|           | Mileage        | [37.1K-43.6K, 29.5K-37.1K] | [62.4K-90.6K]              |\n"
    "+-----------+----------------+----------------------------+----------------------------+\n"
    "\n"
    "--- A3 ---\n"
    "OK\n"
    "+--------+----------------+----------------------------+----------------------------+\n"
    "| Make   | Compare Attrs. | IUnit 1                    | IUnit 2                    |\n"
    "+--------+----------------+----------------------------+----------------------------+\n"
    "| Ford   | Price          | [19.2K-21.6K, 15.8K-19.2K] | [11.7K-14.1K, 21.6K-25.1K] |\n"
    "|        | Mileage        | [20.2K-30.4K, 5.8K-20.2K]  | [30.4K-37.6K]              |\n"
    "| Jeep   | Price          | [29.3K-36.3K]              | [7.9K-11.7K, 11.7K-14.1K]  |\n"
    "|        | Mileage        | [500-5.8K, 5.8K-20.2K]     | [44.7K-53.8K]              |\n"
    "| Toyota | Price          | [21.6K-25.1K, 15.8K-19.2K] | [11.7K-14.1K]              |\n"
    "|        | Mileage        | [37.6K-44.7K]              | [66.2K-90.6K]              |\n"
    "+--------+----------------+----------------------------+----------------------------+\n"
    "\n"
    "--- A4 ---\n"
    "OK\n"
    "closed s1\n"
    "--- B1 ---\n"
    "OK\n"
    "s2\n"
    "--- B2 ---\n"
    "OK\n"
    "+-----------+----------------+----------------------------+----------------------------+\n"
    "| BodyType  | Compare Attrs. | IUnit 1                    | IUnit 2                    |\n"
    "+-----------+----------------+----------------------------+----------------------------+\n"
    "| SUV       | Price          | [21.7K-24.5K, 29.3K-56.4K] | [16.7K-18.9K]              |\n"
    "|           | Mileage        | [500-10.1K, 62.4K-90.6K]   | [37.1K-43.6K]              |\n"
    "| Sedan     | Price          | [7.0K-11.6K, 14.3K-16.7K]  | [11.6K-14.3K]              |\n"
    "|           | Mileage        | [62.4K-90.6K, 20.4K-29.5K] | [51.6K-62.4K]              |\n"
    "| Truck     | Price          | [29.3K-56.4K, 24.5K-29.3K] | [18.9K-21.7K, 24.5K-29.3K] |\n"
    "|           | Mileage        | [10.1K-20.4K, 29.5K-37.1K] | [43.6K-51.6K]              |\n"
    "| Minivan   | Price          | [14.3K-16.7K, 16.7K-18.9K] | [18.9K-21.7K]              |\n"
    "|           | Mileage        | [20.4K-29.5K]              | [10.1K-20.4K, 500-10.1K]   |\n"
    "| Hatchback | Price          | [7.0K-11.6K]               | [7.0K-11.6K]               |\n"
    "|           | Mileage        | [37.1K-43.6K, 29.5K-37.1K] | [62.4K-90.6K]              |\n"
    "+-----------+----------------+----------------------------+----------------------------+\n"
    "\n"
    "--- B3 ---\n"
    "OK\n"
    "+--------+----------------+----------------------------+----------------------------+\n"
    "| Make   | Compare Attrs. | IUnit 1                    | IUnit 2                    |\n"
    "+--------+----------------+----------------------------+----------------------------+\n"
    "| Ford   | Price          | [19.2K-21.6K, 15.8K-19.2K] | [11.7K-14.1K, 21.6K-25.1K] |\n"
    "|        | Mileage        | [20.2K-30.4K, 5.8K-20.2K]  | [30.4K-37.6K]              |\n"
    "| Jeep   | Price          | [29.3K-36.3K]              | [7.9K-11.7K, 11.7K-14.1K]  |\n"
    "|        | Mileage        | [500-5.8K, 5.8K-20.2K]     | [44.7K-53.8K]              |\n"
    "| Toyota | Price          | [21.6K-25.1K, 15.8K-19.2K] | [11.7K-14.1K]              |\n"
    "|        | Mileage        | [37.6K-44.7K]              | [66.2K-90.6K]              |\n"
    "+--------+----------------+----------------------------+----------------------------+\n"
    "\n"
    "--- B4 ---\n"
    "OK\n"
    "closed s2\n";

/// Runs one scripted connection synchronously and returns its response
/// payloads in order.
std::vector<std::string> RunConnection(
    Dispatcher* dispatcher, const std::vector<std::string>& requests) {
  auto [client, server] = LoopbackPair();
  for (const auto& r : requests) {
    auto frame = EncodeFrame(r);
    EXPECT_TRUE(frame.ok());
    EXPECT_TRUE(client->Write(*frame).ok());
  }
  client->CloseWrite();
  dispatcher->ServeConnection(server.get());
  FrameDecoder dec;
  for (;;) {
    auto chunk = client->Read(64u << 10);
    EXPECT_TRUE(chunk.ok());
    if (!chunk.ok() || chunk->empty()) break;
    EXPECT_TRUE(dec.Feed(*chunk).ok());
  }
  std::vector<std::string> payloads;
  while (auto p = dec.Next()) payloads.push_back(*p);
  EXPECT_FALSE(dec.mid_frame());
  return payloads;
}

TEST(ServerReplayTest, MultiClientDrillDownTrace) {
  Table table = GenerateUsedCars(500, 11);
  MetricsRegistry metrics;
  ServerOptions options;
  options.metrics = &metrics;
  options.cad_defaults.num_threads = TestThreads(2);
  Dispatcher dispatcher(std::move(options));
  dispatcher.RegisterTable("UsedCars", &table);

  // Client A explores first; client B replays the same drill-down path.
  const std::vector<std::string> client_a = {
      "OPEN",
      std::string("EXEC s1 ") + kOverview,
      std::string("EXEC s1 ") + kDrillSuv,
      "CLOSE s1",
  };
  const std::vector<std::string> client_b = {
      "OPEN",
      std::string("EXEC s2 ") + kOverview,
      std::string("EXEC s2 ") + kDrillSuv,
      "CLOSE s2",
  };
  auto responses_a = RunConnection(&dispatcher, client_a);
  auto responses_b = RunConnection(&dispatcher, client_b);
  ASSERT_EQ(responses_a.size(), 4u);
  ASSERT_EQ(responses_b.size(), 4u);

  // B's builds hit A's cached views, so the rendered bytes must agree.
  EXPECT_EQ(responses_a[1], responses_b[1]);
  EXPECT_EQ(responses_a[2], responses_b[2]);

  std::string transcript;
  const auto append = [&transcript](const char client,
                                    const std::vector<std::string>& rs) {
    for (size_t i = 0; i < rs.size(); ++i) {
      transcript += "--- ";
      transcript += client;
      transcript += std::to_string(i + 1) + " ---\n" + rs[i] + "\n";
    }
  };
  append('A', responses_a);
  append('B', responses_b);

  if (transcript != kGolden) {
    // Raw transcript for regenerating the golden after an intended change.
    std::fprintf(stderr, "=== BEGIN TRANSCRIPT ===\n%s=== END TRANSCRIPT ===\n",
                 transcript.c_str());
  }
  EXPECT_EQ(transcript, kGolden);

  // The cross-session reuse pinned as counters: A missed and inserted both
  // views, B hit both. (bytes_in_use is platform-dependent and asserted only
  // as nonzero.)
  const ViewCacheStats stats = dispatcher.cache()->stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.owner_budget_rejects, 0u);
  EXPECT_GT(stats.bytes_in_use, 0u);
  EXPECT_EQ(dispatcher.session_count(), 0u);
}

}  // namespace
}  // namespace dbx::server
