// Tests for the statistics substrate: linear algebra, OLS, the LRT used by
// the user-study analysis, and descriptive helpers.

#include <gtest/gtest.h>

#include "src/analysis/descriptive.h"
#include "src/analysis/linear_model.h"
#include "src/analysis/lrt.h"
#include "src/analysis/wilcoxon.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

// --- Linear algebra --------------------------------------------------------------

TEST(SolveTest, Known2x2) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
  auto x = SolveLinearSystem({2, 1, 1, 3}, 2, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(SolveTest, PivotingHandlesZeroDiagonal) {
  // [0 1; 1 0] x = [2; 3] -> x = [3; 2].
  auto x = SolveLinearSystem({0, 1, 1, 0}, 2, {2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-10);
  EXPECT_NEAR((*x)[1], 2.0, 1e-10);
}

TEST(SolveTest, SingularRejected) {
  EXPECT_TRUE(SolveLinearSystem({1, 2, 2, 4}, 2, {1, 2}).status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(SolveLinearSystem({1, 2}, 2, {1, 2}).status()
                  .IsInvalidArgument());
}

TEST(InvertTest, InverseTimesOriginalIsIdentity) {
  std::vector<double> a = {4, 7, 2, 6};
  auto inv = InvertMatrix(a, 2);
  ASSERT_TRUE(inv.ok());
  // a * inv = I.
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      double cell = 0;
      for (size_t k = 0; k < 2; ++k) cell += a[r * 2 + k] * (*inv)[k * 2 + c];
      EXPECT_NEAR(cell, r == c ? 1.0 : 0.0, 1e-10);
    }
  }
}

// --- OLS ---------------------------------------------------------------------------

TEST(OlsTest, RecoversCoefficientsExactly) {
  // y = 2 + 3x, no noise.
  DesignMatrix X;
  X.n = 5;
  X.p = 2;
  X.x = {1, 0, 1, 1, 1, 2, 1, 3, 1, 4};
  std::vector<double> y = {2, 5, 8, 11, 14};
  auto fit = FitOls(X, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->beta[0], 2.0, 1e-9);
  EXPECT_NEAR(fit->beta[1], 3.0, 1e-9);
  EXPECT_NEAR(fit->rss, 0.0, 1e-9);
}

TEST(OlsTest, RecoversCoefficientsUnderNoise) {
  Rng rng(3);
  DesignMatrix X;
  X.n = 400;
  X.p = 2;
  X.x.resize(X.n * 2);
  std::vector<double> y(X.n);
  for (size_t i = 0; i < X.n; ++i) {
    double xi = rng.NextUniform(-3, 3);
    X.x[i * 2] = 1.0;
    X.x[i * 2 + 1] = xi;
    y[i] = 1.5 - 2.0 * xi + rng.NextGaussian(0, 0.3);
  }
  auto fit = FitOls(X, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->beta[0], 1.5, 0.1);
  EXPECT_NEAR(fit->beta[1], -2.0, 0.1);
  EXPECT_GT(fit->beta_se[1], 0.0);
  EXPECT_LT(fit->beta_se[1], 0.05);
}

TEST(OlsTest, LogLikelihoodHigherForBetterModel) {
  Rng rng(4);
  DesignMatrix X;
  X.n = 100;
  X.p = 2;
  X.x.resize(X.n * 2);
  std::vector<double> y(X.n);
  for (size_t i = 0; i < X.n; ++i) {
    double xi = rng.NextUniform(0, 1);
    X.x[i * 2] = 1.0;
    X.x[i * 2 + 1] = xi;
    y[i] = 3.0 * xi + rng.NextGaussian(0, 0.1);
  }
  DesignMatrix intercept_only;
  intercept_only.n = X.n;
  intercept_only.p = 1;
  intercept_only.x.assign(X.n, 1.0);
  auto full = FitOls(X, y);
  auto null_fit = FitOls(intercept_only, y);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(null_fit.ok());
  EXPECT_GT(full->log_likelihood, null_fit->log_likelihood);
}

TEST(OlsTest, Errors) {
  DesignMatrix X;
  X.n = 2;
  X.p = 3;  // p > n
  X.x.assign(6, 1.0);
  EXPECT_TRUE(FitOls(X, {1, 2}).status().IsFailedPrecondition());

  DesignMatrix collinear;
  collinear.n = 4;
  collinear.p = 2;
  collinear.x = {1, 2, 1, 2, 1, 2, 1, 2};  // second col = 2 * first
  EXPECT_TRUE(FitOls(collinear, {1, 2, 3, 4}).status().IsFailedPrecondition());

  DesignMatrix ok;
  ok.n = 2;
  ok.p = 1;
  ok.x = {1, 1};
  EXPECT_TRUE(FitOls(ok, {1.0}).status().IsInvalidArgument());  // y mismatch
}

// --- LRT ---------------------------------------------------------------------------

std::vector<StudyObservation> CrossoverData(double effect, double noise_sd,
                                            uint64_t seed, size_t users = 8) {
  Rng rng(seed);
  std::vector<StudyObservation> obs;
  for (size_t u = 0; u < users; ++u) {
    double base = 10.0 + rng.NextGaussian(0, 2.0);  // per-user level
    obs.push_back({u, false, base + rng.NextGaussian(0, noise_sd)});
    obs.push_back({u, true, base + effect + rng.NextGaussian(0, noise_sd)});
  }
  return obs;
}

TEST(LrtTest, DetectsStrongEffect) {
  auto obs = CrossoverData(-6.0, 0.5, 11);
  auto r = DisplayTypeLrt(obs, 8);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LT(r->p_value, 0.01);
  EXPECT_NEAR(r->effect, -6.0, 1.0);
  EXPECT_GT(r->chi2, 6.6);
}

TEST(LrtTest, NoEffectNotSignificant) {
  auto r = DisplayTypeLrt(CrossoverData(0.0, 1.0, 13), 8);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->p_value, 0.05);
  EXPECT_NEAR(r->effect, 0.0, 1.5);
}

TEST(LrtTest, BlockingRemovesUserVariance) {
  // Huge user-to-user spread, small effect: blocking must still find it.
  Rng rng(17);
  std::vector<StudyObservation> obs;
  for (size_t u = 0; u < 8; ++u) {
    double base = rng.NextUniform(5, 50);
    obs.push_back({u, false, base + rng.NextGaussian(0, 0.2)});
    obs.push_back({u, true, base - 2.0 + rng.NextGaussian(0, 0.2)});
  }
  auto r = DisplayTypeLrt(obs, 8);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->p_value, 0.01);
  EXPECT_NEAR(r->effect, -2.0, 0.5);
}

TEST(LrtTest, Preconditions) {
  EXPECT_TRUE(DisplayTypeLrt({}, 1).status().IsInvalidArgument());
  std::vector<StudyObservation> one_arm = {{0, true, 1.0}, {1, true, 2.0}};
  EXPECT_TRUE(DisplayTypeLrt(one_arm, 2).status().IsFailedPrecondition());
  std::vector<StudyObservation> bad_user = {{9, true, 1.0}, {0, false, 2.0}};
  EXPECT_TRUE(DisplayTypeLrt(bad_user, 2).status().IsOutOfRange());
}

// --- Wilcoxon signed-rank --------------------------------------------------------

TEST(WilcoxonTest, ObviousShiftDetected) {
  std::vector<double> a = {10, 12, 11, 13, 12, 14, 11, 12};
  std::vector<double> b = {2, 3, 2, 4, 3, 2, 3, 4};
  auto r = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // All 8 differences positive: W+ = 36 (max), exact two-sided p = 2/2^8.
  EXPECT_DOUBLE_EQ(r->w_plus, 36.0);
  EXPECT_NEAR(r->p_value, 2.0 / 256.0, 1e-12);
  EXPECT_GT(r->median_difference, 8.0);
}

TEST(WilcoxonTest, NoShiftNotSignificant) {
  std::vector<double> a = {1, 5, 3, 8, 2, 9, 4, 7};
  std::vector<double> b = {5, 1, 8, 3, 9, 2, 7, 4};
  auto r = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->p_value, 0.5);
}

TEST(WilcoxonTest, ZeroDifferencesDropped) {
  std::vector<double> a = {1, 2, 3, 4, 10};
  std::vector<double> b = {1, 2, 3, 4, 2};
  // Only one non-zero difference remains.
  EXPECT_TRUE(WilcoxonSignedRank(a, b).status().IsFailedPrecondition());
}

TEST(WilcoxonTest, TiesGetMidranks) {
  // |diffs| = {1,1,2,2}: midranks 1.5,1.5,3.5,3.5; signs + + - -.
  std::vector<double> a = {1, 1, 0, 0};
  std::vector<double> b = {0, 0, 2, 2};
  auto r = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->w_plus, 3.0);  // 1.5 + 1.5
  EXPECT_GT(r->p_value, 0.2);
}

TEST(WilcoxonTest, LargeSampleNormalApproximation) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 60; ++i) {
    double base = rng.NextUniform(0, 10);
    a.push_back(base + 1.0 + rng.NextGaussian(0, 0.5));
    b.push_back(base);
  }
  auto r = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->n, 60u);
  EXPECT_LT(r->p_value, 0.001);
  EXPECT_NEAR(r->median_difference, 1.0, 0.4);
}

TEST(WilcoxonTest, LengthMismatchRejected) {
  EXPECT_TRUE(WilcoxonSignedRank({1, 2}, {1}).status().IsInvalidArgument());
}

// --- Descriptive --------------------------------------------------------------------

TEST(DescriptiveTest, Basics) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(SampleStdDev(v), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(MinOf(v), 1.0);
  EXPECT_DOUBLE_EQ(MaxOf(v), 4.0);
  EXPECT_DOUBLE_EQ(MeanPairedDifference({3, 5}, {1, 2}), 2.5);
}

TEST(DescriptiveTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

}  // namespace
}  // namespace dbx
