// Tests for the simulated user study: cost model, task scoring, agents, and
// the crossover runner. The key "shape" assertions (TPFacet faster, at least
// as accurate) live here with a small dataset; the full-scale run is the
// fig2-7 bench.

#include <gtest/gtest.h>

#include "src/data/mushroom.h"
#include "src/sim/agent_util.h"
#include "src/sim/study.h"

namespace dbx {
namespace {

class SimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(GenerateMushrooms(3000, 11));
    auto e = FacetEngine::Create(table_, DiscretizerOptions{});
    ASSERT_TRUE(e.ok());
    engine_ = new FacetEngine(std::move(*e));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete table_;
    engine_ = nullptr;
    table_ = nullptr;
  }

  static AgentConfig Config() {
    StudyConfig sc = StudyConfig::Default();
    return sc.agent;
  }

  static Table* table_;
  static FacetEngine* engine_;
};

Table* SimTest::table_ = nullptr;
FacetEngine* SimTest::engine_ = nullptr;

// --- Cost model ---------------------------------------------------------------

TEST(CostModelTest, ChargesAccumulate) {
  UserProfile u = UserProfile::Make(0, 1);
  Rng rng(5);
  CostMeter meter(u, &rng);
  double added = meter.Charge(UserOp::kFacetSelect, 3);
  EXPECT_GT(added, 0.0);
  EXPECT_DOUBLE_EQ(meter.total_seconds(), added);
  EXPECT_EQ(meter.operation_count(), 3u);
  EXPECT_NEAR(meter.total_minutes(), added / 60.0, 1e-12);
}

TEST(CostModelTest, SpeedScalesCost) {
  UserProfile fast;
  fast.speed = 0.5;
  UserProfile slow;
  slow.speed = 2.0;
  Rng r1(5), r2(5);
  CostMeter m_fast(fast, &r1), m_slow(slow, &r2);
  m_fast.Charge(UserOp::kCosineByHand, 10);
  m_slow.Charge(UserOp::kCosineByHand, 10);
  EXPECT_LT(m_fast.total_seconds(), m_slow.total_seconds());
}

TEST(CostModelTest, ProfilesDeterministicAndVaried) {
  UserProfile a = UserProfile::Make(2, 7);
  UserProfile b = UserProfile::Make(2, 7);
  EXPECT_DOUBLE_EQ(a.speed, b.speed);
  EXPECT_EQ(a.seed, b.seed);
  UserProfile c = UserProfile::Make(3, 7);
  EXPECT_NE(a.seed, c.seed);
}

TEST(CostModelTest, PerceiveNoiseShrinksWithCare) {
  UserProfile careless;
  careless.care = 0.2;
  UserProfile careful;
  careful.care = 5.0;
  double spread_careless = 0, spread_careful = 0;
  Rng r1(9), r2(9);
  CostMeter m1(careless, &r1), m2(careful, &r2);
  for (int i = 0; i < 300; ++i) {
    spread_careless += std::fabs(m1.Perceive(1.0, 0.1) - 1.0);
    spread_careful += std::fabs(m2.Perceive(1.0, 0.1) - 1.0);
  }
  EXPECT_GT(spread_careless, spread_careful);
}

// --- Task scoring ---------------------------------------------------------------

TEST_F(SimTest, RowsMatchingSemantics) {
  auto all_edible = RowsMatching(*engine_, {{"Class", "edible"}});
  ASSERT_TRUE(all_edible.ok());
  EXPECT_GT(all_edible->size(), 0u);
  // OR within attribute.
  auto both = RowsMatching(
      *engine_, {{"Class", "edible"}, {"Class", "poisonous"}});
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->size(), table_->num_rows());
  // AND across attributes narrows.
  auto narrowed = RowsMatching(
      *engine_, {{"Class", "edible"}, {"Odor", "none"}});
  ASSERT_TRUE(narrowed.ok());
  EXPECT_LT(narrowed->size(), all_edible->size());
  EXPECT_TRUE(RowsMatching(*engine_, {{"Nope", "x"}}).status().IsNotFound());
}

TEST_F(SimTest, ClassifierF1PerfectForTargetItself) {
  ClassifierTask task{"t", "Class", "edible", {}};
  auto f1 = ClassifierF1(*engine_, task, {{"Class", "edible"}});
  ASSERT_TRUE(f1.ok());
  EXPECT_DOUBLE_EQ(*f1, 1.0);
  auto empty = ClassifierF1(*engine_, task, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_DOUBLE_EQ(*empty, 0.0);
}

TEST_F(SimTest, SimilarPairRankConsistent) {
  SimilarPairTask task{"t", "GillColor", {"buff", "white", "brown", "green"}};
  auto rank_best = SimilarPairRank(*engine_, task, {"brown", "white"});
  ASSERT_TRUE(rank_best.ok()) << rank_best.status().ToString();
  EXPECT_EQ(*rank_best, 1);  // the designed most-similar pair
  auto sym = SimilarPairRank(*engine_, task, {"white", "brown"});
  ASSERT_TRUE(sym.ok());
  EXPECT_EQ(*sym, *rank_best);
  EXPECT_TRUE(SimilarPairRank(*engine_, task, {"white", "nothere"})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SimTest, AlternativeErrorZeroForEquivalentCondition) {
  AlternativeTask task{"t", {{"Class", "edible"}}};
  // Using the identical condition is banned.
  EXPECT_TRUE(AlternativeRetrievalError(*engine_, task, {{"Class", "edible"}})
                  .status()
                  .IsInvalidArgument());
  // A different condition gets a finite error >= 0.
  auto err = AlternativeRetrievalError(*engine_, task, {{"Odor", "none"}});
  ASSERT_TRUE(err.ok());
  EXPECT_GE(*err, 0.0);
}

// --- Agents ---------------------------------------------------------------------

TEST_F(SimTest, ClassifierAgentsProduceReasonableAnswers) {
  ClassifierTask task{"C-A", "Bruises", "true", {}};
  UserProfile user = UserProfile::Make(0, 3);
  auto solr = SolrClassifier(*engine_, task, user, Config());
  auto tp = TpFacetClassifier(*engine_, task, user, Config());
  ASSERT_TRUE(solr.ok()) << solr.status().ToString();
  ASSERT_TRUE(tp.ok()) << tp.status().ToString();
  EXPECT_GT(solr->quality, 0.3);
  EXPECT_GT(tp->quality, 0.3);
  EXPECT_LE(solr->quality, 1.0);
  EXPECT_LE(tp->quality, 1.0);
  EXPECT_LT(tp->minutes, solr->minutes);  // the headline claim
  EXPECT_FALSE(tp->answer.empty());
}

TEST_F(SimTest, SimilarPairAgentsFindGoodPairs) {
  SimilarPairTask task{"S-A", "GillColor", {"buff", "white", "brown", "green"}};
  UserProfile user = UserProfile::Make(1, 3);
  auto solr = SolrSimilarPair(*engine_, task, user, Config());
  auto tp = TpFacetSimilarPair(*engine_, task, user, Config());
  ASSERT_TRUE(solr.ok()) << solr.status().ToString();
  ASSERT_TRUE(tp.ok()) << tp.status().ToString();
  EXPECT_LE(solr->quality, 3.0);  // rank
  EXPECT_LE(tp->quality, 3.0);
  EXPECT_LT(tp->minutes, solr->minutes);
}

TEST_F(SimTest, AlternativeAgentsFindLowErrorConditions) {
  AlternativeTask task{"A-A",
                       {{"StalkShape", "enlarged"},
                        {"SporePrintColor", "chocolate"}}};
  UserProfile user = UserProfile::Make(2, 3);
  auto solr = SolrAlternative(*engine_, task, user, Config());
  auto tp = TpFacetAlternative(*engine_, task, user, Config());
  ASSERT_TRUE(solr.ok()) << solr.status().ToString();
  ASSERT_TRUE(tp.ok()) << tp.status().ToString();
  EXPECT_LT(tp->quality, 2.0);
  EXPECT_LT(tp->minutes, solr->minutes);
  EXPECT_FALSE(tp->answer.empty());
}

TEST_F(SimTest, TpFacetNeedsFewerOperations) {
  // The mechanism behind the speedup: the CAD View answers with far fewer
  // interface operations than the Solr digest-scanning workflow.
  UserProfile user = UserProfile::Make(3, 3);
  ClassifierTask c{"C-A", "Bruises", "true", {"Class"}};
  auto solr_c = SolrClassifier(*engine_, c, user, Config());
  auto tp_c = TpFacetClassifier(*engine_, c, user, Config());
  ASSERT_TRUE(solr_c.ok());
  ASSERT_TRUE(tp_c.ok());
  EXPECT_LT(tp_c->operations, solr_c->operations);

  SimilarPairTask sp{"S-A", "GillColor", {"buff", "white", "brown", "green"}};
  auto solr_s = SolrSimilarPair(*engine_, sp, user, Config());
  auto tp_s = TpFacetSimilarPair(*engine_, sp, user, Config());
  ASSERT_TRUE(solr_s.ok());
  ASSERT_TRUE(tp_s.ok());
  EXPECT_LT(tp_s->operations, solr_s->operations);
}

TEST_F(SimTest, AgentsDeterministicPerUserAndTask) {
  ClassifierTask task{"C-A", "Bruises", "true", {}};
  UserProfile user = UserProfile::Make(4, 3);
  auto a = SolrClassifier(*engine_, task, user, Config());
  auto b = SolrClassifier(*engine_, task, user, Config());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->minutes, b->minutes);
  EXPECT_DOUBLE_EQ(a->quality, b->quality);
  EXPECT_EQ(a->answer, b->answer);
}

// --- Study runner ------------------------------------------------------------------

TEST_F(SimTest, StudyRunsFullCrossover) {
  StudyConfig config = StudyConfig::Default();
  config.num_users = 4;
  auto results = RunUserStudy(table_, config);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  // 4 users x 3 task types x 2 interfaces.
  EXPECT_EQ(results->records.size(), 24u);
  for (char type : {'C', 'S', 'A'}) {
    EXPECT_EQ(results->Of(type, true).size(), 4u);
    EXPECT_EQ(results->Of(type, false).size(), 4u);
  }
  // Crossover: group 1 (users 0,1) did variant A on TPFacet.
  for (const StudyRecord& r : results->records) {
    bool group1 = r.user < 2;
    bool variant_a = r.task_id.back() == 'A';
    EXPECT_EQ(r.tpfacet, group1 == variant_a) << r.task_id << " u" << r.user;
  }
}

TEST_F(SimTest, AnalysisFindsTimeEffect) {
  StudyConfig config = StudyConfig::Default();
  config.num_users = 8;
  auto results = RunUserStudy(table_, config);
  ASSERT_TRUE(results.ok());
  auto analysis = AnalyzeTask(*results, 'C', 8);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  // TPFacet lowers task time significantly (paper: chi2(1)=8.54, p=0.003).
  EXPECT_LT(analysis->time.effect, 0.0);
  EXPECT_LT(analysis->time.p_value, 0.05);
  EXPECT_LT(analysis->mean_minutes_tpfacet, analysis->mean_minutes_solr);
  EXPECT_TRUE(AnalyzeTask(*results, 'X', 8).status().IsNotFound());
}

TEST_F(SimTest, StudyRejectsBadConfig) {
  StudyConfig config = StudyConfig::Default();
  config.num_users = 3;  // odd
  EXPECT_TRUE(RunUserStudy(table_, config).status().IsInvalidArgument());
  EXPECT_TRUE(RunUserStudy(nullptr, StudyConfig::Default())
                  .status()
                  .IsInvalidArgument());
}

// --- agent_util ---------------------------------------------------------------------

TEST(AgentUtilTest, IntersectionAndF1) {
  RowSet a = {1, 2, 3, 4};
  RowSet b = {3, 4, 5};
  EXPECT_EQ(IntersectionSize(a, b), 2u);
  // precision 2/3, recall 2/4 -> F1 = 2*(2/3)*(1/2)/((2/3)+(1/2)).
  double p = 2.0 / 3.0, r = 0.5;
  EXPECT_NEAR(F1OfRows(b, a), 2 * p * r / (p + r), 1e-12);
  EXPECT_DOUBLE_EQ(F1OfRows({}, a), 0.0);
}

TEST(AgentUtilTest, CandidateToString) {
  Candidate c;
  c.conditions = {{"A", "x"}, {"B", "y"}};
  EXPECT_EQ(c.ToString(), "A=x AND B=y");
}

TEST_F(SimTest, TopValuesWithinSortsByCount) {
  RowSet all = table_->AllRows();
  auto idx = engine_->discretized().IndexOf("Class");
  ASSERT_TRUE(idx.has_value());
  auto top = TopValuesWithin(*engine_, *idx, all);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_GE(top[0].second, top[1].second);
}

}  // namespace
}  // namespace dbx
