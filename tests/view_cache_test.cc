// Tests for the CAD View cache layer: key canonicalization, LRU eviction at
// the byte budget, invalidation, statistics, refinement-base matching, and
// concurrent lookup/insert hammering on the thread pool.

#include "src/core/view_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/thread_pool.h"

namespace dbx {
namespace {

// A minimal view whose ApproxCadViewBytes is >= `payload` bytes, so tests can
// drive the byte budget with precise sizes.
CadView MakeViewOfSize(size_t payload, const std::string& pivot = "p") {
  CadView view;
  view.pivot_attr = pivot;
  CadViewRow row;
  row.pivot_value.assign(payload, 'x');
  view.rows.push_back(std::move(row));
  return view;
}

ViewCacheKey MakeKey(const std::string& dataset,
                     std::vector<std::string> predicates,
                     const std::string& params = "fp") {
  return ViewCacheKey::Make(dataset, std::move(predicates), "Class", {},
                            params);
}

TEST(CanonicalizePredicateTest, CollapsesAndTrimsWhitespace) {
  EXPECT_EQ(CanonicalizePredicate("  Odor  =   'none'  "), "Odor = 'none'");
  EXPECT_EQ(CanonicalizePredicate("a\t=\n1"), "a = 1");
  EXPECT_EQ(CanonicalizePredicate("already canonical"), "already canonical");
  EXPECT_EQ(CanonicalizePredicate("   "), "");
  EXPECT_EQ(CanonicalizePredicate(""), "");
}

TEST(ViewCacheKeyTest, PredicateOrderAndWhitespaceInsensitive) {
  ViewCacheKey a = MakeKey("m", {"a = 1", "b = 2"});
  ViewCacheKey b = MakeKey("m", {"b   =  2", "a =\t1"});
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.predicates, b.predicates);
}

TEST(ViewCacheKeyTest, DuplicatePredicatesCollapse) {
  ViewCacheKey a = MakeKey("m", {"a = 1", "a  =  1", "a = 1"});
  ViewCacheKey b = MakeKey("m", {"a = 1"});
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.predicates.size(), 1u);
}

TEST(ViewCacheKeyTest, EveryComponentDistinguishes) {
  ViewCacheKey base = MakeKey("m", {"a = 1"});
  EXPECT_NE(base.canonical, MakeKey("m2", {"a = 1"}).canonical);
  EXPECT_NE(base.canonical, MakeKey("m", {"a = 2"}).canonical);
  EXPECT_NE(base.canonical, MakeKey("m", {}).canonical);
  EXPECT_NE(base.canonical, MakeKey("m", {"a = 1"}, "fp2").canonical);
  EXPECT_NE(base.canonical,
            ViewCacheKey::Make("m", {"a = 1"}, "Odor", {}, "fp").canonical);
  EXPECT_NE(base.canonical,
            ViewCacheKey::Make("m", {"a = 1"}, "Class", {"e"}, "fp").canonical);
}

TEST(ViewCacheKeyTest, LengthPrefixingPreventsComponentCollisions) {
  // Without length prefixes, ("ab", "c") and ("a", "bc") could serialize to
  // the same canonical string.
  ViewCacheKey a = MakeKey("ab", {"c"});
  ViewCacheKey b = MakeKey("a", {"bc"});
  EXPECT_NE(a.canonical, b.canonical);
}

TEST(CadViewOptionsFingerprintTest, SensitiveToOutputAffectingFields) {
  CadViewOptions base;
  auto fp = CadViewOptionsFingerprint(base);
  ASSERT_TRUE(fp.has_value());

  CadViewOptions changed = base;
  changed.seed = base.seed + 1;
  EXPECT_NE(*CadViewOptionsFingerprint(changed), *fp);

  changed = base;
  changed.iunits_per_value = 7;
  EXPECT_NE(*CadViewOptionsFingerprint(changed), *fp);

  changed = base;
  changed.similarity_alpha = 0.9;
  EXPECT_NE(*CadViewOptionsFingerprint(changed), *fp);

  changed = base;
  changed.discretizer.max_numeric_bins = 4;
  EXPECT_NE(*CadViewOptionsFingerprint(changed), *fp);

  changed = base;
  changed.user_compare_attrs = {"Price"};
  EXPECT_NE(*CadViewOptionsFingerprint(changed), *fp);
}

TEST(CadViewOptionsFingerprintTest, ThreadCountIsOutputNeutral) {
  CadViewOptions a;
  CadViewOptions b;
  b.num_threads = 8;
  EXPECT_EQ(*CadViewOptionsFingerprint(a), *CadViewOptionsFingerprint(b));
}

TEST(CadViewOptionsFingerprintTest, ShardPolicyIsOutputNeutral) {
  // The sharded build path produces byte-identical views for any shard
  // decomposition (tests/cad_view_test.cc), so shard count and shard sizing
  // must not fragment the cache: a view built unsharded must satisfy a
  // lookup from a sharded build and vice versa.
  CadViewOptions a;
  CadViewOptions b;
  b.sharding.num_shards = 8;
  b.sharding.min_rows_per_shard = 1;
  EXPECT_EQ(*CadViewOptionsFingerprint(a), *CadViewOptionsFingerprint(b));
}

TEST(CadViewOptionsFingerprintTest, CoresetFieldsChangeKey) {
  // Coreset clustering is an opt-in approximation that changes view bytes,
  // so both the toggle and the budget must be part of the fingerprint.
  CadViewOptions base;
  auto fp = CadViewOptionsFingerprint(base);
  ASSERT_TRUE(fp.has_value());

  CadViewOptions changed = base;
  changed.sharding.coreset_clustering = true;
  EXPECT_NE(*CadViewOptionsFingerprint(changed), *fp);

  changed = base;
  changed.sharding.coreset_budget = 128;
  EXPECT_NE(*CadViewOptionsFingerprint(changed), *fp);
}

TEST(CadViewOptionsFingerprintTest, OpaquePreferenceIsUncacheable) {
  CadViewOptions o;
  o.preference = [](const IUnit&) { return 1.0; };
  EXPECT_FALSE(CadViewOptionsFingerprint(o).has_value());
}

TEST(ViewCacheTest, LookupMissThenHit) {
  ViewCache cache(1u << 20);
  ViewCacheKey key = MakeKey("m", {"a = 1"});
  EXPECT_EQ(cache.Lookup(key), nullptr);
  cache.Insert(key, MakeViewOfSize(100), CachedPartitions{}, 12.5);
  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->view.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(hit->build_cost_ms, 12.5);

  ViewCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes_in_use, 100u);
}

TEST(ViewCacheTest, HitCountersPerEntry) {
  ViewCache cache(1u << 20);
  ViewCacheKey key = MakeKey("m", {"a = 1"});
  cache.Insert(key, MakeViewOfSize(10), CachedPartitions{}, 1.0);
  cache.Lookup(key);
  cache.Lookup(key);
  cache.Lookup(key);
  auto infos = cache.EntryInfos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].hits, 3u);
}

TEST(ViewCacheTest, EvictsLeastRecentlyUsedAtByteBudget) {
  // Budget fits roughly two payload-dominated entries of ~4 KiB each.
  const size_t payload = 4096;
  const size_t entry_bytes = ApproxCadViewBytes(MakeViewOfSize(payload));
  ViewCache cache(2 * entry_bytes + entry_bytes / 2);

  ViewCacheKey k1 = MakeKey("m", {"a = 1"});
  ViewCacheKey k2 = MakeKey("m", {"a = 2"});
  ViewCacheKey k3 = MakeKey("m", {"a = 3"});
  cache.Insert(k1, MakeViewOfSize(payload), CachedPartitions{}, 1.0);
  cache.Insert(k2, MakeViewOfSize(payload), CachedPartitions{}, 1.0);
  // Touch k1 so k2 is the LRU victim.
  ASSERT_NE(cache.Lookup(k1), nullptr);
  cache.Insert(k3, MakeViewOfSize(payload), CachedPartitions{}, 1.0);

  EXPECT_NE(cache.Lookup(k1), nullptr);
  EXPECT_EQ(cache.Lookup(k2), nullptr) << "LRU entry should have been evicted";
  EXPECT_NE(cache.Lookup(k3), nullptr);

  ViewCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes_in_use, stats.byte_budget);
}

TEST(ViewCacheTest, EntryLargerThanBudgetIsRejected) {
  ViewCache cache(512);
  ViewCacheKey key = MakeKey("m", {"a = 1"});
  cache.Insert(key, MakeViewOfSize(4096), CachedPartitions{}, 1.0);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stats().oversize_rejects, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ViewCacheTest, EvictedEntryRemainsValidForHolders) {
  const size_t payload = 2048;
  const size_t entry_bytes = ApproxCadViewBytes(MakeViewOfSize(payload));
  ViewCache cache(entry_bytes + entry_bytes / 2);
  ViewCacheKey k1 = MakeKey("m", {"a = 1"});
  cache.Insert(k1, MakeViewOfSize(payload, "keepme"), CachedPartitions{}, 1.0);
  auto held = cache.Lookup(k1);
  ASSERT_NE(held, nullptr);
  // Force k1 out.
  cache.Insert(MakeKey("m", {"a = 2"}), MakeViewOfSize(payload),
               CachedPartitions{}, 1.0);
  EXPECT_EQ(cache.Lookup(k1), nullptr);
  EXPECT_EQ(held->view.pivot_attr, "keepme");  // still usable
}

TEST(ViewCacheTest, InvalidateDatasetDropsOnlyThatDataset) {
  ViewCache cache(1u << 20);
  ViewCacheKey km = MakeKey("mushroom", {"a = 1"});
  ViewCacheKey kc = MakeKey("cars", {"a = 1"});
  cache.Insert(km, MakeViewOfSize(64), CachedPartitions{}, 1.0);
  cache.Insert(kc, MakeViewOfSize(64), CachedPartitions{}, 1.0);

  cache.InvalidateDataset("mushroom");
  EXPECT_EQ(cache.Lookup(km), nullptr);
  EXPECT_NE(cache.Lookup(kc), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ViewCacheTest, ClearDropsEverything) {
  ViewCache cache(1u << 20);
  cache.Insert(MakeKey("a", {}), MakeViewOfSize(64), CachedPartitions{}, 1.0);
  cache.Insert(MakeKey("b", {}), MakeViewOfSize(64), CachedPartitions{}, 1.0);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes_in_use, 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

CachedPartitions OnePartition(int32_t code, std::vector<uint32_t> rows) {
  CachedPartitions parts;
  parts.rows_by_code.emplace_back(code, std::move(rows));
  return parts;
}

TEST(ViewCacheTest, FindRefinementBaseMatchesStrictSubset) {
  ViewCache cache(1u << 20);
  ViewCacheKey coarse = MakeKey("m", {"a = 1"});
  cache.Insert(coarse, MakeViewOfSize(64), OnePartition(0, {1, 2, 3}), 1.0);

  // {"a = 1"} is a strict subset of {"a = 1", "b = 2"}.
  auto base = cache.FindRefinementBase(MakeKey("m", {"a = 1", "b = 2"}));
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->partitions.rows_by_code.size(), 1u);
  EXPECT_EQ(cache.stats().refinement_seeds, 1u);

  // The same predicate set is NOT a strict subset (that's a full hit, not a
  // refinement), and a disjoint set does not match either.
  EXPECT_EQ(cache.FindRefinementBase(MakeKey("m", {"a = 1"})), nullptr);
  EXPECT_EQ(cache.FindRefinementBase(MakeKey("m", {"c = 3", "d = 4"})),
            nullptr);
}

TEST(ViewCacheTest, FindRefinementBaseRequiresSameContext) {
  ViewCache cache(1u << 20);
  cache.Insert(MakeKey("m", {"a = 1"}), MakeViewOfSize(64),
               OnePartition(0, {1}), 1.0);
  // Different dataset / params / pivot attr: no match.
  EXPECT_EQ(cache.FindRefinementBase(MakeKey("other", {"a = 1", "b = 2"})),
            nullptr);
  EXPECT_EQ(
      cache.FindRefinementBase(MakeKey("m", {"a = 1", "b = 2"}, "fp-other")),
      nullptr);
  EXPECT_EQ(cache.FindRefinementBase(ViewCacheKey::Make(
                "m", {"a = 1", "b = 2"}, "OtherPivot", {}, "fp")),
            nullptr);
}

TEST(ViewCacheTest, FindRefinementBaseSkipsEntriesWithoutPartitions) {
  ViewCache cache(1u << 20);
  cache.Insert(MakeKey("m", {"a = 1"}), MakeViewOfSize(64), CachedPartitions{},
               1.0);
  EXPECT_EQ(cache.FindRefinementBase(MakeKey("m", {"a = 1", "b = 2"})),
            nullptr);
}

TEST(ViewCacheTest, FindRefinementBasePrefersMostRefinedDonor) {
  ViewCache cache(1u << 20);
  cache.Insert(MakeKey("m", {}), MakeViewOfSize(64), OnePartition(0, {1}),
               1.0);
  cache.Insert(MakeKey("m", {"a = 1"}), MakeViewOfSize(64),
               OnePartition(0, {2}), 1.0);
  cache.Insert(MakeKey("m", {"a = 1", "b = 2"}), MakeViewOfSize(64),
               OnePartition(0, {3}), 1.0);

  auto base =
      cache.FindRefinementBase(MakeKey("m", {"a = 1", "b = 2", "c = 3"}));
  ASSERT_NE(base, nullptr);
  // The two-predicate donor is the most refined subset: smallest superset
  // fragment, cheapest intersection.
  ASSERT_EQ(base->partitions.rows_by_code.size(), 1u);
  EXPECT_EQ(base->partitions.rows_by_code[0].second,
            std::vector<uint32_t>({3}));
}

TEST(ViewCacheTest, FindRefinementBasePivotValueRules) {
  ViewCache cache(1u << 20);
  ViewCacheKey all_values =
      ViewCacheKey::Make("m", {"a = 1"}, "Class", {}, "fp");
  cache.Insert(all_values, MakeViewOfSize(64), OnePartition(0, {1}), 1.0);

  // Donor with all pivot values seeds any pivot-value restriction.
  EXPECT_NE(cache.FindRefinementBase(ViewCacheKey::Make(
                "m", {"a = 1", "b = 2"}, "Class", {"e"}, "fp")),
            nullptr);

  cache.Clear();
  ViewCacheKey restricted =
      ViewCacheKey::Make("m", {"a = 1"}, "Class", {"e"}, "fp");
  cache.Insert(restricted, MakeViewOfSize(64), OnePartition(0, {1}), 1.0);
  // A value-restricted donor only seeds identical value lists.
  EXPECT_NE(cache.FindRefinementBase(ViewCacheKey::Make(
                "m", {"a = 1", "b = 2"}, "Class", {"e"}, "fp")),
            nullptr);
  EXPECT_EQ(cache.FindRefinementBase(ViewCacheKey::Make(
                "m", {"a = 1", "b = 2"}, "Class", {"p"}, "fp")),
            nullptr);
  EXPECT_EQ(cache.FindRefinementBase(ViewCacheKey::Make(
                "m", {"a = 1", "b = 2"}, "Class", {}, "fp")),
            nullptr);
}

TEST(PartitionConversionTest, RoundTripThroughBaseRows) {
  // Fragment rows (base ids) and per-code members as positions into them.
  RowSet fragment = {10, 20, 30, 40, 50};
  PartitionSeed seed;
  seed.members_by_code.emplace_back(0, std::vector<size_t>{0, 2});
  seed.members_by_code.emplace_back(3, std::vector<size_t>{1, 3, 4});

  CachedPartitions cached = PartitionsToBaseRows(seed, fragment);
  ASSERT_EQ(cached.rows_by_code.size(), 2u);
  EXPECT_EQ(cached.rows_by_code[0].second, std::vector<uint32_t>({10, 30}));
  EXPECT_EQ(cached.rows_by_code[1].second,
            std::vector<uint32_t>({20, 40, 50}));

  // Intersecting with the same fragment reproduces the seed.
  PartitionSeed back = IntersectPartitions(cached, fragment);
  ASSERT_EQ(back.members_by_code.size(), 2u);
  EXPECT_EQ(back.members_by_code[0].second, seed.members_by_code[0].second);
  EXPECT_EQ(back.members_by_code[1].second, seed.members_by_code[1].second);
}

TEST(PartitionConversionTest, IntersectWithRefinedFragment) {
  CachedPartitions cached;
  cached.rows_by_code.emplace_back(0, std::vector<uint32_t>{10, 30, 50});
  cached.rows_by_code.emplace_back(1, std::vector<uint32_t>{20, 40});

  // The refined fragment kept rows 30, 40, 50 only.
  RowSet refined = {30, 40, 50};
  PartitionSeed seed = IntersectPartitions(cached, refined);
  ASSERT_EQ(seed.members_by_code.size(), 2u);
  EXPECT_EQ(seed.members_by_code[0].first, 0);
  EXPECT_EQ(seed.members_by_code[0].second, std::vector<size_t>({0, 2}));
  EXPECT_EQ(seed.members_by_code[1].first, 1);
  EXPECT_EQ(seed.members_by_code[1].second, std::vector<size_t>({1}));
}

TEST(PartitionConversionTest, EmptyIntersectionsAreDropped) {
  CachedPartitions cached;
  cached.rows_by_code.emplace_back(0, std::vector<uint32_t>{10});
  cached.rows_by_code.emplace_back(1, std::vector<uint32_t>{20});
  RowSet refined = {20};
  PartitionSeed seed = IntersectPartitions(cached, refined);
  ASSERT_EQ(seed.members_by_code.size(), 1u);
  EXPECT_EQ(seed.members_by_code[0].first, 1);
}

TEST(ViewCacheTest, ConcurrentLookupInsertHammering) {
  // Many threads, overlapping key space, a budget small enough to force
  // evictions mid-flight. TSAN (scripts/check_tsan.sh runs the `unit` label)
  // verifies the locking; here we check nothing crashes and the stats add up.
  const size_t payload = 512;
  const size_t entry_bytes = ApproxCadViewBytes(MakeViewOfSize(payload));
  ViewCache cache(8 * entry_bytes);

  const size_t kOps = 400;
  Status st = ParallelFor(
      TestThreads(8), 0, kOps, 1, [&](size_t i) -> Status {
        ViewCacheKey key =
            MakeKey("m", {"a = " + std::to_string(i % 16)});
        if (cache.Lookup(key) == nullptr) {
          cache.Insert(key, MakeViewOfSize(payload), CachedPartitions{},
                       1.0);
        }
        cache.FindRefinementBase(
            MakeKey("m", {"a = " + std::to_string(i % 16), "b = 1"}));
        if (i % 64 == 0) cache.InvalidateDataset("m");
        ViewCacheStats stats = cache.stats();
        if (stats.bytes_in_use > stats.byte_budget) {
          return Status::Internal("budget exceeded under concurrency");
        }
        return Status::OK();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();

  ViewCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kOps);
  EXPECT_LE(stats.bytes_in_use, stats.byte_budget);
  EXPECT_LE(stats.entries, 8u);
}


// --- Snapshot dataset ids ----------------------------------------------------

TEST(SnapshotDatasetIdTest, DistinctPerRegistration) {
  const std::string a = MakeSnapshotDatasetId("T");
  const std::string b = MakeSnapshotDatasetId("T");
  EXPECT_NE(a, b) << "two registrations must never share a key space";
  EXPECT_EQ(a.rfind("T@", 0), 0u);
  EXPECT_EQ(b.rfind("T@", 0), 0u);
  // Same-name-different-table and different-name ids all stay disjoint.
  EXPECT_NE(MakeSnapshotDatasetId("U"), MakeSnapshotDatasetId("U"));
}

TEST(SnapshotDatasetIdTest, KeysOverDistinctSnapshotsNeverCollide) {
  // The stale-partition scenario: two sessions register different tables
  // under the same name into one shared cache. Snapshot ids keep the
  // identical build request from hitting the other session's entry.
  ViewCache cache;
  const std::string snap1 = MakeSnapshotDatasetId("T");
  const std::string snap2 = MakeSnapshotDatasetId("T");
  cache.Insert(MakeKey(snap1, {"a = 1"}), MakeViewOfSize(100), {}, 1.0);
  EXPECT_EQ(cache.Lookup(MakeKey(snap2, {"a = 1"})), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey(snap1, {"a = 1"})), nullptr);
  // Refinement seeding must not cross snapshots either.
  EXPECT_EQ(cache.FindRefinementBase(MakeKey(snap2, {"a = 1", "b = 2"})),
            nullptr);
}

// --- Per-owner byte budgets --------------------------------------------------

TEST(ViewCacheOwnerTest, AttributesAndReleasesBytes) {
  ViewCache cache(1u << 20);
  CadView v = MakeViewOfSize(1000);
  const size_t bytes = ApproxCadViewBytes(v);
  cache.Insert(MakeKey("m", {"a = 1"}), std::move(v), {}, 1.0, "s1");
  EXPECT_EQ(cache.OwnerBytes("s1"), bytes);
  EXPECT_EQ(cache.OwnerBytes("s2"), 0u);
  cache.InvalidateDataset("m");
  EXPECT_EQ(cache.OwnerBytes("s1"), 0u);
}

TEST(ViewCacheOwnerTest, BudgetRejectsInsertThatWouldExceedIt) {
  ViewCache cache(1u << 20);
  CadView first = MakeViewOfSize(1000);
  const size_t first_bytes = ApproxCadViewBytes(first);
  // Budget admits exactly the first entry.
  cache.SetOwnerBudget("s1", first_bytes);
  cache.Insert(MakeKey("m", {"a = 1"}), std::move(first), {}, 1.0, "s1");
  EXPECT_EQ(cache.OwnerBytes("s1"), first_bytes);
  EXPECT_EQ(cache.stats().inserts, 1u);

  cache.Insert(MakeKey("m", {"a = 2"}), MakeViewOfSize(1000), {}, 1.0, "s1");
  ViewCacheStats stats = cache.stats();
  EXPECT_EQ(stats.owner_budget_rejects, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(cache.Lookup(MakeKey("m", {"a = 2"})), nullptr);
  EXPECT_EQ(cache.OwnerBytes("s1"), first_bytes);

  // Another owner and unattributed inserts are unaffected by s1's budget.
  cache.Insert(MakeKey("m", {"a = 3"}), MakeViewOfSize(1000), {}, 1.0, "s2");
  cache.Insert(MakeKey("m", {"a = 4"}), MakeViewOfSize(1000), {}, 1.0);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(ViewCacheOwnerTest, InvalidationFreesBudgetForNewInserts) {
  ViewCache cache(1u << 20);
  CadView v = MakeViewOfSize(1000);
  const size_t bytes = ApproxCadViewBytes(v);
  cache.SetOwnerBudget("s1", bytes);
  cache.Insert(MakeKey("m", {"a = 1"}), std::move(v), {}, 1.0, "s1");
  cache.InvalidateDataset("m");
  // The owner's attribution was released with the entry, so the budget
  // admits a new insert of the same size.
  cache.Insert(MakeKey("m", {"a = 2"}), MakeViewOfSize(1000), {}, 1.0, "s1");
  EXPECT_EQ(cache.stats().owner_budget_rejects, 0u);
  EXPECT_EQ(cache.OwnerBytes("s1"), bytes);
}

TEST(ViewCacheOwnerTest, EvictionReleasesOwnerBytes) {
  CadView probe = MakeViewOfSize(1000);
  const size_t bytes = ApproxCadViewBytes(probe);
  // A cache sized for one entry: the second insert evicts the first.
  ViewCache cache(bytes + bytes / 2);
  cache.Insert(MakeKey("m", {"a = 1"}), std::move(probe), {}, 1.0, "s1");
  cache.Insert(MakeKey("m", {"a = 2"}), MakeViewOfSize(1000), {}, 1.0, "s2");
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.OwnerBytes("s1"), 0u);
  EXPECT_EQ(cache.OwnerBytes("s2"), bytes);
}

TEST(ViewCacheOwnerTest, ZeroBudgetRemovesTheCap) {
  ViewCache cache(1u << 20);
  cache.SetOwnerBudget("s1", 1);  // rejects everything
  cache.Insert(MakeKey("m", {"a = 1"}), MakeViewOfSize(1000), {}, 1.0, "s1");
  EXPECT_EQ(cache.stats().owner_budget_rejects, 1u);
  cache.SetOwnerBudget("s1", 0);  // cap removed
  cache.Insert(MakeKey("m", {"a = 2"}), MakeViewOfSize(1000), {}, 1.0, "s1");
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GT(cache.OwnerBytes("s1"), 0u);
}

}  // namespace
}  // namespace dbx
