// Tests for the DBXT binary snapshot format.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/data/used_cars.h"
#include "src/relation/binary_io.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

Table SampleTable() {
  Schema s = std::move(Schema::Make({
                           {"Cat", AttrType::kCategorical, true},
                           {"Hidden", AttrType::kCategorical, false},
                           {"Num", AttrType::kNumeric, true},
                       }))
                 .value();
  Table t(s);
  EXPECT_TRUE(t.AppendRow({Value("a"), Value("x"), Value(1.5)}).ok());
  EXPECT_TRUE(t.AppendRow({Value("b"), Value::Null(), Value::Null()}).ok());
  EXPECT_TRUE(t.AppendRow({Value("a"), Value("y"), Value(-3.25)}).ok());
  return t;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_cols(), b.num_cols());
  for (size_t c = 0; c < a.num_cols(); ++c) {
    EXPECT_EQ(a.schema().attr(c).name, b.schema().attr(c).name);
    EXPECT_EQ(a.schema().attr(c).type, b.schema().attr(c).type);
    EXPECT_EQ(a.schema().attr(c).queriable, b.schema().attr(c).queriable);
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_cols(); ++c) {
      EXPECT_EQ(a.At(r, c) == b.At(r, c), true) << "cell " << r << "," << c;
    }
  }
}

TEST(BinaryIoTest, RoundTripSmall) {
  Table t = SampleTable();
  auto back = FromBinary(ToBinary(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectTablesEqual(t, *back);
}

TEST(BinaryIoTest, RoundTripPreservesQueriability) {
  // CSV cannot carry this metadata; the binary format must.
  Table t = SampleTable();
  auto back = FromBinary(ToBinary(t));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->schema().attr(1).queriable);
}

TEST(BinaryIoTest, RoundTripRealDataset) {
  Table cars = GenerateUsedCars(1500, 7);
  auto back = FromBinary(ToBinary(cars));
  ASSERT_TRUE(back.ok());
  ExpectTablesEqual(cars, *back);
}

TEST(BinaryIoTest, FileRoundTrip) {
  Table t = SampleTable();
  std::string path = ::testing::TempDir() + "/dbxt_test.bin";
  ASSERT_TRUE(WriteBinary(t, path).ok());
  auto back = ReadBinary(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectTablesEqual(t, *back);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, CorruptionDetected) {
  Table t = SampleTable();
  std::string bytes = ToBinary(t);

  // Bad magic.
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_TRUE(FromBinary(bad).status().IsCorruption());

  // Truncation at every eighth byte boundary.
  for (size_t cut = 4; cut < bytes.size(); cut += 8) {
    EXPECT_TRUE(FromBinary(bytes.substr(0, cut)).status().IsCorruption())
        << "cut " << cut;
  }

  // Trailing garbage.
  EXPECT_TRUE(FromBinary(bytes + "junk").status().IsCorruption());

  // Bad version.
  std::string bad_version = bytes;
  bad_version[4] = 99;
  EXPECT_TRUE(FromBinary(bad_version).status().IsCorruption());

  // Empty input.
  EXPECT_TRUE(FromBinary("").status().IsCorruption());
}

TEST(BinaryIoTest, RandomMutationsNeverCrash) {
  Table t = SampleTable();
  std::string bytes = ToBinary(t);
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = bytes;
    size_t flips = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      size_t pos = static_cast<size_t>(rng.NextBounded(mutated.size()));
      mutated[pos] = static_cast<char>(rng.NextBounded(256));
    }
    auto r = FromBinary(mutated);  // must return OK or error, never crash
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
}

TEST(BinaryIoTest, MissingFile) {
  EXPECT_TRUE(ReadBinary("/no/such/file.dbxt").status().IsNotFound());
}

}  // namespace
}  // namespace dbx
