// Tests for one-hot encoding, k-means, and cluster metrics.

#include <gtest/gtest.h>

#include <set>

#include "src/cluster/cluster_metrics.h"
#include "src/cluster/encoder.h"
#include "src/cluster/kmeans.h"

namespace dbx {
namespace {

// Two clearly separated groups over two categorical attributes.
Table TwoGroupTable(size_t per_group) {
  Schema s = std::move(Schema::Make({
                           {"A", AttrType::kCategorical, true},
                           {"B", AttrType::kCategorical, true},
                       }))
                 .value();
  Table t(s);
  for (size_t i = 0; i < per_group; ++i) {
    EXPECT_TRUE(t.AppendRow({Value("a1"), Value("b1")}).ok());
    EXPECT_TRUE(t.AppendRow({Value("a2"), Value("b2")}).ok());
  }
  return t;
}

DiscretizedTable Discretize(const Table& t) {
  return std::move(
             DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{}))
      .value();
}

std::vector<size_t> AllPositions(const DiscretizedTable& dt) {
  std::vector<size_t> p(dt.num_rows());
  for (size_t i = 0; i < p.size(); ++i) p[i] = i;
  return p;
}

// --- Encoder -------------------------------------------------------------------

TEST(EncoderTest, DimsAndOffsets) {
  Table t = TwoGroupTable(3);
  DiscretizedTable dt = Discretize(t);
  auto enc = OneHotEncoder::Plan(dt, {0, 1});
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->dims(), 4u);  // 2 values per attribute
  EXPECT_EQ(enc->BlockOffset(0), 0u);
  EXPECT_EQ(enc->BlockOffset(1), 2u);
}

TEST(EncoderTest, OneHotRowsSumToAttrCount) {
  Table t = TwoGroupTable(2);
  DiscretizedTable dt = Discretize(t);
  auto enc = OneHotEncoder::Plan(dt, {0, 1});
  ASSERT_TRUE(enc.ok());
  EncodedMatrix m = enc->Encode(dt, AllPositions(dt));
  EXPECT_EQ(m.num_points, 4u);
  for (size_t i = 0; i < m.num_points; ++i) {
    double sum = 0;
    for (size_t d = 0; d < m.dims; ++d) sum += m.point(i)[d];
    EXPECT_DOUBLE_EQ(sum, 2.0);  // one hot per attribute
  }
}

TEST(EncoderTest, NullsEncodeToZeroBlock) {
  Schema s = std::move(Schema::Make({{"A", AttrType::kCategorical, true}}))
                 .value();
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  DiscretizedTable dt = Discretize(t);
  auto enc = OneHotEncoder::Plan(dt, {0});
  ASSERT_TRUE(enc.ok());
  EncodedMatrix m = enc->Encode(dt, {0, 1});
  EXPECT_DOUBLE_EQ(m.point(1)[0], 0.0);
}

TEST(EncoderTest, SkipsAllNullAttrsAndFailsWhenNothingLeft) {
  Schema s = std::move(Schema::Make({{"A", AttrType::kCategorical, true}}))
                 .value();
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  DiscretizedTable dt = Discretize(t);
  EXPECT_TRUE(OneHotEncoder::Plan(dt, {0}).status().IsInvalidArgument());
}

TEST(EncoderTest, OutOfRangeAttr) {
  Table t = TwoGroupTable(1);
  DiscretizedTable dt = Discretize(t);
  EXPECT_TRUE(OneHotEncoder::Plan(dt, {7}).status().IsOutOfRange());
}

// --- KMeans --------------------------------------------------------------------

EncodedMatrix TwoGroupMatrix(size_t per_group) {
  Table t = TwoGroupTable(per_group);
  DiscretizedTable dt = Discretize(t);
  auto enc = OneHotEncoder::Plan(dt, {0, 1});
  return enc->Encode(dt, AllPositions(dt));
}

TEST(KMeansTest, RecoversTwoGroups) {
  EncodedMatrix m = TwoGroupMatrix(20);
  KMeansOptions opt;
  opt.k = 2;
  auto res = RunKMeans(m, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->k_effective, 2u);
  // Perfect separation: inertia 0 and alternating assignment pattern.
  EXPECT_NEAR(res->inertia, 0.0, 1e-9);
  for (size_t i = 2; i < m.num_points; ++i) {
    EXPECT_EQ(res->assignments[i], res->assignments[i % 2]);
  }
  EXPECT_NE(res->assignments[0], res->assignments[1]);
}

TEST(KMeansTest, AssignmentsValidAndSizesSum) {
  EncodedMatrix m = TwoGroupMatrix(10);
  KMeansOptions opt;
  opt.k = 3;
  auto res = RunKMeans(m, opt);
  ASSERT_TRUE(res.ok());
  auto sizes = res->ClusterSizes();
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, m.num_points);
  for (int32_t a : res->assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, static_cast<int32_t>(res->k_effective));
  }
}

TEST(KMeansTest, KClampedToPointCount) {
  EncodedMatrix m = TwoGroupMatrix(1);  // 2 points
  KMeansOptions opt;
  opt.k = 10;
  auto res = RunKMeans(m, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->k_effective, 2u);
}

TEST(KMeansTest, DeterministicForSeed) {
  EncodedMatrix m = TwoGroupMatrix(25);
  KMeansOptions opt;
  opt.k = 4;
  opt.seed = 77;
  auto a = RunKMeans(m, opt);
  auto b = RunKMeans(m, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_EQ(a->centroids, b->centroids);
}

TEST(KMeansTest, Errors) {
  EncodedMatrix empty;
  empty.dims = 3;
  EXPECT_TRUE(RunKMeans(empty, KMeansOptions{}).status().IsInvalidArgument());
  EncodedMatrix m = TwoGroupMatrix(2);
  KMeansOptions opt;
  opt.k = 0;
  EXPECT_TRUE(RunKMeans(m, opt).status().IsInvalidArgument());
}

TEST(KMeansTest, MoreClustersNeverIncreaseInertia) {
  // Mixed data with some noise.
  Schema s = std::move(Schema::Make({
                           {"A", AttrType::kCategorical, true},
                           {"B", AttrType::kCategorical, true},
                       }))
                 .value();
  Table t(s);
  Rng rng(4);
  const char* as[] = {"a1", "a2", "a3", "a4"};
  const char* bs[] = {"b1", "b2", "b3"};
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(as[rng.NextBounded(4)]),
                             Value(bs[rng.NextBounded(3)])})
                    .ok());
  }
  DiscretizedTable dt = Discretize(t);
  auto enc = OneHotEncoder::Plan(dt, {0, 1});
  EncodedMatrix m = enc->Encode(dt, AllPositions(dt));

  double prev = 1e18;
  for (size_t k : {1u, 2u, 4u, 8u}) {
    KMeansOptions opt;
    opt.k = k;
    opt.max_iterations = 100;
    auto res = RunKMeans(m, opt);
    ASSERT_TRUE(res.ok());
    EXPECT_LE(res->inertia, prev + 1e-6) << "k=" << k;
    prev = res->inertia;
  }
}

// --- Metrics -------------------------------------------------------------------

TEST(ClusterMetricsTest, SilhouetteHighForSeparatedGroups) {
  EncodedMatrix m = TwoGroupMatrix(20);
  KMeansOptions opt;
  opt.k = 2;
  auto res = RunKMeans(m, opt);
  ASSERT_TRUE(res.ok());
  double sil = SimplifiedSilhouette(m, *res);
  EXPECT_GT(sil, 0.9);
  EXPECT_LE(sil, 1.0);
}

TEST(ClusterMetricsTest, SilhouetteZeroForSingleCluster) {
  EncodedMatrix m = TwoGroupMatrix(5);
  KMeansOptions opt;
  opt.k = 1;
  auto res = RunKMeans(m, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_DOUBLE_EQ(SimplifiedSilhouette(m, *res), 0.0);
}

TEST(ClusterMetricsTest, PerClusterInertiaSumsToTotal) {
  EncodedMatrix m = TwoGroupMatrix(15);
  KMeansOptions opt;
  opt.k = 3;
  auto res = RunKMeans(m, opt);
  ASSERT_TRUE(res.ok());
  auto per = PerClusterInertia(m, *res);
  double sum = 0;
  for (double x : per) sum += x;
  EXPECT_NEAR(sum, res->inertia, 1e-9);
}

TEST(ClusterMetricsTest, DispersionPositiveForDistinctCentroids) {
  EncodedMatrix m = TwoGroupMatrix(10);
  KMeansOptions opt;
  opt.k = 2;
  auto res = RunKMeans(m, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(CentroidDispersion(*res), 0.0);
}

}  // namespace
}  // namespace dbx
