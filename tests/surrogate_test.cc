// Tests for the Limitation-2 surrogate finder.

#include <gtest/gtest.h>

#include "src/core/surrogate.h"
#include "src/data/used_cars.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

DiscretizedTable Discretize(const Table& t) {
  return std::move(
             DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{}))
      .value();
}

// Hidden attribute H perfectly determined by queriable Q.
Table PerfectSurrogateTable(size_t n) {
  Schema s = std::move(Schema::Make({
                           {"Hidden", AttrType::kCategorical, false},
                           {"Q", AttrType::kCategorical, true},
                           {"Noise", AttrType::kCategorical, true},
                       }))
                 .value();
  Table t(s);
  Rng rng(3);
  for (size_t i = 0; i < n; ++i) {
    int v = static_cast<int>(rng.NextBounded(3));
    EXPECT_TRUE(t.AppendRow({Value("h" + std::to_string(v)),
                             Value("q" + std::to_string(v)),
                             Value(rng.NextBool() ? "x" : "y")})
                    .ok());
  }
  return t;
}

TEST(SurrogateTest, FindsPerfectSurrogate) {
  Table t = PerfectSurrogateTable(500);
  DiscretizedTable dt = Discretize(t);
  auto result = FindSurrogates(dt, "Hidden", "h1", SurrogateOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->empty());
  const Surrogate& best = result->front();
  EXPECT_DOUBLE_EQ(best.f1, 1.0);
  EXPECT_DOUBLE_EQ(best.precision, 1.0);
  EXPECT_DOUBLE_EQ(best.recall, 1.0);
  ASSERT_EQ(best.conditions.size(), 1u);
  EXPECT_EQ(best.conditions[0].first, "Q");
  EXPECT_EQ(best.conditions[0].second, "q1");
}

TEST(SurrogateTest, NeverUsesHiddenAttributesWhenQueriableOnly) {
  Table cars = GenerateUsedCars(4000, 7);
  DiscretizedTable dt = Discretize(cars);
  // Engine is the non-queriable attribute; find surrogates for V4.
  auto result = FindSurrogates(dt, "Engine", "V4", SurrogateOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->empty());
  for (const Surrogate& s : *result) {
    for (const auto& [attr, value] : s.conditions) {
      EXPECT_NE(attr, "Engine");
      auto idx = dt.IndexOf(attr);
      ASSERT_TRUE(idx.has_value());
      EXPECT_TRUE(dt.attr(*idx).queriable) << attr;
    }
  }
  // The paper's intuition: fuel economy (or model) works as a V4 surrogate.
  EXPECT_GT(result->front().f1, 0.6) << result->front().conditions[0].first;
}

TEST(SurrogateTest, PairsOnlyImproveOrMatchSingles) {
  Table cars = GenerateUsedCars(3000, 7);
  DiscretizedTable dt = Discretize(cars);
  SurrogateOptions singles_only;
  singles_only.max_conditions = 1;
  SurrogateOptions with_pairs;
  with_pairs.max_conditions = 2;
  auto s1 = FindSurrogates(dt, "Engine", "V8", singles_only);
  auto s2 = FindSurrogates(dt, "Engine", "V8", with_pairs);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_FALSE(s1->empty());
  ASSERT_FALSE(s2->empty());
  EXPECT_GE(s2->front().f1, s1->front().f1 - 1e-12);
}

TEST(SurrogateTest, OrPairsUnionSameAttribute) {
  // Hidden H=h1 is exactly Q in {q1, q2}; only an OR pair can be perfect.
  Schema s = std::move(Schema::Make({
                           {"Hidden", AttrType::kCategorical, false},
                           {"Q", AttrType::kCategorical, true},
                       }))
                 .value();
  Table t(s);
  Rng rng(5);
  for (int i = 0; i < 600; ++i) {
    int q = static_cast<int>(rng.NextBounded(4));
    ASSERT_TRUE(t.AppendRow({Value(q <= 1 ? "h1" : "h0"),
                             Value("q" + std::to_string(q))})
                    .ok());
  }
  DiscretizedTable dt = Discretize(t);
  SurrogateOptions opt;
  auto with_or = FindSurrogates(dt, "Hidden", "h1", opt);
  ASSERT_TRUE(with_or.ok());
  ASSERT_FALSE(with_or->empty());
  EXPECT_DOUBLE_EQ(with_or->front().f1, 1.0);
  ASSERT_EQ(with_or->front().conditions.size(), 2u);
  EXPECT_EQ(with_or->front().conditions[0].first, "Q");
  EXPECT_EQ(with_or->front().conditions[1].first, "Q");

  opt.allow_or_pairs = false;
  auto without = FindSurrogates(dt, "Hidden", "h1", opt);
  ASSERT_TRUE(without.ok());
  EXPECT_LT(without->front().f1, 1.0);
}

TEST(SurrogateTest, RespectsTopKAndThreshold) {
  Table cars = GenerateUsedCars(2000, 7);
  DiscretizedTable dt = Discretize(cars);
  SurrogateOptions opt;
  opt.top_k = 3;
  auto r = FindSurrogates(dt, "Engine", "V6", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->size(), 3u);
  for (size_t i = 1; i < r->size(); ++i) {
    EXPECT_GE((*r)[i - 1].f1, (*r)[i].f1);
  }

  opt.min_f1 = 1.01;  // impossible
  auto none = FindSurrogates(dt, "Engine", "V6", opt);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(SurrogateTest, Errors) {
  Table t = PerfectSurrogateTable(50);
  DiscretizedTable dt = Discretize(t);
  EXPECT_TRUE(FindSurrogates(dt, "Nope", "x", SurrogateOptions{})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(FindSurrogates(dt, "Hidden", "nope", SurrogateOptions{})
                  .status()
                  .IsNotFound());
  SurrogateOptions bad;
  bad.max_conditions = 0;
  EXPECT_TRUE(FindSurrogates(dt, "Hidden", "h1", bad)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace dbx
