// Cross-module integration tests: the full paper workflows end to end.

#include <gtest/gtest.h>

#include "src/core/cad_view_renderer.h"
#include "src/data/hotels.h"
#include "src/data/mushroom.h"
#include "src/data/used_cars.h"
#include "src/explorer/tpfacet_session.h"
#include "src/query/engine.h"
#include "src/sim/study.h"

namespace dbx {
namespace {

// The paper's Table 1 workflow, end to end through the SQL dialect.
TEST(IntegrationTest, MarysExplorationViaSql) {
  Table cars = GenerateUsedCars(20000, 7);
  Engine engine;
  engine.RegisterTable("UsedCars", &cars);

  auto created = engine.ExecuteSql(
      "CREATE CADVIEW CompareMakes AS SET pivot = Make SELECT Price "
      "FROM UsedCars "
      "WHERE Mileage BETWEEN 10K AND 30K AND Transmission = Automatic AND "
      "BodyType = SUV AND (Make = Jeep OR Make = Toyota OR Make = Honda OR "
      "Make = Ford OR Make = Chevrolet) LIMIT COLUMNS 5 IUNITS 3");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  const CadView& view = *created->view;

  // Shape of Table 1: 5 rows, Price first (user-selected), <= 5 attrs,
  // <= 3 IUnits per row.
  EXPECT_EQ(view.rows.size(), 5u);
  EXPECT_EQ(view.compare_attrs[0].name, "Price");
  EXPECT_LE(view.compare_attrs.size(), 5u);
  for (const CadViewRow& r : view.rows) {
    EXPECT_LE(r.iunits.size(), 3u);
    EXPECT_GT(r.partition_size, 0u);
  }

  // Model must be among the auto-chosen compare attributes (it nearly
  // determines Make) — the paper's Table 1 shows the same.
  bool has_model = false;
  for (const CompareAttribute& ca : view.compare_attrs) {
    has_model |= ca.name == "Model";
  }
  EXPECT_TRUE(has_model);

  // Selections were honored: every member tuple is an automatic SUV with
  // 10K <= mileage <= 30K.
  auto body = *cars.ColByName("BodyType");
  auto mileage = *cars.ColByName("Mileage");
  auto dt = DiscretizedTable::Build(
      TableSlice{&cars,
                 [&] {
                   RowSet all = cars.AllRows();
                   return all;
                 }()},
      DiscretizerOptions{});
  ASSERT_TRUE(dt.ok());
  // member_positions index the builder's slice (filtered rows), so verify
  // through partition sizes instead: a Jeep partition exists and is nonzero.
  auto jeep = view.RowIndexOf("Jeep");
  ASSERT_TRUE(jeep.ok());

  // Highlight and reorder statements run against the stored view.
  auto h = engine.ExecuteSql(
      "HIGHLIGHT SIMILAR IUNITS IN CompareMakes WHERE "
      "SIMILARITY(Chevrolet, 1) > 1.0");
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  auto r = engine.ExecuteSql(
      "REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Ford) DESC");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->view->rows[0].pivot_value, "Ford");
  (void)body;
  (void)mileage;
}

// Limitation 2: Engine (V4/V6/V8) is not queriable, yet the CAD View
// surfaces it, and its IUnit labels map to queriable surrogates.
TEST(IntegrationTest, HiddenAttributeSurfacedByCadView) {
  Table cars = GenerateUsedCars(10000, 7);
  CadViewOptions options;
  options.pivot_attr = "Make";
  options.pivot_values = {"Chevrolet", "Ford"};
  options.max_compare_attrs = 5;
  options.iunits_per_value = 3;
  options.seed = 5;
  auto view = BuildCadView(TableSlice::All(cars), options);
  ASSERT_TRUE(view.ok());
  bool engine_shown = false;
  for (const CompareAttribute& ca : view->compare_attrs) {
    engine_shown |= ca.name == "Engine";
  }
  EXPECT_TRUE(engine_shown)
      << "chi-square should surface the hidden Engine attribute";
}

// TPFacet session over the mushroom data: the §6.2.2 interactive workflow.
TEST(IntegrationTest, MushroomSimilarValueWorkflow) {
  Table mush = GenerateMushrooms(4000, 11);
  CadViewOptions cad;
  cad.max_compare_attrs = 5;
  cad.iunits_per_value = 3;
  cad.seed = 5;
  auto session = TpFacetSession::Create(&mush, DiscretizerOptions{}, cad);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->SetPivot("GillColor").ok());
  session->SetPivotValues({"buff", "white", "brown", "green"});
  auto ranked = session->ClickPivotValue("brown");
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  ASSERT_EQ(ranked->size(), 4u);
  EXPECT_EQ((*ranked)[0].first, "brown");
  // The designed similar pair: white should rank nearest to brown.
  EXPECT_EQ((*ranked)[1].first, "white");
}

// The full study at paper scale produces the paper's qualitative results.
TEST(IntegrationTest, StudyShapeMatchesPaper) {
  Table mush = GenerateMushrooms(8124, 11);
  StudyConfig config = StudyConfig::Default();
  auto results = RunUserStudy(&mush, config);
  ASSERT_TRUE(results.ok()) << results.status().ToString();

  for (char type : {'C', 'S', 'A'}) {
    auto analysis = AnalyzeTask(*results, type, config.num_users);
    ASSERT_TRUE(analysis.ok());
    // TPFacet is faster on every task type...
    EXPECT_LT(analysis->mean_minutes_tpfacet, analysis->mean_minutes_solr)
        << "task " << type;
    // ...with the paper's per-task quality outcome: classifier F1 improves,
    // retrieval error drops, and the similar-pair task shows no significant
    // difference (both interfaces find a top-2 pair; the paper's U7/U8 also
    // landed on rank 2).
    if (type == 'C') {
      EXPECT_GT(analysis->quality.effect, 0.0);
      EXPECT_LT(analysis->quality.p_value, 0.05);
    } else if (type == 'A') {
      EXPECT_LT(analysis->quality.effect, 0.0);
      EXPECT_LT(analysis->quality.p_value, 0.05);
    } else {
      EXPECT_GT(analysis->quality.p_value, 0.05);
      EXPECT_LE(analysis->mean_quality_tpfacet, 2.0);
      EXPECT_LE(analysis->mean_quality_solr, 2.0);
    }
  }
}

// The introduction's hotel scenario: one CAD View surfaces the 5-star
// financial-district clustering the unfamiliar visitor cannot know.
TEST(IntegrationTest, HotelIntroScenario) {
  Table hotels = GenerateHotels(6000, 21);
  Engine engine;
  engine.RegisterTable("Hotels", &hotels);
  auto r = engine.ExecuteSql(
      "CREATE CADVIEW ByStars AS SET pivot = Stars SELECT Price FROM Hotels "
      "WHERE PropertyType != Hostel LIMIT COLUMNS 4 IUNITS 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CadView& v = *r->view;

  // District must be among the auto-chosen compare attributes (it interacts
  // strongly with Stars) ...
  size_t district_ci = v.compare_attrs.size();
  for (size_t i = 0; i < v.compare_attrs.size(); ++i) {
    if (v.compare_attrs[i].name == "District") district_ci = i;
  }
  ASSERT_LT(district_ci, v.compare_attrs.size());

  // ... and the 5-star row's District labels must name the financial
  // district (the intro's hidden fact).
  auto five = v.RowIndexOf("5");
  ASSERT_TRUE(five.ok());
  bool financial = false;
  for (const IUnit& u : v.rows[*five].iunits) {
    for (const std::string& l : u.cells[district_ci].labels) {
      financial |= l == "Financial";
    }
  }
  EXPECT_TRUE(financial);
}

// Aggregation and CAD Views compose in one session (the analyst alternates
// lookup and exploratory queries, the paper's browsing/querying alternation).
TEST(IntegrationTest, AggregatesAlongsideCadViews) {
  Table cars = GenerateUsedCars(5000, 7);
  Engine engine;
  engine.RegisterTable("Cars", &cars);
  auto agg = engine.ExecuteSql(
      "SELECT BodyType, COUNT(*), AVG(Price) FROM Cars GROUP BY BodyType "
      "ORDER BY avg_Price DESC");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  ASSERT_GE(agg->rows.size(), 3u);
  // The priciest body type by aggregate should also lead a Price-ordered
  // CAD View conditioned on it — cross-checking the two paths.
  std::string top_body =
      agg->derived->At(agg->rows[0], 0).AsString();
  auto view = engine.ExecuteSql(
      "CREATE CADVIEW v AS SET pivot = BodyType SELECT Price FROM Cars "
      "LIMIT COLUMNS 3 IUNITS 2");
  ASSERT_TRUE(view.ok());
  auto row = view->view->RowIndexOf(top_body);
  EXPECT_TRUE(row.ok()) << top_body;
}

// The builder copes with null-heavy fragments end to end.
TEST(IntegrationTest, NullHeavyDataStillBuilds) {
  Schema s = std::move(Schema::Make({
                           {"P", AttrType::kCategorical, true},
                           {"A", AttrType::kCategorical, true},
                           {"N", AttrType::kNumeric, true},
                       }))
                 .value();
  Table t(s);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    std::vector<Value> row(3);
    row[0] = Value(rng.NextBool() ? "x" : "y");
    row[1] = rng.NextBool(0.6) ? Value::Null()
                               : Value(rng.NextBool() ? "a" : "b");
    row[2] = rng.NextBool(0.6) ? Value::Null()
                               : Value(rng.NextUniform(0, 100));
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  CadViewOptions o;
  o.pivot_attr = "P";
  o.max_compare_attrs = 2;
  o.iunits_per_value = 2;
  o.seed = 9;
  auto view = BuildCadView(TableSlice::All(t), o);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  for (const CadViewRow& row : view->rows) {
    EXPECT_GE(row.iunits.size(), 1u);
  }
}

// CAD Views render identically across runs (full determinism).
TEST(IntegrationTest, EndToEndDeterminism) {
  Table cars = GenerateUsedCars(5000, 7);
  auto run = [&]() {
    Engine engine;
    engine.RegisterTable("T", &cars);
    auto r = engine.ExecuteSql(
        "CREATE CADVIEW v AS SET pivot = BodyType SELECT * FROM T "
        "LIMIT COLUMNS 4 IUNITS 2");
    EXPECT_TRUE(r.ok());
    return r.ok() ? r->rendered : std::string();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dbx
