// Tests for the CAD View builder and the in-view search operations
// (Problems 1-4), including the §6.3 optimizations.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <utility>

#include "src/cluster/encoder.h"
#include "src/cluster/kmeans.h"
#include "src/core/cad_view_builder.h"
#include "src/core/cad_view_io.h"
#include "src/core/cad_view_renderer.h"
#include "src/core/iunit_similarity.h"
#include "src/core/view_cache.h"
#include "src/data/mushroom.h"
#include "src/data/synthetic.h"
#include "src/data/used_cars.h"
#include "src/explorer/tpfacet_session.h"
#include "src/stats/feature_selection.h"
#include "src/util/thread_pool.h"

namespace dbx {
namespace {

// Small deterministic used-car table shared by the suite.
class CadViewTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(GenerateUsedCars(4000, 3));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  static CadViewOptions BaseOptions() {
    CadViewOptions o;
    o.pivot_attr = "Make";
    o.pivot_values = {"Ford", "Chevrolet", "Jeep"};
    o.max_compare_attrs = 4;
    o.iunits_per_value = 3;
    o.seed = 5;
    return o;
  }

  static Table* table_;
};

Table* CadViewTest::table_ = nullptr;

TEST_F(CadViewTest, RowsMatchRequestedPivotValues) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->rows.size(), 3u);
  EXPECT_EQ(view->rows[0].pivot_value, "Ford");
  EXPECT_EQ(view->rows[1].pivot_value, "Chevrolet");
  EXPECT_EQ(view->rows[2].pivot_value, "Jeep");
  for (const CadViewRow& r : view->rows) {
    EXPECT_GT(r.partition_size, 0u);
    EXPECT_LE(r.iunits.size(), 3u);
    EXPECT_GE(r.iunits.size(), 1u);
  }
}

TEST_F(CadViewTest, CompareAttrsExcludePivotAndRespectLimit) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  EXPECT_LE(view->compare_attrs.size(), 4u);
  EXPECT_GE(view->compare_attrs.size(), 1u);
  for (const CompareAttribute& ca : view->compare_attrs) {
    EXPECT_NE(ca.name, "Make");
  }
  // Auto-selected attrs are ranked by decreasing relevance.
  for (size_t i = 1; i < view->compare_attrs.size(); ++i) {
    if (!view->compare_attrs[i - 1].user_selected &&
        !view->compare_attrs[i].user_selected) {
      EXPECT_GE(view->compare_attrs[i - 1].relevance,
                view->compare_attrs[i].relevance);
    }
  }
}

TEST_F(CadViewTest, UserCompareAttrsComeFirst) {
  CadViewOptions o = BaseOptions();
  o.user_compare_attrs = {"Price"};
  auto view = BuildCadView(TableSlice::All(*table_), o);
  ASSERT_TRUE(view.ok());
  ASSERT_FALSE(view->compare_attrs.empty());
  EXPECT_EQ(view->compare_attrs[0].name, "Price");
  EXPECT_TRUE(view->compare_attrs[0].user_selected);
}

TEST_F(CadViewTest, ModelIsTopAutoCompareAttributeForMakes) {
  // Make determines Model in the generator, so chi-square must rank Model
  // first (the paper's "Model is better than Mileage" observation).
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->compare_attrs[0].name, "Model");
}

TEST_F(CadViewTest, IUnitsHaveUniformLabelSchema) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  for (const CadViewRow& r : view->rows) {
    for (const IUnit& u : r.iunits) {
      EXPECT_EQ(u.cells.size(), view->compare_attrs.size());
      EXPECT_EQ(u.attr_freqs.size(), view->compare_attrs.size());
      EXPECT_EQ(u.pivot_value, r.pivot_value);
      EXPECT_GT(u.size(), 0u);
    }
  }
}

TEST_F(CadViewTest, IUnitsWithinRowRankedByScoreAndDiverse) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  for (const CadViewRow& r : view->rows) {
    for (size_t i = 1; i < r.iunits.size(); ++i) {
      EXPECT_GE(r.iunits[i - 1].score, r.iunits[i].score);
    }
    for (size_t i = 0; i < r.iunits.size(); ++i) {
      for (size_t j = i + 1; j < r.iunits.size(); ++j) {
        EXPECT_LT(IUnitSimilarity(r.iunits[i], r.iunits[j]), view->tau)
            << r.pivot_value << " iunits " << i << "," << j;
      }
    }
  }
}

TEST_F(CadViewTest, PartitionMembersCarryPivotValue) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  auto dt = DiscretizedTable::Build(TableSlice::All(*table_),
                                    DiscretizerOptions{});
  ASSERT_TRUE(dt.ok());
  auto make_idx = dt->IndexOf("Make");
  ASSERT_TRUE(make_idx.has_value());
  const DiscreteAttr& make = dt->attr(*make_idx);
  for (const CadViewRow& r : view->rows) {
    for (const IUnit& u : r.iunits) {
      for (size_t pos : u.member_positions) {
        EXPECT_EQ(make.labels[make.codes[pos]], r.pivot_value);
      }
    }
  }
}

TEST_F(CadViewTest, EmptyPivotValueListUsesAllValues) {
  CadViewOptions o = BaseOptions();
  o.pivot_values.clear();
  o.pivot_attr = "BodyType";
  auto view = BuildCadView(TableSlice::All(*table_), o);
  ASSERT_TRUE(view.ok());
  EXPECT_GE(view->rows.size(), 3u);  // SUV, Sedan, Truck, ...
  // Default order: most frequent first.
  for (size_t i = 1; i < view->rows.size(); ++i) {
    EXPECT_GE(view->rows[i - 1].partition_size,
              view->rows[i].partition_size);
  }
}

TEST_F(CadViewTest, UnknownPivotValueYieldsEmptyRow) {
  CadViewOptions o = BaseOptions();
  o.pivot_values = {"Ford", "NoSuchMake"};
  auto view = BuildCadView(TableSlice::All(*table_), o);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->rows.size(), 2u);
  EXPECT_EQ(view->rows[1].partition_size, 0u);
  EXPECT_TRUE(view->rows[1].iunits.empty());
}

TEST_F(CadViewTest, ErrorCases) {
  CadViewOptions o = BaseOptions();
  o.pivot_attr = "NoSuchAttr";
  EXPECT_TRUE(
      BuildCadView(TableSlice::All(*table_), o).status().IsNotFound());

  o = BaseOptions();
  o.iunits_per_value = 0;
  EXPECT_TRUE(
      BuildCadView(TableSlice::All(*table_), o).status().IsInvalidArgument());

  o = BaseOptions();
  o.user_compare_attrs = {"Make"};
  EXPECT_TRUE(
      BuildCadView(TableSlice::All(*table_), o).status().IsInvalidArgument());

  o = BaseOptions();
  o.user_compare_attrs = {"Price", "Price"};
  EXPECT_TRUE(
      BuildCadView(TableSlice::All(*table_), o).status().IsInvalidArgument());

  o = BaseOptions();
  o.max_compare_attrs = 1;
  o.user_compare_attrs = {"Price", "Year"};
  EXPECT_TRUE(
      BuildCadView(TableSlice::All(*table_), o).status().IsInvalidArgument());
}

TEST_F(CadViewTest, TimingsPopulated) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  EXPECT_GT(view->timings.total_ms, 0.0);
  EXPECT_GE(view->timings.compare_attrs_ms, 0.0);
  EXPECT_GE(view->timings.iunit_gen_ms, 0.0);
  EXPECT_GE(view->timings.others_ms(), 0.0);
  EXPECT_FALSE(RenderTimings(view->timings).empty());
}

// --- Problem 3 / 4 -------------------------------------------------------------

TEST_F(CadViewTest, FindSimilarIUnitsExcludesSelfAndSortsDescending) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  auto matches = view->FindSimilarIUnits("Ford", 0, 0.0);
  ASSERT_TRUE(matches.ok());
  size_t total_iunits = 0;
  for (const CadViewRow& r : view->rows) total_iunits += r.iunits.size();
  EXPECT_EQ(matches->size(), total_iunits - 1);  // everything but itself
  for (size_t i = 1; i < matches->size(); ++i) {
    EXPECT_GE((*matches)[i - 1].similarity, (*matches)[i].similarity);
  }
  for (const IUnitRef& m : *matches) {
    EXPECT_FALSE(m.row == 0 && m.iunit == 0);
  }
}

TEST_F(CadViewTest, FindSimilarIUnitsThresholdFilters) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  auto all = view->FindSimilarIUnits("Ford", 0, 0.0);
  auto none = view->FindSimilarIUnits(
      "Ford", 0, static_cast<double>(view->compare_attrs.size()) + 1.0);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_GT(all->size(), none->size());
}

TEST_F(CadViewTest, FindSimilarIUnitsErrors) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->FindSimilarIUnits("Nope", 0, 0.0).status().IsNotFound());
  EXPECT_TRUE(view->FindSimilarIUnits("Ford", 99, 0.0).status().IsOutOfRange());
}

TEST_F(CadViewTest, RankRowsBySimilarityAnchorFirst) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  auto ranked = view->RankRowsBySimilarity("Chevrolet");
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 3u);
  EXPECT_EQ((*ranked)[0].first, "Chevrolet");
  EXPECT_DOUBLE_EQ((*ranked)[0].second, 0.0);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i].second, (*ranked)[i - 1].second);
  }
}

TEST_F(CadViewTest, ReorderRowsAppliesRanking) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  auto ranked = view->RankRowsBySimilarity("Jeep");
  ASSERT_TRUE(ranked.ok());
  ASSERT_TRUE(view->ReorderRowsBySimilarity("Jeep").ok());
  for (size_t i = 0; i < view->rows.size(); ++i) {
    EXPECT_EQ(view->rows[i].pivot_value, (*ranked)[i].first);
  }
  EXPECT_EQ(view->rows[0].pivot_value, "Jeep");
}

// --- Renderer -------------------------------------------------------------------

TEST_F(CadViewTest, RenderContainsPivotValuesAndAttrs) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  std::string out = RenderCadView(*view);
  EXPECT_NE(out.find("Ford"), std::string::npos);
  EXPECT_NE(out.find("Chevrolet"), std::string::npos);
  EXPECT_NE(out.find("IUnit 1"), std::string::npos);
  for (const CompareAttribute& ca : view->compare_attrs) {
    EXPECT_NE(out.find(ca.name), std::string::npos);
  }
}

TEST_F(CadViewTest, RenderMarksHighlights) {
  auto view = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(view.ok());
  RenderOptions ro;
  ro.highlights = {{0, 0, 0.0}};
  std::string out = RenderCadView(*view, ro);
  EXPECT_NE(out.find("* ["), std::string::npos);
}

// --- §6.3 optimizations ----------------------------------------------------------

TEST_F(CadViewTest, SamplingKeepsTopCompareAttribute) {
  CadViewOptions o = BaseOptions();
  auto full = BuildCadView(TableSlice::All(*table_), o);
  o.feature_selection_sample = 800;
  auto sampled = BuildCadView(TableSlice::All(*table_), o);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(full->compare_attrs[0].name, sampled->compare_attrs[0].name);
}

TEST_F(CadViewTest, ClusteringSampleStillYieldsIUnits) {
  CadViewOptions o = BaseOptions();
  o.clustering_sample = 200;
  auto view = BuildCadView(TableSlice::All(*table_), o);
  ASSERT_TRUE(view.ok());
  for (const CadViewRow& r : view->rows) {
    EXPECT_GE(r.iunits.size(), 1u);
    for (const IUnit& u : r.iunits) {
      EXPECT_LE(u.size(), 200u);
    }
  }
}

TEST_F(CadViewTest, AdaptiveLReducesCandidates) {
  CadViewOptions o = BaseOptions();
  o.adaptive_l = true;
  o.adaptive_l_threshold = 1;  // force the adaptive path
  auto view = BuildCadView(TableSlice::All(*table_), o);
  ASSERT_TRUE(view.ok());
  // l collapses to k; at most k IUnits still delivered.
  for (const CadViewRow& r : view->rows) {
    EXPECT_LE(r.iunits.size(), o.iunits_per_value);
  }
}

TEST_F(CadViewTest, ParallelBuildMatchesSerial) {
  CadViewOptions serial = BaseOptions();
  CadViewOptions parallel = BaseOptions();
  parallel.num_threads = 4;
  auto a = BuildCadView(TableSlice::All(*table_), serial);
  auto b = BuildCadView(TableSlice::All(*table_), parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(RenderCadView(*a), RenderCadView(*b));
}

TEST_F(CadViewTest, AutoLSelectsQualityClustering) {
  CadViewOptions o = BaseOptions();
  o.auto_l = true;
  o.auto_l_max_factor = 2.0;
  auto view = BuildCadView(TableSlice::All(*table_), o);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  for (const CadViewRow& r : view->rows) {
    EXPECT_GE(r.iunits.size(), 1u);
    EXPECT_LE(r.iunits.size(), o.iunits_per_value);
  }
  // Deterministic like everything else.
  auto again = BuildCadView(TableSlice::All(*table_), o);
  ASSERT_TRUE(again.ok());
  for (size_t r = 0; r < view->rows.size(); ++r) {
    ASSERT_EQ(view->rows[r].iunits.size(), again->rows[r].iunits.size());
    for (size_t u = 0; u < view->rows[r].iunits.size(); ++u) {
      EXPECT_EQ(view->rows[r].iunits[u].size(),
                again->rows[r].iunits[u].size());
    }
  }
}

TEST_F(CadViewTest, DeterministicForSeed) {
  auto a = BuildCadView(TableSlice::All(*table_), BaseOptions());
  auto b = BuildCadView(TableSlice::All(*table_), BaseOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(RenderCadView(*a), RenderCadView(*b));
}

// --- Thread-count determinism -----------------------------------------------
//
// The thread-pool contract: for ANY num_threads the built CAD View is
// byte-identical to the single-threaded build. Serialize via cad_view_io with
// timings zeroed (wall-clock timings are the one legitimately run-varying
// field in the JSON).

std::string SerializeStable(CadView view) {
  view.timings = CadViewTimings{};
  return CadViewToJson(view) + "\n---\n" + CadViewToCsv(view);
}

void ExpectByteIdenticalAcrossThreadCounts(const Table& table,
                                           CadViewOptions options) {
  options.num_threads = 1;
  auto baseline = BuildCadView(TableSlice::All(table), options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string expected = SerializeStable(*baseline);
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}, TestThreads(4)}) {
    options.num_threads = threads;
    auto view = BuildCadView(TableSlice::All(table), options);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(SerializeStable(*view), expected)
        << "num_threads=" << threads << " diverged from serial build";
  }
}

TEST(CadViewDeterminismTest, MushroomByteIdenticalAcrossThreadCounts) {
  Table table = GenerateMushrooms(2000);
  CadViewOptions o;
  o.pivot_attr = "Class";
  o.max_compare_attrs = 4;
  o.iunits_per_value = 3;
  o.seed = 7;
  ExpectByteIdenticalAcrossThreadCounts(table, o);
}

TEST(CadViewDeterminismTest, SyntheticByteIdenticalAcrossThreadCounts) {
  SyntheticSpec spec;
  spec.rows = 3000;
  spec.categorical_attrs = 8;
  spec.numeric_attrs = 2;
  spec.cardinality = 6;
  spec.clusters = 5;
  spec.seed = 19;
  auto table = GenerateSynthetic(spec);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  CadViewOptions o;
  o.pivot_attr = "C0";
  o.max_compare_attrs = 5;
  o.iunits_per_value = 3;
  o.seed = 7;
  ExpectByteIdenticalAcrossThreadCounts(*table, o);
}

// The flagship sharding invariant (ISSUE 7 / DESIGN.md §13): the sharded
// out-of-core build path must produce the unsharded build's exact bytes at
// EVERY shard x thread combination. Mushroom rides with the default
// min_rows_per_shard clamp disabled so 8 shards on 8124 rows is a real
// 8-way split, not a silent clamp to 1.
void ExpectByteIdenticalAcrossShardGrid(const Table& table,
                                        CadViewOptions options) {
  options.num_threads = 1;
  options.sharding = ShardOptions{};
  auto baseline = BuildCadView(TableSlice::All(table), options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string expected = SerializeStable(*baseline);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                        TestShards(2)}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      options.sharding.num_shards = shards;
      options.sharding.min_rows_per_shard = 1;
      options.num_threads = threads;
      auto view = BuildCadView(TableSlice::All(table), options);
      ASSERT_TRUE(view.ok()) << view.status().ToString();
      EXPECT_EQ(SerializeStable(*view), expected)
          << "num_shards=" << shards << " num_threads=" << threads
          << " diverged from the unsharded serial build";
    }
  }
}

TEST(CadViewDeterminismTest, UsedCars40KByteIdenticalAcrossShardGrid) {
  Table table = GenerateUsedCars(40000, 42);
  CadViewOptions o;
  o.pivot_attr = "Make";
  o.pivot_values = {"Chevrolet", "Ford", "Jeep", "Toyota", "Honda"};
  o.max_compare_attrs = 5;
  o.iunits_per_value = 3;
  o.seed = 7;
  ExpectByteIdenticalAcrossShardGrid(table, o);
}

TEST(CadViewDeterminismTest, MushroomByteIdenticalAcrossShardGrid) {
  Table table = GenerateMushrooms();
  CadViewOptions o;
  o.pivot_attr = "Class";
  o.max_compare_attrs = 4;
  o.iunits_per_value = 3;
  o.seed = 7;
  ExpectByteIdenticalAcrossShardGrid(table, o);
}

TEST(CadViewDeterminismTest, SampledFeatureSelectionPathByteIdentical) {
  // feature_selection_sample routes through the builder's sampled scoring
  // loop, which is itself parallelized — cover it explicitly.
  Table table = GenerateMushrooms(2000);
  CadViewOptions o;
  o.pivot_attr = "Class";
  o.max_compare_attrs = 4;
  o.iunits_per_value = 3;
  o.seed = 7;
  o.feature_selection_sample = 600;
  ExpectByteIdenticalAcrossThreadCounts(table, o);
}

TEST(CadViewDeterminismTest, TracingDoesNotPerturbBytes) {
  // The observability contract: an enabled tracer collecting every stage span
  // changes no output byte at any thread count, and a traced build matches an
  // untraced one exactly.
  Table table = GenerateMushrooms(2000);
  CadViewOptions o;
  o.pivot_attr = "Class";
  o.max_compare_attrs = 4;
  o.iunits_per_value = 3;
  o.seed = 7;

  o.num_threads = 1;
  auto untraced = BuildCadView(TableSlice::All(table), o);
  ASSERT_TRUE(untraced.ok()) << untraced.status().ToString();
  const std::string expected = SerializeStable(*untraced);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, TestThreads(4)}) {
    Tracer tracer;
    o.num_threads = threads;
    o.tracer = &tracer;
    auto view = BuildCadView(TableSlice::All(table), o);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(SerializeStable(*view), expected)
        << "num_threads=" << threads << " with tracing diverged";
    // The pipeline actually recorded spans (tracing was really on), and the
    // per-partition stages nest under the iunit_gen umbrella span.
    std::vector<TraceEvent> events = tracer.Events();
    EXPECT_FALSE(events.empty());
    uint64_t iunit_gen_id = 0;
    for (const TraceEvent& e : events) {
      if (e.name == "iunit_gen") iunit_gen_id = e.id;
    }
    ASSERT_NE(iunit_gen_id, 0u) << "missing iunit_gen span";
    size_t nested_kmeans = 0;
    for (const TraceEvent& e : events) {
      if (e.name == "kmeans" && e.parent == iunit_gen_id) ++nested_kmeans;
    }
    EXPECT_GT(nested_kmeans, 0u);
  }
  o.tracer = Tracer::Disabled();
}

TEST(CadViewDeterminismTest, KMeansIdenticalAcrossThreadCounts) {
  // > kAssignGrain (1024) points so the chunked reduction actually splits.
  Table table = GenerateMushrooms(3000);
  auto dt = DiscretizedTable::Build(TableSlice::All(table),
                                    DiscretizerOptions{});
  ASSERT_TRUE(dt.ok()) << dt.status().ToString();
  std::vector<size_t> attrs = {1, 2, 3, 4};
  auto encoder = OneHotEncoder::Plan(*dt, attrs);
  ASSERT_TRUE(encoder.ok()) << encoder.status().ToString();
  std::vector<size_t> rows(dt->num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  EncodedMatrix points = encoder->Encode(*dt, rows);

  KMeansOptions ko;
  ko.k = 6;
  ko.seed = 13;
  ko.num_threads = 1;
  auto baseline = RunKMeans(points, ko);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    ko.num_threads = threads;
    auto res = RunKMeans(points, ko);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res->assignments, baseline->assignments)
        << "num_threads=" << threads;
    EXPECT_EQ(res->iterations, baseline->iterations);
    ASSERT_EQ(res->centroids.size(), baseline->centroids.size());
    for (size_t i = 0; i < res->centroids.size(); ++i) {
      // Exact equality, not near: the chunk-ordered reduction must reproduce
      // the serial floating-point sums bit for bit.
      EXPECT_EQ(res->centroids[i], baseline->centroids[i])
          << "centroid component " << i << " num_threads=" << threads;
    }
    EXPECT_EQ(res->inertia, baseline->inertia);
  }
}

TEST(CadViewDeterminismTest, FeatureRankingIdenticalAcrossThreadCounts) {
  Table table = GenerateMushrooms(2000);
  auto dt = DiscretizedTable::Build(TableSlice::All(table),
                                    DiscretizerOptions{});
  ASSERT_TRUE(dt.ok()) << dt.status().ToString();
  auto class_idx = dt->IndexOf("Class");
  ASSERT_TRUE(class_idx.has_value());
  const DiscreteAttr& pivot = dt->attr(*class_idx);
  std::vector<size_t> candidates;
  for (size_t a = 0; a < dt->num_attrs(); ++a) {
    if (a != *class_idx) candidates.push_back(a);
  }

  FeatureSelectionOptions fo;
  fo.num_threads = 1;
  auto baseline =
      RankFeatures(*dt, pivot.codes, pivot.cardinality(), candidates, fo);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    fo.num_threads = threads;
    auto ranked =
        RankFeatures(*dt, pivot.codes, pivot.cardinality(), candidates, fo);
    ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
    ASSERT_EQ(ranked->size(), baseline->size());
    for (size_t i = 0; i < ranked->size(); ++i) {
      EXPECT_EQ((*ranked)[i].attr_index, (*baseline)[i].attr_index)
          << "rank " << i << " num_threads=" << threads;
      EXPECT_EQ((*ranked)[i].name, (*baseline)[i].name);
      EXPECT_EQ((*ranked)[i].score, (*baseline)[i].score);
      EXPECT_EQ((*ranked)[i].chi2, (*baseline)[i].chi2);
      EXPECT_EQ((*ranked)[i].p_value, (*baseline)[i].p_value);
      EXPECT_EQ((*ranked)[i].significant, (*baseline)[i].significant);
    }
  }
}

TEST_F(CadViewTest, CustomPreferenceFunctionChangesRanking) {
  CadViewOptions o = BaseOptions();
  o.user_compare_attrs = {"Price"};
  // Taxi-fleet manager: prefer clusters whose Price representative is the
  // cheapest bin (paper §2.2.2's preference-function discussion).
  o.preference = [](const IUnit& u) {
    if (u.cells.empty() || u.cells[0].codes.empty()) return 0.0;
    return -static_cast<double>(u.cells[0].codes[0]);
  };
  auto view = BuildCadView(TableSlice::All(*table_), o);
  ASSERT_TRUE(view.ok());
  for (const CadViewRow& r : view->rows) {
    for (size_t i = 1; i < r.iunits.size(); ++i) {
      EXPECT_GE(r.iunits[i - 1].score, r.iunits[i].score);
    }
  }
}

// --- Session-scoped view cache: drill-down replay regression -----------------
//
// The cache contract: for ANY cache state (absent, cold, warm, partially
// evicted) and ANY thread count, every view a session serves is byte-identical
// to the uncached single-threaded build. A fixed 10-step TPFacet script —
// selects, a widen, an undo, a deselect, pivot-value restriction — is replayed
// under each configuration and compared step by step via SerializeStable.

// `rank`-th most frequent label of `attr` in the facet domain (ties broken by
// code), so the script adapts to the generated data instead of hard-coding
// generator internals.
std::string FrequentLabel(const DiscretizedTable& dt, const std::string& attr,
                          size_t rank) {
  auto idx = dt.IndexOf(attr);
  EXPECT_TRUE(idx.has_value()) << attr;
  const DiscreteAttr& a = dt.attr(*idx);
  std::vector<size_t> counts(a.cardinality(), 0);
  for (int32_t code : a.codes) {
    if (code >= 0) ++counts[static_cast<size_t>(code)];
  }
  std::vector<int32_t> order(a.cardinality());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
  std::sort(order.begin(), order.end(), [&](int32_t x, int32_t y) {
    if (counts[x] != counts[y]) return counts[x] > counts[y];
    return x < y;
  });
  EXPECT_LT(rank, order.size()) << attr;
  return a.labels[order[rank]];
}

// Replays the fixed drill-down script and returns the serialized view after
// every step. `cache` == nullptr replays uncached.
std::vector<std::string> ReplayDrillDown(const Table& table,
                                         const std::shared_ptr<ViewCache>& cache,
                                         size_t num_threads) {
  CadViewOptions o;
  o.max_compare_attrs = 4;
  o.iunits_per_value = 2;
  o.seed = 7;
  o.num_threads = num_threads;
  auto session = TpFacetSession::Create(&table, DiscretizerOptions{}, o);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  if (!session.ok()) return {};
  if (cache != nullptr) session->SetViewCache(cache, "mushroom");

  const DiscretizedTable& dt = session->facets().discretized();
  const std::string odor0 = FrequentLabel(dt, "Odor", 0);
  const std::string odor1 = FrequentLabel(dt, "Odor", 1);
  const std::string bruises = FrequentLabel(dt, "Bruises", 0);
  const std::string gill = FrequentLabel(dt, "GillColor", 0);
  const std::string spore = FrequentLabel(dt, "SporePrintColor", 0);
  const std::string pclass = FrequentLabel(dt, "Class", 0);

  TpFacetSession& s = *session;
  const std::vector<std::pair<const char*, std::function<Status()>>> script = {
      {"pivot Class", [&] { return s.SetPivot("Class"); }},
      {"select Odor#0", [&] { return s.SelectValue("Odor", odor0); }},
      {"widen Odor#1", [&] { return s.SelectValue("Odor", odor1); }},
      {"select Bruises#0", [&] { return s.SelectValue("Bruises", bruises); }},
      {"select GillColor#0", [&] { return s.SelectValue("GillColor", gill); }},
      {"undo", [&] { return s.Undo(); }},
      {"select SporePrint#0",
       [&] { return s.SelectValue("SporePrintColor", spore); }},
      {"deselect Odor#1", [&] { return s.DeselectValue("Odor", odor1); }},
      {"restrict pivot values",
       [&] {
         s.SetPivotValues({pclass});
         return Status::OK();
       }},
      {"all pivot values",
       [&] {
         s.SetPivotValues({});
         return Status::OK();
       }},
  };

  std::vector<std::string> serialized;
  for (const auto& [name, step] : script) {
    Status st = step();
    EXPECT_TRUE(st.ok()) << name << ": " << st.ToString();
    if (!st.ok()) return serialized;
    auto view = s.View();
    EXPECT_TRUE(view.ok()) << name << ": " << view.status().ToString();
    if (!view.ok()) return serialized;
    serialized.push_back(SerializeStable(**view));
  }
  return serialized;
}

TEST(ViewCacheDrillDownTest, ColdAndWarmCacheByteIdenticalAcrossThreads) {
  Table table = GenerateMushrooms(1200);
  const std::vector<std::string> baseline = ReplayDrillDown(table, nullptr, 1);
  ASSERT_EQ(baseline.size(), 10u);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    // Uncached replay at this thread count reproduces the serial baseline.
    EXPECT_EQ(ReplayDrillDown(table, nullptr, threads), baseline);

    // Cold cache: every step builds (or drill-back-hits) and inserts.
    auto cache = std::make_shared<ViewCache>();
    EXPECT_EQ(ReplayDrillDown(table, cache, threads), baseline);
    const ViewCacheStats cold = cache->stats();
    EXPECT_GT(cold.inserts, 0u);
    // The undo step returns to an already-cached context.
    EXPECT_GT(cold.hits, 0u);
    // Step 2 strictly refines step 1's empty selection: the rebuild was
    // seeded from cached partition row lists.
    EXPECT_GT(cold.refinement_seeds, 0u);

    // Warm: a fresh session sharing the populated cache serves hits only.
    EXPECT_EQ(ReplayDrillDown(table, cache, threads), baseline);
    const ViewCacheStats warm = cache->stats();
    EXPECT_GT(warm.hits, cold.hits);
    EXPECT_EQ(warm.misses, cold.misses);
  }
}

TEST(ViewCacheDrillDownTest, PartiallyEvictedCacheStaysByteIdentical) {
  Table table = GenerateMushrooms(1200);
  const std::vector<std::string> baseline = ReplayDrillDown(table, nullptr, 1);
  ASSERT_EQ(baseline.size(), 10u);

  // A budget far below the script's working set forces eviction churn: some
  // steps hit, some rebuild, and the interleaving must not leak into output.
  auto cache = std::make_shared<ViewCache>(48u * 1024);
  EXPECT_EQ(ReplayDrillDown(table, cache, 1), baseline);
  EXPECT_EQ(ReplayDrillDown(table, cache, 2), baseline);
  const ViewCacheStats stats = cache->stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_in_use, stats.byte_budget);
}

TEST(ViewCacheDrillDownTest, InvalidationForcesRebuildWithIdenticalOutput) {
  Table table = GenerateMushrooms(1200);
  const std::vector<std::string> baseline = ReplayDrillDown(table, nullptr, 1);
  ASSERT_EQ(baseline.size(), 10u);

  auto cache = std::make_shared<ViewCache>();
  EXPECT_EQ(ReplayDrillDown(table, cache, 1), baseline);
  cache->InvalidateDataset("mushroom");
  EXPECT_EQ(cache->stats().entries, 0u);
  EXPECT_EQ(ReplayDrillDown(table, cache, 1), baseline);
}

}  // namespace
}  // namespace dbx
