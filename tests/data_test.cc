// Tests for the synthetic datasets: shapes, determinism, and the statistical
// structure the paper's experiments rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/data/dataset.h"
#include "src/data/hotels.h"
#include "src/data/synthetic.h"
#include "src/data/mushroom.h"
#include "src/data/used_cars.h"
#include "src/stats/contingency.h"
#include "src/stats/discretizer.h"

namespace dbx {
namespace {

// --- UsedCars ------------------------------------------------------------------

TEST(UsedCarsTest, ShapeMatchesPaper) {
  Table t = GenerateUsedCars(1000, 7);
  EXPECT_EQ(t.num_rows(), 1000u);
  EXPECT_EQ(t.num_cols(), 11u);
  EXPECT_TRUE(t.schema().Contains("Make"));
  EXPECT_TRUE(t.schema().Contains("Price"));
  EXPECT_TRUE(t.schema().Contains("Mileage"));
}

TEST(UsedCarsTest, EngineIsHiddenAttribute) {
  Schema s = UsedCarSchema();
  auto idx = s.IndexOf("Engine");
  ASSERT_TRUE(idx.has_value());
  EXPECT_FALSE(s.attr(*idx).queriable);  // Limitation 2 substrate
}

TEST(UsedCarsTest, DeterministicForSeed) {
  Table a = GenerateUsedCars(500, 42);
  Table b = GenerateUsedCars(500, 42);
  for (size_t r = 0; r < 500; r += 37) {
    for (size_t c = 0; c < a.num_cols(); ++c) {
      EXPECT_EQ(a.At(r, c).ToDisplay(), b.At(r, c).ToDisplay());
    }
  }
  Table c = GenerateUsedCars(500, 43);
  bool differs = false;
  for (size_t r = 0; r < 500 && !differs; ++r) {
    differs = a.At(r, 0).ToDisplay() != c.At(r, 0).ToDisplay();
  }
  EXPECT_TRUE(differs);
}

TEST(UsedCarsTest, ValueSanity) {
  Table t = GenerateUsedCars(3000, 7);
  auto price = *t.ColByName("Price");
  auto mileage = *t.ColByName("Mileage");
  auto year = *t.ColByName("Year");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_GE(price->NumberAt(r), 3000.0);
    EXPECT_GE(mileage->NumberAt(r), 0.0);
    EXPECT_GE(year->NumberAt(r), 2008.0);
    EXPECT_LE(year->NumberAt(r), 2013.0);
  }
}

TEST(UsedCarsTest, MakeDeterminesModel) {
  Table t = GenerateUsedCars(5000, 7);
  auto make = *t.ColByName("Make");
  auto model = *t.ColByName("Model");
  std::map<std::string, std::string> model_to_make;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string mk = make->ValueAt(r).AsString();
    std::string md = model->ValueAt(r).AsString();
    auto [it, inserted] = model_to_make.emplace(md, mk);
    EXPECT_EQ(it->second, mk) << "model " << md << " spans makes";
  }
  EXPECT_GT(model_to_make.size(), 30u);
}

TEST(UsedCarsTest, Table1MakesPresentWithSuvs) {
  Table t = GenerateUsedCars(10000, 7);
  auto make = *t.ColByName("Make");
  auto body = *t.ColByName("BodyType");
  std::set<std::string> suv_makes;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (body->ValueAt(r).AsString() == "SUV") {
      suv_makes.insert(make->ValueAt(r).AsString());
    }
  }
  for (const char* m : {"Chevrolet", "Ford", "Jeep", "Toyota", "Honda"}) {
    EXPECT_TRUE(suv_makes.count(m)) << m;
  }
}

TEST(UsedCarsTest, OlderCarsHaveMoreMiles) {
  Table t = GenerateUsedCars(8000, 7);
  auto mileage = *t.ColByName("Mileage");
  auto year = *t.ColByName("Year");
  double old_sum = 0, new_sum = 0;
  size_t old_n = 0, new_n = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (year->NumberAt(r) <= 2009) {
      old_sum += mileage->NumberAt(r);
      ++old_n;
    } else if (year->NumberAt(r) >= 2012) {
      new_sum += mileage->NumberAt(r);
      ++new_n;
    }
  }
  ASSERT_GT(old_n, 0u);
  ASSERT_GT(new_n, 0u);
  EXPECT_GT(old_sum / old_n, new_sum / new_n + 10000.0);
}

TEST(UsedCarsTest, MakeCardinalityLongTail) {
  Table t = GenerateUsedCars(20000, 7);
  auto make = *t.ColByName("Make");
  EXPECT_GE(make->DictSize(), 20u);
}

// --- Mushroom ------------------------------------------------------------------

TEST(MushroomTest, ShapeMatchesUci) {
  Table t = GenerateMushrooms(2000, 11);
  EXPECT_EQ(t.num_rows(), 2000u);
  EXPECT_EQ(t.num_cols(), 23u);
  EXPECT_TRUE(t.schema().Contains("Class"));
  EXPECT_TRUE(t.schema().Contains("Odor"));
  EXPECT_TRUE(t.schema().Contains("SporePrintColor"));
  for (const auto& a : t.schema().attrs()) {
    EXPECT_EQ(a.type, AttrType::kCategorical);
  }
}

TEST(MushroomTest, ClassBalanceRoughlyUci) {
  Table t = GenerateMushrooms(8124, 11);
  auto cls = *t.ColByName("Class");
  size_t edible = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (cls->ValueAt(r).AsString() == "edible") ++edible;
  }
  double frac = static_cast<double>(edible) / t.num_rows();
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.70);
}

TEST(MushroomTest, OdorStronglyPredictsClass) {
  Table t = GenerateMushrooms(6000, 11);
  auto dt = DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{});
  ASSERT_TRUE(dt.ok());
  auto cls_idx = dt->IndexOf("Class");
  auto odor_idx = dt->IndexOf("Odor");
  auto veil_idx = dt->IndexOf("VeilColor");
  ContingencyTable odor_ct = ContingencyTable::FromCodes(
      dt->attr(*cls_idx).codes, 2, dt->attr(*odor_idx).codes,
      dt->attr(*odor_idx).cardinality());
  ContingencyTable veil_ct = ContingencyTable::FromCodes(
      dt->attr(*cls_idx).codes, 2, dt->attr(*veil_idx).codes,
      dt->attr(*veil_idx).cardinality());
  EXPECT_GT(CramersV(odor_ct), 0.8);
  EXPECT_GT(CramersV(odor_ct), CramersV(veil_ct) + 0.3);
}

TEST(MushroomTest, FoulOdorMushroomsArePoisonous) {
  Table t = GenerateMushrooms(6000, 11);
  auto cls = *t.ColByName("Class");
  auto odor = *t.ColByName("Odor");
  size_t foul = 0, foul_poison = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (odor->ValueAt(r).AsString() == "foul") {
      ++foul;
      if (cls->ValueAt(r).AsString() == "poisonous") ++foul_poison;
    }
  }
  ASSERT_GT(foul, 100u);
  EXPECT_GT(static_cast<double>(foul_poison) / foul, 0.95);
}

TEST(MushroomTest, TaskConditionsNonEmpty) {
  // The study's alternative-condition targets must select something.
  Table t = GenerateMushrooms(8124, 11);
  auto stalk = *t.ColByName("StalkShape");
  auto spore = *t.ColByName("SporePrintColor");
  size_t hits = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (stalk->ValueAt(r).AsString() == "enlarged" &&
        spore->ValueAt(r).AsString() == "chocolate") {
      ++hits;
    }
  }
  EXPECT_GT(hits, 50u);
}

TEST(MushroomTest, Deterministic) {
  Table a = GenerateMushrooms(300, 5);
  Table b = GenerateMushrooms(300, 5);
  for (size_t r = 0; r < 300; r += 17) {
    for (size_t c = 0; c < a.num_cols(); ++c) {
      EXPECT_EQ(a.At(r, c).ToDisplay(), b.At(r, c).ToDisplay());
    }
  }
}

// --- Hotels --------------------------------------------------------------------

TEST(HotelsTest, ShapeAndDomains) {
  Table t = GenerateHotels(2000, 21);
  EXPECT_EQ(t.num_rows(), 2000u);
  EXPECT_EQ(t.num_cols(), 10u);
  auto stars = *t.ColByName("Stars");
  auto price = *t.ColByName("Price");
  auto dist = *t.ColByName("DistanceToCenter");
  auto review = *t.ColByName("ReviewScore");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_GT(price->NumberAt(r), 0.0);
    EXPECT_GT(dist->NumberAt(r), 0.0);
    EXPECT_GE(review->NumberAt(r), 2.0);
    EXPECT_LE(review->NumberAt(r), 10.0);
  }
  EXPECT_GE(stars->DictSize(), 5u);  // "1".."5" + "unrated"
}

TEST(HotelsTest, FiveStarsClusterInFinancialDistrict) {
  // The intro's observation: the 5-star hotels concentrate in the financial
  // district.
  Table t = GenerateHotels(6000, 21);
  auto stars = *t.ColByName("Stars");
  auto district = *t.ColByName("District");
  std::map<std::string, size_t> five_star_by_district;
  size_t five_total = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (stars->ValueAt(r).AsString() == "5") {
      ++five_star_by_district[district->ValueAt(r).AsString()];
      ++five_total;
    }
  }
  ASSERT_GT(five_total, 50u);
  EXPECT_GT(static_cast<double>(five_star_by_district["Financial"]) /
                static_cast<double>(five_total),
            0.35);
}

TEST(HotelsTest, LocationPriceTradeoffForHotelsNotHostels) {
  Table t = GenerateHotels(6000, 21);
  auto type = *t.ColByName("PropertyType");
  auto price = *t.ColByName("Price");
  auto dist = *t.ColByName("DistanceToCenter");
  // Pearson correlation of price vs distance, split by segment.
  auto corr = [&](bool hostel) {
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0, n = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      bool is_hostel = type->ValueAt(r).AsString() == "Hostel";
      if (is_hostel != hostel) continue;
      double x = dist->NumberAt(r), y = price->NumberAt(r);
      sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y; ++n;
    }
    double cov = sxy / n - (sx / n) * (sy / n);
    double vx = sxx / n - (sx / n) * (sx / n);
    double vy = syy / n - (sy / n) * (sy / n);
    return cov / std::sqrt(vx * vy);
  };
  double hotel_corr = corr(false);
  double hostel_corr = corr(true);
  EXPECT_LT(hotel_corr, -0.15);                    // central hotels cost more
  EXPECT_LT(std::fabs(hostel_corr), 0.12);         // hostels decoupled
}

TEST(HotelsTest, Deterministic) {
  Table a = GenerateHotels(200, 4);
  Table b = GenerateHotels(200, 4);
  for (size_t r = 0; r < 200; r += 13) {
    for (size_t c = 0; c < a.num_cols(); ++c) {
      EXPECT_EQ(a.At(r, c).ToDisplay(), b.At(r, c).ToDisplay());
    }
  }
}

// --- Synthetic wide tables ---------------------------------------------------------

TEST(SyntheticTest, ShapeFollowsSpec) {
  SyntheticSpec spec;
  spec.rows = 500;
  spec.categorical_attrs = 7;
  spec.numeric_attrs = 3;
  spec.cardinality = 5;
  auto t = GenerateSynthetic(spec);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 500u);
  EXPECT_EQ(t->num_cols(), 10u);
  EXPECT_EQ(t->schema().attr(0).name, "C0");
  EXPECT_EQ(t->schema().attr(7).type, AttrType::kNumeric);
  auto c1 = *t->ColByName("C1");
  EXPECT_LE(c1->DictSize(), 5u);
}

TEST(SyntheticTest, FidelityControlsClusterStructure) {
  auto purity_of = [](double fidelity) {
    SyntheticSpec spec;
    spec.rows = 3000;
    spec.categorical_attrs = 6;
    spec.cluster_fidelity = fidelity;
    spec.clusters = 4;
    Table t = std::move(GenerateSynthetic(spec)).value();
    // Fraction of C1 cells equal to the modal value of their C0 cluster.
    auto c0 = *t.ColByName("C0");
    auto c1 = *t.ColByName("C1");
    std::map<std::string, std::map<std::string, size_t>> counts;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      ++counts[c0->ValueAt(r).AsString()][c1->ValueAt(r).AsString()];
    }
    size_t modal = 0;
    for (const auto& [cluster, dist] : counts) {
      size_t best = 0;
      for (const auto& [value, n] : dist) best = std::max(best, n);
      modal += best;
    }
    return static_cast<double>(modal) / static_cast<double>(t.num_rows());
  };
  EXPECT_GT(purity_of(0.95), purity_of(0.3) + 0.2);
}

TEST(SyntheticTest, DegenerateSpecsRejected) {
  SyntheticSpec spec;
  spec.rows = 0;
  EXPECT_TRUE(GenerateSynthetic(spec).status().IsInvalidArgument());
  spec = SyntheticSpec{};
  spec.cardinality = 1;
  EXPECT_TRUE(GenerateSynthetic(spec).status().IsInvalidArgument());
  spec = SyntheticSpec{};
  spec.cluster_fidelity = 1.5;
  EXPECT_TRUE(GenerateSynthetic(spec).status().IsInvalidArgument());
  spec = SyntheticSpec{};
  spec.categorical_attrs = 0;
  EXPECT_TRUE(GenerateSynthetic(spec).status().IsInvalidArgument());
}

TEST(SyntheticTest, Deterministic) {
  SyntheticSpec spec;
  spec.rows = 200;
  auto a = GenerateSynthetic(spec);
  auto b = GenerateSynthetic(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t r = 0; r < 200; r += 11) {
    for (size_t c = 0; c < a->num_cols(); ++c) {
      EXPECT_EQ(a->At(r, c).ToDisplay(), b->At(r, c).ToDisplay());
    }
  }
}

// --- Scaled used-car generator ---------------------------------------------------

// Golden row fingerprints (FNV-1a over rendered values, schema order) pin the
// scaled generator's output at two scales. Per-row seeding makes each row
// O(1) to reach, so a 1M-scale golden costs microseconds, and the prefix
// property means the 10K goldens are literally rows of every larger instance
// with the same seed.
constexpr uint64_t kScaled10KSeed = 7;

TEST(ScaledUsedCarsTest, PrefixProperty) {
  ScaledUsedCars small(100, kScaled10KSeed);
  ScaledUsedCars large(100000, kScaled10KSeed);
  for (size_t i : {size_t{0}, size_t{1}, size_t{42}, size_t{99}}) {
    EXPECT_EQ(small.RowFingerprint(i), large.RowFingerprint(i)) << "row " << i;
  }
}

TEST(ScaledUsedCarsTest, MaterializeMatchesGenerateRow) {
  ScaledUsedCars gen(300, 5);
  auto table = gen.Materialize();
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 300u);
  ASSERT_EQ(table->num_cols(), 11u);
  for (size_t i = 0; i < 300; i += 29) {
    UsedCarRow r = gen.GenerateRow(i);
    const UsedCarModelSpec& m = UsedCarModels()[r.model_idx];
    EXPECT_EQ(table->At(i, 0).AsString(), m.make);
    EXPECT_EQ(table->At(i, 1).AsString(), m.model);
    EXPECT_EQ(table->At(i, 6).AsNumber(), r.price);
    EXPECT_EQ(table->At(i, 8).AsNumber(), static_cast<double>(r.year));
  }
}

TEST(ScaledUsedCarsTest, GoldenFingerprints10K) {
  ScaledUsedCars gen(10000, kScaled10KSeed);
  EXPECT_EQ(gen.RowFingerprint(0), 8729064608167067213ULL);
  EXPECT_EQ(gen.RowFingerprint(1), 14817515657620075477ULL);
  EXPECT_EQ(gen.RowFingerprint(9999), 14274994860044901425ULL);
  uint64_t agg = 0;
  for (size_t i = 0; i < gen.num_rows(); i += 97) {
    agg ^= gen.RowFingerprint(i);
  }
  EXPECT_EQ(agg, 17941898387973014028ULL);
}

TEST(ScaledUsedCarsTest, GoldenFingerprints1M) {
  ScaledUsedCars gen(1000000, kScaled10KSeed);
  // Same seed, larger scale: row 0 keeps the 10K fingerprint (prefix
  // property made observable in the goldens).
  EXPECT_EQ(gen.RowFingerprint(0), 8729064608167067213ULL);
  EXPECT_EQ(gen.RowFingerprint(123456), 5379093808169835640ULL);
  EXPECT_EQ(gen.RowFingerprint(999999), 11083188769024652066ULL);
  uint64_t agg = 0;
  for (size_t i = 0; i < gen.num_rows(); i += 9973) {
    agg ^= gen.RowFingerprint(i);
  }
  EXPECT_EQ(agg, 15573333469258059151ULL);
}

TEST(ScaledUsedCarsTest, StreamingDiscretizeMatchesBuildAcrossShards) {
  // With bin_sample == 0 the streaming discretization must equal
  // DiscretizedTable::Build over the materialized table byte for byte, at
  // every shard x thread combination.
  ScaledUsedCars gen(10000, kScaled10KSeed);
  auto table = gen.Materialize();
  ASSERT_TRUE(table.ok());
  auto built = DiscretizedTable::Build(TableSlice::All(*table),
                                       DiscretizerOptions{});
  ASSERT_TRUE(built.ok());

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ScaledDiscretizeOptions opts;
      opts.num_shards = shards;
      opts.num_threads = threads;
      opts.bin_sample = 0;
      auto streamed = gen.Discretize(opts);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      ASSERT_EQ(streamed->num_rows(), built->num_rows());
      ASSERT_EQ(streamed->num_attrs(), built->num_attrs());
      for (size_t a = 0; a < built->num_attrs(); ++a) {
        const DiscreteAttr& want = built->attr(a);
        const DiscreteAttr& got = streamed->attr(a);
        EXPECT_EQ(got.name, want.name);
        EXPECT_EQ(got.queriable, want.queriable);
        EXPECT_EQ(got.labels, want.labels)
            << "attr " << want.name << " shards=" << shards;
        EXPECT_EQ(got.codes, want.codes)
            << "attr " << want.name << " shards=" << shards
            << " threads=" << threads;
        EXPECT_EQ(got.bins.edges, want.bins.edges) << "attr " << want.name;
      }
    }
  }
}

TEST(ScaledUsedCarsTest, SampledBinsShardInvariant) {
  // bin_sample > 0 approximates the bin edges but must stay independent of
  // the shard decomposition.
  ScaledUsedCars gen(20000, 3);
  ScaledDiscretizeOptions opts;
  opts.bin_sample = 1024;
  opts.num_shards = 1;
  auto base = gen.Discretize(opts);
  ASSERT_TRUE(base.ok());
  for (size_t shards : {size_t{2}, size_t{8}}) {
    opts.num_shards = shards;
    opts.num_threads = 4;
    auto other = gen.Discretize(opts);
    ASSERT_TRUE(other.ok());
    for (size_t a = 0; a < base->num_attrs(); ++a) {
      EXPECT_EQ(other->attr(a).labels, base->attr(a).labels);
      EXPECT_EQ(other->attr(a).codes, base->attr(a).codes)
          << "attr " << base->attr(a).name << " shards=" << shards;
    }
  }
}

// --- Dataset registry ------------------------------------------------------------

TEST(DatasetTest, LoadByNameCaseInsensitive) {
  auto d = LoadDataset("usedcars", 100);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->name, "UsedCars");
  EXPECT_EQ(d->table->num_rows(), 100u);

  auto m = LoadDataset("MUSHROOM", 50);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->table->num_cols(), 23u);
}

TEST(DatasetTest, DefaultSizesMatchPaper) {
  auto d = LoadDataset("Mushroom");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->table->num_rows(), 8124u);
  auto h = LoadDataset("hotels");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->table->num_rows(), 6000u);
}

TEST(DatasetTest, UnknownNameFails) {
  EXPECT_TRUE(LoadDataset("nope").status().IsNotFound());
  EXPECT_EQ(BuiltinDatasetNames().size(), 3u);
}

}  // namespace
}  // namespace dbx
