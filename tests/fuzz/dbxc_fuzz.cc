// Copyright (c) DBExplorer reproduction authors.
// DBXC header-parser fuzz harness: arbitrary bytes thrown at the on-disk
// columnar format's reader (DESIGN.md §15). Whatever the input — a valid
// file, one flipped bit, a truncated prefix, binary garbage — the reader
// must
//   1. return a clean Status (never crash, hang, or trip a sanitizer),
//   2. never accept a file whose header checksum does not match, and
//   3. fully decode (dictionaries, code pages, numeric pages) anything it
//      does accept without out-of-bounds reads — the full-validation path
//      materializes every column of an accepted input.
// Crashes/aborts and sanitizer reports fail the run. Runs under libFuzzer
// with -DDBX_LIBFUZZER, or as a deterministic corpus+mutation smoke test
// (fuzz_driver.h).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "src/storage/dbxc_format.h"

namespace {

void Require(bool cond, const char* what) {
  if (cond) return;
  std::fprintf(stderr, "dbxc_fuzz: property violated: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string bytes(reinterpret_cast<const char*>(data), size);

  // Header-only parse: must never crash.
  auto header = dbx::storage::ParseDbxcHeader(bytes);

  // Full structural validation (adds the data checksum).
  dbx::Status valid = dbx::storage::ValidateDbxc(bytes);
  Require(header.ok() || !valid.ok(),
          "ValidateDbxc accepted what ParseDbxcHeader rejected");

  // Anything the reader accepts must decode end-to-end: every dictionary,
  // every packed code page (range-checked symbols), every numeric page.
  auto file = dbx::storage::DbxcTableFile::FromBytes(bytes);
  if (file.ok()) {
    for (size_t c = 0; c < file->num_cols(); ++c) {
      if (file->header().cols[c].type == dbx::AttrType::kCategorical) {
        auto dict = file->DictStrings(c);
        std::vector<int32_t> codes;
        dbx::Status decoded = file->DecodeCodes(c, &codes);
        if (dict.ok() && decoded.ok()) {
          Require(codes.size() == file->num_rows(),
                  "decoded codes not parallel to rows");
        }
      } else {
        std::vector<double> nums;
        (void)file->CopyNumbers(c, &nums);
      }
    }
    auto table = file->Materialize();
    if (table.ok()) {
      Require((*table)->num_rows() == file->num_rows(),
              "materialized row count disagrees with the header");
    }
  }
  return 0;
}

#include "tests/fuzz/fuzz_driver.h"
