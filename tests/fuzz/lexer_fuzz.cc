// Copyright (c) DBExplorer reproduction authors.
// Lexer fuzz harness: arbitrary bytes through dbx::Lex must produce a
// Result — never a crash, hang, or sanitizer report — and on success the
// token stream must satisfy the lexer's structural contract (non-empty,
// kEnd-terminated, in-bounds positions). Runs under libFuzzer when built
// with -DDBX_LIBFUZZER, and as a deterministic corpus+mutation smoke test
// otherwise (see fuzz_driver.h).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/query/lexer.h"
#include "src/query/token.h"

namespace {

void Require(bool cond, const char* what, const std::string& input) {
  if (cond) return;
  std::fprintf(stderr, "lexer_fuzz: property violated: %s\ninput (%zu bytes)\n",
               what, input.size());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string sql(reinterpret_cast<const char*>(data), size);
  auto tokens = dbx::Lex(sql);
  if (!tokens.ok()) {
    // Errors must carry a message; empty diagnostics are a contract break.
    Require(!tokens.status().message().empty(), "error without message", sql);
    return 0;
  }
  Require(!tokens->empty(), "empty token stream", sql);
  Require(tokens->back().type == dbx::TokenType::kEnd,
          "stream not kEnd-terminated", sql);
  for (const dbx::Token& t : *tokens) {
    Require(t.offset <= sql.size(), "token offset out of bounds", sql);
  }
  // Lexing is a pure function: a second pass must agree exactly.
  auto again = dbx::Lex(sql);
  Require(again.ok(), "second lex of identical input failed", sql);
  Require(again->size() == tokens->size(), "lex not deterministic", sql);
  return 0;
}

#include "tests/fuzz/fuzz_driver.h"
