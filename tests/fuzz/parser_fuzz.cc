// Copyright (c) DBExplorer reproduction authors.
// Parser fuzz harness: arbitrary bytes through dbx::ParseStatement must
// never crash, and every successfully parsed statement must satisfy the
// canonical-unparse fixed point pinned by src/query/canonical.h:
//
//   sql1 = StatementToSql(parse(input))       — must reparse successfully
//   sql2 = StatementToSql(parse(sql1))        — must equal sql1
//
// A divergence means the printer emits something the parser reads back
// differently — exactly the class of bug that would silently corrupt the
// view cache's canonical keys. Runs under libFuzzer with -DDBX_LIBFUZZER,
// or as a deterministic corpus+mutation smoke test (fuzz_driver.h).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/query/canonical.h"
#include "src/query/parser.h"

namespace {

void Require(bool cond, const char* what, const std::string& a,
             const std::string& b = "") {
  if (cond) return;
  std::fprintf(stderr, "parser_fuzz: property violated: %s\n first: %s\nsecond: %s\n",
               what, a.c_str(), b.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string sql(reinterpret_cast<const char*>(data), size);
  auto stmt = dbx::ParseStatement(sql);
  if (!stmt.ok()) {
    Require(!stmt.status().message().empty(), "error without message", sql);
    return 0;
  }
  std::string sql1 = dbx::StatementToSql(*stmt);
  auto reparsed = dbx::ParseStatement(sql1);
  Require(reparsed.ok(), "canonical form does not reparse", sql, sql1);
  std::string sql2 = dbx::StatementToSql(*reparsed);
  Require(sql1 == sql2, "canonical form is not a fixed point", sql1, sql2);
  return 0;
}

#include "tests/fuzz/fuzz_driver.h"
