SELECT  *   FROM	T
WHERE  a  =  1  ;