// Copyright (c) DBExplorer reproduction authors.
// Protocol-frame fuzz harness: arbitrary bytes thrown at a live Dispatcher
// over the loopback transport. Whatever the input — valid frame sequences,
// oversized declared lengths, truncated frames, binary garbage — the server
// must
//   1. answer with well-formed frames only (every payload decodes as a
//      protocol Response),
//   2. never poison the client-side decoder or truncate its own output, and
//   3. never leak a session (the connection scope reaps everything).
// Crashes/aborts and sanitizer reports fail the run. Runs under libFuzzer
// with -DDBX_LIBFUZZER, or as a deterministic corpus+mutation smoke test
// (fuzz_driver.h).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "src/data/used_cars.h"
#include "src/obs/metrics.h"
#include "src/server/dispatcher.h"
#include "src/server/protocol.h"
#include "src/server/transport.h"

namespace {

void Require(bool cond, const char* what) {
  if (cond) return;
  std::fprintf(stderr, "server_frame_fuzz: property violated: %s\n", what);
  std::abort();
}

/// One dispatcher across all inputs: the shared cache stays warm (valid
/// CREATE CADVIEW payloads would otherwise rebuild per input) and the
/// no-session-leak property is checked after every input.
dbx::server::Dispatcher* SharedDispatcher() {
  static dbx::server::Dispatcher* dispatcher = [] {
    static dbx::MetricsRegistry metrics;
    static dbx::Table table = dbx::GenerateUsedCars(150, 3);
    dbx::server::ServerOptions options;
    options.metrics = &metrics;
    options.max_sessions = 8;
    options.cache_budget_bytes = 1u << 20;
    options.session_cache_budget_bytes = 64u << 10;
    auto* d = new dbx::server::Dispatcher(std::move(options));
    d->RegisterTable("UsedCars", &table);
    return d;
  }();
  return dispatcher;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto* dispatcher = SharedDispatcher();
  auto [client, server] = dbx::server::LoopbackPair();
  dbx::Status written = client->Write(
      std::string_view(reinterpret_cast<const char*>(data), size));
  Require(written.ok(), "loopback write failed");
  client->CloseWrite();
  // Loopback buffers are unbounded, so the serve loop runs to completion
  // synchronously — deterministic, single-threaded.
  dispatcher->ServeConnection(server.get());

  dbx::server::FrameDecoder decoder;
  for (;;) {
    auto chunk = client->Read(64u << 10);
    Require(chunk.ok(), "loopback read failed");
    if (chunk->empty()) break;
    Require(decoder.Feed(*chunk).ok(), "server emitted an oversized frame");
  }
  while (auto payload = decoder.Next()) {
    Require(dbx::server::DecodeResponse(*payload).ok(),
            "server response payload is not a well-formed Response");
  }
  Require(!decoder.mid_frame(), "server truncated its own output");
  Require(dispatcher->session_count() == 0, "connection leaked a session");
  return 0;
}

#include "tests/fuzz/fuzz_driver.h"
