// Copyright (c) DBExplorer reproduction authors.
// Standalone driver for the dialect fuzz harnesses (DESIGN.md §11).
//
// Each harness defines the libFuzzer entry point
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
// When built with -DDBX_LIBFUZZER (clang + -fsanitize=fuzzer), libFuzzer
// provides main() and drives coverage-guided exploration. Everywhere else —
// including the gcc-only CI image — this header provides a deterministic
// main(): it replays every file in the seed corpus, then runs a fixed budget
// of seeded mutations (dbx::Rng, so the byte stream is identical on every
// machine and every run). That makes the fuzz smoke a regular ctest:
//
//   lexer_fuzz  --corpus DIR [--iters N] [--seed S] [--max-len L]
//
// Exit is nonzero when the corpus is missing/empty; harness property
// violations abort (the sanitizers or the test runner catch them).

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifndef DBX_LIBFUZZER

namespace dbx::fuzz {

/// Dialect fragments the mutator splices in, so random inputs reach past the
/// first keyword of the grammar instead of dying in the lexer.
inline const std::vector<std::string>& Dictionary() {
  static const std::vector<std::string> kDict = {
      "SELECT",    "FROM",      "WHERE",   "CREATE",  "CADVIEW", "AS",
      "SET",       "PIVOT",     "=",       "(",       ")",       ",",
      "*",         "AND",       "OR",      "NOT",     "IN",      "BETWEEN",
      "LIMIT",     "COLUMNS",   "IUNITS",  "ORDER",   "BY",      "GROUP",
      "COUNT",     "AVG",       "SUM",     "MIN",     "MAX",     "ASC",
      "DESC",      "HIGHLIGHT", "SIMILAR", "SIMILARITY",         "REORDER",
      "ROWS",      "DESCRIBE",  "SHOW",    "TABLES",  "CADVIEWS", "DROP",
      "EXPLAIN",   "ANALYZE",   "10K",     "1.5M",    "'str'",   "''",
      "3.5",       ";",         "!=",      "<=",      ">=",      "<",
      ">",         "T",         "v",       "Make",    "Price",   "a",
  };
  return kDict;
}

/// One deterministic mutation of `input` (byte edits or dictionary splices).
inline std::string Mutate(const std::string& input, Rng* rng, size_t max_len) {
  std::string s = input;
  size_t edits = 1 + rng->NextBounded(4);
  for (size_t e = 0; e < edits; ++e) {
    switch (rng->NextBounded(5)) {
      case 0:  // flip a byte
        if (!s.empty()) {
          s[rng->NextBounded(s.size())] =
              static_cast<char>(rng->NextBounded(256));
        }
        break;
      case 1:  // insert a random byte
        s.insert(s.begin() + static_cast<ptrdiff_t>(
                                 rng->NextBounded(s.size() + 1)),
                 static_cast<char>(rng->NextBounded(256)));
        break;
      case 2:  // delete a span
        if (!s.empty()) {
          size_t at = rng->NextBounded(s.size());
          size_t len = 1 + rng->NextBounded(8);
          s.erase(at, len);
        }
        break;
      case 3: {  // splice a dictionary token
        const std::string& tok =
            Dictionary()[rng->NextBounded(Dictionary().size())];
        size_t at = rng->NextBounded(s.size() + 1);
        s.insert(at, " " + tok + " ");
        break;
      }
      case 4:  // duplicate a span (stresses quadratic paths)
        if (!s.empty()) {
          size_t at = rng->NextBounded(s.size());
          size_t len = 1 + rng->NextBounded(16);
          s.insert(at, s.substr(at, len));
        }
        break;
    }
  }
  if (s.size() > max_len) s.resize(max_len);
  return s;
}

inline int RunStandalone(int argc, char** argv) {
  std::string corpus_dir;
  size_t iters = 10000;
  uint64_t seed = 1;
  size_t max_len = 4096;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--corpus") corpus_dir = next();
    else if (arg == "--iters") iters = static_cast<size_t>(atoll(next()));
    else if (arg == "--seed") seed = static_cast<uint64_t>(atoll(next()));
    else if (arg == "--max-len") max_len = static_cast<size_t>(atoll(next()));
    else {
      std::fprintf(stderr,
                   "usage: %s --corpus DIR [--iters N] [--seed S] "
                   "[--max-len L]\n",
                   argv[0]);
      return 2;
    }
  }
  if (corpus_dir.empty()) {
    std::fprintf(stderr, "fuzz driver: --corpus is required\n");
    return 2;
  }

  // Replay the corpus in sorted order (deterministic across filesystems).
  std::vector<std::string> corpus;
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus.push_back(buf.str());
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "fuzz driver: empty corpus at %s\n",
                 corpus_dir.c_str());
    return 2;
  }
  for (const std::string& input : corpus) {
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
  }

  // Seeded mutation budget: every run of the smoke test executes the exact
  // same input sequence.
  Rng rng(seed);
  for (size_t i = 0; i < iters; ++i) {
    const std::string& base = corpus[rng.NextBounded(corpus.size())];
    std::string mutated = Mutate(base, &rng, max_len);
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(mutated.data()), mutated.size());
  }
  std::printf("fuzz driver: %zu corpus entries + %zu mutations, no crash\n",
              corpus.size(), iters);
  return 0;
}

}  // namespace dbx::fuzz

int main(int argc, char** argv) {
  return dbx::fuzz::RunStandalone(argc, argv);
}

#endif  // DBX_LIBFUZZER
