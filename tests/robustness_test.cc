// Robustness suites: the parser must reject (never crash on) arbitrary token
// soup; the whole SQL surface must survive randomized statement mutation;
// renderers must handle degenerate views.

#include <gtest/gtest.h>

#include "src/core/cad_view_html.h"
#include "src/core/cad_view_io.h"
#include "src/core/cad_view_renderer.h"
#include "src/data/used_cars.h"
#include "src/query/engine.h"
#include "src/query/parser.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

// --- Parser fuzz -----------------------------------------------------------------

std::string RandomSqlSoup(Rng* rng, size_t tokens) {
  static const char* kPieces[] = {
      "SELECT", "FROM",   "WHERE",  "CREATE", "CADVIEW", "AS",     "SET",
      "pivot",  "=",      "(",      ")",      ",",       "*",      "AND",
      "OR",     "NOT",    "IN",     "BETWEEN", "LIMIT",  "COLUMNS", "IUNITS",
      "ORDER",  "BY",     "GROUP",  "COUNT",  "AVG",     "Make",   "Price",
      "10K",    "'str'",  "3.5",    ";",      "DESC",    "ASC",    "!=",
      "<",      ">",      "<=",     ">=",     "SIMILARITY", "HIGHLIGHT",
      "SIMILAR", "REORDER", "ROWS", "T",      "v",
  };
  std::string sql;
  for (size_t i = 0; i < tokens; ++i) {
    sql += kPieces[rng->NextBounded(std::size(kPieces))];
    sql += ' ';
  }
  return sql;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, NeverCrashesOnTokenSoup) {
  Rng rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    std::string sql = RandomSqlSoup(&rng, 1 + rng.NextBounded(24));
    auto stmt = ParseStatement(sql);  // must return, OK or error — not crash
    if (!stmt.ok()) {
      EXPECT_FALSE(stmt.status().message().empty()) << sql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ParserFuzzTest, PathologicalInputs) {
  // Deep nesting, long identifiers, weird characters, empty-ish strings.
  std::string deep(200, '(');
  deep += "a = 1";
  deep += std::string(200, ')');
  // Deep nesting must parse (recursive descent) without smashing the stack.
  auto r1 = ParseStatement("SELECT * FROM T WHERE " + deep);
  EXPECT_TRUE(r1.ok()) << r1.status().ToString();

  std::string long_ident(5000, 'x');
  auto r2 = ParseStatement("SELECT " + long_ident + " FROM T");
  ASSERT_TRUE(r2.ok());  // syntactically fine, name just unknown at exec

  EXPECT_FALSE(ParseStatement(std::string(1, '\0') + "SELECT").ok());
  EXPECT_FALSE(ParseStatement(";;;;;;").ok());
  EXPECT_FALSE(ParseStatement("((((((((").ok());
}

// Engine-level: random statements against a real table never crash and
// always produce Status or result.
class EngineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineFuzzTest, RandomStatementsReturnStatus) {
  static Table* table = new Table(GenerateUsedCars(500, 3));
  Engine engine;
  engine.RegisterTable("T", table);
  Rng rng(GetParam() * 977);
  for (int i = 0; i < 150; ++i) {
    std::string sql = RandomSqlSoup(&rng, 2 + rng.NextBounded(20));
    auto r = engine.ExecuteSql(sql);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest, ::testing::Values(1, 2, 3, 4));

// --- Degenerate view rendering ----------------------------------------------------

TEST(DegenerateViewTest, EmptyViewRendersEverywhere) {
  CadView empty;
  empty.pivot_attr = "X";
  EXPECT_FALSE(RenderCadView(empty).empty());
  EXPECT_FALSE(CadViewToJson(empty).empty());
  EXPECT_FALSE(RenderCadViewHtml(empty, HtmlRenderOptions{}).empty());
  EXPECT_EQ(CadViewToCsv(empty),
            "pivot_value,iunit_rank,score,size,attribute,labels\n");
}

TEST(DegenerateViewTest, RowWithoutIUnits) {
  CadView v;
  v.pivot_attr = "P";
  CompareAttribute ca;
  ca.name = "A";
  v.compare_attrs.push_back(ca);
  CadViewRow row;
  row.pivot_value = "empty & <weird>";
  v.rows.push_back(row);
  std::string html = RenderCadViewHtml(v, HtmlRenderOptions{});
  EXPECT_NE(html.find("empty &amp; &lt;weird&gt;"), std::string::npos);
  std::string json = CadViewToJson(v);
  EXPECT_NE(json.find("\"iunits\":[]"), std::string::npos);
}

}  // namespace
}  // namespace dbx
