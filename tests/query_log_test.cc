// Copyright (c) DBExplorer reproduction authors.
// Structured query log (DESIGN.md §14): serialization goldens, the
// determinism contract (byte-identical JSONL run to run once wall-clock
// fields are stripped), slow-only filtering, ring bounds, the file sink,
// stage-latency extraction from span trees, and a concurrency hammer that
// the TSAN tier runs to vet the sink's locking.

#include "src/obs/query_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/data/used_cars.h"
#include "src/obs/trace.h"
#include "src/query/engine.h"

namespace dbx {
namespace {

QueryLogRecord SampleRecord() {
  QueryLogRecord r;
  r.session = "s1";
  r.trace = "t-42";
  r.statement = "SELECT COUNT(*) FROM UsedCars";
  r.status = "OK";
  r.cache = "none";
  r.response_bytes = 17;
  r.total_ms = 1.25;
  r.stages = {{"exec", 1.0}, {"parse", 0.25}};
  return r;
}

TEST(QueryLogLineTest, GoldenWithTimings) {
  QueryLogRecord r = SampleRecord();
  r.seq = 3;
  r.slow = true;
  EXPECT_EQ(QueryLog::ToJsonLine(r),
            "{\"seq\":3,\"session\":\"s1\",\"trace\":\"t-42\","
            "\"statement\":\"SELECT COUNT(*) FROM UsedCars\","
            "\"status\":\"OK\",\"cache\":\"none\",\"response_bytes\":17,"
            "\"total_ms\":1.250,\"slow\":true,"
            "\"stages\":{\"exec\":1.000,\"parse\":0.250}}");
}

TEST(QueryLogLineTest, GoldenWithoutTimings) {
  // include_timings=false is the byte-determinism view: every field left is
  // a pure function of the statement script, none of the wall clock.
  QueryLogRecord r = SampleRecord();
  r.seq = 1;
  EXPECT_EQ(QueryLog::ToJsonLine(r, /*include_timings=*/false),
            "{\"seq\":1,\"session\":\"s1\",\"trace\":\"t-42\","
            "\"statement\":\"SELECT COUNT(*) FROM UsedCars\","
            "\"status\":\"OK\",\"cache\":\"none\",\"response_bytes\":17}");
}

TEST(QueryLogLineTest, EscapesJsonSpecials) {
  QueryLogRecord r;
  r.seq = 1;
  r.session = "s\"1\"";
  r.statement = "SELECT \"x\\y\"\n\tFROM t";
  std::string line = QueryLog::ToJsonLine(r, /*include_timings=*/false);
  EXPECT_NE(line.find("\"session\":\"s\\\"1\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_NE(line.find("\\t"), std::string::npos);
  EXPECT_NE(line.find("\\\\y"), std::string::npos);
  // Raw control characters must never reach the output line.
  for (char c : line) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(QueryLogTest, AppendAssignsSequenceAndEvaluatesSlow) {
  QueryLog log;
  log.SetSlowThresholdMs(10.0);
  QueryLogRecord fast = SampleRecord();
  fast.total_ms = 9.99;
  QueryLogRecord slow = SampleRecord();
  slow.total_ms = 10.0;  // threshold is inclusive
  EXPECT_EQ(log.Append(fast), 1u);
  EXPECT_EQ(log.Append(slow), 2u);
  auto records = log.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].slow);
  EXPECT_TRUE(records[1].slow);
  EXPECT_EQ(log.appended(), 2u);
  EXPECT_EQ(log.filtered(), 0u);
}

TEST(QueryLogTest, SlowOnlyFilterIsDeterministic) {
  QueryLog log;
  log.SetSlowThresholdMs(5.0);
  log.SetSlowOnly(true);
  QueryLogRecord fast = SampleRecord();
  fast.total_ms = 1.0;
  QueryLogRecord slow = SampleRecord();
  slow.total_ms = 50.0;
  EXPECT_EQ(log.Append(fast), 0u);  // dropped before the ring and the sink
  EXPECT_EQ(log.Append(slow), 1u);
  EXPECT_EQ(log.Append(fast), 0u);
  ASSERT_EQ(log.Records().size(), 1u);
  EXPECT_TRUE(log.Records()[0].slow);
  EXPECT_EQ(log.appended(), 1u);
  EXPECT_EQ(log.filtered(), 2u);
}

TEST(QueryLogTest, RingEvictsOldestPastCapacity) {
  QueryLog log(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    QueryLogRecord r;
    r.statement = "stmt" + std::to_string(i);
    log.Append(std::move(r));
  }
  auto records = log.Records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().seq, 3u);  // 1 and 2 evicted
  EXPECT_EQ(records.back().seq, 6u);
  EXPECT_EQ(log.appended(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
}

TEST(QueryLogTest, ClearResetsRingButSequenceContinues) {
  QueryLog log;
  log.Append(SampleRecord());
  log.Append(SampleRecord());
  log.Clear();
  EXPECT_TRUE(log.Records().empty());
  EXPECT_EQ(log.Append(SampleRecord()), 3u);
}

TEST(QueryLogTest, AttachFileStreamsJsonlLines) {
  const std::string path =
      ::testing::TempDir() + "/query_log_test_sink.jsonl";
  std::remove(path.c_str());
  {
    QueryLog log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    QueryLogRecord r = SampleRecord();
    log.Append(r);
    r.statement = "SHOW TABLES";
    log.Append(r);
    // Appends flush line by line; read back while the log is still alive.
    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"seq\":1"), std::string::npos);
    EXPECT_NE(lines[1].find("\"statement\":\"SHOW TABLES\""),
              std::string::npos);
    EXPECT_EQ(lines[0].front(), '{');
    EXPECT_EQ(lines[0].back(), '}');
  }
  std::remove(path.c_str());
}

TEST(QueryLogTest, ToJsonlConcatenatesRetainedRecords) {
  QueryLog log;
  log.Append(SampleRecord());
  log.Append(SampleRecord());
  std::string jsonl = log.ToJsonl(/*include_timings=*/false);
  EXPECT_EQ(jsonl,
            QueryLog::ToJsonLine(log.Records()[0], false) + "\n" +
                QueryLog::ToJsonLine(log.Records()[1], false) + "\n");
}

// --- stage latencies from span trees --------------------------------------

TEST(StageLatenciesTest, SumsByNameUnderRootOnly) {
  Tracer tracer;
  uint64_t root = tracer.Emit("exec", 0, 0, 10'000'000);
  uint64_t probe = tracer.Emit("cache_probe", root, 0, 1'000'000);
  tracer.Emit("kmeans", probe, 100, 500'000);      // grandchild counts
  tracer.Emit("cache_probe", root, 2000, 250'000);  // same name sums
  // A second statement's subtree on the same shared tracer: ignored.
  uint64_t other = tracer.Emit("exec", 0, 5000, 3'000'000);
  tracer.Emit("cache_probe", other, 5100, 2'000'000);
  tracer.Emit("orphan", 999999, 0, 1'000'000);  // broken chain: ignored

  auto stages = StageLatenciesFromSpans(tracer.Events(), root);
  ASSERT_EQ(stages.size(), 2u);  // sorted by name; root itself excluded
  EXPECT_EQ(stages[0].first, "cache_probe");
  EXPECT_NEAR(stages[0].second, 1.25, 1e-9);
  EXPECT_EQ(stages[1].first, "kmeans");
  EXPECT_NEAR(stages[1].second, 0.5, 1e-9);
}

TEST(StageLatenciesTest, EmptyForUnknownRootOrNoChildren) {
  Tracer tracer;
  uint64_t root = tracer.Emit("exec", 0, 0, 1'000'000);
  EXPECT_TRUE(StageLatenciesFromSpans(tracer.Events(), root).empty());
  EXPECT_TRUE(StageLatenciesFromSpans(tracer.Events(), 424242).empty());
  EXPECT_TRUE(StageLatenciesFromSpans({}, 1).empty());
}

// --- engine integration: the byte-determinism golden ----------------------

// Runs the fixed statement script against a fresh engine/log pair and
// returns the timing-stripped JSONL.
std::string RunEngineScript(const Table* table) {
  Engine engine;
  QueryLog log;
  engine.RegisterTable("UsedCars", table);
  engine.SetQueryLog(&log, "repl");
  auto run = [&](const std::string& sql) { (void)engine.ExecuteSql(sql); };
  run("SELECT COUNT(*) FROM UsedCars");
  run("select   count(*)   from UsedCars");  // canonicalizes to the same text
  run("CREATE CADVIEW v AS SET pivot = Make SELECT Price, Mileage FROM "
      "UsedCars WHERE BodyType = SUV LIMIT COLUMNS 2 IUNITS 2");
  run("SELECT * FROM Nope");       // NotFound
  run("SELEKT nonsense");          // parse error
  return log.ToJsonl(/*include_timings=*/false);
}

TEST(QueryLogEngineTest, StrippedJsonlIsByteIdenticalRunToRun) {
  Table table = GenerateUsedCars(800, 3);
  const std::string first = RunEngineScript(&table);
  const std::string second = RunEngineScript(&table);
  EXPECT_EQ(first, second);

  std::istringstream in(first);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);
  // Statements are logged in canonical form, so the two COUNT(*) spellings
  // produce identical statement fields.
  EXPECT_NE(lines[0].find("\"session\":\"repl\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"status\":\"OK\""), std::string::npos);
  const auto stmt_of = [](const std::string& l) {
    size_t b = l.find("\"statement\":");
    size_t e = l.find("\",\"status\"");
    return l.substr(b, e - b);
  };
  EXPECT_EQ(stmt_of(lines[0]), stmt_of(lines[1]));
  // No cache attached: CREATE CADVIEW probes report "no-cache".
  EXPECT_NE(lines[2].find("\"cache\":\"no-cache\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"status\":\"NotFound\""), std::string::npos);
  EXPECT_NE(lines[4].find("\"status\":\"InvalidArgument\""),
            std::string::npos);
  // Failed statements render nothing.
  EXPECT_NE(lines[4].find("\"response_bytes\":0"), std::string::npos);
}

// --- concurrency hammer (the TSAN tier runs this suite) -------------------

TEST(QueryLogTest, ConcurrentAppendersAndReaders) {
  QueryLog log(/*capacity=*/256);
  log.SetSlowThresholdMs(0.5);
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 500;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&log, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        QueryLogRecord r;
        r.session = "s" + std::to_string(w);
        r.statement = "stmt" + std::to_string(i);
        r.total_ms = (i % 2 == 0) ? 0.1 : 1.0;
        log.Append(std::move(r));
      }
    });
  }
  for (int reader = 0; reader < 2; ++reader) {
    threads.emplace_back([&log, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)log.Records();
        (void)log.ToJsonl();
        (void)log.appended();
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(log.appended(), static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(log.dropped(), log.appended() - 256);
  auto records = log.Records();
  ASSERT_EQ(records.size(), 256u);
  std::set<uint64_t> seqs;
  for (const auto& r : records) seqs.insert(r.seq);
  EXPECT_EQ(seqs.size(), records.size());  // seqs unique, no torn records
}

}  // namespace
}  // namespace dbx
