// Tests for the CADVIEW SQL dialect: lexer, parser, engine execution, and the
// canonical unparser's print/parse round-trip properties.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/cad_view_io.h"
#include "src/core/view_cache.h"
#include "src/data/used_cars.h"
#include "src/query/canonical.h"
#include "src/query/engine.h"
#include "src/query/lexer.h"
#include "src/query/parser.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

// --- Lexer -------------------------------------------------------------------

TEST(LexerTest, NumbersWithSuffixes) {
  auto toks = Lex("10K 1.5M 42 3.25");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 5u);  // incl. kEnd
  EXPECT_DOUBLE_EQ((*toks)[0].number, 10000.0);
  EXPECT_DOUBLE_EQ((*toks)[1].number, 1500000.0);
  EXPECT_DOUBLE_EQ((*toks)[2].number, 42.0);
  EXPECT_DOUBLE_EQ((*toks)[3].number, 3.25);
}

TEST(LexerTest, StringsWithEscapes) {
  auto toks = Lex("'hello world' 'it''s'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "hello world");
  EXPECT_EQ((*toks)[1].text, "it's");
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto toks = Lex("select FROM WhErE cadview");
  ASSERT_TRUE(toks.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*toks)[i].type, TokenType::kKeyword);
  }
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[3].text, "CADVIEW");
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto toks = Lex("BodyType Mileage");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[0].text, "BodyType");
}

TEST(LexerTest, Operators) {
  auto toks = Lex("= != <> <= >= < > ( ) , * ;");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "=");
  EXPECT_EQ((*toks)[1].text, "!=");
  EXPECT_EQ((*toks)[2].text, "!=");  // <> normalized
  EXPECT_EQ((*toks)[3].text, "<=");
  EXPECT_EQ((*toks)[4].text, ">=");
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Lex("'unterminated").status().IsInvalidArgument());
  EXPECT_TRUE(Lex("a @ b").status().IsInvalidArgument());
}

// --- Parser ------------------------------------------------------------------

TEST(ParserTest, FullCreateCadView) {
  auto stmt = ParseStatement(
      "CREATE CADVIEW CompareMakes AS SET pivot = Make SELECT Price "
      "FROM UsedCars WHERE Mileage BETWEEN 10K AND 30K AND "
      "Transmission = Automatic AND BodyType = SUV AND "
      "(Make = Jeep OR Make = Toyota) LIMIT COLUMNS 5 IUNITS 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* c = std::get_if<CreateCadViewStmt>(&*stmt);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->view_name, "CompareMakes");
  EXPECT_EQ(c->pivot_attr, "Make");
  EXPECT_EQ(c->compare_attrs, std::vector<std::string>{"Price"});
  EXPECT_EQ(c->table, "UsedCars");
  ASSERT_NE(c->where, nullptr);
  EXPECT_EQ(*c->limit_columns, 5u);
  EXPECT_EQ(*c->iunits, 3u);
}

TEST(ParserTest, CreateCadViewDefaultsOptional) {
  auto stmt = ParseStatement(
      "CREATE CADVIEW v AS SET pivot = Make SELECT * FROM T");
  ASSERT_TRUE(stmt.ok());
  auto* c = std::get_if<CreateCadViewStmt>(&*stmt);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->compare_attrs.empty());
  EXPECT_FALSE(c->limit_columns.has_value());
  EXPECT_FALSE(c->iunits.has_value());
  EXPECT_EQ(c->where, nullptr);
}

TEST(ParserTest, CreateCadViewOrderBy) {
  auto stmt = ParseStatement(
      "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM T "
      "ORDER BY Price ASC, Year DESC");
  ASSERT_TRUE(stmt.ok());
  auto* c = std::get_if<CreateCadViewStmt>(&*stmt);
  ASSERT_EQ(c->order_by.size(), 2u);
  EXPECT_EQ(c->order_by[0], (std::pair<std::string, bool>{"Price", true}));
  EXPECT_EQ(c->order_by[1], (std::pair<std::string, bool>{"Year", false}));
}

TEST(ParserTest, Highlight) {
  auto stmt = ParseStatement(
      "HIGHLIGHT SIMILAR IUNITS IN CompareMakes "
      "WHERE SIMILARITY(Chevrolet, 3) > 3.5");
  ASSERT_TRUE(stmt.ok());
  auto* h = std::get_if<HighlightStmt>(&*stmt);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->view_name, "CompareMakes");
  EXPECT_EQ(h->pivot_value, "Chevrolet");
  EXPECT_EQ(h->iunit_rank, 3u);
  EXPECT_DOUBLE_EQ(h->threshold, 3.5);
}

TEST(ParserTest, Reorder) {
  auto stmt = ParseStatement(
      "REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Chevrolet) DESC");
  ASSERT_TRUE(stmt.ok());
  auto* r = std::get_if<ReorderStmt>(&*stmt);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->view_name, "CompareMakes");
  EXPECT_EQ(r->pivot_value, "Chevrolet");
  EXPECT_TRUE(r->descending);
}

TEST(ParserTest, SelectStarAndColumns) {
  auto star = ParseStatement("SELECT * FROM T WHERE a = 1 LIMIT 10;");
  ASSERT_TRUE(star.ok());
  auto* s = std::get_if<SelectStmt>(&*star);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->star);
  EXPECT_EQ(*s->limit, 10u);

  auto cols = ParseStatement("SELECT a, b FROM T");
  ASSERT_TRUE(cols.ok());
  auto* c = std::get_if<SelectStmt>(&*cols);
  EXPECT_EQ(c->columns, (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, WherePrecedenceAndNot) {
  auto stmt =
      ParseStatement("SELECT * FROM T WHERE a = 1 OR b = 2 AND NOT c = 3");
  ASSERT_TRUE(stmt.ok());
  auto* s = std::get_if<SelectStmt>(&*stmt);
  // AND binds tighter than OR.
  EXPECT_EQ(s->where->ToString(), "(a = 1 OR (b = 2 AND NOT c = 3))");
}

TEST(ParserTest, InAndNotIn) {
  auto stmt = ParseStatement(
      "SELECT * FROM T WHERE Make IN (Jeep, 'Ford') AND Color NOT IN (red)");
  ASSERT_TRUE(stmt.ok());
  auto* s = std::get_if<SelectStmt>(&*stmt);
  EXPECT_NE(s->where->ToString().find("Make IN ('Jeep', 'Ford')"),
            std::string::npos);
  EXPECT_NE(s->where->ToString().find("NOT Color IN ('red')"),
            std::string::npos);
}

TEST(ParserTest, BarewordsAndBooleansAreStrings) {
  auto stmt =
      ParseStatement("SELECT * FROM T WHERE Bruises = true AND Make = Jeep");
  ASSERT_TRUE(stmt.ok());
  auto* s = std::get_if<SelectStmt>(&*stmt);
  EXPECT_EQ(s->where->ToString(), "(Bruises = 'true' AND Make = 'Jeep')");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_TRUE(ParseStatement("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("DROP TABLE x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SELECT FROM T").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SELECT * FROM").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SELECT * FROM T WHERE").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SELECT * FROM T extra").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ParseStatement("CREATE CADVIEW v AS SELECT a FROM T").status()
          .IsInvalidArgument());  // missing SET pivot
  EXPECT_TRUE(
      ParseStatement("SELECT * FROM T WHERE a BETWEEN 5 AND 1").status()
          .IsInvalidArgument());  // bounds out of order
  EXPECT_TRUE(
      ParseStatement("HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(x, 0) > 1")
          .status()
          .IsInvalidArgument());  // rank must be >= 1
}

TEST(ParserTest, AggregateSelect) {
  auto stmt = ParseStatement(
      "SELECT Make, COUNT(*), AVG(Price) FROM T GROUP BY Make "
      "ORDER BY count DESC LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* s = std::get_if<SelectStmt>(&*stmt);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->is_aggregate());
  ASSERT_EQ(s->items.size(), 3u);
  EXPECT_FALSE(s->items[0].fn.has_value());
  EXPECT_EQ(*s->items[1].fn, AggFn::kCount);
  EXPECT_TRUE(s->items[1].attr.empty());
  EXPECT_EQ(*s->items[2].fn, AggFn::kAvg);
  EXPECT_EQ(s->items[2].attr, "Price");
  EXPECT_EQ(s->group_by, std::vector<std::string>{"Make"});
  EXPECT_EQ(s->order_by[0].first, "count");
}

TEST(ParserTest, AggregateErrors) {
  // Non-aggregate column outside GROUP BY.
  EXPECT_TRUE(ParseStatement("SELECT Make, COUNT(*) FROM T GROUP BY Color")
                  .status()
                  .IsInvalidArgument());
  // SELECT * with GROUP BY.
  EXPECT_TRUE(ParseStatement("SELECT * FROM T GROUP BY Make")
                  .status()
                  .IsInvalidArgument());
  // Malformed aggregate.
  EXPECT_TRUE(ParseStatement("SELECT AVG Price FROM T").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SELECT AVG(*) FROM T").status()
                  .IsInvalidArgument());
}

TEST(ParserTest, ExplainAnalyze) {
  auto full = ParseStatement("EXPLAIN ANALYZE SELECT * FROM T");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  const auto* stmt = std::get_if<ExplainStmt>(&*full);
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->analyze);
  ASSERT_NE(stmt->inner, nullptr);
  EXPECT_TRUE(std::holds_alternative<SelectStmt>(stmt->inner->get()));
  EXPECT_EQ(StatementToSql(*full), "EXPLAIN ANALYZE SELECT * FROM T");

  // Bare EXPLAIN parses too (treated as a synonym at execution time).
  auto bare = ParseStatement("EXPLAIN SELECT * FROM T");
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(std::get_if<ExplainStmt>(&*bare)->analyze);
  EXPECT_EQ(StatementToSql(*bare), "EXPLAIN SELECT * FROM T");

  EXPECT_TRUE(ParseStatement("EXPLAIN ANALYZE EXPLAIN SELECT * FROM T")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("EXPLAIN").status().IsInvalidArgument());
}

// --- Engine ------------------------------------------------------------------

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { table_ = new Table(GenerateUsedCars(3000, 3)); }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  void SetUp() override { engine_.RegisterTable("UsedCars", table_); }

  Engine engine_;
  static Table* table_;
};

Table* EngineTest::table_ = nullptr;

TEST_F(EngineTest, SelectCountsRows) {
  auto r = engine_.ExecuteSql(
      "SELECT * FROM UsedCars WHERE BodyType = SUV LIMIT 50");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->kind, ExecOutcome::Kind::kSelection);
  EXPECT_EQ(r->rows.size(), 50u);
  EXPECT_EQ(r->projected_columns.size(), table_->num_cols());
}

TEST_F(EngineTest, SelectOrderBySortsRows) {
  auto r = engine_.ExecuteSql(
      "SELECT Make, Price FROM UsedCars WHERE BodyType = SUV "
      "ORDER BY Price DESC LIMIT 20");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto price_idx = table_->schema().IndexOf("Price");
  double prev = 1e18;
  for (uint32_t row : r->rows) {
    double p = table_->col(*price_idx).NumberAt(row);
    EXPECT_LE(p, prev);
    prev = p;
  }

  auto asc = engine_.ExecuteSql(
      "SELECT * FROM UsedCars ORDER BY Make ASC, Price ASC LIMIT 50");
  ASSERT_TRUE(asc.ok());
  auto make_idx = table_->schema().IndexOf("Make");
  std::string prev_make;
  double prev_price = -1.0;
  for (uint32_t row : asc->rows) {
    std::string m = table_->At(row, *make_idx).AsString();
    double p = table_->col(*price_idx).NumberAt(row);
    if (m == prev_make) {
      EXPECT_GE(p, prev_price);
    } else {
      EXPECT_GE(m, prev_make);
      prev_make = m;
    }
    prev_price = p;
  }
}

TEST_F(EngineTest, AggregateGroupByComputesStats) {
  auto r = engine_.ExecuteSql(
      "SELECT BodyType, COUNT(*), AVG(Price), MIN(Price), MAX(Price) "
      "FROM UsedCars GROUP BY BodyType ORDER BY count DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->derived, nullptr);
  const Table& d = *r->derived;
  EXPECT_EQ(d.num_cols(), 5u);
  EXPECT_EQ(d.schema().attr(1).name, "count");
  EXPECT_EQ(d.schema().attr(2).name, "avg_Price");

  // Groups partition the table.
  double total = 0;
  for (uint32_t row : r->rows) total += d.col(1).NumberAt(row);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(table_->num_rows()));

  // Counts descending per ORDER BY; min <= avg <= max per group.
  double prev = 1e18;
  for (uint32_t row : r->rows) {
    double c = d.col(1).NumberAt(row);
    EXPECT_LE(c, prev);
    prev = c;
    EXPECT_LE(d.col(3).NumberAt(row), d.col(2).NumberAt(row));
    EXPECT_LE(d.col(2).NumberAt(row), d.col(4).NumberAt(row));
  }

  // Spot-check one group against a direct scan.
  auto body = *table_->ColByName("BodyType");
  auto price = *table_->ColByName("Price");
  size_t suv_n = 0;
  double suv_sum = 0;
  for (size_t i = 0; i < table_->num_rows(); ++i) {
    if (body->ValueAt(i).AsString() == "SUV") {
      ++suv_n;
      suv_sum += price->NumberAt(i);
    }
  }
  bool found = false;
  for (uint32_t row : r->rows) {
    if (d.At(row, 0).AsString() == "SUV") {
      found = true;
      EXPECT_DOUBLE_EQ(d.col(1).NumberAt(row), static_cast<double>(suv_n));
      EXPECT_NEAR(d.col(2).NumberAt(row), suv_sum / suv_n, 1e-6);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(EngineTest, AggregateWithWhereAndSum) {
  auto r = engine_.ExecuteSql(
      "SELECT Make, SUM(Price) FROM UsedCars WHERE BodyType = Sedan "
      "GROUP BY Make");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Only sedan-producing makes appear.
  for (uint32_t row : r->rows) {
    EXPECT_GT(r->derived->col(1).NumberAt(row), 0.0);
  }
  EXPECT_GT(r->rows.size(), 2u);
  EXPECT_LT(r->rows.size(), 15u);
}

TEST_F(EngineTest, GlobalAggregateWithoutGroupBy) {
  auto r = engine_.ExecuteSql("SELECT COUNT(*), AVG(Mileage) FROM UsedCars");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r->derived->col(0).NumberAt(r->rows[0]),
                   static_cast<double>(table_->num_rows()));
  EXPECT_GT(r->derived->col(1).NumberAt(r->rows[0]), 0.0);
}

TEST_F(EngineTest, AggregateErrors) {
  EXPECT_TRUE(engine_
                  .ExecuteSql("SELECT AVG(Make) FROM UsedCars GROUP BY Make")
                  .status()
                  .IsInvalidArgument());  // non-numeric aggregate
  EXPECT_TRUE(engine_
                  .ExecuteSql("SELECT COUNT(*) FROM UsedCars GROUP BY Nope")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(engine_
                  .ExecuteSql("SELECT Make, COUNT(*) FROM UsedCars "
                              "GROUP BY Make ORDER BY bogus")
                  .status()
                  .IsNotFound());
}

TEST_F(EngineTest, DescribeProfilesTable) {
  auto r = engine_.ExecuteSql("DESCRIBE UsedCars");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->kind, ExecOutcome::Kind::kDescribe);
  EXPECT_NE(r->rendered.find("Make"), std::string::npos);
  EXPECT_NE(r->rendered.find("categorical"), std::string::npos);
  // The hidden Engine attribute is flagged non-queriable.
  EXPECT_NE(r->rendered.find("| Engine       | categorical | no"),
            std::string::npos);
  EXPECT_TRUE(engine_.ExecuteSql("DESCRIBE Nope").status().IsNotFound());
  EXPECT_TRUE(engine_.ExecuteSql("DESCRIBE").status().IsInvalidArgument());
}

TEST_F(EngineTest, ShowTablesAndCadViews) {
  auto tables = engine_.ExecuteSql("SHOW TABLES");
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  EXPECT_EQ(tables->kind, ExecOutcome::Kind::kShow);
  EXPECT_NE(tables->rendered.find("UsedCars"), std::string::npos);

  auto none = engine_.ExecuteSql("SHOW CADVIEWS");
  ASSERT_TRUE(none.ok());
  EXPECT_NE(none->rendered.find("(none)"), std::string::npos);

  ASSERT_TRUE(engine_
                  .ExecuteSql("CREATE CADVIEW sv AS SET pivot = Make SELECT "
                              "Price FROM UsedCars WHERE Make = Ford "
                              "LIMIT COLUMNS 3 IUNITS 2")
                  .ok());
  auto views = engine_.ExecuteSql("SHOW CADVIEWS");
  ASSERT_TRUE(views.ok());
  EXPECT_NE(views->rendered.find("sv"), std::string::npos);

  EXPECT_TRUE(engine_.ExecuteSql("SHOW NONSENSE").status()
                  .IsInvalidArgument());
}

TEST_F(EngineTest, DropCadViewRemovesIt) {
  ASSERT_TRUE(engine_
                  .ExecuteSql("CREATE CADVIEW dv AS SET pivot = Make SELECT "
                              "Price FROM UsedCars WHERE Make = Ford "
                              "LIMIT COLUMNS 3 IUNITS 2")
                  .ok());
  ASSERT_TRUE(engine_.GetView("dv").ok());
  auto dropped = engine_.ExecuteSql("DROP CADVIEW dv");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(dropped->kind, ExecOutcome::Kind::kDrop);
  EXPECT_TRUE(engine_.GetView("dv").status().IsNotFound());
  EXPECT_TRUE(engine_.ExecuteSql("DROP CADVIEW dv").status().IsNotFound());
}

TEST_F(EngineTest, SelectOrderByUnknownColumn) {
  EXPECT_TRUE(engine_.ExecuteSql("SELECT * FROM UsedCars ORDER BY Nope")
                  .status()
                  .IsNotFound());
}

TEST_F(EngineTest, SelectValidatesNames) {
  EXPECT_TRUE(engine_.ExecuteSql("SELECT * FROM Nope").status().IsNotFound());
  EXPECT_TRUE(engine_.ExecuteSql("SELECT bogus FROM UsedCars").status()
                  .IsNotFound());
}

TEST_F(EngineTest, CreateCadViewAndFetch) {
  auto r = engine_.ExecuteSql(
      "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM UsedCars "
      "WHERE BodyType = SUV AND (Make = Ford OR Make = Jeep) "
      "LIMIT COLUMNS 4 IUNITS 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->kind, ExecOutcome::Kind::kCadView);
  ASSERT_NE(r->view, nullptr);
  EXPECT_EQ(r->view->rows.size(), 2u);
  EXPECT_LE(r->view->compare_attrs.size(), 4u);
  EXPECT_FALSE(r->rendered.empty());

  auto v = engine_.GetView("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, r->view);
  EXPECT_TRUE(engine_.GetView("missing").status().IsNotFound());
}

TEST_F(EngineTest, ExplainAnalyzeCreateCadViewColdThenWarm) {
  engine_.SetViewCache(std::make_shared<ViewCache>());
  const std::string sql =
      "EXPLAIN ANALYZE CREATE CADVIEW ev AS SET pivot = Make SELECT Price "
      "FROM UsedCars WHERE BodyType = SUV AND (Make = Ford OR Make = Jeep) "
      "LIMIT COLUMNS 4 IUNITS 2";

  auto cold = engine_.ExecuteSql(sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->kind, ExecOutcome::Kind::kExplain);
  ASSERT_NE(cold->view, nullptr);  // the inner statement really executed
  // The cold build renders the full paper pipeline as stages.
  for (const char* stage :
       {"parse", "cache_probe", "discretize", "partition", "chi_square",
        "kmeans", "labeling", "div_topk"}) {
    EXPECT_NE(cold->rendered.find(stage), std::string::npos)
        << "missing stage '" << stage << "' in:\n" << cold->rendered;
  }
  EXPECT_NE(cold->rendered.find("result=miss"), std::string::npos)
      << cold->rendered;
  EXPECT_NE(cold->rendered.find("cache: hits="), std::string::npos);
  EXPECT_NE(cold->rendered.find("pool: threads="), std::string::npos);

  // Warm: same statement short-circuits to the cache-hit path — the probe
  // reports the hit and no pipeline stage runs.
  auto warm = engine_.ExecuteSql(sql);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_NE(warm->rendered.find("result=hit"), std::string::npos)
      << warm->rendered;
  EXPECT_EQ(warm->rendered.find("kmeans"), std::string::npos)
      << warm->rendered;
}

TEST_F(EngineTest, ExplainSelectAndErrors) {
  auto r = engine_.ExecuteSql("EXPLAIN SELECT * FROM UsedCars LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->kind, ExecOutcome::Kind::kExplain);
  EXPECT_EQ(r->rows.size(), 5u);  // inner outcome fields pass through
  EXPECT_NE(r->rendered.find("execute:select"), std::string::npos);
  // Inner failures surface as the statement's own error.
  EXPECT_TRUE(engine_.ExecuteSql("EXPLAIN ANALYZE SELECT * FROM Nope")
                  .status()
                  .IsNotFound());
}

TEST_F(EngineTest, HighlightAndReorderAgainstStoredView) {
  ASSERT_TRUE(engine_
                  .ExecuteSql("CREATE CADVIEW v AS SET pivot = Make SELECT "
                              "Price FROM UsedCars WHERE BodyType = SUV AND "
                              "(Make = Ford OR Make = Jeep OR Make = Toyota) "
                              "LIMIT COLUMNS 4 IUNITS 2")
                  .ok());
  auto h = engine_.ExecuteSql(
      "HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(Ford, 1) > 0.0");
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->kind, ExecOutcome::Kind::kHighlight);
  EXPECT_FALSE(h->highlights.empty());

  auto r = engine_.ExecuteSql(
      "REORDER ROWS IN v ORDER BY SIMILARITY(Toyota) DESC");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, ExecOutcome::Kind::kReorder);
  EXPECT_EQ(r->view->rows[0].pivot_value, "Toyota");
}

TEST_F(EngineTest, ReorderAscendingReversesOrder) {
  ASSERT_TRUE(engine_
                  .ExecuteSql("CREATE CADVIEW va AS SET pivot = Make SELECT "
                              "Price FROM UsedCars WHERE BodyType = SUV AND "
                              "(Make = Ford OR Make = Jeep OR Make = Toyota) "
                              "LIMIT COLUMNS 4 IUNITS 2")
                  .ok());
  auto desc = engine_.ExecuteSql(
      "REORDER ROWS IN va ORDER BY SIMILARITY(Ford) DESC");
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->view->rows.front().pivot_value, "Ford");
  auto asc = engine_.ExecuteSql(
      "REORDER ROWS IN va ORDER BY SIMILARITY(Ford) ASC");
  ASSERT_TRUE(asc.ok());
  EXPECT_EQ(asc->view->rows.back().pivot_value, "Ford");
}

TEST_F(EngineTest, HighlightUnknownViewOrValue) {
  EXPECT_TRUE(engine_
                  .ExecuteSql("HIGHLIGHT SIMILAR IUNITS IN nope WHERE "
                              "SIMILARITY(Ford, 1) > 1")
                  .status()
                  .IsNotFound());
  ASSERT_TRUE(engine_
                  .ExecuteSql("CREATE CADVIEW v2 AS SET pivot = Make SELECT "
                              "Price FROM UsedCars WHERE Make = Ford "
                              "LIMIT COLUMNS 3 IUNITS 2")
                  .ok());
  EXPECT_TRUE(engine_
                  .ExecuteSql("HIGHLIGHT SIMILAR IUNITS IN v2 WHERE "
                              "SIMILARITY(Chevrolet, 1) > 1")
                  .status()
                  .IsNotFound());
}

TEST_F(EngineTest, OrderBySortsIUnitsByAttributeCode) {
  auto r = engine_.ExecuteSql(
      "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM UsedCars "
      "WHERE BodyType = SUV AND (Make = Ford OR Make = Chevrolet) "
      "LIMIT COLUMNS 4 IUNITS 3 ORDER BY Price ASC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const CadViewRow& row : r->view->rows) {
    for (size_t i = 1; i < row.iunits.size(); ++i) {
      int32_t prev = row.iunits[i - 1].cells[0].codes.empty()
                         ? INT32_MAX
                         : row.iunits[i - 1].cells[0].codes[0];
      int32_t cur = row.iunits[i].cells[0].codes.empty()
                        ? INT32_MAX
                        : row.iunits[i].cells[0].codes[0];
      EXPECT_LE(prev, cur);
    }
  }
}

TEST_F(EngineTest, OrderByRequiresCompareAttribute) {
  auto r = engine_.ExecuteSql(
      "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM UsedCars "
      "WHERE Make = Ford LIMIT COLUMNS 3 IUNITS 2 ORDER BY NotAnAttr");
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(EngineTest, DefaultOptionsRespected) {
  CadViewOptions defaults;
  defaults.max_compare_attrs = 2;
  defaults.iunits_per_value = 1;
  engine_.SetDefaultCadViewOptions(defaults);
  auto r = engine_.ExecuteSql(
      "CREATE CADVIEW v AS SET pivot = Make SELECT * FROM UsedCars "
      "WHERE Make = Ford OR Make = Jeep");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LE(r->view->compare_attrs.size(), 2u);
  for (const CadViewRow& row : r->view->rows) {
    EXPECT_LE(row.iunits.size(), 1u);
  }
}

TEST_F(EngineTest, ShardedDefaultsAreOutputTransparent) {
  // Shard policy rides along via the engine's default CadViewOptions; the
  // sharded build must be byte-identical to the unsharded one through the
  // full SQL path (timings excluded — they are wall-clock, not output).
  const char* kSql =
      "CREATE CADVIEW v AS SET pivot = Make SELECT * FROM UsedCars "
      "WHERE Make = Ford OR Make = Jeep OR Make = Toyota";
  auto baseline = engine_.ExecuteSql(kSql);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  Engine sharded;
  sharded.RegisterTable("UsedCars", table_);
  CadViewOptions defaults;
  defaults.sharding.num_shards = 4;
  defaults.sharding.min_rows_per_shard = 1;
  defaults.num_threads = 2;
  sharded.SetDefaultCadViewOptions(defaults);
  auto r = sharded.ExecuteSql(kSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  CadView a = *baseline->view;
  CadView b = *r->view;
  a.timings = CadViewTimings{};
  b.timings = CadViewTimings{};
  EXPECT_EQ(CadViewToJson(b), CadViewToJson(a));
}

// --- Property-based round trips ----------------------------------------------
//
// The canonical unparser's law (src/query/canonical.h): for any statement the
// printer emits, print(parse(print(S))) == print(S). A deterministic random
// AST generator drives a few hundred statements through the cycle. The
// generator stays inside the printable grammar: And/Or get >= 2 children (a
// single child would print as "(a)" and re-parse to the bare child), strings
// avoid the quote character (Predicate::ToString does not escape), numbers are
// non-negative (the lexer has no unary minus), and BETWEEN uses ordered
// integer bounds (its bounds print with zero decimals).

const char* const kAttrPool[] = {"Price",  "Mileage", "Year",      "Make",
                                 "Model",  "Color",   "Odor",      "GillColor",
                                 "Rating", "Capacity"};
const char* const kTablePool[] = {"UsedCars", "Mushrooms", "Listings"};
const char* const kViewPool[] = {"v1", "v2", "focus"};
const char* const kWordPool[] = {"red",  "blue",   "Jeep",   "Ford",
                                 "none", "foul",   "smooth", "broad",
                                 "ring type", "almond"};

template <size_t N>
std::string Pick(Rng& rng, const char* const (&pool)[N]) {
  return pool[rng.NextBounded(N)];
}

PredicatePtr RandomPredicate(Rng& rng, int depth) {
  // Leaves only once the tree is deep enough.
  const int kind = depth >= 2 ? static_cast<int>(rng.NextBounded(4))
                              : static_cast<int>(rng.NextBounded(7));
  switch (kind) {
    case 0: {  // numeric comparison
      static const CmpOp kOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                   CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
      const CmpOp op = kOps[rng.NextBounded(6)];
      const double v = rng.NextBool()
                           ? static_cast<double>(rng.NextInt(0, 99999))
                           : static_cast<double>(rng.NextInt(0, 99999)) / 1000.0;
      return MakeCmp(Pick(rng, kAttrPool), op, Value(v));
    }
    case 1: {  // string comparison
      const CmpOp op = rng.NextBool() ? CmpOp::kEq : CmpOp::kNe;
      return MakeCmp(Pick(rng, kAttrPool), op, Value(Pick(rng, kWordPool)));
    }
    case 2: {  // BETWEEN with ordered integer bounds
      const int64_t lo = rng.NextInt(0, 50000);
      const int64_t hi = lo + rng.NextInt(0, 50000);
      return MakeBetween(Pick(rng, kAttrPool), static_cast<double>(lo),
                         static_cast<double>(hi));
    }
    case 3: {  // IN list
      std::vector<std::string> values;
      const size_t n = 1 + rng.NextBounded(3);
      for (size_t i = 0; i < n; ++i) values.push_back(Pick(rng, kWordPool));
      return MakeIn(Pick(rng, kAttrPool), std::move(values));
    }
    case 4:
    case 5: {  // conjunction / disjunction, always >= 2 children
      std::vector<PredicatePtr> children;
      const size_t n = 2 + rng.NextBounded(2);
      for (size_t i = 0; i < n; ++i) {
        children.push_back(RandomPredicate(rng, depth + 1));
      }
      return kind == 4 ? MakeAnd(std::move(children))
                       : MakeOr(std::move(children));
    }
    default:
      return MakeNot(RandomPredicate(rng, depth + 1));
  }
}

std::vector<std::pair<std::string, bool>> RandomOrderBy(Rng& rng) {
  std::vector<std::pair<std::string, bool>> order_by;
  const size_t n = rng.NextBounded(3);
  for (size_t i = 0; i < n; ++i) {
    order_by.emplace_back(Pick(rng, kAttrPool), rng.NextBool());
  }
  return order_by;
}

Statement RandomSelect(Rng& rng) {
  SelectStmt stmt;
  stmt.table = Pick(rng, kTablePool);
  if (rng.NextBool(0.3)) {
    // Aggregate form: items list the grouping columns plus 1-2 aggregates.
    const size_t groups = rng.NextBounded(3);
    for (size_t i = 0; i < groups; ++i) {
      std::string col = Pick(rng, kAttrPool);
      stmt.group_by.push_back(col);
      stmt.items.push_back(SelectItem{std::nullopt, std::move(col)});
    }
    static const AggFn kFns[] = {AggFn::kCount, AggFn::kAvg, AggFn::kSum,
                                 AggFn::kMin, AggFn::kMax};
    const size_t aggs = 1 + rng.NextBounded(2);
    for (size_t i = 0; i < aggs; ++i) {
      const AggFn fn = kFns[rng.NextBounded(5)];
      stmt.items.push_back(SelectItem{
          fn, fn == AggFn::kCount ? std::string() : Pick(rng, kAttrPool)});
    }
    // Aggregate ORDER BY names refer to output columns.
    if (!stmt.group_by.empty() && rng.NextBool()) {
      stmt.order_by.emplace_back(stmt.group_by[0], rng.NextBool());
    }
  } else if (rng.NextBool(0.4)) {
    stmt.star = true;
    stmt.order_by = RandomOrderBy(rng);
  } else {
    const size_t cols = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < cols; ++i) {
      stmt.columns.push_back(Pick(rng, kAttrPool));
    }
    stmt.order_by = RandomOrderBy(rng);
  }
  if (rng.NextBool(0.6)) stmt.where = RandomPredicate(rng, 0);
  if (rng.NextBool()) stmt.limit = static_cast<size_t>(rng.NextInt(0, 500));
  return stmt;
}

Statement RandomCreateCadView(Rng& rng) {
  CreateCadViewStmt stmt;
  stmt.view_name = Pick(rng, kViewPool);
  stmt.pivot_attr = Pick(rng, kAttrPool);
  const size_t attrs = rng.NextBounded(4);  // 0 prints as SELECT *
  for (size_t i = 0; i < attrs; ++i) {
    stmt.compare_attrs.push_back(Pick(rng, kAttrPool));
  }
  stmt.table = Pick(rng, kTablePool);
  if (rng.NextBool()) stmt.where = RandomPredicate(rng, 0);
  if (rng.NextBool()) {
    stmt.limit_columns = static_cast<size_t>(rng.NextInt(1, 8));
  }
  if (rng.NextBool()) stmt.iunits = static_cast<size_t>(rng.NextInt(1, 5));
  stmt.order_by = RandomOrderBy(rng);
  return stmt;
}

Statement RandomStatement(Rng& rng) {
  switch (rng.NextBounded(7)) {
    case 0:
      return RandomSelect(rng);
    case 1:
      return RandomCreateCadView(rng);
    case 2: {
      HighlightStmt stmt;
      stmt.view_name = Pick(rng, kViewPool);
      stmt.pivot_value = Pick(rng, kWordPool);
      stmt.iunit_rank = static_cast<size_t>(rng.NextInt(1, 5));
      stmt.threshold = rng.NextBool()
                           ? static_cast<double>(rng.NextInt(0, 3))
                           : static_cast<double>(rng.NextInt(0, 1000)) / 1000.0;
      return stmt;
    }
    case 3: {
      ReorderStmt stmt;
      stmt.view_name = Pick(rng, kViewPool);
      stmt.pivot_value = Pick(rng, kWordPool);
      stmt.descending = rng.NextBool();
      return stmt;
    }
    case 4:
      return DescribeStmt{Pick(rng, kTablePool)};
    case 5: {
      ShowStmt stmt;
      stmt.what =
          rng.NextBool() ? ShowStmt::What::kTables : ShowStmt::What::kCadViews;
      return stmt;
    }
    default:
      return DropCadViewStmt{Pick(rng, kViewPool)};
  }
}

TEST(RoundTripPropertyTest, PrintParsePrintIsIdentity) {
  Rng rng(20260805);
  for (int iter = 0; iter < 300; ++iter) {
    const Statement stmt = RandomStatement(rng);
    const std::string sql1 = StatementToSql(stmt);
    auto parsed = ParseStatement(sql1);
    ASSERT_TRUE(parsed.ok())
        << "iter " << iter << ": " << sql1 << "\n  " << parsed.status().ToString();
    EXPECT_EQ(parsed->index(), stmt.index()) << "iter " << iter << ": " << sql1;
    EXPECT_EQ(StatementToSql(*parsed), sql1) << "iter " << iter;
  }
}

TEST(RoundTripPropertyTest, PredicatePrintParsePrintIsIdentity) {
  // Denser coverage of the WHERE grammar than whole statements give.
  Rng rng(7);
  for (int iter = 0; iter < 300; ++iter) {
    const PredicatePtr pred = RandomPredicate(rng, 0);
    const std::string sql1 = "SELECT * FROM UsedCars WHERE " + pred->ToString();
    auto parsed = ParseStatement(sql1);
    ASSERT_TRUE(parsed.ok())
        << "iter " << iter << ": " << sql1 << "\n  " << parsed.status().ToString();
    EXPECT_EQ(StatementToSql(*parsed), sql1) << "iter " << iter;
  }
}

TEST(RoundTripPropertyTest, PredicateToStringIsCanonicalForTheViewCache) {
  // The view cache keys selection contexts on CanonicalizePredicate of the
  // WHERE text. Two invariants keep keys stable: the printer's output is a
  // fixed point of canonicalization, and whitespace mangling never changes
  // the canonical form (so textual variants of one query share a key).
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const PredicatePtr pred = RandomPredicate(rng, 0);
    const std::string text = pred->ToString();
    EXPECT_EQ(CanonicalizePredicate(text), text) << "iter " << iter;

    std::string mangled = "  ";
    for (char c : text) {
      mangled += c;
      if (c == ' ' && rng.NextBool()) {
        mangled += rng.NextBool() ? "\t " : "  ";
      }
    }
    mangled += " \t";
    EXPECT_EQ(CanonicalizePredicate(mangled), text) << "iter " << iter;
  }
}


// --- Shared-cache snapshot identity ------------------------------------------
//
// Regression for stale-partition serving: before snapshot-identity dataset
// ids, a ViewCache shared by two engines keyed entries by bare table name,
// so two sessions that registered *different* tables under the same name
// served each other's cached partitions.

TEST(EngineSharedCacheTest, DistinctRegistrationsNeverShareEntries) {
  auto cache = std::make_shared<ViewCache>();
  Table t1 = GenerateUsedCars(400, 1);
  Table t2 = GenerateUsedCars(400, 2);  // different rows, same schema
  Engine e1;
  Engine e2;
  e1.SetViewCache(cache);
  e2.SetViewCache(cache);
  e1.RegisterTable("T", &t1);
  e2.RegisterTable("T", &t2);
  const std::string stmt =
      "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM T "
      "WHERE BodyType = SUV LIMIT COLUMNS 2 IUNITS 2";
  auto r1 = e1.ExecuteSql(stmt);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = e2.ExecuteSql(stmt);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  // The identical statement over a different registration must NOT hit.
  ViewCacheStats stats = cache->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.inserts, 2u);
}

TEST(EngineSharedCacheTest, SharedSnapshotRegistrationsShareEntries) {
  auto cache = std::make_shared<ViewCache>();
  Table t = GenerateUsedCars(400, 1);
  const std::string snapshot = MakeSnapshotDatasetId("T");
  Engine e1;
  Engine e2;
  e1.SetViewCache(cache);
  e2.SetViewCache(cache);
  // Both engines name the same immutable snapshot — the multi-session
  // server's arrangement — so they share cache entries.
  e1.RegisterTableSnapshot("T", &t, snapshot);
  e2.RegisterTableSnapshot("T", &t, snapshot);
  const std::string stmt =
      "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM T "
      "WHERE BodyType = SUV LIMIT COLUMNS 2 IUNITS 2";
  auto r1 = e1.ExecuteSql(stmt);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = e2.ExecuteSql(stmt);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ViewCacheStats stats = cache->stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(r1->rendered, r2->rendered);
}

TEST(EngineSharedCacheTest, ReRegistrationInvalidatesItsOwnSnapshotOnly) {
  auto cache = std::make_shared<ViewCache>();
  Table t = GenerateUsedCars(400, 1);
  Engine engine;
  engine.SetViewCache(cache);
  engine.RegisterTable("T", &t);
  const std::string stmt =
      "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM T "
      "WHERE BodyType = SUV LIMIT COLUMNS 2 IUNITS 2";
  ASSERT_TRUE(engine.ExecuteSql(stmt).ok());
  EXPECT_EQ(cache->stats().entries, 1u);
  // Re-registering (same pointer, "reloaded" data) drops the old snapshot's
  // entries and the rebuild is a miss.
  engine.RegisterTable("T", &t);
  EXPECT_EQ(cache->stats().entries, 0u);
  EXPECT_GE(cache->stats().invalidations, 1u);
  ASSERT_TRUE(engine.ExecuteSql(stmt).ok());
  ViewCacheStats stats = cache->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.inserts, 2u);
}

}  // namespace
}  // namespace dbx
