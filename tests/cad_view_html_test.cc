// Tests for the HTML renderer.

#include <gtest/gtest.h>

#include "src/core/cad_view_builder.h"
#include "src/core/cad_view_html.h"
#include "src/data/used_cars.h"

namespace dbx {
namespace {

class CadViewHtmlTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(GenerateUsedCars(2000, 3));
    CadViewOptions o;
    o.pivot_attr = "Make";
    o.pivot_values = {"Ford", "Jeep", "Toyota"};
    o.max_compare_attrs = 4;
    o.iunits_per_value = 2;
    o.seed = 5;
    view_ = new CadView(
        std::move(BuildCadView(TableSlice::All(*table_), o)).value());
  }
  static void TearDownTestSuite() {
    delete view_;
    delete table_;
    view_ = nullptr;
    table_ = nullptr;
  }
  static Table* table_;
  static CadView* view_;
};

Table* CadViewHtmlTest::table_ = nullptr;
CadView* CadViewHtmlTest::view_ = nullptr;

TEST(HtmlEscapeTest, EscapesMarkup) {
  EXPECT_EQ(HtmlEscape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&#39;");
  EXPECT_EQ(HtmlEscape("plain"), "plain");
}

TEST_F(CadViewHtmlTest, CompleteDocumentStructure) {
  HtmlRenderOptions opt;
  opt.title = "Compare <Makes>";
  std::string html = RenderCadViewHtml(*view_, opt);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  // Title is escaped.
  EXPECT_NE(html.find("Compare &lt;Makes&gt;"), std::string::npos);
  EXPECT_EQ(html.find("<Makes>"), std::string::npos);
  // Every pivot value and compare attribute appears.
  for (const CadViewRow& row : view_->rows) {
    EXPECT_NE(html.find("<b>" + row.pivot_value + "</b>"), std::string::npos);
  }
  for (const CompareAttribute& ca : view_->compare_attrs) {
    EXPECT_NE(html.find(ca.name), std::string::npos);
  }
}

TEST_F(CadViewHtmlTest, IUnitCellsCarryClickWiring) {
  std::string html = RenderCadViewHtml(*view_, HtmlRenderOptions{});
  EXPECT_NE(html.find("dbxHighlightSimilar(0,0)"), std::string::npos);
  EXPECT_NE(html.find("data-row=\"0\""), std::string::npos);
  EXPECT_NE(html.find("const dbxView = {"), std::string::npos);
  EXPECT_NE(html.find("const dbxSimilar = ["), std::string::npos);
}

TEST_F(CadViewHtmlTest, HighlightsPreMarked) {
  HtmlRenderOptions opt;
  opt.highlights = {{0, 0, 0.0}};
  std::string html = RenderCadViewHtml(*view_, opt);
  EXPECT_NE(html.find("class=\"iunit highlight\""), std::string::npos);
}

TEST_F(CadViewHtmlTest, JsonEmbeddingOptional) {
  HtmlRenderOptions opt;
  opt.embed_json = false;
  std::string html = RenderCadViewHtml(*view_, opt);
  EXPECT_EQ(html.find("const dbxView"), std::string::npos);
  EXPECT_EQ(html.find("<script>"), std::string::npos);
}

TEST_F(CadViewHtmlTest, Deterministic) {
  EXPECT_EQ(RenderCadViewHtml(*view_, HtmlRenderOptions{}),
            RenderCadViewHtml(*view_, HtmlRenderOptions{}));
}

}  // namespace
}  // namespace dbx
