// Tests for the TPFacet two-phase session (paper §5).

#include <gtest/gtest.h>

#include "src/data/used_cars.h"
#include "src/explorer/tpfacet_session.h"

namespace dbx {
namespace {

class TpFacetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { table_ = new Table(GenerateUsedCars(2000, 3)); }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  TpFacetSession MakeSession() {
    CadViewOptions cad;
    cad.max_compare_attrs = 4;
    cad.iunits_per_value = 2;
    cad.seed = 5;
    auto s = TpFacetSession::Create(table_, DiscretizerOptions{}, cad);
    EXPECT_TRUE(s.ok());
    return std::move(*s);
  }

  static Table* table_;
};

Table* TpFacetTest::table_ = nullptr;

TEST_F(TpFacetTest, PhaseToggling) {
  TpFacetSession s = MakeSession();
  EXPECT_EQ(s.phase(), TpFacetPhase::kResults);
  s.TogglePhase();
  EXPECT_EQ(s.phase(), TpFacetPhase::kQueryRevision);
  s.TogglePhase();
  EXPECT_EQ(s.phase(), TpFacetPhase::kResults);
}

TEST_F(TpFacetTest, ViewRequiresPivot) {
  TpFacetSession s = MakeSession();
  EXPECT_TRUE(s.View().status().IsFailedPrecondition());
  EXPECT_TRUE(s.SetPivot("Nope").IsNotFound());
  ASSERT_TRUE(s.SetPivot("Make").ok());
  auto v = s.View();
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ((*v)->pivot_attr, "Make");
}

TEST_F(TpFacetTest, ViewReflectsSelections) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  s.SetPivotValues({"Ford", "Jeep"});
  ASSERT_TRUE(s.SelectValue("BodyType", "SUV").ok());
  auto v = s.View();
  ASSERT_TRUE(v.ok());
  ASSERT_EQ((*v)->rows.size(), 2u);
  size_t suv_fords = (*v)->rows[0].pivot_value == "Ford"
                         ? (*v)->rows[0].partition_size
                         : (*v)->rows[1].partition_size;
  // Selecting SUV must shrink the Ford partition vs. the unfiltered table.
  ASSERT_TRUE(s.ClearAttribute("BodyType").ok());
  auto v2 = s.View();
  ASSERT_TRUE(v2.ok());
  size_t all_fords = (*v2)->rows[0].pivot_value == "Ford"
                         ? (*v2)->rows[0].partition_size
                         : (*v2)->rows[1].partition_size;
  EXPECT_LT(suv_fords, all_fords);
}

TEST_F(TpFacetTest, ViewCachedUntilInvalidated) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  auto v1 = s.View();
  ASSERT_TRUE(v1.ok());
  auto v2 = s.View();
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v1, *v2);  // same cached object
  ASSERT_TRUE(s.SelectValue("BodyType", "SUV").ok());
  auto v3 = s.View();
  ASSERT_TRUE(v3.ok());  // rebuilt (pointer may or may not differ; check data)
  EXPECT_LE((*v3)->rows[0].partition_size, (*v1)->rows[0].partition_size);
}

TEST_F(TpFacetTest, ClickIUnitReturnsSimilars) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  s.SetPivotValues({"Ford", "Chevrolet", "Jeep"});
  auto v = s.View();
  ASSERT_TRUE(v.ok());
  auto clicks = s.ClickIUnit("Ford", 0);
  ASSERT_TRUE(clicks.ok()) << clicks.status().ToString();
  for (const IUnitRef& ref : *clicks) {
    EXPECT_GE(ref.similarity, (*v)->tau);
  }
  EXPECT_TRUE(s.ClickIUnit("Nope", 0).status().IsNotFound());
}

TEST_F(TpFacetTest, ClickPivotValueReordersView) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  s.SetPivotValues({"Ford", "Chevrolet", "Jeep"});
  auto ranked = s.ClickPivotValue("Jeep");
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ((*ranked)[0].first, "Jeep");
  auto v = s.View();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)->rows[0].pivot_value, "Jeep");
}

TEST_F(TpFacetTest, OperationCountAggregates) {
  TpFacetSession s = MakeSession();
  size_t c0 = s.operation_count();
  ASSERT_TRUE(s.SelectValue("BodyType", "SUV").ok());
  s.TogglePhase();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  EXPECT_GE(s.operation_count(), c0 + 3);
}

TEST_F(TpFacetTest, UndoRestoresSelections) {
  TpFacetSession s = MakeSession();
  EXPECT_FALSE(s.CanUndo());
  EXPECT_TRUE(s.Undo().IsFailedPrecondition());

  size_t all = s.result_rows().size();
  ASSERT_TRUE(s.SelectValue("BodyType", "SUV").ok());
  size_t suvs = s.result_rows().size();
  ASSERT_TRUE(s.SelectValue("Make", "Ford").ok());
  ASSERT_LT(s.result_rows().size(), suvs);
  EXPECT_EQ(s.history_depth(), 2u);

  ASSERT_TRUE(s.Undo().ok());
  EXPECT_EQ(s.result_rows().size(), suvs);
  ASSERT_TRUE(s.Undo().ok());
  EXPECT_EQ(s.result_rows().size(), all);
  EXPECT_FALSE(s.CanUndo());
}

TEST_F(TpFacetTest, UndoRestoresPivot) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  ASSERT_TRUE(s.SetPivot("BodyType").ok());
  auto v1 = s.View();
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*v1)->pivot_attr, "BodyType");
  ASSERT_TRUE(s.Undo().ok());
  auto v2 = s.View();
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ((*v2)->pivot_attr, "Make");
}

TEST_F(TpFacetTest, FailedOperationsLeaveNoHistory) {
  TpFacetSession s = MakeSession();
  EXPECT_FALSE(s.SelectValue("Nope", "x").ok());
  EXPECT_FALSE(s.CanUndo());
}

TEST_F(TpFacetTest, ResultPageRendersTuples) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SelectValue("BodyType", "SUV").ok());
  auto page = s.RenderResultPage(0, 5, {"Make", "Price"});
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_NE(page->find("| Make"), std::string::npos);
  EXPECT_NE(page->find("results 1-5 of"), std::string::npos);

  // Past-the-end page is empty but valid.
  auto beyond = s.RenderResultPage(1000000, 5);
  ASSERT_TRUE(beyond.ok());
  EXPECT_NE(beyond->find("of"), std::string::npos);

  EXPECT_TRUE(s.RenderResultPage(0, 5, {"Nope"}).status().IsNotFound());
}

TEST_F(TpFacetTest, BuildTimingsExposed) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  EXPECT_FALSE(s.last_build_timings().has_value());
  ASSERT_TRUE(s.View().ok());
  ASSERT_TRUE(s.last_build_timings().has_value());
  EXPECT_GT(s.last_build_timings()->total_ms, 0.0);
}

}  // namespace
}  // namespace dbx
