// Tests for the TPFacet two-phase session (paper §5).

#include <gtest/gtest.h>

#include "src/core/cad_view_io.h"
#include "src/data/used_cars.h"
#include "src/explorer/tpfacet_session.h"

namespace dbx {
namespace {

class TpFacetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { table_ = new Table(GenerateUsedCars(2000, 3)); }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  TpFacetSession MakeSession() {
    CadViewOptions cad;
    cad.max_compare_attrs = 4;
    cad.iunits_per_value = 2;
    cad.seed = 5;
    auto s = TpFacetSession::Create(table_, DiscretizerOptions{}, cad);
    EXPECT_TRUE(s.ok());
    return std::move(*s);
  }

  static Table* table_;
};

Table* TpFacetTest::table_ = nullptr;

TEST_F(TpFacetTest, PhaseToggling) {
  TpFacetSession s = MakeSession();
  EXPECT_EQ(s.phase(), TpFacetPhase::kResults);
  s.TogglePhase();
  EXPECT_EQ(s.phase(), TpFacetPhase::kQueryRevision);
  s.TogglePhase();
  EXPECT_EQ(s.phase(), TpFacetPhase::kResults);
}

TEST_F(TpFacetTest, ViewRequiresPivot) {
  TpFacetSession s = MakeSession();
  EXPECT_TRUE(s.View().status().IsFailedPrecondition());
  EXPECT_TRUE(s.SetPivot("Nope").IsNotFound());
  ASSERT_TRUE(s.SetPivot("Make").ok());
  auto v = s.View();
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ((*v)->pivot_attr, "Make");
}

TEST_F(TpFacetTest, ShardedDefaultsAreOutputTransparent) {
  // Shard policy flows into the session via cad_defaults; the view it serves
  // must be byte-identical to an unsharded session's (timings excluded).
  auto serve = [&](size_t num_shards) {
    CadViewOptions cad;
    cad.max_compare_attrs = 4;
    cad.iunits_per_value = 2;
    cad.seed = 5;
    cad.sharding.num_shards = num_shards;
    cad.sharding.min_rows_per_shard = 1;
    auto s = TpFacetSession::Create(table_, DiscretizerOptions{}, cad);
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(s->SetPivot("Make").ok());
    s->SetPivotValues({"Ford", "Jeep", "Toyota"});
    auto v = s->View();
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    CadView stable = **v;
    stable.timings = CadViewTimings{};
    return CadViewToJson(stable);
  };
  const std::string unsharded = serve(1);
  EXPECT_EQ(serve(4), unsharded);
  EXPECT_EQ(serve(8), unsharded);
}

TEST_F(TpFacetTest, ViewReflectsSelections) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  s.SetPivotValues({"Ford", "Jeep"});
  ASSERT_TRUE(s.SelectValue("BodyType", "SUV").ok());
  auto v = s.View();
  ASSERT_TRUE(v.ok());
  ASSERT_EQ((*v)->rows.size(), 2u);
  size_t suv_fords = (*v)->rows[0].pivot_value == "Ford"
                         ? (*v)->rows[0].partition_size
                         : (*v)->rows[1].partition_size;
  // Selecting SUV must shrink the Ford partition vs. the unfiltered table.
  ASSERT_TRUE(s.ClearAttribute("BodyType").ok());
  auto v2 = s.View();
  ASSERT_TRUE(v2.ok());
  size_t all_fords = (*v2)->rows[0].pivot_value == "Ford"
                         ? (*v2)->rows[0].partition_size
                         : (*v2)->rows[1].partition_size;
  EXPECT_LT(suv_fords, all_fords);
}

TEST_F(TpFacetTest, ViewCachedUntilInvalidated) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  auto v1 = s.View();
  ASSERT_TRUE(v1.ok());
  auto v2 = s.View();
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v1, *v2);  // same cached object
  ASSERT_TRUE(s.SelectValue("BodyType", "SUV").ok());
  auto v3 = s.View();
  ASSERT_TRUE(v3.ok());  // rebuilt (pointer may or may not differ; check data)
  EXPECT_LE((*v3)->rows[0].partition_size, (*v1)->rows[0].partition_size);
}

TEST_F(TpFacetTest, ClickIUnitReturnsSimilars) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  s.SetPivotValues({"Ford", "Chevrolet", "Jeep"});
  auto v = s.View();
  ASSERT_TRUE(v.ok());
  auto clicks = s.ClickIUnit("Ford", 0);
  ASSERT_TRUE(clicks.ok()) << clicks.status().ToString();
  for (const IUnitRef& ref : *clicks) {
    EXPECT_GE(ref.similarity, (*v)->tau);
  }
  EXPECT_TRUE(s.ClickIUnit("Nope", 0).status().IsNotFound());
}

TEST_F(TpFacetTest, ClickPivotValueReordersView) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  s.SetPivotValues({"Ford", "Chevrolet", "Jeep"});
  auto ranked = s.ClickPivotValue("Jeep");
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ((*ranked)[0].first, "Jeep");
  auto v = s.View();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)->rows[0].pivot_value, "Jeep");
}

TEST_F(TpFacetTest, OperationCountAggregates) {
  TpFacetSession s = MakeSession();
  size_t c0 = s.operation_count();
  ASSERT_TRUE(s.SelectValue("BodyType", "SUV").ok());
  s.TogglePhase();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  EXPECT_GE(s.operation_count(), c0 + 3);
}

TEST_F(TpFacetTest, UndoRestoresSelections) {
  TpFacetSession s = MakeSession();
  EXPECT_FALSE(s.CanUndo());
  EXPECT_TRUE(s.Undo().IsFailedPrecondition());

  size_t all = s.result_rows().size();
  ASSERT_TRUE(s.SelectValue("BodyType", "SUV").ok());
  size_t suvs = s.result_rows().size();
  ASSERT_TRUE(s.SelectValue("Make", "Ford").ok());
  ASSERT_LT(s.result_rows().size(), suvs);
  EXPECT_EQ(s.history_depth(), 2u);

  ASSERT_TRUE(s.Undo().ok());
  EXPECT_EQ(s.result_rows().size(), suvs);
  ASSERT_TRUE(s.Undo().ok());
  EXPECT_EQ(s.result_rows().size(), all);
  EXPECT_FALSE(s.CanUndo());
}

TEST_F(TpFacetTest, UndoRestoresPivot) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  ASSERT_TRUE(s.SetPivot("BodyType").ok());
  auto v1 = s.View();
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*v1)->pivot_attr, "BodyType");
  ASSERT_TRUE(s.Undo().ok());
  auto v2 = s.View();
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ((*v2)->pivot_attr, "Make");
}

TEST_F(TpFacetTest, FailedOperationsLeaveNoHistory) {
  TpFacetSession s = MakeSession();
  EXPECT_FALSE(s.SelectValue("Nope", "x").ok());
  EXPECT_FALSE(s.CanUndo());
}

TEST_F(TpFacetTest, ResultPageRendersTuples) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SelectValue("BodyType", "SUV").ok());
  auto page = s.RenderResultPage(0, 5, {"Make", "Price"});
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_NE(page->find("| Make"), std::string::npos);
  EXPECT_NE(page->find("results 1-5 of"), std::string::npos);

  // Past-the-end page is empty but valid.
  auto beyond = s.RenderResultPage(1000000, 5);
  ASSERT_TRUE(beyond.ok());
  EXPECT_NE(beyond->find("of"), std::string::npos);

  EXPECT_TRUE(s.RenderResultPage(0, 5, {"Nope"}).status().IsNotFound());
}

TEST_F(TpFacetTest, BuildTimingsExposed) {
  TpFacetSession s = MakeSession();
  ASSERT_TRUE(s.SetPivot("Make").ok());
  EXPECT_FALSE(s.last_build_timings().has_value());
  ASSERT_TRUE(s.View().ok());
  ASSERT_TRUE(s.last_build_timings().has_value());
  EXPECT_GT(s.last_build_timings()->total_ms, 0.0);
}

TEST_F(TpFacetTest, TracerCollectsViewAndClickSpans) {
  TpFacetSession s = MakeSession();
  Tracer tracer;
  s.SetTracer(&tracer);
  ASSERT_TRUE(s.SetPivot("Make").ok());
  ASSERT_TRUE(s.View().ok());
  ASSERT_TRUE(s.ClickPivotValue("Ford").ok());
  bool saw_probe = false, saw_kmeans = false, saw_click = false;
  for (const TraceEvent& e : tracer.Events()) {
    saw_probe |= e.name == "cache_probe";
    saw_kmeans |= e.name == "kmeans";
    saw_click |= e.name == "click_pivot_value";
  }
  EXPECT_TRUE(saw_probe);
  EXPECT_TRUE(saw_kmeans);
  EXPECT_TRUE(saw_click);
  // Detaching returns View() to the zero-cost disabled path.
  s.SetTracer(nullptr);
  EXPECT_FALSE(s.tracer()->enabled());
}

TEST_F(TpFacetTest, DumpTraceWritesChromeJson) {
  TpFacetSession s = MakeSession();
  EXPECT_TRUE(s.DumpTrace("/ignored").IsFailedPrecondition());  // no tracer
  Tracer tracer;
  s.SetTracer(&tracer);
  ASSERT_TRUE(s.SetPivot("Make").ok());
  ASSERT_TRUE(s.View().ok());
  const std::string path = ::testing::TempDir() + "/tpfacet_trace.json";
  ASSERT_TRUE(s.DumpTrace(path).ok());
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char head[16] = {0};
  size_t n = fread(head, 1, sizeof head - 1, f);
  fclose(f);
  EXPECT_GT(n, 0u);
  EXPECT_EQ(std::string(head).rfind("{\"traceEvents\"", 0), 0u);
}

TEST_F(TpFacetTest, ExplainAnalyzeShowsColdThenWarmPath) {
  TpFacetSession s = MakeSession();
  auto cache = std::make_shared<ViewCache>();
  s.SetViewCache(cache, "cars");
  EXPECT_TRUE(s.ExplainAnalyze().status().IsFailedPrecondition());  // no pivot
  ASSERT_TRUE(s.SetPivot("Make").ok());

  auto cold = s.ExplainAnalyze();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  for (const char* stage : {"tpfacet_view", "cache_probe", "partition",
                            "chi_square", "kmeans", "labeling", "div_topk"}) {
    EXPECT_NE(cold->find(stage), std::string::npos)
        << "missing stage '" << stage << "' in:\n" << *cold;
  }
  EXPECT_NE(cold->find("result=miss"), std::string::npos) << *cold;
  EXPECT_NE(cold->find("cache: hits="), std::string::npos);

  // The first ExplainAnalyze populated the cache; the second hits it.
  auto warm = s.ExplainAnalyze();
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->find("result=hit"), std::string::npos) << *warm;
  EXPECT_EQ(warm->find("kmeans"), std::string::npos) << *warm;

  ViewCacheSnapshot snapshot = s.CacheSnapshot();
  EXPECT_EQ(snapshot.stats.hits, 1u);
  EXPECT_EQ(snapshot.stats.entries, snapshot.entries.size());
}

TEST_F(TpFacetTest, CacheSnapshotEmptyWithoutCache) {
  TpFacetSession s = MakeSession();
  ViewCacheSnapshot snapshot = s.CacheSnapshot();
  EXPECT_EQ(snapshot.stats.entries, 0u);
  EXPECT_TRUE(snapshot.entries.empty());
}

}  // namespace
}  // namespace dbx
