// Tests for the incomplete-gamma / chi-square distribution implementation,
// including parameterized inverse/identity property sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/gamma.h"

namespace dbx {
namespace {

TEST(GammaTest, ComplementarityPPlusQIsOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 3.0, 20.0}) {
      EXPECT_NEAR(GammaP(a, x) + GammaQ(a, x), 1.0, 1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(GammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(GammaQ(2.0, 0.0), 1.0);
  EXPECT_TRUE(std::isnan(GammaP(-1.0, 1.0)));
  EXPECT_TRUE(std::isnan(GammaQ(2.0, -1.0)));
}

TEST(GammaTest, KnownExponentialCase) {
  // For a=1, P(1,x) = 1 - exp(-x).
  for (double x : {0.2, 1.0, 2.5, 7.0}) {
    EXPECT_NEAR(GammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(ChiSquareDistTest, TextbookCriticalValues) {
  // Classic upper-tail critical values: P[X >= x] = alpha.
  EXPECT_NEAR(ChiSquareSf(3.841, 1), 0.05, 2e-4);
  EXPECT_NEAR(ChiSquareSf(6.635, 1), 0.01, 2e-4);
  EXPECT_NEAR(ChiSquareSf(5.991, 2), 0.05, 2e-4);
  EXPECT_NEAR(ChiSquareSf(9.488, 4), 0.05, 2e-4);
  EXPECT_NEAR(ChiSquareSf(18.307, 10), 0.05, 2e-4);
}

TEST(ChiSquareDistTest, CdfMonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 30.0; x += 0.5) {
    double c = ChiSquareCdf(x, 3);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(ChiSquareCdf(1e6, 3), 1.0, 1e-9);
}

TEST(ChiSquareDistTest, SfDecreasingInX) {
  EXPECT_GT(ChiSquareSf(1.0, 5), ChiSquareSf(2.0, 5));
  EXPECT_DOUBLE_EQ(ChiSquareSf(0.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(ChiSquareSf(-1.0, 5), 1.0);
}

// Property sweep: quantile is the inverse of the survival function.
class ChiSquareQuantileTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ChiSquareQuantileTest, QuantileInvertsSf) {
  auto [p, df] = GetParam();
  double x = ChiSquareQuantile(p, df);
  EXPECT_NEAR(ChiSquareSf(x, df), p, 1e-6)
      << "p=" << p << " df=" << df << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChiSquareQuantileTest,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.05, 0.10, 0.5, 0.9),
                       ::testing::Values(1.0, 2.0, 4.0, 10.0, 30.0)));

}  // namespace
}  // namespace dbx
