// Tests for the attribute-interaction extensions: discretization projection,
// Chow-Liu dependency trees, and soft functional-dependency discovery.

#include <gtest/gtest.h>

#include "src/data/used_cars.h"
#include "src/stats/chow_liu.h"
#include "src/stats/soft_fd.h"
#include "src/util/rng.h"

namespace dbx {
namespace {

// Chain-structured data: A -> B -> C with noise, D independent.
Table ChainTable(size_t n, uint64_t seed) {
  Schema s = std::move(Schema::Make({
                           {"A", AttrType::kCategorical, true},
                           {"B", AttrType::kCategorical, true},
                           {"C", AttrType::kCategorical, true},
                           {"D", AttrType::kCategorical, true},
                       }))
                 .value();
  Table t(s);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    int a = static_cast<int>(rng.NextBounded(3));
    int b = rng.NextBool(0.9) ? a : static_cast<int>(rng.NextBounded(3));
    int c = rng.NextBool(0.9) ? b : static_cast<int>(rng.NextBounded(3));
    int d = static_cast<int>(rng.NextBounded(3));
    EXPECT_TRUE(t.AppendRow({Value("a" + std::to_string(a)),
                             Value("b" + std::to_string(b)),
                             Value("c" + std::to_string(c)),
                             Value("d" + std::to_string(d))})
                    .ok());
  }
  return t;
}

DiscretizedTable Discretize(const Table& t) {
  return std::move(
             DiscretizedTable::Build(TableSlice::All(t), DiscretizerOptions{}))
      .value();
}

// --- DiscretizedTable::Project --------------------------------------------------

TEST(ProjectTest, KeepsDomainsAndSubsetsCodes) {
  Table t = ChainTable(100, 3);
  DiscretizedTable dt = Discretize(t);
  RowSet subset = {0, 5, 10, 99};
  DiscretizedTable p = dt.Project(subset);
  EXPECT_EQ(p.num_rows(), 4u);
  for (size_t a = 0; a < dt.num_attrs(); ++a) {
    EXPECT_EQ(p.attr(a).labels, dt.attr(a).labels);  // domain unchanged
    for (size_t i = 0; i < subset.size(); ++i) {
      EXPECT_EQ(p.attr(a).codes[i], dt.attr(a).codes[subset[i]]);
    }
  }
}

TEST(ProjectTest, NumericBinsPreserved) {
  Table cars = GenerateUsedCars(2000, 3);
  DiscretizedTable dt = Discretize(cars);
  RowSet subset;
  for (uint32_t i = 0; i < 200; ++i) subset.push_back(i * 10);
  DiscretizedTable p = dt.Project(subset);
  auto price = dt.IndexOf("Price");
  ASSERT_TRUE(price.has_value());
  EXPECT_EQ(p.attr(*price).bins.edges, dt.attr(*price).bins.edges);
}

TEST(ProjectTest, EmptyProjection) {
  Table t = ChainTable(10, 3);
  DiscretizedTable dt = Discretize(t);
  DiscretizedTable p = dt.Project({});
  EXPECT_EQ(p.num_rows(), 0u);
  EXPECT_EQ(p.num_attrs(), dt.num_attrs());
}

// --- Chow-Liu -------------------------------------------------------------------

TEST(ChowLiuTest, RecoversChainStructure) {
  Table t = ChainTable(4000, 7);
  DiscretizedTable dt = Discretize(t);
  auto tree = BuildChowLiuTree(dt);
  ASSERT_TRUE(tree.ok());
  // Edges A-B and B-C must be in the tree; D joins weakly or not at all.
  auto has_edge = [&](const std::string& x, const std::string& y) {
    for (const DependencyEdge& e : tree->edges) {
      if ((e.attr_a == x && e.attr_b == y) ||
          (e.attr_a == y && e.attr_b == x)) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_edge("A", "B"));
  EXPECT_TRUE(has_edge("B", "C"));
  EXPECT_FALSE(has_edge("A", "C"));  // indirect link pruned by the MST
  // Edges sorted strongest-first and all positive.
  for (size_t i = 1; i < tree->edges.size(); ++i) {
    EXPECT_GE(tree->edges[i - 1].mutual_information,
              tree->edges[i].mutual_information);
  }
  EXPECT_GT(tree->total_information(), 1.0);
  EXPECT_FALSE(tree->ToString().empty());
}

TEST(ChowLiuTest, TreeHasAtMostNMinusOneEdges) {
  Table t = ChainTable(500, 9);
  DiscretizedTable dt = Discretize(t);
  auto tree = BuildChowLiuTree(dt);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->edges.size(), dt.num_attrs() - 1);
}

TEST(ChowLiuTest, UsedCarsMakeModelEdge) {
  Table cars = GenerateUsedCars(5000, 7);
  DiscretizedTable dt = Discretize(cars);
  auto tree = BuildChowLiuTree(dt);
  ASSERT_TRUE(tree.ok());
  // The strongest dependency in the data is Make -- Model.
  ASSERT_FALSE(tree->edges.empty());
  const DependencyEdge& top = tree->edges.front();
  bool is_make_model = (top.attr_a == "Make" && top.attr_b == "Model") ||
                       (top.attr_a == "Model" && top.attr_b == "Make");
  EXPECT_TRUE(is_make_model)
      << top.attr_a << " -- " << top.attr_b;
}

TEST(ChowLiuTest, Errors) {
  Table t = ChainTable(50, 3);
  DiscretizedTable dt = Discretize(t);
  EXPECT_TRUE(BuildChowLiuTree(dt, {0}).status().IsInvalidArgument());
  EXPECT_TRUE(BuildChowLiuTree(dt, {0, 99}).status().IsOutOfRange());
}

// --- Soft FDs --------------------------------------------------------------------

TEST(SoftFdTest, ExactDependencyStrengthOne) {
  Schema s = std::move(Schema::Make({
                           {"Model", AttrType::kCategorical, true},
                           {"Make", AttrType::kCategorical, true},
                       }))
                 .value();
  Table t(s);
  const char* pairs[][2] = {{"m1", "Ford"}, {"m2", "Ford"}, {"m3", "Jeep"}};
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const auto& p = pairs[rng.NextBounded(3)];
    ASSERT_TRUE(t.AppendRow({Value(p[0]), Value(p[1])}).ok());
  }
  DiscretizedTable dt = Discretize(t);
  auto fd = MeasureSoftFd(dt, 0, 1);
  ASSERT_TRUE(fd.ok());
  EXPECT_DOUBLE_EQ(fd->strength, 1.0);
  EXPECT_GT(fd->Lift(), 0.99);
  // Reverse direction is not functional (Ford -> {m1, m2}).
  auto rev = MeasureSoftFd(dt, 1, 0);
  ASSERT_TRUE(rev.ok());
  EXPECT_LT(rev->strength, 1.0);
}

TEST(SoftFdTest, IndependentAttributesHaveLowLift) {
  Table t = ChainTable(3000, 5);
  DiscretizedTable dt = Discretize(t);
  auto a_idx = dt.IndexOf("A");
  auto d_idx = dt.IndexOf("D");
  auto fd = MeasureSoftFd(dt, *a_idx, *d_idx);
  ASSERT_TRUE(fd.ok());
  EXPECT_LT(fd->Lift(), 0.1);
}

TEST(SoftFdTest, DiscoverFindsModelMakeInUsedCars) {
  Table cars = GenerateUsedCars(5000, 7);
  DiscretizedTable dt = Discretize(cars);
  SoftFdOptions opt;
  opt.min_strength = 0.95;
  opt.min_lift = 0.5;
  auto fds = DiscoverSoftFds(dt, opt);
  ASSERT_TRUE(fds.ok());
  bool model_make = false;
  for (const SoftFd& fd : *fds) {
    if (fd.determinant_name == "Model" && fd.dependent_name == "Make") {
      model_make = true;
      EXPECT_DOUBLE_EQ(fd.strength, 1.0);  // exact by construction
    }
    // No discovered FD may dip under the thresholds.
    EXPECT_GE(fd.strength, opt.min_strength);
    EXPECT_GE(fd.Lift(), opt.min_lift);
  }
  EXPECT_TRUE(model_make);
}

TEST(SoftFdTest, Errors) {
  Table t = ChainTable(20, 3);
  DiscretizedTable dt = Discretize(t);
  EXPECT_TRUE(MeasureSoftFd(dt, 0, 0).status().IsInvalidArgument());
  EXPECT_TRUE(MeasureSoftFd(dt, 0, 42).status().IsOutOfRange());
}

// Parameterized: strength is monotone in the noise level of a planted FD.
class SoftFdNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(SoftFdNoiseTest, StrengthTracksFidelity) {
  double fidelity = GetParam();
  Schema s = std::move(Schema::Make({
                           {"X", AttrType::kCategorical, true},
                           {"Y", AttrType::kCategorical, true},
                       }))
                 .value();
  Table t(s);
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    int x = static_cast<int>(rng.NextBounded(4));
    int y = rng.NextBool(fidelity) ? x : static_cast<int>(rng.NextBounded(4));
    ASSERT_TRUE(t.AppendRow({Value("x" + std::to_string(x)),
                             Value("y" + std::to_string(y))})
                    .ok());
  }
  DiscretizedTable dt = Discretize(t);
  auto fd = MeasureSoftFd(dt, 0, 1);
  ASSERT_TRUE(fd.ok());
  // Expected strength ~ fidelity + (1 - fidelity) / 4.
  double expected = fidelity + (1.0 - fidelity) * 0.25;
  EXPECT_NEAR(fd->strength, expected, 0.04) << "fidelity " << fidelity;
}

INSTANTIATE_TEST_SUITE_P(Fidelity, SoftFdNoiseTest,
                         ::testing::Values(0.5, 0.7, 0.9, 0.99));

}  // namespace
}  // namespace dbx
