// Unit tests for src/util: Status/Result, Rng, string helpers, AsciiTable.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/ascii_table.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/string_util.h"

namespace dbx {
namespace {

// --- Status ------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    DBX_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

// --- Result ------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto produce = []() -> Result<int> { return 5; };
  auto fail = []() -> Result<int> { return Status::Internal("boom"); };
  auto user = [&](bool ok_path) -> Result<int> {
    if (ok_path) {
      DBX_ASSIGN_OR_RETURN(int v, produce());
      return v + 1;
    }
    DBX_ASSIGN_OR_RETURN(int v, fail());
    return v + 1;
  };
  EXPECT_EQ(*user(true), 6);
  EXPECT_TRUE(user(false).status().IsInternal());
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.NextU64() != b.NextU64();
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextBounded(17), 17u);
    EXPECT_EQ(r.NextBounded(1), 0u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng r(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng r(99);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = r.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, WeightedNeverPicksZeroWeight) {
  Rng r(5);
  std::vector<double> w = {0.0, 1.0, 0.0, 3.0};
  for (int i = 0; i < 500; ++i) {
    size_t idx = r.NextWeighted(w);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(RngTest, WeightedRespectsProportions) {
  Rng r(5);
  std::vector<double> w = {1.0, 3.0};
  int counts[2] = {0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[r.NextWeighted(w)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng r(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIndependentStream) {
  Rng a(3);
  Rng b = a.Fork();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

// --- string_util -------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToUpper("MiXeD"), "MIXED");
  EXPECT_TRUE(EqualsIgnoreCase("Make", "mAkE"));
  EXPECT_FALSE(EqualsIgnoreCase("Make", "Makes"));
  EXPECT_TRUE(StartsWith("CADVIEW x", "CADVIEW"));
  EXPECT_FALSE(StartsWith("CAD", "CADVIEW"));
}

TEST(StringUtilTest, ParseDoubleStrict) {
  double d;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_TRUE(ParseDouble("  -2e3 ", &d));
  EXPECT_DOUBLE_EQ(d, -2000.0);
  EXPECT_FALSE(ParseDouble("3.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
}

TEST(StringUtilTest, ParseInt64Strict) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("42.5", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(StringPrintf("%s=%d", "k", 6), "k=6");
}

// --- AsciiTable ----------------------------------------------------------------

TEST(AsciiTableTest, RendersHeaderAndRows) {
  AsciiTable t;
  t.SetHeader({"A", "B"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| A "), std::string::npos);
  EXPECT_NE(out.find("| 333 "), std::string::npos);
  // Header separator plus top/bottom rules.
  size_t rules = 0;
  for (size_t p = out.find("+--"); p != std::string::npos;
       p = out.find("+--", p + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 3u);
}

TEST(AsciiTableTest, EmptyWithoutHeader) {
  AsciiTable t;
  t.AddRow({"x"});
  EXPECT_EQ(t.Render(), "");
}

TEST(AsciiTableTest, ShortRowsPadded) {
  AsciiTable t;
  t.SetHeader({"A", "B", "C"});
  t.AddRow({"only"});
  std::string out = t.Render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(AsciiTableTest, MultilineCellsExpandRow) {
  AsciiTable t;
  t.SetHeader({"A", "B"});
  t.AddRow({"x\ny", "z"});
  std::string out = t.Render();
  // Two content lines between the header rule and the bottom rule.
  EXPECT_NE(out.find("| x "), std::string::npos);
  EXPECT_NE(out.find("| y "), std::string::npos);
}

TEST(AsciiTableTest, WordWrapRespectsMaxWidth) {
  AsciiTable t;
  t.SetHeader({"A"});
  t.SetMaxColumnWidth(8);
  t.AddRow({"aaaa bbbb cccc"});
  std::string out = t.Render();
  for (const std::string& line : Split(out, '\n')) {
    EXPECT_LE(line.size(), 8u + 4u);  // content + "| " + " |"
  }
}

TEST(RngTest, WeightedEmptyAndAllZero) {
  Rng r(1);
  std::vector<double> empty;
  EXPECT_EQ(r.NextWeighted(empty), 0u);
  std::vector<double> zeros = {0.0, 0.0, 0.0};
  EXPECT_EQ(r.NextWeighted(zeros), 0u);
}

TEST(AsciiTableTest, WidthOneStillRenders) {
  AsciiTable t;
  t.SetHeader({"A"});
  t.SetMaxColumnWidth(1);
  t.AddRow({"xyz"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| x |"), std::string::npos);
  EXPECT_NE(out.find("| z |"), std::string::npos);
}

TEST(AsciiTableTest, LongWordHardBroken) {
  AsciiTable t;
  t.SetHeader({"A"});
  t.SetMaxColumnWidth(4);
  t.AddRow({"abcdefghij"});
  std::string out = t.Render();
  EXPECT_NE(out.find("abcd"), std::string::npos);
  EXPECT_NE(out.find("efgh"), std::string::npos);
}

}  // namespace
}  // namespace dbx
