// Copyright (c) DBExplorer reproduction authors.
// Algorithm 1 of the paper (§4.1): IUnit-pair similarity as the sum of
// per-Compare-Attribute cosine similarities between cluster term-frequency
// vectors. Range is [0, |I|] for |I| Compare Attributes; the similarity
// threshold is chosen as tau = alpha * |I| with alpha in (0, 1).

#pragma once

#include "src/core/iunit.h"

namespace dbx {

/// Algorithm 1: sum over Compare Attributes of the cosine similarity between
/// the two IUnits' per-attribute frequency vectors. Both IUnits must be
/// labeled over the same Compare Attribute list.
double IUnitSimilarity(const IUnit& a, const IUnit& b);

/// True when IUnitSimilarity(a, b) >= tau (the paper's a ≈ b relation).
bool IUnitsSimilar(const IUnit& a, const IUnit& b, double tau);

/// The default threshold tau = alpha * num_compare_attrs.
double DefaultTau(size_t num_compare_attrs, double alpha);

}  // namespace dbx
