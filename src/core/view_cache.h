// Copyright (c) DBExplorer reproduction authors.
// Session-scoped memoization of CAD View builds. The TPFacet workflow (paper
// §6) is a sequence of drill-downs whose selection contexts overlap almost
// entirely; this layer keys finished views by their canonicalized build
// request so drill-down/roll-back steps and repeated CADVIEW statements
// short-circuit, and seeds strictly-refined rebuilds with the cached
// partition row-id lists (partial reuse).
//
// Determinism contract: for any cache state — cold, warm, or partially
// evicted — the serialized CAD View handed back to a caller is byte-identical
// to an uncached build. A hit returns the bytes of the original build
// verbatim; a seeded (partial-reuse) build feeds the builder exactly the
// partitions a full rescan would produce. Wall-clock timings remain the one
// legitimately run-varying field, as everywhere else in the pipeline.
//
// Thread safety: every public method is safe to call concurrently; builds
// already fan out on the shared thread pool, so lookups/inserts from parallel
// sessions hold one internal mutex and entries are immutable after insert.

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cad_view.h"
#include "src/core/cad_view_builder.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace dbx {

/// Collapses whitespace runs to single spaces and trims, so textually
/// different spellings of one predicate ("a  =  1" vs "a = 1") key equal.
std::string CanonicalizePredicate(const std::string& predicate);

/// Mints a dataset id naming one *registration* of a table, not the bare
/// table name: "name@<n>" with a process-unique, monotonically increasing
/// n. Cache keys built from snapshot ids can never collide across two
/// registrations of the same name — two engines sharing one cache that each
/// register a different table as "T" get disjoint key spaces instead of
/// serving each other stale partitions. Invalidation then only has to drop
/// the superseded snapshot's entries to reclaim budget, never for
/// correctness.
std::string MakeSnapshotDatasetId(const std::string& name);

/// Canonicalized identity of one CAD View build request: dataset, selection
/// predicate set, pivot attribute, pivot values, and build parameters.
struct ViewCacheKey {
  std::string dataset;
  /// Canonical predicate strings, sorted and deduplicated — the conjunctive
  /// selection context (predicates are AND-ed, so a strict superset of
  /// predicates selects a subset of rows).
  std::vector<std::string> predicates;
  std::string pivot_attr;
  std::vector<std::string> pivot_values;
  /// Fingerprint of every build parameter that shapes the output bytes
  /// (see CadViewOptionsFingerprint).
  std::string params;
  /// Length-prefixed serialization of all of the above; the map key.
  std::string canonical;

  /// Builds a key, canonicalizing `predicates` (order/whitespace-insensitive).
  static ViewCacheKey Make(std::string dataset,
                           std::vector<std::string> predicates,
                           std::string pivot_attr,
                           std::vector<std::string> pivot_values,
                           std::string params);
};

/// Deterministic fingerprint of every CadViewOptions field that affects the
/// built view's bytes. `num_threads` is excluded (the thread-pool determinism
/// contract makes it output-neutral); `pivot_attr`/`pivot_values` are carried
/// by the key itself. Returns nullopt when `options.preference` is set — an
/// opaque std::function cannot be fingerprinted, so such builds are
/// uncacheable.
std::optional<std::string> CadViewOptionsFingerprint(
    const CadViewOptions& options);

/// Cached pivot partitions in base-table row ids (ascending), the seed
/// material for partial reuse. Codes index the full-table discretized domain.
struct CachedPartitions {
  std::vector<std::pair<int32_t, std::vector<uint32_t>>> rows_by_code;
};

/// One immutable cache entry: the finished view plus the partition row-id
/// lists it was built from (empty for per-fragment-domain builds, which
/// cannot seed refinements because their codes are slice-local).
struct CachedCadView {
  CadView view;
  CachedPartitions partitions;
  /// Wall-clock cost of the original build (total_ms) — what a hit saves.
  double build_cost_ms = 0.0;
  /// Approximate in-memory footprint charged against the byte budget.
  size_t bytes = 0;
};

/// Aggregate counters. `bytes_in_use`/`entries` reflect the current store.
/// Invariant (kept by counting only resident insertions as `inserts`):
/// inserts - evictions - invalidations == entries.
struct ViewCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;           // entries that actually became resident
  uint64_t insert_attempts = 0;   // Insert() calls, incl. rejects/duplicates
  uint64_t evictions = 0;
  uint64_t invalidations = 0;   // entries removed by InvalidateDataset/Clear
  uint64_t refinement_seeds = 0;  // FindRefinementBase successes
  uint64_t oversize_rejects = 0;  // entries larger than the whole budget
  uint64_t owner_budget_rejects = 0;  // inserts over the owner's byte budget
  /// Sum of the original build costs of every hit — wall time the cache has
  /// saved the session so far.
  double hit_saved_ms = 0.0;
  size_t bytes_in_use = 0;
  size_t entries = 0;
  size_t byte_budget = 0;
};

/// Per-entry diagnostics, MRU first.
struct ViewCacheEntryInfo {
  std::string canonical;
  size_t bytes = 0;
  uint64_t hits = 0;
  double build_cost_ms = 0.0;
};

/// One coherent point-in-time picture of the cache: aggregate counters plus
/// the per-entry diagnostics, taken under a single lock acquisition — what
/// EXPLAIN ANALYZE and TpFacetSession report.
struct ViewCacheSnapshot {
  ViewCacheStats stats;
  std::vector<ViewCacheEntryInfo> entries;  // MRU first
};

/// An LRU store of finished CAD Views under a byte-size budget.
class ViewCache {
 public:
  static constexpr size_t kDefaultByteBudget = 64u << 20;  // 64 MiB

  explicit ViewCache(size_t byte_budget = kDefaultByteBudget);

  ViewCache(const ViewCache&) = delete;
  ViewCache& operator=(const ViewCache&) = delete;

  /// Returns the entry for `key` (bumping its recency and hit count), or
  /// nullptr on a miss. The returned entry stays valid after eviction.
  std::shared_ptr<const CachedCadView> Lookup(const ViewCacheKey& key);

  /// Stores a finished build. Evicts LRU entries until the new entry fits;
  /// entries larger than the whole budget are rejected. Re-inserting an
  /// existing key keeps the resident entry (both are byte-identical by the
  /// determinism contract). `owner` attributes the entry's bytes to a
  /// session for per-owner budgeting ("" = unattributed); an insert that
  /// would push the owner past its budget is rejected (the build still
  /// returns to the caller, it just isn't cached) and counted in
  /// owner_budget_rejects.
  void Insert(const ViewCacheKey& key, CadView view,
              CachedPartitions partitions, double build_cost_ms,
              const std::string& owner = "");

  /// Caps the resident bytes attributable to `owner`'s inserts. 0 removes
  /// the cap. Lookups are never budgeted — cross-session reuse is the point
  /// of a shared cache.
  void SetOwnerBudget(const std::string& owner, size_t bytes);

  /// Resident bytes currently attributed to `owner`.
  size_t OwnerBytes(const std::string& owner) const;

  /// Finds a seed donor for partial reuse: an entry over the same dataset,
  /// pivot attribute, and params whose predicate set is a strict subset of
  /// `key.predicates` (so its fragment is a superset of the new one) and
  /// whose pivot-value list is empty (all values) or identical. Prefers the
  /// most refined donor (largest predicate set), breaking ties by canonical
  /// key, so the choice is deterministic. Returns nullptr when none applies.
  std::shared_ptr<const CachedCadView> FindRefinementBase(
      const ViewCacheKey& key);

  /// Invalidation hook for table reload/mutation: drops every entry of
  /// `dataset`.
  void InvalidateDataset(const std::string& dataset);

  /// Drops everything (counted as invalidations).
  void Clear();

  ViewCacheStats stats() const;
  std::vector<ViewCacheEntryInfo> EntryInfos() const;
  /// stats() + EntryInfos() under one lock acquisition.
  ViewCacheSnapshot Snapshot() const;
  size_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    ViewCacheKey key;
    std::shared_ptr<const CachedCadView> value;
    std::list<std::string>::iterator lru_pos;  // into lru_, front = MRU
    uint64_t hits = 0;
    std::string owner;  // budget attribution; "" = unattributed
  };

  void EvictLruLocked() DBX_REQUIRES(mu_);
  /// Removes `bytes` from `owner`'s attribution, erasing the record when it
  /// reaches zero and carries no budget.
  void ReleaseOwnerBytesLocked(const std::string& owner, size_t bytes)
      DBX_REQUIRES(mu_);
  std::vector<ViewCacheEntryInfo> EntryInfosLocked() const DBX_REQUIRES(mu_);

  const size_t byte_budget_;
  mutable Mutex mu_;
  std::list<std::string> lru_ DBX_GUARDED_BY(mu_);  // canonical keys, front = MRU
  std::unordered_map<std::string, Entry> entries_ DBX_GUARDED_BY(mu_);
  /// Per-owner accounting: resident bytes and (optional, 0 = none) budget.
  struct OwnerAccount {
    size_t bytes = 0;
    size_t budget = 0;
  };
  std::map<std::string, OwnerAccount> owners_ DBX_GUARDED_BY(mu_);
  ViewCacheStats stats_ DBX_GUARDED_BY(mu_);
};

/// Approximate heap footprint of a view — the byte-budget charge unit.
/// Exposed so tests and tools can size budgets.
size_t ApproxCadViewBytes(const CadView& view);

/// Converts a build's partition positions (into a projected DiscretizedTable
/// whose row order is `fragment_rows`) to base-table row ids for caching.
CachedPartitions PartitionsToBaseRows(const PartitionSeed& partitions,
                                      const RowSet& fragment_rows);

/// Intersects a donor's cached partitions (base-table row ids, ascending)
/// with a strictly-refined fragment's ascending row ids, yielding members as
/// positions into `fragment_rows` — exactly the partitions a full rescan of
/// the refined fragment would produce. Codes whose intersection is empty are
/// dropped (a rescan would count them at frequency zero).
PartitionSeed IntersectPartitions(const CachedPartitions& base,
                                  const RowSet& fragment_rows);

}  // namespace dbx
