// Copyright (c) DBExplorer reproduction authors.
// Text rendering of a CAD View in the layout of the paper's Table 1: one row
// per Pivot-Attribute value, a Compare-Attributes column, and one column per
// IUnit rank, each cell stacking the "[value, value]" groups per attribute.

#pragma once

#include <string>
#include <vector>

#include "src/core/cad_view.h"

namespace dbx {

struct RenderOptions {
  /// Highlighted IUnits (e.g. the result of HIGHLIGHT SIMILAR IUNITS); they
  /// are marked with a '*' in the header cell.
  std::vector<IUnitRef> highlights;
  /// Hard cap on cell width (word-wrapped). 0 = unlimited.
  size_t max_cell_width = 28;
  /// Show each row's partition size next to the pivot value.
  bool show_partition_sizes = false;
};

/// Renders the view as an ASCII table (paper Table 1 layout).
std::string RenderCadView(const CadView& view, const RenderOptions& options);

/// Convenience overload with default options.
std::string RenderCadView(const CadView& view);

/// One-line-per-stage timing summary (Figure 8's decomposition).
std::string RenderTimings(const CadViewTimings& timings);

}  // namespace dbx
