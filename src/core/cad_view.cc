#include "src/core/cad_view.h"

#include <algorithm>

#include "src/core/iunit_similarity.h"
#include "src/core/ranked_list_distance.h"

namespace dbx {

Result<size_t> CadView::RowIndexOf(const std::string& pivot_value) const {
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].pivot_value == pivot_value) return i;
  }
  return Status::NotFound("no CAD View row for pivot value '" + pivot_value +
                          "'");
}

Result<std::vector<IUnitRef>> CadView::FindSimilarIUnits(
    const std::string& pivot_value, size_t iunit_rank,
    double min_similarity) const {
  DBX_ASSIGN_OR_RETURN(size_t row_idx, RowIndexOf(pivot_value));
  const CadViewRow& row = rows[row_idx];
  if (iunit_rank >= row.iunits.size()) {
    return Status::OutOfRange("IUnit rank " + std::to_string(iunit_rank) +
                              " out of range for '" + pivot_value + "'");
  }
  const IUnit& target = row.iunits[iunit_rank];

  std::vector<IUnitRef> matches;
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t u = 0; u < rows[r].iunits.size(); ++u) {
      if (r == row_idx && u == iunit_rank) continue;
      double sim = IUnitSimilarity(target, rows[r].iunits[u]);
      if (sim >= min_similarity) {
        matches.push_back(IUnitRef{r, u, sim});
      }
    }
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const IUnitRef& a, const IUnitRef& b) {
                     return a.similarity > b.similarity;
                   });
  return matches;
}

Result<std::vector<std::pair<std::string, double>>>
CadView::RankRowsBySimilarity(const std::string& pivot_value) const {
  DBX_ASSIGN_OR_RETURN(size_t row_idx, RowIndexOf(pivot_value));
  const CadViewRow& anchor = rows[row_idx];

  std::vector<std::pair<std::string, double>> ranked;
  ranked.reserve(rows.size());
  for (const CadViewRow& r : rows) {
    double d = RankedListDistance(anchor.iunits, r.iunits, tau);
    ranked.emplace_back(r.pivot_value, d);
  }
  // Ascending distance; the anchor always leads (other rows can tie it at
  // distance 0 when their IUnit lists are fully similar).
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](const auto& a, const auto& b) {
                     bool a_anchor = a.first == pivot_value;
                     bool b_anchor = b.first == pivot_value;
                     if (a_anchor != b_anchor) return a_anchor;
                     return a.second < b.second;
                   });
  return ranked;
}

Status CadView::ReorderRowsBySimilarity(const std::string& pivot_value) {
  auto ranked = RankRowsBySimilarity(pivot_value);
  if (!ranked.ok()) return ranked.status();
  // Resolve all indices before moving anything out of `rows`.
  std::vector<size_t> order;
  order.reserve(rows.size());
  for (const auto& [value, dist] : *ranked) {
    auto idx = RowIndexOf(value);
    if (!idx.ok()) return idx.status();
    order.push_back(*idx);
  }
  std::vector<CadViewRow> reordered;
  reordered.reserve(rows.size());
  for (size_t idx : order) reordered.push_back(std::move(rows[idx]));
  rows = std::move(reordered);
  return Status::OK();
}

}  // namespace dbx
