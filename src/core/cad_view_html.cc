#include "src/core/cad_view_html.h"

#include "src/core/cad_view_io.h"
#include "src/util/string_util.h"

namespace dbx {

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderCadViewHtml(const CadView& view,
                              const HtmlRenderOptions& options) {
  auto highlighted = [&](size_t row, size_t iunit) {
    for (const IUnitRef& h : options.highlights) {
      if (h.row == row && h.iunit == iunit) return true;
    }
    return false;
  };

  size_t max_iunits = 0;
  for (const CadViewRow& r : view.rows) {
    max_iunits = std::max(max_iunits, r.iunits.size());
  }

  std::string html;
  html += "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n";
  html += "<title>" + HtmlEscape(options.title) + "</title>\n";
  html +=
      "<style>\n"
      "  body { font-family: sans-serif; margin: 1.5em; }\n"
      "  table.cadview { border-collapse: collapse; }\n"
      "  table.cadview th, table.cadview td {\n"
      "    border: 1px solid #999; padding: 6px 10px; vertical-align: top;\n"
      "  }\n"
      "  table.cadview th { background: #eee; }\n"
      "  td.iunit { cursor: pointer; }\n"
      "  td.iunit.highlight { background: #fff3b0; }\n"
      "  td.iunit div { white-space: nowrap; }\n"
      "  span.attr { color: #666; font-size: 85%; margin-right: 4px; }\n"
      "</style>\n</head>\n<body>\n";
  html += "<h1>" + HtmlEscape(options.title) + "</h1>\n";
  html += StringPrintf(
      "<p>pivot: <b>%s</b> &middot; %zu compare attributes &middot; "
      "&tau; = %.2f</p>\n",
      HtmlEscape(view.pivot_attr).c_str(), view.compare_attrs.size(),
      view.tau);

  html += "<table class=\"cadview\">\n<tr><th>" +
          HtmlEscape(view.pivot_attr) + "</th><th>Compare Attrs.</th>";
  for (size_t u = 0; u < max_iunits; ++u) {
    html += StringPrintf("<th>IUnit %zu</th>", u + 1);
  }
  html += "</tr>\n";

  for (size_t r = 0; r < view.rows.size(); ++r) {
    const CadViewRow& row = view.rows[r];
    html += "<tr><td><b>" + HtmlEscape(row.pivot_value) + "</b><br>" +
            StringPrintf("<small>%zu tuples</small></td>",
                         row.partition_size);
    html += "<td>";
    for (const CompareAttribute& ca : view.compare_attrs) {
      html += HtmlEscape(ca.name) + "<br>";
    }
    html += "</td>";
    for (size_t u = 0; u < max_iunits; ++u) {
      if (u >= row.iunits.size()) {
        html += "<td></td>";
        continue;
      }
      const IUnit& iu = row.iunits[u];
      html += StringPrintf(
          "<td class=\"iunit%s\" data-row=\"%zu\" data-iunit=\"%zu\" "
          "onclick=\"dbxHighlightSimilar(%zu,%zu)\">",
          highlighted(r, u) ? " highlight" : "", r, u, r, u);
      for (size_t c = 0; c < iu.cells.size(); ++c) {
        html += "<div><span class=\"attr\">" +
                HtmlEscape(view.compare_attrs[c].name) + "</span>" +
                HtmlEscape(iu.cells[c].ToDisplay()) + "</div>";
      }
      html += "</td>";
    }
    html += "</tr>\n";
  }
  html += "</table>\n";

  if (options.embed_json) {
    // Algorithm-1 similarities are precomputed pairwise so the page can
    // highlight without recomputing cosines in Javascript.
    html += "<script>\nconst dbxView = " + CadViewToJson(view) + ";\n";
    html += "const dbxTau = " + StringPrintf("%.6g", view.tau) + ";\n";
    html += R"js(
// Pairwise Algorithm-1 similarity from the embedded frequency-less labels is
// not reconstructible client-side, so the harness embeds the threshold graph.
const dbxSimilar = )js";
    // Embed the tau-similarity adjacency between all IUnits.
    html += "[";
    bool first = true;
    for (size_t r1 = 0; r1 < view.rows.size(); ++r1) {
      for (size_t u1 = 0; u1 < view.rows[r1].iunits.size(); ++u1) {
        auto matches = view.FindSimilarIUnits(view.rows[r1].pivot_value, u1,
                                              view.tau);
        if (!matches.ok()) continue;
        for (const IUnitRef& m : *matches) {
          if (!first) html += ",";
          first = false;
          html += StringPrintf("[%zu,%zu,%zu,%zu]", r1, u1, m.row, m.iunit);
        }
      }
    }
    html += "];\n";
    html += R"js(
function dbxHighlightSimilar(row, iunit) {
  document.querySelectorAll('td.iunit').forEach(td =>
      td.classList.remove('highlight'));
  const self = document.querySelector(
      `td.iunit[data-row="${row}"][data-iunit="${iunit}"]`);
  if (self) self.classList.add('highlight');
  for (const [r1, u1, r2, u2] of dbxSimilar) {
    if (r1 === row && u1 === iunit) {
      const td = document.querySelector(
          `td.iunit[data-row="${r2}"][data-iunit="${u2}"]`);
      if (td) td.classList.add('highlight');
    }
  }
}
</script>
)js";
  }
  html += "</body>\n</html>\n";
  return html;
}

}  // namespace dbx
