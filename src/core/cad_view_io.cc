#include "src/core/cad_view_io.h"

#include "src/util/string_util.h"

namespace dbx {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string Quoted(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

std::string Num(double d) {
  // Compact but full-precision-enough rendering for scores and timings.
  std::string s = StringPrintf("%.6g", d);
  return s;
}

}  // namespace

std::string CadViewToJson(const CadView& view) {
  std::string out = "{";
  out += "\"pivot_attr\":" + Quoted(view.pivot_attr);
  out += ",\"tau\":" + Num(view.tau);

  out += ",\"compare_attrs\":[";
  for (size_t i = 0; i < view.compare_attrs.size(); ++i) {
    const CompareAttribute& ca = view.compare_attrs[i];
    if (i) out += ",";
    out += "{\"name\":" + Quoted(ca.name) +
           ",\"relevance\":" + Num(ca.relevance) +
           ",\"p_value\":" + Num(ca.p_value) + ",\"user_selected\":" +
           (ca.user_selected ? "true" : "false") + "}";
  }
  out += "]";

  out += ",\"rows\":[";
  for (size_t r = 0; r < view.rows.size(); ++r) {
    const CadViewRow& row = view.rows[r];
    if (r) out += ",";
    out += "{\"pivot_value\":" + Quoted(row.pivot_value) +
           ",\"partition_size\":" + std::to_string(row.partition_size) +
           ",\"iunits\":[";
    for (size_t u = 0; u < row.iunits.size(); ++u) {
      const IUnit& iu = row.iunits[u];
      if (u) out += ",";
      out += "{\"score\":" + Num(iu.score) +
             ",\"size\":" + std::to_string(iu.size()) + ",\"cells\":[";
      for (size_t c = 0; c < iu.cells.size(); ++c) {
        const IUnitCell& cell = iu.cells[c];
        if (c) out += ",";
        out += "{\"attr\":" +
               Quoted(c < view.compare_attrs.size()
                          ? view.compare_attrs[c].name
                          : std::string()) +
               ",\"labels\":[";
        for (size_t l = 0; l < cell.labels.size(); ++l) {
          if (l) out += ",";
          out += Quoted(cell.labels[l]);
        }
        out += "],\"counts\":[";
        for (size_t l = 0; l < cell.counts.size(); ++l) {
          if (l) out += ",";
          out += std::to_string(cell.counts[l]);
        }
        out += "]}";
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]";

  out += ",\"timings_ms\":{\"discretize\":" + Num(view.timings.discretize_ms) +
         ",\"compare_attrs\":" + Num(view.timings.compare_attrs_ms) +
         ",\"iunit_gen\":" + Num(view.timings.iunit_gen_ms) +
         ",\"topk\":" + Num(view.timings.topk_ms) +
         ",\"total\":" + Num(view.timings.total_ms) + "}";
  out += "}";
  return out;
}

std::string CadViewToCsv(const CadView& view) {
  std::string out = "pivot_value,iunit_rank,score,size,attribute,labels\n";
  auto field = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char c : s) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  for (const CadViewRow& row : view.rows) {
    for (size_t u = 0; u < row.iunits.size(); ++u) {
      const IUnit& iu = row.iunits[u];
      for (size_t c = 0; c < iu.cells.size(); ++c) {
        out += field(row.pivot_value) + "," + std::to_string(u + 1) + "," +
               StringPrintf("%.3f", iu.score) + "," +
               std::to_string(iu.size()) + "," +
               field(c < view.compare_attrs.size()
                         ? view.compare_attrs[c].name
                         : std::string()) +
               "," + field(Join(iu.cells[c].labels, "|")) + "\n";
      }
    }
  }
  return out;
}

}  // namespace dbx
