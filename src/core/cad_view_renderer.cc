#include "src/core/cad_view_renderer.h"

#include <algorithm>

#include "src/util/ascii_table.h"
#include "src/util/string_util.h"

namespace dbx {

std::string RenderCadView(const CadView& view, const RenderOptions& options) {
  size_t max_iunits = 0;
  for (const CadViewRow& r : view.rows) {
    max_iunits = std::max(max_iunits, r.iunits.size());
  }

  AsciiTable t;
  t.SetMaxColumnWidth(options.max_cell_width);
  std::vector<std::string> header = {view.pivot_attr, "Compare Attrs."};
  for (size_t u = 0; u < max_iunits; ++u) {
    header.push_back("IUnit " + std::to_string(u + 1));
  }
  t.SetHeader(std::move(header));

  auto highlighted = [&](size_t row, size_t iunit) {
    for (const IUnitRef& h : options.highlights) {
      if (h.row == row && h.iunit == iunit) return true;
    }
    return false;
  };

  for (size_t r = 0; r < view.rows.size(); ++r) {
    const CadViewRow& row = view.rows[r];
    std::vector<std::string> cells;
    std::string pivot_cell = row.pivot_value;
    if (options.show_partition_sizes) {
      pivot_cell += " (" + std::to_string(row.partition_size) + ")";
    }
    cells.push_back(pivot_cell);

    std::vector<std::string> attr_names;
    attr_names.reserve(view.compare_attrs.size());
    for (const CompareAttribute& ca : view.compare_attrs) {
      attr_names.push_back(ca.name);
    }
    cells.push_back(Join(attr_names, "\n"));

    for (size_t u = 0; u < max_iunits; ++u) {
      if (u >= row.iunits.size()) {
        cells.emplace_back();
        continue;
      }
      const IUnit& iu = row.iunits[u];
      std::vector<std::string> lines;
      lines.reserve(iu.cells.size());
      for (const IUnitCell& cell : iu.cells) {
        lines.push_back(cell.labels.empty() ? "[-]" : cell.ToDisplay());
      }
      std::string body = Join(lines, "\n");
      if (highlighted(r, u)) body = "* " + body;
      cells.push_back(std::move(body));
    }
    t.AddRow(std::move(cells));
  }
  return t.Render();
}

std::string RenderCadView(const CadView& view) {
  return RenderCadView(view, RenderOptions{});
}

std::string RenderTimings(const CadViewTimings& t) {
  return StringPrintf(
      "discretize: %.2f ms | compare-attrs: %.2f ms | iunit-gen: %.2f ms | "
      "top-k: %.2f ms | others: %.2f ms | total: %.2f ms",
      t.discretize_ms, t.compare_attrs_ms, t.iunit_gen_ms, t.topk_ms,
      t.others_ms(), t.total_ms);
}

}  // namespace dbx
