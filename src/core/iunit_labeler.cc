#include "src/core/iunit_labeler.h"

#include <algorithm>

namespace dbx {

Result<IUnit> LabelCluster(const DiscretizedTable& dt,
                           const std::vector<size_t>& compare_attrs,
                           std::vector<size_t> member_positions,
                           const LabelerOptions& options) {
  if (options.max_display_count == 0) {
    return Status::InvalidArgument("max_display_count must be >= 1");
  }
  IUnit u;
  u.score = static_cast<double>(member_positions.size());
  u.cells.reserve(compare_attrs.size());
  u.attr_freqs.reserve(compare_attrs.size());

  for (size_t attr_idx : compare_attrs) {
    if (attr_idx >= dt.num_attrs()) {
      return Status::OutOfRange("compare attribute index out of range");
    }
    const DiscreteAttr& attr = dt.attr(attr_idx);

    // Cluster-local frequency of every discrete code.
    std::vector<uint64_t> freq(attr.cardinality(), 0);
    for (size_t pos : member_positions) {
      int32_t code = attr.codes[pos];
      if (code >= 0) ++freq[static_cast<size_t>(code)];
    }
    std::vector<double> freq_d(freq.size());
    for (size_t i = 0; i < freq.size(); ++i) {
      freq_d[i] = static_cast<double>(freq[i]);
    }

    // Rank codes by descending frequency (code asc to break ties
    // deterministically).
    std::vector<int32_t> order(attr.cardinality());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](int32_t a, int32_t b) {
                       if (freq[a] != freq[b]) return freq[a] > freq[b];
                       return a < b;
                     });

    // Representatives: the top value, plus further values while (a) under the
    // display budget and (b) frequency within `frequency_ratio` of the top.
    IUnitCell cell;
    if (!order.empty() && freq[order[0]] > 0) {
      uint64_t top = freq[order[0]];
      for (int32_t code : order) {
        if (cell.codes.size() >= options.max_display_count) break;
        uint64_t f = freq[code];
        if (f == 0) break;
        if (!cell.codes.empty() &&
            static_cast<double>(f) <
                options.frequency_ratio * static_cast<double>(top)) {
          break;
        }
        cell.codes.push_back(code);
        cell.labels.push_back(attr.labels[code]);
        cell.counts.push_back(f);
      }
    }
    u.cells.push_back(std::move(cell));
    u.attr_freqs.push_back(std::move(freq_d));
  }
  u.member_positions = std::move(member_positions);
  return u;
}

}  // namespace dbx
