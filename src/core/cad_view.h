// Copyright (c) DBExplorer reproduction authors.
// The Conditional Attribute Dependency (CAD) View itself (paper §2.1): one
// row per Pivot-Attribute value, a shared ordered Compare-Attribute list, and
// each row's diversified top-k IUnits — plus the two in-view search
// operations (Problems 3 and 4).

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/core/iunit.h"
#include "src/util/result.h"

namespace dbx {

/// One Compare Attribute of the view, with its relevance diagnostics.
struct CompareAttribute {
  size_t attr_index = 0;  // into the DiscretizedTable used by the builder
  std::string name;
  double relevance = 0.0;  // chi-square statistic (or ranker score)
  double p_value = 1.0;
  bool user_selected = false;  // explicitly given in the SELECT clause
};

/// One row: a Pivot-Attribute value and its ranked IUnits.
struct CadViewRow {
  std::string pivot_value;
  int32_t pivot_code = -1;
  size_t partition_size = 0;  // tuples carrying this pivot value
  std::vector<IUnit> iunits;  // best first
};

/// Per-stage build timings (milliseconds) — the decomposition reported in the
/// paper's Figure 8 (Compare-Attribute time, IUnit-generation time, others).
struct CadViewTimings {
  double discretize_ms = 0.0;
  double compare_attrs_ms = 0.0;
  double iunit_gen_ms = 0.0;  // clustering + labeling
  double topk_ms = 0.0;
  double total_ms = 0.0;

  /// Everything that is neither Compare-Attribute selection nor IUnit
  /// generation (Fig 8's "others" series).
  double others_ms() const {
    return total_ms - compare_attrs_ms - iunit_gen_ms;
  }
};

/// Reference to an IUnit inside a view: (row index, IUnit index).
struct IUnitRef {
  size_t row = 0;
  size_t iunit = 0;
  double similarity = 0.0;  // filled by FindSimilarIUnits

  bool operator==(const IUnitRef& o) const {
    return row == o.row && iunit == o.iunit;
  }
};

/// The materialized view.
class CadView {
 public:
  std::string pivot_attr;
  std::vector<CompareAttribute> compare_attrs;
  std::vector<CadViewRow> rows;
  /// IUnit-similarity threshold used for diversification and highlighting
  /// (tau = alpha * |compare_attrs|).
  double tau = 0.0;
  CadViewTimings timings;

  /// Row index of `pivot_value`; Status::NotFound if absent.
  [[nodiscard]] Result<size_t> RowIndexOf(const std::string& pivot_value) const;

  /// Problem 3 (HIGHLIGHT SIMILAR IUNITS): all IUnits in the view whose
  /// Algorithm-1 similarity to the referenced IUnit is >= `min_similarity`.
  /// `iunit_rank` is 0-based within the row. The reference IUnit itself is
  /// excluded. Results are ordered by descending similarity.
  [[nodiscard]] Result<std::vector<IUnitRef>> FindSimilarIUnits(
      const std::string& pivot_value, size_t iunit_rank,
      double min_similarity) const;

  /// Problem 4 (REORDER ROWS): every row's Algorithm-2 distance to the given
  /// row, ascending (the given row first, at distance 0 to itself).
  [[nodiscard]]
  Result<std::vector<std::pair<std::string, double>>> RankRowsBySimilarity(
      const std::string& pivot_value) const;

  /// Applies the Problem-4 ordering in place (the paper's REORDER ROWS ...
  /// ORDER BY SIMILARITY(value) DESC).
  [[nodiscard]] Status ReorderRowsBySimilarity(const std::string& pivot_value);
};

}  // namespace dbx
