// Copyright (c) DBExplorer reproduction authors.
// Machine-readable CAD View export: JSON for downstream UIs (the paper's
// TPFacet front end consumed exactly this shape over HTML/Javascript) and
// CSV for spreadsheet analysis of IUnit labels.

#pragma once

#include <string>

#include "src/core/cad_view.h"

namespace dbx {

/// Serializes the view as a JSON object:
/// {
///   "pivot_attr": ...,
///   "tau": ...,
///   "compare_attrs": [{"name":..., "relevance":..., "p_value":...,
///                      "user_selected":...}, ...],
///   "rows": [{"pivot_value":..., "partition_size":...,
///             "iunits":[{"score":..., "size":...,
///                        "cells":[{"attr":..., "labels":[...],
///                                  "counts":[...]}, ...]}, ...]}, ...],
///   "timings_ms": {...}
/// }
/// Strings are escaped per RFC 8259; output is deterministic.
std::string CadViewToJson(const CadView& view);

/// Flat CSV: one line per (pivot value, IUnit rank, compare attribute) with
/// the representative labels joined by '|'.
std::string CadViewToCsv(const CadView& view);

/// Escapes a string for embedding in a JSON document (adds no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace dbx
