// Copyright (c) DBExplorer reproduction authors.
// Algorithm 2 of the paper (§4.2): distance between two Pivot-Attribute
// values, measured as a rank-aware distance between their top-k IUnit lists.
// The paper notes no existing metric compares ranked lists of *disjoint*
// items; similarity of items substitutes for identity.

#pragma once

#include <vector>

#include "src/core/iunit.h"

namespace dbx {

/// Algorithm 2: for each IUnit in one list, find the most rank-aligned
/// similar IUnit in the other (|other|+1 when none is similar) and accumulate
/// rank displacements, symmetrically in both directions. Ranks are 1-based as
/// in the paper. Lower = more similar; 0 when the lists are rank-aligned
/// similar item by item.
///
/// `tau` is the IUnit-similarity threshold (see DefaultTau in
/// iunit_similarity.h).
double RankedListDistance(const std::vector<IUnit>& tx,
                          const std::vector<IUnit>& ty, double tau);

/// Upper bound of RankedListDistance for list sizes |tx| and |ty| (every item
/// unmatched): sum_i (|ty|+1-i) + sum_j (|tx|+1-j)... simplified closed form.
/// Useful for normalizing distances into [0, 1].
double RankedListDistanceUpperBound(size_t nx, size_t ny);

}  // namespace dbx
