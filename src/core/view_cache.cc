#include "src/core/view_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iterator>

#include "src/obs/metrics.h"

namespace dbx {
namespace {

// Process-wide cache metrics (DESIGN.md §10). Every ViewCache instance feeds
// the same series; per-instance numbers stay available via stats()/Snapshot().
struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* inserts;
  Counter* evictions;
  Counter* invalidations;
  Counter* refinement_seeds;
  Counter* oversize_rejects;
  Gauge* bytes_in_use;
  Gauge* entries;

  static CacheMetrics& Get() {
    static CacheMetrics* m = [] {
      MetricsRegistry* r = MetricsRegistry::Global();
      auto* cm = new CacheMetrics();
      cm->hits = r->GetCounter("dbx_cache_hits_total");
      cm->misses = r->GetCounter("dbx_cache_misses_total");
      cm->inserts = r->GetCounter("dbx_cache_inserts_total");
      cm->evictions = r->GetCounter("dbx_cache_evictions_total");
      cm->invalidations = r->GetCounter("dbx_cache_invalidations_total");
      cm->refinement_seeds = r->GetCounter("dbx_cache_refinement_seeds_total");
      cm->oversize_rejects = r->GetCounter("dbx_cache_oversize_rejects_total");
      cm->bytes_in_use = r->GetGauge("dbx_cache_bytes_in_use");
      cm->entries = r->GetGauge("dbx_cache_entries");
      return cm;
    }();
    return *m;
  }
};

// Length-prefixed component framing: "tag|len:payload;". Delimiters inside
// payloads cannot collide with component boundaries because the length is
// explicit.
void AppendComponent(std::string* out, const char* tag,
                     const std::string& payload) {
  out->append(tag);
  out->push_back('|');
  out->append(std::to_string(payload.size()));
  out->push_back(':');
  out->append(payload);
  out->push_back(';');
}

std::string FingerprintDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MakeSnapshotDatasetId(const std::string& name) {
  // Monotonic process-wide counter: ids are unique per registration, and
  // ordered registrations get ordered ids (handy in logs). Never reused, so
  // a key built from a snapshot id can only ever match builds over the very
  // same registration.
  static std::atomic<uint64_t> next{1};
  return name + "@" + std::to_string(next.fetch_add(1));
}

std::string CanonicalizePredicate(const std::string& predicate) {
  std::string out;
  out.reserve(predicate.size());
  bool pending_space = false;
  for (char c : predicate) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
        c == '\v') {
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  }
  return out;
}

ViewCacheKey ViewCacheKey::Make(std::string dataset,
                                std::vector<std::string> predicates,
                                std::string pivot_attr,
                                std::vector<std::string> pivot_values,
                                std::string params) {
  ViewCacheKey key;
  key.dataset = std::move(dataset);
  for (std::string& p : predicates) p = CanonicalizePredicate(p);
  std::sort(predicates.begin(), predicates.end());
  predicates.erase(std::unique(predicates.begin(), predicates.end()),
                   predicates.end());
  key.predicates = std::move(predicates);
  key.pivot_attr = std::move(pivot_attr);
  key.pivot_values = std::move(pivot_values);
  key.params = std::move(params);

  AppendComponent(&key.canonical, "ds", key.dataset);
  for (const std::string& p : key.predicates) {
    AppendComponent(&key.canonical, "pred", p);
  }
  AppendComponent(&key.canonical, "pivot", key.pivot_attr);
  for (const std::string& v : key.pivot_values) {
    AppendComponent(&key.canonical, "pv", v);
  }
  AppendComponent(&key.canonical, "params", key.params);
  return key;
}

std::optional<std::string> CadViewOptionsFingerprint(
    const CadViewOptions& options) {
  if (options.preference) {
    // An opaque preference functor cannot be fingerprinted; builds using one
    // must bypass the cache.
    return std::nullopt;
  }
  // Every field below changes the built view's bytes; num_threads is
  // deliberately absent (output-neutral by the determinism contract), and
  // pivot_attr/pivot_values live in the ViewCacheKey proper.
  std::string fp;
  auto add = [&fp](const char* name, const std::string& value) {
    AppendComponent(&fp, name, value);
  };
  for (const std::string& a : options.user_compare_attrs) add("uca", a);
  add("mca", std::to_string(options.max_compare_attrs));
  add("k", std::to_string(options.iunits_per_value));
  add("l", std::to_string(options.generated_iunits));
  add("cf", FingerprintDouble(options.candidate_factor));
  add("autol", options.auto_l ? "1" : "0");
  add("autolmax", FingerprintDouble(options.auto_l_max_factor));
  add("bins", std::to_string(options.discretizer.max_numeric_bins));
  add("binstrat",
      std::to_string(static_cast<int>(options.discretizer.strategy)));
  add("ranker",
      std::to_string(static_cast<int>(options.feature_selection.ranker)));
  add("sig", FingerprintDouble(options.feature_selection.significance));
  add("mdc", std::to_string(options.labeler.max_display_count));
  add("fratio", FingerprintDouble(options.labeler.frequency_ratio));
  add("alpha", FingerprintDouble(options.similarity_alpha));
  add("topk", std::to_string(static_cast<int>(options.topk_algorithm)));
  add("kmi", std::to_string(options.kmeans_max_iterations));
  add("seed", std::to_string(options.seed));
  add("fss", std::to_string(options.feature_selection_sample));
  add("cs", std::to_string(options.clustering_sample));
  add("adl", options.adaptive_l ? "1" : "0");
  add("adlt", std::to_string(options.adaptive_l_threshold));
  add("adlm", std::to_string(options.adaptive_l_min));
  // Shard policy (sharding.num_shards / min_rows_per_shard) is deliberately
  // absent, like num_threads: the sharded scans merge to exactly the
  // single-pass tables, so the same logical view maps to the same key. The
  // coreset knobs DO change which rows are clustered, so they fingerprint.
  add("ccl", options.sharding.coreset_clustering ? "1" : "0");
  add("ccb", std::to_string(options.sharding.coreset_budget));
  return fp;
}

ViewCache::ViewCache(size_t byte_budget) : byte_budget_(byte_budget) {
  stats_.byte_budget = byte_budget;
}

std::shared_ptr<const CachedCadView> ViewCache::Lookup(
    const ViewCacheKey& key) {
  MutexLock lock(mu_);
  auto it = entries_.find(key.canonical);
  if (it == entries_.end()) {
    ++stats_.misses;
    CacheMetrics::Get().misses->Increment();
    return nullptr;
  }
  ++stats_.hits;
  stats_.hit_saved_ms += it->second.value->build_cost_ms;
  CacheMetrics::Get().hits->Increment();
  ++it->second.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.value;
}

void ViewCache::Insert(const ViewCacheKey& key, CadView view,
                       CachedPartitions partitions, double build_cost_ms,
                       const std::string& owner) {
  auto entry = std::make_shared<CachedCadView>();
  entry->view = std::move(view);
  entry->partitions = std::move(partitions);
  entry->build_cost_ms = build_cost_ms;
  entry->bytes = ApproxCadViewBytes(entry->view);
  for (const auto& [code, rows] : entry->partitions.rows_by_code) {
    entry->bytes += sizeof(code) + rows.size() * sizeof(uint32_t);
  }

  MutexLock lock(mu_);
  ++stats_.insert_attempts;
  if (entry->bytes > byte_budget_) {
    // Not counted as an insert: the entry never becomes resident, and
    // `inserts` must track the store (inserts - evictions - invalidations ==
    // entries) or it drifts under eviction pressure.
    ++stats_.oversize_rejects;
    CacheMetrics::Get().oversize_rejects->Increment();
    return;
  }
  if (entries_.find(key.canonical) != entries_.end()) {
    // Already resident; by the determinism contract both copies hold the
    // same bytes, so keep the one whose hit history we have. Not an insert
    // either — see above.
    return;
  }
  if (!owner.empty()) {
    auto it = owners_.find(owner);
    if (it != owners_.end() && it->second.budget != 0 &&
        it->second.bytes + entry->bytes > it->second.budget) {
      // Over the session's budget: the caller keeps its finished view, the
      // shared store just declines to hold it. Global LRU eviction would
      // punish *other* sessions for this one's appetite.
      ++stats_.owner_budget_rejects;
      return;
    }
  }
  while (!lru_.empty() && stats_.bytes_in_use + entry->bytes > byte_budget_) {
    EvictLruLocked();
  }
  lru_.push_front(key.canonical);
  Entry e;
  e.key = key;
  e.value = std::move(entry);
  e.lru_pos = lru_.begin();
  e.owner = owner;
  if (!owner.empty()) owners_[owner].bytes += e.value->bytes;
  stats_.bytes_in_use += e.value->bytes;
  CacheMetrics::Get().bytes_in_use->Add(static_cast<int64_t>(e.value->bytes));
  entries_.emplace(key.canonical, std::move(e));
  stats_.entries = entries_.size();
  ++stats_.inserts;
  CacheMetrics::Get().inserts->Increment();
  CacheMetrics::Get().entries->Add(1);
}

std::shared_ptr<const CachedCadView> ViewCache::FindRefinementBase(
    const ViewCacheKey& key) {
  MutexLock lock(mu_);
  const Entry* best = nullptr;
  for (const auto& [canonical, entry] : entries_) {
    const ViewCacheKey& k = entry.key;
    if (k.dataset != key.dataset || k.pivot_attr != key.pivot_attr ||
        k.params != key.params) {
      continue;
    }
    if (!k.pivot_values.empty() && k.pivot_values != key.pivot_values) {
      continue;
    }
    if (k.predicates.size() >= key.predicates.size()) continue;
    // Strict subset check: both sides are sorted and deduplicated.
    if (!std::includes(key.predicates.begin(), key.predicates.end(),
                       k.predicates.begin(), k.predicates.end())) {
      continue;
    }
    if (entry.value->partitions.rows_by_code.empty()) continue;
    if (best == nullptr ||
        k.predicates.size() > best->key.predicates.size() ||
        (k.predicates.size() == best->key.predicates.size() &&
         k.canonical < best->key.canonical)) {
      best = &entry;
    }
  }
  if (best == nullptr) return nullptr;
  ++stats_.refinement_seeds;
  CacheMetrics::Get().refinement_seeds->Increment();
  return best->value;
}

void ViewCache::SetOwnerBudget(const std::string& owner, size_t bytes) {
  MutexLock lock(mu_);
  auto it = owners_.find(owner);
  if (bytes == 0) {
    if (it != owners_.end()) {
      it->second.budget = 0;
      if (it->second.bytes == 0) owners_.erase(it);
    }
    return;
  }
  owners_[owner].budget = bytes;
}

size_t ViewCache::OwnerBytes(const std::string& owner) const {
  MutexLock lock(mu_);
  auto it = owners_.find(owner);
  return it == owners_.end() ? 0 : it->second.bytes;
}

void ViewCache::ReleaseOwnerBytesLocked(const std::string& owner,
                                        size_t bytes) {
  if (owner.empty()) return;
  auto it = owners_.find(owner);
  if (it == owners_.end()) return;
  it->second.bytes -= std::min(it->second.bytes, bytes);
  if (it->second.bytes == 0 && it->second.budget == 0) owners_.erase(it);
}

void ViewCache::InvalidateDataset(const std::string& dataset) {
  MutexLock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.key.dataset == dataset) {
      ReleaseOwnerBytesLocked(it->second.owner, it->second.value->bytes);
      stats_.bytes_in_use -= it->second.value->bytes;
      ++stats_.invalidations;
      CacheMetrics::Get().invalidations->Increment();
      CacheMetrics::Get().bytes_in_use->Add(
          -static_cast<int64_t>(it->second.value->bytes));
      CacheMetrics::Get().entries->Add(-1);
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.entries = entries_.size();
}

void ViewCache::Clear() {
  MutexLock lock(mu_);
  stats_.invalidations += entries_.size();
  CacheMetrics::Get().invalidations->Increment(entries_.size());
  CacheMetrics::Get().bytes_in_use->Add(
      -static_cast<int64_t>(stats_.bytes_in_use));
  CacheMetrics::Get().entries->Add(-static_cast<int64_t>(entries_.size()));
  entries_.clear();
  lru_.clear();
  for (auto it = owners_.begin(); it != owners_.end();) {
    it->second.bytes = 0;
    it = it->second.budget == 0 ? owners_.erase(it) : std::next(it);
  }
  stats_.bytes_in_use = 0;
  stats_.entries = 0;
}

ViewCacheStats ViewCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::vector<ViewCacheEntryInfo> ViewCache::EntryInfosLocked() const {
  std::vector<ViewCacheEntryInfo> infos;
  infos.reserve(entries_.size());
  for (const std::string& canonical : lru_) {
    auto it = entries_.find(canonical);
    if (it == entries_.end()) continue;
    ViewCacheEntryInfo info;
    info.canonical = canonical;
    info.bytes = it->second.value->bytes;
    info.hits = it->second.hits;
    info.build_cost_ms = it->second.value->build_cost_ms;
    infos.push_back(std::move(info));
  }
  return infos;
}

std::vector<ViewCacheEntryInfo> ViewCache::EntryInfos() const {
  MutexLock lock(mu_);
  return EntryInfosLocked();
}

ViewCacheSnapshot ViewCache::Snapshot() const {
  MutexLock lock(mu_);
  ViewCacheSnapshot snapshot;
  snapshot.stats = stats_;
  snapshot.entries = EntryInfosLocked();
  return snapshot;
}

void ViewCache::EvictLruLocked() {
  const std::string& victim = lru_.back();
  auto it = entries_.find(victim);
  if (it != entries_.end()) {
    ReleaseOwnerBytesLocked(it->second.owner, it->second.value->bytes);
    stats_.bytes_in_use -= it->second.value->bytes;
    ++stats_.evictions;
    CacheMetrics::Get().evictions->Increment();
    CacheMetrics::Get().bytes_in_use->Add(
        -static_cast<int64_t>(it->second.value->bytes));
    CacheMetrics::Get().entries->Add(-1);
    entries_.erase(it);
  }
  lru_.pop_back();
  stats_.entries = entries_.size();
}

namespace {

size_t ApproxStringBytes(const std::string& s) {
  return sizeof(std::string) + s.capacity();
}

size_t ApproxIUnitBytes(const IUnit& u) {
  size_t bytes = sizeof(IUnit);
  bytes += ApproxStringBytes(u.pivot_value);
  bytes += u.member_positions.capacity() * sizeof(size_t);
  for (const IUnitCell& cell : u.cells) {
    bytes += sizeof(IUnitCell);
    bytes += cell.codes.capacity() * sizeof(int32_t);
    bytes += cell.counts.capacity() * sizeof(uint64_t);
    for (const std::string& l : cell.labels) bytes += ApproxStringBytes(l);
  }
  for (const auto& freqs : u.attr_freqs) {
    bytes += sizeof(freqs) + freqs.capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace

size_t ApproxCadViewBytes(const CadView& view) {
  size_t bytes = sizeof(CadView);
  bytes += ApproxStringBytes(view.pivot_attr);
  for (const CompareAttribute& ca : view.compare_attrs) {
    bytes += sizeof(CompareAttribute) + ApproxStringBytes(ca.name);
  }
  for (const CadViewRow& row : view.rows) {
    bytes += sizeof(CadViewRow) + ApproxStringBytes(row.pivot_value);
    for (const IUnit& u : row.iunits) bytes += ApproxIUnitBytes(u);
  }
  return bytes;
}

CachedPartitions PartitionsToBaseRows(const PartitionSeed& partitions,
                                      const RowSet& fragment_rows) {
  CachedPartitions out;
  out.rows_by_code.reserve(partitions.members_by_code.size());
  for (const auto& [code, members] : partitions.members_by_code) {
    std::vector<uint32_t> base;
    base.reserve(members.size());
    for (size_t pos : members) base.push_back(fragment_rows[pos]);
    out.rows_by_code.emplace_back(code, std::move(base));
  }
  return out;
}

PartitionSeed IntersectPartitions(const CachedPartitions& base,
                                  const RowSet& fragment_rows) {
  PartitionSeed out;
  for (const auto& [code, rows] : base.rows_by_code) {
    // Two-pointer merge over the ascending cached base-row ids and the
    // ascending refined fragment; matches become positions into the refined
    // fragment (== row positions of its projected DiscretizedTable).
    std::vector<size_t> members;
    size_t i = 0, j = 0;
    while (i < rows.size() && j < fragment_rows.size()) {
      if (rows[i] < fragment_rows[j]) {
        ++i;
      } else if (rows[i] > fragment_rows[j]) {
        ++j;
      } else {
        members.push_back(j);
        ++i;
        ++j;
      }
    }
    if (!members.empty()) out.members_by_code.emplace_back(code, members);
  }
  return out;
}

}  // namespace dbx
