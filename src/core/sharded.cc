#include "src/core/sharded.h"

#include <algorithm>
#include <iterator>

#include "src/util/thread_pool.h"

namespace dbx {

PartitionSketch ScanPartitionSketch(const std::vector<int32_t>& pivot_codes,
                                    size_t cardinality, ShardRange range) {
  PartitionSketch sketch;
  sketch.range = range;
  sketch.members.resize(cardinality);
  size_t end = std::min(range.end, pivot_codes.size());
  for (size_t i = range.begin; i < end; ++i) {
    int32_t c = pivot_codes[i];
    if (c >= 0 && static_cast<size_t>(c) < cardinality) {
      sketch.members[static_cast<size_t>(c)].push_back(i);
    }
  }
  return sketch;
}

Status MergePartitionSketch(PartitionSketch* into,
                            const PartitionSketch& from) {
  if (into->members.size() != from.members.size()) {
    return Status::InvalidArgument("partition sketch cardinality mismatch");
  }
  for (size_t c = 0; c < into->members.size(); ++c) {
    if (from.members[c].empty()) continue;
    if (into->members[c].empty()) {
      into->members[c] = from.members[c];
      continue;
    }
    std::vector<size_t> merged;
    merged.reserve(into->members[c].size() + from.members[c].size());
    std::merge(into->members[c].begin(), into->members[c].end(),
               from.members[c].begin(), from.members[c].end(),
               std::back_inserter(merged));
    into->members[c] = std::move(merged);
  }
  into->range.begin = std::min(into->range.begin, from.range.begin);
  into->range.end = std::max(into->range.end, from.range.end);
  return Status::OK();
}

PartitionSeed SeedFromSketch(const PartitionSketch& sketch) {
  PartitionSeed seed;
  for (size_t c = 0; c < sketch.members.size(); ++c) {
    if (!sketch.members[c].empty()) {
      seed.members_by_code.emplace_back(static_cast<int32_t>(c),
                                        sketch.members[c]);
    }
  }
  return seed;
}

Result<PartitionSeed> BuildShardedPartitionSeed(const DiscretizedTable& dt,
                                                size_t pivot_attr_index,
                                                const ShardOptions& sharding,
                                                size_t num_threads) {
  if (pivot_attr_index >= dt.num_attrs()) {
    return Status::OutOfRange("pivot attribute index out of range");
  }
  const DiscreteAttr& pivot = dt.attr(pivot_attr_index);
  size_t shards = EffectiveShardCount(dt.num_rows(), sharding.num_shards,
                                      sharding.min_rows_per_shard);
  std::vector<ShardRange> ranges = MakeShardRanges(dt.num_rows(), shards);
  // Each shard fills its own slot; the sequential merge below runs in shard
  // order, though MergePartitionSketch is order-insensitive anyway.
  std::vector<PartitionSketch> sketches(ranges.size());
  DBX_RETURN_IF_ERROR(ParallelFor(
      num_threads, 0, ranges.size(), 1, [&](size_t s) -> Status {
        sketches[s] =
            ScanPartitionSketch(pivot.codes, pivot.cardinality(), ranges[s]);
        return Status::OK();
      }));
  PartitionSketch merged = std::move(sketches[0]);
  for (size_t s = 1; s < sketches.size(); ++s) {
    DBX_RETURN_IF_ERROR(MergePartitionSketch(&merged, sketches[s]));
  }
  return SeedFromSketch(merged);
}

}  // namespace dbx
