// Copyright (c) DBExplorer reproduction authors.
// Sharded pivot partitioning for out-of-core-scale CAD View builds
// (DESIGN.md §13). The table's rows are split into contiguous ranges; each
// shard scans its range into a PartitionSketch (per-pivot-code member lists),
// and the sketches merge associatively into the exact PartitionSeed a
// single-pass scan would produce. The builder then continues through the
// seeded path, which is already byte-identical to the scan path — so the
// finished view's bytes are independent of the shard count, exactly as they
// are independent of the thread count.

#pragma once

#include <cstdint>
#include <vector>

#include "src/core/cad_view_builder.h"
#include "src/stats/discretizer.h"
#include "src/util/result.h"
#include "src/util/shard.h"

namespace dbx {

/// One shard's view of the pivot column: for each pivot code, the member row
/// positions inside `range`, ascending. `members[c]` indexes code c over the
/// pivot's full discretized cardinality (empty for codes absent from the
/// shard).
struct PartitionSketch {
  ShardRange range;
  std::vector<std::vector<size_t>> members;
};

/// Scans `pivot_codes[range.begin, range.end)` into a sketch. Negative codes
/// (nulls) are skipped, matching the unsharded partition scan.
PartitionSketch ScanPartitionSketch(const std::vector<int32_t>& pivot_codes,
                                    size_t cardinality, ShardRange range);

/// Folds `from` into `into` with a per-code sorted merge. For sketches over
/// disjoint row ranges the result depends only on the union of the ranges —
/// order-insensitive and associative — and equals a single scan of the
/// combined range. Fails when the cardinalities differ.
[[nodiscard]] Status MergePartitionSketch(PartitionSketch* into,
                                          const PartitionSketch& from);

/// The sketch as a PartitionSeed: codes ascending, non-empty members only —
/// exactly the lists BuildCadViewFromDiscretized's pivot-column scan would
/// collect.
PartitionSeed SeedFromSketch(const PartitionSketch& sketch);

/// Scans the pivot column of `dt` shard-parallel (one task per shard on the
/// shared pool) and merges the per-shard sketches in shard order. The result
/// is identical to a single-pass scan for any shard or thread count.
[[nodiscard]] Result<PartitionSeed> BuildShardedPartitionSeed(
    const DiscretizedTable& dt, size_t pivot_attr_index,
    const ShardOptions& sharding, size_t num_threads);

}  // namespace dbx
