// Copyright (c) DBExplorer reproduction authors.
// HTML rendering of a CAD View — the output format of the paper's TPFacet
// prototype ("return the resulting CAD View and similarity information using
// HTML and Javascript", §6.1). Produces a self-contained document: the Table
// 1 layout, click-to-highlight wiring for similar IUnits, and the view's
// JSON embedded for scripting.

#pragma once

#include <string>

#include "src/core/cad_view.h"

namespace dbx {

struct HtmlRenderOptions {
  /// Document title.
  std::string title = "CAD View";
  /// Pre-highlighted IUnits (e.g. HIGHLIGHT SIMILAR IUNITS results).
  std::vector<IUnitRef> highlights;
  /// Embed the view's JSON (data-* payload + <script> constant) so front-end
  /// code can re-rank and highlight without a server round trip.
  bool embed_json = true;
};

/// Renders a complete standalone HTML document.
std::string RenderCadViewHtml(const CadView& view,
                              const HtmlRenderOptions& options);

/// Escapes text for an HTML context.
std::string HtmlEscape(const std::string& s);

}  // namespace dbx
