// Copyright (c) DBExplorer reproduction authors.
// Diversified top-k selection (paper §3.2, following Qin, Yu & Chang [25]):
// choose at most k items, no two of which are "similar", maximizing the score
// sum. Equivalent to maximum-weight independent set (NP-hard); the paper uses
// Qin et al.'s exact div-astar because candidate sets are small (l ≈ 1.5k).
// The greedy and diversity-blind variants exist for the ablation benches —
// the paper cites that greedy can be arbitrarily bad.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/result.h"

namespace dbx {

/// Symmetric boolean similarity relation over n items. Byte-backed (not
/// std::vector<bool>) so parallel builders may set disjoint cells from
/// different threads without locking.
class SimilarityGraph {
 public:
  explicit SimilarityGraph(size_t n) : n_(n), adj_(n * n, 0) {}

  size_t size() const { return n_; }

  void SetSimilar(size_t i, size_t j) {
    adj_[i * n_ + j] = 1;
    adj_[j * n_ + i] = 1;
  }

  bool Similar(size_t i, size_t j) const { return adj_[i * n_ + j] != 0; }

 private:
  size_t n_;
  std::vector<uint8_t> adj_;  // row-major n x n
};

enum class DivTopKAlgorithm {
  /// Exact best-first search (Qin et al.'s div-astar). Items beyond 64 fall
  /// back to greedy (candidate sets in this system are far smaller).
  kDivAstar,
  /// Take the best non-conflicting item repeatedly.
  kGreedy,
  /// Ignore similarity entirely (pure top-k by score) — ablation baseline.
  kNoDiversity,
};

const char* DivTopKAlgorithmName(DivTopKAlgorithm a);

/// Returns indices of the chosen items (sorted by descending score). Requires
/// scores.size() == graph.size(); k >= 1.
[[nodiscard]]
Result<std::vector<size_t>> DiversifiedTopK(const std::vector<double>& scores,
                                            const SimilarityGraph& graph,
                                            size_t k,
                                            DivTopKAlgorithm algorithm);

/// Total score of a selection.
double SelectionScore(const std::vector<double>& scores,
                      const std::vector<size_t>& chosen);

/// True iff no two chosen items are similar (condition 2 of the paper's
/// Diversified Top-k definition).
bool SelectionIsDiverse(const SimilarityGraph& graph,
                        const std::vector<size_t>& chosen);

}  // namespace dbx
