// Copyright (c) DBExplorer reproduction authors.
// Surrogate queries for hidden attributes — the operational answer to the
// paper's Limitation 2: "It is possible that queriable attributes ... can be
// used as surrogates to express her preference for a 4 cylinder engine.
// However, such cross-attribute relationships are completely opaque to
// Mary." The CAD View surfaces them visually; this module computes them
// directly: given a target condition on a (possibly non-queriable)
// attribute, find the queriable 1-2 value conditions that best retrieve the
// same tuples.

#pragma once

#include <string>
#include <vector>

#include "src/stats/discretizer.h"
#include "src/util/result.h"

namespace dbx {

/// One candidate surrogate selection.
struct Surrogate {
  /// The surrogate conditions as (attribute name, discrete value label)
  /// pairs, AND-ed together (values on the same attribute OR-ed).
  std::vector<std::pair<std::string, std::string>> conditions;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

struct SurrogateOptions {
  /// Max conditions per surrogate (the paper's examples use up to two).
  size_t max_conditions = 2;
  /// How many single-condition candidates are considered for pairing.
  size_t beam_width = 8;
  /// Keep surrogates with at least this F1.
  double min_f1 = 0.0;
  /// How many surrogates to return.
  size_t top_k = 5;
  /// Only use queriable attributes (the point of the exercise). Set false to
  /// allow any attribute except the target's.
  bool queriable_only = true;
  /// Also consider same-attribute value pairs, which a facet panel evaluates
  /// as a union (e.g. Model IN (a, b) as an Engine=V6 surrogate).
  bool allow_or_pairs = true;
};

/// Finds the best surrogate selections for `target_attr = target_label` over
/// the discretized fragment. Greedy beam construction: best singles, then
/// the best AND-refinements of the beam. Deterministic.
[[nodiscard]]
Result<std::vector<Surrogate>> FindSurrogates(const DiscretizedTable& dt,
                                              const std::string& target_attr,
                                              const std::string& target_label,
                                              const SurrogateOptions& options);

}  // namespace dbx
