// Copyright (c) DBExplorer reproduction authors.
// The IUnit ("Interaction Unit", paper §2.1.1): a labeled cluster of tuples
// from one Pivot-Attribute value's partition, described uniformly over the
// CAD View's Compare Attributes.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/string_util.h"

namespace dbx {

/// The label cell of one Compare Attribute inside an IUnit: the
/// representative value(s) of that attribute among the cluster's tuples.
/// Multiple values appear when they have statistically similar frequency
/// (paper: "[Traverse LT] [Equinox LT]" vs "[V6, V4]").
struct IUnitCell {
  /// Representative discrete codes, most frequent first.
  std::vector<int32_t> codes;
  /// Display labels parallel to `codes`.
  std::vector<std::string> labels;
  /// Cluster-local frequency of each representative, parallel to `codes`.
  std::vector<uint64_t> counts;

  /// "[a, b]" display form used in the paper's Table 1.
  std::string ToDisplay() const {
    return "[" + Join(labels, ", ") + "]";
  }
};

/// One labeled cluster. `cells` and `attr_freqs` are parallel to the CAD
/// View's Compare Attribute list.
struct IUnit {
  /// Which Pivot Attribute value's row this IUnit belongs to.
  std::string pivot_value;
  /// Id of the originating cluster within its partition (stable per build).
  size_t cluster_id = 0;
  /// Positions (into the DiscretizedTable's row order) of member tuples.
  std::vector<size_t> member_positions;
  /// Preference score used for top-k selection (default: cluster size).
  double score = 0.0;
  /// Display cells, one per Compare Attribute.
  std::vector<IUnitCell> cells;
  /// Full frequency vector per Compare Attribute (counts per discrete code)
  /// — the term-frequency vectors of Algorithm 1.
  std::vector<std::vector<double>> attr_freqs;

  size_t size() const { return member_positions.size(); }
};

}  // namespace dbx
