#include "src/core/iunit_similarity.h"

#include <algorithm>

#include "src/stats/cosine.h"

namespace dbx {

double IUnitSimilarity(const IUnit& a, const IUnit& b) {
  size_t n = std::min(a.attr_freqs.size(), b.attr_freqs.size());
  double s = 0.0;
  for (size_t d = 0; d < n; ++d) {
    s += CosineSimilarity(a.attr_freqs[d], b.attr_freqs[d]);
  }
  return s;
}

bool IUnitsSimilar(const IUnit& a, const IUnit& b, double tau) {
  return IUnitSimilarity(a, b) >= tau;
}

double DefaultTau(size_t num_compare_attrs, double alpha) {
  return alpha * static_cast<double>(num_compare_attrs);
}

}  // namespace dbx
