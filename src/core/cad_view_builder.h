// Copyright (c) DBExplorer reproduction authors.
// CAD View construction (paper §2.2.2 Problems 1-2, §3): discretize the
// selected fragment, choose Compare Attributes (chi-square), cluster each
// pivot-value partition into l candidate IUnits (k-means), label them, and
// pick diversified top-k per partition. Implements the paper's three §6.3
// performance optimizations behind options.

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/core/cad_view.h"
#include "src/core/div_topk.h"
#include "src/core/iunit_labeler.h"
#include "src/obs/trace.h"
#include "src/relation/table.h"
#include "src/stats/discretizer.h"
#include "src/stats/feature_selection.h"

namespace dbx {

/// User- or system-supplied IUnit preference (Problem 2's P). Receives each
/// candidate IUnit; higher is better. Default ranks by cluster size.
using IUnitPreference = std::function<double(const IUnit&)>;

/// Horizontal sharding of the build's table scans (DESIGN.md §13): the rows
/// split into `num_shards` contiguous ranges, and pivot partitioning plus
/// Compare-Attribute contingency counting run one task per shard, merging
/// per-shard sketches associatively. The merges are exact — integer count
/// addition and sorted unions of disjoint member lists — so the built view is
/// byte-identical for any shard count, extending the num_threads determinism
/// contract to num_shards. ViewCache fingerprints therefore exclude
/// num_shards/min_rows_per_shard but include the coreset knobs, which change
/// which rows are clustered.
struct ShardOptions {
  /// Requested shard count (1 = unsharded). Clamped so every shard holds at
  /// least `min_rows_per_shard` rows.
  size_t num_shards = 1;
  size_t min_rows_per_shard = 1024;

  /// Out-of-core-scale approximation: cluster each pivot partition over a
  /// bounded uniform coreset (a mergeable bottom-k hash sample of at most
  /// `coreset_budget` rows) instead of every member. Membership depends only
  /// on (seed, row id), never on shard boundaries, so byte-identity across
  /// shard counts still holds; like clustering_sample, labels and
  /// frequencies reflect the sample.
  bool coreset_clustering = false;
  size_t coreset_budget = 4096;
};

struct CadViewOptions {
  /// The Pivot Attribute f_p (must name an attribute of the table).
  std::string pivot_attr;

  /// Pivot values V to compare. Empty = every value present in the fragment
  /// (the paper's default: "we will show all of them").
  std::vector<std::string> pivot_values;

  /// Compare Attributes the user explicitly selected (the SELECT clause).
  /// They always appear, in the given order, ahead of auto-chosen ones.
  std::vector<std::string> user_compare_attrs;

  /// Total Compare Attributes M (LIMIT COLUMNS). The system auto-selects
  /// M - |user_compare_attrs| significant attributes.
  size_t max_compare_attrs = 5;

  /// IUnits shown per pivot value (k; the IUNITS keyword).
  size_t iunits_per_value = 3;

  /// Candidate clusters l. 0 derives l = ceil(candidate_factor * k) — the
  /// paper's "system tuning parameter, such as l = 1.5k".
  size_t generated_iunits = 0;
  double candidate_factor = 1.5;

  /// Paper §2.2.2 alternative: "l can be chosen by iterating through all
  /// plausible l values and evaluating the quality of the resulting CAD
  /// View". When set, each partition tries l in [k, auto_l_max_factor * k]
  /// and keeps the clustering with the best simplified silhouette. Overrides
  /// generated_iunits/candidate_factor; noticeably slower (one k-means run
  /// per tried l).
  bool auto_l = false;
  double auto_l_max_factor = 2.0;

  DiscretizerOptions discretizer;
  FeatureSelectionOptions feature_selection;
  LabelerOptions labeler;

  /// alpha in tau = alpha * |I| (paper §4.1).
  double similarity_alpha = 0.7;

  DivTopKAlgorithm topk_algorithm = DivTopKAlgorithm::kDivAstar;

  /// Preference function P for ranking candidate IUnits; nullptr = cluster
  /// size (the paper's "simple system default").
  IUnitPreference preference;

  /// k-means controls.
  size_t kmeans_max_iterations = 20;
  uint64_t seed = 42;

  /// Degree of parallelism on the shared thread pool (1 = serial) for every
  /// parallel stage: partition clustering, chi-square ranking, k-means
  /// assignment, and similarity-graph construction. The resulting CadView is
  /// byte-identical for any value — work is assigned by index into fixed
  /// result slots and reduced in a fixed order.
  size_t num_threads = 1;

  /// Horizontal sharding of the partition and contingency scans; see
  /// ShardOptions. Defaults to unsharded.
  ShardOptions sharding;

  // ----- §6.3 optimizations -------------------------------------------------

  /// Optimization 1a: compute Compare-Attribute ranking over a uniform sample
  /// of this many rows (0 = use the full fragment).
  size_t feature_selection_sample = 0;

  /// Optimization 1b: cluster each partition over a sample of this many rows
  /// (0 = full partition). Labels/frequencies still reflect the sample.
  size_t clustering_sample = 0;

  /// Optimization 2: shrink l on large fragments ("generate fewer IUnits when
  /// the result set is very large"). When enabled, partitions larger than
  /// `adaptive_l_threshold` rows use l = max(k, adaptive_l_min).
  bool adaptive_l = false;
  size_t adaptive_l_threshold = 4000;
  size_t adaptive_l_min = 0;  // 0 = k

  // ----- observability ------------------------------------------------------

  /// Span collector for this build. Never null (defaults to the shared no-op
  /// tracer); like num_threads it cannot change the built view's bytes, so
  /// CadViewOptionsFingerprint excludes it. Stage spans (partition,
  /// chi_square, iunit_gen with per-partition kmeans/labeling children,
  /// div_topk) nest under `trace_parent`.
  Tracer* tracer = Tracer::Disabled();
  uint64_t trace_parent = 0;
};

/// Pre-computed pivot partitions: for each pivot code of the table's (full)
/// discretized domain, the member rows as ascending positions into the
/// DiscretizedTable being built over. Pairs are sorted by code. Supplying a
/// seed lets a caller that already knows the partition membership (e.g. the
/// view cache refining a previous selection context) skip the pivot-column
/// rescan; the seed MUST list exactly the rows a scan would find, or the
/// byte-identical determinism contract is void.
struct PartitionSeed {
  std::vector<std::pair<int32_t, std::vector<size_t>>> members_by_code;
};

/// Build by-products a caller can ask for: the partition membership actually
/// used, in seed form, so finished builds can be cached as future seeds.
struct CadViewBuildExtras {
  PartitionSeed partitions;
};

/// Builds a CAD View over the selected fragment `slice`.
///
/// Fails when the pivot attribute is unknown/non-categorical, when no pivot
/// value has any rows, or when option values are out of range. Partitions
/// with fewer rows than l simply yield fewer IUnits.
[[nodiscard]] Result<CadView> BuildCadView(const TableSlice& slice,
                             const CadViewOptions& options);

/// As BuildCadView, but reuses a pre-built discretization of the same slice
/// (the interactive TPFacet session caches it between pivot switches).
/// With a `seed`, pivot planning and partitioning use the supplied member
/// lists instead of scanning the pivot column — output is byte-identical to
/// an unseeded build for any valid seed. `extras`, when non-null, receives
/// the partitions of this build (codes >= 0 with members, sorted by code).
[[nodiscard]]
Result<CadView> BuildCadViewFromDiscretized(const DiscretizedTable& dt,
                                            const CadViewOptions& options,
                                            const PartitionSeed* seed = nullptr,
                                            CadViewBuildExtras* extras = nullptr);

}  // namespace dbx
