#include "src/core/surrogate.h"

#include <algorithm>

namespace dbx {
namespace {

struct Bitmask {
  // Row membership as packed words; fragments here are small enough that a
  // dense mask beats sorted-vector intersections for repeated refinement.
  std::vector<uint64_t> words;
  size_t count = 0;

  explicit Bitmask(size_t n) : words((n + 63) / 64, 0) {}

  void Set(size_t i) {
    uint64_t& w = words[i >> 6];
    uint64_t bit = 1ULL << (i & 63);
    if (!(w & bit)) {
      w |= bit;
      ++count;
    }
  }

  static size_t IntersectCount(const Bitmask& a, const Bitmask& b) {
    size_t n = std::min(a.words.size(), b.words.size());
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += static_cast<size_t>(__builtin_popcountll(a.words[i] & b.words[i]));
    }
    return total;
  }

  static Bitmask Intersect(const Bitmask& a, const Bitmask& b) {
    Bitmask out(a.words.size() * 64);
    out.words.resize(std::min(a.words.size(), b.words.size()));
    out.count = 0;
    for (size_t i = 0; i < out.words.size(); ++i) {
      out.words[i] = a.words[i] & b.words[i];
      out.count += static_cast<size_t>(__builtin_popcountll(out.words[i]));
    }
    return out;
  }

  static Bitmask Union(const Bitmask& a, const Bitmask& b) {
    Bitmask out(a.words.size() * 64);
    out.words.resize(std::min(a.words.size(), b.words.size()));
    out.count = 0;
    for (size_t i = 0; i < out.words.size(); ++i) {
      out.words[i] = a.words[i] | b.words[i];
      out.count += static_cast<size_t>(__builtin_popcountll(out.words[i]));
    }
    return out;
  }
};

double F1(size_t tp, size_t selected, size_t positives) {
  if (tp == 0 || selected == 0 || positives == 0) return 0.0;
  double p = static_cast<double>(tp) / static_cast<double>(selected);
  double r = static_cast<double>(tp) / static_cast<double>(positives);
  return 2.0 * p * r / (p + r);
}

}  // namespace

Result<std::vector<Surrogate>> FindSurrogates(const DiscretizedTable& dt,
                                              const std::string& target_attr,
                                              const std::string& target_label,
                                              const SurrogateOptions& options) {
  if (options.max_conditions == 0 || options.top_k == 0) {
    return Status::InvalidArgument("max_conditions and top_k must be >= 1");
  }
  auto target_idx = dt.IndexOf(target_attr);
  if (!target_idx) {
    return Status::NotFound("no attribute named '" + target_attr + "'");
  }
  const DiscreteAttr& target = dt.attr(*target_idx);
  int32_t target_code = -1;
  for (size_t v = 0; v < target.labels.size(); ++v) {
    if (target.labels[v] == target_label) {
      target_code = static_cast<int32_t>(v);
      break;
    }
  }
  if (target_code < 0) {
    return Status::NotFound("attribute '" + target_attr + "' has no value '" +
                            target_label + "'");
  }

  const size_t n = dt.num_rows();
  Bitmask positives(n);
  for (size_t i = 0; i < n; ++i) {
    if (target.codes[i] == target_code) positives.Set(i);
  }
  if (positives.count == 0) {
    return Status::FailedPrecondition("target value selects no tuples");
  }

  // Single-condition candidates with their row masks.
  struct Single {
    size_t attr;
    int32_t code;
    Bitmask mask;
    double f1;
  };
  std::vector<Single> singles;
  for (size_t a = 0; a < dt.num_attrs(); ++a) {
    if (a == *target_idx) continue;
    const DiscreteAttr& attr = dt.attr(a);
    if (attr.cardinality() == 0) continue;
    if (options.queriable_only && !attr.queriable) continue;
    std::vector<Bitmask> masks(attr.cardinality(), Bitmask(n));
    for (size_t i = 0; i < n; ++i) {
      int32_t c = attr.codes[i];
      if (c >= 0) masks[static_cast<size_t>(c)].Set(i);
    }
    for (size_t c = 0; c < masks.size(); ++c) {
      if (masks[c].count == 0) continue;
      size_t tp = Bitmask::IntersectCount(masks[c], positives);
      double f1 = F1(tp, masks[c].count, positives.count);
      if (f1 <= 0.0) continue;
      singles.push_back(Single{a, static_cast<int32_t>(c),
                               std::move(masks[c]), f1});
    }
  }
  std::stable_sort(singles.begin(), singles.end(),
                   [](const Single& x, const Single& y) { return x.f1 > y.f1; });

  auto make_surrogate = [&](const std::vector<const Single*>& parts,
                            const Bitmask& mask) {
    Surrogate s;
    size_t tp = Bitmask::IntersectCount(mask, positives);
    s.precision = mask.count == 0
                      ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(mask.count);
    s.recall = static_cast<double>(tp) / static_cast<double>(positives.count);
    s.f1 = F1(tp, mask.count, positives.count);
    for (const Single* p : parts) {
      s.conditions.emplace_back(dt.attr(p->attr).name,
                                dt.attr(p->attr).labels[p->code]);
    }
    return s;
  };

  std::vector<Surrogate> out;
  size_t beam = std::min(options.beam_width, singles.size());
  for (size_t i = 0; i < beam; ++i) {
    out.push_back(make_surrogate({&singles[i]}, singles[i].mask));
  }
  if (options.max_conditions >= 2) {
    for (size_t i = 0; i < beam; ++i) {
      for (size_t j = i + 1; j < beam; ++j) {
        bool same_attr = singles[i].attr == singles[j].attr;
        if (same_attr && !options.allow_or_pairs) continue;
        // Facet semantics: AND across attributes, OR within one.
        Bitmask joint = same_attr
                            ? Bitmask::Union(singles[i].mask, singles[j].mask)
                            : Bitmask::Intersect(singles[i].mask,
                                                 singles[j].mask);
        if (joint.count == 0) continue;
        out.push_back(make_surrogate({&singles[i], &singles[j]}, joint));
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Surrogate& x, const Surrogate& y) {
                     return x.f1 > y.f1;
                   });
  // Threshold + truncate.
  std::vector<Surrogate> kept;
  for (Surrogate& s : out) {
    if (s.f1 < options.min_f1) continue;
    kept.push_back(std::move(s));
    if (kept.size() >= options.top_k) break;
  }
  return kept;
}

}  // namespace dbx
