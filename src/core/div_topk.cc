#include "src/core/div_topk.h"

#include <algorithm>
#include <cstdint>
#include <queue>

#include "src/obs/metrics.h"
#include "src/util/stopwatch.h"

namespace dbx {
namespace {

// Items sorted by descending score; ties by index for determinism.
std::vector<size_t> ScoreOrder(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  return order;
}

std::vector<size_t> Greedy(const std::vector<double>& scores,
                           const SimilarityGraph& graph, size_t k) {
  std::vector<size_t> chosen;
  for (size_t idx : ScoreOrder(scores)) {
    if (chosen.size() >= k) break;
    bool conflict = false;
    for (size_t c : chosen) {
      if (graph.Similar(idx, c)) {
        conflict = true;
        break;
      }
    }
    if (!conflict) chosen.push_back(idx);
  }
  return chosen;
}

// Exact best-first branch-and-bound in the spirit of div-astar: states walk
// the score-ordered item list deciding include/skip; the admissible bound
// adds the scores of the best remaining items up to the k budget.
std::vector<size_t> DivAstar(const std::vector<double>& scores,
                             const SimilarityGraph& graph, size_t k) {
  const size_t n = scores.size();
  std::vector<size_t> order = ScoreOrder(scores);

  // Suffix bound: best score attainable from position p with b slots left,
  // ignoring conflicts (admissible).
  auto bound = [&](size_t pos, size_t budget) {
    double s = 0.0;
    for (size_t i = pos; i < n && budget > 0; ++i) {
      double sc = scores[order[i]];
      if (sc <= 0.0) break;  // non-positive scores never help
      s += sc;
      --budget;
    }
    return s;
  };

  struct State {
    double priority;  // current + bound
    double current;
    uint64_t mask;  // chosen items, bit = position in `order`
    uint32_t pos;
    uint32_t count;
    bool operator<(const State& o) const { return priority < o.priority; }
  };

  std::priority_queue<State> open;
  open.push({bound(0, k), 0.0, 0, 0, 0});
  double best_score = -1.0;
  uint64_t best_mask = 0;

  while (!open.empty()) {
    State s = open.top();
    open.pop();
    if (s.priority <= best_score) break;  // nothing better remains
    if (s.pos >= n || s.count >= k) {
      if (s.current > best_score) {
        best_score = s.current;
        best_mask = s.mask;
      }
      continue;
    }
    size_t item = order[s.pos];
    // Branch 1: skip item.
    {
      State nxt = s;
      nxt.pos = s.pos + 1;
      nxt.priority = nxt.current + bound(nxt.pos, k - nxt.count);
      if (nxt.priority > best_score) {
        open.push(nxt);
      } else if (nxt.current > best_score) {
        best_score = nxt.current;
        best_mask = nxt.mask;
      }
    }
    // Branch 2: take item, if compatible with the chosen set.
    bool conflict = false;
    for (uint32_t p = 0; p < s.pos; ++p) {
      if ((s.mask >> p) & 1) {
        if (graph.Similar(item, order[p])) {
          conflict = true;
          break;
        }
      }
    }
    if (!conflict) {
      State nxt;
      nxt.current = s.current + scores[item];
      nxt.mask = s.mask | (1ULL << s.pos);
      nxt.pos = s.pos + 1;
      nxt.count = s.count + 1;
      nxt.priority = nxt.current + bound(nxt.pos, k - nxt.count);
      if (nxt.current > best_score) {
        best_score = nxt.current;
        best_mask = nxt.mask;
      }
      if (nxt.priority > best_score) {
        open.push(nxt);
      }
    }
  }

  std::vector<size_t> chosen;
  for (size_t p = 0; p < n; ++p) {
    if ((best_mask >> p) & 1) chosen.push_back(order[p]);
  }
  return chosen;
}

}  // namespace

const char* DivTopKAlgorithmName(DivTopKAlgorithm a) {
  switch (a) {
    case DivTopKAlgorithm::kDivAstar: return "div-astar";
    case DivTopKAlgorithm::kGreedy: return "greedy";
    case DivTopKAlgorithm::kNoDiversity: return "no-diversity";
  }
  return "?";
}

Result<std::vector<size_t>> DiversifiedTopK(const std::vector<double>& scores,
                                            const SimilarityGraph& graph,
                                            size_t k,
                                            DivTopKAlgorithm algorithm) {
  if (scores.size() != graph.size()) {
    return Status::InvalidArgument("scores/graph size mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  // Spans live at the builder level (one per pivot value row); here only the
  // process-wide counters, so ad-hoc callers are also counted.
  Stopwatch timer;
  std::vector<size_t> chosen;
  switch (algorithm) {
    case DivTopKAlgorithm::kNoDiversity: {
      std::vector<size_t> order = ScoreOrder(scores);
      order.resize(std::min(k, order.size()));
      chosen = std::move(order);
      break;
    }
    case DivTopKAlgorithm::kGreedy:
      chosen = Greedy(scores, graph, k);
      break;
    case DivTopKAlgorithm::kDivAstar:
      if (scores.size() > 64) {
        chosen = Greedy(scores, graph, k);  // documented fallback
      } else {
        chosen = DivAstar(scores, graph, k);
      }
      break;
  }
  std::stable_sort(chosen.begin(), chosen.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  MetricsRegistry* reg = MetricsRegistry::Global();
  reg->GetCounter("dbx_core_div_topk_runs_total")->Increment();
  reg->GetCounter("dbx_core_div_topk_candidates_total")
      ->Increment(scores.size());
  reg->GetHistogram("dbx_core_div_topk_ms")->ObserveNs(timer.ElapsedNanos());
  return chosen;
}

double SelectionScore(const std::vector<double>& scores,
                      const std::vector<size_t>& chosen) {
  double s = 0.0;
  for (size_t i : chosen) s += scores[i];
  return s;
}

bool SelectionIsDiverse(const SimilarityGraph& graph,
                        const std::vector<size_t>& chosen) {
  for (size_t i = 0; i < chosen.size(); ++i) {
    for (size_t j = i + 1; j < chosen.size(); ++j) {
      if (graph.Similar(chosen[i], chosen[j])) return false;
    }
  }
  return true;
}

}  // namespace dbx
