#include "src/core/cad_view_builder.h"

#include <algorithm>
#include <cmath>

#include "src/cluster/cluster_metrics.h"
#include "src/cluster/coreset.h"
#include "src/cluster/kmeans.h"
#include "src/obs/metrics.h"
#include "src/stats/contingency.h"
#include "src/core/iunit_similarity.h"
#include "src/core/sharded.h"
#include "src/stats/sampling.h"
#include "src/util/shard.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace dbx {
namespace {

// Resolves the pivot attribute and the selected value codes.
struct PivotPlan {
  size_t attr_index = 0;
  std::vector<int32_t> value_codes;       // selected pivot codes, view order
  std::vector<std::string> value_labels;  // parallel
};

Result<PivotPlan> PlanPivot(const DiscretizedTable& dt,
                            const CadViewOptions& options) {
  auto idx = dt.IndexOf(options.pivot_attr);
  if (!idx) {
    return Status::NotFound("pivot attribute '" + options.pivot_attr +
                            "' not in table");
  }
  const DiscreteAttr& pivot = dt.attr(*idx);
  PivotPlan plan;
  plan.attr_index = *idx;
  if (options.pivot_values.empty()) {
    // All values present in the fragment, most frequent first, for a stable
    // default row order.
    std::vector<uint64_t> freq(pivot.cardinality(), 0);
    for (int32_t c : pivot.codes) {
      if (c >= 0) ++freq[static_cast<size_t>(c)];
    }
    std::vector<int32_t> codes;
    for (size_t c = 0; c < freq.size(); ++c) {
      if (freq[c] > 0) codes.push_back(static_cast<int32_t>(c));
    }
    std::stable_sort(codes.begin(), codes.end(), [&](int32_t a, int32_t b) {
      if (freq[a] != freq[b]) return freq[a] > freq[b];
      return a < b;
    });
    for (int32_t c : codes) {
      plan.value_codes.push_back(c);
      plan.value_labels.push_back(pivot.labels[c]);
    }
  } else {
    for (const std::string& v : options.pivot_values) {
      int32_t code = -1;
      for (size_t c = 0; c < pivot.labels.size(); ++c) {
        if (pivot.labels[c] == v) {
          code = static_cast<int32_t>(c);
          break;
        }
      }
      // Values absent from the fragment still get a (possibly empty) row;
      // encode them with -2 so partitioning yields zero members.
      plan.value_codes.push_back(code >= 0 ? code : -2);
      plan.value_labels.push_back(v);
    }
  }
  if (plan.value_codes.empty()) {
    return Status::InvalidArgument("pivot attribute '" + options.pivot_attr +
                                   "' has no values in the fragment");
  }
  return plan;
}

// As PlanPivot, but reads value codes and frequencies from a PartitionSeed
// instead of scanning the pivot column. A valid seed lists exactly the rows a
// scan would find per code, so the resulting plan (codes, labels, order) is
// identical to PlanPivot's.
Result<PivotPlan> PlanPivotFromSeed(const DiscretizedTable& dt,
                                    const CadViewOptions& options,
                                    const PartitionSeed& seed) {
  auto idx = dt.IndexOf(options.pivot_attr);
  if (!idx) {
    return Status::NotFound("pivot attribute '" + options.pivot_attr +
                            "' not in table");
  }
  const DiscreteAttr& pivot = dt.attr(*idx);
  PivotPlan plan;
  plan.attr_index = *idx;
  if (options.pivot_values.empty()) {
    // Same default order as the scan: most frequent first, then code.
    std::vector<std::pair<int32_t, size_t>> counts;
    for (const auto& [code, members] : seed.members_by_code) {
      if (code >= 0 && !members.empty() &&
          static_cast<size_t>(code) < pivot.cardinality()) {
        counts.emplace_back(code, members.size());
      }
    }
    std::stable_sort(counts.begin(), counts.end(),
                     [](const auto& a, const auto& b) {
                       if (a.second != b.second) return a.second > b.second;
                       return a.first < b.first;
                     });
    for (const auto& [code, n] : counts) {
      plan.value_codes.push_back(code);
      plan.value_labels.push_back(pivot.labels[code]);
    }
  } else {
    // Explicit values resolve against the full domain labels exactly as in
    // PlanPivot; only the member lookup (below) comes from the seed.
    for (const std::string& v : options.pivot_values) {
      int32_t code = -1;
      for (size_t c = 0; c < pivot.labels.size(); ++c) {
        if (pivot.labels[c] == v) {
          code = static_cast<int32_t>(c);
          break;
        }
      }
      plan.value_codes.push_back(code >= 0 ? code : -2);
      plan.value_labels.push_back(v);
    }
  }
  if (plan.value_codes.empty()) {
    return Status::InvalidArgument("pivot attribute '" + options.pivot_attr +
                                   "' has no values in the fragment");
  }
  return plan;
}

}  // namespace

Result<CadView> BuildCadView(const TableSlice& slice,
                             const CadViewOptions& options) {
  Stopwatch total;
  Stopwatch sw;
  ScopedSpan discretize_span(options.tracer, "discretize",
                             options.trace_parent);
  auto dt = DiscretizedTable::Build(slice, options.discretizer);
  if (!dt.ok()) return dt.status();
  discretize_span.AddArg("rows", static_cast<uint64_t>(dt->num_rows()));
  discretize_span.AddArg("attrs", static_cast<uint64_t>(dt->num_attrs()));
  discretize_span.End();
  double discretize_ms = sw.ElapsedMillis();

  auto view = BuildCadViewFromDiscretized(*dt, options);
  if (!view.ok()) return view.status();
  view->timings.discretize_ms = discretize_ms;
  view->timings.total_ms = total.ElapsedMillis();
  return view;
}

Result<CadView> BuildCadViewFromDiscretized(const DiscretizedTable& dt,
                                            const CadViewOptions& options,
                                            const PartitionSeed* seed,
                                            CadViewBuildExtras* extras) {
  Stopwatch total;
  if (options.iunits_per_value == 0) {
    return Status::InvalidArgument("iunits_per_value must be >= 1");
  }
  if (options.max_compare_attrs == 0) {
    return Status::InvalidArgument("max_compare_attrs must be >= 1");
  }

  // Sharded builds (DESIGN.md §13): scan the pivot column shard-parallel into
  // a merged PartitionSeed, then continue through the seeded path below,
  // which is already byte-identical to the single-pass scan. A caller-given
  // seed wins — it means partition membership is already known.
  const size_t effective_shards = EffectiveShardCount(
      dt.num_rows(), options.sharding.num_shards,
      options.sharding.min_rows_per_shard);
  PartitionSeed sharded_seed;
  if (seed == nullptr && effective_shards > 1) {
    if (auto pivot_idx = dt.IndexOf(options.pivot_attr)) {
      ScopedSpan shard_span(options.tracer, "shard_scan", options.trace_parent);
      shard_span.AddArg("shards", static_cast<uint64_t>(effective_shards));
      DBX_ASSIGN_OR_RETURN(
          sharded_seed,
          BuildShardedPartitionSeed(dt, *pivot_idx, options.sharding,
                                    options.num_threads));
      seed = &sharded_seed;
    }
    // Unknown pivot attribute: fall through so PlanPivot reports NotFound.
  }

  DBX_ASSIGN_OR_RETURN(
      PivotPlan plan,
      seed ? PlanPivotFromSeed(dt, options, *seed) : PlanPivot(dt, options));
  const DiscreteAttr& pivot = dt.attr(plan.attr_index);
  if (pivot.original_type != AttrType::kCategorical &&
      pivot.cardinality() > 64) {
    return Status::InvalidArgument(
        "pivot attribute '" + options.pivot_attr +
        "' has too many values; discretize it or choose another pivot");
  }

  // Partition rows by selected pivot value — from the seed's member lists
  // when one is given, otherwise by scanning the pivot column. Both paths
  // list each partition's members in ascending row-position order.
  ScopedSpan partition_span(options.tracer, "partition", options.trace_parent);
  std::vector<std::vector<size_t>> partitions(plan.value_codes.size());
  if (seed) {
    // As in the scan below, a code repeated in plan.value_codes feeds only
    // its last occurrence; earlier duplicates stay empty.
    std::vector<size_t> last_view_of_code;
    for (size_t v = 0; v < plan.value_codes.size(); ++v) {
      int32_t code = plan.value_codes[v];
      if (code < 0) continue;
      if (static_cast<size_t>(code) >= last_view_of_code.size()) {
        last_view_of_code.resize(static_cast<size_t>(code) + 1,
                                 plan.value_codes.size());
      }
      last_view_of_code[static_cast<size_t>(code)] = v;
    }
    for (const auto& [code, members] : seed->members_by_code) {
      if (code < 0 ||
          static_cast<size_t>(code) >= last_view_of_code.size()) {
        continue;
      }
      size_t v = last_view_of_code[static_cast<size_t>(code)];
      if (v < partitions.size()) partitions[v] = members;
    }
  } else {
    std::vector<int32_t> code_to_view(pivot.cardinality(), -1);
    for (size_t v = 0; v < plan.value_codes.size(); ++v) {
      int32_t c = plan.value_codes[v];
      if (c >= 0) code_to_view[static_cast<size_t>(c)] = static_cast<int32_t>(v);
    }
    for (size_t i = 0; i < pivot.codes.size(); ++i) {
      int32_t c = pivot.codes[i];
      if (c >= 0 && code_to_view[static_cast<size_t>(c)] >= 0) {
        partitions[static_cast<size_t>(code_to_view[c])].push_back(i);
      }
    }
  }

  // Class coding for feature selection: row -> index into plan.value_codes,
  // -1 for rows whose pivot value is not selected. Partitions list exactly
  // the rows of each selected value, so this equals a pivot-column scan.
  std::vector<int32_t> cls(pivot.codes.size(), -1);
  for (size_t v = 0; v < partitions.size(); ++v) {
    for (size_t i : partitions[v]) cls[i] = static_cast<int32_t>(v);
  }

  partition_span.AddArg("partitions", static_cast<uint64_t>(partitions.size()));
  partition_span.AddArg("rows", static_cast<uint64_t>(pivot.codes.size()));
  partition_span.AddArg("seeded", seed != nullptr ? "yes" : "no");
  partition_span.End();

  CadView view;
  view.pivot_attr = options.pivot_attr;

  // --- Compare-Attribute selection (Problem 1.1) ---------------------------
  Stopwatch sw;
  Rng rng(options.seed);

  FeatureSelectionOptions fs_options = options.feature_selection;
  fs_options.num_threads = options.num_threads;
  fs_options.num_shards = effective_shards;
  fs_options.tracer = options.tracer;
  fs_options.trace_parent = options.trace_parent;

  // User-selected attributes come first, in the order given.
  std::vector<size_t> chosen_attrs;
  for (const std::string& name : options.user_compare_attrs) {
    auto idx = dt.IndexOf(name);
    if (!idx) {
      return Status::NotFound("compare attribute '" + name + "' not in table");
    }
    if (*idx == plan.attr_index) {
      return Status::InvalidArgument(
          "pivot attribute cannot also be a compare attribute");
    }
    if (std::find(chosen_attrs.begin(), chosen_attrs.end(), *idx) !=
        chosen_attrs.end()) {
      return Status::InvalidArgument("duplicate compare attribute '" + name +
                                     "'");
    }
    chosen_attrs.push_back(*idx);
    CompareAttribute ca;
    ca.attr_index = *idx;
    ca.name = name;
    ca.user_selected = true;
    view.compare_attrs.push_back(std::move(ca));
  }
  if (chosen_attrs.size() > options.max_compare_attrs) {
    return Status::InvalidArgument(
        "more user compare attributes than LIMIT COLUMNS");
  }

  // Auto-select the remaining M - N by chi-square relevance.
  if (chosen_attrs.size() < options.max_compare_attrs) {
    std::vector<size_t> candidates;
    for (size_t a = 0; a < dt.num_attrs(); ++a) {
      if (a == plan.attr_index) continue;
      if (std::find(chosen_attrs.begin(), chosen_attrs.end(), a) !=
          chosen_attrs.end()) {
        continue;
      }
      if (dt.attr(a).cardinality() == 0) continue;
      candidates.push_back(a);
    }

    // Optimization 1: rank over a row sample.
    if (options.feature_selection_sample > 0 &&
        options.feature_selection_sample < dt.num_rows()) {
      // This inline path bypasses RankFeatures, so it emits the chi_square
      // span itself.
      ScopedSpan fs_span(options.tracer, "chi_square", options.trace_parent);
      fs_span.AddArg("candidates", static_cast<uint64_t>(candidates.size()));
      fs_span.AddArg("sample",
                     static_cast<uint64_t>(options.feature_selection_sample));
      // Sample row *positions* uniformly; rebuild parallel code vectors.
      std::vector<uint32_t> positions(dt.num_rows());
      for (uint32_t i = 0; i < positions.size(); ++i) positions[i] = i;
      RowSet pos_sample =
          SampleRows(positions, options.feature_selection_sample, &rng);
      // Rather than copy the whole table, rank with per-attribute code
      // subsets using a lightweight shim below.
      std::vector<int32_t> sub_cls(pos_sample.size());
      for (size_t i = 0; i < pos_sample.size(); ++i) {
        sub_cls[i] = cls[pos_sample[i]];
      }
      // Build contingency-ready codes per candidate on the fly. Candidates
      // are independent: each task fills its own indexed slot.
      std::vector<FeatureScore> scores(candidates.size());
      DBX_RETURN_IF_ERROR(ParallelFor(
          options.num_threads, 0, candidates.size(), 1,
          [&](size_t ci) -> Status {
            size_t a = candidates[ci];
            const DiscreteAttr& attr = dt.attr(a);
            std::vector<int32_t> sub_codes(pos_sample.size());
            for (size_t i = 0; i < pos_sample.size(); ++i) {
              sub_codes[i] = attr.codes[pos_sample[i]];
            }
            ContingencyTable ct = ContingencyTable::FromCodes(
                sub_cls, plan.value_codes.size(), sub_codes,
                attr.cardinality());
            ChiSquareResult chi = ChiSquareTest(ct);
            FeatureScore fs;
            fs.attr_index = a;
            fs.name = attr.name;
            fs.chi2 = chi.statistic;
            fs.score = chi.statistic;
            fs.df = chi.df;
            fs.p_value = chi.p_value;
            fs.significant =
                chi.p_value <= options.feature_selection.significance &&
                chi.df > 0;
            scores[ci] = std::move(fs);
            return Status::OK();
          }));
      std::stable_sort(scores.begin(), scores.end(),
                       [](const FeatureScore& x, const FeatureScore& y) {
                         if (x.score != y.score) return x.score > y.score;
                         return x.attr_index < y.attr_index;
                       });
      for (const FeatureScore& fs : scores) {
        if (view.compare_attrs.size() >= options.max_compare_attrs) break;
        if (!fs.significant) continue;
        CompareAttribute ca;
        ca.attr_index = fs.attr_index;
        ca.name = fs.name;
        ca.relevance = fs.score;
        ca.p_value = fs.p_value;
        view.compare_attrs.push_back(std::move(ca));
        chosen_attrs.push_back(fs.attr_index);
      }
    } else {
      auto ranked = RankFeatures(dt, cls, plan.value_codes.size(),
                                 candidates, fs_options);
      if (!ranked.ok()) return ranked.status();
      for (const FeatureScore& fs : *ranked) {
        if (view.compare_attrs.size() >= options.max_compare_attrs) break;
        if (!fs.significant) continue;
        CompareAttribute ca;
        ca.attr_index = fs.attr_index;
        ca.name = fs.name;
        ca.relevance = fs.score;
        ca.p_value = fs.p_value;
        view.compare_attrs.push_back(std::move(ca));
        chosen_attrs.push_back(fs.attr_index);
      }
    }
  }
  if (view.compare_attrs.empty()) {
    // Degenerate fragment (e.g. a single pivot value): nothing passes the
    // significance test. Fall back to the top-scoring candidates so the view
    // still summarizes the fragment rather than failing.
    std::vector<size_t> candidates;
    for (size_t a = 0; a < dt.num_attrs(); ++a) {
      if (a != plan.attr_index && dt.attr(a).cardinality() > 0) {
        candidates.push_back(a);
      }
    }
    auto ranked = RankFeatures(dt, cls, plan.value_codes.size(), candidates,
                               fs_options);
    if (!ranked.ok()) return ranked.status();
    for (const FeatureScore& fs : *ranked) {
      if (view.compare_attrs.size() >= options.max_compare_attrs) break;
      CompareAttribute ca;
      ca.attr_index = fs.attr_index;
      ca.name = fs.name;
      ca.relevance = fs.score;
      ca.p_value = fs.p_value;
      view.compare_attrs.push_back(std::move(ca));
      chosen_attrs.push_back(fs.attr_index);
    }
  }
  if (view.compare_attrs.empty()) {
    return Status::FailedPrecondition(
        "no usable compare attributes in the fragment");
  }
  view.timings.compare_attrs_ms = sw.ElapsedMillis();
  view.tau = DefaultTau(view.compare_attrs.size(), options.similarity_alpha);

  // --- Candidate IUnit generation + labeling (Problems 1.2) ----------------
  sw.Reset();
  ScopedSpan iunit_span(options.tracer, "iunit_gen", options.trace_parent);
  iunit_span.AddArg("partitions", static_cast<uint64_t>(partitions.size()));
  std::vector<size_t> compare_indices;
  compare_indices.reserve(view.compare_attrs.size());
  for (const CompareAttribute& ca : view.compare_attrs) {
    compare_indices.push_back(ca.attr_index);
  }

  auto encoder = OneHotEncoder::Plan(dt, compare_indices);
  if (!encoder.ok()) return encoder.status();

  size_t k = options.iunits_per_value;
  struct Candidates {
    std::vector<IUnit> iunits;
  };
  std::vector<Candidates> all_candidates(partitions.size());

  auto build_partition = [&](size_t v) -> Status {
    std::vector<size_t>& members = partitions[v];
    if (members.empty()) return Status::OK();
    // Per-partition generator so parallel and serial builds are identical.
    Rng part_rng(options.seed ^ (0x9E3779B97F4A7C15ULL * (v + 1)));

    // Optimization 2: adaptive l.
    size_t l = options.generated_iunits;
    if (l == 0) {
      l = static_cast<size_t>(
          std::ceil(options.candidate_factor * static_cast<double>(k)));
    }
    if (options.adaptive_l && members.size() > options.adaptive_l_threshold) {
      size_t lmin = options.adaptive_l_min == 0 ? k : options.adaptive_l_min;
      l = std::max(k, lmin);
    }
    l = std::max<size_t>(1, l);

    // Optimization 1b: cluster over a sample of the partition. The coreset
    // mode (DESIGN.md §13) takes precedence: a bottom-k hash sample whose
    // membership depends only on (seed, row id), so sharded 100M-row builds
    // stay byte-identical across shard counts.
    std::vector<size_t> cluster_members;
    if (options.sharding.coreset_clustering &&
        options.sharding.coreset_budget > 0 &&
        options.sharding.coreset_budget < members.size()) {
      CoresetSketch sketch = BuildCoresetSketch(
          members, 0, members.size(),
          options.seed ^ (0xD1B54A32D192ED03ULL * (v + 1)),
          options.sharding.coreset_budget);
      cluster_members = CoresetMembers(sketch);
    } else if (options.clustering_sample > 0 &&
               options.clustering_sample < members.size()) {
      RowSet as_rows(members.begin(), members.end());
      RowSet sampled =
          SampleRows(as_rows, options.clustering_sample, &part_rng);
      cluster_members.assign(sampled.begin(), sampled.end());
    } else {
      cluster_members = members;
    }

    EncodedMatrix mat = encoder->Encode(dt, cluster_members);
    KMeansOptions ko;
    ko.k = std::min(l, cluster_members.size());
    ko.max_iterations = options.kmeans_max_iterations;
    ko.seed = options.seed + v;  // distinct but deterministic per partition
    ko.num_threads = options.num_threads;
    // Children of iunit_gen regardless of which pool worker runs this
    // partition — parenthood is the explicit id, not thread-local state.
    ko.tracer = options.tracer;
    ko.trace_parent = iunit_span.id();
    Result<KMeansResult> km = Status::Internal("unreached");
    if (options.auto_l) {  // NOLINT
      // §2.2.2: sweep plausible l values and keep the best-quality
      // clustering (simplified silhouette).
      size_t l_max = std::max(
          k, static_cast<size_t>(
                 std::ceil(options.auto_l_max_factor * static_cast<double>(k))));
      double best_quality = -2.0;
      for (size_t trial_l = k; trial_l <= l_max; ++trial_l) {
        KMeansOptions trial = ko;
        trial.k = std::min(trial_l, cluster_members.size());
        auto res = RunKMeans(mat, trial);
        if (!res.ok()) return res.status();
        double quality = SimplifiedSilhouette(mat, *res);
        if (quality > best_quality) {
          best_quality = quality;
          km = std::move(res);
        }
        if (trial.k == cluster_members.size()) break;
      }
    } else {
      km = RunKMeans(mat, ko);
    }
    if (!km.ok()) return km.status();

    // Materialize member lists per cluster.
    std::vector<std::vector<size_t>> cluster_rows(km->k_effective);
    for (size_t i = 0; i < cluster_members.size(); ++i) {
      cluster_rows[static_cast<size_t>(km->assignments[i])].push_back(
          cluster_members[i]);
    }
    ScopedSpan label_span(options.tracer, "labeling", iunit_span.id());
    label_span.AddArg("clusters", static_cast<uint64_t>(km->k_effective));
    label_span.AddArg("pivot_value", plan.value_labels[v]);
    for (size_t c = 0; c < cluster_rows.size(); ++c) {
      if (cluster_rows[c].empty()) continue;
      auto iu = LabelCluster(dt, compare_indices, std::move(cluster_rows[c]),
                             options.labeler);
      if (!iu.ok()) return iu.status();
      iu->pivot_value = plan.value_labels[v];
      iu->cluster_id = c;
      if (options.preference) {
        iu->score = options.preference(*iu);
      }
      all_candidates[v].iunits.push_back(std::move(*iu));
    }
    return Status::OK();
  };

  // Partitions are independent; each task writes only all_candidates[v], so
  // the result is byte-identical for any thread count.
  DBX_RETURN_IF_ERROR(ParallelFor(options.num_threads, 0, partitions.size(),
                                  1, build_partition));
  iunit_span.End();
  view.timings.iunit_gen_ms = sw.ElapsedMillis();

  // --- Diversified top-k (Problem 2) ---------------------------------------
  sw.Reset();
  ScopedSpan topk_span(options.tracer, "div_topk", options.trace_parent);
  topk_span.AddArg("algorithm", DivTopKAlgorithmName(options.topk_algorithm));
  for (size_t v = 0; v < partitions.size(); ++v) {
    CadViewRow row;
    row.pivot_value = plan.value_labels[v];
    row.pivot_code = plan.value_codes[v] >= 0 ? plan.value_codes[v] : -1;
    row.partition_size = partitions[v].size();

    std::vector<IUnit>& cand = all_candidates[v].iunits;
    if (!cand.empty()) {
      // O(l^2) similarity graph, parallel over the anchor index i. Cell
      // (r, c) is written only by the task with index min(r, c), so the
      // byte-backed adjacency matrix needs no locking.
      SimilarityGraph graph(cand.size());
      DBX_RETURN_IF_ERROR(ParallelFor(
          options.num_threads, 0, cand.size(), 2, [&](size_t i) -> Status {
            for (size_t j = i + 1; j < cand.size(); ++j) {
              if (IUnitsSimilar(cand[i], cand[j], view.tau)) {
                graph.SetSimilar(i, j);
              }
            }
            return Status::OK();
          }));
      std::vector<double> scores;
      scores.reserve(cand.size());
      for (const IUnit& u : cand) scores.push_back(u.score);
      auto chosen =
          DiversifiedTopK(scores, graph, k, options.topk_algorithm);
      if (!chosen.ok()) return chosen.status();
      row.iunits.reserve(chosen->size());
      for (size_t idx : *chosen) row.iunits.push_back(std::move(cand[idx]));
    }
    view.rows.push_back(std::move(row));
  }
  topk_span.End();
  view.timings.topk_ms = sw.ElapsedMillis();
  view.timings.total_ms = total.ElapsedMillis();
  MetricsRegistry* reg = MetricsRegistry::Global();
  reg->GetCounter("dbx_core_builds_total")->Increment();
  reg->GetCounter("dbx_core_build_rows_total")
      ->Increment(dt.num_rows());
  reg->GetHistogram("dbx_core_build_ms")
      ->Observe(view.timings.total_ms);

  if (extras != nullptr) {
    extras->partitions.members_by_code.clear();
    for (size_t v = 0; v < partitions.size(); ++v) {
      if (plan.value_codes[v] >= 0 && !partitions[v].empty()) {
        extras->partitions.members_by_code.emplace_back(plan.value_codes[v],
                                                        partitions[v]);
      }
    }
    std::sort(extras->partitions.members_by_code.begin(),
              extras->partitions.members_by_code.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  return view;
}

}  // namespace dbx
