#include "src/core/ranked_list_distance.h"

#include <cmath>
#include <cstdlib>

#include "src/core/iunit_similarity.h"

namespace dbx {
namespace {

// One direction of Algorithm 2 (lines 2-9): displacement of each item of
// `from` against the most rank-aligned similar item of `to`.
double OneDirection(const std::vector<IUnit>& from,
                    const std::vector<IUnit>& to, double tau) {
  double d = 0.0;
  for (size_t i0 = 0; i0 < from.size(); ++i0) {
    int i = static_cast<int>(i0) + 1;  // 1-based rank, as in the paper
    int best_index = static_cast<int>(to.size()) + 1;  // "no similar IUnit"
    bool found = false;
    for (size_t j0 = 0; j0 < to.size(); ++j0) {
      if (!IUnitsSimilar(from[i0], to[j0], tau)) continue;
      int j = static_cast<int>(j0) + 1;
      if (!found || std::abs(j - i) < std::abs(best_index - i)) {
        best_index = j;
        found = true;
      }
    }
    d += std::abs(i - best_index);
  }
  return d;
}

}  // namespace

double RankedListDistance(const std::vector<IUnit>& tx,
                          const std::vector<IUnit>& ty, double tau) {
  return OneDirection(tx, ty, tau) + OneDirection(ty, tx, tau);
}

double RankedListDistanceUpperBound(size_t nx, size_t ny) {
  double d = 0.0;
  for (size_t i = 1; i <= nx; ++i) {
    d += std::abs(static_cast<double>(ny) + 1.0 - static_cast<double>(i));
  }
  for (size_t j = 1; j <= ny; ++j) {
    d += std::abs(static_cast<double>(nx) + 1.0 - static_cast<double>(j));
  }
  return d;
}

}  // namespace dbx
