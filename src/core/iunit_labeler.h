// Copyright (c) DBExplorer reproduction authors.
// Cluster labeling — the paper's "key contribution in creating the IUnits"
// (§3.1.2): summarize each cluster per Compare Attribute by frequency-ranked
// representative values, grouping values whose frequencies are statistically
// close, under a max-display-count budget.

#pragma once

#include <vector>

#include "src/core/iunit.h"
#include "src/stats/discretizer.h"
#include "src/util/result.h"

namespace dbx {

struct LabelerOptions {
  /// Max representative values shown per Compare Attribute (the paper's
  /// "max display count").
  size_t max_display_count = 2;
  /// A further value joins the representatives only while its frequency is
  /// at least this fraction of the top value's frequency (the paper's
  /// "statistical difference between frequency counts").
  double frequency_ratio = 0.5;
};

/// Builds the labeled IUnit for one cluster.
///
/// `member_positions` index the DiscretizedTable's rows; `compare_attrs` are
/// attribute indices into `dt` defining the label schema. Fills `cells`,
/// `attr_freqs`, `member_positions`, and `score` (cluster size; callers may
/// override with a custom preference).
[[nodiscard]] Result<IUnit> LabelCluster(const DiscretizedTable& dt,
                           const std::vector<size_t>& compare_attrs,
                           std::vector<size_t> member_positions,
                           const LabelerOptions& options);

}  // namespace dbx
