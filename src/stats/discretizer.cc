#include "src/stats/discretizer.h"

namespace dbx {

Result<DiscretizedTable> DiscretizedTable::Build(
    const TableSlice& slice, const DiscretizerOptions& options) {
  if (slice.table == nullptr) {
    return Status::InvalidArgument("null table in slice");
  }
  if (options.max_numeric_bins == 0) {
    return Status::InvalidArgument("max_numeric_bins must be >= 1");
  }
  const Table& t = *slice.table;
  DiscretizedTable out;
  out.rows_ = slice.rows;
  out.num_rows_ = slice.rows.size();
  out.attrs_.reserve(t.num_cols());

  for (size_t a = 0; a < t.num_cols(); ++a) {
    const AttributeDef& def = t.schema().attr(a);
    const Column& col = t.col(a);
    DiscreteAttr da;
    da.name = def.name;
    da.original_type = def.type;
    da.queriable = def.queriable;
    da.codes.resize(slice.rows.size(), -1);

    if (def.type == AttrType::kCategorical) {
      // Re-compact dictionary codes to the values present in the slice so
      // downstream contingency tables stay dense.
      std::vector<int32_t> remap(col.DictSize(), -1);
      for (size_t i = 0; i < slice.rows.size(); ++i) {
        int32_t code = col.CodeAt(slice.rows[i]);
        if (code == kNullCode) continue;
        if (remap[code] == -1) {
          remap[code] = static_cast<int32_t>(da.labels.size());
          da.labels.push_back(col.DictString(code));
        }
        da.codes[i] = remap[code];
      }
    } else {
      std::vector<double> vals;
      vals.reserve(slice.rows.size());
      for (uint32_t r : slice.rows) {
        if (!col.IsNullAt(r)) vals.push_back(col.NumberAt(r));
      }
      if (!vals.empty()) {
        auto bins = BuildBins(vals, options.max_numeric_bins, options.strategy);
        if (!bins.ok()) return bins.status();
        da.bins = std::move(bins).value();
        da.labels.reserve(da.bins.num_bins());
        for (size_t b = 0; b < da.bins.num_bins(); ++b) {
          da.labels.push_back(da.bins.LabelOf(b));
        }
        for (size_t i = 0; i < slice.rows.size(); ++i) {
          uint32_t r = slice.rows[i];
          if (!col.IsNullAt(r)) da.codes[i] = da.bins.BinOf(col.NumberAt(r));
        }
      }
    }
    out.attrs_.push_back(std::move(da));
  }
  return out;
}

Result<DiscretizedTable> DiscretizedTable::FromParts(
    std::vector<DiscreteAttr> attrs, RowSet rows) {
  for (const DiscreteAttr& a : attrs) {
    if (a.codes.size() != rows.size()) {
      return Status::InvalidArgument("attribute '" + a.name +
                                     "' codes not parallel to rows");
    }
  }
  DiscretizedTable out;
  out.num_rows_ = rows.size();
  out.rows_ = std::move(rows);
  out.attrs_ = std::move(attrs);
  return out;
}

DiscretizedTable DiscretizedTable::Project(const RowSet& rows) const {
  DiscretizedTable out;
  out.num_rows_ = rows.size();
  out.rows_.reserve(rows.size());
  for (uint32_t pos : rows) {
    out.rows_.push_back(pos < rows_.size() ? rows_[pos] : pos);
  }
  out.attrs_.reserve(attrs_.size());
  for (const DiscreteAttr& a : attrs_) {
    DiscreteAttr pa;
    pa.name = a.name;
    pa.original_type = a.original_type;
    pa.queriable = a.queriable;
    pa.labels = a.labels;
    pa.bins = a.bins;
    pa.codes.reserve(rows.size());
    for (uint32_t pos : rows) {
      pa.codes.push_back(pos < a.codes.size() ? a.codes[pos] : -1);
    }
    out.attrs_.push_back(std::move(pa));
  }
  return out;
}

std::optional<size_t> DiscretizedTable::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return std::nullopt;
}

}  // namespace dbx
