// Copyright (c) DBExplorer reproduction authors.
// Frequency tables over discrete codes: the facet engine's summary digest and
// the IUnit labeler are both built on these.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace dbx {

/// (value label, count) with counts sorted descending for display.
struct FrequencyEntry {
  int32_t code = -1;
  std::string label;
  uint64_t count = 0;
};

/// Counts of each discrete code in a code vector.
class FrequencyTable {
 public:
  /// Counts codes in [0, cardinality); negatives (nulls) are tallied
  /// separately.
  static FrequencyTable FromCodes(const std::vector<int32_t>& codes,
                                  size_t cardinality,
                                  const std::vector<std::string>& labels);

  /// As FromCodes over positions [begin, end) only — one shard's frequency
  /// sketch. Per-shard tables combined with MergeFrom equal the full-vector
  /// table exactly for any shard decomposition and merge order: counts are
  /// uint64 sums and the display order is re-derived from the merged counts
  /// (DESIGN.md §13).
  static FrequencyTable FromCodesRange(const std::vector<int32_t>& codes,
                                       size_t cardinality,
                                       const std::vector<std::string>& labels,
                                       size_t begin, size_t end);

  /// Adds `other`'s counts (and null tally) and re-sorts the display order.
  /// Fails when the domains (count vector sizes) differ.
  [[nodiscard]] Status MergeFrom(const FrequencyTable& other);

  /// Entries sorted by descending count (ties broken by code for
  /// determinism). Zero-count codes are included — digests need the full
  /// domain vector.
  const std::vector<FrequencyEntry>& sorted() const { return sorted_; }

  /// Raw count per code (index = code).
  const std::vector<uint64_t>& counts() const { return counts_; }

  uint64_t total() const { return total_; }
  uint64_t null_count() const { return null_count_; }

  /// Count vector as doubles (for cosine similarity).
  std::vector<double> AsVector() const;

 private:
  std::vector<uint64_t> counts_;
  std::vector<FrequencyEntry> sorted_;
  uint64_t total_ = 0;
  uint64_t null_count_ = 0;
};

}  // namespace dbx
