#include "src/stats/feature_selection.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/stats/contingency.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace dbx {

const char* FeatureRankerName(FeatureRanker r) {
  switch (r) {
    case FeatureRanker::kChiSquare: return "chi-square";
    case FeatureRanker::kMutualInformation: return "mutual-information";
    case FeatureRanker::kCramersV: return "cramers-v";
  }
  return "?";
}

Result<std::vector<FeatureScore>> RankFeatures(
    const DiscretizedTable& dt, const std::vector<int32_t>& pivot_codes,
    size_t pivot_cardinality, const std::vector<size_t>& candidates,
    const FeatureSelectionOptions& options) {
  if (pivot_codes.size() != dt.num_rows()) {
    return Status::InvalidArgument("pivot coding length != table rows");
  }
  if (pivot_cardinality < 1) {
    return Status::InvalidArgument("pivot cardinality must be >= 1");
  }
  ScopedSpan span(options.tracer, "chi_square", options.trace_parent);
  span.AddArg("ranker", FeatureRankerName(options.ranker));
  span.AddArg("candidates", static_cast<uint64_t>(candidates.size()));
  span.AddArg("rows", static_cast<uint64_t>(dt.num_rows()));
  Stopwatch timer;
  // One contingency table per candidate, each filling its own score slot;
  // the sort afterwards makes the ranking independent of execution order.
  std::vector<FeatureScore> scores(candidates.size());
  DBX_RETURN_IF_ERROR(ParallelFor(
      options.num_threads, 0, candidates.size(), 1, [&](size_t c) -> Status {
        size_t idx = candidates[c];
        if (idx >= dt.num_attrs()) {
          return Status::OutOfRange("candidate attribute index out of range");
        }
        const DiscreteAttr& a = dt.attr(idx);
        ContingencyTable ct = ContingencyTable::FromCodes(
            pivot_codes, pivot_cardinality, a.codes, a.cardinality());
        ChiSquareResult chi = ChiSquareTest(ct);

        FeatureScore fs;
        fs.attr_index = idx;
        fs.name = a.name;
        fs.chi2 = chi.statistic;
        fs.df = chi.df;
        fs.p_value = chi.p_value;
        fs.significant = chi.p_value <= options.significance && chi.df > 0;
        switch (options.ranker) {
          case FeatureRanker::kChiSquare:
            fs.score = chi.statistic;
            break;
          case FeatureRanker::kMutualInformation:
            fs.score = MutualInformationBits(ct);
            break;
          case FeatureRanker::kCramersV:
            fs.score = CramersV(ct);
            break;
        }
        scores[c] = std::move(fs);
        return Status::OK();
      }));
  std::stable_sort(scores.begin(), scores.end(),
                   [](const FeatureScore& a, const FeatureScore& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.attr_index < b.attr_index;
                   });
  MetricsRegistry* reg = MetricsRegistry::Global();
  reg->GetCounter("dbx_stats_rank_features_total")->Increment();
  reg->GetCounter("dbx_stats_candidates_ranked_total")
      ->Increment(candidates.size());
  reg->GetHistogram("dbx_stats_rank_features_ms")
      ->ObserveNs(timer.ElapsedNanos());
  return scores;
}

}  // namespace dbx
