#include "src/stats/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/obs/metrics.h"
#include "src/stats/contingency.h"
#include "src/util/shard.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace dbx {

const char* FeatureRankerName(FeatureRanker r) {
  switch (r) {
    case FeatureRanker::kChiSquare: return "chi-square";
    case FeatureRanker::kMutualInformation: return "mutual-information";
    case FeatureRanker::kCramersV: return "cramers-v";
  }
  return "?";
}

Result<std::vector<FeatureScore>> RankFeatures(
    const DiscretizedTable& dt, const std::vector<int32_t>& pivot_codes,
    size_t pivot_cardinality, const std::vector<size_t>& candidates,
    const FeatureSelectionOptions& options) {
  if (pivot_codes.size() != dt.num_rows()) {
    return Status::InvalidArgument("pivot coding length != table rows");
  }
  if (pivot_cardinality < 1) {
    return Status::InvalidArgument("pivot cardinality must be >= 1");
  }
  size_t shards = EffectiveShardCount(
      dt.num_rows(), std::max<size_t>(1, options.num_shards), 1);
  ScopedSpan span(options.tracer, "chi_square", options.trace_parent);
  span.AddArg("ranker", FeatureRankerName(options.ranker));
  span.AddArg("candidates", static_cast<uint64_t>(candidates.size()));
  span.AddArg("rows", static_cast<uint64_t>(dt.num_rows()));
  span.AddArg("shards", static_cast<uint64_t>(shards));
  Stopwatch timer;
  // One contingency table per candidate, each filling its own score slot;
  // the sort afterwards makes the ranking independent of execution order.
  std::vector<FeatureScore> scores(candidates.size());
  auto score_one = [&](size_t c, const ContingencyTable& ct) {
    const DiscreteAttr& a = dt.attr(candidates[c]);
    ChiSquareResult chi = ChiSquareTest(ct);
    FeatureScore fs;
    fs.attr_index = candidates[c];
    fs.name = a.name;
    fs.chi2 = chi.statistic;
    fs.df = chi.df;
    fs.p_value = chi.p_value;
    fs.significant = chi.p_value <= options.significance && chi.df > 0;
    switch (options.ranker) {
      case FeatureRanker::kChiSquare:
        fs.score = chi.statistic;
        break;
      case FeatureRanker::kMutualInformation:
        fs.score = MutualInformationBits(ct);
        break;
      case FeatureRanker::kCramersV:
        fs.score = CramersV(ct);
        break;
    }
    scores[c] = std::move(fs);
  };
  for (size_t idx : candidates) {
    if (idx >= dt.num_attrs()) {
      return Status::OutOfRange("candidate attribute index out of range");
    }
  }
  if (shards <= 1) {
    DBX_RETURN_IF_ERROR(ParallelFor(
        options.num_threads, 0, candidates.size(), 1, [&](size_t c) -> Status {
          const DiscreteAttr& a = dt.attr(candidates[c]);
          ContingencyTable ct = ContingencyTable::FromCodes(
              pivot_codes, pivot_cardinality, a.codes, a.cardinality());
          score_one(c, ct);
          return Status::OK();
        }));
  } else {
    // Sharded counting (DESIGN.md §13): one task per (candidate, shard) pair
    // fills its own slot; each candidate's shard tables then merge in shard
    // order. Count addition is exact, so the merged table — and every score
    // derived from it — equals the single-pass table for any shard count.
    std::vector<ShardRange> ranges = MakeShardRanges(dt.num_rows(), shards);
    std::vector<std::unique_ptr<ContingencyTable>> cells(candidates.size() *
                                                         shards);
    DBX_RETURN_IF_ERROR(ParallelFor(
        options.num_threads, 0, cells.size(), 1, [&](size_t t) -> Status {
          size_t c = t / shards;
          size_t s = t % shards;
          const DiscreteAttr& a = dt.attr(candidates[c]);
          cells[t] = std::make_unique<ContingencyTable>(
              ContingencyTable::FromCodesRange(
                  pivot_codes, pivot_cardinality, a.codes, a.cardinality(),
                  ranges[s].begin, ranges[s].end));
          return Status::OK();
        }));
    DBX_RETURN_IF_ERROR(ParallelFor(
        options.num_threads, 0, candidates.size(), 1, [&](size_t c) -> Status {
          ContingencyTable ct = std::move(*cells[c * shards]);
          for (size_t s = 1; s < shards; ++s) {
            DBX_RETURN_IF_ERROR(ct.MergeFrom(*cells[c * shards + s]));
          }
          score_one(c, ct);
          return Status::OK();
        }));
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const FeatureScore& a, const FeatureScore& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.attr_index < b.attr_index;
                   });
  MetricsRegistry* reg = MetricsRegistry::Global();
  reg->GetCounter("dbx_stats_rank_features_total")->Increment();
  reg->GetCounter("dbx_stats_candidates_ranked_total")
      ->Increment(candidates.size());
  reg->GetHistogram("dbx_stats_rank_features_ms")
      ->ObserveNs(timer.ElapsedNanos());
  return scores;
}

}  // namespace dbx
