#include "src/stats/gamma.h"

#include <cmath>
#include <limits>

namespace dbx {
namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 3.0e-12;
constexpr double kFpMin = 1.0e-300;

// std::lgamma writes the process-global `signgam`, which is a data race when
// chi-square p-values are computed on the thread pool. All arguments here are
// positive, so the sign output is irrelevant; use the reentrant variant.
double LogGamma(double a) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(a, &sign);
#else
  return std::lgamma(a);
#endif
}

// Series representation of P(a, x); converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double gln = LogGamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Continued-fraction representation of Q(a, x); converges fast for x >= a+1.
double GammaQContinuedFraction(double a, double x) {
  double gln = LogGamma(a);
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    double an = -static_cast<double>(i) * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double GammaP(double a, double x) {
  if (a <= 0.0 || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double GammaQ(double a, double x) {
  if (a <= 0.0 || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double df) {
  if (x <= 0.0) return 0.0;
  return GammaP(df / 2.0, x / 2.0);
}

double ChiSquareSf(double x, double df) {
  if (x <= 0.0) return 1.0;
  return GammaQ(df / 2.0, x / 2.0);
}

double ChiSquareQuantile(double p, double df) {
  if (p >= 1.0) return 0.0;
  double lo = 0.0;
  double hi = df + 10.0;
  while (ChiSquareSf(hi, df) > p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (ChiSquareSf(mid, df) > p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-10 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace dbx
