#include "src/stats/frequency.h"

#include <algorithm>

namespace dbx {
namespace {

// Entries sorted by descending count, ties by code — shared by construction
// and merge so the display order is always derived from the current counts.
std::vector<FrequencyEntry> SortedEntries(const std::vector<uint64_t>& counts,
                                          const std::vector<std::string>& labels) {
  std::vector<FrequencyEntry> sorted;
  sorted.reserve(counts.size());
  for (size_t c = 0; c < counts.size(); ++c) {
    FrequencyEntry e;
    e.code = static_cast<int32_t>(c);
    e.label = c < labels.size() ? labels[c] : std::string();
    e.count = counts[c];
    sorted.push_back(std::move(e));
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FrequencyEntry& a, const FrequencyEntry& b) {
                     if (a.count != b.count) return a.count > b.count;
                     return a.code < b.code;
                   });
  return sorted;
}

}  // namespace

FrequencyTable FrequencyTable::FromCodes(const std::vector<int32_t>& codes,
                                         size_t cardinality,
                                         const std::vector<std::string>& labels) {
  return FromCodesRange(codes, cardinality, labels, 0, codes.size());
}

FrequencyTable FrequencyTable::FromCodesRange(
    const std::vector<int32_t>& codes, size_t cardinality,
    const std::vector<std::string>& labels, size_t begin, size_t end) {
  FrequencyTable t;
  t.counts_.assign(cardinality, 0);
  end = std::min(end, codes.size());
  for (size_t i = begin; i < end; ++i) {
    int32_t c = codes[i];
    if (c < 0) {
      ++t.null_count_;
    } else if (static_cast<size_t>(c) < cardinality) {
      ++t.counts_[c];
      ++t.total_;
    }
  }
  t.sorted_ = SortedEntries(t.counts_, labels);
  return t;
}

Status FrequencyTable::MergeFrom(const FrequencyTable& other) {
  if (other.counts_.size() != counts_.size()) {
    return Status::InvalidArgument("frequency merge domain mismatch");
  }
  for (size_t c = 0; c < counts_.size(); ++c) counts_[c] += other.counts_[c];
  total_ += other.total_;
  null_count_ += other.null_count_;
  std::vector<std::string> labels(counts_.size());
  for (const FrequencyEntry& e : sorted_) {
    if (e.code >= 0 && static_cast<size_t>(e.code) < labels.size()) {
      labels[static_cast<size_t>(e.code)] = e.label;
    }
  }
  sorted_ = SortedEntries(counts_, labels);
  return Status::OK();
}

std::vector<double> FrequencyTable::AsVector() const {
  std::vector<double> v(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    v[i] = static_cast<double>(counts_[i]);
  }
  return v;
}

}  // namespace dbx
