#include "src/stats/frequency.h"

#include <algorithm>

namespace dbx {

FrequencyTable FrequencyTable::FromCodes(const std::vector<int32_t>& codes,
                                         size_t cardinality,
                                         const std::vector<std::string>& labels) {
  FrequencyTable t;
  t.counts_.assign(cardinality, 0);
  for (int32_t c : codes) {
    if (c < 0) {
      ++t.null_count_;
    } else if (static_cast<size_t>(c) < cardinality) {
      ++t.counts_[c];
      ++t.total_;
    }
  }
  t.sorted_.reserve(cardinality);
  for (size_t c = 0; c < cardinality; ++c) {
    FrequencyEntry e;
    e.code = static_cast<int32_t>(c);
    e.label = c < labels.size() ? labels[c] : std::string();
    e.count = t.counts_[c];
    t.sorted_.push_back(std::move(e));
  }
  std::stable_sort(t.sorted_.begin(), t.sorted_.end(),
                   [](const FrequencyEntry& a, const FrequencyEntry& b) {
                     if (a.count != b.count) return a.count > b.count;
                     return a.code < b.code;
                   });
  return t;
}

std::vector<double> FrequencyTable::AsVector() const {
  std::vector<double> v(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    v[i] = static_cast<double>(counts_[i]);
  }
  return v;
}

}  // namespace dbx
