// Copyright (c) DBExplorer reproduction authors.
// Special functions backing the chi-square distribution: the regularized
// incomplete gamma functions, implemented from scratch (series + continued
// fraction, as in Numerical Recipes) so feature selection has exact p-values
// without an external math dependency.

#pragma once

namespace dbx {

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
/// Returns values in [0, 1]; P is increasing in x.
double GammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double GammaQ(double a, double x);

/// Chi-square CDF with `df` degrees of freedom evaluated at `x >= 0`.
double ChiSquareCdf(double x, double df);

/// Chi-square survival function (p-value of observing a statistic >= x).
double ChiSquareSf(double x, double df);

/// Upper quantile: smallest x with ChiSquareSf(x, df) <= p. Solved by
/// bisection; used for significance thresholds (p = 0.01 / 0.05 / 0.10).
double ChiSquareQuantile(double p, double df);

}  // namespace dbx
