// Copyright (c) DBExplorer reproduction authors.
// Attribute-value cardinality reduction (paper §2.2.1): every attribute of a
// selected fragment is mapped to a small discrete domain — categorical values
// pass through (dictionary codes re-compacted to the slice), numeric values
// are binned with a histogram strategy. The resulting DiscretizedTable is the
// common input to feature selection, clustering, IUnit labeling, and the
// similarity algorithms, so the whole pipeline runs on small integer codes.

#pragma once

#include <string>
#include <vector>

#include "src/relation/table.h"
#include "src/stats/histogram.h"
#include "src/util/result.h"

namespace dbx {

/// Tuning for discretization.
struct DiscretizerOptions {
  /// Max bins for numeric attributes.
  size_t max_numeric_bins = 8;
  BinStrategy strategy = BinStrategy::kEquiDepth;
};

/// One attribute of the discretized fragment.
struct DiscreteAttr {
  std::string name;
  AttrType original_type = AttrType::kCategorical;
  bool queriable = true;

  /// Discrete-domain labels; labels.size() is the attribute's cardinality.
  /// For numeric attributes these are bin labels like "20K-25K"; for
  /// categorical attributes, the values present in the slice.
  std::vector<std::string> labels;

  /// For numeric attributes, the bin edges (empty for categorical).
  Bins bins;

  /// Code per slice row (parallel to the originating slice's RowSet);
  /// -1 for nulls, otherwise in [0, labels.size()).
  std::vector<int32_t> codes;

  size_t cardinality() const { return labels.size(); }
};

/// A table slice with every attribute reduced to a small discrete domain.
class DiscretizedTable {
 public:
  /// Discretizes every attribute of `slice`. Attributes whose slice is
  /// entirely null get cardinality 0 and all-null codes.
  [[nodiscard]] static Result<DiscretizedTable> Build(const TableSlice& slice,
                                        const DiscretizerOptions& options);

  /// Assembles a discretization directly from per-attribute parts. The
  /// streaming generators (ScaledUsedCars in src/data/synthetic.h) compute
  /// codes shard-parallel without ever materializing a Value table; `rows`
  /// indexes the virtual base table and every attribute's codes must be
  /// parallel to it. Fails on a length mismatch.
  [[nodiscard]] static Result<DiscretizedTable> FromParts(
      std::vector<DiscreteAttr> attrs, RowSet rows);

  size_t num_rows() const { return num_rows_; }
  size_t num_attrs() const { return attrs_.size(); }
  const DiscreteAttr& attr(size_t i) const { return attrs_[i]; }
  const std::vector<DiscreteAttr>& attrs() const { return attrs_; }

  /// Index of attribute `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// The rows (into the base table) this discretization covers.
  const RowSet& rows() const { return rows_; }

  /// Projects a full-table discretization onto a subset of its rows, reusing
  /// the full-table domains (bins and label order stay identical across
  /// interactions — the stable-facet-labels behaviour of the TPFacet query
  /// panel, and the fast path for interactive re-builds: no re-binning).
  ///
  /// `rows` must index rows of THIS discretization's row order. Values absent
  /// from the subset keep their codes, so cardinalities do not shrink.
  DiscretizedTable Project(const RowSet& rows) const;

 private:
  std::vector<DiscreteAttr> attrs_;
  RowSet rows_;
  size_t num_rows_ = 0;
};

}  // namespace dbx
