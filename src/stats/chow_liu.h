// Copyright (c) DBExplorer reproduction authors.
// Chow-Liu dependency trees: the paper's related-work §7 notes that "a
// Bayesian network can provide a more accurate description of attribute
// interactions" than flat feature selection. The Chow-Liu algorithm is the
// classic tractable instance — the maximum spanning tree over pairwise
// mutual information is the best tree-shaped Bayesian network of the
// attribute joint distribution. DBExplorer uses it to surface the global
// dependency structure of a fragment ("what drives what"), complementing the
// per-pivot Compare-Attribute ranking.

#pragma once

#include <string>
#include <vector>

#include "src/stats/discretizer.h"
#include "src/util/result.h"

namespace dbx {

/// One edge of the dependency tree.
struct DependencyEdge {
  size_t a = 0;  // attribute indices into the DiscretizedTable
  size_t b = 0;
  std::string attr_a;
  std::string attr_b;
  double mutual_information = 0.0;  // bits
};

/// A Chow-Liu tree (forest when attributes are disconnected by zero MI or
/// the table has all-null attributes).
struct DependencyTree {
  std::vector<DependencyEdge> edges;  // strongest first

  /// Total mutual information captured by the tree (the Chow-Liu objective).
  double total_information() const {
    double s = 0.0;
    for (const DependencyEdge& e : edges) s += e.mutual_information;
    return s;
  }

  /// Multi-line text rendering ("A -- B  (1.23 bits)").
  std::string ToString() const;
};

/// Builds the Chow-Liu tree over `attr_indices` of `dt` (all attributes with
/// non-zero cardinality when empty). Runs O(k^2) contingency builds over the
/// fragment; use a sampled fragment for large tables.
[[nodiscard]]
Result<DependencyTree> BuildChowLiuTree(const DiscretizedTable& dt,
                                        std::vector<size_t> attr_indices = {});

}  // namespace dbx
