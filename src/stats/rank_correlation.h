// Copyright (c) DBExplorer reproduction authors.
// Rank correlation: Kendall's tau-b. Used to quantify Optimization 1's claim
// that a sample "returns almost the same set" of Compare Attributes — the
// correlation between the sampled and full-data attribute rankings is a
// sharper statement than set overlap.

#pragma once

#include <vector>

#include "src/util/result.h"

namespace dbx {

/// Kendall's tau-b between two paired score vectors (ties handled by the
/// tau-b denominator). Returns a value in [-1, 1]; requires length >= 2 and
/// equal lengths; fails when either vector is entirely tied.
[[nodiscard]] Result<double> KendallTauB(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace dbx
