#include "src/stats/contingency.h"

#include <algorithm>
#include <cmath>

#include "src/stats/gamma.h"

namespace dbx {

ContingencyTable ContingencyTable::FromCodes(const std::vector<int32_t>& a,
                                             size_t a_card,
                                             const std::vector<int32_t>& b,
                                             size_t b_card) {
  return FromCodesRange(a, a_card, b, b_card, 0, std::min(a.size(), b.size()));
}

ContingencyTable ContingencyTable::FromCodesRange(
    const std::vector<int32_t>& a, size_t a_card,
    const std::vector<int32_t>& b, size_t b_card, size_t begin, size_t end) {
  ContingencyTable t(a_card, b_card);
  size_t n = std::min({a.size(), b.size(), end});
  for (size_t i = begin; i < n; ++i) {
    if (a[i] < 0 || b[i] < 0) continue;
    t.Add(static_cast<size_t>(a[i]), static_cast<size_t>(b[i]));
  }
  return t;
}

Status ContingencyTable::MergeFrom(const ContingencyTable& other) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    return Status::InvalidArgument("contingency merge dimension mismatch");
  }
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  for (size_t r = 0; r < rows_; ++r) row_totals_[r] += other.row_totals_[r];
  for (size_t c = 0; c < cols_; ++c) col_totals_[c] += other.col_totals_[c];
  grand_total_ += other.grand_total_;
  return Status::OK();
}

ChiSquareResult ChiSquareTest(const ContingencyTable& t) {
  ChiSquareResult res;
  if (t.grand_total() == 0) return res;

  size_t eff_rows = 0, eff_cols = 0;
  for (size_t r = 0; r < t.rows(); ++r) {
    if (t.row_total(r) > 0) ++eff_rows;
  }
  for (size_t c = 0; c < t.cols(); ++c) {
    if (t.col_total(c) > 0) ++eff_cols;
  }
  if (eff_rows < 2 || eff_cols < 2) return res;

  double n = static_cast<double>(t.grand_total());
  double stat = 0.0;
  for (size_t r = 0; r < t.rows(); ++r) {
    if (t.row_total(r) == 0) continue;
    for (size_t c = 0; c < t.cols(); ++c) {
      if (t.col_total(c) == 0) continue;
      double expected = static_cast<double>(t.row_total(r)) *
                        static_cast<double>(t.col_total(c)) / n;
      double diff = static_cast<double>(t.at(r, c)) - expected;
      stat += diff * diff / expected;
    }
  }
  res.statistic = stat;
  res.df = static_cast<double>((eff_rows - 1) * (eff_cols - 1));
  res.p_value = ChiSquareSf(stat, res.df);
  return res;
}

double MutualInformationBits(const ContingencyTable& t) {
  double n = static_cast<double>(t.grand_total());
  if (n == 0.0) return 0.0;
  double mi = 0.0;
  for (size_t r = 0; r < t.rows(); ++r) {
    if (t.row_total(r) == 0) continue;
    for (size_t c = 0; c < t.cols(); ++c) {
      uint64_t o = t.at(r, c);
      if (o == 0 || t.col_total(c) == 0) continue;
      double pxy = static_cast<double>(o) / n;
      double px = static_cast<double>(t.row_total(r)) / n;
      double py = static_cast<double>(t.col_total(c)) / n;
      mi += pxy * std::log2(pxy / (px * py));
    }
  }
  return mi;
}

double CramersV(const ContingencyTable& t) {
  ChiSquareResult r = ChiSquareTest(t);
  if (r.statistic <= 0.0 || t.grand_total() == 0) return 0.0;
  size_t eff_rows = 0, eff_cols = 0;
  for (size_t i = 0; i < t.rows(); ++i) {
    if (t.row_total(i) > 0) ++eff_rows;
  }
  for (size_t c = 0; c < t.cols(); ++c) {
    if (t.col_total(c) > 0) ++eff_cols;
  }
  size_t k = std::min(eff_rows, eff_cols);
  if (k < 2) return 0.0;
  double v = std::sqrt(r.statistic /
                       (static_cast<double>(t.grand_total()) *
                        static_cast<double>(k - 1)));
  return std::min(v, 1.0);
}

}  // namespace dbx
