// Copyright (c) DBExplorer reproduction authors.
// Contingency tables and the chi-square statistic over them — the machinery
// behind Compare Attribute selection (paper §3.1.1, Weka's ChiSquare).

#pragma once

#include <cstdint>
#include <vector>

#include "src/util/result.h"

namespace dbx {

/// An r x c table of co-occurrence counts between two discrete codings.
class ContingencyTable {
 public:
  ContingencyTable(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), cells_(rows * cols, 0),
        row_totals_(rows, 0), col_totals_(cols, 0) {}

  /// Builds from two parallel code vectors; pairs with a negative code on
  /// either side (nulls) are skipped. `a` codes index rows, `b` codes columns.
  static ContingencyTable FromCodes(const std::vector<int32_t>& a, size_t a_card,
                                    const std::vector<int32_t>& b, size_t b_card);

  /// As FromCodes, but counts only positions [begin, end) — one shard's
  /// contribution. Summing the per-shard tables with MergeFrom reproduces the
  /// full-vector table exactly: cells are uint64 counts, whose addition is
  /// associative and commutative, so the merge is exact for any shard
  /// decomposition and any merge order (DESIGN.md §13).
  static ContingencyTable FromCodesRange(const std::vector<int32_t>& a,
                                         size_t a_card,
                                         const std::vector<int32_t>& b,
                                         size_t b_card, size_t begin,
                                         size_t end);

  /// Adds `other`'s counts cell-wise. Fails when dimensions differ.
  [[nodiscard]] Status MergeFrom(const ContingencyTable& other);

  void Add(size_t r, size_t c, uint64_t n = 1) {
    cells_[r * cols_ + c] += n;
    row_totals_[r] += n;
    col_totals_[c] += n;
    grand_total_ += n;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  uint64_t at(size_t r, size_t c) const { return cells_[r * cols_ + c]; }
  uint64_t row_total(size_t r) const { return row_totals_[r]; }
  uint64_t col_total(size_t c) const { return col_totals_[c]; }
  uint64_t grand_total() const { return grand_total_; }

 private:
  size_t rows_, cols_;
  std::vector<uint64_t> cells_;
  std::vector<uint64_t> row_totals_;
  std::vector<uint64_t> col_totals_;
  uint64_t grand_total_ = 0;
};

/// Result of a chi-square test of independence.
struct ChiSquareResult {
  double statistic = 0.0;
  double df = 0.0;
  double p_value = 1.0;
};

/// Pearson chi-square over `t`, skipping empty rows/columns when computing
/// degrees of freedom. A table with < 2 effective rows or columns yields a
/// zero statistic and p-value 1.
ChiSquareResult ChiSquareTest(const ContingencyTable& t);

/// Cramer's V effect size in [0,1]; 0 for degenerate tables.
double CramersV(const ContingencyTable& t);

/// Mutual information between the table's two margins, in bits. 0 for
/// degenerate/empty tables.
double MutualInformationBits(const ContingencyTable& t);

}  // namespace dbx
