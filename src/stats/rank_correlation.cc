#include "src/stats/rank_correlation.h"

#include <cmath>

namespace dbx {

Result<double> KendallTauB(const std::vector<double>& a,
                           const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("vectors must have equal length");
  }
  const size_t n = a.size();
  if (n < 2) return Status::InvalidArgument("need at least 2 pairs");

  // O(n^2) pair walk — rankings here are attribute lists (tens of entries),
  // so the merge-sort O(n log n) variant would be over-engineering.
  int64_t concordant = 0, discordant = 0;
  int64_t ties_a = 0, ties_b = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j];
      double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) {
        // Tied in both: contributes to neither margin.
      } else if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0) == (db > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  double n0 = static_cast<double>(concordant + discordant);
  double denom = std::sqrt((n0 + ties_a) * (n0 + ties_b));
  if (denom == 0.0) {
    return Status::FailedPrecondition("a vector is entirely tied");
  }
  return static_cast<double>(concordant - discordant) / denom;
}

}  // namespace dbx
