#include "src/stats/cosine.h"

#include <cmath>
#include <cstddef>

namespace dbx {

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
  }
  for (double x : a) na += x * x;
  for (double x : b) nb += x * x;
  if (na == 0.0 && nb == 0.0) return 1.0;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double CosineDistance(const std::vector<double>& a,
                      const std::vector<double>& b) {
  return 1.0 - CosineSimilarity(a, b);
}

}  // namespace dbx
