#include "src/stats/chow_liu.h"

#include <algorithm>

#include "src/stats/contingency.h"
#include "src/util/string_util.h"

namespace dbx {
namespace {

/// Union-find for Kruskal.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::string DependencyTree::ToString() const {
  std::string out;
  for (const DependencyEdge& e : edges) {
    out += StringPrintf("%s -- %s  (%.3f bits)\n", e.attr_a.c_str(),
                        e.attr_b.c_str(), e.mutual_information);
  }
  return out;
}

Result<DependencyTree> BuildChowLiuTree(const DiscretizedTable& dt,
                                        std::vector<size_t> attr_indices) {
  if (attr_indices.empty()) {
    for (size_t a = 0; a < dt.num_attrs(); ++a) {
      if (dt.attr(a).cardinality() > 0) attr_indices.push_back(a);
    }
  }
  for (size_t a : attr_indices) {
    if (a >= dt.num_attrs()) {
      return Status::OutOfRange("attribute index out of range");
    }
  }
  if (attr_indices.size() < 2) {
    return Status::InvalidArgument("need at least two attributes for a tree");
  }

  // All pairwise mutual informations.
  std::vector<DependencyEdge> candidates;
  candidates.reserve(attr_indices.size() * (attr_indices.size() - 1) / 2);
  for (size_t i = 0; i < attr_indices.size(); ++i) {
    const DiscreteAttr& ai = dt.attr(attr_indices[i]);
    for (size_t j = i + 1; j < attr_indices.size(); ++j) {
      const DiscreteAttr& aj = dt.attr(attr_indices[j]);
      ContingencyTable ct = ContingencyTable::FromCodes(
          ai.codes, ai.cardinality(), aj.codes, aj.cardinality());
      DependencyEdge e;
      e.a = attr_indices[i];
      e.b = attr_indices[j];
      e.attr_a = ai.name;
      e.attr_b = aj.name;
      e.mutual_information = MutualInformationBits(ct);
      candidates.push_back(std::move(e));
    }
  }
  // Kruskal: strongest edges first, skip cycles.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const DependencyEdge& x, const DependencyEdge& y) {
                     return x.mutual_information > y.mutual_information;
                   });
  // Map attribute index -> dense id for union-find.
  std::vector<size_t> dense(dt.num_attrs(), 0);
  for (size_t i = 0; i < attr_indices.size(); ++i) {
    dense[attr_indices[i]] = i;
  }
  DisjointSet ds(attr_indices.size());
  DependencyTree tree;
  for (DependencyEdge& e : candidates) {
    if (tree.edges.size() + 1 == attr_indices.size()) break;
    if (e.mutual_information <= 0.0) break;  // forest: drop independent parts
    if (ds.Union(dense[e.a], dense[e.b])) {
      tree.edges.push_back(std::move(e));
    }
  }
  return tree;
}

}  // namespace dbx
