// Copyright (c) DBExplorer reproduction authors.
// Cosine similarity over count vectors. Used three ways in the paper:
// per-attribute IUnit similarity (Algorithm 1), the summary-digest metric the
// Solr-baseline users were given (§6.2.2), and retrieval-error measurement
// between result digests (§6.2.3).

#pragma once

#include <vector>

namespace dbx {

/// Cosine similarity of two equal-length vectors, in [0, 1] for non-negative
/// inputs. Either vector all-zero -> 0 (by convention), both all-zero -> 1
/// (identical empty distributions).
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// 1 - CosineSimilarity.
double CosineDistance(const std::vector<double>& a,
                      const std::vector<double>& b);

}  // namespace dbx
