#include "src/stats/soft_fd.h"

#include <algorithm>

#include "src/stats/contingency.h"

namespace dbx {

Result<SoftFd> MeasureSoftFd(const DiscretizedTable& dt, size_t determinant,
                             size_t dependent) {
  if (determinant >= dt.num_attrs() || dependent >= dt.num_attrs()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (determinant == dependent) {
    return Status::InvalidArgument("determinant == dependent");
  }
  const DiscreteAttr& da = dt.attr(determinant);
  const DiscreteAttr& db = dt.attr(dependent);
  if (da.cardinality() == 0 || db.cardinality() == 0) {
    return Status::FailedPrecondition("attribute with empty domain");
  }

  ContingencyTable ct = ContingencyTable::FromCodes(
      da.codes, da.cardinality(), db.codes, db.cardinality());
  SoftFd fd;
  fd.determinant = determinant;
  fd.dependent = dependent;
  fd.determinant_name = da.name;
  fd.dependent_name = db.name;
  if (ct.grand_total() == 0) return fd;

  // strength = sum over determinant groups of the group's majority count.
  uint64_t majority_sum = 0;
  for (size_t r = 0; r < ct.rows(); ++r) {
    uint64_t best = 0;
    for (size_t c = 0; c < ct.cols(); ++c) best = std::max(best, ct.at(r, c));
    majority_sum += best;
  }
  fd.strength = static_cast<double>(majority_sum) /
                static_cast<double>(ct.grand_total());

  uint64_t global_majority = 0;
  for (size_t c = 0; c < ct.cols(); ++c) {
    global_majority = std::max(global_majority, ct.col_total(c));
  }
  fd.baseline = static_cast<double>(global_majority) /
                static_cast<double>(ct.grand_total());
  return fd;
}

Result<std::vector<SoftFd>> DiscoverSoftFds(const DiscretizedTable& dt,
                                            const SoftFdOptions& options) {
  std::vector<SoftFd> found;
  size_t n = dt.num_rows();
  for (size_t a = 0; a < dt.num_attrs(); ++a) {
    const DiscreteAttr& da = dt.attr(a);
    if (da.cardinality() == 0) continue;
    // Near-key determinants trivially determine everything.
    if (n > 0 && static_cast<double>(da.cardinality()) >
                     options.max_determinant_ratio * static_cast<double>(n)) {
      continue;
    }
    for (size_t b = 0; b < dt.num_attrs(); ++b) {
      if (a == b || dt.attr(b).cardinality() == 0) continue;
      auto fd = MeasureSoftFd(dt, a, b);
      if (!fd.ok()) return fd.status();
      if (fd->strength >= options.min_strength &&
          fd->Lift() >= options.min_lift) {
        found.push_back(std::move(*fd));
      }
    }
  }
  std::stable_sort(found.begin(), found.end(),
                   [](const SoftFd& x, const SoftFd& y) {
                     double lx = x.Lift(), ly = y.Lift();
                     if (lx != ly) return lx > ly;
                     return x.strength > y.strength;
                   });
  return found;
}

}  // namespace dbx
