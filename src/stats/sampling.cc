#include "src/stats/sampling.h"

#include <algorithm>

namespace dbx {

RowSet SampleRows(const RowSet& rows, size_t k, Rng* rng) {
  if (k >= rows.size()) return rows;
  // Reservoir sampling keeps memory at O(k) regardless of |rows|.
  RowSet out(rows.begin(), rows.begin() + static_cast<long>(k));
  for (size_t i = k; i < rows.size(); ++i) {
    size_t j = static_cast<size_t>(rng->NextBounded(i + 1));
    if (j < k) out[j] = rows[i];
  }
  std::sort(out.begin(), out.end());
  return out;
}

RowSet BernoulliSample(const RowSet& rows, double p, Rng* rng) {
  RowSet out;
  if (p <= 0.0) return out;
  if (p >= 1.0) return rows;
  out.reserve(static_cast<size_t>(p * static_cast<double>(rows.size())) + 16);
  for (uint32_t r : rows) {
    if (rng->NextDouble() < p) out.push_back(r);
  }
  return out;
}

}  // namespace dbx
