// Copyright (c) DBExplorer reproduction authors.
// Compare-Attribute selection (paper Problem 1.1, §3.1.1): rank candidate
// attributes by how sharply they contrast the Pivot Attribute's values. The
// paper uses Weka's ChiSquare ranker with a p-value relevance threshold; we
// also provide mutual-information and Cramer's-V rankers for the ablation
// benches called out in DESIGN.md §6.

#pragma once

#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/stats/discretizer.h"
#include "src/util/result.h"

namespace dbx {

/// Ranking criteria for Compare-Attribute selection.
enum class FeatureRanker {
  kChiSquare,        // the paper's choice
  kMutualInformation,
  kCramersV,
};

const char* FeatureRankerName(FeatureRanker r);

/// Relevance of one candidate attribute to the pivot classes.
struct FeatureScore {
  size_t attr_index = 0;  // into the DiscretizedTable
  std::string name;
  double score = 0.0;     // ranker-specific (chi2 statistic, MI bits, V)
  double chi2 = 0.0;
  double df = 0.0;
  double p_value = 1.0;
  bool significant = false;
};

struct FeatureSelectionOptions {
  FeatureRanker ranker = FeatureRanker::kChiSquare;
  /// Significance level for the relevance threshold (paper suggests 0.01,
  /// 0.05, or 0.10).
  double significance = 0.05;
  /// Rank candidate attributes concurrently on the shared thread pool
  /// (1 = serial). The ranking is identical for any value: scores land in
  /// per-candidate slots and are sorted afterwards.
  size_t num_threads = 1;
  /// Split each candidate's contingency count into this many contiguous row
  /// shards, counted in parallel and merged in shard order (1 = single
  /// pass). uint64 count addition is exact, so the merged tables — and the
  /// ranking — are byte-identical for any value (DESIGN.md §13).
  size_t num_shards = 1;
  /// Observability knobs: like num_threads they never change the ranking, so
  /// the cache fingerprint excludes them. Never null — default is the no-op
  /// tracer.
  Tracer* tracer = Tracer::Disabled();
  uint64_t trace_parent = 0;
};

/// Ranks `candidates` (attribute indices into `dt`) by decreasing relevance
/// to the pivot coding `pivot_codes` (one class code per row of `dt`, -1 =
/// excluded row). `pivot_cardinality` is the number of classes.
///
/// Returns every candidate, ranked; callers take the top `c` significant
/// ones. Fails when dimensions mismatch.
[[nodiscard]] Result<std::vector<FeatureScore>> RankFeatures(
    const DiscretizedTable& dt, const std::vector<int32_t>& pivot_codes,
    size_t pivot_cardinality, const std::vector<size_t>& candidates,
    const FeatureSelectionOptions& options);

}  // namespace dbx
