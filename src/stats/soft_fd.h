// Copyright (c) DBExplorer reproduction authors.
// Soft functional-dependency discovery (CORDS-style, paper related work
// [16]): A -> B holds with strength s when knowing A's value pins down B's
// value for an s-fraction of tuples. DBExplorer surfaces strong soft FDs of
// the current fragment as exploration hints — e.g. Model -> Make in the
// used-car data, or the surrogate relationships behind Limitation 2 (a
// queriable attribute that nearly determines a hidden one).

#pragma once

#include <string>
#include <vector>

#include "src/stats/discretizer.h"
#include "src/util/result.h"

namespace dbx {

/// One discovered dependency A -> B.
struct SoftFd {
  size_t determinant = 0;  // attribute indices into the DiscretizedTable
  size_t dependent = 0;
  std::string determinant_name;
  std::string dependent_name;
  /// Fraction of tuples whose B value equals the majority B value of their
  /// A group; 1.0 = exact functional dependency.
  double strength = 0.0;
  /// Baseline: the strength a constant predictor achieves (share of B's
  /// global majority value). Dependencies barely above it are uninteresting.
  double baseline = 0.0;

  /// strength corrected for the baseline, in [0, 1]:
  /// (strength - baseline) / (1 - baseline).
  double Lift() const {
    return baseline >= 1.0 ? 0.0 : (strength - baseline) / (1.0 - baseline);
  }
};

struct SoftFdOptions {
  /// Keep only dependencies with at least this strength.
  double min_strength = 0.9;
  /// ...and at least this baseline-corrected lift.
  double min_lift = 0.3;
  /// Skip determinant attributes with more distinct values than this times
  /// the row count (near-key attributes trivially determine everything).
  double max_determinant_ratio = 0.5;
};

/// Strength of `determinant -> dependent` over the fragment (no filtering).
[[nodiscard]]
Result<SoftFd> MeasureSoftFd(const DiscretizedTable& dt, size_t determinant,
                             size_t dependent);

/// Scans every ordered attribute pair of `dt` and returns dependencies
/// passing the thresholds, strongest (by lift, then strength) first.
[[nodiscard]]
Result<std::vector<SoftFd>> DiscoverSoftFds(const DiscretizedTable& dt,
                                            const SoftFdOptions& options);

}  // namespace dbx
