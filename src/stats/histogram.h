// Copyright (c) DBExplorer reproduction authors.
// Histogram construction for numeric-attribute cardinality reduction (paper
// §2.2.1, citing Jagadish & Suel's optimal-histogram work [17]). Three
// strategies: equi-width, equi-depth, and V-optimal (dynamic programming,
// minimizing within-bucket sum of squared error).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace dbx {

/// How numeric domains are carved into buckets.
enum class BinStrategy {
  kEquiWidth,
  kEquiDepth,
  kVOptimal,
};

const char* BinStrategyName(BinStrategy s);

/// A binning of a numeric domain: `edges` has num_bins+1 ascending entries;
/// bin i covers [edges[i], edges[i+1]) except the last, which is closed.
struct Bins {
  std::vector<double> edges;

  size_t num_bins() const { return edges.empty() ? 0 : edges.size() - 1; }

  /// Bin index for `x`, clamping to the first/last bin; -1 for NaN.
  int32_t BinOf(double x) const;

  /// Human label for bin i, e.g. "20K-25K" or "2.5-3.1".
  std::string LabelOf(size_t i) const;
};

/// Builds bins over `values` (NaNs ignored). `max_bins` >= 1. Degenerate
/// inputs (empty, or all-equal values) yield a single bin.
/// V-optimal runs an O(n'^2 * b) DP over the distinct sorted values n' — use
/// equi-depth when the domain is large and latency matters.
[[nodiscard]]
Result<Bins> BuildBins(const std::vector<double>& values, size_t max_bins,
                       BinStrategy strategy);

/// Formats a numeric bound compactly: 20000 -> "20K", 1500000 -> "1.5M",
/// 37.5 -> "37.5".
std::string CompactNumber(double x);

}  // namespace dbx
