// Copyright (c) DBExplorer reproduction authors.
// Row sampling — Optimization 1 of the paper (§6.3): Compare-Attribute
// selection and IUnit generation over a 5K-10K sample match the full-data
// result at a fraction of the cost.

#pragma once

#include "src/relation/table.h"
#include "src/util/rng.h"

namespace dbx {

/// Uniform sample of `k` rows from `rows` without replacement (all rows when
/// k >= rows.size()). Output is sorted ascending. Deterministic given `rng`.
RowSet SampleRows(const RowSet& rows, size_t k, Rng* rng);

/// Bernoulli sample keeping each row with probability `p`.
RowSet BernoulliSample(const RowSet& rows, double p, Rng* rng);

}  // namespace dbx
