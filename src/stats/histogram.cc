#include "src/stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/string_util.h"

namespace dbx {

const char* BinStrategyName(BinStrategy s) {
  switch (s) {
    case BinStrategy::kEquiWidth: return "equi-width";
    case BinStrategy::kEquiDepth: return "equi-depth";
    case BinStrategy::kVOptimal: return "v-optimal";
  }
  return "?";
}

int32_t Bins::BinOf(double x) const {
  if (std::isnan(x) || edges.size() < 2) return -1;
  if (x <= edges.front()) return 0;
  if (x >= edges.back()) return static_cast<int32_t>(num_bins()) - 1;
  // upper_bound over interior edges.
  auto it = std::upper_bound(edges.begin(), edges.end(), x);
  return static_cast<int32_t>(it - edges.begin()) - 1;
}

std::string CompactNumber(double x) {
  double ax = std::fabs(x);
  if (ax >= 1e6) {
    double m = x / 1e6;
    std::string s = FormatDouble(m, m == std::floor(m) ? 0 : 1);
    return s + "M";
  }
  if (ax >= 1e3) {
    double k = x / 1e3;
    std::string s = FormatDouble(k, k == std::floor(k) ? 0 : 1);
    return s + "K";
  }
  if (x == std::floor(x)) return FormatDouble(x, 0);
  return FormatDouble(x, 1);
}

std::string Bins::LabelOf(size_t i) const {
  if (i + 1 >= edges.size()) return "?";
  return CompactNumber(edges[i]) + "-" + CompactNumber(edges[i + 1]);
}

namespace {

std::vector<double> CleanSorted(const std::vector<double>& values) {
  std::vector<double> v;
  v.reserve(values.size());
  for (double x : values) {
    if (!std::isnan(x)) v.push_back(x);
  }
  std::sort(v.begin(), v.end());
  return v;
}

Bins SingleBin(double lo, double hi) {
  Bins b;
  b.edges = {lo, hi};
  return b;
}

Bins EquiWidth(const std::vector<double>& sorted, size_t max_bins) {
  double lo = sorted.front(), hi = sorted.back();
  Bins b;
  b.edges.reserve(max_bins + 1);
  for (size_t i = 0; i <= max_bins; ++i) {
    b.edges.push_back(lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(max_bins));
  }
  return b;
}

Bins EquiDepth(const std::vector<double>& sorted, size_t max_bins) {
  Bins b;
  b.edges.push_back(sorted.front());
  size_t n = sorted.size();
  for (size_t i = 1; i < max_bins; ++i) {
    size_t idx = i * n / max_bins;
    double e = sorted[std::min(idx, n - 1)];
    if (e > b.edges.back()) b.edges.push_back(e);
  }
  if (sorted.back() > b.edges.back()) {
    b.edges.push_back(sorted.back());
  } else {
    // All values equal past some point; widen the last edge slightly so the
    // bin is non-degenerate.
    b.edges.push_back(b.edges.back());
  }
  // Collapse a fully degenerate result into one bin.
  if (b.edges.size() < 2 || b.edges.front() == b.edges.back()) {
    return SingleBin(sorted.front(), sorted.back());
  }
  return b;
}

// V-optimal histogram via dynamic programming on distinct values, minimizing
// total within-bucket SSE (Jagadish et al., VLDB'98 flavor).
Bins VOptimal(const std::vector<double>& sorted, size_t max_bins) {
  // Distinct values with multiplicities.
  std::vector<double> vals;
  std::vector<double> counts;
  for (double x : sorted) {
    if (vals.empty() || x != vals.back()) {
      vals.push_back(x);
      counts.push_back(1);
    } else {
      counts.back() += 1;
    }
  }
  size_t n = vals.size();
  size_t b = std::min(max_bins, n);
  if (b <= 1 || n <= 1) return SingleBin(sorted.front(), sorted.back());

  // Prefix sums of weight, weighted value, weighted value^2.
  std::vector<double> w(n + 1, 0), s1(n + 1, 0), s2(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    w[i + 1] = w[i] + counts[i];
    s1[i + 1] = s1[i] + counts[i] * vals[i];
    s2[i + 1] = s2[i] + counts[i] * vals[i] * vals[i];
  }
  auto sse = [&](size_t i, size_t j) {  // values [i, j), i < j
    double cw = w[j] - w[i];
    double cs = s1[j] - s1[i];
    double cq = s2[j] - s2[i];
    return cq - cs * cs / cw;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[k][j]: min SSE of first j distinct values using k buckets.
  std::vector<std::vector<double>> dp(b + 1, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<size_t>> cut(b + 1, std::vector<size_t>(n + 1, 0));
  dp[0][0] = 0.0;
  for (size_t k = 1; k <= b; ++k) {
    for (size_t j = k; j <= n; ++j) {
      for (size_t i = k - 1; i < j; ++i) {
        if (dp[k - 1][i] == kInf) continue;
        double cost = dp[k - 1][i] + sse(i, j);
        if (cost < dp[k][j]) {
          dp[k][j] = cost;
          cut[k][j] = i;
        }
      }
    }
  }

  // Recover cut points (indices into distinct values).
  std::vector<size_t> cuts;  // descending
  size_t j = n;
  for (size_t k = b; k >= 1; --k) {
    cuts.push_back(j);
    j = cut[k][j];
  }
  cuts.push_back(0);
  std::reverse(cuts.begin(), cuts.end());

  Bins bins;
  bins.edges.reserve(cuts.size());
  for (size_t c = 0; c < cuts.size(); ++c) {
    if (c == 0) {
      bins.edges.push_back(vals.front());
    } else if (cuts[c] >= n) {
      bins.edges.push_back(vals.back());
    } else {
      // Edge halfway between the last value of this bucket and the first of
      // the next, so BinOf assigns values unambiguously.
      bins.edges.push_back(0.5 * (vals[cuts[c] - 1] + vals[cuts[c]]));
    }
  }
  // Deduplicate any equal edges created by halfway collisions.
  bins.edges.erase(std::unique(bins.edges.begin(), bins.edges.end()),
                   bins.edges.end());
  if (bins.edges.size() < 2) return SingleBin(sorted.front(), sorted.back());
  return bins;
}

}  // namespace

Result<Bins> BuildBins(const std::vector<double>& values, size_t max_bins,
                       BinStrategy strategy) {
  if (max_bins == 0) return Status::InvalidArgument("max_bins must be >= 1");
  std::vector<double> sorted = CleanSorted(values);
  if (sorted.empty()) {
    return Status::InvalidArgument("no non-null values to bin");
  }
  if (sorted.front() == sorted.back() || max_bins == 1) {
    return SingleBin(sorted.front(), sorted.back());
  }
  switch (strategy) {
    case BinStrategy::kEquiWidth: return EquiWidth(sorted, max_bins);
    case BinStrategy::kEquiDepth: return EquiDepth(sorted, max_bins);
    case BinStrategy::kVOptimal: return VOptimal(sorted, max_bins);
  }
  return Status::InvalidArgument("unknown bin strategy");
}

}  // namespace dbx
