#include "src/storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dbx::storage {

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    Status out = Status::Internal("fstat '" + path +
                                  "': " + std::strerror(errno));
    ::close(fd);
    return out;
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* map = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      Status out = Status::Internal("mmap '" + path +
                                    "': " + std::strerror(errno));
      ::close(fd);
      return out;
    }
    file.data_ = map;
  }
  ::close(fd);
  return file;
}

}  // namespace dbx::storage
