// Copyright (c) DBExplorer reproduction authors.
// The `sqlite:` storage backend: an ingest adapter over a SQLite database
// file. LoadTable reads any table (ORDER BY rowid), sniffing each column's
// type from the stored values — all non-null cells numeric → kNumeric,
// otherwise kCategorical. StoreTable writes TEXT/REAL columns plus a
// `dbx_storage_meta` sidecar row per column recording the exact AttrType and
// the queriable flag, so tables this backend wrote round-trip with full
// schema fidelity (external tables default to queriable).
//
// Compiled only when SQLite3 is available (DBX_HAVE_SQLITE); otherwise the
// scheme registers a creator that returns a clean NotSupported, and tests
// auto-skip.

#pragma once

#include "src/storage/storage.h"

namespace dbx::storage {

/// True when this build can actually open sqlite: URIs.
bool SqliteBackendAvailable();

/// Registers the `sqlite:` scheme (real or NotSupported stub).
void RegisterSqliteBackend(StorageBackendFactory* factory);

}  // namespace dbx::storage
