// Copyright (c) DBExplorer reproduction authors.
// DBXC: the on-disk columnar table format behind the `dbxc:` storage backend
// (DESIGN.md §15). Dictionary-coded categorical columns with bit-packed code
// pages and raw little-endian doubles, laid out so a reader can serve any
// column straight out of an mmap — no per-value parsing, no allocation per
// cell, and a DiscretizedTable view can be assembled without ever
// materializing a Value table.
//
// Layout (all integers little-endian):
//   [0,4)    magic "DBXC"
//   [4,8)    u32 version (currently 1)
//   [8,12)   u32 header_len          — bytes of the header section
//   [12,20)  u64 header_checksum     — FNV-1a of the header section
//   [20,20+header_len)  header section:
//     u64 content_hash               — TableContentHash of the stored table
//                                      (the snapshot identity)
//     u64 num_rows
//     u64 data_len                   — bytes of the data section
//     u64 data_checksum              — FNV-1a of the data section
//     u32 num_cols
//     per column:
//       u32 name_len | name | u8 type (0=categorical, 1=numeric)
//       u8 queriable
//       categorical: u32 dict_size | u8 bit_width |
//                    u64 dict_off | u64 dict_len |
//                    u64 codes_off | u64 codes_len
//       numeric:     u64 values_off | u64 values_len
//     zero padding to a multiple of 8 (so the data section is 8-aligned)
//   [20+header_len, 20+header_len+data_len)  data section:
//     dictionary blocks: concatenated u32 len | bytes, padded to 8
//     code pages: u64 words; symbols are bit_width bits LSB-first,
//                 symbol 0 = null, symbol s>0 = dictionary code s-1
//     numeric pages: f64 values (NaN = null), naturally 8-aligned
//
// All offsets are relative to the data-section start. Every structural
// defect — truncation, bad magic, checksum mismatch, offsets out of bounds,
// a version from the future — comes back as a clean Status (Corruption /
// NotSupported), never a crash; the header parser is fuzzed
// (tests/fuzz/dbxc_fuzz.cc).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/relation/table.h"
#include "src/stats/discretizer.h"
#include "src/storage/mmap_file.h"
#include "src/util/result.h"

namespace dbx::storage {

inline constexpr uint32_t kDbxcVersion = 1;
inline constexpr size_t kDbxcPreambleBytes = 20;  // magic..header_checksum

/// Per-column metadata decoded from the header.
struct DbxcColumnMeta {
  std::string name;
  AttrType type = AttrType::kCategorical;
  bool queriable = true;
  // Categorical only.
  uint32_t dict_size = 0;
  uint8_t bit_width = 0;
  uint64_t dict_off = 0, dict_len = 0;
  uint64_t codes_off = 0, codes_len = 0;
  // Numeric only.
  uint64_t values_off = 0, values_len = 0;
};

struct DbxcHeader {
  uint32_t version = 0;
  uint64_t content_hash = 0;
  uint64_t num_rows = 0;
  uint64_t data_len = 0;
  uint64_t data_checksum = 0;
  std::vector<DbxcColumnMeta> cols;
};

/// Serializes `table` into DBXC bytes. Deterministic: the same table always
/// produces the same bytes, and write -> load -> write is byte-identical
/// (dictionaries are stored in their first-appearance order, which loading
/// reproduces).
std::string DbxcSerialize(const Table& table);

/// Parses and validates the preamble + header section of `file_bytes`:
/// magic, version, declared lengths against the actual size, header
/// checksum, column metadata, and that every column's pages lie inside the
/// declared data section. Does NOT touch data pages.
[[nodiscard]] Result<DbxcHeader> ParseDbxcHeader(std::string_view file_bytes);

/// Full structural validation: ParseDbxcHeader plus the data checksum.
[[nodiscard]] Status ValidateDbxc(std::string_view file_bytes);

/// Options for DbxcTableFile::Open.
struct DbxcOpenOptions {
  /// Verify the data-section checksum at open (one sequential pass). Off,
  /// open cost is O(header) and a flipped data byte surfaces as a decode
  /// error or wrong values instead; the backend keeps it on.
  bool verify_data_checksum = true;
};

/// A DBXC file served from an mmap. Column reads decode pages on demand;
/// nothing is materialized up front.
class DbxcTableFile {
 public:
  [[nodiscard]] static Result<DbxcTableFile> Open(
      const std::string& path, const DbxcOpenOptions& options = {});

  /// Parses from an in-memory copy of a file (tests, fuzzing).
  [[nodiscard]] static Result<DbxcTableFile> FromBytes(
      std::string bytes, const DbxcOpenOptions& options = {});

  const DbxcHeader& header() const { return header_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return static_cast<size_t>(header_.num_rows); }
  size_t num_cols() const { return header_.cols.size(); }
  uint64_t content_hash() const { return header_.content_hash; }

  /// Dictionary strings of categorical column `c`, in stored (= original
  /// first-appearance) order. Corruption if a dictionary block is malformed.
  [[nodiscard]] Result<std::vector<std::string>> DictStrings(size_t c) const;

  /// Unpacks categorical column `c` into per-row dictionary codes
  /// (kNullCode for nulls). Corruption on an out-of-range symbol.
  [[nodiscard]] Status DecodeCodes(size_t c, std::vector<int32_t>* out) const;

  /// Copies numeric column `c` out of the mapping (NaN = null).
  [[nodiscard]] Status CopyNumbers(size_t c, std::vector<double>* out) const;

  /// Rebuilds the full in-memory Table (equal to what was stored, including
  /// dictionary order).
  [[nodiscard]] Result<std::shared_ptr<Table>> Materialize() const;

  /// Builds the full-table DiscretizedTable straight from the mapped pages —
  /// byte-identical to DiscretizedTable::Build(TableSlice::All(materialized),
  /// options) but without ever constructing a Table or a Value.
  [[nodiscard]] Result<DiscretizedTable> Discretize(
      const DiscretizerOptions& options) const;

 private:
  [[nodiscard]] Status Init(const DbxcOpenOptions& options);
  std::string_view data_section() const;

  MmapFile mmap_;          // set when opened from a path
  std::string owned_;      // set when opened FromBytes
  std::string_view bytes_; // whichever of the two backs this file
  DbxcHeader header_;
  Schema schema_;
};

/// Serialize + atomic write (tmp file + rename).
[[nodiscard]] Status WriteDbxcFile(const Table& table,
                                   const std::string& path);

}  // namespace dbx::storage
