// Copyright (c) DBExplorer reproduction authors.
// Read-only memory mapping of a whole file. The DBXC reader serves
// dictionary pages and packed code pages straight out of the mapping, so
// opening a table is O(header) and untouched columns never leave the page
// cache — the property that lets tables exceed RAM.

#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "src/util/result.h"

namespace dbx::storage {

/// A read-only mmap of one file. Move-only; unmaps on destruction.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. NotFound when the file does not exist or cannot
  /// be opened; an empty file maps to an empty view.
  [[nodiscard]] static Result<MmapFile> Open(const std::string& path);

  /// The mapped bytes (empty for an empty file). Valid until destruction.
  std::string_view bytes() const {
    if (data_ == nullptr) return {};
    return {static_cast<const char*>(data_), size_};
  }

 private:
  void* data_ = nullptr;  // nullptr when empty or unmapped
  size_t size_ = 0;
};

}  // namespace dbx::storage
