#include "src/storage/storage.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <limits>

#include "src/storage/dbxc_backend.h"
#include "src/storage/mem_backend.h"
#include "src/storage/sqlite_backend.h"

namespace dbx::storage {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline void HashBytes(uint64_t* h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

inline void HashU64(uint64_t* h, uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  HashBytes(h, b, 8);
}

inline void HashString(uint64_t* h, const std::string& s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

/// One fixed bit pattern for every NaN spelling, so a null numeric cell
/// hashes identically however it was produced (quiet/signaling, sign bit).
inline uint64_t CanonicalDoubleBits(double d) {
  if (std::isnan(d)) return 0x7ff8000000000000ULL;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t TableContentHash(const Table& table) {
  uint64_t h = kFnvOffset;
  HashU64(&h, table.num_rows());
  HashU64(&h, table.num_cols());
  for (const AttributeDef& a : table.schema().attrs()) {
    HashString(&h, a.name);
    HashU64(&h, a.type == AttrType::kCategorical ? 0 : 1);
    HashU64(&h, a.queriable ? 1 : 0);
  }
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const Column& col = table.col(c);
    if (col.type() == AttrType::kCategorical) {
      for (size_t r = 0; r < table.num_rows(); ++r) {
        int32_t code = col.CodeAt(r);
        if (code == kNullCode) {
          HashU64(&h, 0);
        } else {
          HashU64(&h, 1);
          HashString(&h, col.DictString(code));
        }
      }
    } else {
      for (size_t r = 0; r < table.num_rows(); ++r) {
        HashU64(&h, CanonicalDoubleBits(col.NumberAt(r)));
      }
    }
  }
  return h;
}

std::string SnapshotIdFor(const std::string& name, uint64_t content_hash) {
  static const char kHex[] = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<size_t>(i)] = kHex[content_hash & 0xf];
    content_hash >>= 4;
  }
  return name + "@" + hex;
}

Result<std::shared_ptr<Table>> CopyTable(const Table& table) {
  auto out = std::make_shared<Table>(table.schema());
  std::vector<Value> row(table.num_cols());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      row[c] = table.At(r, c);
    }
    DBX_RETURN_IF_ERROR(out->AppendRow(row));
  }
  return out;
}

bool IsValidTableName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-')) {
      return false;
    }
  }
  return true;
}

StorageBackendFactory& StorageBackendFactory::Global() {
  static StorageBackendFactory* factory = [] {
    auto* f = new StorageBackendFactory();
    RegisterMemBackend(f);
    RegisterDbxcBackend(f);
    RegisterSqliteBackend(f);
    return f;
  }();
  return *factory;
}

void StorageBackendFactory::Register(const std::string& scheme,
                                     Creator creator) {
  MutexLock lock(mu_);
  creators_[scheme] = std::move(creator);
}

Result<std::unique_ptr<StorageBackend>> StorageBackendFactory::Create(
    const std::string& uri) const {
  auto parsed = ParseStorageUri(uri);
  if (!parsed.ok()) return parsed.status();
  const auto& [scheme, location] = *parsed;
  Creator creator;
  {
    MutexLock lock(mu_);
    auto it = creators_.find(scheme);
    if (it == creators_.end()) {
      std::string known;
      for (const auto& [s, unused] : creators_) {
        if (!known.empty()) known += ", ";
        known += s + ":";
      }
      return Status::NotFound("no storage backend for scheme '" + scheme +
                              ":' (registered: " + known + ")");
    }
    creator = it->second;
  }
  return creator(location);
}

std::vector<std::string> StorageBackendFactory::Schemes() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(creators_.size());
  for (const auto& [scheme, unused] : creators_) out.push_back(scheme);
  return out;
}

Result<std::pair<std::string, std::string>> ParseStorageUri(
    const std::string& uri) {
  size_t colon = uri.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "storage URI needs a '<scheme>:' prefix, got '" + uri + "'");
  }
  if (colon == 0) {
    return Status::InvalidArgument("storage URI has an empty scheme: '" + uri +
                                   "'");
  }
  std::string scheme = uri.substr(0, colon);
  std::transform(scheme.begin(), scheme.end(), scheme.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (char c : scheme) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("storage scheme must be alphanumeric: '" +
                                     uri + "'");
    }
  }
  return std::make_pair(std::move(scheme), uri.substr(colon + 1));
}

Result<std::unique_ptr<StorageBackend>> OpenStorageBackend(
    const std::string& uri) {
  auto backend = StorageBackendFactory::Global().Create(uri);
  if (!backend.ok()) return backend.status();
  DBX_RETURN_IF_ERROR((*backend)->Open());
  return backend;
}

}  // namespace dbx::storage
