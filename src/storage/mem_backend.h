// Copyright (c) DBExplorer reproduction authors.
// The `mem:` storage backend: tables live in this process, exactly like the
// pre-storage engine — StoreTable deep-copies into an immutable snapshot,
// LoadTable hands that snapshot back. Restart loses everything (that is the
// point of the on-disk backends), but the snapshot-id contract is identical:
// ids are content hashes, so a mem: snapshot of the same logical table as a
// dbxc: or sqlite: one carries the same id and shares warm ViewCache entries.
//
// Unlike the file-backed backends (whose callers serialize access per the
// StorageBackend contract), a mem: store is also the natural shared fixture
// for multi-threaded tests, so it carries its own mutex: every operation is
// safe to call concurrently.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/storage.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace dbx::storage {

class MemBackend : public StorageBackend {
 public:
  /// `location` is accepted but unused ("mem:" and "mem:anything" behave
  /// alike — there is exactly one store per backend instance).
  explicit MemBackend(std::string location) : location_(std::move(location)) {}

  std::string scheme() const override { return "mem"; }
  std::string location() const override { return location_; }

  [[nodiscard]] Status Open() override;
  [[nodiscard]] Result<std::vector<std::string>> ListTables() override;
  [[nodiscard]] Result<TableSnapshot> LoadTable(
      const std::string& name) override;
  [[nodiscard]] Status StoreTable(const std::string& name,
                                  const Table& table) override;
  [[nodiscard]] Result<std::string> SnapshotId(
      const std::string& name) override;
  [[nodiscard]] Status Close() override;

 private:
  struct Stored {
    std::shared_ptr<const Table> table;
    uint64_t content_hash = 0;
  };

  [[nodiscard]] Status CheckOpenLocked() const DBX_REQUIRES(mu_);

  const std::string location_;
  mutable Mutex mu_;
  bool open_ DBX_GUARDED_BY(mu_) = false;
  std::map<std::string, Stored> tables_ DBX_GUARDED_BY(mu_);
};

/// Registers the `mem:` scheme.
void RegisterMemBackend(StorageBackendFactory* factory);

}  // namespace dbx::storage
