// Copyright (c) DBExplorer reproduction authors.
// Pluggable storage subsystem (DESIGN.md §15): a `StorageBackend` interface
// behind a URI-scheme-keyed factory. Tables enter the exploration stack as
// backend-owned immutable snapshots — a shared_ptr<const Table> plus a
// content-addressed snapshot id — so the engines, sessions, and the server
// dispatcher never care where a table physically lives, and the ViewCache
// keys dataset identity off content: reopening an unchanged table reuses
// every cached CAD View.
//
// Built-in schemes (registered on first factory access):
//   mem:                 — volatile in-process store (the pre-storage engine)
//   dbxc:<directory>     — on-disk columnar files, one <table>.dbxc each
//                          (mmap-able; see dbxc_format.h)
//   sqlite:<file>        — ingest adapter over a SQLite database (compiled
//                          when SQLite3 is available, otherwise the scheme
//                          resolves to a clean NotSupported)

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/relation/table.h"
#include "src/util/mutex.h"
#include "src/util/result.h"
#include "src/util/thread_annotations.h"

namespace dbx::storage {

/// An immutable table owned by (or copied out of) a backend. `snapshot_id`
/// is "<name>@<16-hex content hash>" (see SnapshotIdFor) — two snapshots
/// with equal ids hold logically identical content, whatever backend or
/// process produced them, which is exactly the ViewCache's dataset-identity
/// contract.
struct TableSnapshot {
  std::string name;
  std::shared_ptr<const Table> table;
  std::string snapshot_id;
};

/// Deterministic FNV-1a (64-bit) hash of a table's logical content: schema
/// (names, types, queriability) and every cell in row order. Categorical
/// cells hash their string values, not their dictionary codes, so the hash
/// is invariant under dictionary permutation; numeric NaNs are canonicalized
/// so every null spelling hashes alike.
uint64_t TableContentHash(const Table& table);

/// "<name>@<16 lowercase hex digits of hash>".
std::string SnapshotIdFor(const std::string& name, uint64_t content_hash);

/// Deep-copies `table` (schema and all cells, in row order). The copy
/// re-interns categorical values, which reproduces the original dictionary
/// order because dictionaries are always built in first-appearance order.
[[nodiscard]] Result<std::shared_ptr<Table>> CopyTable(const Table& table);

/// Table names acceptable to every backend: nonempty, at most 128 bytes of
/// [A-Za-z0-9_-] — no separators, so a name can never escape a backend's
/// directory.
bool IsValidTableName(const std::string& name);

/// Where tables live. Implementations are single-open: construct via the
/// factory, Open() once, use, Close() once (the destructor closes too).
/// Thread-compat: callers serialize access to one backend instance; the
/// snapshots it returns are immutable and freely shared across threads.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// The factory scheme this backend was created under ("mem", "dbxc", ...).
  virtual std::string scheme() const = 0;

  /// The location operand of the URI ("" for mem:).
  virtual std::string location() const = 0;

  /// Acquires the underlying resource (creates the directory, opens the
  /// database file, ...). Must be called before any other operation.
  [[nodiscard]] virtual Status Open() = 0;

  /// Names of every stored table, ascending.
  [[nodiscard]] virtual Result<std::vector<std::string>> ListTables() = 0;

  /// Loads `name` as an immutable snapshot. NotFound for unknown tables.
  [[nodiscard]] virtual Result<TableSnapshot> LoadTable(
      const std::string& name) = 0;

  /// Persists `table` under `name`, replacing any previous version.
  [[nodiscard]] virtual Status StoreTable(const std::string& name,
                                          const Table& table) = 0;

  /// The snapshot id `LoadTable(name)` would return, without materializing
  /// the table (file-backed implementations read only the header).
  [[nodiscard]] virtual Result<std::string> SnapshotId(
      const std::string& name) = 0;

  /// Releases the underlying resource. Idempotent.
  [[nodiscard]] virtual Status Close() = 0;
};

/// Registry of backend constructors keyed by URI scheme. The global instance
/// self-registers the built-in schemes on first access; additional schemes
/// (tests, experiments) can Register at any time.
class StorageBackendFactory {
 public:
  /// Receives the URI's location operand (everything after the first ':').
  using Creator = std::function<Result<std::unique_ptr<StorageBackend>>(
      const std::string& location)>;

  /// The process-wide factory with the built-in schemes registered.
  static StorageBackendFactory& Global();

  /// Registers (or replaces) the creator for `scheme`.
  void Register(const std::string& scheme, Creator creator);

  /// Parses "<scheme>:<location>" and constructs the backend (not yet
  /// opened). InvalidArgument for a malformed URI, NotFound for an
  /// unregistered scheme.
  [[nodiscard]] Result<std::unique_ptr<StorageBackend>> Create(
      const std::string& uri) const;

  /// Registered schemes, ascending.
  std::vector<std::string> Schemes() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, Creator> creators_ DBX_GUARDED_BY(mu_);
};

/// Splits "<scheme>:<location>". The scheme is lowercased; InvalidArgument
/// when there is no ':' or the scheme is empty.
[[nodiscard]] Result<std::pair<std::string, std::string>> ParseStorageUri(
    const std::string& uri);

/// Create + Open through the global factory — the one-call path the server
/// binary and the benches use.
[[nodiscard]] Result<std::unique_ptr<StorageBackend>> OpenStorageBackend(
    const std::string& uri);

}  // namespace dbx::storage
