#include "src/storage/dbxc_format.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>

#include "src/stats/histogram.h"
#include "src/storage/storage.h"

namespace dbx::storage {
namespace {

constexpr char kMagic[4] = {'D', 'B', 'X', 'C'};
// Sanity caps against corrupted headers allocating absurd buffers.
constexpr uint64_t kMaxRows = 1ULL << 40;
constexpr uint32_t kMaxCols = 1u << 16;
constexpr uint32_t kMaxNameLen = 1u << 20;
constexpr uint32_t kMaxHeaderLen = 1u << 26;
constexpr uint32_t kMaxStringLen = 1u << 24;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = kFnvOffset;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}
void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

uint32_t ReadU32At(std::string_view bytes, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + i]))
         << (8 * i);
  }
  return v;
}
uint64_t ReadU64At(std::string_view bytes, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[pos + i]))
         << (8 * i);
  }
  return v;
}

/// Bounds-checked cursor over the header section.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] Status ReadU32(uint32_t* v) {
    DBX_RETURN_IF_ERROR(Need(4));
    *v = ReadU32At(bytes_, pos_);
    pos_ += 4;
    return Status::OK();
  }
  [[nodiscard]] Status ReadU64(uint64_t* v) {
    DBX_RETURN_IF_ERROR(Need(8));
    *v = ReadU64At(bytes_, pos_);
    pos_ += 8;
    return Status::OK();
  }
  [[nodiscard]] Status ReadByte(uint8_t* b) {
    DBX_RETURN_IF_ERROR(Need(1));
    *b = static_cast<uint8_t>(bytes_[pos_++]);
    return Status::OK();
  }
  [[nodiscard]] Status ReadString(std::string* s, uint32_t max_len) {
    uint32_t len = 0;
    DBX_RETURN_IF_ERROR(ReadU32(&len));
    if (len > max_len) return Status::Corruption("DBXC string too long");
    DBX_RETURN_IF_ERROR(Need(len));
    s->assign(bytes_.substr(pos_, len));
    pos_ += len;
    return Status::OK();
  }
  size_t remaining() const { return bytes_.size() - pos_; }
  std::string_view rest() const { return bytes_.substr(pos_); }

 private:
  [[nodiscard]] Status Need(size_t n) const {
    if (pos_ + n > bytes_.size()) {
      return Status::Corruption("truncated DBXC header");
    }
    return Status::OK();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Bits needed for the largest packed symbol (dict_size itself, since null
/// packs as 0 and code c packs as c+1). At least 1 so a page always exists.
uint8_t BitWidthFor(uint32_t dict_size) {
  uint8_t w = static_cast<uint8_t>(std::bit_width(uint64_t{dict_size}));
  return w == 0 ? uint8_t{1} : w;
}

uint64_t PackedBytes(uint64_t num_rows, uint8_t width) {
  uint64_t words = (num_rows * width + 63) / 64;
  return words * 8;
}

uint64_t SymbolMask(uint8_t width) {
  return width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
}

std::string PackCodes(const std::vector<int32_t>& codes, uint8_t width) {
  uint64_t words = (static_cast<uint64_t>(codes.size()) * width + 63) / 64;
  std::vector<uint64_t> buf(words, 0);
  uint64_t bit = 0;
  for (int32_t code : codes) {
    uint64_t sym =
        code == kNullCode ? 0 : static_cast<uint64_t>(code) + 1;
    const uint64_t w = bit >> 6, off = bit & 63;
    buf[w] |= sym << off;
    if (off + width > 64) buf[w + 1] |= sym >> (64 - off);
    bit += width;
  }
  std::string out;
  out.reserve(words * 8);
  for (uint64_t word : buf) PutU64(&out, word);
  return out;
}

}  // namespace

std::string DbxcSerialize(const Table& table) {
  // Data section first: it fixes every column's offsets.
  std::string data;
  struct ColLayout {
    uint64_t dict_off = 0, dict_len = 0;
    uint64_t codes_off = 0, codes_len = 0;
    uint64_t values_off = 0, values_len = 0;
    uint8_t bit_width = 0;
  };
  std::vector<ColLayout> layout(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const Column& col = table.col(c);
    ColLayout& l = layout[c];
    if (col.type() == AttrType::kCategorical) {
      l.dict_off = data.size();
      for (size_t d = 0; d < col.DictSize(); ++d) {
        PutString(&data, col.DictString(static_cast<int32_t>(d)));
      }
      PadTo8(&data);
      l.dict_len = data.size() - l.dict_off;
      l.bit_width = BitWidthFor(static_cast<uint32_t>(col.DictSize()));
      l.codes_off = data.size();
      data += PackCodes(col.codes(), l.bit_width);
      l.codes_len = data.size() - l.codes_off;
    } else {
      l.values_off = data.size();
      for (size_t r = 0; r < table.num_rows(); ++r) {
        double d = col.NumberAt(r);
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(&data, bits);
      }
      l.values_len = data.size() - l.values_off;
    }
  }

  std::string header;
  PutU64(&header, TableContentHash(table));
  PutU64(&header, table.num_rows());
  PutU64(&header, data.size());
  PutU64(&header, Fnv1a(data));
  PutU32(&header, static_cast<uint32_t>(table.num_cols()));
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const AttributeDef& a = table.schema().attr(c);
    const ColLayout& l = layout[c];
    PutString(&header, a.name);
    header.push_back(a.type == AttrType::kCategorical ? 0 : 1);
    header.push_back(a.queriable ? 1 : 0);
    if (a.type == AttrType::kCategorical) {
      PutU32(&header, static_cast<uint32_t>(table.col(c).DictSize()));
      header.push_back(static_cast<char>(l.bit_width));
      PutU64(&header, l.dict_off);
      PutU64(&header, l.dict_len);
      PutU64(&header, l.codes_off);
      PutU64(&header, l.codes_len);
    } else {
      PutU64(&header, l.values_off);
      PutU64(&header, l.values_len);
    }
  }
  // Pad so the data section lands 8-aligned: the preamble is 20 bytes, so
  // header_len must be ≡ 4 (mod 8).
  while (header.size() % 8 != 4) header.push_back('\0');

  std::string out;
  out.append(kMagic, 4);
  PutU32(&out, kDbxcVersion);
  PutU32(&out, static_cast<uint32_t>(header.size()));
  PutU64(&out, Fnv1a(header));
  out += header;
  out += data;
  return out;
}

Result<DbxcHeader> ParseDbxcHeader(std::string_view file_bytes) {
  if (file_bytes.size() < kDbxcPreambleBytes) {
    return Status::Corruption("truncated DBXC preamble");
  }
  if (std::memcmp(file_bytes.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad DBXC magic");
  }
  DbxcHeader h;
  h.version = ReadU32At(file_bytes, 4);
  if (h.version == 0) return Status::Corruption("bad DBXC version 0");
  if (h.version > kDbxcVersion) {
    return Status::NotSupported(
        "DBXC version " + std::to_string(h.version) +
        " is newer than this build understands (max " +
        std::to_string(kDbxcVersion) + ")");
  }
  const uint32_t header_len = ReadU32At(file_bytes, 8);
  if (header_len > kMaxHeaderLen) {
    return Status::Corruption("DBXC header length implausible");
  }
  if (file_bytes.size() < kDbxcPreambleBytes + header_len) {
    return Status::Corruption("truncated DBXC header");
  }
  const uint64_t header_checksum = ReadU64At(file_bytes, 12);
  std::string_view header_section =
      file_bytes.substr(kDbxcPreambleBytes, header_len);
  if (Fnv1a(header_section) != header_checksum) {
    return Status::Corruption("DBXC header checksum mismatch");
  }

  Cursor cur(header_section);
  DBX_RETURN_IF_ERROR(cur.ReadU64(&h.content_hash));
  DBX_RETURN_IF_ERROR(cur.ReadU64(&h.num_rows));
  if (h.num_rows > kMaxRows) {
    return Status::Corruption("DBXC row count implausible");
  }
  DBX_RETURN_IF_ERROR(cur.ReadU64(&h.data_len));
  DBX_RETURN_IF_ERROR(cur.ReadU64(&h.data_checksum));
  uint32_t num_cols = 0;
  DBX_RETURN_IF_ERROR(cur.ReadU32(&num_cols));
  if (num_cols > kMaxCols) {
    return Status::Corruption("DBXC column count implausible");
  }
  if (file_bytes.size() != kDbxcPreambleBytes + header_len + h.data_len) {
    return Status::Corruption(
        "DBXC file size disagrees with the declared sections");
  }

  h.cols.reserve(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    DbxcColumnMeta m;
    DBX_RETURN_IF_ERROR(cur.ReadString(&m.name, kMaxNameLen));
    uint8_t type = 0, queriable = 0;
    DBX_RETURN_IF_ERROR(cur.ReadByte(&type));
    DBX_RETURN_IF_ERROR(cur.ReadByte(&queriable));
    if (type > 1) return Status::Corruption("bad DBXC column type");
    m.type = type == 0 ? AttrType::kCategorical : AttrType::kNumeric;
    m.queriable = queriable != 0;
    if (m.type == AttrType::kCategorical) {
      DBX_RETURN_IF_ERROR(cur.ReadU32(&m.dict_size));
      if (static_cast<uint64_t>(m.dict_size) > h.num_rows) {
        return Status::Corruption(
            "DBXC dictionary larger than the row count");
      }
      uint8_t width = 0;
      DBX_RETURN_IF_ERROR(cur.ReadByte(&width));
      m.bit_width = width;
      if (m.bit_width != BitWidthFor(m.dict_size)) {
        return Status::Corruption("DBXC bit width disagrees with dictionary");
      }
      DBX_RETURN_IF_ERROR(cur.ReadU64(&m.dict_off));
      DBX_RETURN_IF_ERROR(cur.ReadU64(&m.dict_len));
      DBX_RETURN_IF_ERROR(cur.ReadU64(&m.codes_off));
      DBX_RETURN_IF_ERROR(cur.ReadU64(&m.codes_len));
      if (m.codes_len != PackedBytes(h.num_rows, m.bit_width)) {
        return Status::Corruption("DBXC code page size disagrees with rows");
      }
    } else {
      DBX_RETURN_IF_ERROR(cur.ReadU64(&m.values_off));
      DBX_RETURN_IF_ERROR(cur.ReadU64(&m.values_len));
      if (m.values_len != h.num_rows * 8) {
        return Status::Corruption("DBXC value page size disagrees with rows");
      }
    }
    // Page bounds: inside the data section, 8-aligned.
    for (auto [off, len] : {std::pair{m.dict_off, m.dict_len},
                            std::pair{m.codes_off, m.codes_len},
                            std::pair{m.values_off, m.values_len}}) {
      if (off % 8 != 0) return Status::Corruption("DBXC page misaligned");
      if (off > h.data_len || len > h.data_len - off) {
        return Status::Corruption("DBXC page outside the data section");
      }
    }
    h.cols.push_back(std::move(m));
  }
  // Whatever follows the last column must be alignment padding (zeros).
  if (cur.remaining() >= 8) {
    return Status::Corruption("trailing bytes after DBXC column metadata");
  }
  for (char c : cur.rest()) {
    if (c != '\0') {
      return Status::Corruption("nonzero DBXC header padding");
    }
  }
  return h;
}

Status ValidateDbxc(std::string_view file_bytes) {
  auto header = ParseDbxcHeader(file_bytes);
  if (!header.ok()) return header.status();
  std::string_view data =
      file_bytes.substr(file_bytes.size() - header->data_len);
  if (Fnv1a(data) != header->data_checksum) {
    return Status::Corruption("DBXC data checksum mismatch");
  }
  return Status::OK();
}

Result<DbxcTableFile> DbxcTableFile::Open(const std::string& path,
                                          const DbxcOpenOptions& options) {
  auto mmap = MmapFile::Open(path);
  if (!mmap.ok()) return mmap.status();
  DbxcTableFile file;
  file.mmap_ = std::move(*mmap);
  file.bytes_ = file.mmap_.bytes();
  DBX_RETURN_IF_ERROR(file.Init(options));
  return file;
}

Result<DbxcTableFile> DbxcTableFile::FromBytes(
    std::string bytes, const DbxcOpenOptions& options) {
  DbxcTableFile file;
  file.owned_ = std::move(bytes);
  file.bytes_ = file.owned_;
  DBX_RETURN_IF_ERROR(file.Init(options));
  return file;
}

Status DbxcTableFile::Init(const DbxcOpenOptions& options) {
  auto header = ParseDbxcHeader(bytes_);
  if (!header.ok()) return header.status();
  header_ = std::move(*header);
  if (options.verify_data_checksum) {
    std::string_view data = bytes_.substr(bytes_.size() - header_.data_len);
    if (Fnv1a(data) != header_.data_checksum) {
      return Status::Corruption("DBXC data checksum mismatch");
    }
  }
  std::vector<AttributeDef> attrs;
  attrs.reserve(header_.cols.size());
  for (const DbxcColumnMeta& m : header_.cols) {
    attrs.push_back({m.name, m.type, m.queriable});
  }
  auto schema = Schema::Make(std::move(attrs));
  if (!schema.ok()) {
    return Status::Corruption("bad DBXC schema: " + schema.status().message());
  }
  schema_ = std::move(*schema);
  return Status::OK();
}

std::string_view DbxcTableFile::data_section() const {
  return bytes_.substr(bytes_.size() - header_.data_len);
}

Result<std::vector<std::string>> DbxcTableFile::DictStrings(size_t c) const {
  const DbxcColumnMeta& m = header_.cols[c];
  if (m.type != AttrType::kCategorical) {
    return Status::InvalidArgument("column " + m.name + " is not categorical");
  }
  std::string_view block =
      data_section().substr(m.dict_off, m.dict_len);
  std::vector<std::string> dict;
  dict.reserve(m.dict_size);
  size_t pos = 0;
  for (uint32_t d = 0; d < m.dict_size; ++d) {
    if (pos + 4 > block.size()) {
      return Status::Corruption("truncated DBXC dictionary block");
    }
    uint32_t len = ReadU32At(block, pos);
    pos += 4;
    if (len > kMaxStringLen || pos + len > block.size()) {
      return Status::Corruption("DBXC dictionary entry out of bounds");
    }
    dict.emplace_back(block.substr(pos, len));
    pos += len;
  }
  // The remainder must be alignment padding.
  if (block.size() - pos >= 8) {
    return Status::Corruption("oversized DBXC dictionary padding");
  }
  return dict;
}

Status DbxcTableFile::DecodeCodes(size_t c, std::vector<int32_t>* out) const {
  const DbxcColumnMeta& m = header_.cols[c];
  if (m.type != AttrType::kCategorical) {
    return Status::InvalidArgument("column " + m.name + " is not categorical");
  }
  std::string_view page = data_section().substr(m.codes_off, m.codes_len);
  const size_t rows = num_rows();
  const uint8_t width = m.bit_width;
  const uint64_t mask = SymbolMask(width);
  out->clear();
  out->resize(rows);
  uint64_t bit = 0;
  for (size_t r = 0; r < rows; ++r, bit += width) {
    const uint64_t w = bit >> 6, off = bit & 63;
    uint64_t v = ReadU64At(page, w * 8) >> off;
    if (off + width > 64) {
      v |= ReadU64At(page, (w + 1) * 8) << (64 - off);
    }
    v &= mask;
    if (v > m.dict_size) {
      return Status::Corruption("DBXC packed symbol out of dictionary range");
    }
    (*out)[r] = v == 0 ? kNullCode : static_cast<int32_t>(v - 1);
  }
  return Status::OK();
}

Status DbxcTableFile::CopyNumbers(size_t c, std::vector<double>* out) const {
  const DbxcColumnMeta& m = header_.cols[c];
  if (m.type != AttrType::kNumeric) {
    return Status::InvalidArgument("column " + m.name + " is not numeric");
  }
  std::string_view page = data_section().substr(m.values_off, m.values_len);
  const size_t rows = num_rows();
  out->clear();
  out->resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    uint64_t bits = ReadU64At(page, r * 8);
    std::memcpy(&(*out)[r], &bits, sizeof(double));
  }
  return Status::OK();
}

Result<std::shared_ptr<Table>> DbxcTableFile::Materialize() const {
  auto table = std::make_shared<Table>(schema_);
  const size_t rows = num_rows();
  const size_t cols = num_cols();
  // Decode every column once, then append row-wise through the public API
  // (re-interning reproduces the stored dictionary order, because DBXC
  // dictionaries are written in first-appearance order).
  std::vector<std::vector<int32_t>> codes(cols);
  std::vector<std::vector<std::string>> dicts(cols);
  std::vector<std::vector<double>> nums(cols);
  for (size_t c = 0; c < cols; ++c) {
    if (header_.cols[c].type == AttrType::kCategorical) {
      DBX_RETURN_IF_ERROR(DecodeCodes(c, &codes[c]));
      auto dict = DictStrings(c);
      if (!dict.ok()) return dict.status();
      dicts[c] = std::move(*dict);
    } else {
      DBX_RETURN_IF_ERROR(CopyNumbers(c, &nums[c]));
    }
  }
  std::vector<Value> row(cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (header_.cols[c].type == AttrType::kCategorical) {
        int32_t code = codes[c][r];
        row[c] = code == kNullCode ? Value::Null()
                                   : Value(dicts[c][static_cast<size_t>(code)]);
      } else {
        double d = nums[c][r];
        row[c] = std::isnan(d) ? Value::Null() : Value(d);
      }
    }
    DBX_RETURN_IF_ERROR(table->AppendRow(row));
  }
  return table;
}

Result<DiscretizedTable> DbxcTableFile::Discretize(
    const DiscretizerOptions& options) const {
  if (options.max_numeric_bins == 0) {
    return Status::InvalidArgument("max_numeric_bins must be >= 1");
  }
  const size_t rows = num_rows();
  RowSet all(rows);
  std::iota(all.begin(), all.end(), 0u);

  std::vector<DiscreteAttr> attrs;
  attrs.reserve(num_cols());
  for (size_t c = 0; c < num_cols(); ++c) {
    const DbxcColumnMeta& m = header_.cols[c];
    DiscreteAttr da;
    da.name = m.name;
    da.original_type = m.type;
    da.queriable = m.queriable;
    da.codes.resize(rows, -1);
    if (m.type == AttrType::kCategorical) {
      // Same re-compaction as DiscretizedTable::Build: labels appear in
      // first-appearance order over the (full) slice. The stored codes come
      // straight off the packed page; the strings are only touched once per
      // distinct value, never per row.
      std::vector<int32_t> stored;
      DBX_RETURN_IF_ERROR(DecodeCodes(c, &stored));
      auto dict = DictStrings(c);
      if (!dict.ok()) return dict.status();
      std::vector<int32_t> remap(m.dict_size, -1);
      for (size_t r = 0; r < rows; ++r) {
        int32_t code = stored[r];
        if (code == kNullCode) continue;
        if (remap[static_cast<size_t>(code)] == -1) {
          remap[static_cast<size_t>(code)] =
              static_cast<int32_t>(da.labels.size());
          da.labels.push_back((*dict)[static_cast<size_t>(code)]);
        }
        da.codes[r] = remap[static_cast<size_t>(code)];
      }
    } else {
      std::vector<double> values;
      DBX_RETURN_IF_ERROR(CopyNumbers(c, &values));
      std::vector<double> vals;
      vals.reserve(rows);
      for (double d : values) {
        if (!std::isnan(d)) vals.push_back(d);
      }
      if (!vals.empty()) {
        auto bins = BuildBins(vals, options.max_numeric_bins, options.strategy);
        if (!bins.ok()) return bins.status();
        da.bins = std::move(*bins);
        da.labels.reserve(da.bins.num_bins());
        for (size_t b = 0; b < da.bins.num_bins(); ++b) {
          da.labels.push_back(da.bins.LabelOf(b));
        }
        for (size_t r = 0; r < rows; ++r) {
          if (!std::isnan(values[r])) da.codes[r] = da.bins.BinOf(values[r]);
        }
      }
    }
    attrs.push_back(std::move(da));
  }
  return DiscretizedTable::FromParts(std::move(attrs), std::move(all));
}

Status WriteDbxcFile(const Table& table, const std::string& path) {
  const std::string bytes = DbxcSerialize(table);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return Status::NotFound("cannot open for write: " + tmp);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!f) return Status::Internal("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

}  // namespace dbx::storage
