#include "src/storage/dbxc_backend.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

namespace dbx::storage {
namespace {

constexpr std::string_view kSuffix = ".dbxc";

}  // namespace

DbxcBackend::DbxcBackend(std::string location)
    : location_(std::move(location)) {}

Status DbxcBackend::Open() {
  if (location_.empty()) {
    return Status::InvalidArgument("dbxc: needs a directory location");
  }
  std::error_code ec;
  std::filesystem::create_directories(location_, ec);
  if (ec) {
    return Status::Internal("dbxc: cannot create directory '" + location_ +
                            "': " + ec.message());
  }
  open_ = true;
  return Status::OK();
}

Status DbxcBackend::CheckOpen() const {
  if (!open_) return Status::FailedPrecondition("dbxc: backend is not open");
  return Status::OK();
}

std::string DbxcBackend::PathFor(const std::string& name) const {
  return location_ + "/" + name + std::string(kSuffix);
}

Result<std::vector<std::string>> DbxcBackend::ListTables() {
  DBX_RETURN_IF_ERROR(CheckOpen());
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(location_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string fname = entry.path().filename().string();
    if (fname.size() <= kSuffix.size() ||
        fname.substr(fname.size() - kSuffix.size()) != kSuffix) {
      continue;
    }
    std::string name = fname.substr(0, fname.size() - kSuffix.size());
    if (IsValidTableName(name)) out.push_back(std::move(name));
  }
  if (ec) {
    return Status::Internal("dbxc: cannot list '" + location_ +
                            "': " + ec.message());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<DbxcTableFile> DbxcBackend::OpenTableFile(
    const std::string& name, const DbxcOpenOptions& options) {
  DBX_RETURN_IF_ERROR(CheckOpen());
  if (!IsValidTableName(name)) {
    return Status::InvalidArgument("invalid table name '" + name + "'");
  }
  return DbxcTableFile::Open(PathFor(name), options);
}

Result<TableSnapshot> DbxcBackend::LoadTable(const std::string& name) {
  auto file = OpenTableFile(name);
  if (!file.ok()) return file.status();
  auto table = file->Materialize();
  if (!table.ok()) return table.status();
  TableSnapshot snap;
  snap.name = name;
  snap.table = std::move(*table);
  snap.snapshot_id = SnapshotIdFor(name, file->content_hash());
  return snap;
}

Status DbxcBackend::StoreTable(const std::string& name, const Table& table) {
  DBX_RETURN_IF_ERROR(CheckOpen());
  if (!IsValidTableName(name)) {
    return Status::InvalidArgument("invalid table name '" + name + "'");
  }
  return WriteDbxcFile(table, PathFor(name));
}

Result<std::string> DbxcBackend::SnapshotId(const std::string& name) {
  // Header-only open: skip the data-checksum pass.
  auto file = OpenTableFile(name, DbxcOpenOptions{.verify_data_checksum = false});
  if (!file.ok()) return file.status();
  return SnapshotIdFor(name, file->content_hash());
}

Status DbxcBackend::Close() {
  open_ = false;
  return Status::OK();
}

void RegisterDbxcBackend(StorageBackendFactory* factory) {
  factory->Register("dbxc",
                    [](const std::string& location)
                        -> Result<std::unique_ptr<StorageBackend>> {
                      if (location.empty()) {
                        return Status::InvalidArgument(
                            "dbxc: needs a directory location, e.g. "
                            "dbxc:/var/tables");
                      }
                      return std::unique_ptr<StorageBackend>(
                          new DbxcBackend(location));
                    });
}

}  // namespace dbx::storage
