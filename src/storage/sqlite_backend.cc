#include "src/storage/sqlite_backend.h"

#if defined(DBX_HAVE_SQLITE)

#include <sqlite3.h>

#include <cmath>
#include <map>
#include <utility>

namespace dbx::storage {
namespace {

constexpr char kMetaTable[] = "dbx_storage_meta";

/// "name" -> "\"name\"" with embedded quotes doubled.
std::string QuoteIdent(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

/// RAII sqlite3_stmt.
class Stmt {
 public:
  Stmt() = default;
  ~Stmt() { Reset(); }
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] Status Prepare(sqlite3* db, const std::string& sql) {
    Reset();
    if (sqlite3_prepare_v2(db, sql.c_str(), -1, &stmt_, nullptr) !=
        SQLITE_OK) {
      return Status::Internal("sqlite: prepare failed: " +
                              std::string(sqlite3_errmsg(db)));
    }
    return Status::OK();
  }
  sqlite3_stmt* get() const { return stmt_; }
  void Reset() {
    if (stmt_ != nullptr) {
      sqlite3_finalize(stmt_);
      stmt_ = nullptr;
    }
  }

 private:
  sqlite3_stmt* stmt_ = nullptr;
};

class SqliteBackend : public StorageBackend {
 public:
  explicit SqliteBackend(std::string location)
      : location_(std::move(location)) {}
  ~SqliteBackend() override {
    if (db_ != nullptr) sqlite3_close(db_);
  }

  std::string scheme() const override { return "sqlite"; }
  std::string location() const override { return location_; }

  [[nodiscard]] Status Open() override {
    if (db_ != nullptr) return Status::OK();
    if (location_.empty()) {
      return Status::InvalidArgument("sqlite: needs a database file location");
    }
    if (sqlite3_open_v2(location_.c_str(), &db_,
                        SQLITE_OPEN_READWRITE | SQLITE_OPEN_CREATE,
                        nullptr) != SQLITE_OK) {
      Status out = Status::NotFound(
          "sqlite: cannot open '" + location_ + "': " +
          (db_ != nullptr ? sqlite3_errmsg(db_) : "out of memory"));
      if (db_ != nullptr) sqlite3_close(db_);
      db_ = nullptr;
      return out;
    }
    return Status::OK();
  }

  [[nodiscard]] Result<std::vector<std::string>> ListTables() override {
    DBX_RETURN_IF_ERROR(CheckOpen());
    Stmt stmt;
    DBX_RETURN_IF_ERROR(stmt.Prepare(
        db_,
        "SELECT name FROM sqlite_master WHERE type='table' "
        "AND name NOT LIKE 'sqlite_%' ORDER BY name"));
    std::vector<std::string> out;
    int rc;
    while ((rc = sqlite3_step(stmt.get())) == SQLITE_ROW) {
      const unsigned char* text = sqlite3_column_text(stmt.get(), 0);
      std::string name = text != nullptr
                             ? reinterpret_cast<const char*>(text)
                             : "";
      if (name != kMetaTable && IsValidTableName(name)) {
        out.push_back(std::move(name));
      }
    }
    if (rc != SQLITE_DONE) return StepError();
    return out;
  }

  [[nodiscard]] Result<TableSnapshot> LoadTable(
      const std::string& name) override {
    auto table = ReadTable(name);
    if (!table.ok()) return table.status();
    TableSnapshot snap;
    snap.name = name;
    snap.snapshot_id = SnapshotIdFor(name, TableContentHash(**table));
    snap.table = std::move(*table);
    return snap;
  }

  [[nodiscard]] Status StoreTable(const std::string& name,
                                  const Table& table) override {
    DBX_RETURN_IF_ERROR(CheckOpen());
    if (!IsValidTableName(name)) {
      return Status::InvalidArgument("invalid table name '" + name + "'");
    }
    DBX_RETURN_IF_ERROR(Exec("BEGIN IMMEDIATE"));
    Status body = StoreTableLocked(name, table);
    if (!body.ok()) {
      (void)Exec("ROLLBACK");
      return body;
    }
    return Exec("COMMIT");
  }

  [[nodiscard]] Result<std::string> SnapshotId(
      const std::string& name) override {
    // SQLite has no cheap content fingerprint: hashing requires the scan
    // LoadTable does anyway.
    auto snap = LoadTable(name);
    if (!snap.ok()) return snap.status();
    return snap->snapshot_id;
  }

  [[nodiscard]] Status Close() override {
    if (db_ != nullptr) {
      sqlite3_close(db_);
      db_ = nullptr;
    }
    return Status::OK();
  }

 private:
  [[nodiscard]] Status CheckOpen() const {
    if (db_ == nullptr) {
      return Status::FailedPrecondition("sqlite: backend is not open");
    }
    return Status::OK();
  }

  Status StepError() const {
    return Status::Internal("sqlite: step failed: " +
                            std::string(sqlite3_errmsg(db_)));
  }

  [[nodiscard]] Status Exec(const std::string& sql) {
    char* err = nullptr;
    if (sqlite3_exec(db_, sql.c_str(), nullptr, nullptr, &err) != SQLITE_OK) {
      std::string msg = err != nullptr ? err : "unknown error";
      sqlite3_free(err);
      return Status::Internal("sqlite: '" + sql + "' failed: " + msg);
    }
    return Status::OK();
  }

  [[nodiscard]] Result<bool> TableExists(const std::string& name) {
    Stmt stmt;
    DBX_RETURN_IF_ERROR(stmt.Prepare(
        db_, "SELECT 1 FROM sqlite_master WHERE type='table' AND name=?1"));
    sqlite3_bind_text(stmt.get(), 1, name.c_str(), -1, SQLITE_TRANSIENT);
    int rc = sqlite3_step(stmt.get());
    if (rc == SQLITE_ROW) return true;
    if (rc == SQLITE_DONE) return false;
    return StepError();
  }

  /// Per-column metadata from the sidecar table, empty when absent.
  [[nodiscard]] Result<std::map<std::string, std::pair<AttrType, bool>>>
  ReadMeta(const std::string& name) {
    std::map<std::string, std::pair<AttrType, bool>> meta;
    auto exists = TableExists(kMetaTable);
    if (!exists.ok()) return exists.status();
    if (!*exists) return meta;
    Stmt stmt;
    DBX_RETURN_IF_ERROR(stmt.Prepare(
        db_, "SELECT col, col_type, queriable FROM " +
                 std::string(kMetaTable) + " WHERE tbl=?1"));
    sqlite3_bind_text(stmt.get(), 1, name.c_str(), -1, SQLITE_TRANSIENT);
    int rc;
    while ((rc = sqlite3_step(stmt.get())) == SQLITE_ROW) {
      const unsigned char* col = sqlite3_column_text(stmt.get(), 0);
      if (col == nullptr) continue;
      AttrType type = sqlite3_column_int(stmt.get(), 1) == 0
                          ? AttrType::kCategorical
                          : AttrType::kNumeric;
      bool queriable = sqlite3_column_int(stmt.get(), 2) != 0;
      meta[reinterpret_cast<const char*>(col)] = {type, queriable};
    }
    if (rc != SQLITE_DONE) return StepError();
    return meta;
  }

  [[nodiscard]] Result<std::shared_ptr<Table>> ReadTable(
      const std::string& name) {
    DBX_RETURN_IF_ERROR(CheckOpen());
    if (!IsValidTableName(name)) {
      return Status::InvalidArgument("invalid table name '" + name + "'");
    }
    auto exists = TableExists(name);
    if (!exists.ok()) return exists.status();
    if (!*exists) {
      return Status::NotFound("sqlite: no table named '" + name + "'");
    }
    auto meta = ReadMeta(name);
    if (!meta.ok()) return meta.status();

    // Row order must be deterministic for the content hash; rowid is the
    // insertion order for tables this backend wrote. WITHOUT ROWID tables
    // fall back to the table's natural (primary key) order.
    Stmt stmt;
    std::string select = "SELECT * FROM " + QuoteIdent(name);
    if (!stmt.Prepare(db_, select + " ORDER BY rowid").ok()) {
      DBX_RETURN_IF_ERROR(stmt.Prepare(db_, select));
    }
    const int ncols = sqlite3_column_count(stmt.get());
    std::vector<std::string> names(static_cast<size_t>(ncols));
    for (int c = 0; c < ncols; ++c) {
      const char* n = sqlite3_column_name(stmt.get(), c);
      names[static_cast<size_t>(c)] = n != nullptr ? n : "";
    }

    // Type sniff for columns the sidecar does not describe: numeric iff every
    // non-null cell is INTEGER or FLOAT (all-null columns stay categorical).
    std::vector<bool> described(static_cast<size_t>(ncols), false);
    std::vector<bool> numeric(static_cast<size_t>(ncols), false);
    std::vector<bool> queriable(static_cast<size_t>(ncols), true);
    bool need_sniff = false;
    for (int c = 0; c < ncols; ++c) {
      auto it = meta->find(names[static_cast<size_t>(c)]);
      if (it != meta->end()) {
        described[static_cast<size_t>(c)] = true;
        numeric[static_cast<size_t>(c)] =
            it->second.first == AttrType::kNumeric;
        queriable[static_cast<size_t>(c)] = it->second.second;
      } else {
        need_sniff = true;
      }
    }
    if (need_sniff) {
      std::vector<bool> saw_value(static_cast<size_t>(ncols), false);
      std::vector<bool> all_numeric(static_cast<size_t>(ncols), true);
      int rc;
      while ((rc = sqlite3_step(stmt.get())) == SQLITE_ROW) {
        for (int c = 0; c < ncols; ++c) {
          int t = sqlite3_column_type(stmt.get(), c);
          if (t == SQLITE_NULL) continue;
          saw_value[static_cast<size_t>(c)] = true;
          if (t != SQLITE_INTEGER && t != SQLITE_FLOAT) {
            all_numeric[static_cast<size_t>(c)] = false;
          }
        }
      }
      if (rc != SQLITE_DONE) return StepError();
      for (int c = 0; c < ncols; ++c) {
        auto i = static_cast<size_t>(c);
        if (!described[i]) numeric[i] = saw_value[i] && all_numeric[i];
      }
      sqlite3_reset(stmt.get());
    }

    std::vector<AttributeDef> attrs;
    attrs.reserve(static_cast<size_t>(ncols));
    for (int c = 0; c < ncols; ++c) {
      auto i = static_cast<size_t>(c);
      attrs.push_back({names[i],
                       numeric[i] ? AttrType::kNumeric : AttrType::kCategorical,
                       queriable[i]});
    }
    auto schema = Schema::Make(std::move(attrs));
    if (!schema.ok()) return schema.status();
    auto table = std::make_shared<Table>(std::move(*schema));

    std::vector<Value> row(static_cast<size_t>(ncols));
    int rc;
    while ((rc = sqlite3_step(stmt.get())) == SQLITE_ROW) {
      for (int c = 0; c < ncols; ++c) {
        auto i = static_cast<size_t>(c);
        if (sqlite3_column_type(stmt.get(), c) == SQLITE_NULL) {
          row[i] = Value::Null();
        } else if (numeric[i]) {
          row[i] = Value(sqlite3_column_double(stmt.get(), c));
        } else {
          const unsigned char* text = sqlite3_column_text(stmt.get(), c);
          row[i] = Value(std::string(
              text != nullptr ? reinterpret_cast<const char*>(text) : ""));
        }
      }
      DBX_RETURN_IF_ERROR(table->AppendRow(row));
    }
    if (rc != SQLITE_DONE) return StepError();
    return table;
  }

  [[nodiscard]] Status StoreTableLocked(const std::string& name,
                                        const Table& table) {
    DBX_RETURN_IF_ERROR(
        Exec("CREATE TABLE IF NOT EXISTS " + std::string(kMetaTable) +
             " (tbl TEXT NOT NULL, col TEXT NOT NULL, "
             "col_type INTEGER NOT NULL, queriable INTEGER NOT NULL, "
             "PRIMARY KEY (tbl, col))"));
    DBX_RETURN_IF_ERROR(Exec("DROP TABLE IF EXISTS " + QuoteIdent(name)));

    std::string create = "CREATE TABLE " + QuoteIdent(name) + " (";
    std::string insert = "INSERT INTO " + QuoteIdent(name) + " VALUES (";
    for (size_t c = 0; c < table.num_cols(); ++c) {
      const AttributeDef& a = table.schema().attr(c);
      if (c > 0) {
        create += ", ";
        insert += ", ";
      }
      create += QuoteIdent(a.name);
      create += a.type == AttrType::kCategorical ? " TEXT" : " REAL";
      insert += "?";
    }
    create += ")";
    insert += ")";
    DBX_RETURN_IF_ERROR(Exec(create));

    Stmt meta;
    DBX_RETURN_IF_ERROR(meta.Prepare(
        db_, "INSERT OR REPLACE INTO " + std::string(kMetaTable) +
                 " (tbl, col, col_type, queriable) VALUES (?1, ?2, ?3, ?4)"));
    for (size_t c = 0; c < table.num_cols(); ++c) {
      const AttributeDef& a = table.schema().attr(c);
      sqlite3_bind_text(meta.get(), 1, name.c_str(), -1, SQLITE_TRANSIENT);
      sqlite3_bind_text(meta.get(), 2, a.name.c_str(), -1, SQLITE_TRANSIENT);
      sqlite3_bind_int(meta.get(), 3, a.type == AttrType::kCategorical ? 0 : 1);
      sqlite3_bind_int(meta.get(), 4, a.queriable ? 1 : 0);
      if (sqlite3_step(meta.get()) != SQLITE_DONE) return StepError();
      sqlite3_reset(meta.get());
      sqlite3_clear_bindings(meta.get());
    }

    Stmt ins;
    DBX_RETURN_IF_ERROR(ins.Prepare(db_, insert));
    for (size_t r = 0; r < table.num_rows(); ++r) {
      for (size_t c = 0; c < table.num_cols(); ++c) {
        const Column& col = table.col(c);
        const int idx = static_cast<int>(c) + 1;
        if (col.IsNullAt(r)) {
          sqlite3_bind_null(ins.get(), idx);
        } else if (col.type() == AttrType::kCategorical) {
          const std::string& s = col.DictString(col.CodeAt(r));
          sqlite3_bind_text(ins.get(), idx, s.c_str(),
                            static_cast<int>(s.size()), SQLITE_TRANSIENT);
        } else {
          sqlite3_bind_double(ins.get(), idx, col.NumberAt(r));
        }
      }
      if (sqlite3_step(ins.get()) != SQLITE_DONE) return StepError();
      sqlite3_reset(ins.get());
      sqlite3_clear_bindings(ins.get());
    }
    return Status::OK();
  }

  std::string location_;
  sqlite3* db_ = nullptr;
};

}  // namespace

bool SqliteBackendAvailable() { return true; }

void RegisterSqliteBackend(StorageBackendFactory* factory) {
  factory->Register("sqlite",
                    [](const std::string& location)
                        -> Result<std::unique_ptr<StorageBackend>> {
                      return std::unique_ptr<StorageBackend>(
                          new SqliteBackend(location));
                    });
}

}  // namespace dbx::storage

#else  // !DBX_HAVE_SQLITE

namespace dbx::storage {

bool SqliteBackendAvailable() { return false; }

void RegisterSqliteBackend(StorageBackendFactory* factory) {
  factory->Register("sqlite",
                    [](const std::string&)
                        -> Result<std::unique_ptr<StorageBackend>> {
                      return Status::NotSupported(
                          "sqlite: backend not compiled in (build with the "
                          "SQLite3 development files present)");
                    });
}

}  // namespace dbx::storage

#endif  // DBX_HAVE_SQLITE
