#include "src/storage/mem_backend.h"

namespace dbx::storage {

Status MemBackend::Open() {
  MutexLock lock(mu_);
  open_ = true;
  return Status::OK();
}

Status MemBackend::CheckOpenLocked() const {
  if (!open_) return Status::FailedPrecondition("mem: backend is not open");
  return Status::OK();
}

Result<std::vector<std::string>> MemBackend::ListTables() {
  MutexLock lock(mu_);
  DBX_RETURN_IF_ERROR(CheckOpenLocked());
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, unused] : tables_) out.push_back(name);
  return out;
}

Result<TableSnapshot> MemBackend::LoadTable(const std::string& name) {
  MutexLock lock(mu_);
  DBX_RETURN_IF_ERROR(CheckOpenLocked());
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("mem: no table named '" + name + "'");
  }
  TableSnapshot snap;
  snap.name = name;
  snap.table = it->second.table;
  snap.snapshot_id = SnapshotIdFor(name, it->second.content_hash);
  return snap;
}

Status MemBackend::StoreTable(const std::string& name, const Table& table) {
  MutexLock lock(mu_);
  DBX_RETURN_IF_ERROR(CheckOpenLocked());
  if (!IsValidTableName(name)) {
    return Status::InvalidArgument("invalid table name '" + name + "'");
  }
  auto copy = CopyTable(table);
  if (!copy.ok()) return copy.status();
  Stored stored;
  stored.table = std::move(*copy);
  stored.content_hash = TableContentHash(*stored.table);
  tables_[name] = std::move(stored);
  return Status::OK();
}

Result<std::string> MemBackend::SnapshotId(const std::string& name) {
  MutexLock lock(mu_);
  DBX_RETURN_IF_ERROR(CheckOpenLocked());
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("mem: no table named '" + name + "'");
  }
  return SnapshotIdFor(name, it->second.content_hash);
}

Status MemBackend::Close() {
  MutexLock lock(mu_);
  open_ = false;
  tables_.clear();
  return Status::OK();
}

void RegisterMemBackend(StorageBackendFactory* factory) {
  factory->Register("mem",
                    [](const std::string& location)
                        -> Result<std::unique_ptr<StorageBackend>> {
                      return std::unique_ptr<StorageBackend>(
                          new MemBackend(location));
                    });
}

}  // namespace dbx::storage
