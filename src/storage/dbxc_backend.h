// Copyright (c) DBExplorer reproduction authors.
// The `dbxc:` storage backend: a directory of <table>.dbxc files in the
// columnar format of dbxc_format.h. StoreTable writes atomically (tmp +
// rename); LoadTable mmaps, verifies checksums, and materializes; SnapshotId
// reads only the header, so probing whether a table changed is O(header).
// OpenTableFile exposes the raw mapped file for callers that want the
// no-materialization Discretize path (bench/storage_ingest).

#pragma once

#include <string>
#include <vector>

#include "src/storage/dbxc_format.h"
#include "src/storage/storage.h"

namespace dbx::storage {

class DbxcBackend : public StorageBackend {
 public:
  /// `location` is the directory holding the .dbxc files. Open() creates it
  /// (and parents) when missing.
  explicit DbxcBackend(std::string location);

  std::string scheme() const override { return "dbxc"; }
  std::string location() const override { return location_; }

  [[nodiscard]] Status Open() override;
  [[nodiscard]] Result<std::vector<std::string>> ListTables() override;
  [[nodiscard]] Result<TableSnapshot> LoadTable(
      const std::string& name) override;
  [[nodiscard]] Status StoreTable(const std::string& name,
                                  const Table& table) override;
  [[nodiscard]] Result<std::string> SnapshotId(
      const std::string& name) override;
  [[nodiscard]] Status Close() override;

  /// The file path `name` is (or would be) stored at.
  std::string PathFor(const std::string& name) const;

  /// Mmaps `name`'s file without materializing a Table.
  [[nodiscard]] Result<DbxcTableFile> OpenTableFile(
      const std::string& name, const DbxcOpenOptions& options = {});

 private:
  [[nodiscard]] Status CheckOpen() const;

  std::string location_;
  bool open_ = false;
};

/// Registers the `dbxc:` scheme. InvalidArgument at create time for an empty
/// location (a directory is required).
void RegisterDbxcBackend(StorageBackendFactory* factory);

}  // namespace dbx::storage
