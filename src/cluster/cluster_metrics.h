// Copyright (c) DBExplorer reproduction authors.
// Cluster quality measures: used by tests (invariants) and the ablation
// benches (how IUnit quality moves with l, sampling, and attribute count).

#pragma once

#include <vector>

#include "src/cluster/kmeans.h"

namespace dbx {

/// Simplified silhouette (Hamerly-style): for each point, a = distance to own
/// centroid, b = distance to nearest other centroid; silhouette is the mean
/// of (b - a) / max(a, b). Returns 0 for k < 2.
double SimplifiedSilhouette(const EncodedMatrix& points,
                            const KMeansResult& result);

/// Sum of squared pairwise centroid distances — a dispersion measure for
/// diversity ablations.
double CentroidDispersion(const KMeansResult& result);

/// Per-cluster inertia (sum of squared point-to-centroid distances).
std::vector<double> PerClusterInertia(const EncodedMatrix& points,
                                      const KMeansResult& result);

}  // namespace dbx
