// Copyright (c) DBExplorer reproduction authors.
// k-means (Lloyd's algorithm with k-means++ seeding) — the paper's candidate
// IUnit generator (§3.1.2: "we use standard k-means ... dynamic variation of
// system parameters to achieve real-time performance").

#pragma once

#include <cstddef>
#include <vector>

#include "src/cluster/encoder.h"
#include "src/obs/trace.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace dbx {

struct KMeansOptions {
  size_t k = 8;
  size_t max_iterations = 50;
  /// Relative inertia improvement below which iteration stops early.
  double tolerance = 1e-4;
  uint64_t seed = 42;
  /// Parallelism of the assignment step (1 = serial). Assignments, partial
  /// sums, and inertia accumulate per fixed-size row chunk and reduce in
  /// chunk order, so the result is byte-identical for any thread count.
  size_t num_threads = 1;
  /// Observability knobs — output-neutral like num_threads, excluded from
  /// the cache fingerprint. Never null; defaults to the no-op tracer.
  Tracer* tracer = Tracer::Disabled();
  uint64_t trace_parent = 0;
};

struct KMeansResult {
  /// Cluster id per input point, in [0, k_effective).
  std::vector<int32_t> assignments;
  /// Row-major centroids, k_effective x dims.
  std::vector<double> centroids;
  size_t k_effective = 0;
  size_t dims = 0;
  size_t iterations = 0;
  /// Sum of squared distances of points to their centroid.
  double inertia = 0.0;

  const double* centroid(size_t c) const { return centroids.data() + c * dims; }

  /// Point count per cluster.
  std::vector<size_t> ClusterSizes() const;
};

/// Runs k-means over `points`. k is clamped to the number of points; empty
/// input fails. Deterministic for a fixed seed.
[[nodiscard]] Result<KMeansResult> RunKMeans(const EncodedMatrix& points,
                               const KMeansOptions& options);

/// Squared Euclidean distance between two dense vectors of length `dims`.
double SquaredDistance(const double* a, const double* b, size_t dims);

}  // namespace dbx
