#include "src/cluster/cluster_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dbx {

double SimplifiedSilhouette(const EncodedMatrix& points,
                            const KMeansResult& result) {
  if (result.k_effective < 2 || points.num_points == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < points.num_points; ++i) {
    size_t own = static_cast<size_t>(result.assignments[i]);
    double a = std::sqrt(SquaredDistance(points.point(i),
                                         result.centroid(own), points.dims));
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < result.k_effective; ++c) {
      if (c == own) continue;
      double d = std::sqrt(SquaredDistance(points.point(i), result.centroid(c),
                                           points.dims));
      b = std::min(b, d);
    }
    double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(points.num_points);
}

double CentroidDispersion(const KMeansResult& result) {
  double total = 0.0;
  for (size_t i = 0; i < result.k_effective; ++i) {
    for (size_t j = i + 1; j < result.k_effective; ++j) {
      total += SquaredDistance(result.centroid(i), result.centroid(j),
                               result.dims);
    }
  }
  return total;
}

std::vector<double> PerClusterInertia(const EncodedMatrix& points,
                                      const KMeansResult& result) {
  std::vector<double> inertia(result.k_effective, 0.0);
  for (size_t i = 0; i < points.num_points; ++i) {
    size_t c = static_cast<size_t>(result.assignments[i]);
    inertia[c] +=
        SquaredDistance(points.point(i), result.centroid(c), points.dims);
  }
  return inertia;
}

}  // namespace dbx
