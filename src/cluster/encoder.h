// Copyright (c) DBExplorer reproduction authors.
// One-hot encoding of discretized attributes into dense vectors for k-means
// (the Weka SimpleKMeans treatment of nominal attributes). Every attribute
// contributes one unit-norm block, so no attribute dominates the distance.

#pragma once

#include <cstddef>
#include <vector>

#include "src/stats/discretizer.h"
#include "src/util/result.h"

namespace dbx {

/// Dense row-major matrix of encoded points.
struct EncodedMatrix {
  size_t num_points = 0;
  size_t dims = 0;
  std::vector<double> data;  // num_points * dims

  const double* point(size_t i) const { return data.data() + i * dims; }
  double* point(size_t i) { return data.data() + i * dims; }
};

/// One-hot encoder over a chosen subset of a DiscretizedTable's attributes.
class OneHotEncoder {
 public:
  /// Plans the encoding for `attr_indices` of `dt`. Attributes with zero
  /// cardinality (all-null) are skipped.
  [[nodiscard]] static Result<OneHotEncoder> Plan(const DiscretizedTable& dt,
                                    const std::vector<size_t>& attr_indices);

  /// Encodes the rows of `dt` at positions `row_positions` (indices into the
  /// discretized rows, NOT base-table row ids). Null cells encode to a zero
  /// block.
  EncodedMatrix Encode(const DiscretizedTable& dt,
                       const std::vector<size_t>& row_positions) const;

  size_t dims() const { return dims_; }
  const std::vector<size_t>& attr_indices() const { return attrs_; }

  /// Column offset of attribute block `i` (parallel to attr_indices()).
  size_t BlockOffset(size_t i) const { return offsets_[i]; }

 private:
  std::vector<size_t> attrs_;    // attribute indices included
  std::vector<size_t> offsets_;  // starting dim of each attribute block
  std::vector<size_t> cards_;    // cardinality of each block
  size_t dims_ = 0;
};

}  // namespace dbx
