#include "src/cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/metrics.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace dbx {

double SquaredDistance(const double* a, const double* b, size_t dims) {
  double d = 0.0;
  for (size_t i = 0; i < dims; ++i) {
    double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

std::vector<size_t> KMeansResult::ClusterSizes() const {
  std::vector<size_t> sizes(k_effective, 0);
  for (int32_t a : assignments) {
    if (a >= 0) ++sizes[static_cast<size_t>(a)];
  }
  return sizes;
}

namespace {

// k-means++ seeding: first centroid uniform, subsequent ones proportional to
// squared distance from the nearest chosen centroid.
std::vector<size_t> KMeansPlusPlusSeeds(const EncodedMatrix& pts, size_t k,
                                        Rng* rng) {
  std::vector<size_t> seeds;
  seeds.reserve(k);
  size_t n = pts.num_points;
  seeds.push_back(static_cast<size_t>(rng->NextBounded(n)));
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  for (size_t s = 1; s < k; ++s) {
    const double* last = pts.point(seeds.back());
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = SquaredDistance(pts.point(i), last, pts.dims);
      if (d < d2[i]) d2[i] = d;
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; fall back to uniform.
      seeds.push_back(static_cast<size_t>(rng->NextBounded(n)));
      continue;
    }
    double target = rng->NextDouble() * total;
    double acc = 0.0;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      acc += d2[i];
      if (target < acc) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(chosen);
  }
  return seeds;
}

}  // namespace

Result<KMeansResult> RunKMeans(const EncodedMatrix& points,
                               const KMeansOptions& options) {
  size_t n = points.num_points;
  if (n == 0) return Status::InvalidArgument("k-means over zero points");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  size_t k = std::min(options.k, n);
  size_t dims = points.dims;

  ScopedSpan span(options.tracer, "kmeans", options.trace_parent);
  span.AddArg("points", static_cast<uint64_t>(n));
  span.AddArg("k", static_cast<uint64_t>(k));
  span.AddArg("dims", static_cast<uint64_t>(dims));
  Stopwatch timer;

  Rng rng(options.seed);
  KMeansResult res;
  res.k_effective = k;
  res.dims = dims;
  res.assignments.assign(n, -1);
  res.centroids.assign(k * dims, 0.0);

  std::vector<size_t> seeds = KMeansPlusPlusSeeds(points, k, &rng);
  for (size_t c = 0; c < k; ++c) {
    const double* src = points.point(seeds[c]);
    std::copy(src, src + dims, res.centroids.data() + c * dims);
  }

  // The assignment step accumulates into per-chunk slots and reduces them in
  // chunk order. The chunk size is a constant — NOT derived from num_threads
  // — so the floating-point summation order, and therefore every centroid
  // and assignment, is byte-identical for any thread count.
  constexpr size_t kAssignGrain = 1024;
  const size_t num_chunks = (n + kAssignGrain - 1) / kAssignGrain;
  std::vector<double> chunk_inertia(num_chunks);
  std::vector<double> chunk_sums(num_chunks * k * dims);
  std::vector<size_t> chunk_counts(num_chunks * k);

  std::vector<double> sums(k * dims);
  std::vector<size_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    res.iterations = iter + 1;
    // Assignment step: one task per row chunk, writing only its own slots.
    std::fill(chunk_inertia.begin(), chunk_inertia.end(), 0.0);
    std::fill(chunk_sums.begin(), chunk_sums.end(), 0.0);
    std::fill(chunk_counts.begin(), chunk_counts.end(), 0u);
    Status st = ParallelFor(
        options.num_threads, 0, num_chunks, 1, [&](size_t chunk) -> Status {
          size_t lo = chunk * kAssignGrain;
          size_t hi = std::min(n, lo + kAssignGrain);
          double* my_sums = chunk_sums.data() + chunk * k * dims;
          size_t* my_counts = chunk_counts.data() + chunk * k;
          double local_inertia = 0.0;
          for (size_t i = lo; i < hi; ++i) {
            const double* p = points.point(i);
            double best = std::numeric_limits<double>::infinity();
            int32_t best_c = 0;
            for (size_t c = 0; c < k; ++c) {
              double d = SquaredDistance(p, res.centroid(c), dims);
              if (d < best) {
                best = d;
                best_c = static_cast<int32_t>(c);
              }
            }
            res.assignments[i] = best_c;
            local_inertia += best;
            double* s = my_sums + static_cast<size_t>(best_c) * dims;
            for (size_t d = 0; d < dims; ++d) s[d] += p[d];
            ++my_counts[static_cast<size_t>(best_c)];
          }
          chunk_inertia[chunk] = local_inertia;
          return Status::OK();
        });
    if (!st.ok()) return st;

    // Fixed-order reduction of the per-chunk partials.
    double inertia = 0.0;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      inertia += chunk_inertia[chunk];
      const double* cs = chunk_sums.data() + chunk * k * dims;
      const size_t* cc = chunk_counts.data() + chunk * k;
      for (size_t j = 0; j < k * dims; ++j) sums[j] += cs[j];
      for (size_t c = 0; c < k; ++c) counts[c] += cc[c];
    }
    res.inertia = inertia;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the point farthest from its centroid.
        size_t far_i = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          size_t ci = static_cast<size_t>(res.assignments[i]);
          double d = SquaredDistance(points.point(i), res.centroid(ci), dims);
          if (d > far_d) {
            far_d = d;
            far_i = i;
          }
        }
        const double* src = points.point(far_i);
        std::copy(src, src + dims, res.centroids.data() + c * dims);
        continue;
      }
      double inv = 1.0 / static_cast<double>(counts[c]);
      double* dst = res.centroids.data() + c * dims;
      const double* s = sums.data() + c * dims;
      for (size_t d = 0; d < dims; ++d) dst[d] = s[d] * inv;
    }

    if (prev_inertia - inertia <= options.tolerance * std::max(prev_inertia, 1e-12)) {
      break;
    }
    prev_inertia = inertia;
  }
  span.AddArg("iterations", static_cast<uint64_t>(res.iterations));
  MetricsRegistry* reg = MetricsRegistry::Global();
  reg->GetCounter("dbx_cluster_kmeans_runs_total")->Increment();
  reg->GetCounter("dbx_cluster_kmeans_iterations_total")
      ->Increment(res.iterations);
  reg->GetHistogram("dbx_cluster_kmeans_ms")->ObserveNs(timer.ElapsedNanos());
  return res;
}

}  // namespace dbx
