// Copyright (c) DBExplorer reproduction authors.
// Mergeable uniform coresets for sharded k-means (DESIGN.md §13). A bottom-k
// sketch keeps the `budget` rows with the smallest values of a deterministic
// per-row hash — a uniform sample without replacement whose membership
// depends only on (salt, row id), never on shard boundaries or merge order.
// Per-shard sketches merged associatively therefore equal the single-pass
// sketch byte for byte, which is what lets the sharded CAD View builder run
// k-means on a bounded point set at 10M+ rows while keeping the repo's
// shard-count determinism contract intact.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace dbx {

/// Deterministic 64-bit hash of one row id under `salt` (SplitMix64
/// finalizer). Exposed so tests can verify the bottom-k selection rule.
uint64_t CoresetRowHash(uint64_t salt, uint64_t row);

/// A bottom-k sample sketch: at most `budget` (hash, row) pairs, kept sorted
/// ascending by (hash, row). Mergeable and order-insensitive.
struct CoresetSketch {
  size_t budget = 0;
  std::vector<std::pair<uint64_t, size_t>> entries;  // sorted, size <= budget
};

/// Sketches rows[begin, end) under `salt`, keeping the `budget` smallest
/// hashes (all rows when the range is smaller than the budget). budget == 0
/// yields an empty sketch.
CoresetSketch BuildCoresetSketch(const std::vector<size_t>& rows, size_t begin,
                                 size_t end, uint64_t salt, size_t budget);

/// Folds `from` into `into`, keeping the bottom `budget` entries of the
/// union. Fails when the budgets differ. Associative and commutative for
/// sketches over disjoint row sets: the result depends only on the union.
[[nodiscard]] Status MergeCoresetSketch(CoresetSketch* into,
                                        const CoresetSketch& from);

/// The sketched row ids in ascending row order — the deterministic k-means
/// input order (matching how partition member lists are consumed).
std::vector<size_t> CoresetMembers(const CoresetSketch& sketch);

}  // namespace dbx
