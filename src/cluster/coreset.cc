#include "src/cluster/coreset.h"

#include <algorithm>

namespace dbx {

uint64_t CoresetRowHash(uint64_t salt, uint64_t row) {
  // SplitMix64 finalizer over the salted row id; full 64-bit avalanche, so
  // ties in the bottom-k order are vanishingly rare (and broken by row id).
  uint64_t z = salt + 0x9E3779B97F4A7C15ULL * (row + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

CoresetSketch BuildCoresetSketch(const std::vector<size_t>& rows, size_t begin,
                                 size_t end, uint64_t salt, size_t budget) {
  CoresetSketch sketch;
  sketch.budget = budget;
  if (budget == 0) return sketch;
  end = std::min(end, rows.size());
  // Max-heap on the front: the largest kept hash is evicted first once the
  // sketch is full. std::pair ordering (hash, then row) breaks hash ties.
  auto& heap = sketch.entries;
  for (size_t i = begin; i < end; ++i) {
    std::pair<uint64_t, size_t> e{CoresetRowHash(salt, rows[i]), rows[i]};
    if (heap.size() < budget) {
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end());
    } else if (e < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = e;
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::sort(heap.begin(), heap.end());
  return sketch;
}

Status MergeCoresetSketch(CoresetSketch* into, const CoresetSketch& from) {
  if (into->budget != from.budget) {
    return Status::InvalidArgument("coreset merge budget mismatch");
  }
  std::vector<std::pair<uint64_t, size_t>> merged;
  merged.reserve(into->entries.size() + from.entries.size());
  std::merge(into->entries.begin(), into->entries.end(), from.entries.begin(),
             from.entries.end(), std::back_inserter(merged));
  if (merged.size() > into->budget) merged.resize(into->budget);
  into->entries = std::move(merged);
  return Status::OK();
}

std::vector<size_t> CoresetMembers(const CoresetSketch& sketch) {
  std::vector<size_t> rows;
  rows.reserve(sketch.entries.size());
  for (const auto& [hash, row] : sketch.entries) rows.push_back(row);
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace dbx
