#include "src/cluster/encoder.h"

namespace dbx {

Result<OneHotEncoder> OneHotEncoder::Plan(
    const DiscretizedTable& dt, const std::vector<size_t>& attr_indices) {
  OneHotEncoder enc;
  for (size_t idx : attr_indices) {
    if (idx >= dt.num_attrs()) {
      return Status::OutOfRange("encoder attribute index out of range");
    }
    size_t card = dt.attr(idx).cardinality();
    if (card == 0) continue;  // all-null attribute carries no signal
    enc.attrs_.push_back(idx);
    enc.offsets_.push_back(enc.dims_);
    enc.cards_.push_back(card);
    enc.dims_ += card;
  }
  if (enc.dims_ == 0) {
    return Status::InvalidArgument("no encodable attributes (all null/empty)");
  }
  return enc;
}

EncodedMatrix OneHotEncoder::Encode(
    const DiscretizedTable& dt, const std::vector<size_t>& row_positions) const {
  EncodedMatrix m;
  m.num_points = row_positions.size();
  m.dims = dims_;
  m.data.assign(m.num_points * m.dims, 0.0);
  for (size_t p = 0; p < row_positions.size(); ++p) {
    size_t row = row_positions[p];
    double* out = m.point(p);
    for (size_t a = 0; a < attrs_.size(); ++a) {
      int32_t code = dt.attr(attrs_[a]).codes[row];
      if (code >= 0 && static_cast<size_t>(code) < cards_[a]) {
        out[offsets_[a] + static_cast<size_t>(code)] = 1.0;
      }
    }
  }
  return m;
}

}  // namespace dbx
