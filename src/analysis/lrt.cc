#include "src/analysis/lrt.h"

#include <algorithm>

#include "src/analysis/linear_model.h"
#include "src/stats/gamma.h"

namespace dbx {

Result<LrtResult> DisplayTypeLrt(const std::vector<StudyObservation>& obs,
                                 size_t num_users) {
  if (num_users < 2) return Status::InvalidArgument("need >= 2 users");
  bool has_treated = false, has_control = false;
  for (const StudyObservation& o : obs) {
    if (o.user >= num_users) {
      return Status::OutOfRange("user id out of range");
    }
    (o.treatment ? has_treated : has_control) = true;
  }
  if (!has_treated || !has_control) {
    return Status::FailedPrecondition("need observations in both arms");
  }

  const size_t n = obs.size();
  // Full design: intercept, user dummies (users 1..U-1), treatment flag.
  const size_t p_full = 1 + (num_users - 1) + 1;
  DesignMatrix full;
  full.n = n;
  full.p = p_full;
  full.x.assign(n * p_full, 0.0);
  DesignMatrix null_m;
  null_m.n = n;
  null_m.p = p_full - 1;
  null_m.x.assign(n * (p_full - 1), 0.0);
  std::vector<double> y(n);

  for (size_t i = 0; i < n; ++i) {
    const StudyObservation& o = obs[i];
    y[i] = o.response;
    double* rf = full.row(i);
    double* rn = null_m.row(i);
    rf[0] = 1.0;
    rn[0] = 1.0;
    if (o.user > 0) {
      rf[o.user] = 1.0;
      rn[o.user] = 1.0;
    }
    rf[p_full - 1] = o.treatment ? 1.0 : 0.0;
  }

  auto fit_full = FitOls(full, y);
  if (!fit_full.ok()) return fit_full.status();
  auto fit_null = FitOls(null_m, y);
  if (!fit_null.ok()) return fit_null.status();

  LrtResult r;
  r.chi2 = std::max(
      0.0, 2.0 * (fit_full->log_likelihood - fit_null->log_likelihood));
  r.df = 1.0;
  r.p_value = ChiSquareSf(r.chi2, r.df);
  r.effect = fit_full->beta[p_full - 1];
  r.effect_se = fit_full->beta_se[p_full - 1];
  return r;
}

}  // namespace dbx
