#include "src/analysis/wilcoxon.h"

#include <algorithm>
#include <cmath>

#include "src/analysis/descriptive.h"

namespace dbx {
namespace {

// Standard normal survival function via erfc.
double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

Result<WilcoxonResult> WilcoxonSignedRank(const std::vector<double>& a,
                                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired samples must have equal length");
  }
  std::vector<double> diffs;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back(d);
  }
  if (diffs.size() < 2) {
    return Status::FailedPrecondition(
        "need at least 2 non-zero paired differences");
  }
  const size_t n = diffs.size();

  // Rank |d| ascending with midranks for ties.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return std::fabs(diffs[x]) < std::fabs(diffs[y]);
  });
  std::vector<double> ranks(n, 0.0);
  for (size_t i = 0; i < n;) {
    size_t j = i;
    while (j + 1 < n &&
           std::fabs(diffs[order[j + 1]]) == std::fabs(diffs[order[i]])) {
      ++j;
    }
    double midrank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                     1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }

  WilcoxonResult res;
  res.n = n;
  for (size_t i = 0; i < n; ++i) {
    if (diffs[i] > 0) res.w_plus += ranks[i];
  }
  {
    std::vector<double> med = diffs;
    res.median_difference = Median(std::move(med));
  }

  if (n <= 20) {
    // Exact distribution of W+ under the null: each rank joins the positive
    // side independently with probability 1/2. Work in doubled ranks so
    // midranks stay integral.
    std::vector<int> ranks2(n);
    int total2 = 0;
    for (size_t i = 0; i < n; ++i) {
      ranks2[i] = static_cast<int>(std::lround(ranks[i] * 2.0));
      total2 += ranks2[i];
    }
    std::vector<double> count(static_cast<size_t>(total2) + 1, 0.0);
    count[0] = 1.0;
    int reach = 0;
    for (size_t i = 0; i < n; ++i) {
      reach += ranks2[i];
      for (int s = reach; s >= ranks2[i]; --s) {
        count[static_cast<size_t>(s)] +=
            count[static_cast<size_t>(s - ranks2[i])];
      }
    }
    double denom = std::pow(2.0, static_cast<double>(n));
    int w2 = static_cast<int>(std::lround(res.w_plus * 2.0));
    double le = 0.0, ge = 0.0;
    for (int s = 0; s <= total2; ++s) {
      if (s <= w2) le += count[static_cast<size_t>(s)];
      if (s >= w2) ge += count[static_cast<size_t>(s)];
    }
    res.p_value = std::min(1.0, 2.0 * std::min(le, ge) / denom);
  } else {
    double nn = static_cast<double>(n);
    double mean = nn * (nn + 1.0) / 4.0;
    double var = nn * (nn + 1.0) * (2.0 * nn + 1.0) / 24.0;
    double z = (std::fabs(res.w_plus - mean) - 0.5) / std::sqrt(var);
    res.p_value = std::min(1.0, 2.0 * NormalSf(std::max(0.0, z)));
  }
  return res;
}

}  // namespace dbx
