// Copyright (c) DBExplorer reproduction authors.
// Ordinary least squares with Gaussian log-likelihood — the fitting machinery
// behind the paper's user-study statistics (§6.2: "linear mixed model
// analysis ... Display type as fixed effect and User ID as random effect",
// compared via a likelihood-ratio test). With one observation per
// user x condition cell, the random-intercept model's ML fit coincides with a
// fixed user-blocking OLS, which is what we implement.

#pragma once

#include <cstddef>
#include <vector>

#include "src/util/result.h"

namespace dbx {

/// Dense row-major design matrix.
struct DesignMatrix {
  size_t n = 0;  // observations
  size_t p = 0;  // predictors (including intercept)
  std::vector<double> x;  // n * p

  double* row(size_t i) { return x.data() + i * p; }
  const double* row(size_t i) const { return x.data() + i * p; }
};

struct OlsFit {
  std::vector<double> beta;       // p coefficients
  std::vector<double> beta_se;    // standard errors (sqrt of diag((X'X)^-1 s2))
  double rss = 0.0;               // residual sum of squares
  double sigma2_ml = 0.0;         // ML variance estimate rss / n
  double log_likelihood = 0.0;    // Gaussian ML log-likelihood
  size_t n = 0;
  size_t p = 0;
};

/// Fits y = X beta + e by least squares (normal equations with partial
/// pivoting). Fails when X'X is singular (collinear design) or dimensions
/// mismatch.
[[nodiscard]]
Result<OlsFit> FitOls(const DesignMatrix& X, const std::vector<double>& y);

/// Solves A x = b for a dense n x n system (Gaussian elimination, partial
/// pivoting). Fails on singular A. Exposed for tests.
[[nodiscard]]
Result<std::vector<double>> SolveLinearSystem(std::vector<double> a, size_t n,
                                              std::vector<double> b);

/// Inverts a dense n x n matrix. Fails on singular input. Exposed for tests.
[[nodiscard]]
Result<std::vector<double>> InvertMatrix(std::vector<double> a, size_t n);

}  // namespace dbx
