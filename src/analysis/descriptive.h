// Copyright (c) DBExplorer reproduction authors.
// Small descriptive-statistics helpers for reporting benchmark and study
// results (means, deviations, paired summaries).

#pragma once

#include <cstddef>
#include <vector>

namespace dbx {

double Mean(const std::vector<double>& v);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double SampleStdDev(const std::vector<double>& v);

double Median(std::vector<double> v);

double MinOf(const std::vector<double>& v);
double MaxOf(const std::vector<double>& v);

/// Mean of pairwise differences a[i] - b[i] (vectors must be equal length).
double MeanPairedDifference(const std::vector<double>& a,
                            const std::vector<double>& b);

}  // namespace dbx
