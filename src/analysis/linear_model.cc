#include "src/analysis/linear_model.h"

#include <cmath>

namespace dbx {

Result<std::vector<double>> SolveLinearSystem(std::vector<double> a, size_t n,
                                              std::vector<double> b) {
  if (a.size() != n * n || b.size() != n) {
    return Status::InvalidArgument("bad linear-system dimensions");
  }
  // Gaussian elimination with partial pivoting on the augmented system.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) return Status::FailedPrecondition("singular matrix");
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[pivot * n + c], a[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    double inv = 1.0 / a[col * n + col];
    for (size_t r = col + 1; r < n; ++r) {
      double f = a[r * n + col] * inv;
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= a[ri * n + c] * x[c];
    x[ri] = acc / a[ri * n + ri];
  }
  return x;
}

Result<std::vector<double>> InvertMatrix(std::vector<double> a, size_t n) {
  if (a.size() != n * n) {
    return Status::InvalidArgument("bad matrix dimensions");
  }
  std::vector<double> inv(n * n, 0.0);
  // Solve A x = e_i column by column. Re-running elimination per column is
  // O(n^4) but n here is tiny (p <= ~12 predictors).
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> e(n, 0.0);
    e[i] = 1.0;
    auto col = SolveLinearSystem(a, n, std::move(e));
    if (!col.ok()) return col.status();
    for (size_t r = 0; r < n; ++r) inv[r * n + i] = (*col)[r];
  }
  return inv;
}

Result<OlsFit> FitOls(const DesignMatrix& X, const std::vector<double>& y) {
  if (X.n == 0 || X.p == 0) return Status::InvalidArgument("empty design");
  if (y.size() != X.n) {
    return Status::InvalidArgument("y length != design rows");
  }
  if (X.n < X.p) {
    return Status::FailedPrecondition("more predictors than observations");
  }
  const size_t n = X.n, p = X.p;

  // Normal equations: (X'X) beta = X'y.
  std::vector<double> xtx(p * p, 0.0);
  std::vector<double> xty(p, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* r = X.row(i);
    for (size_t a = 0; a < p; ++a) {
      xty[a] += r[a] * y[i];
      for (size_t b = a; b < p; ++b) xtx[a * p + b] += r[a] * r[b];
    }
  }
  for (size_t a = 0; a < p; ++a) {
    for (size_t b = 0; b < a; ++b) xtx[a * p + b] = xtx[b * p + a];
  }

  auto xtx_inv = InvertMatrix(xtx, p);
  if (!xtx_inv.ok()) return xtx_inv.status();
  OlsFit fit;
  fit.n = n;
  fit.p = p;
  fit.beta.assign(p, 0.0);
  for (size_t a = 0; a < p; ++a) {
    for (size_t b = 0; b < p; ++b) {
      fit.beta[a] += (*xtx_inv)[a * p + b] * xty[b];
    }
  }

  for (size_t i = 0; i < n; ++i) {
    const double* r = X.row(i);
    double pred = 0.0;
    for (size_t a = 0; a < p; ++a) pred += r[a] * fit.beta[a];
    double resid = y[i] - pred;
    fit.rss += resid * resid;
  }
  fit.sigma2_ml = fit.rss / static_cast<double>(n);
  // Guard against a perfect fit: clamp the variance to keep the likelihood
  // finite (the LRT then saturates rather than exploding).
  double s2 = std::max(fit.sigma2_ml, 1e-12);
  fit.log_likelihood = -0.5 * static_cast<double>(n) *
                       (std::log(2.0 * M_PI * s2) + 1.0);

  double dof = static_cast<double>(n > p ? n - p : 1);
  double s2_unbiased = fit.rss / dof;
  fit.beta_se.assign(p, 0.0);
  for (size_t a = 0; a < p; ++a) {
    fit.beta_se[a] = std::sqrt(std::max(0.0, (*xtx_inv)[a * p + a] * s2_unbiased));
  }
  return fit;
}

}  // namespace dbx
