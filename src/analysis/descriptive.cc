#include "src/analysis/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dbx {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double SampleStdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t mid = v.size() / 2;
  if (v.size() % 2 == 1) return v[mid];
  return 0.5 * (v[mid - 1] + v[mid]);
}

double MinOf(const std::vector<double>& v) {
  double m = std::numeric_limits<double>::infinity();
  for (double x : v) m = std::min(m, x);
  return m;
}

double MaxOf(const std::vector<double>& v) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : v) m = std::max(m, x);
  return m;
}

double MeanPairedDifference(const std::vector<double>& a,
                            const std::vector<double>& b) {
  size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] - b[i];
  return s / static_cast<double>(n);
}

}  // namespace dbx
