// Copyright (c) DBExplorer reproduction authors.
// The paper's user-study analysis (§6.2): a likelihood-ratio test comparing
// the model with the Display-type factor against the null model without it,
// with User ID as a blocking factor — reported as chi2(1) and p, plus the
// effect size ("lowering it by about 5.44 ± 1.56 minutes").

#pragma once

#include <cstddef>
#include <vector>

#include "src/util/result.h"

namespace dbx {

/// One user-study measurement.
struct StudyObservation {
  size_t user = 0;       // 0-based user id
  bool treatment = false;  // true = TPFacet, false = baseline (Solr)
  double response = 0.0;   // time in minutes, F1, rank, or retrieval error
};

struct LrtResult {
  double chi2 = 0.0;
  double df = 1.0;
  double p_value = 1.0;
  /// Treatment coefficient (response change caused by TPFacet) and its SE —
  /// the paper's "by about X ± Y" numbers.
  double effect = 0.0;
  double effect_se = 0.0;
};

/// Fits response ~ 1 + user + treatment against response ~ 1 + user and
/// compares them with a chi-square(1) likelihood-ratio test.
/// Requires >= 2 users and both treatment arms present.
[[nodiscard]]
Result<LrtResult> DisplayTypeLrt(const std::vector<StudyObservation>& obs,
                                 size_t num_users);

}  // namespace dbx
