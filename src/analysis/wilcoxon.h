// Copyright (c) DBExplorer reproduction authors.
// Wilcoxon signed-rank test for paired samples — the nonparametric
// companion to the study's LRT. With 8 users per arm, normality is a leap;
// the signed-rank test checks the same "TPFacet shifts the response"
// hypothesis without it. Exact null distribution for small n (the study's
// regime), normal approximation beyond.

#pragma once

#include <vector>

#include "src/util/result.h"

namespace dbx {

struct WilcoxonResult {
  /// Signed-rank statistic W+ (sum of ranks of positive differences).
  double w_plus = 0.0;
  /// Number of non-zero paired differences actually ranked.
  size_t n = 0;
  /// Two-sided p-value. Exact for n <= 20, normal approximation above.
  double p_value = 1.0;
  /// Median of the paired differences (the effect's location).
  double median_difference = 0.0;
};

/// Tests whether paired differences a[i] - b[i] are symmetric about zero.
/// Zero differences are dropped (standard treatment); ties share midranks.
/// Fails when fewer than 2 non-zero differences remain.
[[nodiscard]]
Result<WilcoxonResult> WilcoxonSignedRank(const std::vector<double>& a,
                                          const std::vector<double>& b);

}  // namespace dbx
