// Copyright (c) DBExplorer reproduction authors.
// Thread-safe metrics registry: counters, gauges, and fixed-bucket histograms
// with quantile estimation, exported as Prometheus text exposition. Metric
// names follow dbx_<layer>_<name> (see DESIGN.md §10); latency histograms use
// the `_ms` suffix and record milliseconds.
//
// Instruments are created once (registry lookup under a mutex) and then
// updated lock-free via atomics, so hot paths — ParallelFor workers, cache
// probes — pay one relaxed atomic add per update.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace dbx {

/// Monotonically increasing count (events, hits, rows).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed value (entries resident, bytes in use).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Bounds are the inclusive upper edges of the finite
/// buckets; one implicit overflow bucket catches the rest. Observations are a
/// relaxed atomic add into one bucket, so concurrent recording from pool
/// workers is safe and cheap.
class Histogram {
 public:
  /// Upper bounds must be strictly ascending and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  /// Records a nanosecond duration as milliseconds — the unit every `_ms`
  /// histogram in the registry uses.
  void ObserveNs(uint64_t nanos) { Observe(static_cast<double>(nanos) / 1e6); }

  uint64_t Count() const;
  double Sum() const;

  /// Quantile estimate (q in [0,1]) by cumulative bucket walk with linear
  /// interpolation inside the containing bucket. Observations in the overflow
  /// bucket clamp to the highest finite bound. Returns 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i]; the final extra entry
  /// is the total count (the +Inf bucket).
  std::vector<uint64_t> CumulativeCounts() const;

 private:
  const std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket edges in milliseconds: sub-ms through minutes,
/// roughly 2x-spaced, matching the paper's interactive-latency regime.
const std::vector<double>& DefaultLatencyBoundsMs();

/// Named instrument store. Get* returns a stable pointer, creating the
/// instrument on first use; instruments are never removed. A process-wide
/// instance lives behind Global(); tests use local registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry* Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first creation; later calls return the existing
  /// histogram regardless of bounds.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds =
                              DefaultLatencyBoundsMs());

  /// Prometheus text exposition (# TYPE lines, _bucket{le=...}, _sum,
  /// _count), families sorted by name for a stable golden output.
  std::string PrometheusText() const;

 private:
  mutable Mutex mu_;
  // The maps are guarded; the instruments they own are internally atomic, so
  // the stable pointers Get* hands out are safe to use without the lock.
  std::map<std::string, std::unique_ptr<Counter>> counters_ DBX_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DBX_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DBX_GUARDED_BY(mu_);
};

}  // namespace dbx
