// Copyright (c) DBExplorer reproduction authors.
// Span-based tracing for the CAD View pipeline. A Tracer owns a thread-safe
// ring buffer of finished spans; ScopedSpan is the RAII recording handle the
// pipeline stages hold across their work. Parent/child nesting is explicit
// (a span id is passed down, never read from thread-local state) so spans
// opened inside ParallelFor workers attach to the right parent regardless of
// which thread ran the chunk.
//
// Determinism contract: tracing never touches pipeline state, RNG streams, or
// result bytes — span names and args are built from deterministic values
// (labels, counts), and only the timestamps vary run to run. A disabled
// tracer (Tracer::Disabled(), or a null pointer) records nothing and never
// reads the clock, so instrumented code paths cost one branch when off.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace dbx {

/// One finished span. Times are nanoseconds relative to the tracer's epoch
/// (its construction / last Clear).
struct TraceEvent {
  uint64_t id = 0;      // unique within the tracer, 1-based
  uint64_t parent = 0;  // parent span id; 0 = root
  std::string name;     // deterministic stage name, e.g. "chi_square"
  std::string args;     // "key=value, key=value" detail (deterministic)
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // stable small thread index within the tracer
};

/// A thread-safe collector of spans. Create one per EXPLAIN ANALYZE /
/// session / bench run; attach it to options structs as a raw pointer.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  /// An enabled tracer holding up to `capacity` spans (oldest dropped first).
  explicit Tracer(size_t capacity = kDefaultCapacity);

  /// The shared no-op instance: enabled() is false, every operation returns
  /// immediately. The default value of every `Tracer*` knob in the pipeline.
  static Tracer* Disabled();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }

  /// Records an externally timed span (e.g. a Stopwatch measurement that
  /// cannot live as a ScopedSpan). Returns the new span's id, 0 when
  /// disabled.
  uint64_t Emit(std::string name, uint64_t parent, uint64_t start_ns,
                uint64_t dur_ns, std::string args = "");

  /// Nanoseconds since the tracer's epoch. 0 when disabled.
  uint64_t NowNs() const;

  /// Finished spans in insertion order (ring order), then stably sorted by
  /// start time so exports read chronologically.
  std::vector<TraceEvent> Events() const;

  /// Spans discarded because the ring was full.
  uint64_t dropped() const;

  /// Drops every recorded span and resets the epoch.
  void Clear();

  /// Chrome trace_event JSON ("traceEvents" array of complete "X" events),
  /// loadable in chrome://tracing and Perfetto.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`.
  [[nodiscard]] Status WriteChromeJson(const std::string& path) const;

 private:
  friend class ScopedSpan;

  Tracer(bool enabled, size_t capacity);

  uint64_t NextId();
  void Record(TraceEvent event);

  const bool enabled_;
  const size_t capacity_;
  /// steady_clock epoch offset. Atomic, not guarded: NowNs() reads it on
  /// every span open/close without the lock, while Clear() re-stamps it —
  /// the previously unsynchronized pair this annotation sweep flushed out
  /// (regression: TraceTest.ClearConcurrentWithSpansIsRaceFree).
  std::atomic<std::int64_t> epoch_ns_{0};
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ DBX_GUARDED_BY(mu_);
  size_t next_slot_ DBX_GUARDED_BY(mu_) = 0;
  uint64_t recorded_ DBX_GUARDED_BY(mu_) = 0;  // lifetime, incl. dropped
  std::atomic<uint64_t> next_id_{1};
  std::vector<std::pair<std::thread::id, uint32_t>> thread_index_
      DBX_GUARDED_BY(mu_);
};

/// One process lane of a merged Chrome-trace export.
struct NamedTraceSource {
  std::string process_name;  // e.g. "client", "server"
  const Tracer* tracer = nullptr;
};

/// Merges several tracers into one Chrome trace_event JSON document: source
/// i's spans render under pid i+1 with a process_name metadata event, so a
/// client-side tracer and the server's tracer load as two labelled process
/// lanes on one timeline. Null/disabled tracers contribute an empty lane.
/// Note: each tracer's timestamps are relative to its own epoch; lanes align
/// at zero, which for a client/server pair created together is the intended
/// "request-scoped timeline" view.
std::string MergedChromeJson(const std::vector<NamedTraceSource>& sources);

/// RAII span handle: opens on construction, records on destruction. Accepts a
/// null or disabled tracer (every method becomes a no-op). Pass `id()` as the
/// `parent` of child spans — including into worker threads.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name, uint64_t parent = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan& operator=(ScopedSpan&&) = delete;

  /// This span's id (0 when tracing is off) — the parent for child spans.
  uint64_t id() const { return id_; }

  /// True when the span will actually be recorded.
  bool active() const { return id_ != 0; }

  /// Appends "key=value" to the span's detail string. Values must be
  /// deterministic (counts, labels) — never addresses or timings.
  void AddArg(const std::string& key, const std::string& value);
  void AddArg(const std::string& key, uint64_t value);

  /// Records the span now (destruction becomes a no-op).
  void End();

 private:
  Tracer* tracer_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ns_ = 0;
  std::string name_;
  std::string args_;
};

}  // namespace dbx
