// Copyright (c) DBExplorer reproduction authors.
// EXPLAIN ANALYZE rendering: turns the flat span list a Tracer collected into
// the per-stage tree the query layer prints (parse → cache_probe → partition →
// chi_square → kmeans → labeling → div_topk), plus bridges from the metrics
// registry to subsystems that cannot link obs (the thread pool lives below it).

#pragma once

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

namespace dbx {

/// Renders the spans as an indented tree table: stage, wall time, share of
/// the root span, thread index, and the span's deterministic detail args.
/// Children sort under their parent by start time; orphaned spans (parent
/// missing, e.g. dropped from the ring) attach to the root level. Sibling
/// spans with the same name and parent collapse into one row (count, summed
/// time) above `collapse_threshold` occurrences — per-partition k-means spans
/// stay readable on wide tables.
std::string RenderSpanTree(const std::vector<TraceEvent>& events,
                           size_t collapse_threshold = 8);

/// Copies a ThreadPool stats snapshot into dbx_pool_* gauges/counters of
/// `registry`. The pool lives in dbx_util below obs, so it keeps plain
/// atomics and this bridge publishes them.
void ExportThreadPoolMetrics(const ThreadPool::Stats& stats,
                             MetricsRegistry* registry);

/// One-line "tasks=.. parallel_for=.. queue_depth=.. busy_ms=[..]" rendering
/// of a pool snapshot for EXPLAIN ANALYZE footers.
std::string ThreadPoolStatsLine(const ThreadPool::Stats& stats);

}  // namespace dbx
