// Copyright (c) DBExplorer reproduction authors.
// Structured query log (DESIGN.md §14): a thread-safe, bounded JSONL sink of
// per-statement records — canonical statement text, session id, client trace
// id, result status, cache probe outcome, response bytes, total latency, and
// per-stage latencies lifted from the span tree. The engine appends records
// for library/REPL use; the server dispatcher appends richer records (trace
// ids + stage latencies) for every EXEC.
//
// Determinism contract: the sink never reads a clock — every timing in a
// record is supplied by the caller — and serialization emits fields in a
// fixed order. ToJsonLine(record, /*include_timings=*/false) omits the
// wall-clock-dependent fields (total_ms, slow, stages) entirely, so a fixed
// statement script produces byte-identical JSONL run to run; the golden test
// in tests/query_log_test.cc pins that.
//
// The slow-query filter is deterministic for the same reason: `slow` is a
// pure function of the caller-supplied total_ms and the configured
// threshold, and slow-only mode drops records below it before they reach the
// ring or the file sink.

#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/trace.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace dbx {

/// One executed statement. Every field except `seq` and `slow` is supplied
/// by the caller; Append() assigns the sequence number and evaluates the
/// slow threshold.
struct QueryLogRecord {
  uint64_t seq = 0;            // 1-based, assigned by the sink
  std::string session;         // session id ("s3") or engine scope label
  std::string trace;           // client-sent trace id; "" = none
  std::string statement;       // canonical statement text
  std::string status = "OK";   // "OK" or Status::CodeName
  std::string cache = "none";  // cache probe: hit/miss/uncacheable/no-cache/none
  uint64_t response_bytes = 0;  // rendered (engine) / response payload (server)
  double total_ms = 0.0;        // caller-measured wall time
  bool slow = false;            // total_ms >= slow threshold (sink-evaluated)
  /// Per-stage wall time summed by span name over the statement's span
  /// subtree, sorted by name (see StageLatenciesFromSpans).
  std::vector<std::pair<std::string, double>> stages;
};

/// Thread-safe bounded ring of QueryLogRecords with an optional streaming
/// JSONL file sink. All methods may be called concurrently.
class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit QueryLog(size_t capacity = kDefaultCapacity);
  ~QueryLog();

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Records with total_ms >= `ms` are marked slow; 0 disables marking.
  void SetSlowThresholdMs(double ms);

  /// When true, Append() drops records below the slow threshold (they are
  /// counted in filtered(), and reach neither the ring nor the file sink).
  void SetSlowOnly(bool slow_only);

  /// Opens `path` for appending; every subsequent kept record is written as
  /// one JSONL line (with timings) and flushed. Replaces any prior sink.
  [[nodiscard]] Status AttachFile(const std::string& path);

  /// Appends one record: assigns its seq, evaluates the slow threshold,
  /// applies the slow-only filter, stores it in the ring (evicting the
  /// oldest past capacity), and streams it to the attached file. Returns the
  /// assigned seq, or 0 when the record was filtered.
  uint64_t Append(QueryLogRecord record);

  /// Snapshot of the retained records, oldest first.
  std::vector<QueryLogRecord> Records() const;

  /// Records kept (lifetime, including ones since evicted from the ring).
  uint64_t appended() const;
  /// Records evicted from the ring because it was full.
  uint64_t dropped() const;
  /// Records rejected by the slow-only filter.
  uint64_t filtered() const;

  /// Drops every retained record and resets the counters (seq continues).
  void Clear();

  /// One JSON object on one line, fields in fixed order, no trailing
  /// newline. include_timings=false omits total_ms/slow/stages — the
  /// wall-clock-dependent fields — for byte-deterministic goldens.
  static std::string ToJsonLine(const QueryLogRecord& record,
                                bool include_timings = true);

  /// Every retained record, one JSONL line each (trailing newline included).
  std::string ToJsonl(bool include_timings = true) const;

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<QueryLogRecord> ring_ DBX_GUARDED_BY(mu_);
  uint64_t next_seq_ DBX_GUARDED_BY(mu_) = 1;
  uint64_t appended_ DBX_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ DBX_GUARDED_BY(mu_) = 0;
  uint64_t filtered_ DBX_GUARDED_BY(mu_) = 0;
  double slow_threshold_ms_ DBX_GUARDED_BY(mu_) = 0.0;
  bool slow_only_ DBX_GUARDED_BY(mu_) = false;
  std::FILE* sink_ DBX_GUARDED_BY(mu_) = nullptr;
};

/// Sums span durations by name over the subtree rooted at `root_id`
/// (excluding the root itself), returning (name, total_ms) pairs sorted by
/// name — the "stage latencies" a QueryLogRecord carries. Events whose
/// ancestor chain does not reach `root_id` (other sessions' statements on a
/// shared tracer) are ignored.
std::vector<std::pair<std::string, double>> StageLatenciesFromSpans(
    const std::vector<TraceEvent>& events, uint64_t root_id);

}  // namespace dbx
