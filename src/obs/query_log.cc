#include "src/obs/query_log.h"

#include <map>

#include "src/util/string_util.h"

namespace dbx {
namespace {

// JSON string escaping; statements may carry quotes and backslashes.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

QueryLog::QueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

QueryLog::~QueryLog() {
  MutexLock lock(mu_);
  if (sink_ != nullptr) std::fclose(sink_);
}

void QueryLog::SetSlowThresholdMs(double ms) {
  MutexLock lock(mu_);
  slow_threshold_ms_ = ms;
}

void QueryLog::SetSlowOnly(bool slow_only) {
  MutexLock lock(mu_);
  slow_only_ = slow_only;
}

Status QueryLog::AttachFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open query log file: " + path);
  }
  MutexLock lock(mu_);
  if (sink_ != nullptr) std::fclose(sink_);
  sink_ = f;
  return Status::OK();
}

uint64_t QueryLog::Append(QueryLogRecord record) {
  MutexLock lock(mu_);
  record.slow =
      slow_threshold_ms_ > 0.0 && record.total_ms >= slow_threshold_ms_;
  if (slow_only_ && !record.slow) {
    ++filtered_;
    return 0;
  }
  record.seq = next_seq_++;
  ++appended_;
  if (sink_ != nullptr) {
    const std::string line = ToJsonLine(record, /*include_timings=*/true);
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fputc('\n', sink_);
    std::fflush(sink_);
  }
  const uint64_t seq = record.seq;
  ring_.push_back(std::move(record));
  if (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  return seq;
}

std::vector<QueryLogRecord> QueryLog::Records() const {
  MutexLock lock(mu_);
  return std::vector<QueryLogRecord>(ring_.begin(), ring_.end());
}

uint64_t QueryLog::appended() const {
  MutexLock lock(mu_);
  return appended_;
}

uint64_t QueryLog::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

uint64_t QueryLog::filtered() const {
  MutexLock lock(mu_);
  return filtered_;
}

void QueryLog::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  appended_ = 0;
  dropped_ = 0;
  filtered_ = 0;
}

std::string QueryLog::ToJsonLine(const QueryLogRecord& record,
                                 bool include_timings) {
  std::string out = "{";
  out += StringPrintf("\"seq\":%llu",
                      static_cast<unsigned long long>(record.seq));
  out += ",\"session\":\"" + JsonEscape(record.session) + "\"";
  out += ",\"trace\":\"" + JsonEscape(record.trace) + "\"";
  out += ",\"statement\":\"" + JsonEscape(record.statement) + "\"";
  out += ",\"status\":\"" + JsonEscape(record.status) + "\"";
  out += ",\"cache\":\"" + JsonEscape(record.cache) + "\"";
  out += StringPrintf(
      ",\"response_bytes\":%llu",
      static_cast<unsigned long long>(record.response_bytes));
  if (include_timings) {
    out += StringPrintf(",\"total_ms\":%.3f", record.total_ms);
    out += record.slow ? ",\"slow\":true" : ",\"slow\":false";
    out += ",\"stages\":{";
    bool first = true;
    for (const auto& [name, ms] : record.stages) {
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(name) + "\":" + StringPrintf("%.3f", ms);
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string QueryLog::ToJsonl(bool include_timings) const {
  std::string out;
  for (const QueryLogRecord& r : Records()) {
    out += ToJsonLine(r, include_timings);
    out += "\n";
  }
  return out;
}

std::vector<std::pair<std::string, double>> StageLatenciesFromSpans(
    const std::vector<TraceEvent>& events, uint64_t root_id) {
  if (root_id == 0) return {};
  std::map<uint64_t, uint64_t> parent_of;
  for (const TraceEvent& e : events) parent_of[e.id] = e.parent;
  auto under_root = [&](uint64_t id) {
    // Walk up the parent chain; bound the walk so a (theoretical) cycle from
    // ring eviction cannot hang us.
    for (size_t hops = 0; hops < events.size() + 1; ++hops) {
      if (id == root_id) return true;
      auto it = parent_of.find(id);
      if (it == parent_of.end() || it->second == 0) return false;
      id = it->second;
    }
    return false;
  };
  std::map<std::string, double> by_name;
  for (const TraceEvent& e : events) {
    if (e.id == root_id) continue;  // proper descendants only
    if (!under_root(e.parent)) continue;
    by_name[e.name] += e.dur_ns / 1e6;
  }
  return std::vector<std::pair<std::string, double>>(by_name.begin(),
                                                     by_name.end());
}

}  // namespace dbx
