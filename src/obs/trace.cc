#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/util/string_util.h"

namespace dbx {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// JSON string escaping for the Chrome-trace export. Span names and args are
// plain ASCII by construction, but predicates quoted into args may carry
// quotes or backslashes.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Serializes one complete ("X") event under `pid`; Chrome expects
// microsecond floats.
void AppendChromeEvent(std::string* out, const TraceEvent& e, int pid) {
  *out += StringPrintf(
      "{\"name\":\"%s\",\"cat\":\"dbx\",\"ph\":\"X\",\"ts\":%.3f,"
      "\"dur\":%.3f,\"pid\":%d,\"tid\":%u,\"args\":{\"id\":%llu,"
      "\"parent\":%llu",
      JsonEscape(e.name).c_str(), e.start_ns / 1000.0, e.dur_ns / 1000.0, pid,
      e.tid, static_cast<unsigned long long>(e.id),
      static_cast<unsigned long long>(e.parent));
  if (!e.args.empty()) {
    *out += StringPrintf(",\"detail\":\"%s\"", JsonEscape(e.args).c_str());
  }
  *out += "}}";
}

}  // namespace

Tracer::Tracer(size_t capacity) : Tracer(true, capacity) {}

Tracer::Tracer(bool enabled, size_t capacity)
    : enabled_(enabled), capacity_(std::max<size_t>(capacity, 1)) {
  if (enabled_) {
    epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
    ring_.reserve(std::min<size_t>(capacity_, 1024));
  }
}

Tracer* Tracer::Disabled() {
  static Tracer* disabled = new Tracer(false, 1);
  return disabled;
}

uint64_t Tracer::NowNs() const {
  if (!enabled_) return 0;
  return static_cast<uint64_t>(std::max<int64_t>(
      SteadyNowNs() - epoch_ns_.load(std::memory_order_relaxed), 0));
}

uint64_t Tracer::NextId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::Record(TraceEvent event) {
  MutexLock lock(mu_);
  // Stable small thread index, first-come first-served under the lock.
  const std::thread::id self = std::this_thread::get_id();
  uint32_t tid = 0;
  bool found = false;
  for (const auto& [id, idx] : thread_index_) {
    if (id == self) {
      tid = idx;
      found = true;
      break;
    }
  }
  if (!found) {
    tid = static_cast<uint32_t>(thread_index_.size());
    thread_index_.emplace_back(self, tid);
  }
  event.tid = tid;
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_slot_] = std::move(event);
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
}

uint64_t Tracer::Emit(std::string name, uint64_t parent, uint64_t start_ns,
                      uint64_t dur_ns, std::string args) {
  if (!enabled_) return 0;
  TraceEvent event;
  event.id = NextId();
  event.parent = parent;
  event.name = std::move(name);
  event.args = std::move(args);
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  const uint64_t id = event.id;
  Record(std::move(event));
  return id;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lock(mu_);
    if (ring_.size() < capacity_) {
      out = ring_;
    } else {
      // Oldest-first: the slot about to be overwritten is the oldest.
      out.reserve(ring_.size());
      for (size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(next_slot_ + i) % capacity_]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.id < b.id;
                   });
  return out;
}

uint64_t Tracer::dropped() const {
  MutexLock lock(mu_);
  return recorded_ - ring_.size();
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  recorded_ = 0;
  next_id_.store(1, std::memory_order_relaxed);
  thread_index_.clear();
  if (enabled_) epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    AppendChromeEvent(&out, e, /*pid=*/1);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string MergedChromeJson(const std::vector<NamedTraceSource>& sources) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (size_t i = 0; i < sources.size(); ++i) {
    const int pid = static_cast<int>(i) + 1;
    if (!first) out += ",";
    first = false;
    out += StringPrintf(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
        "\"args\":{\"name\":\"%s\"}}",
        pid, JsonEscape(sources[i].process_name).c_str());
    if (sources[i].tracer == nullptr || !sources[i].tracer->enabled()) {
      continue;
    }
    for (const TraceEvent& e : sources[i].tracer->Events()) {
      out += ",";
      AppendChromeEvent(&out, e, pid);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name, uint64_t parent)
    : tracer_(tracer), parent_(parent), name_(std::move(name)) {
  if (tracer_ == nullptr || !tracer_->enabled()) {
    tracer_ = nullptr;
    return;
  }
  id_ = tracer_->NextId();
  start_ns_ = tracer_->NowNs();
}

ScopedSpan::~ScopedSpan() { End(); }

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : tracer_(other.tracer_),
      id_(other.id_),
      parent_(other.parent_),
      start_ns_(other.start_ns_),
      name_(std::move(other.name_)),
      args_(std::move(other.args_)) {
  other.tracer_ = nullptr;
  other.id_ = 0;
}

void ScopedSpan::AddArg(const std::string& key, const std::string& value) {
  if (id_ == 0) return;
  if (!args_.empty()) args_ += ", ";
  args_ += key + "=" + value;
}

void ScopedSpan::AddArg(const std::string& key, uint64_t value) {
  AddArg(key, std::to_string(value));
}

void ScopedSpan::End() {
  if (tracer_ == nullptr || id_ == 0) return;
  TraceEvent event;
  event.id = id_;
  event.parent = parent_;
  event.name = std::move(name_);
  event.args = std::move(args_);
  event.start_ns = start_ns_;
  event.dur_ns = tracer_->NowNs() - start_ns_;
  tracer_->Record(std::move(event));
  id_ = 0;
  tracer_ = nullptr;
}

}  // namespace dbx
