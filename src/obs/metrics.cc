#include "src/obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/util/string_util.h"

namespace dbx {
namespace {

// Prometheus prints integral values without a fraction and everything else
// with enough digits to round-trip visually; FormatDouble(_, 6) covers the
// bucket bounds we use.
std::string MetricNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::string s = FormatDouble(v, 6);
  // Trim trailing fractional zeros: "25.500000" -> "25.5".
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(!bounds_.empty());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) needs C++20 library support; a CAS loop is portable.
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> cum(bounds_.size() + 1, 0);
  uint64_t running = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    cum[i] = running;
  }
  return cum;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<uint64_t> cum = CumulativeCounts();
  const uint64_t total = cum.back();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    if (static_cast<double>(cum[i]) >= target) {
      if (i == bounds_.size()) return bounds_.back();  // overflow bucket
      const double hi = bounds_[i];
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const uint64_t below = i == 0 ? 0 : cum[i - 1];
      const uint64_t in_bucket = cum[i] - below;
      if (in_bucket == 0) return hi;
      const double frac =
          (target - static_cast<double>(below)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds_.back();
}

const std::vector<double>& DefaultLatencyBoundsMs() {
  static const std::vector<double>* bounds = new std::vector<double>{
      0.05, 0.1, 0.25, 0.5, 1,    2.5,  5,     10,    25,    50,
      100,  250, 500,  1000, 2500, 5000, 10000, 30000, 60000};
  return *bounds;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(gauge->Value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    const std::vector<uint64_t> cum = hist->CumulativeCounts();
    const std::vector<double>& bounds = hist->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      out += name + "_bucket{le=\"" + MetricNumber(bounds[i]) + "\"} " +
             std::to_string(cum[i]) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cum.back()) + "\n";
    out += name + "_sum " + MetricNumber(hist->Sum()) + "\n";
    out += name + "_count " + std::to_string(hist->Count()) + "\n";
  }
  return out;
}

}  // namespace dbx
