#include "src/obs/explain.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/util/ascii_table.h"
#include "src/util/string_util.h"

namespace dbx {
namespace {

struct Node {
  const TraceEvent* event;
  std::vector<size_t> children;  // indices into the node vector
};

std::string FormatMs(uint64_t ns) {
  return FormatDouble(static_cast<double>(ns) / 1e6, 3);
}

void RenderNode(const std::vector<Node>& nodes, size_t idx, int depth,
                uint64_t total_ns, size_t collapse_threshold,
                AsciiTable* table) {
  const TraceEvent& e = *nodes[idx].event;
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  const double share =
      total_ns > 0 ? 100.0 * static_cast<double>(e.dur_ns) /
                         static_cast<double>(total_ns)
                   : 0.0;
  table->AddRow({indent + e.name, FormatMs(e.dur_ns),
                 FormatDouble(share, 1) + "%", std::to_string(e.tid),
                 e.args});

  // Group children by name to collapse wide fan-outs (one span per
  // partition) into a single summary row.
  std::map<std::string, std::vector<size_t>> by_name;
  std::vector<std::string> name_order;
  for (size_t c : nodes[idx].children) {
    auto [it, inserted] = by_name.try_emplace(nodes[c].event->name);
    if (inserted) name_order.push_back(nodes[c].event->name);
    it->second.push_back(c);
  }
  for (const std::string& name : name_order) {
    const std::vector<size_t>& group = by_name[name];
    if (group.size() >= collapse_threshold) {
      uint64_t sum_ns = 0;
      uint64_t max_ns = 0;
      for (size_t c : group) {
        sum_ns += nodes[c].event->dur_ns;
        max_ns = std::max(max_ns, nodes[c].event->dur_ns);
      }
      const std::string child_indent(static_cast<size_t>(depth + 1) * 2, ' ');
      const double child_share =
          total_ns > 0 ? 100.0 * static_cast<double>(sum_ns) /
                             static_cast<double>(total_ns)
                       : 0.0;
      table->AddRow({child_indent + name + " x" + std::to_string(group.size()),
                     FormatMs(sum_ns), FormatDouble(child_share, 1) + "%", "*",
                     "max=" + FormatMs(max_ns) + "ms"});
    } else {
      for (size_t c : group) {
        RenderNode(nodes, c, depth + 1, total_ns, collapse_threshold, table);
      }
    }
  }
}

}  // namespace

std::string RenderSpanTree(const std::vector<TraceEvent>& events,
                           size_t collapse_threshold) {
  if (events.empty()) return "(no spans recorded)\n";
  if (collapse_threshold == 0) collapse_threshold = 1;

  std::vector<Node> nodes;
  nodes.reserve(events.size());
  std::unordered_map<uint64_t, size_t> by_id;
  for (const TraceEvent& e : events) {
    by_id[e.id] = nodes.size();
    nodes.push_back(Node{&e, {}});
  }
  std::vector<size_t> roots;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const uint64_t parent = nodes[i].event->parent;
    auto it = parent == 0 ? by_id.end() : by_id.find(parent);
    if (it == by_id.end()) {
      roots.push_back(i);  // true root or orphaned by ring overflow
    } else {
      nodes[it->second].children.push_back(i);
    }
  }

  // Events() is start-sorted, so children and roots are already in time
  // order. Total time = sum of roots (usually exactly one).
  uint64_t total_ns = 0;
  for (size_t r : roots) total_ns += nodes[r].event->dur_ns;

  AsciiTable table;
  table.SetHeader({"stage", "time (ms)", "share", "thr", "detail"});
  table.SetMaxColumnWidth(48);
  for (size_t r : roots) {
    RenderNode(nodes, r, 0, total_ns, collapse_threshold, &table);
  }
  return table.Render();
}

void ExportThreadPoolMetrics(const ThreadPool::Stats& stats,
                             MetricsRegistry* registry) {
  if (registry == nullptr) return;
  // Lifetime totals land in gauges (Set, not Increment): the pool already
  // accumulates, and re-exporting must stay idempotent.
  registry->GetGauge("dbx_pool_tasks_submitted")
      ->Set(static_cast<int64_t>(stats.tasks_submitted));
  registry->GetGauge("dbx_pool_parallel_for_calls")
      ->Set(static_cast<int64_t>(stats.parallel_for_calls));
  registry->GetGauge("dbx_pool_queue_depth")
      ->Set(static_cast<int64_t>(stats.queue_depth));
  registry->GetGauge("dbx_pool_threads")
      ->Set(static_cast<int64_t>(stats.num_threads));
  uint64_t busy_ns = 0;
  for (uint64_t w : stats.worker_busy_ns) busy_ns += w;
  registry->GetGauge("dbx_pool_busy_ms")
      ->Set(static_cast<int64_t>(busy_ns / 1000000));
}

std::string ThreadPoolStatsLine(const ThreadPool::Stats& stats) {
  std::string busy = "[";
  for (size_t i = 0; i < stats.worker_busy_ns.size(); ++i) {
    if (i > 0) busy += " ";
    busy += FormatDouble(static_cast<double>(stats.worker_busy_ns[i]) / 1e6, 1);
  }
  busy += "]";
  return StringPrintf(
      "pool: threads=%zu tasks=%llu parallel_for=%llu queue_depth=%zu "
      "busy_ms=%s",
      stats.num_threads, static_cast<unsigned long long>(stats.tasks_submitted),
      static_cast<unsigned long long>(stats.parallel_for_calls),
      stats.queue_depth, busy.c_str());
}

}  // namespace dbx
