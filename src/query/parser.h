// Copyright (c) DBExplorer reproduction authors.
// Recursive-descent parser for the CADVIEW SQL dialect.

#pragma once

#include <string>

#include "src/query/ast.h"
#include "src/util/result.h"

namespace dbx {

/// Parses one statement (optionally ';'-terminated). Fails with
/// InvalidArgument and a position-bearing message on syntax errors.
[[nodiscard]] Result<Statement> ParseStatement(const std::string& sql);

}  // namespace dbx
