#include "src/query/parser.h"

#include <cmath>

#include "src/query/lexer.h"
#include "src/util/string_util.h"

namespace dbx {
namespace {

/// Token cursor with expectation helpers. All Parse* methods return Status /
/// Result and never throw.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (AcceptKeyword("EXPLAIN")) {
      ExplainStmt stmt;
      stmt.analyze = AcceptKeyword("ANALYZE");
      DBX_ASSIGN_OR_RETURN(Statement inner, ParseStatement());
      if (std::holds_alternative<ExplainStmt>(inner)) {
        return Err("EXPLAIN cannot wrap another EXPLAIN");
      }
      stmt.inner = std::make_shared<StatementBox>(std::move(inner));
      return Statement(std::move(stmt));
    }
    if (AcceptKeyword("CREATE")) return ParseCreateCadView();
    if (AcceptKeyword("HIGHLIGHT")) return ParseHighlight();
    if (AcceptKeyword("REORDER")) return ParseReorder();
    if (AcceptKeyword("SELECT")) return ParseSelect();
    if (AcceptKeyword("DESCRIBE")) {
      DescribeStmt stmt;
      DBX_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
      DBX_RETURN_IF_ERROR(ExpectEnd());
      return Statement(std::move(stmt));
    }
    if (AcceptKeyword("DROP")) {
      DBX_RETURN_IF_ERROR(ExpectKeyword("CADVIEW"));
      DropCadViewStmt stmt;
      DBX_ASSIGN_OR_RETURN(stmt.view_name, ExpectIdentifier("view name"));
      DBX_RETURN_IF_ERROR(ExpectEnd());
      return Statement(std::move(stmt));
    }
    if (AcceptKeyword("SHOW")) {
      ShowStmt stmt;
      if (AcceptKeyword("TABLES")) {
        stmt.what = ShowStmt::What::kTables;
      } else if (AcceptKeyword("CADVIEWS")) {
        stmt.what = ShowStmt::What::kCadViews;
      } else {
        return Err("expected TABLES or CADVIEWS");
      }
      DBX_RETURN_IF_ERROR(ExpectEnd());
      return Statement(std::move(stmt));
    }
    return Err("expected CREATE CADVIEW, HIGHLIGHT, REORDER, SELECT, "
               "DESCRIBE, or SHOW");
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }

  bool AcceptKeyword(const char* kw) {
    if (Cur().type == TokenType::kKeyword && Cur().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptOperator(const char* op) {
    if (Cur().type == TokenType::kOperator && Cur().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (AcceptKeyword(kw)) return Status::OK();
    return Status::InvalidArgument(ErrMsg(std::string("expected ") + kw));
  }

  Status ExpectOperator(const char* op) {
    if (AcceptOperator(op)) return Status::OK();
    return Status::InvalidArgument(ErrMsg(std::string("expected '") + op + "'"));
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Cur().type == TokenType::kIdentifier) {
      std::string s = Cur().text;
      ++pos_;
      return s;
    }
    return Status::InvalidArgument(ErrMsg(std::string("expected ") + what));
  }

  /// Like ExpectIdentifier, but also accepts the aggregate keywords so
  /// output columns named "count"/"avg_..." can appear in ORDER BY.
  Result<std::string> ExpectColumnName(const char* what) {
    if (Cur().type == TokenType::kKeyword &&
        (Cur().text == "COUNT" || Cur().text == "AVG" || Cur().text == "SUM" ||
         Cur().text == "MIN" || Cur().text == "MAX")) {
      std::string s = ToLower(Cur().text);
      ++pos_;
      return s;
    }
    return ExpectIdentifier(what);
  }

  Result<double> ExpectNumber(const char* what) {
    if (Cur().type == TokenType::kNumber) {
      double v = Cur().number;
      ++pos_;
      return v;
    }
    return Status::InvalidArgument(ErrMsg(std::string("expected ") + what));
  }

  Status ExpectEnd() {
    AcceptOperator(";");
    if (Cur().type == TokenType::kEnd) return Status::OK();
    return Status::InvalidArgument(ErrMsg("unexpected trailing input"));
  }

  std::string ErrMsg(const std::string& what) const {
    return what + " at offset " + std::to_string(Cur().offset) +
           (Cur().text.empty() ? "" : " (near '" + Cur().text + "')");
  }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(ErrMsg(what));
  }

  // --- WHERE expressions ----------------------------------------------------

  Result<PredicatePtr> ParseOr() {
    DBX_ASSIGN_OR_RETURN(PredicatePtr left, ParseAnd());
    if (Cur().type == TokenType::kKeyword && Cur().text == "OR") {
      std::vector<PredicatePtr> children;
      children.push_back(std::move(left));
      while (AcceptKeyword("OR")) {
        DBX_ASSIGN_OR_RETURN(PredicatePtr next, ParseAnd());
        children.push_back(std::move(next));
      }
      return MakeOr(std::move(children));
    }
    return left;
  }

  Result<PredicatePtr> ParseAnd() {
    DBX_ASSIGN_OR_RETURN(PredicatePtr left, ParseUnary());
    if (Cur().type == TokenType::kKeyword && Cur().text == "AND") {
      std::vector<PredicatePtr> children;
      children.push_back(std::move(left));
      while (AcceptKeyword("AND")) {
        DBX_ASSIGN_OR_RETURN(PredicatePtr next, ParseUnary());
        children.push_back(std::move(next));
      }
      return MakeAnd(std::move(children));
    }
    return left;
  }

  Result<PredicatePtr> ParseUnary() {
    if (AcceptKeyword("NOT")) {
      DBX_ASSIGN_OR_RETURN(PredicatePtr child, ParseUnary());
      return MakeNot(std::move(child));
    }
    if (AcceptOperator("(")) {
      DBX_ASSIGN_OR_RETURN(PredicatePtr inner, ParseOr());
      DBX_RETURN_IF_ERROR(ExpectOperator(")"));
      return inner;
    }
    return ParseComparison();
  }

  /// A literal on the right-hand side of a comparison: number, 'string', or
  /// bareword (the paper writes Make = Jeep without quotes).
  Result<Value> ParseLiteral() {
    if (Cur().type == TokenType::kNumber) {
      double v = Cur().number;
      ++pos_;
      return Value(v);
    }
    if (Cur().type == TokenType::kString) {
      std::string s = Cur().text;
      ++pos_;
      return Value(s);
    }
    if (Cur().type == TokenType::kIdentifier ||
        (Cur().type == TokenType::kKeyword &&
         (Cur().text == "TRUE" || Cur().text == "FALSE"))) {
      // Barewords and TRUE/FALSE become categorical strings; the paper's
      // Mushroom tasks use Bruises = true.
      std::string s = Cur().type == TokenType::kKeyword ? ToLower(Cur().text)
                                                        : Cur().text;
      ++pos_;
      return Value(s);
    }
    return Status::InvalidArgument(ErrMsg("expected literal"));
  }

  Result<PredicatePtr> ParseComparison() {
    DBX_ASSIGN_OR_RETURN(std::string attr, ExpectIdentifier("attribute name"));

    if (AcceptKeyword("BETWEEN")) {
      DBX_ASSIGN_OR_RETURN(double lo, ExpectNumber("lower bound"));
      DBX_RETURN_IF_ERROR(ExpectKeyword("AND"));
      DBX_ASSIGN_OR_RETURN(double hi, ExpectNumber("upper bound"));
      if (lo > hi) return Err("BETWEEN bounds out of order");
      return MakeBetween(std::move(attr), lo, hi);
    }
    if (AcceptKeyword("IN")) {
      DBX_RETURN_IF_ERROR(ExpectOperator("("));
      std::vector<std::string> values;
      do {
        DBX_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        values.push_back(v.is_string() ? v.AsString() : v.ToDisplay());
      } while (AcceptOperator(","));
      DBX_RETURN_IF_ERROR(ExpectOperator(")"));
      return MakeIn(std::move(attr), std::move(values));
    }
    if (AcceptKeyword("NOT")) {
      DBX_RETURN_IF_ERROR(ExpectKeyword("IN"));
      DBX_RETURN_IF_ERROR(ExpectOperator("("));
      std::vector<std::string> values;
      do {
        DBX_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        values.push_back(v.is_string() ? v.AsString() : v.ToDisplay());
      } while (AcceptOperator(","));
      DBX_RETURN_IF_ERROR(ExpectOperator(")"));
      return MakeNot(MakeIn(std::move(attr), std::move(values)));
    }

    CmpOp op;
    if (AcceptOperator("=")) {
      op = CmpOp::kEq;
    } else if (AcceptOperator("!=")) {
      op = CmpOp::kNe;
    } else if (AcceptOperator("<=")) {
      op = CmpOp::kLe;
    } else if (AcceptOperator(">=")) {
      op = CmpOp::kGe;
    } else if (AcceptOperator("<")) {
      op = CmpOp::kLt;
    } else if (AcceptOperator(">")) {
      op = CmpOp::kGt;
    } else {
      return Err("expected comparison operator");
    }
    DBX_ASSIGN_OR_RETURN(Value rhs, ParseLiteral());
    return MakeCmp(std::move(attr), op, std::move(rhs));
  }

  // --- Statements -------------------------------------------------------------

  /// One SELECT-list item: a column, COUNT(*), or AGG(attr).
  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    auto agg_of = [&](const char* kw, AggFn fn) -> bool {
      if (AcceptKeyword(kw)) {
        item.fn = fn;
        return true;
      }
      return false;
    };
    if (agg_of("COUNT", AggFn::kCount) || agg_of("AVG", AggFn::kAvg) ||
        agg_of("SUM", AggFn::kSum) || agg_of("MIN", AggFn::kMin) ||
        agg_of("MAX", AggFn::kMax)) {
      DBX_RETURN_IF_ERROR(ExpectOperator("("));
      if (item.fn == AggFn::kCount && AcceptOperator("*")) {
        // COUNT(*): attr stays empty.
      } else {
        DBX_ASSIGN_OR_RETURN(item.attr, ExpectIdentifier("attribute name"));
      }
      DBX_RETURN_IF_ERROR(ExpectOperator(")"));
      return item;
    }
    DBX_ASSIGN_OR_RETURN(item.attr, ExpectIdentifier("column name"));
    return item;
  }

  Result<Statement> ParseSelect() {
    SelectStmt stmt;
    std::vector<SelectItem> items;
    if (AcceptOperator("*")) {
      stmt.star = true;
    } else {
      do {
        DBX_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        items.push_back(std::move(item));
      } while (AcceptOperator(","));
    }
    DBX_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DBX_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (AcceptKeyword("WHERE")) {
      DBX_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (AcceptKeyword("GROUP")) {
      DBX_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        DBX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("group column"));
        stmt.group_by.push_back(std::move(col));
      } while (AcceptOperator(","));
    }
    // Classify the select list: any aggregate (or a GROUP BY) makes this an
    // aggregate query; otherwise keep the plain projection form.
    bool has_agg = false;
    for (const SelectItem& it : items) has_agg |= it.fn.has_value();
    if (has_agg || !stmt.group_by.empty()) {
      if (stmt.star) return Err("SELECT * cannot be combined with GROUP BY");
      stmt.items = std::move(items);
      for (const SelectItem& it : stmt.items) {
        if (it.fn.has_value()) continue;
        bool grouped = false;
        for (const std::string& g : stmt.group_by) grouped |= g == it.attr;
        if (!grouped) {
          return Err("non-aggregate column '" + it.attr +
                     "' must appear in GROUP BY");
        }
      }
    } else {
      for (SelectItem& it : items) stmt.columns.push_back(std::move(it.attr));
    }
    if (AcceptKeyword("ORDER")) {
      DBX_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        DBX_ASSIGN_OR_RETURN(std::string col, ExpectColumnName("order column"));
        bool asc = true;
        if (AcceptKeyword("DESC")) {
          asc = false;
        } else {
          AcceptKeyword("ASC");
        }
        stmt.order_by.emplace_back(std::move(col), asc);
      } while (AcceptOperator(","));
    }
    if (AcceptKeyword("LIMIT")) {
      DBX_ASSIGN_OR_RETURN(double n, ExpectNumber("LIMIT count"));
      if (n < 0 || n != std::floor(n)) return Err("LIMIT must be a whole number");
      stmt.limit = static_cast<size_t>(n);
    }
    DBX_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCreateCadView() {
    DBX_RETURN_IF_ERROR(ExpectKeyword("CADVIEW"));
    CreateCadViewStmt stmt;
    DBX_ASSIGN_OR_RETURN(stmt.view_name, ExpectIdentifier("view name"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("AS"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("SET"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("PIVOT"));
    DBX_RETURN_IF_ERROR(ExpectOperator("="));
    DBX_ASSIGN_OR_RETURN(stmt.pivot_attr, ExpectIdentifier("pivot attribute"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (!AcceptOperator("*")) {
      do {
        DBX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        stmt.compare_attrs.push_back(std::move(col));
      } while (AcceptOperator(","));
    }
    DBX_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DBX_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (AcceptKeyword("WHERE")) {
      DBX_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (AcceptKeyword("LIMIT")) {
      DBX_RETURN_IF_ERROR(ExpectKeyword("COLUMNS"));
      DBX_ASSIGN_OR_RETURN(double m, ExpectNumber("column limit"));
      if (m < 1 || m != std::floor(m)) return Err("LIMIT COLUMNS must be >= 1");
      stmt.limit_columns = static_cast<size_t>(m);
    }
    if (AcceptKeyword("IUNITS")) {
      DBX_ASSIGN_OR_RETURN(double k, ExpectNumber("IUNITS count"));
      if (k < 1 || k != std::floor(k)) return Err("IUNITS must be >= 1");
      stmt.iunits = static_cast<size_t>(k);
    }
    if (AcceptKeyword("ORDER")) {
      DBX_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        DBX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("order column"));
        bool asc = true;
        if (AcceptKeyword("DESC")) {
          asc = false;
        } else {
          AcceptKeyword("ASC");
        }
        stmt.order_by.emplace_back(std::move(col), asc);
      } while (AcceptOperator(","));
    }
    DBX_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseHighlight() {
    DBX_RETURN_IF_ERROR(ExpectKeyword("SIMILAR"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("IUNITS"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("IN"));
    HighlightStmt stmt;
    DBX_ASSIGN_OR_RETURN(stmt.view_name, ExpectIdentifier("view name"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("SIMILARITY"));
    DBX_RETURN_IF_ERROR(ExpectOperator("("));
    DBX_ASSIGN_OR_RETURN(stmt.pivot_value, ParsePivotValue());
    DBX_RETURN_IF_ERROR(ExpectOperator(","));
    DBX_ASSIGN_OR_RETURN(double rank, ExpectNumber("IUnit rank"));
    if (rank < 1 || rank != std::floor(rank)) return Err("IUnit rank must be >= 1");
    stmt.iunit_rank = static_cast<size_t>(rank);
    DBX_RETURN_IF_ERROR(ExpectOperator(")"));
    DBX_RETURN_IF_ERROR(ExpectOperator(">"));
    DBX_ASSIGN_OR_RETURN(stmt.threshold, ExpectNumber("similarity threshold"));
    DBX_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseReorder() {
    DBX_RETURN_IF_ERROR(ExpectKeyword("ROWS"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("IN"));
    ReorderStmt stmt;
    DBX_ASSIGN_OR_RETURN(stmt.view_name, ExpectIdentifier("view name"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("ORDER"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("BY"));
    DBX_RETURN_IF_ERROR(ExpectKeyword("SIMILARITY"));
    DBX_RETURN_IF_ERROR(ExpectOperator("("));
    DBX_ASSIGN_OR_RETURN(stmt.pivot_value, ParsePivotValue());
    DBX_RETURN_IF_ERROR(ExpectOperator(")"));
    if (AcceptKeyword("ASC")) {
      stmt.descending = false;
    } else {
      AcceptKeyword("DESC");
    }
    DBX_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  /// A pivot value inside SIMILARITY(...): bareword or quoted string.
  Result<std::string> ParsePivotValue() {
    if (Cur().type == TokenType::kIdentifier ||
        Cur().type == TokenType::kString) {
      std::string s = Cur().text;
      ++pos_;
      return s;
    }
    return Status::InvalidArgument(ErrMsg("expected pivot value"));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  auto toks = Lex(sql);
  if (!toks.ok()) return toks.status();
  Parser p(std::move(*toks));
  return p.ParseStatement();
}

}  // namespace dbx
