#include "src/query/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "src/core/cad_view_renderer.h"
#include "src/obs/explain.h"
#include "src/obs/metrics.h"
#include "src/query/canonical.h"
#include "src/query/parser.h"
#include "src/util/ascii_table.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace dbx {
namespace {

const char* StatementKindName(const Statement& statement) {
  if (std::holds_alternative<SelectStmt>(statement)) return "select";
  if (std::holds_alternative<CreateCadViewStmt>(statement)) {
    return "create_cadview";
  }
  if (std::holds_alternative<HighlightStmt>(statement)) return "highlight";
  if (std::holds_alternative<ReorderStmt>(statement)) return "reorder";
  if (std::holds_alternative<DescribeStmt>(statement)) return "describe";
  if (std::holds_alternative<ShowStmt>(statement)) return "show";
  if (std::holds_alternative<DropCadViewStmt>(statement)) return "drop";
  if (std::holds_alternative<ExplainStmt>(statement)) return "explain";
  return "statement";
}

}  // namespace

void Engine::RegisterTable(const std::string& name, const Table* table) {
  // A (re-)registration means the data under `name` may have changed. The
  // fresh snapshot id keeps the new registration's cache keys disjoint from
  // every prior one (correctness, even across engines sharing the cache);
  // invalidating the superseded id just reclaims budget promptly.
  auto it = dataset_ids_.find(name);
  if (cache_ != nullptr && it != dataset_ids_.end()) {
    cache_->InvalidateDataset(it->second);
  }
  dataset_ids_[name] = MakeSnapshotDatasetId(name);
  tables_[name] = table;
}

void Engine::RegisterTableSnapshot(const std::string& name, const Table* table,
                                   std::string dataset_id) {
  dataset_ids_[name] = std::move(dataset_id);
  tables_[name] = table;
}

void Engine::RegisterTableSnapshot(const std::string& name,
                                   std::shared_ptr<const Table> table,
                                   std::string dataset_id) {
  RegisterTableSnapshot(name, table.get(), std::move(dataset_id));
  owned_tables_[name] = std::move(table);
}

Result<ExecOutcome> Engine::ExecuteSql(const std::string& sql) {
  Stopwatch total_timer;
  Stopwatch parse_timer;
  auto stmt = ParseStatement(sql);
  std::string canonical;
  std::optional<Result<ExecOutcome>> result;
  if (!stmt.ok()) {
    result.emplace(stmt.status());
  } else {
    last_parse_ns_ = parse_timer.ElapsedNanos();
    canonical = StatementToSql(*stmt);
    result.emplace(Execute(std::move(*stmt)));
    if (result->ok()) (*result)->canonical_sql = canonical;
  }
  if (query_log_ != nullptr) {
    QueryLogRecord rec;
    rec.session = query_log_scope_;
    // Parse failures have no canonical form; log the raw text.
    rec.statement = canonical.empty() ? sql : canonical;
    if (result->ok()) {
      rec.cache = (*result)->cache_result;
      rec.response_bytes = (*result)->rendered.size();
    } else {
      rec.status = Status::CodeName(result->status().code());
    }
    rec.total_ms = total_timer.ElapsedNanos() / 1e6;
    query_log_->Append(std::move(rec));
  }
  return std::move(*result);
}

Result<ExecOutcome> Engine::Execute(Statement statement) {
  const uint64_t parse_ns = last_parse_ns_;
  last_parse_ns_ = 0;
  Stopwatch timer;
  MetricsRegistry* reg = MetricsRegistry::Global();
  reg->GetCounter(std::string("dbx_query_statements_total"))->Increment();
  reg->GetCounter(std::string("dbx_query_") + StatementKindName(statement) +
                  "_total")
      ->Increment();
  struct LatencyRecord {
    Stopwatch* timer;
    ~LatencyRecord() {
      MetricsRegistry::Global()
          ->GetHistogram("dbx_query_statement_ms")
          ->ObserveNs(timer->ElapsedNanos());
    }
  } latency_record{&timer};
  if (auto* s = std::get_if<ExplainStmt>(&statement)) {
    return ExecuteExplain(std::move(*s), parse_ns);
  }
  if (auto* s = std::get_if<SelectStmt>(&statement)) {
    return ExecuteSelect(std::move(*s));
  }
  if (auto* s = std::get_if<CreateCadViewStmt>(&statement)) {
    return ExecuteCreateCadView(std::move(*s));
  }
  if (auto* s = std::get_if<HighlightStmt>(&statement)) {
    return ExecuteHighlight(*s);
  }
  if (auto* s = std::get_if<ReorderStmt>(&statement)) {
    return ExecuteReorder(*s);
  }
  if (auto* s = std::get_if<DescribeStmt>(&statement)) {
    return ExecuteDescribe(*s);
  }
  if (auto* s = std::get_if<ShowStmt>(&statement)) {
    return ExecuteShow(*s);
  }
  if (auto* s = std::get_if<DropCadViewStmt>(&statement)) {
    return ExecuteDrop(*s);
  }
  return Status::Internal("unhandled statement kind");
}

Result<const CadView*> Engine::GetView(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no CAD View named '" + name + "'");
  }
  return const_cast<const CadView*>(it->second.get());
}

Result<ExecOutcome> Engine::ExecuteSelect(SelectStmt stmt) {
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + stmt.table + "'");
  }
  const Table& table = *it->second;
  if (stmt.is_aggregate()) return ExecuteAggregate(table, std::move(stmt));

  // Validate projection.
  ExecOutcome out;
  out.kind = ExecOutcome::Kind::kSelection;
  out.table = &table;
  if (stmt.star) {
    for (const auto& a : table.schema().attrs()) {
      out.projected_columns.push_back(a.name);
    }
  } else {
    for (const std::string& c : stmt.columns) {
      if (!table.schema().Contains(c)) {
        return Status::NotFound("no attribute named '" + c + "'");
      }
      out.projected_columns.push_back(c);
    }
  }

  TableSlice slice = TableSlice::All(table);
  if (stmt.where) {
    auto rows = Predicate::Evaluate(stmt.where.get(), slice);
    if (!rows.ok()) return rows.status();
    out.rows = std::move(*rows);
  } else {
    out.rows = std::move(slice.rows);
  }
  // ORDER BY: stable multi-key sort (rightmost key applied first). Null
  // cells sort last under ASC, first under DESC.
  for (auto rit = stmt.order_by.rbegin(); rit != stmt.order_by.rend(); ++rit) {
    const auto& [attr_name, ascending] = *rit;
    auto idx = table.schema().IndexOf(attr_name);
    if (!idx) return Status::NotFound("no attribute named '" + attr_name + "'");
    const Column& col = table.col(*idx);
    auto less = [&](uint32_t a, uint32_t b) {
      bool na = col.IsNullAt(a), nb = col.IsNullAt(b);
      if (na || nb) return ascending ? (!na && nb) : (na && !nb);
      if (col.type() == AttrType::kNumeric) {
        double x = col.NumberAt(a), y = col.NumberAt(b);
        return ascending ? x < y : x > y;
      }
      const std::string& x = col.DictString(col.CodeAt(a));
      const std::string& y = col.DictString(col.CodeAt(b));
      return ascending ? x < y : x > y;
    };
    std::stable_sort(out.rows.begin(), out.rows.end(), less);
  }
  if (stmt.limit && out.rows.size() > *stmt.limit) {
    out.rows.resize(*stmt.limit);
  }
  out.rendered = StringPrintf("%zu row(s)", out.rows.size());
  return out;
}

namespace {

std::string AggColumnName(const SelectItem& item) {
  if (!item.fn.has_value()) return item.attr;
  const char* prefix = "";
  switch (*item.fn) {
    case AggFn::kCount: return item.attr.empty() ? "count" : "count_" + item.attr;
    case AggFn::kAvg: prefix = "avg_"; break;
    case AggFn::kSum: prefix = "sum_"; break;
    case AggFn::kMin: prefix = "min_"; break;
    case AggFn::kMax: prefix = "max_"; break;
  }
  return prefix + item.attr;
}

}  // namespace

Result<ExecOutcome> Engine::ExecuteAggregate(const Table& table,
                                             SelectStmt stmt) {
  // Resolve inputs. Aggregated attributes must be numeric (COUNT excepted).
  struct Resolved {
    SelectItem item;
    std::optional<size_t> col;  // source column (nullopt for COUNT(*))
  };
  std::vector<Resolved> items;
  for (SelectItem& it : stmt.items) {
    Resolved r;
    if (!it.attr.empty()) {
      auto idx = table.schema().IndexOf(it.attr);
      if (!idx) return Status::NotFound("no attribute named '" + it.attr + "'");
      if (it.fn.has_value() && *it.fn != AggFn::kCount &&
          table.schema().attr(*idx).type != AttrType::kNumeric) {
        return Status::InvalidArgument("aggregate over non-numeric attribute '" +
                                       it.attr + "'");
      }
      r.col = *idx;
    }
    r.item = std::move(it);
    items.push_back(std::move(r));
  }
  std::vector<size_t> group_cols;
  for (const std::string& g : stmt.group_by) {
    auto idx = table.schema().IndexOf(g);
    if (!idx) return Status::NotFound("no attribute named '" + g + "'");
    group_cols.push_back(*idx);
  }

  // WHERE.
  TableSlice slice = TableSlice::All(table);
  if (stmt.where) {
    auto rows = Predicate::Evaluate(stmt.where.get(), slice);
    if (!rows.ok()) return rows.status();
    slice.rows = std::move(*rows);
  }

  // Accumulate per group (key = display strings of the grouping columns).
  struct Acc {
    std::vector<Value> group_values;
    uint64_t count_star = 0;
    std::vector<uint64_t> non_null;  // per item
    std::vector<double> sum, min, max;
    explicit Acc(size_t n_items)
        : non_null(n_items, 0), sum(n_items, 0.0),
          min(n_items, std::numeric_limits<double>::infinity()),
          max(n_items, -std::numeric_limits<double>::infinity()) {}
  };
  std::map<std::vector<std::string>, Acc> groups;
  for (uint32_t row : slice.rows) {
    std::vector<std::string> key;
    key.reserve(group_cols.size());
    for (size_t g : group_cols) key.push_back(table.At(row, g).ToDisplay());
    auto [it2, inserted] = groups.try_emplace(key, items.size());
    Acc& acc = it2->second;
    if (inserted) {
      for (size_t g : group_cols) acc.group_values.push_back(table.At(row, g));
    }
    ++acc.count_star;
    for (size_t i = 0; i < items.size(); ++i) {
      if (!items[i].item.fn.has_value() || !items[i].col.has_value()) continue;
      const Column& col = table.col(*items[i].col);
      if (col.IsNullAt(row)) continue;
      ++acc.non_null[i];
      if (col.type() == AttrType::kNumeric) {
        double v = col.NumberAt(row);
        acc.sum[i] += v;
        acc.min[i] = std::min(acc.min[i], v);
        acc.max[i] = std::max(acc.max[i], v);
      }
    }
  }

  // Output schema: one column per SELECT item, in order.
  std::vector<AttributeDef> out_attrs;
  for (const Resolved& r : items) {
    AttributeDef def;
    def.name = AggColumnName(r.item);
    def.type = r.item.fn.has_value()
                   ? AttrType::kNumeric
                   : table.schema().attr(*r.col).type;
    out_attrs.push_back(std::move(def));
  }
  auto out_schema = Schema::Make(std::move(out_attrs));
  if (!out_schema.ok()) {
    return Status::InvalidArgument("duplicate output column in SELECT list");
  }
  auto derived = std::make_shared<Table>(std::move(*out_schema));
  std::vector<Value> out_row(items.size());
  for (const auto& [key, acc] : groups) {
    size_t group_pos = 0;
    for (size_t i = 0; i < items.size(); ++i) {
      const Resolved& r = items[i];
      if (!r.item.fn.has_value()) {
        // Find this group column's value (items may repeat/group order).
        size_t slot = 0;
        for (size_t g = 0; g < group_cols.size(); ++g) {
          if (table.schema().attr(group_cols[g]).name == r.item.attr) slot = g;
        }
        out_row[i] = acc.group_values[slot];
        ++group_pos;
        continue;
      }
      switch (*r.item.fn) {
        case AggFn::kCount:
          out_row[i] = Value(static_cast<double>(
              r.item.attr.empty() ? acc.count_star : acc.non_null[i]));
          break;
        case AggFn::kSum:
          out_row[i] = Value(acc.sum[i]);
          break;
        case AggFn::kAvg:
          out_row[i] = acc.non_null[i] == 0
                           ? Value::Null()
                           : Value(acc.sum[i] /
                                   static_cast<double>(acc.non_null[i]));
          break;
        case AggFn::kMin:
          out_row[i] = acc.non_null[i] == 0 ? Value::Null() : Value(acc.min[i]);
          break;
        case AggFn::kMax:
          out_row[i] = acc.non_null[i] == 0 ? Value::Null() : Value(acc.max[i]);
          break;
      }
    }
    (void)group_pos;
    DBX_RETURN_IF_ERROR(derived->AppendRow(out_row));
  }

  ExecOutcome out;
  out.kind = ExecOutcome::Kind::kSelection;
  out.derived = derived;
  out.table = derived.get();
  out.rows = derived->AllRows();
  for (const auto& a : derived->schema().attrs()) {
    out.projected_columns.push_back(a.name);
  }

  // ORDER BY over the derived table's columns.
  for (auto rit = stmt.order_by.rbegin(); rit != stmt.order_by.rend(); ++rit) {
    const auto& [attr_name, ascending] = *rit;
    auto idx = derived->schema().IndexOf(attr_name);
    if (!idx) {
      return Status::NotFound("no output column named '" + attr_name + "'");
    }
    const Column& col = derived->col(*idx);
    auto less = [&](uint32_t a, uint32_t b) {
      bool na = col.IsNullAt(a), nb = col.IsNullAt(b);
      if (na || nb) return ascending ? (!na && nb) : (na && !nb);
      if (col.type() == AttrType::kNumeric) {
        double x = col.NumberAt(a), y = col.NumberAt(b);
        return ascending ? x < y : x > y;
      }
      const std::string& x = col.DictString(col.CodeAt(a));
      const std::string& y = col.DictString(col.CodeAt(b));
      return ascending ? x < y : x > y;
    };
    std::stable_sort(out.rows.begin(), out.rows.end(), less);
  }
  if (stmt.limit && out.rows.size() > *stmt.limit) {
    out.rows.resize(*stmt.limit);
  }

  // Render the aggregate result as a small table.
  AsciiTable render;
  render.SetHeader(out.projected_columns);
  size_t shown = std::min<size_t>(out.rows.size(), 25);
  for (size_t i = 0; i < shown; ++i) {
    std::vector<std::string> cells;
    for (size_t c = 0; c < derived->num_cols(); ++c) {
      cells.push_back(derived->At(out.rows[i], c).ToDisplay());
    }
    render.AddRow(std::move(cells));
  }
  out.rendered = StringPrintf("%zu group(s)\n", out.rows.size()) +
                 render.Render();
  return out;
}

Result<ExecOutcome> Engine::ExecuteCreateCadView(CreateCadViewStmt stmt) {
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + stmt.table + "'");
  }
  const Table& table = *it->second;

  CadViewOptions options = defaults_;
  options.pivot_attr = stmt.pivot_attr;
  options.user_compare_attrs = stmt.compare_attrs;
  if (stmt.limit_columns) options.max_compare_attrs = *stmt.limit_columns;
  if (stmt.iunits) options.iunits_per_value = *stmt.iunits;
  options.pivot_values.clear();  // derive from data below when restricted
  options.tracer = tracer_;
  options.trace_parent = trace_parent_;

  // Cache key for this statement: the WHERE clause (canonical text) is the
  // selection context; ORDER BY joins the params because the cached view is
  // the post-ORDER-BY result. Engine builds rediscretize each fragment, so
  // only full hits apply (no partition seeds).
  ScopedSpan probe_span(tracer_, "cache_probe", trace_parent_);
  const char* cache_result = "no-cache";
  std::optional<ViewCacheKey> key;
  if (cache_ != nullptr) {
    if (auto fp = CadViewOptionsFingerprint(options)) {
      std::string params = *fp + "|ob=";
      for (const auto& [attr_name, ascending] : stmt.order_by) {
        params += attr_name + (ascending ? ":1," : ":0,");
      }
      std::vector<std::string> predicates;
      if (stmt.where) predicates.push_back(stmt.where->ToString());
      key = ViewCacheKey::Make(dataset_ids_.at(stmt.table),
                               std::move(predicates), stmt.pivot_attr, {},
                               std::move(params));
      if (auto hit = cache_->Lookup(*key)) {
        probe_span.AddArg("result", "hit");
        probe_span.AddArg("saved_build_ms",
                          FormatDouble(hit->build_cost_ms, 3));
        probe_span.End();
        // Store a copy: REORDER mutates stored views in place and must not
        // disturb the cached entry.
        auto stored = std::make_unique<CadView>(hit->view);
        const CadView* ptr = stored.get();
        views_[stmt.view_name] = std::move(stored);
        ExecOutcome out;
        out.kind = ExecOutcome::Kind::kCadView;
        out.view_name = stmt.view_name;
        out.view = ptr;
        out.rendered = RenderCadView(*ptr);
        out.cache_result = "hit";
        return out;
      }
      cache_result = "miss";
      probe_span.AddArg("result", "miss");
    } else {
      cache_result = "uncacheable";
      probe_span.AddArg("result", "uncacheable");
    }
  } else {
    probe_span.AddArg("result", "no-cache");
  }
  probe_span.End();

  TableSlice slice = TableSlice::All(table);
  if (stmt.where) {
    auto rows = Predicate::Evaluate(stmt.where.get(), slice);
    if (!rows.ok()) return rows.status();
    slice.rows = std::move(*rows);
  }

  // When the WHERE clause pins the pivot attribute to an explicit OR/IN set,
  // the paper's example keeps exactly those values as the view's rows. We
  // keep the simpler rule: rows = pivot values present in the fragment
  // (identical outcome for such queries since other values were filtered out).
  auto view = BuildCadView(slice, options);
  if (!view.ok()) return view.status();

  // ORDER BY: sort each row's IUnits by a compare attribute's top value.
  for (auto rit = stmt.order_by.rbegin(); rit != stmt.order_by.rend(); ++rit) {
    const auto& [attr_name, ascending] = *rit;
    size_t ci = view->compare_attrs.size();
    for (size_t i = 0; i < view->compare_attrs.size(); ++i) {
      if (view->compare_attrs[i].name == attr_name) {
        ci = i;
        break;
      }
    }
    if (ci == view->compare_attrs.size()) {
      return Status::InvalidArgument("ORDER BY attribute '" + attr_name +
                                     "' is not a compare attribute");
    }
    for (CadViewRow& row : view->rows) {
      std::stable_sort(row.iunits.begin(), row.iunits.end(),
                       [&](const IUnit& a, const IUnit& b) {
                         int32_t ka = a.cells[ci].codes.empty()
                                          ? INT32_MAX
                                          : a.cells[ci].codes.front();
                         int32_t kb = b.cells[ci].codes.empty()
                                          ? INT32_MAX
                                          : b.cells[ci].codes.front();
                         return ascending ? ka < kb : ka > kb;
                       });
    }
  }

  if (key.has_value()) {
    cache_->Insert(*key, *view, CachedPartitions{}, view->timings.total_ms,
                   cache_owner_);
  }

  auto stored = std::make_unique<CadView>(std::move(*view));
  const CadView* ptr = stored.get();
  views_[stmt.view_name] = std::move(stored);

  ExecOutcome out;
  out.kind = ExecOutcome::Kind::kCadView;
  out.view_name = stmt.view_name;
  out.view = ptr;
  out.rendered = RenderCadView(*ptr);
  out.cache_result = cache_result;
  return out;
}

Result<ExecOutcome> Engine::ExecuteDescribe(const DescribeStmt& stmt) {
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + stmt.table + "'");
  }
  const Table& table = *it->second;

  AsciiTable render;
  render.SetHeader({"attribute", "type", "queriable", "distinct", "nulls",
                    "min", "max"});
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const AttributeDef& def = table.schema().attr(c);
    const Column& col = table.col(c);
    size_t nulls = 0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      nulls += col.IsNullAt(r);
    }
    std::string distinct, mn, mx;
    if (def.type == AttrType::kCategorical) {
      distinct = std::to_string(col.DictSize());
    } else {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (col.IsNullAt(r)) continue;
        lo = std::min(lo, col.NumberAt(r));
        hi = std::max(hi, col.NumberAt(r));
      }
      if (lo <= hi) {
        mn = Value(lo).ToDisplay();
        mx = Value(hi).ToDisplay();
      }
    }
    render.AddRow({def.name, AttrTypeName(def.type),
                   def.queriable ? "yes" : "no", distinct,
                   std::to_string(nulls), mn, mx});
  }

  ExecOutcome out;
  out.kind = ExecOutcome::Kind::kDescribe;
  out.table = &table;
  out.rendered = StringPrintf("%zu rows x %zu attributes\n", table.num_rows(),
                              table.num_cols()) +
                 render.Render();
  return out;
}

Result<ExecOutcome> Engine::ExecuteShow(const ShowStmt& stmt) {
  ExecOutcome out;
  out.kind = ExecOutcome::Kind::kShow;
  AsciiTable render;
  if (stmt.what == ShowStmt::What::kTables) {
    render.SetHeader({"table", "rows", "attributes"});
    for (const auto& [name, table] : tables_) {
      render.AddRow({name, std::to_string(table->num_rows()),
                     std::to_string(table->num_cols())});
    }
  } else {
    render.SetHeader({"cadview", "pivot", "rows", "compare attrs"});
    for (const auto& [name, view] : views_) {
      render.AddRow({name, view->pivot_attr,
                     std::to_string(view->rows.size()),
                     std::to_string(view->compare_attrs.size())});
    }
  }
  out.rendered = render.row_count() == 0 ? "(none)\n" : render.Render();
  return out;
}

Result<ExecOutcome> Engine::ExecuteDrop(const DropCadViewStmt& stmt) {
  auto it = views_.find(stmt.view_name);
  if (it == views_.end()) {
    return Status::NotFound("no CAD View named '" + stmt.view_name + "'");
  }
  views_.erase(it);
  ExecOutcome out;
  out.kind = ExecOutcome::Kind::kDrop;
  out.view_name = stmt.view_name;
  out.rendered = "dropped " + stmt.view_name + "\n";
  return out;
}

Result<ExecOutcome> Engine::ExecuteHighlight(const HighlightStmt& stmt) {
  auto it = views_.find(stmt.view_name);
  if (it == views_.end()) {
    return Status::NotFound("no CAD View named '" + stmt.view_name + "'");
  }
  const CadView& view = *it->second;
  auto matches = view.FindSimilarIUnits(stmt.pivot_value, stmt.iunit_rank - 1,
                                        stmt.threshold);
  if (!matches.ok()) return matches.status();

  ExecOutcome out;
  out.kind = ExecOutcome::Kind::kHighlight;
  out.view_name = stmt.view_name;
  out.view = &view;
  out.highlights = std::move(*matches);

  RenderOptions ro;
  ro.highlights = out.highlights;
  std::string summary;
  for (const IUnitRef& h : out.highlights) {
    summary += StringPrintf("similar: %s IUnit %zu (similarity %.2f)\n",
                            view.rows[h.row].pivot_value.c_str(), h.iunit + 1,
                            h.similarity);
  }
  out.rendered = RenderCadView(view, ro) + summary;
  return out;
}

Result<ExecOutcome> Engine::ExecuteExplain(ExplainStmt stmt, uint64_t parse_ns) {
  if (stmt.inner == nullptr) {
    return Status::InvalidArgument("EXPLAIN requires a statement to explain");
  }
  // Predicates are move-only, so take the inner statement out of its box
  // rather than copying.
  Statement inner = std::move(stmt.inner->get());
  const std::string inner_sql = StatementToSql(inner);
  const std::string root_name =
      std::string("execute:") + StatementKindName(inner);

  // A fresh collector per EXPLAIN keeps the rendered tree scoped to this one
  // statement even when a session-wide tracer is also attached.
  Tracer tracer;
  if (parse_ns > 0) tracer.Emit("parse", 0, 0, parse_ns);

  Tracer* saved_tracer = tracer_;
  const uint64_t saved_parent = trace_parent_;
  std::optional<Result<ExecOutcome>> inner_result;
  {
    ScopedSpan root(&tracer, root_name);
    root.AddArg("sql", inner_sql);
    SetTracer(&tracer, root.id());
    inner_result.emplace(Execute(std::move(inner)));
    if (!inner_result->ok()) {
      root.AddArg("error", inner_result->status().message());
    }
  }
  tracer_ = saved_tracer;
  trace_parent_ = saved_parent;
  DBX_RETURN_IF_ERROR(inner_result->status());

  std::string text = "EXPLAIN ANALYZE " + inner_sql + "\n\n";
  text += RenderSpanTree(tracer.Events());
  if (cache_ != nullptr) {
    const ViewCacheStats s = cache_->stats();
    text += StringPrintf(
        "cache: hits=%llu misses=%llu inserts=%llu evictions=%llu "
        "seeds=%llu entries=%zu bytes=%zu saved_ms=%s\n",
        static_cast<unsigned long long>(s.hits),
        static_cast<unsigned long long>(s.misses),
        static_cast<unsigned long long>(s.inserts),
        static_cast<unsigned long long>(s.evictions),
        static_cast<unsigned long long>(s.refinement_seeds), s.entries,
        s.bytes_in_use, FormatDouble(s.hit_saved_ms, 3).c_str());
  }
  const ThreadPool::Stats pool_stats = ThreadPool::Shared().GetStats();
  ExportThreadPoolMetrics(pool_stats, MetricsRegistry::Global());
  text += ThreadPoolStatsLine(pool_stats) + "\n";

  ExecOutcome out = std::move(**inner_result);
  out.kind = ExecOutcome::Kind::kExplain;
  out.rendered = std::move(text);
  return out;
}

Result<ExecOutcome> Engine::ExecuteReorder(const ReorderStmt& stmt) {
  auto it = views_.find(stmt.view_name);
  if (it == views_.end()) {
    return Status::NotFound("no CAD View named '" + stmt.view_name + "'");
  }
  CadView& view = *it->second;
  DBX_RETURN_IF_ERROR(view.ReorderRowsBySimilarity(stmt.pivot_value));
  if (!stmt.descending) {
    // ORDER BY SIMILARITY(...) ASC: least similar first.
    std::reverse(view.rows.begin(), view.rows.end());
  }
  ExecOutcome out;
  out.kind = ExecOutcome::Kind::kReorder;
  out.view_name = stmt.view_name;
  out.view = &view;
  out.rendered = RenderCadView(view);
  return out;
}

}  // namespace dbx
