// Copyright (c) DBExplorer reproduction authors.
// Parsed statements of the CADVIEW SQL dialect (paper §2.1.2):
//
//   CREATE CADVIEW v AS SET pivot = attr SELECT a1, a2 FROM t [WHERE ...]
//     [LIMIT COLUMNS m] [IUNITS k] [ORDER BY attr [ASC|DESC], ...]
//   HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(value, rank) > threshold
//   REORDER ROWS IN v ORDER BY SIMILARITY(value) [DESC]
//   SELECT ... FROM t [WHERE ...] [ORDER BY a [ASC|DESC], ...] [LIMIT n]
//   DESCRIBE t
//   SHOW TABLES | SHOW CADVIEWS
//   DROP CADVIEW v

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/relation/predicate.h"

namespace dbx {

/// Aggregate functions for GROUP BY queries.
enum class AggFn { kCount, kAvg, kSum, kMin, kMax };

/// One item of an aggregate SELECT list: either a grouping column
/// (fn unset) or an aggregate over an attribute ("*" for COUNT(*)).
struct SelectItem {
  std::optional<AggFn> fn;
  std::string attr;  // empty for COUNT(*)
};

/// Plain lookup query.
struct SelectStmt {
  bool star = false;
  std::vector<std::string> columns;  // empty iff star (plain projection)
  /// Aggregate form: non-empty items + group_by make this a GROUP BY query
  /// (columns/star are then unused).
  std::vector<SelectItem> items;
  std::vector<std::string> group_by;
  std::string table;
  PredicatePtr where;  // may be null (no WHERE)
  /// ORDER BY columns, applied left to right (attr, ascending). For
  /// aggregate queries the names refer to output columns (e.g. "count",
  /// "avg_Price", or a grouping attribute).
  std::vector<std::pair<std::string, bool>> order_by;
  std::optional<size_t> limit;

  bool is_aggregate() const { return !items.empty(); }
};

/// The exploratory-search statement.
struct CreateCadViewStmt {
  std::string view_name;
  std::string pivot_attr;
  std::vector<std::string> compare_attrs;  // explicit SELECT list (may be empty)
  std::string table;
  PredicatePtr where;  // may be null
  std::optional<size_t> limit_columns;  // M
  std::optional<size_t> iunits;         // K
  /// ORDER BY attr [ASC|DESC] — sorts each row's IUnits by the named
  /// attribute's representative value.
  std::vector<std::pair<std::string, bool>> order_by;  // (attr, ascending)
};

/// Problem 3 as a statement.
struct HighlightStmt {
  std::string view_name;
  std::string pivot_value;
  size_t iunit_rank = 1;  // 1-based, as in the paper's SIMILARITY(value, 3)
  double threshold = 0.0;
};

/// Problem 4 as a statement.
struct ReorderStmt {
  std::string view_name;
  std::string pivot_value;
  bool descending = true;  // ORDER BY SIMILARITY(...) DESC
};

/// Schema/profile inspection: DESCRIBE <table>.
struct DescribeStmt {
  std::string table;
};

/// View removal: DROP CADVIEW <name>.
struct DropCadViewStmt {
  std::string view_name;
};

/// Catalog listing: SHOW TABLES / SHOW CADVIEWS.
struct ShowStmt {
  enum class What { kTables, kCadViews };
  What what = What::kTables;
};

class StatementBox;  // completed below, after the Statement alias

/// EXPLAIN [ANALYZE] <statement>: execute the inner statement with tracing
/// on and render the per-stage span tree instead of the normal output. The
/// bare EXPLAIN form is accepted as a synonym — this engine always executes
/// (there is no plan-only mode worth printing for an in-memory pipeline).
struct ExplainStmt {
  bool analyze = true;
  /// The wrapped statement, boxed because the variant cannot contain itself.
  std::shared_ptr<StatementBox> inner;
};

using Statement =
    std::variant<SelectStmt, CreateCadViewStmt, HighlightStmt, ReorderStmt,
                 DescribeStmt, ShowStmt, DropCadViewStmt, ExplainStmt>;

/// Heap box for the recursive ExplainStmt -> Statement edge.
class StatementBox {
 public:
  explicit StatementBox(Statement stmt) : stmt_(std::move(stmt)) {}
  const Statement& get() const { return stmt_; }
  Statement& get() { return stmt_; }

 private:
  Statement stmt_;
};

}  // namespace dbx
