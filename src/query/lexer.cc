#include "src/query/lexer.h"

#include <cctype>
#include <unordered_set>

#include "src/util/string_util.h"

namespace dbx {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "CREATE",  "CADVIEW", "AS",       "SET",     "PIVOT",   "SELECT",
      "FROM",    "WHERE",   "LIMIT",    "COLUMNS", "IUNITS",  "ORDER",
      "BY",      "ASC",     "DESC",     "AND",     "OR",      "NOT",
      "BETWEEN", "IN",      "HIGHLIGHT","SIMILAR", "SIMILARITY", "REORDER",
      "ROWS",    "TRUE",    "FALSE",    "IS",      "NULL",    "DISTINCT",
      "GROUP",   "COUNT",   "AVG",      "SUM",     "MIN",     "MAX",
      "DESCRIBE","SHOW",    "TABLES",   "CADVIEWS", "DROP",
      "EXPLAIN", "ANALYZE",
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsKeyword(const std::string& upper_word) {
  return Keywords().count(upper_word) > 0;
}

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;

    if (c == '\'') {  // string literal with '' escape
      std::string body;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            body += '\'';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          body += sql[i++];
        }
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " + std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(body);
      out.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        ++i;
      }
      double value;
      if (!ParseDouble(sql.substr(start, i - start), &value)) {
        return Status::InvalidArgument("bad numeric literal at offset " +
                                       std::to_string(start));
      }
      // The paper's shorthand: 10K, 30K, 1.5M.
      if (i < n && (sql[i] == 'K' || sql[i] == 'k')) {
        value *= 1e3;
        ++i;
      } else if (i < n && (sql[i] == 'M' || sql[i] == 'm') &&
                 !(i + 1 < n && IsIdentChar(sql[i + 1]))) {
        value *= 1e6;
        ++i;
      }
      tok.type = TokenType::kNumber;
      tok.number = value;
      tok.text = sql.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = std::move(upper);
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = std::move(word);
      }
      out.push_back(std::move(tok));
      continue;
    }

    // Operators.
    auto two = [&](const char* op) {
      return i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1];
    };
    if (two("!=") || two("<>")) {
      tok.type = TokenType::kOperator;
      tok.text = "!=";
      i += 2;
    } else if (two("<=") || two(">=")) {
      tok.type = TokenType::kOperator;
      tok.text = sql.substr(i, 2);
      i += 2;
    } else if (std::string("=<>(),*.;").find(c) != std::string::npos) {
      tok.type = TokenType::kOperator;
      tok.text = std::string(1, c);
      ++i;
    } else {
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at offset " +
                                     std::to_string(i));
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace dbx
