// Copyright (c) DBExplorer reproduction authors.
// Statement execution: a catalog of registered tables, named CAD Views, and
// the bridge from parsed statements to the core builder. This is the
// programmatic equivalent of the paper's extended-SQL examples in §2.1.2.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cad_view.h"
#include "src/core/cad_view_builder.h"
#include "src/core/view_cache.h"
#include "src/obs/query_log.h"
#include "src/obs/trace.h"
#include "src/query/ast.h"
#include "src/util/result.h"

namespace dbx {

/// What a statement produced.
struct ExecOutcome {
  enum class Kind { kSelection, kCadView, kHighlight, kReorder, kDescribe,
                    kShow, kDrop, kExplain };
  Kind kind = Kind::kSelection;

  // kSelection
  const Table* table = nullptr;
  RowSet rows;
  std::vector<std::string> projected_columns;
  /// For aggregate (GROUP BY) queries: the materialized result table that
  /// `table` points at. Null for plain selections.
  std::shared_ptr<Table> derived;

  // kCadView / kHighlight / kReorder
  std::string view_name;
  const CadView* view = nullptr;

  // kHighlight
  std::vector<IUnitRef> highlights;

  /// Pre-rendered text (CAD View table, highlight summary, ...) for REPLs.
  std::string rendered;

  /// Canonical form of the executed statement (set by ExecuteSql; empty for
  /// pre-parsed statements) — what the query log records.
  std::string canonical_sql;

  /// View-cache probe outcome for CREATE CADVIEW statements:
  /// "hit" / "miss" / "uncacheable" / "no-cache"; "none" for every other
  /// statement kind.
  std::string cache_result = "none";
};

/// The exploratory-search engine: executes dialect statements against
/// registered tables and keeps created CAD Views by name.
class Engine {
 public:
  /// Registers `table` under `name`; the table must outlive the engine.
  /// Re-registering a name replaces it. Each registration mints a fresh
  /// snapshot dataset id (see MakeSnapshotDatasetId) that keys any attached
  /// cache, so views built over a superseded registration can never be
  /// served for the new one — even by a cache shared with other engines.
  void RegisterTable(const std::string& name, const Table* table);

  /// Registers `table` under `name` with a caller-owned snapshot dataset id.
  /// Several engines registering the *same* immutable snapshot under the
  /// same id share cache entries (the multi-session server's sessions); the
  /// caller owns invalidation for the id's lifecycle.
  void RegisterTableSnapshot(const std::string& name, const Table* table,
                             std::string dataset_id);

  /// As above, but the engine shares ownership of the snapshot — the form a
  /// storage backend hands out (LoadTable returns shared_ptr<const Table> +
  /// content-addressed id). The snapshot outlives any re-registration of the
  /// name for as long as this engine does.
  void RegisterTableSnapshot(const std::string& name,
                             std::shared_ptr<const Table> table,
                             std::string dataset_id);

  /// Attributes this engine's cache inserts to `owner` for per-session byte
  /// budgeting in a shared ViewCache ("" = unattributed).
  void SetCacheOwner(std::string owner) { cache_owner_ = std::move(owner); }

  /// Default options applied to every CREATE CADVIEW (seed, discretizer,
  /// optimizations); statement clauses override M/K/pivot/attrs.
  void SetDefaultCadViewOptions(CadViewOptions options) {
    defaults_ = std::move(options);
  }

  /// Attaches a (possibly shared) view cache: repeated CREATE CADVIEW
  /// statements over an unchanged table short-circuit to the cached build.
  /// Re-registering a table invalidates its entries. nullptr detaches.
  void SetViewCache(std::shared_ptr<ViewCache> cache) {
    cache_ = std::move(cache);
  }
  const std::shared_ptr<ViewCache>& view_cache() const { return cache_; }

  /// Attaches a span collector: CREATE CADVIEW statements emit cache_probe
  /// and pipeline-stage spans under `trace_parent`. EXPLAIN [ANALYZE]
  /// temporarily installs its own tracer regardless of this setting.
  void SetTracer(Tracer* tracer, uint64_t trace_parent = 0) {
    tracer_ = tracer == nullptr ? Tracer::Disabled() : tracer;
    trace_parent_ = trace_parent;
  }

  /// Attaches a query log: every ExecuteSql appends one record (scope label
  /// as the session field, canonical statement text, status, cache probe
  /// outcome, rendered bytes, total latency). The server dispatcher logs at
  /// the request layer instead — richer records with trace ids and stage
  /// latencies — so it leaves this unset to avoid double logging. nullptr
  /// detaches.
  void SetQueryLog(QueryLog* log, std::string scope_label = "engine") {
    query_log_ = log;
    query_log_scope_ = std::move(scope_label);
  }

  /// Parses and executes one statement.
  [[nodiscard]] Result<ExecOutcome> ExecuteSql(const std::string& sql);

  /// Executes an already-parsed statement.
  [[nodiscard]] Result<ExecOutcome> Execute(Statement statement);

  /// Fetches a stored view; Status::NotFound for unknown names.
  [[nodiscard]] Result<const CadView*> GetView(const std::string& name) const;

 private:
  [[nodiscard]] Result<ExecOutcome> ExecuteSelect(SelectStmt stmt);
  [[nodiscard]]
  Result<ExecOutcome> ExecuteAggregate(const Table& table, SelectStmt stmt);
  [[nodiscard]]
  Result<ExecOutcome> ExecuteCreateCadView(CreateCadViewStmt stmt);
  [[nodiscard]] Result<ExecOutcome> ExecuteHighlight(const HighlightStmt& stmt);
  [[nodiscard]] Result<ExecOutcome> ExecuteReorder(const ReorderStmt& stmt);
  [[nodiscard]] Result<ExecOutcome> ExecuteDescribe(const DescribeStmt& stmt);
  [[nodiscard]] Result<ExecOutcome> ExecuteShow(const ShowStmt& stmt);
  [[nodiscard]] Result<ExecOutcome> ExecuteDrop(const DropCadViewStmt& stmt);
  [[nodiscard]]
  Result<ExecOutcome> ExecuteExplain(ExplainStmt stmt, uint64_t parse_ns);

  std::map<std::string, const Table*> tables_;
  /// Snapshot dataset id of each registered name — the cache keying
  /// identity. Always present for a registered table.
  std::map<std::string, std::string> dataset_ids_;
  /// Keep-alive for snapshots registered via the shared_ptr overload.
  std::map<std::string, std::shared_ptr<const Table>> owned_tables_;
  std::map<std::string, std::unique_ptr<CadView>> views_;
  CadViewOptions defaults_;
  std::shared_ptr<ViewCache> cache_;
  std::string cache_owner_;
  Tracer* tracer_ = Tracer::Disabled();
  uint64_t trace_parent_ = 0;
  QueryLog* query_log_ = nullptr;
  std::string query_log_scope_;
  /// Parse time of the statement ExecuteSql just handed to Execute — the
  /// "parse" span of an EXPLAIN ANALYZE (0 for pre-parsed statements).
  uint64_t last_parse_ns_ = 0;
};

}  // namespace dbx
