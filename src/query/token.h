// Copyright (c) DBExplorer reproduction authors.
// Token model for the CADVIEW SQL dialect (paper §2.1.2).

#pragma once

#include <string>

namespace dbx {

enum class TokenType {
  kEnd,
  kIdentifier,  // bareword: attribute, table, view names, or bare values
  kNumber,      // numeric literal (K/M suffixes already expanded)
  kString,      // 'quoted literal'
  kKeyword,     // normalized upper-case SQL keyword
  kOperator,    // = != < <= > >= ( ) , * . ;
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // identifier/keyword/operator spelling, string body
  double number = 0.0; // for kNumber
  size_t offset = 0;   // byte offset in the input, for error messages
};

}  // namespace dbx
