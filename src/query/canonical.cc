#include "src/query/canonical.h"

#include <cmath>

#include "src/util/string_util.h"

namespace dbx {
namespace {

// Numeric literal form the lexer reads back to the same double: whole values
// print without a fraction, others with fixed six digits (idempotent through
// a parse/print cycle).
std::string NumberToSql(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return FormatDouble(v, 6);
}

void AppendWhere(std::string* out, const PredicatePtr& where) {
  if (where != nullptr) {
    *out += " WHERE " + where->ToString();
  }
}

void AppendOrderBy(std::string* out,
                   const std::vector<std::pair<std::string, bool>>& order_by) {
  if (order_by.empty()) return;
  *out += " ORDER BY ";
  for (size_t i = 0; i < order_by.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += order_by[i].first + (order_by[i].second ? " ASC" : " DESC");
  }
}

std::string SelectItemToSql(const SelectItem& item) {
  if (!item.fn.has_value()) return item.attr;
  const char* fn = "";
  switch (*item.fn) {
    case AggFn::kCount: fn = "COUNT"; break;
    case AggFn::kAvg: fn = "AVG"; break;
    case AggFn::kSum: fn = "SUM"; break;
    case AggFn::kMin: fn = "MIN"; break;
    case AggFn::kMax: fn = "MAX"; break;
  }
  return std::string(fn) + "(" + (item.attr.empty() ? "*" : item.attr) + ")";
}

std::string ToSql(const SelectStmt& stmt) {
  std::string sql = "SELECT ";
  if (stmt.is_aggregate()) {
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += SelectItemToSql(stmt.items[i]);
    }
  } else if (stmt.star) {
    sql += "*";
  } else {
    sql += Join(stmt.columns, ", ");
  }
  sql += " FROM " + stmt.table;
  AppendWhere(&sql, stmt.where);
  if (!stmt.group_by.empty()) {
    sql += " GROUP BY " + Join(stmt.group_by, ", ");
  }
  AppendOrderBy(&sql, stmt.order_by);
  if (stmt.limit.has_value()) {
    sql += " LIMIT " + std::to_string(*stmt.limit);
  }
  return sql;
}

std::string ToSql(const CreateCadViewStmt& stmt) {
  std::string sql = "CREATE CADVIEW " + stmt.view_name + " AS SET PIVOT = " +
                    stmt.pivot_attr + " SELECT ";
  sql += stmt.compare_attrs.empty() ? "*" : Join(stmt.compare_attrs, ", ");
  sql += " FROM " + stmt.table;
  AppendWhere(&sql, stmt.where);
  if (stmt.limit_columns.has_value()) {
    sql += " LIMIT COLUMNS " + std::to_string(*stmt.limit_columns);
  }
  if (stmt.iunits.has_value()) {
    sql += " IUNITS " + std::to_string(*stmt.iunits);
  }
  AppendOrderBy(&sql, stmt.order_by);
  return sql;
}

std::string ToSql(const HighlightStmt& stmt) {
  return "HIGHLIGHT SIMILAR IUNITS IN " + stmt.view_name +
         " WHERE SIMILARITY(" + QuoteSqlString(stmt.pivot_value) + ", " +
         std::to_string(stmt.iunit_rank) + ") > " +
         NumberToSql(stmt.threshold);
}

std::string ToSql(const ReorderStmt& stmt) {
  return "REORDER ROWS IN " + stmt.view_name + " ORDER BY SIMILARITY(" +
         QuoteSqlString(stmt.pivot_value) + ")" +
         (stmt.descending ? " DESC" : " ASC");
}

std::string ToSql(const DescribeStmt& stmt) { return "DESCRIBE " + stmt.table; }

std::string ToSql(const ShowStmt& stmt) {
  return stmt.what == ShowStmt::What::kTables ? "SHOW TABLES"
                                              : "SHOW CADVIEWS";
}

std::string ToSql(const DropCadViewStmt& stmt) {
  return "DROP CADVIEW " + stmt.view_name;
}

std::string ToSql(const ExplainStmt& stmt) {
  std::string sql = stmt.analyze ? "EXPLAIN ANALYZE" : "EXPLAIN";
  if (stmt.inner != nullptr) sql += " " + StatementToSql(stmt.inner->get());
  return sql;
}

}  // namespace

std::string StatementToSql(const Statement& statement) {
  return std::visit([](const auto& stmt) { return ToSql(stmt); }, statement);
}

}  // namespace dbx
