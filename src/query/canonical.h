// Copyright (c) DBExplorer reproduction authors.
// Canonical pretty-printing of parsed dialect statements: the inverse of
// ParseStatement. Round-trip law, pinned by the property tests in
// tests/query_test.cc: for any statement S the printer emits,
// StatementToSql(ParseStatement(StatementToSql(S))) == StatementToSql(S).
// The view cache keys selection contexts on canonical predicate text, so this
// unparser (and Predicate::ToString, which it reuses for WHERE clauses) is
// part of the cache-correctness surface.

#pragma once

#include <string>

#include "src/query/ast.h"

namespace dbx {

/// Renders `statement` as parseable dialect SQL in canonical form: uppercase
/// keywords, single spaces, quoted string literals, explicit ASC/DESC.
std::string StatementToSql(const Statement& statement);

}  // namespace dbx
