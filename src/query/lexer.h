// Copyright (c) DBExplorer reproduction authors.
// Tokenizer for the CADVIEW SQL dialect. Handles the paper's numeric
// shorthand (10K, 1.5M), single-quoted strings with '' escapes, and
// case-insensitive keywords.

#pragma once

#include <string>
#include <vector>

#include "src/query/token.h"
#include "src/util/result.h"

namespace dbx {

/// Tokenizes `sql`. The final token is always kEnd. Fails on unterminated
/// strings and unexpected characters.
[[nodiscard]] Result<std::vector<Token>> Lex(const std::string& sql);

/// True when `word` (upper-cased) is a keyword of the dialect.
bool IsKeyword(const std::string& upper_word);

}  // namespace dbx
