// Copyright (c) DBExplorer reproduction authors.
// Materialization: turning a (slice, projection) back into a standalone
// Table — result-set export for the REPL, CSV dumps of selections, and test
// fixtures.

#pragma once

#include <string>
#include <vector>

#include "src/relation/table.h"
#include "src/util/result.h"

namespace dbx {

/// Copies the given rows and columns of `slice` into a new Table. An empty
/// `columns` list keeps every attribute. Fails on unknown column names.
[[nodiscard]] Result<Table> MaterializeSlice(const TableSlice& slice,
                               const std::vector<std::string>& columns = {});

}  // namespace dbx
