// Copyright (c) DBExplorer reproduction authors.
// Cell values for the in-memory relational engine.

#pragma once

#include <string>
#include <variant>

#include "src/util/string_util.h"

namespace dbx {

/// Logical attribute types. The CAD View pipeline treats attributes either as
/// categorical (string-valued, dictionary encoded) or numeric (double), with
/// numeric attributes discretized into bins before summarization (paper
/// §2.2.1: "cardinality reduction ... as in histogram construction").
enum class AttrType {
  kCategorical,
  kNumeric,
};

inline const char* AttrTypeName(AttrType t) {
  return t == AttrType::kCategorical ? "categorical" : "numeric";
}

/// A single cell: null, a categorical string, or a numeric double.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}
  explicit Value(double d) : v_(d) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }

  /// Requires is_string().
  const std::string& AsString() const { return std::get<std::string>(v_); }
  /// Requires is_number().
  double AsNumber() const { return std::get<double>(v_); }

  /// Display form: "" for null, the string, or a trimmed numeral.
  std::string ToDisplay() const {
    if (is_null()) return "";
    if (is_string()) return AsString();
    double d = AsNumber();
    if (d == static_cast<int64_t>(d)) {
      return std::to_string(static_cast<int64_t>(d));
    }
    return FormatDouble(d, 3);
  }

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  std::variant<std::monostate, std::string, double> v_;
};

}  // namespace dbx
