#include "src/relation/materialize.h"

namespace dbx {

Result<Table> MaterializeSlice(const TableSlice& slice,
                               const std::vector<std::string>& columns) {
  if (slice.table == nullptr) {
    return Status::InvalidArgument("null table in slice");
  }
  const Table& src = *slice.table;

  std::vector<size_t> col_indices;
  std::vector<AttributeDef> attrs;
  if (columns.empty()) {
    for (size_t i = 0; i < src.num_cols(); ++i) {
      col_indices.push_back(i);
      attrs.push_back(src.schema().attr(i));
    }
  } else {
    for (const std::string& name : columns) {
      auto idx = src.schema().IndexOf(name);
      if (!idx) return Status::NotFound("no attribute named '" + name + "'");
      col_indices.push_back(*idx);
      attrs.push_back(src.schema().attr(*idx));
    }
  }

  DBX_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  Table out(std::move(schema));
  std::vector<Value> row(col_indices.size());
  for (uint32_t r : slice.rows) {
    if (r >= src.num_rows()) {
      return Status::OutOfRange("row id " + std::to_string(r) +
                                " out of range");
    }
    for (size_t c = 0; c < col_indices.size(); ++c) {
      row[c] = src.At(r, col_indices[c]);
    }
    DBX_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace dbx
