// Copyright (c) DBExplorer reproduction authors.
// Predicate trees for selections. These are what a WHERE clause, a facet
// selection, or an exploratory-task condition compiles to.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/relation/table.h"
#include "src/util/result.h"

namespace dbx {

/// Comparison operators for leaf predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// A boolean condition over one tuple. Build leaves with the factory
/// functions, combine with And/Or/Not, then Evaluate over a table.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// True iff the predicate accepts `row` of `table`.
  /// Null cells never satisfy comparison leaves (SQL-like semantics).
  virtual bool Matches(const Table& table, uint32_t row) const = 0;

  /// Human-readable SQL-ish rendering, for logs and tests.
  virtual std::string ToString() const = 0;

  /// Binds attribute names to column indices; Status::NotFound on unknown
  /// attributes. Must be called (directly or via Evaluate) before Matches.
  [[nodiscard]] virtual Status Bind(const Schema& schema) = 0;

  /// Binds and evaluates over `slice`, returning the accepted rows (ascending).
  [[nodiscard]]
  static Result<RowSet> Evaluate(Predicate* pred, const TableSlice& slice);
};

using PredicatePtr = std::unique_ptr<Predicate>;

/// attr <op> value. Numeric comparisons on numeric columns, lexicographic
/// equality (kEq/kNe only) on categorical columns.
PredicatePtr MakeCmp(std::string attr, CmpOp op, Value value);

/// lo <= attr <= hi (numeric columns).
PredicatePtr MakeBetween(std::string attr, double lo, double hi);

/// attr IN (values...) for categorical columns.
PredicatePtr MakeIn(std::string attr, std::vector<std::string> values);

/// Conjunction; an empty child list accepts every row.
PredicatePtr MakeAnd(std::vector<PredicatePtr> children);

/// Disjunction; an empty child list rejects every row.
PredicatePtr MakeOr(std::vector<PredicatePtr> children);

/// Negation.
PredicatePtr MakeNot(PredicatePtr child);

/// Always-true predicate (the empty WHERE clause).
PredicatePtr MakeTrue();

}  // namespace dbx
