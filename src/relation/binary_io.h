// Copyright (c) DBExplorer reproduction authors.
// Compact binary table snapshots ("DBXT" format): dictionary-encoded
// categorical columns and raw doubles, with a versioned header and length
// checks. Loading a 40K-row snapshot is ~100x faster than re-parsing CSV and
// preserves attribute metadata (queriability) that CSV cannot carry.
//
// Layout (all integers little-endian):
//   magic "DBXT" | u32 version | u64 num_rows | u32 num_attrs
//   per attr: u32 name_len | name | u8 type | u8 queriable
//   per categorical attr: u32 dict_size | {u32 len | bytes}* | i32 codes[num_rows]
//   per numeric attr:     f64 values[num_rows] (NaN = null)

#pragma once

#include <string>

#include "src/relation/table.h"
#include "src/util/result.h"

namespace dbx {

/// Serializes `table` into the DBXT byte format.
std::string ToBinary(const Table& table);

/// Parses a DBXT byte string. Fails with Corruption on any structural
/// problem (bad magic, truncation, oversized counts).
[[nodiscard]] Result<Table> FromBinary(const std::string& bytes);

/// File variants.
[[nodiscard]] Status WriteBinary(const Table& table, const std::string& path);
[[nodiscard]] Result<Table> ReadBinary(const std::string& path);

}  // namespace dbx
