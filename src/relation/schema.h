// Copyright (c) DBExplorer reproduction authors.
// Relation schemas: ordered, named, typed attributes.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/relation/value.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace dbx {

/// One attribute (column) of a relation.
struct AttributeDef {
  std::string name;
  AttrType type = AttrType::kCategorical;
  /// Whether the attribute is exposed in the query interface. The paper's
  /// Limitation 2 ("Querying Hidden Attributes") hinges on attributes that
  /// exist in the data but are not queriable through the interface.
  bool queriable = true;
};

/// Ordered set of attributes with name lookup. Immutable once built.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; fails on duplicate or empty attribute names.
  [[nodiscard]] static Result<Schema> Make(std::vector<AttributeDef> attrs) {
    Schema s;
    for (auto& a : attrs) {
      if (a.name.empty()) {
        return Status::InvalidArgument("attribute with empty name");
      }
      if (s.index_.count(a.name)) {
        return Status::InvalidArgument("duplicate attribute: " + a.name);
      }
      s.index_[a.name] = s.attrs_.size();
      s.attrs_.push_back(std::move(a));
    }
    return s;
  }

  size_t size() const { return attrs_.size(); }
  const AttributeDef& attr(size_t i) const { return attrs_[i]; }
  const std::vector<AttributeDef>& attrs() const { return attrs_; }

  /// Index of `name`, or nullopt when absent.
  std::optional<size_t> IndexOf(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(const std::string& name) const { return index_.count(name) > 0; }

 private:
  std::vector<AttributeDef> attrs_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace dbx
