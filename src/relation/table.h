// Copyright (c) DBExplorer reproduction authors.
// The in-memory relation: a schema plus one Column per attribute, and the
// RowSet/TableSlice machinery the query layer and the CAD View pipeline use
// to operate on selections without copying tuples.

#pragma once

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/relation/column.h"
#include "src/relation/schema.h"
#include "src/util/result.h"

namespace dbx {

/// Row indices into a Table, in ascending order. The universal currency for
/// selections (WHERE clauses, facet filters, pivot-value partitions).
using RowSet = std::vector<uint32_t>;

/// A relation with columnar storage. Append-only.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return schema_.size(); }

  const Column& col(size_t i) const { return *cols_[i]; }
  Column& col(size_t i) { return *cols_[i]; }

  /// Column by name; Status::NotFound for unknown attributes.
  [[nodiscard]] Result<const Column*> ColByName(const std::string& name) const;

  /// Appends one tuple; `row` must have one Value per attribute with matching
  /// types (nulls always allowed).
  [[nodiscard]] Status AppendRow(const std::vector<Value>& row);

  /// Cell accessor (generic; allocates for categorical cells).
  Value At(size_t row, size_t col_idx) const { return cols_[col_idx]->ValueAt(row); }

  /// All row ids [0, num_rows).
  RowSet AllRows() const {
    RowSet r(num_rows_);
    std::iota(r.begin(), r.end(), 0u);
    return r;
  }

 private:
  Schema schema_;
  std::vector<std::unique_ptr<Column>> cols_;
  size_t num_rows_ = 0;
};

/// A non-owning view of (table, selected rows). The CAD View is always built
/// over a slice — "the fragment of the database that is currently selected".
struct TableSlice {
  const Table* table = nullptr;
  RowSet rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  /// Slice covering the whole table.
  static TableSlice All(const Table& t) { return {&t, t.AllRows()}; }
};

}  // namespace dbx
