// Copyright (c) DBExplorer reproduction authors.
// Columnar storage: dictionary-encoded categorical columns and dense numeric
// columns. Dictionary codes are what the statistics and clustering layers
// operate on, which keeps the hot loops integer-only.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/relation/value.h"

namespace dbx {

/// Sentinel code for a null categorical cell.
inline constexpr int32_t kNullCode = -1;

/// A single typed column. Categorical cells are stored as int32 codes into a
/// per-column dictionary; numeric cells as doubles (NaN encodes null).
class Column {
 public:
  explicit Column(AttrType type) : type_(type) {}

  AttrType type() const { return type_; }
  size_t size() const {
    return type_ == AttrType::kCategorical ? codes_.size() : nums_.size();
  }

  // --- Appending -----------------------------------------------------------

  /// Appends a categorical value, interning it in the dictionary.
  /// Requires type() == kCategorical.
  void AppendString(const std::string& s) {
    codes_.push_back(Intern(s));
  }

  /// Appends a numeric value. Requires type() == kNumeric.
  void AppendNumber(double d) { nums_.push_back(d); }

  /// Appends a null of the column's type.
  void AppendNull() {
    if (type_ == AttrType::kCategorical) {
      codes_.push_back(kNullCode);
    } else {
      nums_.push_back(std::numeric_limits<double>::quiet_NaN());
    }
  }

  /// Appends a generic Value (must match the column type or be null).
  /// Returns false on a type mismatch.
  bool AppendValue(const Value& v) {
    if (v.is_null()) {
      AppendNull();
      return true;
    }
    if (type_ == AttrType::kCategorical) {
      if (!v.is_string()) return false;
      AppendString(v.AsString());
      return true;
    }
    if (!v.is_number()) return false;
    AppendNumber(v.AsNumber());
    return true;
  }

  // --- Cell access ---------------------------------------------------------

  /// Dictionary code at `row` (categorical columns only).
  int32_t CodeAt(size_t row) const { return codes_[row]; }

  /// Numeric value at `row` (numeric columns only). NaN means null.
  double NumberAt(size_t row) const { return nums_[row]; }

  bool IsNullAt(size_t row) const {
    return type_ == AttrType::kCategorical ? codes_[row] == kNullCode
                                           : std::isnan(nums_[row]);
  }

  /// Generic cell access (allocates for categorical cells).
  Value ValueAt(size_t row) const {
    if (IsNullAt(row)) return Value::Null();
    if (type_ == AttrType::kCategorical) return Value(dict_[codes_[row]]);
    return Value(nums_[row]);
  }

  // --- Dictionary ----------------------------------------------------------

  /// Number of distinct non-null categorical values seen so far.
  size_t DictSize() const { return dict_.size(); }

  /// The string for dictionary code `code` (0 <= code < DictSize()).
  const std::string& DictString(int32_t code) const { return dict_[code]; }

  /// Code for `s`, or kNullCode when `s` was never interned.
  int32_t CodeOf(const std::string& s) const {
    auto it = dict_index_.find(s);
    return it == dict_index_.end() ? kNullCode : it->second;
  }

  /// Interns `s` (idempotent) and returns its code.
  int32_t Intern(const std::string& s) {
    auto it = dict_index_.find(s);
    if (it != dict_index_.end()) return it->second;
    int32_t code = static_cast<int32_t>(dict_.size());
    dict_.push_back(s);
    dict_index_[s] = code;
    return code;
  }

  /// Raw code vector (categorical columns; size() entries).
  const std::vector<int32_t>& codes() const { return codes_; }
  /// Raw numeric vector (numeric columns; size() entries).
  const std::vector<double>& numbers() const { return nums_; }

 private:
  AttrType type_;
  std::vector<int32_t> codes_;   // kCategorical payload
  std::vector<double> nums_;     // kNumeric payload
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> dict_index_;
};

}  // namespace dbx
