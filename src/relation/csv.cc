#include "src/relation/csv.h"

#include <fstream>
#include <sstream>

#include "src/util/string_util.h"

namespace dbx {
namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV record honoring quotes. `pos` advances past the record's
/// trailing newline. Returns false at end of input.
bool NextRecord(const std::string& csv, size_t* pos,
                std::vector<std::string>* fields) {
  if (*pos >= csv.size()) return false;
  fields->clear();
  std::string cur;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < csv.size(); ++i) {
    char c = csv[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields->push_back(std::move(cur));
      cur.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // Swallow; handles CRLF.
    } else {
      cur += c;
    }
  }
  fields->push_back(std::move(cur));
  *pos = i;
  return true;
}

}  // namespace

std::string ToCsvString(const Table& table) {
  std::string out;
  const Schema& s = table.schema();
  {
    std::vector<std::string> header;
    header.reserve(s.size());
    for (const auto& a : s.attrs()) header.push_back(QuoteField(a.name));
    out += Join(header, ",");
    out += '\n';
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> fields;
    fields.reserve(s.size());
    for (size_t c = 0; c < s.size(); ++c) {
      fields.push_back(QuoteField(table.At(r, c).ToDisplay()));
    }
    out += Join(fields, ",");
    out += '\n';
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open for write: " + path);
  f << ToCsvString(table);
  if (!f) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Table> ParseCsvString(const std::string& csv, const Schema& schema) {
  size_t pos = 0;
  std::vector<std::string> fields;
  if (!NextRecord(csv, &pos, &fields)) {
    return Status::Corruption("empty CSV: no header");
  }
  if (fields.size() != schema.size()) {
    return Status::Corruption(
        "CSV header arity " + std::to_string(fields.size()) +
        " != schema arity " + std::to_string(schema.size()));
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (std::string(Trim(fields[i])) != schema.attr(i).name) {
      return Status::Corruption("CSV header mismatch at column " +
                                std::to_string(i) + ": got '" + fields[i] +
                                "', want '" + schema.attr(i).name + "'");
    }
  }

  Table table(schema);
  std::vector<Value> row(schema.size());
  size_t line = 1;
  while (NextRecord(csv, &pos, &fields)) {
    ++line;
    if (fields.size() == 1 && fields[0].empty()) continue;  // trailing newline
    if (fields.size() != schema.size()) {
      return Status::Corruption("CSV arity mismatch at line " +
                                std::to_string(line));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      const std::string& f = fields[i];
      if (f.empty()) {
        row[i] = Value::Null();
      } else if (schema.attr(i).type == AttrType::kCategorical) {
        row[i] = Value(f);
      } else {
        double d;
        row[i] = ParseDouble(f, &d) ? Value(d) : Value::Null();
      }
    }
    DBX_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Result<Table> ReadCsv(const std::string& path, const Schema& schema) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ParseCsvString(ss.str(), schema);
}

}  // namespace dbx
