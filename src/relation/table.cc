#include "src/relation/table.h"

namespace dbx {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  cols_.reserve(schema_.size());
  for (const AttributeDef& a : schema_.attrs()) {
    cols_.push_back(std::make_unique<Column>(a.type));
  }
}

Result<const Column*> Table::ColByName(const std::string& name) const {
  auto idx = schema_.IndexOf(name);
  if (!idx) return Status::NotFound("no attribute named '" + name + "'");
  return cols_[*idx].get();
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.size()));
  }
  // Validate before mutating so a failed append leaves the table unchanged.
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    bool type_ok = schema_.attr(i).type == AttrType::kCategorical
                       ? v.is_string()
                       : v.is_number();
    if (!type_ok) {
      return Status::InvalidArgument(
          "type mismatch at attribute '" + schema_.attr(i).name + "'");
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    cols_[i]->AppendValue(row[i]);
  }
  ++num_rows_;
  return Status::OK();
}

}  // namespace dbx
