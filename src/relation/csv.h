// Copyright (c) DBExplorer reproduction authors.
// CSV import/export so the synthetic datasets can be saved, inspected, and
// re-loaded, and so users can point the library at their own data.

#pragma once

#include <string>

#include "src/relation/table.h"
#include "src/util/result.h"

namespace dbx {

/// Writes `table` (header + rows) to `path` with RFC-4180-style quoting.
[[nodiscard]] Status WriteCsv(const Table& table, const std::string& path);

/// Serializes `table` to a CSV string.
std::string ToCsvString(const Table& table);

/// Reads a CSV with a header row into a table following `schema`. Header
/// names must match the schema's attribute names (order-sensitive). Numeric
/// cells that fail to parse become nulls; empty cells are nulls.
[[nodiscard]]
Result<Table> ReadCsv(const std::string& path, const Schema& schema);

/// Parses a CSV string (same semantics as ReadCsv).
[[nodiscard]]
Result<Table> ParseCsvString(const std::string& csv, const Schema& schema);

}  // namespace dbx
