#include "src/relation/predicate.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/util/string_util.h"

namespace dbx {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

namespace {

class CmpPredicate : public Predicate {
 public:
  CmpPredicate(std::string attr, CmpOp op, Value value)
      : attr_(std::move(attr)), op_(op), value_(std::move(value)) {}

  Status Bind(const Schema& schema) override {
    auto idx = schema.IndexOf(attr_);
    if (!idx) return Status::NotFound("no attribute named '" + attr_ + "'");
    col_ = *idx;
    type_ = schema.attr(col_).type;
    if (type_ == AttrType::kCategorical) {
      if (!value_.is_string()) {
        return Status::InvalidArgument(
            "categorical attribute '" + attr_ + "' compared to non-string");
      }
      if (op_ != CmpOp::kEq && op_ != CmpOp::kNe) {
        return Status::NotSupported(
            "only =/!= supported on categorical attribute '" + attr_ + "'");
      }
    } else if (!value_.is_number()) {
      return Status::InvalidArgument(
          "numeric attribute '" + attr_ + "' compared to non-number");
    }
    bound_ = true;
    return Status::OK();
  }

  bool Matches(const Table& table, uint32_t row) const override {
    const Column& c = table.col(col_);
    if (c.IsNullAt(row)) return false;
    if (type_ == AttrType::kCategorical) {
      // Compare via dictionary code; CodeOf is O(1) hashing but we cache the
      // string — codes differ across tables so we cannot cache the code here.
      bool eq = c.DictString(c.CodeAt(row)) == value_.AsString();
      return op_ == CmpOp::kEq ? eq : !eq;
    }
    double x = c.NumberAt(row);
    double y = value_.AsNumber();
    switch (op_) {
      case CmpOp::kEq: return x == y;
      case CmpOp::kNe: return x != y;
      case CmpOp::kLt: return x < y;
      case CmpOp::kLe: return x <= y;
      case CmpOp::kGt: return x > y;
      case CmpOp::kGe: return x >= y;
    }
    return false;
  }

  std::string ToString() const override {
    return attr_ + " " + CmpOpName(op_) + " " +
           (value_.is_string() ? QuoteSqlString(value_.AsString())
                               : value_.ToDisplay());
  }

 private:
  std::string attr_;
  CmpOp op_;
  Value value_;
  size_t col_ = 0;
  AttrType type_ = AttrType::kCategorical;
  bool bound_ = false;
};

class BetweenPredicate : public Predicate {
 public:
  BetweenPredicate(std::string attr, double lo, double hi)
      : attr_(std::move(attr)), lo_(lo), hi_(hi) {}

  Status Bind(const Schema& schema) override {
    auto idx = schema.IndexOf(attr_);
    if (!idx) return Status::NotFound("no attribute named '" + attr_ + "'");
    col_ = *idx;
    if (schema.attr(col_).type != AttrType::kNumeric) {
      return Status::InvalidArgument("BETWEEN on non-numeric attribute '" +
                                     attr_ + "'");
    }
    return Status::OK();
  }

  bool Matches(const Table& table, uint32_t row) const override {
    const Column& c = table.col(col_);
    if (c.IsNullAt(row)) return false;
    double x = c.NumberAt(row);
    return x >= lo_ && x <= hi_;
  }

  std::string ToString() const override {
    return attr_ + " BETWEEN " + FormatDouble(lo_, 0) + " AND " +
           FormatDouble(hi_, 0);
  }

 private:
  std::string attr_;
  double lo_, hi_;
  size_t col_ = 0;
};

class InPredicate : public Predicate {
 public:
  InPredicate(std::string attr, std::vector<std::string> values)
      : attr_(std::move(attr)), values_(std::move(values)) {}

  Status Bind(const Schema& schema) override {
    auto idx = schema.IndexOf(attr_);
    if (!idx) return Status::NotFound("no attribute named '" + attr_ + "'");
    col_ = *idx;
    if (schema.attr(col_).type != AttrType::kCategorical) {
      return Status::InvalidArgument("IN on non-categorical attribute '" +
                                     attr_ + "'");
    }
    set_ = std::unordered_set<std::string>(values_.begin(), values_.end());
    return Status::OK();
  }

  bool Matches(const Table& table, uint32_t row) const override {
    const Column& c = table.col(col_);
    if (c.IsNullAt(row)) return false;
    return set_.count(c.DictString(c.CodeAt(row))) > 0;
  }

  std::string ToString() const override {
    std::vector<std::string> quoted;
    quoted.reserve(values_.size());
    for (const auto& v : values_) quoted.push_back(QuoteSqlString(v));
    return attr_ + " IN (" + Join(quoted, ", ") + ")";
  }

 private:
  std::string attr_;
  std::vector<std::string> values_;
  std::unordered_set<std::string> set_;
  size_t col_ = 0;
};

class AndPredicate : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  Status Bind(const Schema& schema) override {
    for (auto& c : children_) DBX_RETURN_IF_ERROR(c->Bind(schema));
    return Status::OK();
  }

  bool Matches(const Table& table, uint32_t row) const override {
    for (const auto& c : children_) {
      if (!c->Matches(table, row)) return false;
    }
    return true;
  }

  std::string ToString() const override {
    if (children_.empty()) return "TRUE";
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const auto& c : children_) parts.push_back(c->ToString());
    return "(" + Join(parts, " AND ") + ")";
  }

 private:
  std::vector<PredicatePtr> children_;
};

class OrPredicate : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  Status Bind(const Schema& schema) override {
    for (auto& c : children_) DBX_RETURN_IF_ERROR(c->Bind(schema));
    return Status::OK();
  }

  bool Matches(const Table& table, uint32_t row) const override {
    for (const auto& c : children_) {
      if (c->Matches(table, row)) return true;
    }
    return false;
  }

  std::string ToString() const override {
    if (children_.empty()) return "FALSE";
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const auto& c : children_) parts.push_back(c->ToString());
    return "(" + Join(parts, " OR ") + ")";
  }

 private:
  std::vector<PredicatePtr> children_;
};

class NotPredicate : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }

  bool Matches(const Table& table, uint32_t row) const override {
    return !child_->Matches(table, row);
  }

  std::string ToString() const override {
    return "NOT " + child_->ToString();
  }

 private:
  PredicatePtr child_;
};

}  // namespace

Result<RowSet> Predicate::Evaluate(Predicate* pred, const TableSlice& slice) {
  if (pred == nullptr || slice.table == nullptr) {
    return Status::InvalidArgument("null predicate or table");
  }
  DBX_RETURN_IF_ERROR(pred->Bind(slice.table->schema()));
  RowSet out;
  out.reserve(slice.rows.size() / 4 + 1);
  for (uint32_t r : slice.rows) {
    if (pred->Matches(*slice.table, r)) out.push_back(r);
  }
  return out;
}

PredicatePtr MakeCmp(std::string attr, CmpOp op, Value value) {
  return std::make_unique<CmpPredicate>(std::move(attr), op, std::move(value));
}

PredicatePtr MakeBetween(std::string attr, double lo, double hi) {
  return std::make_unique<BetweenPredicate>(std::move(attr), lo, hi);
}

PredicatePtr MakeIn(std::string attr, std::vector<std::string> values) {
  return std::make_unique<InPredicate>(std::move(attr), std::move(values));
}

PredicatePtr MakeAnd(std::vector<PredicatePtr> children) {
  return std::make_unique<AndPredicate>(std::move(children));
}

PredicatePtr MakeOr(std::vector<PredicatePtr> children) {
  return std::make_unique<OrPredicate>(std::move(children));
}

PredicatePtr MakeNot(PredicatePtr child) {
  return std::make_unique<NotPredicate>(std::move(child));
}

PredicatePtr MakeTrue() {
  return std::make_unique<AndPredicate>(std::vector<PredicatePtr>{});
}

}  // namespace dbx
