#include "src/relation/binary_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace dbx {
namespace {

constexpr char kMagic[4] = {'D', 'B', 'X', 'T'};
constexpr uint32_t kVersion = 1;
// Sanity caps against corrupted headers allocating absurd buffers.
constexpr uint64_t kMaxRows = 1ULL << 40;
constexpr uint32_t kMaxAttrs = 1u << 16;
constexpr uint32_t kMaxStringLen = 1u << 24;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}
void PutF64(std::string* out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  PutU64(out, bits);
}
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over the byte string.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  Status ReadU32(uint32_t* v) {
    DBX_RETURN_IF_ERROR(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }
  Status ReadU64(uint64_t* v) {
    DBX_RETURN_IF_ERROR(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }
  Status ReadI32(int32_t* v) {
    uint32_t u = 0;
    DBX_RETURN_IF_ERROR(ReadU32(&u));
    *v = static_cast<int32_t>(u);
    return Status::OK();
  }
  Status ReadF64(double* d) {
    uint64_t bits = 0;
    DBX_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(d, &bits, sizeof(*d));
    return Status::OK();
  }
  Status ReadByte(uint8_t* b) {
    DBX_RETURN_IF_ERROR(Need(1));
    *b = static_cast<uint8_t>(bytes_[pos_++]);
    return Status::OK();
  }
  Status ReadString(std::string* s) {
    uint32_t len;
    DBX_RETURN_IF_ERROR(ReadU32(&len));
    if (len > kMaxStringLen) return Status::Corruption("string too long");
    DBX_RETURN_IF_ERROR(Need(len));
    s->assign(bytes_, pos_, len);
    pos_ += len;
    return Status::OK();
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Need(size_t n) {
    if (pos_ + n > bytes_.size()) {
      return Status::Corruption("truncated DBXT data");
    }
    return Status::OK();
  }

  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToBinary(const Table& table) {
  std::string out;
  out.append(kMagic, 4);
  PutU32(&out, kVersion);
  PutU64(&out, table.num_rows());
  PutU32(&out, static_cast<uint32_t>(table.num_cols()));
  for (const AttributeDef& a : table.schema().attrs()) {
    PutString(&out, a.name);
    out.push_back(a.type == AttrType::kCategorical ? 0 : 1);
    out.push_back(a.queriable ? 1 : 0);
  }
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const Column& col = table.col(c);
    if (col.type() == AttrType::kCategorical) {
      PutU32(&out, static_cast<uint32_t>(col.DictSize()));
      for (size_t d = 0; d < col.DictSize(); ++d) {
        PutString(&out, col.DictString(static_cast<int32_t>(d)));
      }
      for (size_t r = 0; r < table.num_rows(); ++r) {
        PutI32(&out, col.CodeAt(r));
      }
    } else {
      for (size_t r = 0; r < table.num_rows(); ++r) {
        PutF64(&out, col.NumberAt(r));
      }
    }
  }
  return out;
}

Result<Table> FromBinary(const std::string& bytes) {
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad DBXT magic");
  }
  Reader skip_magic(bytes);
  {
    uint32_t m;
    DBX_RETURN_IF_ERROR(skip_magic.ReadU32(&m));  // consume the magic
  }
  uint32_t version;
  DBX_RETURN_IF_ERROR(skip_magic.ReadU32(&version));
  if (version != kVersion) {
    return Status::Corruption("unsupported DBXT version " +
                              std::to_string(version));
  }
  uint64_t num_rows;
  DBX_RETURN_IF_ERROR(skip_magic.ReadU64(&num_rows));
  if (num_rows > kMaxRows) return Status::Corruption("row count implausible");
  uint32_t num_attrs;
  DBX_RETURN_IF_ERROR(skip_magic.ReadU32(&num_attrs));
  if (num_attrs > kMaxAttrs) {
    return Status::Corruption("attribute count implausible");
  }

  std::vector<AttributeDef> attrs(num_attrs);
  for (AttributeDef& a : attrs) {
    DBX_RETURN_IF_ERROR(skip_magic.ReadString(&a.name));
    uint8_t type, queriable;
    DBX_RETURN_IF_ERROR(skip_magic.ReadByte(&type));
    DBX_RETURN_IF_ERROR(skip_magic.ReadByte(&queriable));
    if (type > 1) return Status::Corruption("bad attribute type");
    a.type = type == 0 ? AttrType::kCategorical : AttrType::kNumeric;
    a.queriable = queriable != 0;
  }
  auto schema = Schema::Make(std::move(attrs));
  if (!schema.ok()) {
    return Status::Corruption("bad schema: " + schema.status().message());
  }
  Table table(std::move(*schema));

  // Columns are reconstructed directly (append path would re-intern).
  for (size_t c = 0; c < table.num_cols(); ++c) {
    Column& col = table.col(c);
    if (col.type() == AttrType::kCategorical) {
      uint32_t dict_size;
      DBX_RETURN_IF_ERROR(skip_magic.ReadU32(&dict_size));
      if (dict_size > num_rows && dict_size > kMaxStringLen) {
        return Status::Corruption("dictionary implausibly large");
      }
      std::vector<std::string> dict(dict_size);
      for (std::string& s : dict) {
        DBX_RETURN_IF_ERROR(skip_magic.ReadString(&s));
      }
      for (uint64_t r = 0; r < num_rows; ++r) {
        int32_t code = kNullCode;
        DBX_RETURN_IF_ERROR(skip_magic.ReadI32(&code));
        if (code == kNullCode) {
          col.AppendNull();
        } else if (code >= 0 && static_cast<uint32_t>(code) < dict_size) {
          col.AppendString(dict[static_cast<size_t>(code)]);
        } else {
          return Status::Corruption("dictionary code out of range");
        }
      }
    } else {
      for (uint64_t r = 0; r < num_rows; ++r) {
        double d;
        DBX_RETURN_IF_ERROR(skip_magic.ReadF64(&d));
        col.AppendNumber(d);
      }
    }
  }
  if (!skip_magic.AtEnd()) {
    return Status::Corruption("trailing bytes after DBXT payload");
  }
  // Columns were filled directly; fix the row count by appending through the
  // table API is not possible, so rebuild via a second table walk.
  Table out(table.schema());
  std::vector<Value> row(table.num_cols());
  for (uint64_t r = 0; r < num_rows; ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      row[c] = table.col(c).ValueAt(r);
    }
    DBX_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Status WriteBinary(const Table& table, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open for write: " + path);
  std::string bytes = ToBinary(table);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Table> ReadBinary(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return FromBinary(ss.str());
}

}  // namespace dbx
