#include "src/server/dispatcher.h"

#include <algorithm>
#include <optional>
#include <string_view>

#include "src/obs/explain.h"
#include "src/obs/metrics.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace dbx::server {
namespace {

/// Splits "<first-token> <rest>"; rest keeps internal whitespace (statements
/// may span lines). Leading/trailing whitespace around the token is eaten.
std::pair<std::string, std::string> SplitToken(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {"", ""};
  size_t e = s.find_first_of(" \t\r\n", b);
  if (e == std::string::npos) return {s.substr(b), ""};
  size_t r = s.find_first_not_of(" \t\r\n", e);
  return {s.substr(b, e - b), r == std::string::npos ? "" : s.substr(r)};
}

/// Decrements the in-flight statement count on every exit path.
class InflightSlot {
 public:
  explicit InflightSlot(std::atomic<size_t>* inflight) : inflight_(inflight) {}
  ~InflightSlot() { inflight_->fetch_sub(1); }
  InflightSlot(const InflightSlot&) = delete;
  InflightSlot& operator=(const InflightSlot&) = delete;

 private:
  std::atomic<size_t>* inflight_;
};

}  // namespace

Dispatcher::Dispatcher(ServerOptions options)
    : options_(std::move(options)),
      cache_(std::make_shared<ViewCache>(options_.cache_budget_bytes)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : MetricsRegistry::Global()),
      tracer_(options_.tracer != nullptr ? options_.tracer
                                         : Tracer::Disabled()),
      query_log_(options_.query_log) {}

void Dispatcher::RegisterTable(const std::string& name, const Table* table) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it != tables_.end()) {
    // Superseded registration: its snapshot id keeps old entries unreachable
    // (correctness); invalidating reclaims their budget promptly.
    cache_->InvalidateDataset(it->second.second);
  }
  tables_[name] = {table, MakeSnapshotDatasetId(name)};
}

void Dispatcher::RegisterTableSnapshot(const std::string& name,
                                       std::shared_ptr<const Table> table,
                                       std::string snapshot_id) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it != tables_.end() && it->second.second != snapshot_id) {
    // Different content under the same name: the superseded registration's
    // entries are unreachable under the new id; invalidating reclaims their
    // budget promptly. An unchanged id keeps them — that IS the warm-reopen
    // path.
    cache_->InvalidateDataset(it->second.second);
  }
  tables_[name] = {table.get(), std::move(snapshot_id)};
  owned_tables_[name] = std::move(table);
}

Result<std::string> Dispatcher::OpenSession(ConnectionScope* scope) {
  MutexLock lock(mu_);
  if (sessions_.size() >= options_.max_sessions) {
    metrics_->GetCounter("dbx_server_admission_rejects_total")->Increment();
    return Status::Unavailable(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        " open); close a session or retry later");
  }
  auto session = std::make_shared<Session>();
  session->id = "s" + std::to_string(++next_session_id_);
  {
    // Uncontended (the session is not yet published in sessions_); taken so
    // every access to the guarded engine happens under the session mutex.
    MutexLock session_lock(session->mu);
    for (const auto& [name, entry] : tables_) {
      session->engine.RegisterTableSnapshot(name, entry.first, entry.second);
    }
    session->engine.SetDefaultCadViewOptions(options_.cad_defaults);
    session->engine.SetViewCache(cache_);
    session->engine.SetCacheOwner(session->id);
  }
  if (options_.session_cache_budget_bytes > 0) {
    cache_->SetOwnerBudget(session->id, options_.session_cache_budget_bytes);
  }
  sessions_[session->id] = session;
  if (scope != nullptr) scope->sessions.push_back(session->id);
  metrics_->GetCounter("dbx_server_sessions_opened_total")->Increment();
  metrics_->GetGauge("dbx_server_sessions_active")
      ->Set(static_cast<int64_t>(sessions_.size()));
  return session->id;
}

Status Dispatcher::CloseSession(const std::string& sid) {
  MutexLock lock(mu_);
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) {
    return Status::NotFound("no session named '" + sid + "'");
  }
  sessions_.erase(it);
  // The budget record dies with the session; its cached views stay resident
  // for other sessions to hit (sharing them is the point of a global cache).
  cache_->SetOwnerBudget(sid, 0);
  metrics_->GetGauge("dbx_server_sessions_active")
      ->Set(static_cast<int64_t>(sessions_.size()));
  return Status::OK();
}

std::shared_ptr<Dispatcher::Session> Dispatcher::FindSession(
    const std::string& sid) const {
  MutexLock lock(mu_);
  auto it = sessions_.find(sid);
  return it == sessions_.end() ? nullptr : it->second;
}

size_t Dispatcher::session_count() const {
  MutexLock lock(mu_);
  return sessions_.size();
}

std::string Dispatcher::HandleExec(const std::string& sid,
                                   const std::string& sql,
                                   const std::string& trace_id) {
  Stopwatch timer;
  Status status = Status::OK();
  std::string body;
  std::string statement = sql;  // canonical form once a parse succeeds
  std::string cache_result = "none";
  std::vector<std::pair<std::string, double>> stages;

  if (sql.empty()) {
    status =
        Status::InvalidArgument("EXEC needs a statement: EXEC <sid> <stmt>");
  } else if (auto session = FindSession(sid); session == nullptr) {
    status = Status::NotFound("no session named '" + sid + "'");
  } else if (options_.max_inflight > 0 &&
             inflight_.fetch_add(1) >= options_.max_inflight) {
    inflight_.fetch_sub(1);
    metrics_->GetCounter("dbx_server_admission_rejects_total")->Increment();
    status = Status::Unavailable(
        "server saturated: " + std::to_string(options_.max_inflight) +
        " statements in flight; retry");
  } else {
    // Slot released on every path below; unlimited mode never took one.
    std::optional<InflightSlot> slot;
    if (options_.max_inflight > 0) slot.emplace(&inflight_);
    if (options_.exec_hook_for_test) options_.exec_hook_for_test(sql);

    // A session is one sequential conversation: statements addressed to it
    // are serialized here even when several connections send them.
    MutexLock session_lock(session->mu);
    // Root span per statement, tagged with the session and the client-sent
    // trace id; the engine hangs its cache_probe/pipeline spans beneath it.
    ScopedSpan root(tracer_, "exec");
    root.AddArg("session", sid);
    if (!trace_id.empty()) root.AddArg("trace", trace_id);
    const uint64_t root_id = root.id();
    session->engine.SetTracer(tracer_, root_id);
    auto outcome = session->engine.ExecuteSql(sql);
    session->engine.SetTracer(nullptr);
    if (outcome.ok()) {
      body = outcome->rendered;
      if (!outcome->canonical_sql.empty()) statement = outcome->canonical_sql;
      cache_result = outcome->cache_result;
    } else {
      status = outcome.status();
      root.AddArg("error", Status::CodeName(status.code()));
    }
    root.End();
    if (query_log_ != nullptr && root_id != 0) {
      stages = StageLatenciesFromSpans(tracer_->Events(), root_id);
    }
  }

  const std::string response = EncodeResponse(status, body);
  if (query_log_ != nullptr) {
    QueryLogRecord rec;
    rec.session = sid;
    rec.trace = trace_id;
    rec.statement = statement;
    rec.status = status.ok() ? "OK" : Status::CodeName(status.code());
    rec.cache = cache_result;
    rec.response_bytes = response.size();
    rec.total_ms = timer.ElapsedNanos() / 1e6;
    rec.stages = std::move(stages);
    query_log_->Append(std::move(rec));
  }
  return response;
}

std::string Dispatcher::RenderStats() const {
  const ViewCacheStats s = cache_->stats();
  std::string out;
  out += "hits=" + std::to_string(s.hits);
  out += " misses=" + std::to_string(s.misses);
  out += " inserts=" + std::to_string(s.inserts);
  out += " evictions=" + std::to_string(s.evictions);
  out += " invalidations=" + std::to_string(s.invalidations);
  out += " owner_budget_rejects=" + std::to_string(s.owner_budget_rejects);
  out += " entries=" + std::to_string(s.entries);
  out += " bytes_in_use=" + std::to_string(s.bytes_in_use);
  out += " sessions=" + std::to_string(session_count());
  return out;
}

std::string Dispatcher::RenderStatusz() const {
  std::string out;
  out += "sessions_active: " + std::to_string(session_count()) + "\n";
  const ViewCacheSnapshot snap = cache_->Snapshot();
  const ViewCacheStats& s = snap.stats;
  out += StringPrintf(
      "cache: hits=%llu misses=%llu inserts=%llu evictions=%llu "
      "invalidations=%llu entries=%zu bytes_in_use=%zu byte_budget=%zu\n",
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses),
      static_cast<unsigned long long>(s.inserts),
      static_cast<unsigned long long>(s.evictions),
      static_cast<unsigned long long>(s.invalidations), s.entries,
      s.bytes_in_use, s.byte_budget);
  out += StringPrintf("cache_entries: %zu (MRU first)\n", snap.entries.size());
  for (const ViewCacheEntryInfo& e : snap.entries) {
    out += StringPrintf("  %zuB hits=%llu build_ms=%s %s\n", e.bytes,
                        static_cast<unsigned long long>(e.hits),
                        FormatDouble(e.build_cost_ms, 3).c_str(),
                        e.canonical.c_str());
  }
  out += ThreadPoolStatsLine(ThreadPool::Shared().GetStats()) + "\n";
  return out;
}

std::string Dispatcher::HandleRequest(const std::string& payload,
                                      ConnectionScope* scope) {
  Stopwatch timer;
  metrics_->GetCounter("dbx_server_requests_total")->Increment();
  std::string response;
  auto [command, rest] = SplitToken(payload);
  if (command == "OPEN" && rest.empty()) {
    auto sid = OpenSession(scope);
    response = sid.ok() ? EncodeResponse(Status::OK(), *sid)
                        : EncodeResponse(sid.status(), "");
  } else if (command == "EXEC") {
    // Optional option token before the session id. Session ids never start
    // with '@', so this never mis-parses a pre-trace request.
    std::string trace_id;
    std::string args = rest;
    bool bad_option = false;
    if (auto [first, after] = SplitToken(rest);
        !first.empty() && first[0] == '@') {
      constexpr std::string_view kTracePrefix = "@trace=";
      if (first.size() > kTracePrefix.size() &&
          first.compare(0, kTracePrefix.size(), kTracePrefix) == 0) {
        trace_id = first.substr(kTracePrefix.size());
        args = after;
      } else {
        response = EncodeResponse(
            Status::InvalidArgument("unknown EXEC option '" + first +
                                    "'; expected @trace=<id>"),
            "");
        bad_option = true;
      }
    }
    if (!bad_option) {
      auto [sid, sql] = SplitToken(args);
      response = HandleExec(sid, sql, trace_id);
    }
  } else if (command == "CLOSE") {
    auto [sid, extra] = SplitToken(rest);
    if (sid.empty() || !extra.empty()) {
      response = EncodeResponse(
          Status::InvalidArgument("usage: CLOSE <session-id>"), "");
    } else {
      Status st = CloseSession(sid);
      if (st.ok() && scope != nullptr) {
        auto& owned = scope->sessions;
        owned.erase(std::remove(owned.begin(), owned.end(), sid),
                    owned.end());
      }
      response = st.ok() ? EncodeResponse(st, "closed " + sid)
                         : EncodeResponse(st, "");
    }
  } else if (command == "STATS" && rest.empty()) {
    response = EncodeResponse(Status::OK(), RenderStats());
  } else if (command == "METRICS" && rest.empty()) {
    response = EncodeResponse(Status::OK(), metrics_->PrometheusText());
  } else {
    response = EncodeResponse(
        Status::InvalidArgument(
            "unknown request '" + command +
            "'; expected OPEN, EXEC, CLOSE, STATS, or METRICS"),
        "");
  }
  if (response.compare(0, 3, "ERR") == 0) {
    metrics_->GetCounter("dbx_server_errors_total")->Increment();
  }
  metrics_->GetHistogram("dbx_server_request_ms")
      ->ObserveNs(timer.ElapsedNanos());
  return response;
}

void Dispatcher::ServeConnection(Connection* conn) {
  FrameDecoder decoder;
  ConnectionScope scope;
  bool sync_lost = false;
  for (;;) {
    auto chunk = conn->Read(64u << 10);
    if (!chunk.ok() || chunk->empty()) break;  // EOF or transport failure
    if (Status st = decoder.Feed(*chunk); !st.ok()) {
      // Framing is gone; answer once, well-formed, and hang up.
      metrics_->GetCounter("dbx_server_frame_errors_total")->Increment();
      if (auto frame = EncodeFrame(EncodeResponse(st, "")); frame.ok()) {
        (void)conn->Write(*frame);  // best effort: the peer may be gone
      }
      sync_lost = true;
      break;
    }
    bool write_failed = false;
    while (auto payload = decoder.Next()) {
      std::string response = HandleRequest(*payload, &scope);
      auto frame = EncodeFrame(response);
      if (!frame.ok()) {
        // The rendered body outgrew the frame limit; degrade to an error
        // response (always small) rather than killing the connection.
        frame = EncodeFrame(EncodeResponse(
            Status::OutOfRange("response exceeds the frame size limit; "
                               "narrow the statement"),
            ""));
      }
      if (!conn->Write(*frame).ok()) {
        write_failed = true;
        break;
      }
    }
    if (write_failed) break;
    if (!decoder.status().ok()) {
      metrics_->GetCounter("dbx_server_frame_errors_total")->Increment();
      if (auto frame = EncodeFrame(EncodeResponse(decoder.status(), ""));
          frame.ok()) {
        (void)conn->Write(*frame);  // best effort
      }
      sync_lost = true;
      break;
    }
  }
  if (!sync_lost && decoder.mid_frame()) {
    // EOF cut a frame short: tell the peer (it may still be reading) with a
    // well-formed error before hanging up.
    metrics_->GetCounter("dbx_server_frame_errors_total")->Increment();
    if (auto frame = EncodeFrame(EncodeResponse(
            Status::Corruption("connection closed mid-frame"), ""));
        frame.ok()) {
      (void)conn->Write(*frame);  // best effort
    }
  }
  conn->CloseWrite();
  // A connection's sessions die with it — no leak, whatever bytes arrived.
  for (const std::string& sid : scope.sessions) {
    (void)CloseSession(sid);  // raced CLOSE frames may have beaten us here
  }
}

Server::Server(Dispatcher* dispatcher, Listener* listener)
    : dispatcher_(dispatcher), listener_(listener) {}

Server::~Server() { Stop(); }

void Server::Start() {
  accept_thread_ = std::thread([this] {
    for (;;) {
      auto conn = listener_->Accept();
      if (!conn.ok()) break;  // Shutdown() or listener failure
      MutexLock lock(mu_);
      if (stopped_) break;
      connections_.push_back(std::move(*conn));
      Connection* raw = connections_.back().get();
      connection_threads_.emplace_back(
          [this, raw] { dispatcher_->ServeConnection(raw); });
    }
  });
}

void Server::Stop() {
  {
    MutexLock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Wake serve loops blocked on clients that never disconnected; their
    // Read returns EOF/error and ServeConnection reaps the sessions.
    MutexLock lock(mu_);
    for (auto& conn : connections_) conn->Close();
  }
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  MutexLock lock(mu_);
  connections_.clear();
}

}  // namespace dbx::server
