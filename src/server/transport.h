// Copyright (c) DBExplorer reproduction authors.
// The server's transport seam (DESIGN.md §12): a byte-stream Connection and
// an accepting Listener, abstract so the dispatcher, session lifecycle,
// budget accounting, and frame handling are all exercised deterministically
// in-process — under ctest and TSAN, without binding a port. The loopback
// implementation here is a pair of in-memory pipes; socket_transport.h holds
// the unix-domain/TCP implementations the real server binary uses.

#pragma once

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "src/util/mutex.h"
#include "src/util/result.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace dbx::server {

/// One bidirectional byte stream. Implementations are thread-safe in the
/// one-reader/one-writer pattern the dispatcher uses (reads from a single
/// service loop, writes from the same loop; the peer end mirrors that).
class Connection {
 public:
  virtual ~Connection() = default;

  /// Blocks until at least one byte is available (returning up to
  /// `max_bytes`) or the peer closed its write side (returning ""). Errors
  /// are transport failures, not EOF.
  [[nodiscard]] virtual Result<std::string> Read(size_t max_bytes) = 0;

  /// Writes all of `bytes`; Unavailable when the peer is gone.
  [[nodiscard]] virtual Status Write(std::string_view bytes) = 0;

  /// Half-close: signals EOF to the peer's Read while keeping our Read open.
  virtual void CloseWrite() = 0;

  /// Full close of both directions.
  virtual void Close() = 0;

  /// Bounds every subsequent Read to `timeout_ms` milliseconds: a Read with
  /// no bytes and no EOF by the deadline returns Status::Unavailable
  /// ("read timed out"). 0 restores blocking reads. Returns false when the
  /// transport cannot enforce deadlines (the default); callers treat that as
  /// "best effort only" and proceed.
  virtual bool SetReadTimeout(int timeout_ms) {
    (void)timeout_ms;
    return false;
  }
};

/// Accepts incoming connections. Accept() blocks; Shutdown() unblocks every
/// pending and future Accept() with Unavailable.
class Listener {
 public:
  virtual ~Listener() = default;
  [[nodiscard]] virtual Result<std::unique_ptr<Connection>> Accept() = 0;
  virtual void Shutdown() = 0;
};

/// Creates two connected in-memory endpoints (each one's writes are the
/// other's reads). Pipes buffer without bound, so a single thread can write
/// a whole scripted request stream, half-close, and then run the server
/// loop to completion — the deterministic harness pattern.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
LoopbackPair();

/// In-process Listener: Connect() hands back a client endpoint and queues
/// the matching server endpoint for Accept().
class LoopbackListener : public Listener {
 public:
  /// Creates a connected pair, enqueues the server end, returns the client
  /// end. Safe from any thread.
  std::unique_ptr<Connection> Connect();

  [[nodiscard]] Result<std::unique_ptr<Connection>> Accept() override;
  void Shutdown() override;

 private:
  Mutex mu_;
  CondVar cv_;
  std::deque<std::unique_ptr<Connection>> pending_ DBX_GUARDED_BY(mu_);
  bool shutdown_ DBX_GUARDED_BY(mu_) = false;
};

}  // namespace dbx::server
