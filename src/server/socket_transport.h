// Copyright (c) DBExplorer reproduction authors.
// POSIX socket implementations of the transport seam: a unix-domain-socket
// listener for the exploration protocol (no ports, filesystem-addressed) and
// a localhost TCP listener for the Prometheus scrape endpoint. Everything
// above this file is socket-agnostic — tests drive the same dispatcher over
// the loopback transport.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/server/transport.h"
#include "src/util/result.h"

namespace dbx::server {

/// Binds a unix-domain stream socket at `path` (unlinking a stale socket
/// file first). The socket file is removed on destruction.
class UnixListener : public Listener {
 public:
  [[nodiscard]] static Result<std::unique_ptr<UnixListener>> Bind(
      const std::string& path);
  ~UnixListener() override;

  [[nodiscard]] Result<std::unique_ptr<Connection>> Accept() override;
  void Shutdown() override;

  const std::string& path() const { return path_; }

 private:
  UnixListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  /// Atomic because Shutdown() races with a blocked Accept() by design.
  std::atomic<int> fd_;
  std::string path_;
};

/// Connects to a unix-domain socket server at `path`.
[[nodiscard]] Result<std::unique_ptr<Connection>> UnixConnect(
    const std::string& path);

/// Binds a TCP listener on 127.0.0.1:`port` (0 = ephemeral; see port()).
class TcpListener : public Listener {
 public:
  [[nodiscard]] static Result<std::unique_ptr<TcpListener>> Bind(
      uint16_t port);
  ~TcpListener() override;

  [[nodiscard]] Result<std::unique_ptr<Connection>> Accept() override;
  void Shutdown() override;

  /// The bound port (resolved when constructed with port 0).
  uint16_t port() const { return port_; }

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  /// Atomic because Shutdown() races with a blocked Accept() by design.
  std::atomic<int> fd_;
  uint16_t port_;
};

}  // namespace dbx::server
