#include "src/server/socket_transport.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dbx::server {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// A Connection over one stream-socket fd.
class FdConnection : public Connection {
 public:
  explicit FdConnection(int fd) : fd_(fd) {}
  ~FdConnection() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<std::string> Read(size_t max_bytes) override {
    std::string buf(max_bytes, '\0');
    for (;;) {
      const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
      if (n >= 0) {
        buf.resize(static_cast<size_t>(n));
        return buf;  // n == 0 is EOF, surfaced as ""
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable("read timed out");
      }
      return Errno("recv");
    }
  }

  bool SetReadTimeout(int timeout_ms) override {
    timeval tv{};
    if (timeout_ms > 0) {
      tv.tv_sec = timeout_ms / 1000;
      tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
    }
    return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
  }

  Status Write(std::string_view bytes) override {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) {
          return Status::Unavailable("peer closed the connection");
        }
        return Errno("send");
      }
      sent += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  void CloseWrite() override { ::shutdown(fd_, SHUT_WR); }

  /// shutdown() rather than close(): it wakes a Read blocked on another
  /// thread (recv returns EOF) without racing fd reuse — the fd itself is
  /// released by the destructor, after every user is done with it.
  void Close() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

Result<std::unique_ptr<Connection>> AcceptOn(int fd) {
  for (;;) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      return std::unique_ptr<Connection>(new FdConnection(conn));
    }
    if (errno == EINTR) continue;
    if (errno == EINVAL || errno == EBADF) {
      return Status::Unavailable("listener shut down");
    }
    return Errno("accept");
  }
}

}  // namespace

Result<std::unique_ptr<UnixListener>> UnixListener::Bind(
    const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Errno("bind(" + path + ")");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  return std::unique_ptr<UnixListener>(new UnixListener(fd, path));
}

UnixListener::~UnixListener() {
  Shutdown();
  ::unlink(path_.c_str());
}

Result<std::unique_ptr<Connection>> UnixListener::Accept() {
  return AcceptOn(fd_.load());
}

void UnixListener::Shutdown() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<std::unique_ptr<Connection>> UnixConnect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Errno("connect(" + path + ")");
    ::close(fd);
    return st;
  }
  return std::unique_ptr<Connection>(new FdConnection(fd));
}

Result<std::unique_ptr<TcpListener>> TcpListener::Bind(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() { Shutdown(); }

Result<std::unique_ptr<Connection>> TcpListener::Accept() {
  return AcceptOn(fd_.load());
}

void TcpListener::Shutdown() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace dbx::server
