// Copyright (c) DBExplorer reproduction authors.
// Synchronous protocol client over any Connection: frames one request,
// blocks for the matching response frame, decodes it back into Status +
// body. Tests and the load generator both talk to the server through this,
// so the wire grammar is exercised by every caller.

#pragma once

#include <memory>
#include <string>

#include "src/obs/trace.h"
#include "src/server/protocol.h"
#include "src/server/transport.h"
#include "src/util/result.h"

namespace dbx::server {

/// One request/response conversation at a time; not thread-safe.
class Client {
 public:
  /// Takes ownership of the connection. It must already be established.
  explicit Client(std::unique_ptr<Connection> conn);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `request` as one frame and blocks for one response frame.
  /// Transport or framing failures surface as the outer Result error; a
  /// server-side ERR response decodes into Response::status.
  [[nodiscard]] Result<Response> Call(const std::string& request);

  /// OPEN — returns the new session id.
  [[nodiscard]] Result<std::string> Open();

  /// EXEC <sid> <statement> — returns the rendered statement output.
  [[nodiscard]] Result<std::string> Exec(const std::string& sid,
                                         const std::string& statement);

  /// EXEC @trace=<trace_id> <sid> <statement> — the traced form: the server
  /// tags the statement's root span (and query-log record) with `trace_id`,
  /// and the client records a matching "rpc:EXEC" span on its own tracer
  /// (SetTracer), so MergedChromeJson lines the two processes up. An empty
  /// trace_id degrades to the plain (byte-identical pre-trace) encoding.
  [[nodiscard]] Result<std::string> Exec(const std::string& sid,
                                         const std::string& statement,
                                         const std::string& trace_id);

  /// CLOSE <sid>.
  [[nodiscard]] Status CloseSession(const std::string& sid);

  /// Attaches a span collector for the client side of traced Execs; nullptr
  /// detaches. Must outlive the client (or the next SetTracer call).
  void SetTracer(Tracer* tracer) {
    tracer_ = tracer == nullptr ? Tracer::Disabled() : tracer;
  }

  Connection* connection() { return conn_.get(); }

 private:
  std::unique_ptr<Connection> conn_;
  FrameDecoder decoder_;
  Tracer* tracer_ = Tracer::Disabled();
};

}  // namespace dbx::server
