// Copyright (c) DBExplorer reproduction authors.
// The multi-session exploration service (DESIGN.md §12): a Dispatcher owns N
// exploration sessions over shared immutable registered tables and executes
// CADVIEW-dialect requests addressed to them. Sessions share one ViewCache
// (drill-downs in one session warm the next session's builds) under
// per-session byte budgets, and all builds fan out on the shared thread
// pool. Admission control bounds concurrent statement execution: past the
// limit a request is answered immediately with Status::Unavailable instead
// of queueing behind work the interactive caller can no longer see.
//
// The dispatcher is transport-agnostic — ServeConnection() runs the frame
// loop over any Connection (src/server/transport.h), so every behavior here
// is tested deterministically over the in-process loopback transport; the
// socket listeners only appear in the server binary and one smoke test.
//
// Request vocabulary (one request payload per frame, text):
//   OPEN                            -> OK\n<session-id>
//   EXEC [@trace=<id>] <sid> <stmt> -> OK\n<rendered statement output>
//   CLOSE <sid>                     -> OK\nclosed <sid>
//   STATS                           -> OK\n<shared-cache counters, one line>
//   METRICS                         -> OK\n<Prometheus text exposition>
// Errors come back as ERR frames (see protocol.h). Sessions opened on a
// connection are reaped when that connection ends — a dropped client can
// never leak sessions.
//
// Trace propagation (DESIGN.md §14): EXEC accepts one optional option token
// immediately after the verb. `@trace=<id>` tags the statement's root span
// (and query-log record) with the client-chosen trace id, so a merged
// client+server Chrome trace lines the two processes up per request. The
// token is strictly optional and session ids never start with '@', so
// requests without it are byte-for-byte the pre-trace wire encoding —
// the golden replay test pins that. An unrecognized '@' option is
// InvalidArgument, never a session-id guess.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/query/engine.h"
#include "src/server/protocol.h"
#include "src/server/transport.h"
#include "src/util/mutex.h"
#include "src/util/result.h"

namespace dbx {
class MetricsRegistry;
}  // namespace dbx

namespace dbx::server {

struct ServerOptions {
  /// Hard cap on concurrently open sessions; OPEN past it is Unavailable.
  size_t max_sessions = 64;

  /// Admission control: statements executing at once, across all sessions
  /// (the bounded queue has length zero — interactive callers are better
  /// served by an immediate Unavailable than by invisible queueing).
  /// 0 = unlimited.
  size_t max_inflight = 0;

  /// Byte budget of the shared ViewCache.
  size_t cache_budget_bytes = ViewCache::kDefaultByteBudget;

  /// Per-session byte budget inside the shared cache (0 = none): a session
  /// whose inserts would exceed it keeps its results but stops displacing
  /// other sessions' cached views.
  size_t session_cache_budget_bytes = 0;

  /// Build defaults applied to every session's engine (seed, discretizer,
  /// num_threads, optimizations).
  CadViewOptions cad_defaults;

  /// Instrument sink; nullptr = MetricsRegistry::Global().
  MetricsRegistry* metrics = nullptr;

  /// Span collector for per-statement root spans and engine pipeline spans;
  /// nullptr = tracing off. Must outlive the dispatcher.
  Tracer* tracer = nullptr;

  /// Structured query log appended to on every EXEC (one record per
  /// statement, including errors); nullptr = off. Must outlive the
  /// dispatcher.
  QueryLog* query_log = nullptr;

  /// Test seam: when set, called with the statement text inside EXEC, after
  /// admission but before execution — lets tests hold a statement in flight
  /// deterministically. Never set in production.
  std::function<void(const std::string&)> exec_hook_for_test;
};

/// Owns the sessions, the shared cache, and the table registry.
/// Thread-safe: any number of ServeConnection loops may run concurrently.
class Dispatcher {
 public:
  explicit Dispatcher(ServerOptions options);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Registers an immutable table snapshot for all *subsequently opened*
  /// sessions (already-open sessions keep the registration they saw at
  /// OPEN). Re-registering a name replaces it and invalidates the old
  /// registration's cache entries; snapshot-identity keying makes the old
  /// entries unreachable either way. The table must outlive the dispatcher.
  void RegisterTable(const std::string& name, const Table* table);

  /// Registers a backend-owned snapshot: the dispatcher shares ownership of
  /// the (immutable) table and keys the shared cache with the caller's
  /// content-addressed `snapshot_id` (storage::TableSnapshot::snapshot_id).
  /// Re-registering a name with the SAME id is a no-op for the cache —
  /// reopening an unchanged table keeps every warm entry — while a different
  /// id invalidates the superseded registration's entries.
  void RegisterTableSnapshot(const std::string& name,
                             std::shared_ptr<const Table> table,
                             std::string snapshot_id);

  /// Sessions opened by one connection, reaped when its loop exits.
  struct ConnectionScope {
    std::vector<std::string> sessions;
  };

  /// The protocol state machine for one request: parses `payload`, executes,
  /// returns the response payload. Exposed so tests and the frame fuzzer can
  /// drive the grammar directly.
  std::string HandleRequest(const std::string& payload,
                            ConnectionScope* scope);

  /// Reads frames off `conn` until EOF or a framing error, answering each
  /// request in order. A framing error (oversized declared length) or a
  /// frame truncated by EOF is answered with a well-formed ERR frame before
  /// the connection closes. Reaps this connection's sessions on exit.
  void ServeConnection(Connection* conn);

  /// Closes `sid` (also detaching its cache budget). NotFound when unknown.
  [[nodiscard]] Status CloseSession(const std::string& sid);

  size_t session_count() const;
  const std::shared_ptr<ViewCache>& cache() const { return cache_; }
  MetricsRegistry* metrics() const { return metrics_; }
  const ServerOptions& options() const { return options_; }

  /// /statusz body: session count, shared-cache snapshot (aggregate counters
  /// plus per-entry diagnostics, MRU first), and thread-pool stats.
  std::string RenderStatusz() const;

 private:
  /// One exploration session: a dialect engine whose statements execute
  /// under the session mutex (a session is a sequential conversation even
  /// when several connections address it).
  struct Session {
    Mutex mu;
    /// The dialect engine. Configured under `mu` in OpenSession before the
    /// session is published, then every statement executes under `mu` —
    /// a session is one sequential conversation.
    Engine engine DBX_GUARDED_BY(mu);
    std::string id;  // immutable after OpenSession publishes the session
  };

  [[nodiscard]] Result<std::string> OpenSession(ConnectionScope* scope);
  std::shared_ptr<Session> FindSession(const std::string& sid) const;
  std::string HandleExec(const std::string& sid, const std::string& sql,
                         const std::string& trace_id);
  std::string RenderStats() const;

  const ServerOptions options_;
  std::shared_ptr<ViewCache> cache_;
  MetricsRegistry* metrics_;
  Tracer* tracer_;       // never null (Tracer::Disabled() when off)
  QueryLog* query_log_;  // nullable

  mutable Mutex mu_;
  /// name -> (table, snapshot dataset id); ordered so OPEN registers tables
  /// deterministically.
  std::map<std::string, std::pair<const Table*, std::string>> tables_
      DBX_GUARDED_BY(mu_);
  /// Keep-alive for snapshots registered via RegisterTableSnapshot.
  std::map<std::string, std::shared_ptr<const Table>> owned_tables_
      DBX_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Session>> sessions_
      DBX_GUARDED_BY(mu_);
  uint64_t next_session_id_ DBX_GUARDED_BY(mu_) = 0;

  std::atomic<size_t> inflight_{0};
};

/// Accept loop glue: spawns a thread per accepted connection running
/// Dispatcher::ServeConnection. Works over any Listener — loopback in
/// tests/benches, unix-domain/TCP in the server binary.
class Server {
 public:
  Server(Dispatcher* dispatcher, Listener* listener);
  ~Server();

  /// Spawns the accept thread. Call once.
  void Start();

  /// Shuts the listener down, closes any still-connected clients, and joins
  /// every connection thread.
  void Stop();

 private:
  Dispatcher* dispatcher_;
  Listener* listener_;
  std::thread accept_thread_;  // touched only by Start()/Stop() (caller API)
  Mutex mu_;
  std::vector<std::thread> connection_threads_ DBX_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Connection>> connections_ DBX_GUARDED_BY(mu_);
  bool stopped_ DBX_GUARDED_BY(mu_) = false;
};

}  // namespace dbx::server
