#include "src/server/client.h"

#include <utility>

namespace dbx::server {

Client::Client(std::unique_ptr<Connection> conn) : conn_(std::move(conn)) {}

Result<Response> Client::Call(const std::string& request) {
  DBX_ASSIGN_OR_RETURN(std::string frame, EncodeFrame(request));
  DBX_RETURN_IF_ERROR(conn_->Write(frame));
  for (;;) {
    if (auto payload = decoder_.Next()) return DecodeResponse(*payload);
    DBX_RETURN_IF_ERROR(decoder_.status());
    DBX_ASSIGN_OR_RETURN(std::string chunk, conn_->Read(64u << 10));
    if (chunk.empty()) {
      return Status::Unavailable("connection closed before a response");
    }
    DBX_RETURN_IF_ERROR(decoder_.Feed(chunk));
  }
}

Result<std::string> Client::Open() {
  DBX_ASSIGN_OR_RETURN(Response r, Call("OPEN"));
  DBX_RETURN_IF_ERROR(r.status);
  return r.body;
}

Result<std::string> Client::Exec(const std::string& sid,
                                 const std::string& statement) {
  DBX_ASSIGN_OR_RETURN(Response r, Call("EXEC " + sid + " " + statement));
  DBX_RETURN_IF_ERROR(r.status);
  return r.body;
}

Result<std::string> Client::Exec(const std::string& sid,
                                 const std::string& statement,
                                 const std::string& trace_id) {
  if (trace_id.empty()) return Exec(sid, statement);
  ScopedSpan rpc(tracer_, "rpc:EXEC");
  rpc.AddArg("session", sid);
  rpc.AddArg("trace", trace_id);
  DBX_ASSIGN_OR_RETURN(
      Response r, Call("EXEC @trace=" + trace_id + " " + sid + " " + statement));
  DBX_RETURN_IF_ERROR(r.status);
  return r.body;
}

Status Client::CloseSession(const std::string& sid) {
  DBX_ASSIGN_OR_RETURN(Response r, Call("CLOSE " + sid));
  return r.status;
}

}  // namespace dbx::server
