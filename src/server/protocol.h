// Copyright (c) DBExplorer reproduction authors.
// Wire protocol of the multi-session exploration server (DESIGN.md §12): a
// length-prefixed frame layer carrying text payloads. Requests are dialect
// statements addressed to a session ("EXEC <sid> <statement>", optionally
// "EXEC @trace=<id> <sid> <statement>" to propagate a client trace id —
// DESIGN.md §14; trace-free requests are byte-identical to the pre-trace
// encoding) plus a tiny control vocabulary (OPEN/CLOSE/STATS/METRICS);
// responses are a status line followed by a body. The framing is symmetric,
// so one decoder serves the server, the client helper, the load generator,
// and the frame fuzzer.
//
// Frame:    uint32 big-endian payload length, then that many payload bytes.
//           Payloads above kMaxFramePayload poison the decoder (Corruption);
//           the server answers a well-formed error frame and closes.
// Response: "OK\n<body>" or "ERR <CodeName>\n<message>" — CodeName is
//           Status::CodeName, so the client can reconstruct the Status.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "src/util/result.h"
#include "src/util/status.h"

namespace dbx::server {

/// Upper bound on a single frame's payload bytes (requests and responses).
inline constexpr size_t kMaxFramePayload = 1u << 20;  // 1 MiB
inline constexpr size_t kFrameHeaderBytes = 4;

/// Frames `payload`; InvalidArgument when it exceeds kMaxFramePayload.
[[nodiscard]] Result<std::string> EncodeFrame(std::string_view payload);

/// Incremental frame parser: Feed() raw bytes as they arrive, Next() pops
/// complete payloads in order. A declared length over kMaxFramePayload
/// poisons the decoder — Feed() returns (and status() stays) Corruption, and
/// no further frames are produced; the stream has lost sync and the
/// connection must close.
class FrameDecoder {
 public:
  /// Appends bytes. Fails (Corruption) once poisoned.
  [[nodiscard]] Status Feed(std::string_view bytes);

  /// Pops the next complete payload, or nullopt when more bytes are needed.
  std::optional<std::string> Next();

  /// True when buffered bytes form an incomplete frame (header or payload
  /// cut short) — at EOF this means the peer truncated a frame.
  bool mid_frame() const { return !poisoned_.ok() || buf_.size() > pos_; }

  const Status& status() const { return poisoned_; }

 private:
  /// Poisons (and returns false) when the queue-front header declares an
  /// over-limit payload. Requires a complete buffered header.
  bool CheckFrontLength();

  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_, compacted periodically
  Status poisoned_ = Status::OK();
};

/// One decoded response: the statement-level Status plus the body text
/// (rendered output on OK, empty on error — the message travels in the
/// Status).
struct Response {
  Status status;
  std::string body;
};

/// Renders a response payload. OK statuses carry `body`; error statuses
/// carry their message (body ignored).
std::string EncodeResponse(const Status& status, std::string_view body);

/// Parses a response payload; InvalidArgument when it is not well-formed
/// (missing status line or unknown code name).
[[nodiscard]] Result<Response> DecodeResponse(std::string_view payload);

}  // namespace dbx::server
