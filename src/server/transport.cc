#include "src/server/transport.h"

#include <algorithm>
#include <chrono>

namespace dbx::server {
namespace {

/// One direction of a loopback connection: an unbounded byte buffer plus the
/// writer's close flag. Readers block on the condition variable.
struct Pipe {
  Mutex mu;
  CondVar cv;
  std::string buf DBX_GUARDED_BY(mu);
  bool closed DBX_GUARDED_BY(mu) = false;  // writer hung up; drain then EOF
};

class LoopbackConnection : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<Pipe> in, std::shared_ptr<Pipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~LoopbackConnection() override { Close(); }

  Result<std::string> Read(size_t max_bytes) override {
    MutexLock lock(in_->mu);
    if (read_timeout_ms_ > 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(read_timeout_ms_);
      while (in_->buf.empty() && !in_->closed) {
        if (!in_->cv.WaitUntil(in_->mu, deadline) && in_->buf.empty() &&
            !in_->closed) {
          return Status::Unavailable("read timed out");
        }
      }
    } else {
      while (in_->buf.empty() && !in_->closed) in_->cv.Wait(in_->mu);
    }
    if (in_->buf.empty()) return std::string();  // EOF
    const size_t n = std::min(max_bytes, in_->buf.size());
    std::string chunk = in_->buf.substr(0, n);
    in_->buf.erase(0, n);
    return chunk;
  }

  bool SetReadTimeout(int timeout_ms) override {
    read_timeout_ms_ = timeout_ms > 0 ? timeout_ms : 0;
    return true;
  }

  Status Write(std::string_view bytes) override {
    MutexLock lock(out_->mu);
    if (out_->closed) {
      return Status::Unavailable("loopback peer closed the connection");
    }
    out_->buf.append(bytes);
    out_->cv.NotifyAll();
    return Status::OK();
  }

  void CloseWrite() override {
    MutexLock lock(out_->mu);
    out_->closed = true;
    out_->cv.NotifyAll();
  }

  void Close() override {
    CloseWrite();
    MutexLock lock(in_->mu);
    in_->closed = true;
    in_->cv.NotifyAll();
  }

 private:
  std::shared_ptr<Pipe> in_;
  std::shared_ptr<Pipe> out_;
  int read_timeout_ms_ = 0;  // single-reader pattern: no lock needed
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
LoopbackPair() {
  auto a_to_b = std::make_shared<Pipe>();
  auto b_to_a = std::make_shared<Pipe>();
  auto a = std::make_unique<LoopbackConnection>(b_to_a, a_to_b);
  auto b = std::make_unique<LoopbackConnection>(a_to_b, b_to_a);
  return {std::move(a), std::move(b)};
}

std::unique_ptr<Connection> LoopbackListener::Connect() {
  auto [client, server] = LoopbackPair();
  {
    MutexLock lock(mu_);
    pending_.push_back(std::move(server));
    cv_.NotifyAll();
  }
  return std::move(client);
}

Result<std::unique_ptr<Connection>> LoopbackListener::Accept() {
  MutexLock lock(mu_);
  while (pending_.empty() && !shutdown_) cv_.Wait(mu_);
  if (!pending_.empty()) {
    auto conn = std::move(pending_.front());
    pending_.pop_front();
    return conn;
  }
  return Status::Unavailable("listener shut down");
}

void LoopbackListener::Shutdown() {
  MutexLock lock(mu_);
  shutdown_ = true;
  cv_.NotifyAll();
}

}  // namespace dbx::server
