#include "src/server/transport.h"

#include <algorithm>
#include <chrono>

namespace dbx::server {
namespace {

/// One direction of a loopback connection: an unbounded byte buffer plus the
/// writer's close flag. Readers block on the condition variable.
struct Pipe {
  std::mutex mu;
  std::condition_variable cv;
  std::string buf;
  bool closed = false;  // writer hung up; drain then EOF
};

class LoopbackConnection : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<Pipe> in, std::shared_ptr<Pipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~LoopbackConnection() override { Close(); }

  Result<std::string> Read(size_t max_bytes) override {
    std::unique_lock<std::mutex> lock(in_->mu);
    const auto ready = [&] { return !in_->buf.empty() || in_->closed; };
    if (read_timeout_ms_ > 0) {
      if (!in_->cv.wait_for(lock, std::chrono::milliseconds(read_timeout_ms_),
                            ready)) {
        return Status::Unavailable("read timed out");
      }
    } else {
      in_->cv.wait(lock, ready);
    }
    if (in_->buf.empty()) return std::string();  // EOF
    const size_t n = std::min(max_bytes, in_->buf.size());
    std::string chunk = in_->buf.substr(0, n);
    in_->buf.erase(0, n);
    return chunk;
  }

  bool SetReadTimeout(int timeout_ms) override {
    read_timeout_ms_ = timeout_ms > 0 ? timeout_ms : 0;
    return true;
  }

  Status Write(std::string_view bytes) override {
    std::lock_guard<std::mutex> lock(out_->mu);
    if (out_->closed) {
      return Status::Unavailable("loopback peer closed the connection");
    }
    out_->buf.append(bytes);
    out_->cv.notify_all();
    return Status::OK();
  }

  void CloseWrite() override {
    std::lock_guard<std::mutex> lock(out_->mu);
    out_->closed = true;
    out_->cv.notify_all();
  }

  void Close() override {
    CloseWrite();
    std::lock_guard<std::mutex> lock(in_->mu);
    in_->closed = true;
    in_->cv.notify_all();
  }

 private:
  std::shared_ptr<Pipe> in_;
  std::shared_ptr<Pipe> out_;
  int read_timeout_ms_ = 0;  // single-reader pattern: no lock needed
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
LoopbackPair() {
  auto a_to_b = std::make_shared<Pipe>();
  auto b_to_a = std::make_shared<Pipe>();
  auto a = std::make_unique<LoopbackConnection>(b_to_a, a_to_b);
  auto b = std::make_unique<LoopbackConnection>(a_to_b, b_to_a);
  return {std::move(a), std::move(b)};
}

std::unique_ptr<Connection> LoopbackListener::Connect() {
  auto [client, server] = LoopbackPair();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(server));
    cv_.notify_all();
  }
  return std::move(client);
}

Result<std::unique_ptr<Connection>> LoopbackListener::Accept() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !pending_.empty() || shutdown_; });
  if (!pending_.empty()) {
    auto conn = std::move(pending_.front());
    pending_.pop_front();
    return conn;
  }
  return Status::Unavailable("listener shut down");
}

void LoopbackListener::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

}  // namespace dbx::server
