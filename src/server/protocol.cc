#include "src/server/protocol.h"

#include <cstdint>

namespace dbx::server {
namespace {

void AppendBigEndian32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>((v >> 24) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>(v & 0xff));
}

uint32_t ReadBigEndian32(const char* p) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3]));
}

/// Rebuilds a Status from its CodeName; nullopt for unknown names.
std::optional<Status> StatusFromCodeName(const std::string& name,
                                         std::string message) {
  if (name == "InvalidArgument") {
    return Status::InvalidArgument(std::move(message));
  }
  if (name == "NotFound") return Status::NotFound(std::move(message));
  if (name == "OutOfRange") return Status::OutOfRange(std::move(message));
  if (name == "Corruption") return Status::Corruption(std::move(message));
  if (name == "NotSupported") return Status::NotSupported(std::move(message));
  if (name == "FailedPrecondition") {
    return Status::FailedPrecondition(std::move(message));
  }
  if (name == "Internal") return Status::Internal(std::move(message));
  if (name == "Unavailable") return Status::Unavailable(std::move(message));
  return std::nullopt;
}

}  // namespace

Result<std::string> EncodeFrame(std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte frame limit");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendBigEndian32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

Status FrameDecoder::Feed(std::string_view bytes) {
  if (!poisoned_.ok()) return poisoned_;
  buf_.append(bytes);
  // Validate the frame at the head of the queue eagerly so a caller that
  // only feeds (never drains) still learns the stream lost sync. A bad
  // header *behind* undrained frames is caught by Next() instead.
  if (buf_.size() - pos_ >= kFrameHeaderBytes) {
    (void)CheckFrontLength();
  }
  return poisoned_;
}

bool FrameDecoder::CheckFrontLength() {
  const uint32_t len = ReadBigEndian32(buf_.data() + pos_);
  if (len > kMaxFramePayload) {
    poisoned_ = Status::Corruption(
        "frame declares a " + std::to_string(len) +
        "-byte payload, over the " + std::to_string(kMaxFramePayload) +
        "-byte limit; stream out of sync");
    return false;
  }
  return true;
}

std::optional<std::string> FrameDecoder::Next() {
  if (!poisoned_.ok()) return std::nullopt;
  if (buf_.size() - pos_ < kFrameHeaderBytes) return std::nullopt;
  if (!CheckFrontLength()) return std::nullopt;
  const uint32_t len = ReadBigEndian32(buf_.data() + pos_);
  if (buf_.size() - pos_ - kFrameHeaderBytes < len) return std::nullopt;
  std::string payload = buf_.substr(pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  // Compact once the consumed prefix dominates, keeping Feed() amortized
  // linear without copying the tail on every frame.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return payload;
}

std::string EncodeResponse(const Status& status, std::string_view body) {
  if (status.ok()) {
    std::string out = "OK\n";
    out.append(body);
    return out;
  }
  std::string out = "ERR ";
  out += Status::CodeName(status.code());
  out += '\n';
  out += status.message();
  return out;
}

Result<Response> DecodeResponse(std::string_view payload) {
  const size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    return Status::InvalidArgument("response payload has no status line");
  }
  const std::string head(payload.substr(0, nl));
  std::string rest(payload.substr(nl + 1));
  if (head == "OK") return Response{Status::OK(), std::move(rest)};
  if (head.rfind("ERR ", 0) == 0) {
    auto status = StatusFromCodeName(head.substr(4), std::move(rest));
    if (status.has_value()) return Response{std::move(*status), ""};
    return Status::InvalidArgument("response names unknown status code '" +
                                   head.substr(4) + "'");
  }
  return Status::InvalidArgument("response status line is neither OK nor "
                                 "ERR <code>");
}

}  // namespace dbx::server
