#include "src/server/metrics_http.h"

#include "src/obs/metrics.h"

namespace dbx::server {

Result<std::string> ParseHttpGetPath(const std::string& head) {
  const size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || line.substr(0, sp1) != "GET") {
    return Status::InvalidArgument("only GET is served");
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) {
    return Status::InvalidArgument("malformed request line: " + line);
  }
  return line.substr(sp1 + 1, sp2 - sp1 - 1);
}

std::string HttpOkResponse(const std::string& body) {
  return "HTTP/1.1 200 OK\r\n"
         "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
         "Content-Length: " +
         std::to_string(body.size()) +
         "\r\n"
         "Connection: close\r\n"
         "\r\n" +
         body;
}

std::string HttpNotFoundResponse() {
  const std::string body = "not found; scrape /metrics\n";
  return "HTTP/1.1 404 Not Found\r\n"
         "Content-Type: text/plain; charset=utf-8\r\n"
         "Content-Length: " +
         std::to_string(body.size()) +
         "\r\n"
         "Connection: close\r\n"
         "\r\n" +
         body;
}

void ServeMetricsExchange(Connection* conn, MetricsRegistry* metrics) {
  // Read until the head terminator; scrapers send no body. Cap the head so a
  // garbage peer can't grow the buffer without bound.
  constexpr size_t kMaxHeadBytes = 16u << 10;
  std::string head;
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.size() < kMaxHeadBytes) {
    auto chunk = conn->Read(4096);
    if (!chunk.ok() || chunk->empty()) break;
    head.append(*chunk);
  }
  auto path = ParseHttpGetPath(head);
  const std::string response = (path.ok() && *path == "/metrics")
                                   ? HttpOkResponse(metrics->PrometheusText())
                                   : HttpNotFoundResponse();
  (void)conn->Write(response);  // best effort: the scraper may have gone
  conn->CloseWrite();
}

MetricsHttpServer::MetricsHttpServer(MetricsRegistry* metrics,
                                     Listener* listener)
    : metrics_(metrics), listener_(listener) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Start() {
  thread_ = std::thread([this] {
    for (;;) {
      auto conn = listener_->Accept();
      if (!conn.ok()) break;  // Shutdown() or listener failure
      ServeMetricsExchange(conn->get(), metrics_);
      (*conn)->Close();
    }
  });
}

void MetricsHttpServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  listener_->Shutdown();
  if (thread_.joinable()) thread_.join();
}

}  // namespace dbx::server
