#include "src/server/metrics_http.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/string_util.h"

namespace dbx::server {

Result<std::string> ParseHttpGetPath(const std::string& head) {
  const size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || line.substr(0, sp1) != "GET") {
    return Status::InvalidArgument("only GET is served");
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) {
    return Status::InvalidArgument("malformed request line: " + line);
  }
  return line.substr(sp1 + 1, sp2 - sp1 - 1);
}

std::string HttpOkResponse(const std::string& body) {
  return "HTTP/1.1 200 OK\r\n"
         "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
         "Content-Length: " +
         std::to_string(body.size()) +
         "\r\n"
         "Connection: close\r\n"
         "\r\n" +
         body;
}

std::string HttpNotFoundResponse() {
  return HttpTextResponse(
      404, "Not Found",
      "not found; try /metrics /healthz /statusz /tracez\n");
}

std::string HttpTextResponse(int status_code, const std::string& reason,
                             const std::string& body) {
  return "HTTP/1.1 " + std::to_string(status_code) + " " + reason +
         "\r\n"
         "Content-Type: text/plain; charset=utf-8\r\n"
         "Content-Length: " +
         std::to_string(body.size()) +
         "\r\n"
         "Connection: close\r\n"
         "\r\n" +
         body;
}

std::string RenderTracez(const std::vector<TraceEvent>& events, size_t limit) {
  std::vector<const TraceEvent*> roots;
  for (const TraceEvent& e : events) {
    if (e.parent == 0) roots.push_back(&e);
  }
  std::stable_sort(roots.begin(), roots.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->dur_ns != b->dur_ns) return a->dur_ns > b->dur_ns;
                     return a->id < b->id;
                   });
  const size_t shown = std::min(roots.size(), limit);
  std::string out = StringPrintf("tracez: %zu recent root span(s), slowest %zu\n",
                                 roots.size(), shown);
  for (size_t i = 0; i < shown; ++i) {
    const TraceEvent& e = *roots[i];
    out += StringPrintf("%10.3fms  %s", e.dur_ns / 1e6, e.name.c_str());
    if (!e.args.empty()) out += " [" + e.args + "]";
    out += "\n";
  }
  return out;
}

void ServeDebugExchange(Connection* conn, const DebugEndpoints& endpoints) {
  // Read until the head terminator; peers send no body. Cap the head so a
  // garbage peer can't grow the buffer without bound, and bound the read so
  // a stalled peer can't wedge the accept loop.
  if (endpoints.head_read_timeout_ms > 0) {
    (void)conn->SetReadTimeout(endpoints.head_read_timeout_ms);
  }
  constexpr size_t kMaxHeadBytes = 16u << 10;
  std::string head;
  bool timed_out = false;
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.size() < kMaxHeadBytes) {
    auto chunk = conn->Read(4096);
    if (!chunk.ok()) {
      timed_out = true;  // deadline hit or transport failure; give up either way
      break;
    }
    if (chunk->empty()) break;  // EOF
    head.append(*chunk);
  }
  std::string response;
  auto path = ParseHttpGetPath(head);
  if (timed_out && head.find("\r\n\r\n") == std::string::npos) {
    response = HttpTextResponse(408, "Request Timeout",
                                "timed out reading request head\n");
  } else if (!path.ok()) {
    response = HttpNotFoundResponse();
  } else if (*path == "/metrics" && endpoints.metrics != nullptr) {
    response = HttpOkResponse(endpoints.metrics->PrometheusText());
  } else if (*path == "/healthz") {
    response = HttpTextResponse(200, "OK", "ok\n");
  } else if (*path == "/statusz") {
    std::string body;
    if (endpoints.uptime_seconds) {
      body += StringPrintf("uptime_s: %.3f\n", endpoints.uptime_seconds());
    }
    if (endpoints.statusz) body += endpoints.statusz();
    response = HttpTextResponse(200, "OK", body);
  } else if (*path == "/tracez") {
    const std::string body =
        (endpoints.tracer == nullptr || !endpoints.tracer->enabled())
            ? "tracing disabled; start with a tracer attached\n"
            : RenderTracez(endpoints.tracer->Events(),
                           endpoints.tracez_limit);
    response = HttpTextResponse(200, "OK", body);
  } else {
    response = HttpNotFoundResponse();
  }
  (void)conn->Write(response);  // best effort: the scraper may have gone
  conn->CloseWrite();
}

void ServeMetricsExchange(Connection* conn, MetricsRegistry* metrics) {
  DebugEndpoints endpoints;
  endpoints.metrics = metrics;
  endpoints.head_read_timeout_ms = 0;  // trusted in-process callers
  ServeDebugExchange(conn, endpoints);
}

MetricsHttpServer::MetricsHttpServer(MetricsRegistry* metrics,
                                     Listener* listener)
    : listener_(listener) {
  endpoints_.metrics = metrics;
}

MetricsHttpServer::MetricsHttpServer(DebugEndpoints endpoints,
                                     Listener* listener)
    : endpoints_(std::move(endpoints)), listener_(listener) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Start() {
  thread_ = std::thread([this] {
    for (;;) {
      auto conn = listener_->Accept();
      if (!conn.ok()) break;  // Shutdown() or listener failure
      ServeDebugExchange(conn->get(), endpoints_);
      (*conn)->Close();
    }
  });
}

void MetricsHttpServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  listener_->Shutdown();
  if (thread_.joinable()) thread_.join();
}

}  // namespace dbx::server
