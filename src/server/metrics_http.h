// Copyright (c) DBExplorer reproduction authors.
// Minimal HTTP/1.1 debug surface (DESIGN.md §14): answers GET /metrics
// (Prometheus text exposition), /healthz (liveness), /statusz (uptime,
// session count, view-cache snapshot, thread-pool stats), and /tracez (the N
// slowest recent root spans), 404 for everything else. Request parsing and
// response formatting are free functions so the protocol surface is unit
// tested without sockets; MetricsHttpServer glues them to any Listener.
//
// Slow-peer guard: the head read is bounded by DebugEndpoints::
// head_read_timeout_ms via Connection::SetReadTimeout, so one stalled
// scraper cannot wedge the single-threaded accept loop (it gets a 408).

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/trace.h"
#include "src/server/transport.h"
#include "src/util/result.h"

namespace dbx {
class MetricsRegistry;
}  // namespace dbx

namespace dbx::server {

/// What the debug HTTP surface serves. All pointers are unowned and must
/// outlive the server; null/absent members degrade the matching endpoint
/// (404 for /metrics, empty sections for /statusz, a note for /tracez).
struct DebugEndpoints {
  MetricsRegistry* metrics = nullptr;
  /// Body of /statusz below the uptime line (e.g. Dispatcher::RenderStatusz).
  std::function<std::string()> statusz;
  /// Process uptime for /statusz's first line; absent = line omitted.
  std::function<double()> uptime_seconds;
  /// Span source for /tracez; null or disabled renders a note instead.
  const Tracer* tracer = nullptr;
  /// /tracez shows at most this many root spans, slowest first.
  size_t tracez_limit = 10;
  /// Read budget for the request head; <= 0 disables the guard (only safe
  /// for trusted in-process peers).
  int head_read_timeout_ms = 5000;
};

/// Extracts the request target from an HTTP request head ("GET /metrics
/// HTTP/1.1\r\n..."). InvalidArgument unless the method is GET.
[[nodiscard]] Result<std::string> ParseHttpGetPath(const std::string& head);

/// 200 response carrying `body` as Prometheus text exposition.
[[nodiscard]] std::string HttpOkResponse(const std::string& body);

/// 404 response for unknown paths.
[[nodiscard]] std::string HttpNotFoundResponse();

/// Arbitrary-status text/plain response ("408 Request Timeout", ...).
[[nodiscard]] std::string HttpTextResponse(int status_code,
                                           const std::string& reason,
                                           const std::string& body);

/// /tracez body: the slowest `limit` root spans (parent == 0) of `events`,
/// one "<dur>ms <name> [<args>]" line each, slowest first.
[[nodiscard]] std::string RenderTracez(const std::vector<TraceEvent>& events,
                                       size_t limit);

/// Serves one HTTP exchange on `conn`: bounds the head read per
/// `endpoints.head_read_timeout_ms`, answers the matching endpoint (408 on a
/// timed-out head), and half-closes. Exposed for deterministic loopback
/// tests.
void ServeDebugExchange(Connection* conn, const DebugEndpoints& endpoints);

/// Metrics-only exchange: ServeDebugExchange with just /metrics populated
/// and no read deadline (the pre-§14 surface, kept for in-process tests).
void ServeMetricsExchange(Connection* conn, MetricsRegistry* metrics);

/// Accept loop serving the debug endpoints sequentially (an exchange is
/// tiny; one at a time keeps this a single background thread, and the head
/// deadline keeps one slow peer from wedging it).
class MetricsHttpServer {
 public:
  /// Metrics-only surface.
  MetricsHttpServer(MetricsRegistry* metrics, Listener* listener);
  /// Full debug surface.
  MetricsHttpServer(DebugEndpoints endpoints, Listener* listener);
  ~MetricsHttpServer();

  /// Spawns the accept thread. Call once.
  void Start();

  /// Shuts the listener down and joins.
  void Stop();

 private:
  DebugEndpoints endpoints_;
  Listener* listener_;
  std::thread thread_;
  bool stopped_ = false;
};

}  // namespace dbx::server
