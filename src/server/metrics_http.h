// Copyright (c) DBExplorer reproduction authors.
// Minimal HTTP/1.1 scrape endpoint for Prometheus: answers GET /metrics with
// the registry's text exposition and 404s everything else. Request parsing
// and response formatting are free functions so the protocol surface is unit
// tested without sockets; MetricsHttpServer glues them to any Listener.

#pragma once

#include <memory>
#include <string>
#include <thread>

#include "src/server/transport.h"
#include "src/util/result.h"

namespace dbx {
class MetricsRegistry;
}  // namespace dbx

namespace dbx::server {

/// Extracts the request target from an HTTP request head ("GET /metrics
/// HTTP/1.1\r\n..."). InvalidArgument unless the method is GET.
[[nodiscard]] Result<std::string> ParseHttpGetPath(const std::string& head);

/// 200 response carrying `body` as Prometheus text exposition.
[[nodiscard]] std::string HttpOkResponse(const std::string& body);

/// 404 response for any path other than /metrics.
[[nodiscard]] std::string HttpNotFoundResponse();

/// Serves one HTTP exchange on `conn`: reads the request head, answers, and
/// half-closes. Exposed for deterministic loopback tests.
void ServeMetricsExchange(Connection* conn, MetricsRegistry* metrics);

/// Accept loop serving GET /metrics sequentially (a scrape is tiny; one at a
/// time keeps this a single background thread).
class MetricsHttpServer {
 public:
  MetricsHttpServer(MetricsRegistry* metrics, Listener* listener);
  ~MetricsHttpServer();

  /// Spawns the accept thread. Call once.
  void Start();

  /// Shuts the listener down and joins.
  void Stop();

 private:
  MetricsRegistry* metrics_;
  Listener* listener_;
  std::thread thread_;
  bool stopped_ = false;
};

}  // namespace dbx::server
