#include "src/facet/facet_engine.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/stopwatch.h"

namespace dbx {

Result<FacetEngine> FacetEngine::Create(const Table* table,
                                        const DiscretizerOptions& options) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  FacetEngine e;
  e.table_ = table;
  auto dt = DiscretizedTable::Build(TableSlice::All(*table), options);
  if (!dt.ok()) return dt.status();
  e.dt_ = std::move(*dt);
  e.index_ = FacetIndex::Build(e.dt_);
  e.Recompute();
  return e;
}

Result<std::pair<size_t, int32_t>> FacetEngine::ResolveValue(
    const std::string& attr, const std::string& label,
    bool must_be_queriable) const {
  auto idx = dt_.IndexOf(attr);
  if (!idx) return Status::NotFound("no attribute named '" + attr + "'");
  const DiscreteAttr& a = dt_.attr(*idx);
  if (must_be_queriable && !a.queriable) {
    return Status::FailedPrecondition("attribute '" + attr +
                                      "' is not queriable in this interface");
  }
  for (size_t c = 0; c < a.labels.size(); ++c) {
    if (a.labels[c] == label) {
      return std::make_pair(*idx, static_cast<int32_t>(c));
    }
  }
  return Status::NotFound("attribute '" + attr + "' has no value '" + label +
                          "'");
}

Status FacetEngine::SelectValue(const std::string& attr,
                                const std::string& label) {
  auto rv = ResolveValue(attr, label, /*must_be_queriable=*/true);
  if (!rv.ok()) return rv.status();
  selections_[rv->first].codes.insert(rv->second);
  ++operation_count_;
  Recompute();
  return Status::OK();
}

Status FacetEngine::DeselectValue(const std::string& attr,
                                  const std::string& label) {
  auto rv = ResolveValue(attr, label, /*must_be_queriable=*/true);
  if (!rv.ok()) return rv.status();
  auto it = selections_.find(rv->first);
  if (it != selections_.end()) {
    it->second.codes.erase(rv->second);
    if (it->second.codes.empty()) selections_.erase(it);
  }
  ++operation_count_;
  Recompute();
  return Status::OK();
}

Status FacetEngine::ClearAttribute(const std::string& attr) {
  auto idx = dt_.IndexOf(attr);
  if (!idx) return Status::NotFound("no attribute named '" + attr + "'");
  selections_.erase(*idx);
  ++operation_count_;
  Recompute();
  return Status::OK();
}

void FacetEngine::RestoreSelections(
    std::map<size_t, FacetSelection> selections) {
  selections_ = std::move(selections);
  ++operation_count_;
  Recompute();
}

void FacetEngine::Reset() {
  selections_.clear();
  ++operation_count_;
  Recompute();
}

std::vector<std::vector<int32_t>> FacetEngine::SelectionVectors() const {
  std::vector<std::vector<int32_t>> v(dt_.num_attrs());
  for (const auto& [attr_idx, sel] : selections_) {
    v[attr_idx].assign(sel.codes.begin(), sel.codes.end());
  }
  return v;
}

void FacetEngine::Recompute() {
  ScopedSpan span(tracer_, "facet_recompute", trace_parent_);
  span.AddArg("selected_attrs", static_cast<uint64_t>(selections_.size()));
  Stopwatch timer;
  result_rows_ = index_.EvaluateSelections(SelectionVectors()).ToRowSet();
  span.AddArg("result_rows", static_cast<uint64_t>(result_rows_.size()));
  MetricsRegistry* reg = MetricsRegistry::Global();
  reg->GetCounter("dbx_facet_recomputes_total")->Increment();
  reg->GetHistogram("dbx_facet_recompute_ms")->ObserveNs(timer.ElapsedNanos());
}

Result<AttributeDigest> FacetEngine::PanelCounts(const std::string& attr) const {
  auto idx = dt_.IndexOf(attr);
  if (!idx) return Status::NotFound("no attribute named '" + attr + "'");
  AttributeDigest d;
  d.attr_name = attr;
  d.labels = dt_.attr(*idx).labels;
  d.counts = index_.MultiSelectCounts(SelectionVectors(), *idx);
  return d;
}

SummaryDigest FacetEngine::Digest() const {
  std::vector<size_t> positions(result_rows_.begin(), result_rows_.end());
  return BuildDigest(dt_, positions);
}

Result<SummaryDigest> FacetEngine::DigestForValue(
    const std::string& attr, const std::string& label) const {
  auto rv = ResolveValue(attr, label, /*must_be_queriable=*/false);
  if (!rv.ok()) return rv.status();
  const DiscreteAttr& a = dt_.attr(rv->first);
  std::vector<size_t> positions;
  for (uint32_t row : result_rows_) {
    if (a.codes[row] == rv->second) positions.push_back(row);
  }
  return BuildDigest(dt_, positions);
}

}  // namespace dbx
