#include "src/facet/summary_digest.h"

#include <algorithm>

#include "src/stats/cosine.h"

namespace dbx {

std::optional<size_t> SummaryDigest::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i].attr_name == name) return i;
  }
  return std::nullopt;
}

SummaryDigest BuildDigest(const DiscretizedTable& dt,
                          const std::vector<size_t>& positions) {
  SummaryDigest d;
  d.result_size = positions.size();
  d.attrs.reserve(dt.num_attrs());
  for (size_t a = 0; a < dt.num_attrs(); ++a) {
    const DiscreteAttr& attr = dt.attr(a);
    AttributeDigest ad;
    ad.attr_name = attr.name;
    ad.labels = attr.labels;
    ad.counts.assign(attr.cardinality(), 0);
    for (size_t pos : positions) {
      int32_t code = attr.codes[pos];
      if (code >= 0) ++ad.counts[static_cast<size_t>(code)];
    }
    d.attrs.push_back(std::move(ad));
  }
  return d;
}

SummaryDigest BuildDigest(const DiscretizedTable& dt) {
  std::vector<size_t> all(dt.num_rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return BuildDigest(dt, all);
}

double DigestCosineSimilarity(const SummaryDigest& a, const SummaryDigest& b) {
  size_t n = std::min(a.attrs.size(), b.attrs.size());
  if (n == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += CosineSimilarity(a.attrs[i].AsVector(), b.attrs[i].AsVector());
  }
  return total / static_cast<double>(n);
}

double RetrievalError(const RowSet& target, const RowSet& obtained) {
  if (target.empty()) return obtained.empty() ? 0.0 : 1.0;
  // Both RowSets are ascending; a merge walk counts the symmetric difference.
  size_t i = 0, j = 0, sym_diff = 0;
  while (i < target.size() && j < obtained.size()) {
    if (target[i] == obtained[j]) {
      ++i;
      ++j;
    } else if (target[i] < obtained[j]) {
      ++sym_diff;
      ++i;
    } else {
      ++sym_diff;
      ++j;
    }
  }
  sym_diff += (target.size() - i) + (obtained.size() - j);
  return static_cast<double>(sym_diff) / static_cast<double>(target.size());
}

}  // namespace dbx
