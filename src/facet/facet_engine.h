// Copyright (c) DBExplorer reproduction authors.
// Faceted navigation (paper §5, Figure 1): the interaction model of the
// Apache Solr baseline. A query panel holds per-attribute selections (values
// OR-ed within an attribute, attributes AND-ed together); the engine keeps
// the current result set and its summary digest.

#pragma once

#include <map>
#include <set>
#include <string>

#include "src/facet/facet_index.h"
#include "src/facet/summary_digest.h"
#include "src/obs/trace.h"
#include "src/relation/table.h"
#include "src/stats/discretizer.h"
#include "src/util/result.h"

namespace dbx {

/// One attribute's selection state inside the query panel.
struct FacetSelection {
  /// Selected discrete codes (into the engine's DiscretizedTable domain).
  std::set<int32_t> codes;
};

/// Interactive faceted-navigation engine over one table. Only queriable
/// attributes accept selections — the paper's Limitation 2 hinges on that
/// distinction.
class FacetEngine {
 public:
  /// Discretizes the full table once (the facet domain) and starts with an
  /// empty selection (all rows).
  [[nodiscard]] static Result<FacetEngine> Create(const Table* table,
                                    const DiscretizerOptions& options);

  const Table& table() const { return *table_; }
  const DiscretizedTable& discretized() const { return dt_; }

  /// Toggles a value by label. Fails on unknown attribute/value or on a
  /// non-queriable attribute.
  [[nodiscard]]
  Status SelectValue(const std::string& attr, const std::string& label);
  [[nodiscard]]
  Status DeselectValue(const std::string& attr, const std::string& label);

  /// Clears one attribute's selections / the whole panel.
  [[nodiscard]] Status ClearAttribute(const std::string& attr);
  void Reset();

  /// Current selections (attr index -> selection).
  const std::map<size_t, FacetSelection>& selections() const {
    return selections_;
  }

  /// Replaces the whole selection state (session undo/restore). Counts as
  /// one interface operation.
  void RestoreSelections(std::map<size_t, FacetSelection> selections);

  /// Result rows under the current selections (positions into the
  /// discretized row order AND base-table row ids, which coincide because the
  /// engine discretizes the full table).
  const RowSet& result_rows() const { return result_rows_; }

  /// Summary digest of the current result set — what the user sees in the
  /// query panel.
  SummaryDigest Digest() const;

  /// Digest restricted to rows that additionally carry `attr = label`
  /// ("select each of the given attribute values, one at a time, and compare
  /// their summary digest" — the §6.2.2 Solr workflow).
  [[nodiscard]] Result<SummaryDigest> DigestForValue(const std::string& attr,
                                       const std::string& label) const;

  /// Multi-select facet counts for the query panel: `attr`'s value counts
  /// computed with that attribute's own selections removed, so users can
  /// widen a multi-selected facet (standard e-commerce behaviour).
  [[nodiscard]]
  Result<AttributeDigest> PanelCounts(const std::string& attr) const;

  /// Number of interface operations performed so far (selection changes);
  /// the user-study cost model reads this.
  size_t operation_count() const { return operation_count_; }

  /// Span collector for selection recomputes. Pass Tracer::Disabled() or
  /// nullptr-equivalent to turn tracing off; selections and results are
  /// unaffected either way.
  void SetTracer(Tracer* tracer, uint64_t trace_parent = 0) {
    tracer_ = tracer == nullptr ? Tracer::Disabled() : tracer;
    trace_parent_ = trace_parent;
  }

  /// Default-constructed engines are empty shells; use Create().
  FacetEngine() = default;

 private:
  [[nodiscard]]
  Result<std::pair<size_t, int32_t>> ResolveValue(const std::string& attr,
                                                  const std::string& label,
                                                  bool must_be_queriable) const;
  void Recompute();

  /// Selection state in the index's vector form.
  std::vector<std::vector<int32_t>> SelectionVectors() const;

  const Table* table_ = nullptr;
  DiscretizedTable dt_;
  FacetIndex index_;
  std::map<size_t, FacetSelection> selections_;
  RowSet result_rows_;
  size_t operation_count_ = 0;
  Tracer* tracer_ = Tracer::Disabled();
  uint64_t trace_parent_ = 0;
};

}  // namespace dbx
