// Copyright (c) DBExplorer reproduction authors.
// The faceted interface's "summary digest" (paper §5): for the current result
// set, every attribute's value counts. This is what the Solr baseline shows
// its users, the comparison tool given to them in the user study (§6.2.2),
// and the result-similarity measure of task 3 (§6.2.3).

#pragma once

#include <string>
#include <vector>

#include "src/relation/table.h"
#include "src/stats/discretizer.h"
#include "src/stats/frequency.h"
#include "src/util/result.h"

namespace dbx {

/// Value counts of one attribute over a result set.
struct AttributeDigest {
  std::string attr_name;
  std::vector<std::string> labels;  // discrete domain of the attribute
  std::vector<uint64_t> counts;     // parallel to labels

  std::vector<double> AsVector() const {
    std::vector<double> v(counts.size());
    for (size_t i = 0; i < counts.size(); ++i) {
      v[i] = static_cast<double>(counts[i]);
    }
    return v;
  }
};

/// Per-attribute value counts for a whole result set.
struct SummaryDigest {
  std::vector<AttributeDigest> attrs;
  size_t result_size = 0;

  /// Index of attribute `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;
};

/// Builds the digest from an already-discretized fragment, counting only the
/// given row positions (positions into dt's row order). Pass all positions
/// for the full fragment.
SummaryDigest BuildDigest(const DiscretizedTable& dt,
                          const std::vector<size_t>& positions);

/// Builds the digest for the whole discretized fragment.
SummaryDigest BuildDigest(const DiscretizedTable& dt);

/// Mean per-attribute cosine similarity between two digests over the SAME
/// discretization (labels must align). Range [0, 1]. This is the metric the
/// user study gave Solr users for comparing attribute values (§6.2.2).
double DigestCosineSimilarity(const SummaryDigest& a, const SummaryDigest& b);

/// Retrieval error between a target result set and an obtained one (§6.2.3):
/// |target Δ obtained| / |target| over raw row ids — 0 when identical, grows
/// with both misses and spurious rows.
double RetrievalError(const RowSet& target, const RowSet& obtained);

}  // namespace dbx
