// Copyright (c) DBExplorer reproduction authors.
// Bitmap index over a discretized table: one bitset per (attribute, value).
// This is the data structure a production faceted-search engine (the paper's
// Apache Solr baseline) keeps under its query panel — selection evaluation
// and facet counting become word-parallel AND/popcount loops instead of
// per-row scans.

#pragma once

#include <cstdint>
#include <vector>

#include "src/relation/table.h"
#include "src/stats/discretizer.h"
#include "src/util/result.h"

namespace dbx {

/// Dense bitset over row positions with the operations facet counting needs.
class RowBitmap {
 public:
  RowBitmap() = default;
  explicit RowBitmap(size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  size_t size() const { return n_; }

  void Set(size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const;

  /// this &= other (sizes must match).
  void IntersectWith(const RowBitmap& other);

  /// this |= other (sizes must match).
  void UnionWith(const RowBitmap& other);

  /// Sets every bit in [0, size()).
  void SetAll();

  /// popcount(this & other) without materializing.
  size_t IntersectCount(const RowBitmap& other) const;

  /// Set bit positions, ascending.
  RowSet ToRowSet() const;

 private:
  size_t n_ = 0;
  std::vector<uint64_t> words_;
};

/// The per-value bitmap index.
class FacetIndex {
 public:
  /// Builds bitmaps for every (attribute, value) of `dt`. Attributes build
  /// concurrently on the shared thread pool when num_threads > 1; each task
  /// fills only its own attribute's bitmaps, so the index is identical for
  /// any thread count.
  static FacetIndex Build(const DiscretizedTable& dt, size_t num_threads = 1);

  size_t num_rows() const { return num_rows_; }
  size_t num_attrs() const { return per_attr_.size(); }

  /// Bitmap of rows carrying value `code` of attribute `attr`.
  const RowBitmap& ValueBitmap(size_t attr, int32_t code) const {
    return per_attr_[attr][static_cast<size_t>(code)];
  }

  size_t Cardinality(size_t attr) const { return per_attr_[attr].size(); }

  /// Evaluates a facet selection state (per attribute: the selected codes;
  /// empty vector = attribute unconstrained): OR within an attribute, AND
  /// across attributes. Returns the matching rows as a bitmap.
  RowBitmap EvaluateSelections(
      const std::vector<std::vector<int32_t>>& selections) const;

  /// Multi-select facet counts for `attr`: counts of each of its values over
  /// the selection state with `attr`'s OWN selections removed — the standard
  /// e-commerce behaviour that lets users widen a multi-selected facet.
  /// Returns one count per value code.
  std::vector<uint64_t> MultiSelectCounts(
      const std::vector<std::vector<int32_t>>& selections, size_t attr) const;

 private:
  size_t num_rows_ = 0;
  std::vector<std::vector<RowBitmap>> per_attr_;  // [attr][code]
};

}  // namespace dbx
