#include "src/facet/facet_index.h"

#include <algorithm>
#include <cassert>

#include "src/util/thread_pool.h"

namespace dbx {

size_t RowBitmap::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) {
    total += static_cast<size_t>(__builtin_popcountll(w));
  }
  return total;
}

void RowBitmap::IntersectWith(const RowBitmap& other) {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) words_[i] &= other.words_[i];
  for (size_t i = n; i < words_.size(); ++i) words_[i] = 0;
}

void RowBitmap::UnionWith(const RowBitmap& other) {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) words_[i] |= other.words_[i];
}

void RowBitmap::SetAll() {
  if (words_.empty()) return;
  std::fill(words_.begin(), words_.end(), ~0ULL);
  // Clear the tail beyond n_.
  size_t tail = n_ & 63;
  if (tail != 0) words_.back() = (1ULL << tail) - 1;
}

size_t RowBitmap::IntersectCount(const RowBitmap& other) const {
  size_t n = std::min(words_.size(), other.words_.size());
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
  }
  return total;
}

RowSet RowBitmap::ToRowSet() const {
  RowSet rows;
  rows.reserve(Count());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word) {
      int bit = __builtin_ctzll(word);
      rows.push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
  return rows;
}

FacetIndex FacetIndex::Build(const DiscretizedTable& dt, size_t num_threads) {
  FacetIndex idx;
  idx.num_rows_ = dt.num_rows();
  idx.per_attr_.resize(dt.num_attrs());
  // One task per attribute, each filling only per_attr_[a]. Build cannot
  // fail, so the Status channel is unused.
  Status built =
      ParallelFor(num_threads, 0, dt.num_attrs(), 1, [&](size_t a) -> Status {
        const DiscreteAttr& attr = dt.attr(a);
        idx.per_attr_[a].assign(attr.cardinality(), RowBitmap(dt.num_rows()));
        for (size_t i = 0; i < attr.codes.size(); ++i) {
          int32_t c = attr.codes[i];
          if (c >= 0) idx.per_attr_[a][static_cast<size_t>(c)].Set(i);
        }
        return Status::OK();
      });
  assert(built.ok() && "index build tasks always return OK");
  (void)built;
  return idx;
}

RowBitmap FacetIndex::EvaluateSelections(
    const std::vector<std::vector<int32_t>>& selections) const {
  RowBitmap result(num_rows_);
  result.SetAll();
  size_t n = std::min(selections.size(), per_attr_.size());
  for (size_t a = 0; a < n; ++a) {
    if (selections[a].empty()) continue;
    RowBitmap attr_union(num_rows_);
    for (int32_t code : selections[a]) {
      if (code >= 0 && static_cast<size_t>(code) < per_attr_[a].size()) {
        attr_union.UnionWith(per_attr_[a][static_cast<size_t>(code)]);
      }
    }
    result.IntersectWith(attr_union);
  }
  return result;
}

std::vector<uint64_t> FacetIndex::MultiSelectCounts(
    const std::vector<std::vector<int32_t>>& selections, size_t attr) const {
  // Selection state with `attr` unconstrained.
  std::vector<std::vector<int32_t>> rest = selections;
  if (attr < rest.size()) rest[attr].clear();
  RowBitmap base = EvaluateSelections(rest);

  std::vector<uint64_t> counts(per_attr_[attr].size(), 0);
  for (size_t c = 0; c < per_attr_[attr].size(); ++c) {
    counts[c] = base.IntersectCount(per_attr_[attr][c]);
  }
  return counts;
}

}  // namespace dbx
