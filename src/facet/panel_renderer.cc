#include "src/facet/panel_renderer.h"

#include <algorithm>

#include "src/util/string_util.h"

namespace dbx {

std::string RenderQueryPanel(const FacetEngine& engine,
                             const PanelRenderOptions& options) {
  const DiscretizedTable& dt = engine.discretized();
  std::string out = StringPrintf("query panel — %zu of %zu tuples selected\n",
                                 engine.result_rows().size(), dt.num_rows());

  for (size_t a = 0; a < dt.num_attrs(); ++a) {
    const DiscreteAttr& attr = dt.attr(a);
    if (attr.cardinality() == 0) continue;
    if (!attr.queriable && !options.show_hidden_attrs) continue;

    out += attr.name;
    if (!attr.queriable) out += " (hidden)";
    out += "\n";

    auto counts = engine.PanelCounts(attr.name);
    if (!counts.ok()) continue;
    const auto& selections = engine.selections();
    auto sel_it = selections.find(a);

    // Most frequent first.
    std::vector<size_t> order(attr.cardinality());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      return counts->counts[x] > counts->counts[y];
    });

    size_t shown = 0;
    size_t hidden_tail = 0;
    for (size_t code : order) {
      uint64_t n = counts->counts[code];
      if (n == 0 && options.hide_zero_counts) continue;
      if (shown >= options.max_values_per_attr) {
        ++hidden_tail;
        continue;
      }
      bool selected =
          sel_it != selections.end() &&
          sel_it->second.codes.count(static_cast<int32_t>(code)) > 0;
      out += StringPrintf("  [%c] %s (%llu)\n", selected ? 'x' : ' ',
                          attr.labels[code].c_str(),
                          static_cast<unsigned long long>(n));
      ++shown;
    }
    if (hidden_tail > 0) {
      out += StringPrintf("      ... +%zu more\n", hidden_tail);
    }
  }
  return out;
}

}  // namespace dbx
